package repro

import (
	"testing"

	"repro/internal/graphgen"
	"repro/internal/rctree"
)

// TestWaveLocality is a performance regression guard on the change
// propagation: at steady state (saturated forest with every insert causing
// a replace or a reject), the average affected-set work per single-edge
// insert must stay polylogarithmic. A transitive-closure style seeding bug
// once made this ~39,000 per insert; the healthy figure is well under 200
// at n=20,000.
func TestWaveLocality(t *testing.T) {
	const n = 20_000
	stream := graphgen.ErdosRenyi(n, 40_000, 1<<40, 0xC0FFEE)
	m := NewBatchMSF(n, 0xC0FFEE)
	// Saturate.
	m.BatchInsert(stream[:20_000])
	rctree.DebugWaveWork.Store(0)
	const probes = 10_000
	for i := 20_000; i < 20_000+probes; i++ {
		m.BatchInsert(stream[i : i+1])
	}
	avg := rctree.DebugWaveWork.Load() / probes
	t.Logf("average wave work per steady-state insert: %d", avg)
	if avg > 2_000 {
		t.Fatalf("change propagation is not local: %d affected vertex-rounds per insert", avg)
	}
}
