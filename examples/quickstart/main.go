// Quickstart: maintain a minimum spanning forest under batch edge
// insertions (Theorem 1.1 of the paper) in ~30 lines.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A forest over 6 vertices.
	msf := repro.NewBatchMSF(6, 42)

	// Insert a batch of weighted edges. IDs must be unique forever.
	added, removed, rejected := msf.BatchInsert([]repro.Edge{
		{ID: 1, U: 0, V: 1, W: 4},
		{ID: 2, U: 1, V: 2, W: 9},
		{ID: 3, U: 3, V: 4, W: 2},
		{ID: 4, U: 4, V: 5, W: 7},
	})
	fmt.Printf("batch 1: added %d, removed %d, rejected %d edges\n",
		len(added), len(removed), len(rejected))
	fmt.Printf("forest weight %d across %d components\n\n",
		msf.Weight(), msf.NumComponents())

	// A second batch: one edge bridges the components, another closes a
	// cycle and evicts the heaviest edge on it (the red rule).
	added, removed, _ = msf.BatchInsert([]repro.Edge{
		{ID: 5, U: 2, V: 3, W: 1}, // bridge
		{ID: 6, U: 0, V: 2, W: 3}, // cheaper than edge 2 (w=9): evicts it
	})
	fmt.Printf("batch 2: added %v\n", added)
	fmt.Printf("batch 2: evicted %v\n", removed)

	// Queries: connectivity and the heaviest edge on a forest path, both
	// O(lg n).
	fmt.Printf("\nconnected(0, 5) = %v\n", msf.Connected(0, 5))
	if e, ok := msf.PathMaxEdge(0, 5); ok {
		fmt.Printf("bottleneck edge between 0 and 5: %v\n", e)
	}
	fmt.Printf("final weight %d, %d forest edges\n", msf.Weight(), msf.Size())
}
