// netmonitor simulates the paper's motivating sliding-window scenario: a
// network telemetry stream where only the most recent traffic matters.
// Flow records (src, dst) arrive in batches; the monitor answers, over the
// last W flows only:
//
//   - is the observed topology still in one piece? (SW-Conn-Eager,
//     Theorem 5.2: O(1) component counting)
//   - have redundant paths appeared (a routing loop risk)? (SW-CycleFree,
//     Theorem 5.6)
//   - can the two border routers still reach each other? (recent-edge
//     connectivity queries, Lemma 5.1)
package main

import (
	"fmt"

	"repro"
	"repro/internal/parallel"
)

const (
	hosts   = 400
	borderA = 0
	borderB = 399
	window  = 3_000
	batch   = 250
	rounds  = 60
)

func main() {
	conn := repro.NewSWConnEager(hosts, 1)
	cyc := repro.NewSWCycleFree(hosts, 2)
	rng := parallel.NewRNG(2026)

	fmt.Printf("monitoring %d hosts, window = last %d flows\n\n", hosts, window)
	fmt.Printf("%6s %12s %10s %12s %16s\n", "round", "components", "loops?", "A<->B", "regime")
	live := 0
	for round := 1; round <= rounds; round++ {
		flows := make([]repro.StreamEdge, batch)
		regime := "backbone+leaf"
		for i := range flows {
			switch {
			case round > 40: // partition regime: traffic only within halves
				regime = "partitioned"
				half := int32(rng.Intn(2)) * hosts / 2
				flows[i] = repro.StreamEdge{
					U: half + int32(rng.Intn(hosts/2)),
					V: half + int32(rng.Intn(hosts/2)),
				}
				if flows[i].U == flows[i].V {
					flows[i].V = (flows[i].V+1)%(hosts/2) + half
				}
			case i%10 == 0: // backbone chatter along a ring
				u := int32(rng.Intn(hosts))
				flows[i] = repro.StreamEdge{U: u, V: (u + 1) % hosts}
			default: // random leaf traffic
				u, v := int32(rng.Intn(hosts)), int32(rng.Intn(hosts))
				if u == v {
					v = (v + 1) % hosts
				}
				flows[i] = repro.StreamEdge{U: u, V: v}
			}
		}
		conn.BatchInsert(flows)
		cyc.BatchInsert(flows)
		live += batch
		if live > window {
			expire := live - window
			conn.BatchExpire(expire)
			cyc.BatchExpire(expire)
			live = window
		}
		if round%5 == 0 {
			fmt.Printf("%6d %12d %10v %12v %16s\n",
				round, conn.NumComponents(), cyc.HasCycle(),
				conn.IsConnected(borderA, borderB), regime)
		}
	}
	fmt.Println("\nafter the traffic shift, the stale cross-partition flows age out of")
	fmt.Println("the window and the monitor reports the partition — no rescan needed.")
}
