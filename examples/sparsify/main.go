// sparsify maintains a windowed ε-cut-sparsifier (Theorem 5.8): a compact
// weighted subgraph whose cuts approximate the cuts of the full sliding
// window. The demo streams a two-community graph, sparsifies, and compares
// the community-separating cut in the sparsifier against the true window.
package main

import (
	"fmt"

	"repro"
	"repro/internal/parallel"
)

const (
	nodes  = 64
	window = 4_000
	batch  = 400
	rounds = 25
)

func main() {
	cfg := repro.SparsifierConfig{Eps: 0.5, Levels: 6, Trials: 2, CertOrder: 32, SampleConst: 8}
	sp := repro.NewSWSparsifier(nodes, cfg, 3)
	rng := parallel.NewRNG(23)

	var windowBuf []repro.StreamEdge
	inLeft := func(v int32) bool { return v < nodes/2 }

	fmt.Printf("windowed cut sparsifier over %d nodes (window %d edges)\n\n", nodes, window)
	fmt.Printf("%6s %10s %12s %14s %14s %8s\n",
		"round", "window", "sparsifier", "trueCut", "sparseCut", "ratio")
	for round := 1; round <= rounds; round++ {
		b := make([]repro.StreamEdge, batch)
		for i := range b {
			u := int32(rng.Intn(nodes))
			var v int32
			if rng.Intn(10) == 0 { // 10% cross-community edges
				v = (u + nodes/2) % nodes
			} else { // dense intra-community chatter
				base := int32(0)
				if !inLeft(u) {
					base = nodes / 2
				}
				v = base + int32(rng.Intn(nodes/2))
				if v == u {
					v = base + (v-base+1)%(nodes/2)
				}
			}
			b[i] = repro.StreamEdge{U: u, V: v}
		}
		sp.BatchInsert(b)
		windowBuf = append(windowBuf, b...)
		if len(windowBuf) > window {
			sp.BatchExpire(len(windowBuf) - window)
			windowBuf = windowBuf[len(windowBuf)-window:]
		}
		if round%5 == 0 {
			out := sp.Sparsify()
			trueCut := 0
			for _, e := range windowBuf {
				if inLeft(e.U) != inLeft(e.V) {
					trueCut++
				}
			}
			sparseCut := 0.0
			for _, e := range out {
				if inLeft(e.U) != inLeft(e.V) {
					sparseCut += e.Weight
				}
			}
			ratio := 0.0
			if trueCut > 0 {
				ratio = sparseCut / float64(trueCut)
			}
			fmt.Printf("%6d %10d %12d %14d %14.0f %8.2f\n",
				round, len(windowBuf), len(out), trueCut, sparseCut, ratio)
		}
	}
	fmt.Println("\nthe sparsifier holds a fraction of the window yet tracks the")
	fmt.Println("community-separating cut within the configured tolerance.")
}
