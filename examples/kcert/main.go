// kcert maintains a sliding-window k-certificate (Theorem 5.5) over a
// stream of overlay links and uses it to watch the network's resilience:
// the certificate preserves every cut of size <= k, so a global min-cut on
// its O(kn) edges (Stoer–Wagner here, standing in for the parallel min-cut
// of the paper's Section 5.4) reports min(k, edge connectivity) of the full
// window graph — without ever storing the window.
package main

import (
	"fmt"

	"repro"
	"repro/internal/mincut"
	"repro/internal/parallel"
)

const (
	nodes  = 60
	k      = 4
	window = 1_500
	batch  = 150
	rounds = 40
)

func main() {
	cert := repro.NewSWKCert(nodes, k, 5)
	rng := parallel.NewRNG(11)

	fmt.Printf("k-certificate (k=%d) over %d nodes, window %d links\n\n", k, nodes, window)
	fmt.Printf("%6s %11s %12s %22s\n", "round", "certEdges", "kept/window", "min(k, connectivity)")
	live := 0
	for round := 1; round <= rounds; round++ {
		links := make([]repro.StreamEdge, batch)
		for i := range links {
			// Early rounds: dense random mesh (connectivity >= k).
			// Later rounds: the overlay splits into two halves joined by a
			// single flaky link that appears once per round — window
			// connectivity collapses to the handful of live bridge copies.
			switch {
			case round <= 25:
				u, v := int32(rng.Intn(nodes)), int32(rng.Intn(nodes))
				if u == v {
					v = (v + 1) % nodes
				}
				links[i] = repro.StreamEdge{U: u, V: v}
			case i == 0 && round%4 == 0: // rare bridge heartbeat
				links[i] = repro.StreamEdge{U: 0, V: nodes / 2}
			default:
				half := int32(rng.Intn(2)) * nodes / 2
				u := half + int32(rng.Intn(nodes/2))
				v := half + int32(rng.Intn(nodes/2))
				if u == v {
					v = half + (v-half+1)%(nodes/2)
				}
				links[i] = repro.StreamEdge{U: u, V: v}
			}
		}
		cert.BatchInsert(links)
		live += batch
		if live > window {
			cert.BatchExpire(live - window)
			live = window
		}
		if round%5 == 0 {
			ce := cert.Certificate()
			conn := mincut.EdgeConnectivity(nodes, ce)
			if conn > k {
				conn = k
			}
			fmt.Printf("%6d %11d %7d/%-6d %22d\n", round, len(ce), cert.Size(), live, conn)
		}
	}
	fmt.Println("\nonce the mesh ages out, the certificate exposes the fragile topology:")
	fmt.Println("the min-cut collapses to the few live bridge copies even though the")
	fmt.Println("monitor never stored the window itself.")
}
