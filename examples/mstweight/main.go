// mstweight tracks the (1+ε)-approximate minimum-spanning-forest weight of
// an evolving proximity graph over a sliding window (Theorem 5.4) — the
// streaming analogue of monitoring clustering cost: sensors report pairwise
// link qualities; the MSF weight of the recent readings is the cost of the
// cheapest backbone connecting everything.
package main

import (
	"fmt"

	"repro"
	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

const (
	sensors = 300
	maxDist = 1 << 12
	window  = 2_000
	batch   = 100
	rounds  = 50
	eps     = 0.25
)

func main() {
	approx := repro.NewSWApproxMSF(sensors, eps, maxDist, 9)
	rng := parallel.NewRNG(17)

	// Keep the exact window contents on the side to show the guarantee.
	type arrival struct {
		u, v int32
		w    int64
	}
	var windowBuf []arrival

	fmt.Printf("tracking (1+%.2f)-approx MSF weight over the last %d readings\n", eps, window)
	fmt.Printf("levels maintained: %d connectivity structures\n\n", approx.Levels())
	fmt.Printf("%6s %14s %14s %8s\n", "round", "approx", "exact", "ratio")
	for round := 1; round <= rounds; round++ {
		b := make([]repro.WeightedStreamEdge, batch)
		for i := range b {
			u, v := int32(rng.Intn(sensors)), int32(rng.Intn(sensors))
			if u == v {
				v = (v + 1) % sensors
			}
			// Drift: distances inflate over time (sensors spreading out).
			w := 1 + rng.Int63()%(256+int64(round)*64)
			if w > maxDist {
				w = maxDist
			}
			b[i] = repro.WeightedStreamEdge{U: u, V: v, W: w}
			windowBuf = append(windowBuf, arrival{u, v, w})
		}
		approx.BatchInsert(b)
		if len(windowBuf) > window {
			approx.BatchExpire(len(windowBuf) - window)
			windowBuf = windowBuf[len(windowBuf)-window:]
		}
		if round%5 == 0 {
			exactEdges := make([]wgraph.Edge, len(windowBuf))
			for i, a := range windowBuf {
				exactEdges[i] = wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: a.u, V: a.v, W: a.w}
			}
			exact := wgraph.TotalWeight(msf.Kruskal(sensors, exactEdges))
			got := approx.Weight()
			ratio := 0.0
			if exact > 0 {
				ratio = got / float64(exact)
			}
			fmt.Printf("%6d %14.0f %14d %8.3f\n", round, got, exact, ratio)
		}
	}
	fmt.Printf("\nthe ratio stays within [1, %v] as Theorem 5.4 guarantees.\n", 1+eps)
}
