package repro

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/rctree"
	"repro/internal/wgraph"
)

// TestFigure1Reproduction regenerates Figure 1: the compressed path tree of
// the example tree must have exactly the marked vertices A–E plus two
// Steiner vertices, with edge weights {3, 6, 7, 9, 10, 12}.
func TestFigure1Reproduction(t *testing.T) {
	fig := NewFigure1Example()
	for _, seed := range []uint64{1, 7, 42, 1234} { // coin-independent
		got := fig.Compute(seed)
		if len(got) != 6 {
			t.Fatalf("seed %d: CPT has %d edges, want 6:\n%s", seed, len(got), fig.Render(got))
		}
		var ws []int64
		verts := map[int32]bool{}
		for _, e := range got {
			ws = append(ws, e.Key.W)
			verts[e.U] = true
			verts[e.V] = true
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for i, w := range fig.WantWeights {
			if ws[i] != w {
				t.Fatalf("seed %d: CPT weights %v want %v", seed, ws, fig.WantWeights)
			}
		}
		if len(verts) != 7 {
			t.Fatalf("seed %d: CPT has %d vertices, want 5 marked + 2 Steiner", seed, len(verts))
		}
		for _, m := range fig.Marked {
			if !verts[m] {
				t.Fatalf("seed %d: marked vertex %s missing", seed, fig.Names[m])
			}
		}
		// The Steiner vertices must be the original X and Y (degree-3+
		// branch points survive, spliced vertices do not).
		if !verts[5] || !verts[6] {
			t.Fatalf("seed %d: Steiner X/Y missing: %v", seed, verts)
		}
		if verts[7] || verts[8] || verts[9] {
			t.Fatalf("seed %d: spliced vertex survived: %v", seed, verts)
		}
	}
}

// TestFigure1RenderStable checks the display form used by cmd/figures.
func TestFigure1RenderStable(t *testing.T) {
	fig := NewFigure1Example()
	out := fig.Render(fig.Compute(42))
	for _, want := range []string{"A --6-- X", "B --10-- X", "X --9-- Y", "C --7-- Y", "D --12-- Y", "E --3-- Y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered CPT missing %q:\n%s", want, out)
		}
	}
}

// TestFigure2Reproduction regenerates Figure 2: the contraction of the
// 12-vertex example must satisfy all RC-tree invariants, produce one root
// cluster, and classify every vertex as exactly one of rake/compress/
// finalize with valid cluster relationships.
func TestFigure2Reproduction(t *testing.T) {
	fig := NewFigure2Example()
	for _, seed := range []uint64{1, 2, 3, 99} {
		tr := rctree.New(fig.N, seed)
		var ins []rctree.Edge
		for _, e := range fig.Edges {
			ins = append(ins, rctree.Edge{U: e.U, V: e.V, Key: wgraph.KeyOf(e)})
		}
		tr.BatchUpdate(ins, nil)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.NumComponents() != 1 {
			t.Fatalf("seed %d: %d roots", seed, tr.NumComponents())
		}
		// Count decisions: 12 deaths, exactly 1 finalize.
		finals, rakes, compresses := 0, 0, 0
		for v := int32(0); v < int32(fig.N); v++ {
			switch tr.DecisionOf(v) {
			case rctree.Finalize:
				finals++
			case rctree.Rake:
				rakes++
			case rctree.Compress:
				compresses++
			}
		}
		if finals != 1 || rakes+compresses+finals != fig.N {
			t.Fatalf("seed %d: finals=%d rakes=%d compresses=%d", seed, finals, rakes, compresses)
		}
		// Path queries on the example tree: the heaviest edge between f and
		// l is the k-l edge (weight 11), between a and c the b-c edge (2).
		k, ok := tr.PathMax(5, 11)
		if !ok || k.W != 11 {
			t.Fatalf("seed %d: PathMax(f,l)=%v", seed, k)
		}
		k, ok = tr.PathMax(0, 2)
		if !ok || k.W != 2 {
			t.Fatalf("seed %d: PathMax(a,c)=%v", seed, k)
		}
	}
}

func TestFigure2DumpMentionsEveryVertex(t *testing.T) {
	fig := NewFigure2Example()
	out := fig.RCTreeDump(42)
	for _, n := range fig.Names {
		if !strings.Contains(out, " "+n+" ") {
			t.Fatalf("dump missing vertex %q:\n%s", n, out)
		}
	}
	if !strings.Contains(out, "finalizes (root cluster") {
		t.Fatalf("dump missing root cluster:\n%s", out)
	}
}
