// Benchmarks regenerating every row of Table 1 and both figures of the
// paper, plus the scaling-shape, crossover and ablation experiments indexed
// in DESIGN.md §4. EXPERIMENTS.md records the measured results against the
// paper's bounds. Run:
//
//	go test -bench=. -benchmem
//
// Conventions: every benchmark reports ns/edge (the work-per-update measure
// Table 1 bounds); batch-size sweeps expose the lg(1+n/l) shape; the
// link-cut baseline anchors work-efficiency comparisons.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/cpt"
	"repro/internal/graphgen"
	"repro/internal/linkcut"
	"repro/internal/msf"
	"repro/internal/rctree"
	"repro/internal/wgraph"
)

// kruskalRebuild is the recompute-from-scratch ablation baseline: the MSF of
// the previous forest plus the batch, recomputed statically.
func kruskalRebuild(n int, forest, batch []wgraph.Edge) []wgraph.Edge {
	all := make([]wgraph.Edge, 0, len(forest)+len(batch))
	all = append(all, forest...)
	all = append(all, batch...)
	return msf.Kruskal(n, all)
}

const (
	benchN    = 20_000 // vertices
	benchWin  = 40_000 // sliding-window length
	benchSeed = 0xC0FFEE
)

// insertDriver runs batched insertions of a pre-generated stream, rebuilding
// the structure when the stream is exhausted. build must return a fresh
// consumer of one batch.
func insertDriver(b *testing.B, ell int, makeSink func() func([]wgraph.Edge)) {
	b.Helper()
	stream := graphgen.ErdosRenyi(benchN, 400_000, 1<<40, benchSeed)
	batches := graphgen.Batches(stream, ell)
	sink := makeSink()
	bi := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bi >= len(batches) {
			b.StopTimer()
			sink = makeSink()
			bi = 0
			b.StartTimer()
		}
		sink(batches[bi])
		bi++
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*ell), "ns/edge")
}

// slidingDriver runs a steady-state sliding window: each iteration inserts
// one batch and expires one batch worth of old arrivals.
func slidingDriver(b *testing.B, ell int, makeSink func() (func([]StreamEdge), func(int))) {
	b.Helper()
	rounds := benchWin/ell*2 + 128 // enough to warm the window and keep cycling
	s := graphgen.SlidingStream(benchN, rounds, ell, benchWin, benchSeed)
	insert, expire := makeSink()
	// Warm to steady state (at most half the rounds).
	warm := 0
	for _, r := range s.Rounds {
		batch := make([]StreamEdge, len(r.Insert))
		for i, p := range r.Insert {
			batch[i] = StreamEdge{U: p[0], V: p[1]}
		}
		insert(batch)
		expire(r.Expire)
		warm++
		if warm*ell > benchWin || warm >= len(s.Rounds)/2 {
			break
		}
	}
	ri := warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ri >= len(s.Rounds) {
			ri = warm // keep cycling the steady-state rounds
		}
		r := s.Rounds[ri]
		batch := make([]StreamEdge, len(r.Insert))
		for j, p := range r.Insert {
			batch[j] = StreamEdge{U: p[0], V: p[1]}
		}
		insert(batch)
		expire(len(batch)) // hold the window size fixed
		ri++
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*ell), "ns/edge")
}

// --- Table 1, row "Connectivity" --------------------------------------------

func BenchmarkTable1ConnectivityIncremental(b *testing.B) {
	for _, ell := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			insertDriver(b, ell, func() func([]wgraph.Edge) {
				c := NewIncConn(benchN)
				return func(batch []wgraph.Edge) { c.BatchInsert(batch) }
			})
		})
	}
}

func BenchmarkTable1ConnectivitySlidingWindow(b *testing.B) {
	for _, ell := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			slidingDriver(b, ell, func() (func([]StreamEdge), func(int)) {
				c := NewSWConnEager(benchN, benchSeed)
				return c.BatchInsert, c.BatchExpire
			})
		})
	}
}

// --- Table 1, row "k-certificate" --------------------------------------------

func BenchmarkTable1KCertificateIncremental(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			insertDriver(b, 1024, func() func([]wgraph.Edge) {
				c := NewIncKCert(benchN, k)
				return func(batch []wgraph.Edge) { c.BatchInsert(batch) }
			})
		})
	}
}

func BenchmarkTable1KCertificateSlidingWindow(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			slidingDriver(b, 1024, func() (func([]StreamEdge), func(int)) {
				c := NewSWKCert(benchN, k, benchSeed)
				return c.BatchInsert, c.BatchExpire
			})
		})
	}
}

// --- Table 1, row "Bipartiteness" --------------------------------------------

func BenchmarkTable1BipartitenessIncremental(b *testing.B) {
	insertDriver(b, 1024, func() func([]wgraph.Edge) {
		c := NewIncBipartite(benchN)
		return func(batch []wgraph.Edge) { c.BatchInsert(batch) }
	})
}

func BenchmarkTable1BipartitenessSlidingWindow(b *testing.B) {
	slidingDriver(b, 1024, func() (func([]StreamEdge), func(int)) {
		c := NewSWBipartite(benchN, benchSeed)
		return c.BatchInsert, c.BatchExpire
	})
}

// --- Table 1, row "Cycle-freeness" -------------------------------------------

func BenchmarkTable1CycleFreenessIncremental(b *testing.B) {
	insertDriver(b, 1024, func() func([]wgraph.Edge) {
		c := NewIncCycleFree(benchN)
		return func(batch []wgraph.Edge) { c.BatchInsert(batch) }
	})
}

func BenchmarkTable1CycleFreenessSlidingWindow(b *testing.B) {
	slidingDriver(b, 1024, func() (func([]StreamEdge), func(int)) {
		c := NewSWCycleFree(benchN, benchSeed)
		return c.BatchInsert, c.BatchExpire
	})
}

// --- Table 1, row "MSF" (Theorem 1.1, the headline) --------------------------

func BenchmarkTable1MSFIncremental(b *testing.B) {
	for _, ell := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			insertDriver(b, ell, func() func([]wgraph.Edge) {
				m := NewBatchMSF(benchN, benchSeed)
				return func(batch []wgraph.Edge) { m.BatchInsert(batch) }
			})
		})
	}
}

func BenchmarkTable1MSFSlidingWindow(b *testing.B) {
	for _, eps := range []float64{0.5, 0.1} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			const maxW = 1 << 20
			s := graphgen.SlidingStream(benchN, 256, 1024, benchWin, benchSeed)
			a := NewSWApproxMSF(benchN, eps, maxW, benchSeed)
			wsrc := graphgen.ErdosRenyi(benchN, 512*1024, maxW, benchSeed+1)
			ri, wi, live := 0, 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ri >= len(s.Rounds) {
					ri = 0
				}
				round := s.Rounds[ri]
				batch := make([]WeightedStreamEdge, len(round.Insert))
				for j, p := range round.Insert {
					batch[j] = WeightedStreamEdge{U: p[0], V: p[1], W: wsrc[wi%len(wsrc)].W}
					wi++
				}
				a.BatchInsert(batch)
				live += len(batch)
				if live > benchWin {
					a.BatchExpire(live - benchWin)
					live = benchWin
				}
				_ = a.Weight()
				ri++
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1024), "ns/edge")
		})
	}
}

// --- Table 1, row "ε-sparsifier" ---------------------------------------------

func BenchmarkTable1SparsifierSlidingWindow(b *testing.B) {
	const n = 2_000 // K·L connectivity structures + L certificates: keep n modest
	const win = 4_000
	cfg := SparsifierConfig{Eps: 0.5, Levels: 8, Trials: 2, CertOrder: 8, SampleConst: 8}
	s := graphgen.SlidingStream(n, 256, 256, win, benchSeed)
	sp := NewSWSparsifier(n, cfg, benchSeed)
	ri, live := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ri >= len(s.Rounds) {
			ri = 0
		}
		r := s.Rounds[ri]
		batch := make([]StreamEdge, len(r.Insert))
		for j, p := range r.Insert {
			batch[j] = StreamEdge{U: p[0], V: p[1]}
		}
		sp.BatchInsert(batch)
		live += len(batch)
		if live > win {
			sp.BatchExpire(live - win)
			live = win
		}
		ri++
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*256), "ns/edge")
}

func BenchmarkSparsifierQuery(b *testing.B) {
	const n = 2_000
	cfg := SparsifierConfig{Eps: 0.5, Levels: 8, Trials: 2, CertOrder: 8, SampleConst: 8}
	sp := NewSWSparsifier(n, cfg, benchSeed)
	edges := graphgen.ErdosRenyi(n, 8_000, 1, benchSeed)
	batch := make([]StreamEdge, len(edges))
	for i, e := range edges {
		batch[i] = StreamEdge{U: e.U, V: e.V}
	}
	sp.BatchInsert(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := sp.Sparsify()
		if len(out) == 0 {
			b.Fatal("empty sparsifier")
		}
	}
}

// --- Baseline: sequential link-cut incremental MSF [47] ----------------------

func BenchmarkBaselineLinkCutMSF(b *testing.B) {
	stream := graphgen.ErdosRenyi(benchN, 400_000, 1<<40, benchSeed)
	m := linkcut.NewIncrementalMSF(benchN)
	si := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if si >= len(stream) {
			b.StopTimer()
			m = linkcut.NewIncrementalMSF(benchN)
			si = 0
			b.StartTimer()
		}
		m.Insert(stream[si])
		si++
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/edge")
}

// --- S1: the l·lg(1+n/l) shape behind Theorems 3.2/4.2 ------------------------

func BenchmarkBatchSizeSweep(b *testing.B) {
	for _, ell := range []int{1, 16, 64, 256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			insertDriver(b, ell, func() func([]wgraph.Edge) {
				m := NewBatchMSF(benchN, benchSeed)
				return func(batch []wgraph.Edge) { m.BatchInsert(batch) }
			})
		})
	}
}

// --- F1: compressed path tree construction (Figure 1 / Theorem 3.2) ----------

func BenchmarkFig1CompressedPathTree(b *testing.B) {
	for _, ell := range []int{2, 16, 256, 4096} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			tr := rctree.New(benchN, benchSeed)
			tree := graphgen.BoundedDegreeTree(benchN, 3, 1<<40, benchSeed)
			var ins []rctree.Edge
			for _, e := range tree {
				ins = append(ins, rctree.Edge{U: e.U, V: e.V, Key: wgraph.KeyOf(e)})
			}
			tr.BatchUpdate(ins, nil)
			r := graphgen.ErdosRenyi(benchN, ell, 1, benchSeed+9)
			marked := make([]int32, ell)
			for i := range marked {
				marked[i] = r[i].U
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := cpt.Build(tr, marked)
				if len(res.Vertices) == 0 {
					b.Fatal("empty CPT")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*ell), "ns/marked")
		})
	}
}

// --- F2: RC tree build and batch update (Figure 2 substrate) -----------------

func BenchmarkFig2RCTreeBuild(b *testing.B) {
	tree := graphgen.BoundedDegreeTree(benchN, 3, 1<<40, benchSeed)
	var ins []rctree.Edge
	for _, e := range tree {
		ins = append(ins, rctree.Edge{U: e.U, V: e.V, Key: wgraph.KeyOf(e)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := rctree.New(benchN, benchSeed)
		tr.BatchUpdate(ins, nil)
	}
}

func BenchmarkFig2RCTreeBatchUpdate(b *testing.B) {
	for _, ell := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			tr := rctree.New(benchN, benchSeed)
			tree := graphgen.BoundedDegreeTree(benchN, 3, 1<<40, benchSeed)
			handles := make([]rctree.Handle, 0, len(tree))
			var ins []rctree.Edge
			for _, e := range tree {
				ins = append(ins, rctree.Edge{U: e.U, V: e.V, Key: wgraph.KeyOf(e)})
			}
			hs := tr.BatchUpdate(ins, nil)
			handles = append(handles, hs...)
			idx := 0
			nextKey := int64(1 << 50)
			seen := make([]bool, len(handles))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cut l random tree edges and relink them with fresh keys.
				cuts := make([]rctree.Handle, 0, ell)
				cutPos := make([]int, 0, ell)
				var re []rctree.Edge
				for j := 0; j < ell; j++ {
					pos := (idx + j*7919) % len(handles)
					if seen[pos] {
						continue
					}
					seen[pos] = true
					h := handles[pos]
					u, v := tr.EdgeEndpoints(h)
					cuts = append(cuts, h)
					cutPos = append(cutPos, pos)
					re = append(re, rctree.Edge{U: u, V: v, Key: wgraph.Key{W: nextKey, ID: wgraph.EdgeID(nextKey)}})
					nextKey++
				}
				nh := tr.BatchUpdate(re, cuts)
				for j, pos := range cutPos {
					handles[pos] = nh[j]
					seen[pos] = false
				}
				idx += ell
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*ell), "ns/edge")
		})
	}
}

// --- A1: ablation — Algorithm 2 vs recompute-from-scratch --------------------

func BenchmarkAblationRebuildVsCPT(b *testing.B) {
	// The static rebuild pays O(n) per batch regardless of l, so it wins
	// for large batches and loses for small ones; the crossover is the
	// point of the dynamic structure.
	for _, ell := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cpt-incremental/l=%d", ell), func(b *testing.B) {
			insertDriver(b, ell, func() func([]wgraph.Edge) {
				m := NewBatchMSF(benchN, benchSeed)
				return func(batch []wgraph.Edge) { m.BatchInsert(batch) }
			})
		})
		b.Run(fmt.Sprintf("kruskal-rebuild/l=%d", ell), func(b *testing.B) {
			insertDriver(b, ell, func() func([]wgraph.Edge) {
				var forest []wgraph.Edge
				return func(batch []wgraph.Edge) {
					forest = kruskalRebuild(benchN, forest, batch)
				}
			})
		})
	}
}

// --- A2: ablation — eager vs lazy sliding-window expiry ----------------------

func BenchmarkAblationEagerVsLazy(b *testing.B) {
	const ell = 1024
	b.Run("lazy", func(b *testing.B) {
		slidingDriver(b, ell, func() (func([]StreamEdge), func(int)) {
			c := NewSWConn(benchN, benchSeed)
			return c.BatchInsert, c.BatchExpire
		})
	})
	b.Run("eager", func(b *testing.B) {
		slidingDriver(b, ell, func() (func([]StreamEdge), func(int)) {
			c := NewSWConnEager(benchN, benchSeed)
			return c.BatchInsert, c.BatchExpire
		})
	})
}

// --- Query benchmarks ---------------------------------------------------------

func BenchmarkQueryConnected(b *testing.B) {
	m := NewBatchMSF(benchN, benchSeed)
	for _, batch := range graphgen.Batches(graphgen.ErdosRenyi(benchN, 100_000, 1<<40, benchSeed), 4096) {
		m.BatchInsert(batch)
	}
	qs := graphgen.ErdosRenyi(benchN, 4096, 1, benchSeed+3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		m.Connected(q.U, q.V)
	}
}

func BenchmarkQueryPathMax(b *testing.B) {
	m := NewBatchMSF(benchN, benchSeed)
	for _, batch := range graphgen.Batches(graphgen.ErdosRenyi(benchN, 100_000, 1<<40, benchSeed), 4096) {
		m.BatchInsert(batch)
	}
	qs := graphgen.ErdosRenyi(benchN, 4096, 1, benchSeed+3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		m.PathMaxEdge(q.U, q.V)
	}
}
