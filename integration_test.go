package repro

import (
	"testing"

	"repro/internal/graphgen"
	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// TestIntegrationOneStreamAllStructures runs every public structure over
// the same synthetic sliding-window stream and cross-checks them against
// brute-force recomputation — the end-to-end pipeline test.
func TestIntegrationOneStreamAllStructures(t *testing.T) {
	const (
		n      = 48
		rounds = 60
		batch  = 30
		window = 500
		maxW   = 1 << 10
		eps    = 0.5
	)
	r := parallel.NewRNG(7)

	conn := NewSWConnEager(n, 1)
	lazy := NewSWConn(n, 2)
	bip := NewSWBipartite(n, 3)
	cyc := NewSWCycleFree(n, 4)
	kc := NewSWKCert(n, 3, 5)
	amsf := NewSWApproxMSF(n, eps, maxW, 6)

	type arrival struct {
		u, v int32
		w    int64
	}
	var win []arrival
	for round := 0; round < rounds; round++ {
		plain := make([]StreamEdge, 0, batch)
		weighted := make([]WeightedStreamEdge, 0, batch)
		for i := 0; i < batch; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue
			}
			w := 1 + r.Int63()%maxW
			plain = append(plain, StreamEdge{U: u, V: v})
			weighted = append(weighted, WeightedStreamEdge{U: u, V: v, W: w})
			win = append(win, arrival{u, v, w})
		}
		conn.BatchInsert(plain)
		lazy.BatchInsert(plain)
		bip.BatchInsert(plain)
		cyc.BatchInsert(plain)
		kc.BatchInsert(plain)
		amsf.BatchInsert(weighted)
		if len(win) > window {
			d := len(win) - window
			conn.BatchExpire(d)
			lazy.BatchExpire(d)
			bip.BatchExpire(d)
			cyc.BatchExpire(d)
			kc.BatchExpire(d)
			amsf.BatchExpire(d)
			win = win[d:]
		}

		// Brute-force window state.
		uf := unionfind.New(n)
		loops := 0
		adj := make([][]int32, n)
		for _, a := range win {
			uf.Union(a.u, a.v)
			adj[a.u] = append(adj[a.u], a.v)
			adj[a.v] = append(adj[a.v], a.u)
			_ = loops
		}
		wantComps := uf.NumComponents()
		if got := conn.NumComponents(); got != wantComps {
			t.Fatalf("round %d: components %d want %d", round, got, wantComps)
		}
		for q := 0; q < 25; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			want := uf.Connected(u, v)
			if conn.IsConnected(u, v) != want || lazy.IsConnected(u, v) != want || kc.IsConnected(u, v) != want {
				t.Fatalf("round %d: connectivity disagreement at (%d,%d)", round, u, v)
			}
		}
		// Cycle-freeness: |E| > n - components means a cycle exists.
		wantCycle := len(win) > n-wantComps
		if got := cyc.HasCycle(); got != wantCycle {
			t.Fatalf("round %d: hasCycle=%v want %v", round, got, wantCycle)
		}
		// Bipartiteness via 2-colouring.
		if got, want := bip.IsBipartite(), twoColorable(n, adj); got != want {
			t.Fatalf("round %d: bipartite=%v want %v", round, got, want)
		}
		// Approximate MSF within its guarantee.
		exactEdges := make([]wgraph.Edge, len(win))
		for i, a := range win {
			exactEdges[i] = wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: a.u, V: a.v, W: a.w}
		}
		exact := float64(wgraph.TotalWeight(msf.Kruskal(n, exactEdges)))
		got := amsf.Weight()
		if got < exact-1e-6 || got > (1+eps)*exact+1e-6 {
			t.Fatalf("round %d: approx weight %v outside [%v, %v]", round, got, exact, (1+eps)*exact)
		}
		// Certificate size bound.
		if kc.Size() > 3*(n-1) {
			t.Fatalf("round %d: certificate too big: %d", round, kc.Size())
		}
	}
}

func twoColorable(n int, adj [][]int32) bool {
	color := make([]int8, n)
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		stack := []int32{int32(s)}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if color[y] == 0 {
					color[y] = -color[x]
					stack = append(stack, y)
				} else if color[y] == color[x] {
					return false
				}
			}
		}
	}
	return true
}

// TestIntegrationIncrementalMatchesSlidingWithoutExpiry verifies the
// paper's remark that sliding-window structures subsume the incremental
// setting by never expiring: both sides must agree on every query.
func TestIntegrationIncrementalMatchesSlidingWithoutExpiry(t *testing.T) {
	const n = 40
	edges := graphgen.ErdosRenyi(n, 300, 1, 11)
	swc := NewSWConnEager(n, 1)
	ic := NewIncConn(n)
	swb := NewSWBipartite(n, 2)
	ib := NewIncBipartite(n)
	swf := NewSWCycleFree(n, 3)
	icf := NewIncCycleFree(n)
	for _, b := range graphgen.Batches(edges, 37) {
		plain := make([]StreamEdge, len(b))
		for i, e := range b {
			plain[i] = StreamEdge{U: e.U, V: e.V}
		}
		swc.BatchInsert(plain)
		ic.BatchInsert(b)
		swb.BatchInsert(plain)
		ib.BatchInsert(b)
		swf.BatchInsert(plain)
		icf.BatchInsert(b)
		if swc.NumComponents() != ic.NumComponents() {
			t.Fatalf("components: sw=%d inc=%d", swc.NumComponents(), ic.NumComponents())
		}
		if swb.IsBipartite() != ib.IsBipartite() {
			t.Fatal("bipartite disagreement")
		}
		if swf.HasCycle() != icf.HasCycle() {
			t.Fatal("cycle disagreement")
		}
	}
	r := parallel.NewRNG(5)
	for q := 0; q < 200; q++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if swc.IsConnected(u, v) != ic.IsConnected(u, v) {
			t.Fatalf("connectivity (%d,%d)", u, v)
		}
	}
}
