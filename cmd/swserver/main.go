// Command swserver serves the sliding-window structures of Theorem 1.2 as
// a multi-window HTTP JSON service: timestamped edges stream in over
// POST /edges (or POST /windows/{name}/edges), get re-batched by the
// internal/stream ingester (recovering the paper's O(ℓ·lg(1+n/ℓ)) batch
// economics), fan out to the window's monitors in parallel, and queries
// are answered concurrently from the shared windows.
//
// Windows are created at runtime against the template the flags describe;
// a "default" window is pre-created so the single-window routes work out
// of the box.
//
// With -data-dir the registry is durable: every applied batch is recorded
// in a per-window write-ahead log before it reaches the monitors, window
// configs and expiry watermarks live in an atomically-updated manifest,
// and on startup every manifest window is re-created by replaying its
// unexpired log suffix. -fsync picks the WAL fsync policy (batch,
// interval, off) and -checkpoint-interval how often watermarks are
// persisted and fully-expired log segments garbage-collected (also on
// demand via POST /admin/checkpoint). -snapshot-threshold bounds restart
// time: once a window's replayable suffix exceeds it, the checkpoint also
// writes a compact live-edge snapshot, recovery seeds the window from the
// snapshot with one mega-batch apply and replays only the records after
// it, and the log segments the snapshot covers become GC-eligible.
//
// Endpoints:
//
//	POST   /windows                        {"name":"w1","n":50000,...} create
//	GET    /windows                        list windows with stats
//	GET    /windows/{name}                 one window's info
//	DELETE /windows/{name}                 drop a window
//	POST   /windows/{name}/edges           {"edges":[{"u":0,"v":1,"w":5},...]}
//	GET    /windows/{name}/query/connected?u=&v=
//	GET    /windows/{name}/query/{components,bipartite,msfweight,cycle,kcert}
//	GET    /windows/{name}/query/summary   all monitors at one apply epoch
//	GET    /windows/{name}/stats           per-window counters (incl. per-monitor apply/wait)
//	POST   /edges, GET /query/..., /stats  default window (legacy routes)
//	POST   /admin/checkpoint               persist watermarks + GC segments
//	GET    /metrics                        Prometheus text exposition (unless -metrics=false)
//	GET    /healthz                        liveness
//	GET    /readyz                         readiness (recovery, WAL, checkpoint age, queue budget)
//	GET    /debug/flight                   batch flight recorder (?window=&kind=&min_ms=&slow=1&limit=)
//	GET    /debug/pprof/...                profiling (only with -pprof)
//
// Observability: the whole pipeline is instrumented into sw_* metric
// families (ingest, queue depth in batches AND edges, per-stage batch
// lifecycle, per-monitor apply/wait, WAL append/fsync, checkpoints) —
// see DESIGN.md §7. A zero-dependency flight recorder is always on:
// every batch gets a span tree (queue wait → staging → WAL append/fsync →
// per-monitor apply with msfweight level detail → publish) in a fixed
// ring served at GET /debug/flight, batches slower than
// -flight-slow-threshold are retained separately (?slow=1; on a durable
// registry also appended to <data-dir>/flight_slow.jsonl), and the
// latency histograms carry exemplar trace IDs linking a p99 back to the
// batch that caused it. -log-level picks the slog threshold for
// operational records (boot, recovery, checkpoints at debug).
// -ready-queue-budget and -ready-checkpoint-age tune when /readyz sheds.
//
// Admission control: -max-queue-edges / -max-queue-bytes bound how much
// un-applied work the ingest queue may hold (in the units that actually
// cost memory), and -rate-limit / -rate-burst cap the sustained edge
// rate. A submission over budget is rejected immediately — HTTP 429 with
// a Retry-After hint and a sw_ingest_rejected_total{reason=} counter —
// instead of parking the connection on a full channel. -sync-ack flips
// the ack contract to durable-by-default: POST /edges returns 202 only
// after the batch's WAL append (and, under -fsync batch, its fsync) has
// completed; clients override per request with ?sync=0/1.
//
// Example:
//
//	swserver -addr :8080 -n 100000 -window 1000000 -batch 512 -delay 2ms \
//	         -shards 32 -windows tenant-a,tenant-b -pprof \
//	         -data-dir /var/lib/swserver -fsync interval -checkpoint-interval 30s \
//	         -log-level debug -flight-slow-threshold 50ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 100_000, "number of vertices (window template)")
	monitors := flag.String("monitors", strings.Join(stream.AllMonitors(), ","),
		"comma-separated monitors to maintain (window template)")
	window := flag.Int("window", 1_000_000, "count-based window: keep the most recent W edges (0 = unbounded)")
	maxAge := flag.Duration("maxage", 0, "time-based window: expire edges older than this (0 = disabled)")
	batch := flag.Int("batch", 512, "ingester batch threshold")
	delay := flag.Duration("delay", 5*time.Millisecond, "ingester flush deadline")
	eps := flag.Float64("eps", 0.25, "msfweight approximation parameter")
	maxW := flag.Int64("maxw", 1<<20, "msfweight maximum edge weight")
	k := flag.Int("k", 2, "kcert certificate order")
	seed := flag.Uint64("seed", 0xC0FFEE, "structure seed")
	shards := flag.Int("shards", 16, "registry lock shards (rounded up to a power of two)")
	maxWindows := flag.Int("maxwindows", 0, "cap on live windows (0 = unlimited)")
	windows := flag.String("windows", "", "comma-separated extra windows to pre-create from the template")
	seqFanout := flag.Bool("seqfanout", false, "apply batches to monitors sequentially instead of in parallel")
	applyPar := flag.Int("apply-parallelism", 0,
		"intra-monitor batch-apply worker budget shared by all windows (msfweight level fork-join): 0 = GOMAXPROCS, 1 = sequential levels")
	maxBody := flag.Int64("maxbody", stream.DefaultMaxBodyBytes, "request body size cap in bytes")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + manifest); empty = in-memory only")
	fsync := flag.String("fsync", "interval", "WAL fsync policy with -data-dir: batch|interval|off")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second,
		"period of the background checkpoint (persist expiry watermarks, GC expired WAL segments) with -data-dir; 0 = manual only")
	snapThreshold := flag.Int("snapshot-threshold", 1<<20,
		"with -data-dir: checkpoint writes a live-edge snapshot when a window's replayable WAL suffix exceeds this many arrivals, bounding restart time; -1 disables snapshots")
	metricsOn := flag.Bool("metrics", true, "instrument the pipeline and expose Prometheus text at GET /metrics")
	logLevel := flag.String("log-level", "info", "slog threshold for operational records: debug|info|warn|error")
	slowBatch := flag.Duration("slow-batch", 0,
		"deprecated alias for -flight-slow-threshold: slow batches are retained in the flight recorder's slow ring (/debug/flight?slow=1), not logged")
	maxQueueEdges := flag.Int64("max-queue-edges", 0,
		"admission budget: reject ingest (HTTP 429) once this many edges are queued un-applied (0 = unbounded)")
	maxQueueBytes := flag.Int64("max-queue-bytes", 0,
		"admission budget: reject ingest (HTTP 429) once queued edges occupy this many bytes (0 = unbounded)")
	rateLimit := flag.Int("rate-limit", 0,
		"admission rate limit in edges per second, enforced as a token bucket per window (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0,
		"token-bucket burst for -rate-limit in edges (0 = one second's worth)")
	syncAck := flag.Bool("sync-ack", false,
		"durable acks by default: POST /edges returns 202 only after the batch's WAL append+fsync completed (per-request override: ?sync=0/1)")
	flightRing := flag.Int("flight-ring", 0,
		"per-window flight-recorder ring capacity in batch traces (0 = default 128)")
	flightQueryRing := flag.Int("flight-query-ring", 0,
		"per-window query-trace ring capacity (0 = default 64)")
	flightSlow := flag.Duration("flight-slow-threshold", 0,
		"retain batches at least this slow in the flight recorder's slow ring (0 = default 100ms, negative = disable the slow ring)")
	queueBudget := flag.Float64("ready-queue-budget", 0.9,
		"/readyz fails when any window's queued submissions exceed this fraction of its queue capacity (negative = disabled)")
	ckptAgeBound := flag.Duration("ready-checkpoint-age", 0,
		"with -data-dir: /readyz fails when no checkpoint has completed for this long (0 = disabled)")
	readTimeout := flag.Duration("read-timeout", time.Minute,
		"http.Server ReadTimeout: full request (headers+body) read deadline (0 = unlimited)")
	writeTimeout := flag.Duration("write-timeout", time.Minute,
		"http.Server WriteTimeout: response write deadline from end of headers (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute,
		"http.Server IdleTimeout: keep-alive connection idle deadline (0 = unlimited)")
	faultInject := flag.Bool("fault-inject", false,
		"mount the chaos control plane: wrap durability I/O in a runtime-togglable fault injector driven via /admin/fault (never enable in production)")
	faultSeed := flag.Int64("fault-seed", 1,
		"seed for probabilistic fault rules with -fault-inject")
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "swserver: bad -log-level %q (want debug|info|warn|error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	template := stream.ServiceConfig{
		Window: stream.WindowConfig{
			N:                *n,
			Seed:             *seed,
			Monitors:         stream.SplitMonitors(*monitors),
			Monitor:          stream.MonitorConfig{Eps: *eps, MaxWeight: *maxW, K: *k},
			MaxArrivals:      *window,
			MaxAge:           *maxAge,
			SequentialFanout: *seqFanout,
			ApplyParallelism: *applyPar,
			SyncAck:          *syncAck,
		},
		Ingest: stream.IngesterConfig{
			MaxBatch:       *batch,
			MaxDelay:       *delay,
			MaxQueueEdges:  *maxQueueEdges,
			MaxQueueBytes:  *maxQueueBytes,
			MaxEdgesPerSec: *rateLimit,
			BurstEdges:     *rateBurst,
		},
	}
	var persist *stream.PersistenceConfig
	if *dataDir != "" {
		pol, err := stream.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *snapThreshold == 0 {
			// The library maps 0 to its own default (1M), which would
			// silently contradict whatever a user passing 0 meant.
			fmt.Fprintln(os.Stderr, "swserver: -snapshot-threshold must be a positive arrival count, or -1 to disable")
			os.Exit(2)
		}
		persist = &stream.PersistenceConfig{
			Dir:                *dataDir,
			Fsync:              pol,
			CheckpointInterval: *ckptEvery,
			SnapshotThreshold:  *snapThreshold,
		}
	}
	var treg *telemetry.Registry
	if *metricsOn {
		treg = telemetry.NewRegistry()
	}
	if *slowBatch > 0 {
		// The warn-log path is gone; honour the old flag as the slow-ring
		// threshold it was always approximating, unless the new flag set one.
		logger.Warn("-slow-batch is deprecated; treating it as -flight-slow-threshold",
			"threshold", *slowBatch)
		if *flightSlow == 0 {
			*flightSlow = *slowBatch
		}
	}
	var injector *fault.Injector
	if *faultInject {
		injector = fault.NewInjector(nil, *faultSeed)
		logger.Warn("fault injection armed: durability I/O runs through a chaos injector controlled at /admin/fault")
	}
	reg, recovered, err := stream.OpenRegistry(stream.RegistryConfig{
		Shards:        *shards,
		MaxWindows:    *maxWindows,
		Template:      template,
		Persistence:   persist,
		Telemetry:     treg,
		Logger:        logger,
		FaultInjector: injector,
		Flight: trace.Options{
			RingSlots:     *flightRing,
			QuerySlots:    *flightQueryRing,
			SlowThreshold: *flightSlow,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if recovered.Windows > 0 {
		logger.Info("windows recovered",
			"windows", recovered.Windows, "dir", *dataDir,
			"snapshots", recovered.Snapshots, "snapshot_edges", recovered.SnapshotEdges,
			"batches", recovered.Batches, "edges", recovered.Edges,
			"skipped_records", recovered.SkippedRecords, "elapsed", recovered.Elapsed)
	}
	names := append([]string{stream.DefaultWindow}, stream.SplitMonitors(*windows)...)
	for _, name := range names {
		// Pass the template itself so non-inherited fields (-seqfanout)
		// carry to the pre-created windows. A recovered window already
		// holding the name wins — its durable config and contents stand.
		if _, err := reg.Create(name, template); err != nil && !errors.Is(err, stream.ErrWindowExists) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	api := stream.NewRegistryServer(reg, stream.ServerConfig{
		MaxBodyBytes:       *maxBody,
		QueueBudget:        *queueBudget,
		CheckpointAgeBound: *ckptAgeBound,
	})
	root := http.NewServeMux()
	root.Handle("/", api.Handler())
	if *pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Slow-loris protection end to end: header deadline, full-request
	// deadline, response deadline, and keep-alive reaping — a stuck client
	// cannot pin a connection (and its handler goroutine) forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	durability := "in-memory"
	if persist != nil {
		durability = fmt.Sprintf("wal:%s fsync=%s ckpt=%v", *dataDir, *fsync, *ckptEvery)
	}
	logger.Info("swserver listening",
		"addr", *addr, "windows", strings.Join(reg.Names(), ","), "shards", reg.Shards(),
		"n", *n, "monitors", *monitors, "window", *window, "maxage", *maxAge,
		"batch", *batch, "delay", *delay,
		"fanout", map[bool]string{false: "parallel", true: "sequential"}[*seqFanout],
		"apply_parallelism", *applyPar,
		"max_queue_edges", *maxQueueEdges, "max_queue_bytes", *maxQueueBytes,
		"rate_limit", *rateLimit, "sync_ack", *syncAck,
		"durability", durability, "metrics", *metricsOn, "pprof", *pprofOn)

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}
	reg.Close()
	logger.Info("bye")
}
