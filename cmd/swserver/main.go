// Command swserver serves the sliding-window structures of Theorem 1.2 as
// an HTTP JSON service: timestamped edges stream in over POST /edges, get
// re-batched by the internal/stream ingester (recovering the paper's
// O(ℓ·lg(1+n/ℓ)) batch economics), and queries are answered concurrently
// from the shared window.
//
// Endpoints:
//
//	POST /edges                  {"edges":[{"u":0,"v":1,"w":5},...]}
//	GET  /query/connected?u=&v=  window connectivity
//	GET  /query/components       connected component count
//	GET  /query/bipartite        bipartiteness
//	GET  /query/msfweight        (1+ε)-approximate MSF weight
//	GET  /query/cycle            cycle detection
//	GET  /query/kcert            certificate size, min(k, edge connectivity)
//	GET  /stats                  window/ingest/latency counters
//	GET  /healthz                liveness
//
// Example:
//
//	swserver -addr :8080 -n 100000 -window 1000000 -batch 512 -delay 2ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 100_000, "number of vertices")
	monitors := flag.String("monitors", strings.Join(stream.AllMonitors(), ","),
		"comma-separated monitors to maintain")
	window := flag.Int("window", 1_000_000, "count-based window: keep the most recent W edges (0 = unbounded)")
	maxAge := flag.Duration("maxage", 0, "time-based window: expire edges older than this (0 = disabled)")
	batch := flag.Int("batch", 512, "ingester batch threshold")
	delay := flag.Duration("delay", 5*time.Millisecond, "ingester flush deadline")
	eps := flag.Float64("eps", 0.25, "msfweight approximation parameter")
	maxW := flag.Int64("maxw", 1<<20, "msfweight maximum edge weight")
	k := flag.Int("k", 2, "kcert certificate order")
	seed := flag.Uint64("seed", 0xC0FFEE, "structure seed")
	flag.Parse()

	names := stream.SplitMonitors(*monitors)
	svc, err := stream.NewService(stream.ServiceConfig{
		Window: stream.WindowConfig{
			N:           *n,
			Seed:        *seed,
			Monitors:    names,
			Monitor:     stream.MonitorConfig{Eps: *eps, MaxWeight: *maxW, K: *k},
			MaxArrivals: *window,
			MaxAge:      *maxAge,
		},
		Ingest: stream.IngesterConfig{MaxBatch: *batch, MaxDelay: *delay},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           stream.NewServer(svc).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("swserver listening on %s (n=%d, monitors=%s, window=%d, maxage=%v, batch=%d/%v)",
		*addr, *n, strings.Join(names, ","), *window, *maxAge, *batch, *delay)

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	svc.Close()
	log.Printf("bye")
}
