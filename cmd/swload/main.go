// Command swload drives an swserver end-to-end and reports sustained
// ingest throughput (edges/sec) and client-observed query latency (p50 and
// p99). By default it spins up an in-process server on a loopback port, so
// the whole HTTP → ingester → window pipeline is exercised; point -url at a
// running swserver to load-test remotely.
//
// The -compare mode runs the same stream twice against a fresh in-process
// server — once with the configured ingester batch threshold and once with
// MaxBatch=1 (one edge per BatchInsert) — demonstrating the batch economics
// of Theorem 1.1: the batched pipeline amortizes O(ℓ·lg(1+n/ℓ)) work over ℓ
// edges where the unbatched one pays the full lg factor per edge.
//
// The -fanout-compare mode runs the same stream with all five monitors
// twice — parallel monitor fan-out vs sequential — and reports the mean
// batch apply time (write-lock hold) of each, isolating the fork-join win.
//
// The -windows M mode runs M windows in one registry server with producers
// and readers spread across them (multi-tenant). Adding -compare drives the
// same per-window streams one window at a time instead, measuring what
// sharded concurrency buys over M sequential single-window runs.
//
// The -wal mode runs the same stream twice — once in-memory and once with
// the durability layer (write-ahead batch log, fsync policy from -fsync)
// — reporting what durable ingest costs, then re-opens the data directory
// and reports crash-recovery wall time twice: once seeded from the
// checkpoint's live-edge snapshot (replaying only the post-snapshot
// suffix) and once with snapshots ignored (full-suffix replay, the
// pre-snapshot behavior), so the report isolates what snapshot compaction
// buys at restart. -snapshot-threshold tunes when the checkpoint
// snapshots; -1 disables and reverts to the single full-replay number.
//
// The -mixed mode is the query-latency harness: -readers concurrent
// queriers draw endpoints from the weighted -query-mix distribution
// (default conn-heavy) against one window maintaining all five monitors,
// while -producers sustain ingest for -duration; the report carries
// per-endpoint query p50/p99/max plus ingest throughput, and the headline
// query percentiles are the worst endpoint's. This is the harness behind
// EXPERIMENTS S7: a cheap connectivity probe must not wait out the
// slowest monitor's apply.
//
// The -check-metrics mode scrapes GET /metrics — from -url, or from an
// in-process server after a short ingest so every family has samples —
// and strictly validates the Prometheus exposition: parse round-trip,
// histogram invariants (cumulative buckets, +Inf == _count), and the sw_
// naming rules. It then scrapes GET /debug/flight and checks that the
// batch flight recorder served valid JSON with non-empty span trees and
// that the exposition's histogram exemplars carry trace IDs that resolve
// in the recorder. CI's smoke step runs this against a freshly booted
// swserver.
//
// The -telemetry-compare mode runs the same stream twice — telemetry
// registry wired vs no-op recorders — and reports the ingest overhead
// the instrumentation costs. It is advisory (client-side throughput is
// noisy); the controlled guard is the fixed-iteration benchmark
// (go test ./internal/stream -bench IngestTelemetry -benchtime 20000x).
//
// The -mixed report also carries the ingest-queue backlog in both units
// (queue_batches and queue_edges, scraped from /stats before the drain),
// a per-monitor apply p50/p99 table scraped from /metrics — the
// server-side view the client percentiles can only approximate — and a
// slowest-stage attribution table scraped from the batch flight recorder
// (/debug/flight): per batch, which pipeline stage dominated its wall
// time, so fsync-bound, apply-bound, and queue-bound runs are told apart
// at a glance.
//
// -cpuprofile/-memprofile write pprof profiles of any mode; the fan-out
// labels every monitor apply with its monitor name, so a CPU profile
// attributes apply time per monitor (go tool pprof -tags).
//
//	swload -n 50000 -edges 200000 -producers 8 -chunk 256
//	swload -mixed -readers 8 -duration 5s -window 200000 -json mixed.json
//	swload -compare -json results.json
//	swload -fanout-compare -json fanout.json
//	swload -windows 4 -compare
//	swload -wal -fsync interval -json wal.json
//	swload -wal -edges 1000000 -json snap.json   # snapshot vs full-replay recovery
//	swload -check-metrics -url http://localhost:8080
//	swload -telemetry-compare -edges 500000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

type options struct {
	url           string
	n             int
	edges         int
	producers     int
	chunk         int
	readers       int
	window        int
	batch         int
	delay         time.Duration
	monitors      string
	seed          int64
	seqLevels     bool
	compare       bool
	fanoutCompare bool
	wal           bool
	fsync         string
	dataDir       string
	snapThreshold int
	windows       int
	shards        int
	mixed         bool
	duration      time.Duration
	queryMix      string
	checkMetrics  bool
	telemCompare  bool
	telemetry     bool
	ndjson        bool
	syncAck       bool
	burst         bool
	chaosOutage   time.Duration
	chaosInterval time.Duration
	cpuProfile    string
	memProfile    string
	jsonPath      string
}

// EndpointLatency is the per-endpoint latency summary of a -mixed run.
type EndpointLatency struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// MonitorLatency is one monitor's server-side apply summary, scraped from
// /metrics (-mixed only). Percentiles carry the telemetry histogram's
// bucket-upper-bound semantics: conservative upper bounds in milliseconds.
type MonitorLatency struct {
	Applies    int64   `json:"applies"`
	ApplyP50Ms float64 `json:"apply_p50_ms"`
	ApplyP99Ms float64 `json:"apply_p99_ms"`
	WaitP99Ms  float64 `json:"wait_p99_ms"`
}

// FlightSummary aggregates the batch flight recorder's traces scraped
// from /debug/flight at the end of a -mixed run: how many traces the ring
// held, how many crossed the slow threshold, and — per Dominant() — which
// pipeline stage each batch was bound on (queue wait, WAL append/fsync,
// monitor apply, or residual staging).
type FlightSummary struct {
	Traces       int            `json:"traces"`
	Slow         int            `json:"slow"`
	MeanSpans    float64        `json:"mean_spans_per_trace"`
	Dominant     map[string]int `json:"dominant"`
	WorstMs      float64        `json:"worst_ms"`
	WorstTraceID string         `json:"worst_trace_id"`
	WorstStage   string         `json:"worst_stage"`
}

// LoadResult is the machine-readable outcome of one load run.
type LoadResult struct {
	Mode          string  `json:"mode"` // "batched", "unbatched", "parallel-fanout", ...
	Fsync         string  `json:"fsync,omitempty"`
	N             int     `json:"n"`
	Windows       int     `json:"windows"`
	Edges         int64   `json:"edges"`
	Producers     int     `json:"producers"`
	Chunk         int     `json:"chunk"`
	MaxBatch      int     `json:"max_batch"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	ServerBatches int64   `json:"server_batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MeanApplyMs   float64 `json:"mean_apply_ms,omitempty"`
	// MSFWeightApplyMs is the msfweight monitor's mean write-lock hold per
	// applied op — the number the intra-monitor level fork-join moves
	// (aggregated across windows). ApplyParallelism is the effective level
	// fork-join width the run used (1 = -seq-levels).
	MSFWeightApplyMs float64 `json:"msfweight_mean_apply_ms,omitempty"`
	ApplyParallelism int     `json:"apply_parallelism,omitempty"`
	Posts            int64   `json:"posts"`
	PostP50Ms        float64 `json:"post_p50_ms"`
	PostP99Ms        float64 `json:"post_p99_ms"`
	Queries          int64   `json:"queries"`
	QueryP50Ms       float64 `json:"query_p50_ms"`
	QueryP99Ms       float64 `json:"query_p99_ms"`
	// Mixed-workload fields (-mixed only): the effective parallelism the
	// run saw, the overall query max, and the per-endpoint breakdown.
	Gomaxprocs int                        `json:"gomaxprocs,omitempty"`
	Readers    int                        `json:"readers,omitempty"`
	QueryMaxMs float64                    `json:"query_max_ms,omitempty"`
	Endpoints  map[string]EndpointLatency `json:"endpoints,omitempty"`
	// Queue backlog at the moment the -mixed clock ran out (before the
	// drain), in both units — batches alone hides skew from variable
	// submission sizes.
	QueueBatches int64 `json:"queue_batches,omitempty"`
	QueueEdges   int64 `json:"queue_edges,omitempty"`
	QueueCap     int   `json:"queue_cap,omitempty"`
	// Monitors is the server-side per-monitor apply table scraped from
	// /metrics (-mixed only).
	Monitors map[string]MonitorLatency `json:"monitors,omitempty"`
	// Flight is the batch flight-recorder attribution summary scraped
	// from /debug/flight (-mixed only).
	Flight *FlightSummary `json:"flight,omitempty"`
	// Ingest-envelope fields: the wire format the producers used ("json"
	// or "ndjson"), whether they requested durable acks (?sync=1), and the
	// admission-control outcome — how many POSTs the server rejected with
	// 429, how many edges those carried, and how long the producers spent
	// honoring Retry-After (zero under -burst, which retries immediately).
	Format        string  `json:"format,omitempty"`
	SyncAck       bool    `json:"sync_ack,omitempty"`
	RejectedPosts int64   `json:"rejected_posts,omitempty"`
	RejectedEdges int64   `json:"rejected_edges,omitempty"`
	RetryWaitSec  float64 `json:"retry_wait_sec,omitempty"`
}

// Report is the full swload output, one entry per mode.
type Report struct {
	Results []LoadResult `json:"results"`
	// Speedup is edges_per_sec(first) / edges_per_sec(second); set by the
	// two-run modes (-compare, -fanout-compare, -windows -compare).
	Speedup float64 `json:"speedup,omitempty"`
	// ApplySpeedup is mean_apply_ms(sequential) / mean_apply_ms(parallel);
	// only set by -fanout-compare.
	ApplySpeedup float64 `json:"apply_speedup,omitempty"`
	// WALOverhead is edges_per_sec(memory) / edges_per_sec(durable); only
	// set by -wal. 1.0 means free durability, 2.0 means half throughput.
	WALOverhead float64 `json:"wal_overhead,omitempty"`
	// Recovery fields (-wal only): crash-recovery rebuild of the durable
	// run's data directory into fresh monitors. When snapshots are enabled
	// these describe the snapshot-seeded path (RecoveredEdges counts only
	// the post-snapshot log suffix; RecoveredSnapshotEdges the seed).
	RecoverySec       float64 `json:"recovery_sec,omitempty"`
	RecoveredWindows  int     `json:"recovered_windows,omitempty"`
	RecoveredBatches  int64   `json:"recovered_batches,omitempty"`
	RecoveredEdges    int64   `json:"recovered_edges,omitempty"`
	ReplayEdgesPerSec float64 `json:"replay_edges_per_sec,omitempty"`
	// Snapshot-vs-full comparison (-wal with snapshots enabled):
	// RecoveryFullSec re-runs the same recovery with snapshots ignored
	// (full WAL suffix replay, the pre-snapshot behavior) and
	// RecoverySpeedup is full/snapshot wall time.
	RecoveredSnapshots     int     `json:"recovered_snapshots,omitempty"`
	RecoveredSnapshotEdges int64   `json:"recovered_snapshot_edges,omitempty"`
	RecoveryFullSec        float64 `json:"recovery_full_sec,omitempty"`
	RecoverySpeedup        float64 `json:"recovery_speedup,omitempty"`
	// TelemetryOverhead is edges_per_sec(off) / edges_per_sec(on); only
	// set by -telemetry-compare. 1.0 means free instrumentation.
	TelemetryOverhead float64 `json:"telemetry_overhead,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "target swserver base URL (empty = start one in-process)")
	flag.IntVar(&o.n, "n", 50_000, "vertices (in-process server)")
	flag.IntVar(&o.edges, "edges", 200_000, "total edges to ingest")
	flag.IntVar(&o.producers, "producers", 8, "concurrent producer goroutines")
	flag.IntVar(&o.chunk, "chunk", 256, "edges per POST /edges request")
	flag.IntVar(&o.readers, "readers", 2, "concurrent query goroutines")
	flag.IntVar(&o.window, "window", 0, "count-based window for the in-process server (0 = unbounded)")
	flag.IntVar(&o.batch, "batch", 512, "ingester batch threshold (in-process server)")
	flag.DurationVar(&o.delay, "delay", 5*time.Millisecond, "ingester flush deadline (in-process server)")
	flag.StringVar(&o.monitors, "monitors", "conn", "monitors for the in-process server")
	flag.Int64Var(&o.seed, "seed", 0xC0FFEE, "workload seed")
	flag.BoolVar(&o.seqLevels, "seq-levels", false,
		"force sequential msfweight level application (ApplyParallelism=1) instead of the default fork-join over connectivity levels — the intra-monitor parallelism measurement toggle (in-process only)")
	flag.BoolVar(&o.compare, "compare", false, "run batched vs one-edge-per-batch on the same stream (in-process only)")
	flag.BoolVar(&o.fanoutCompare, "fanout-compare", false, "run parallel vs sequential monitor fan-out with all monitors (in-process only)")
	flag.BoolVar(&o.wal, "wal", false, "run durable (write-ahead logged) vs in-memory ingest, then measure crash-recovery replay (in-process only)")
	flag.StringVar(&o.fsync, "fsync", "interval", "WAL fsync policy for -wal: batch|interval|off")
	flag.StringVar(&o.dataDir, "data-dir", "", "WAL data directory for -wal (default: a fresh temp dir, removed afterwards)")
	flag.IntVar(&o.snapThreshold, "snapshot-threshold", 100_000,
		"for -wal: checkpoint writes a live-edge snapshot when the replayable suffix exceeds this many arrivals; -1 disables (full-replay recovery only)")
	flag.IntVar(&o.windows, "windows", 1, "number of windows to spread the load over (in-process only)")
	flag.IntVar(&o.shards, "shards", 16, "registry lock shards (in-process server)")
	flag.BoolVar(&o.mixed, "mixed", false,
		"mixed-workload mode: -readers concurrent queriers (endpoint mix from -query-mix) against -duration of sustained ingest, reporting per-endpoint query p50/p99/max (in-process only)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "sustained-ingest run length for -mixed")
	flag.StringVar(&o.queryMix, "query-mix", "connected:6,components:2,bipartite:1,msfweight:1,cycle:1,stats:1",
		"weighted endpoint mix the -mixed queriers draw from (name:weight, comma-separated); kcert is available but excluded by default — its min-cut dominates the mix with query compute rather than lock wait")
	flag.BoolVar(&o.checkMetrics, "check-metrics", false,
		"scrape GET /metrics (from -url, or an in-process server after a short ingest) and strictly validate the Prometheus exposition and sw_ naming rules")
	flag.BoolVar(&o.telemCompare, "telemetry-compare", false,
		"run the same stream with the telemetry registry wired vs no-op recorders and report the ingest overhead (in-process only)")
	flag.BoolVar(&o.ndjson, "ndjson", false,
		"POST edges in the compact NDJSON wire format (?format=ndjson, one [u,v,w] array per line) instead of the JSON envelope")
	flag.BoolVar(&o.syncAck, "sync-ack", false,
		"request durable acks (?sync=1): each POST /edges returns 202 only after the batch's WAL append+fsync completed")
	flag.BoolVar(&o.burst, "burst", false,
		"burst offered load: on 429 retry immediately instead of honoring Retry-After, driving the admission budget as hard as possible")
	flag.DurationVar(&o.chaosOutage, "chaos-outage", 0,
		"with -mixed: every -chaos-interval, inject a WAL write+sync outage of this length through /admin/fault (the in-process server gets a temp WAL dir and a fault injector), exercising degrade -> re-arm -> healthy under live load; 0 = no chaos")
	flag.DurationVar(&o.chaosInterval, "chaos-interval", 5*time.Second,
		"period of the -chaos-outage schedule, measured start to start")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this path at exit")
	flag.StringVar(&o.jsonPath, "json", "", "write the report as JSON to this path (\"-\" = stdout)")
	flag.Parse()

	if o.producers < 1 || o.chunk < 1 || o.readers < 0 || o.n < 2 || o.edges < 0 || o.batch < 1 || o.windows < 1 {
		fmt.Fprintln(os.Stderr, "swload: need -producers >= 1, -chunk >= 1, -readers >= 0, -n >= 2, -edges >= 0, -batch >= 1, -windows >= 1")
		os.Exit(2)
	}
	if o.snapThreshold == 0 {
		// The library maps 0 to its own default (1M), which would silently
		// contradict whatever a user passing 0 meant.
		fmt.Fprintln(os.Stderr, "swload: -snapshot-threshold must be a positive arrival count, or -1 to disable")
		os.Exit(2)
	}
	if (o.compare || o.fanoutCompare || o.wal || o.mixed || o.telemCompare || o.seqLevels || o.windows > 1) && o.url != "" {
		fmt.Fprintln(os.Stderr, "-compare/-fanout-compare/-wal/-mixed/-telemetry-compare/-seq-levels/-windows need the in-process server; drop -url")
		os.Exit(2)
	}
	if b2i(o.compare)+b2i(o.fanoutCompare)+b2i(o.wal)+b2i(o.mixed)+b2i(o.checkMetrics)+b2i(o.telemCompare) > 1 {
		fmt.Fprintln(os.Stderr, "pick one of -compare, -fanout-compare, -wal, -mixed, -check-metrics and -telemetry-compare")
		os.Exit(2)
	}
	if o.mixed && o.readers < 1 {
		fmt.Fprintln(os.Stderr, "swload -mixed: need -readers >= 1 (the queriers are the workload under test)")
		os.Exit(2)
	}
	if o.chaosOutage > 0 {
		if !o.mixed {
			fmt.Fprintln(os.Stderr, "swload: -chaos-outage needs -mixed (the outage schedule drives the in-process mixed-load server)")
			os.Exit(2)
		}
		if o.chaosOutage >= o.chaosInterval {
			fmt.Fprintln(os.Stderr, "swload: need -chaos-outage < -chaos-interval (the window must get time to heal between outages)")
			os.Exit(2)
		}
	}
	// Producers and readers are spread over windows round-robin; with
	// fewer than one per window some windows would get no load at all
	// (and a -compare baseline would measure a different workload), so
	// scale them up to cover every window.
	if o.windows > 1 {
		if o.producers < o.windows {
			fmt.Fprintf(os.Stderr, "swload: raising -producers %d -> %d (one per window)\n", o.producers, o.windows)
			o.producers = o.windows
		}
		if o.readers > 0 && o.readers < o.windows {
			fmt.Fprintf(os.Stderr, "swload: raising -readers %d -> %d (one per window)\n", o.readers, o.windows)
			o.readers = o.windows
		}
	}

	// With -json - the report owns stdout; the human-readable result
	// blocks move to stderr so the JSON stays machine-parseable.
	jsonStdout := os.Stdout
	if o.jsonPath == "-" {
		os.Stdout = os.Stderr
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var rep Report
	switch {
	case o.checkMetrics:
		runCheckMetrics(o)
		return
	case o.telemCompare:
		runTelemetryCompare(o, &rep)
	case o.mixed:
		res := runMixed(o)
		rep.Results = []LoadResult{res}
		printMixed(res)
	case o.wal:
		runWALCompare(o, &rep)
	case o.fanoutCompare:
		// The fan-out win only exists when there is fan-out: force the full
		// monitor set so each batch has five independent applies.
		o.monitors = ""
		par := runInProc(o, "parallel-fanout", o.batch, false, false, nil)
		seq := runInProc(o, "sequential-fanout", o.batch, true, false, nil)
		rep.Results = []LoadResult{par, seq}
		if seq.EdgesPerSec > 0 {
			rep.Speedup = par.EdgesPerSec / seq.EdgesPerSec
		}
		if par.MeanApplyMs > 0 {
			rep.ApplySpeedup = seq.MeanApplyMs / par.MeanApplyMs
		}
		printResult(par)
		printResult(seq)
		fmt.Printf("\nparallel/sequential fan-out: ingest speedup x%.2f, mean-apply speedup x%.2f (GOMAXPROCS=%d)\n",
			rep.Speedup, rep.ApplySpeedup, maxprocs())
	case o.windows > 1 && o.compare:
		multi := runInProc(o, "multi-window", o.batch, false, false, nil)
		seq := runInProc(o, "sequential-windows", o.batch, false, true, nil)
		rep.Results = []LoadResult{multi, seq}
		if seq.EdgesPerSec > 0 {
			rep.Speedup = multi.EdgesPerSec / seq.EdgesPerSec
		}
		printResult(multi)
		printResult(seq)
		fmt.Printf("\n%d concurrent windows vs %d sequential runs: aggregate ingest speedup x%.2f\n",
			o.windows, o.windows, rep.Speedup)
	case o.compare:
		batched := runInProc(o, "batched", o.batch, false, false, nil)
		unbatched := runInProc(o, "unbatched", 1, false, false, nil)
		rep.Results = []LoadResult{batched, unbatched}
		if unbatched.EdgesPerSec > 0 {
			rep.Speedup = batched.EdgesPerSec / unbatched.EdgesPerSec
		}
		printResult(batched)
		printResult(unbatched)
		fmt.Printf("\nbatched/unbatched ingest speedup: x%.2f\n", rep.Speedup)
	case o.url != "":
		res := runLoad(o, "batched", o.url, []string{""}, nil)
		rep.Results = []LoadResult{res}
		printResult(res)
	default:
		res := runInProc(o, "batched", o.batch, false, false, nil)
		rep.Results = []LoadResult{res}
		printResult(res)
	}

	if o.jsonPath != "" {
		os.Stdout = jsonStdout // restore: "-" writes the report to real stdout
		if err := cli.WriteJSONReport(o.jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func maxprocs() int { return runtime.GOMAXPROCS(0) }

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// mixEntry is one weighted endpoint of the -mixed querier mix.
type mixEntry struct {
	name   string
	weight int
	// path renders one request path for the endpoint (connected draws
	// random vertices per request; everything else is fixed).
	path func(r *rand.Rand) string
}

// parseQueryMix parses "-query-mix connected:6,components:2,..." into
// weighted entries. Unknown endpoint names are an error — a typo silently
// skewing the measured mix would poison a baseline comparison.
func parseQueryMix(spec string, n int) ([]mixEntry, error) {
	fixed := func(p string) func(*rand.Rand) string {
		return func(*rand.Rand) string { return p }
	}
	paths := map[string]func(*rand.Rand) string{
		"connected": func(r *rand.Rand) string {
			return fmt.Sprintf("/query/connected?u=%d&v=%d", r.Intn(n), r.Intn(n))
		},
		"components": fixed("/query/components"),
		"bipartite":  fixed("/query/bipartite"),
		"msfweight":  fixed("/query/msfweight"),
		"cycle":      fixed("/query/cycle"),
		"kcert":      fixed("/query/kcert"),
		"summary":    fixed("/query/summary"),
		"stats":      fixed("/stats"),
	}
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("swload: bad weight in -query-mix entry %q", part)
			}
			weight = w
		}
		path, ok := paths[name]
		if !ok {
			return nil, fmt.Errorf("swload: unknown -query-mix endpoint %q", name)
		}
		mix = append(mix, mixEntry{name: name, weight: weight, path: path})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("swload: empty -query-mix")
	}
	return mix, nil
}

// runChaos drives the -chaos-outage schedule against the server's chaos
// control plane: every interval it installs WAL write+sync fault rules
// through POST /admin/fault (matching ".seg" segment files, so manifest
// and snapshot I/O stay healthy and the blast radius is exactly the WAL
// append path), holds the outage, then clears the rules and lets the
// self-heal loop re-arm the log. Returns the number of completed outages.
func runChaos(client *http.Client, base string, outage, interval time.Duration, stop <-chan struct{}) int {
	const rules = `[
		{"id":"chaos-write","op":"write","path":".seg","kind":"eio"},
		{"id":"chaos-sync","op":"sync","path":".seg","kind":"eio"}
	]`
	clear := func() {
		req, _ := http.NewRequest(http.MethodDelete, base+"/admin/fault", nil)
		if resp, err := client.Do(req); err == nil {
			drainBody(resp)
		}
	}
	outages := 0
	for {
		select {
		case <-stop:
			return outages
		case <-time.After(interval - outage):
		}
		resp, err := client.Post(base+"/admin/fault", "application/json", strings.NewReader(rules))
		if err != nil {
			return outages
		}
		drainBody(resp)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "swload chaos: POST /admin/fault: status %d\n", resp.StatusCode)
			return outages
		}
		select {
		case <-stop:
			clear()
			return outages
		case <-time.After(outage):
		}
		clear()
		outages++
	}
}

// runMixed is the mixed-workload latency harness: -readers concurrent
// queriers draw endpoints from the -query-mix distribution against one
// window with the full monitor set, while -producers sustain ingest for
// -duration. It reports ingest throughput plus per-endpoint query
// p50/p99/max — the numbers the per-monitor-locking refactor is judged on
// (a cheap conn probe must not wait out the slowest monitor's apply).
func runMixed(o options) LoadResult {
	mix, err := parseQueryMix(o.queryMix, o.n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	totalWeight := 0
	for _, m := range mix {
		totalWeight += m.weight
	}

	setupStart := time.Now()
	// Chaos runs need a durability layer to break: a temp WAL dir plus a
	// fault injector the outage scheduler toggles through /admin/fault.
	var injector *fault.Injector
	var persist *stream.PersistenceConfig
	if o.chaosOutage > 0 {
		dir, err := os.MkdirTemp("", "swload-chaos-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		injector = fault.NewInjector(nil, o.seed)
		pol, err := stream.ParseFsyncPolicy(o.fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		persist = &stream.PersistenceConfig{
			Dir:                dir,
			Fsync:              pol,
			CheckpointInterval: time.Second,
		}
	}
	reg, _, err := stream.OpenRegistry(stream.RegistryConfig{
		Shards:        o.shards,
		Persistence:   persist,
		FaultInjector: injector,
		// The mixed harness is also the observability harness: wire the
		// telemetry registry so the report can carry the server-side
		// per-monitor apply table alongside the client percentiles.
		Telemetry: telemetry.NewRegistry(),
		Template: stream.ServiceConfig{
			Window: stream.WindowConfig{
				N:                o.n,
				Seed:             uint64(o.seed),
				MaxArrivals:      o.window,
				ApplyParallelism: applyParallelism(o),
				// Monitors deliberately left unset = ALL monitors: the
				// harness exists to show queries contending with the full
				// fan-out, so -monitors is ignored in this mode.
			},
			// A shallow queue (QueueLen counts queued submissions, not
			// edges) keeps the producers in lockstep with the window's
			// sustainable apply rate: with the default 8×MaxBatch slots a
			// 5s burst can park millions of edges in the queue, the
			// reported "ingest throughput" measures only how fast the
			// client can enqueue, and the post-run drain takes minutes.
			// Backpressure lands in POST latency instead, which is the
			// honest place for it.
			Ingest: stream.IngesterConfig{MaxBatch: o.batch, MaxDelay: o.delay, QueueLen: o.producers},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer reg.Close()
	svc, err := reg.Create(stream.DefaultWindow, reg.Template())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "swload -mixed: monitors built in %v; running %v of mixed load\n",
		time.Since(setupStart).Round(time.Millisecond), o.duration)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: stream.NewRegistryServer(reg, stream.ServerConfig{}).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 4 * (o.producers + o.readers)
	transport.MaxIdleConnsPerHost = 4 * (o.producers + o.readers)
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}

	var postRec stream.LatencyRecorder
	queryRecs := stream.NewEndpointStats()
	var posted, posts atomic.Int64
	stop := make(chan struct{})
	po := &poster{client: client, base: base, ndjson: o.ndjson, syncAck: o.syncAck, burst: o.burst}

	// Outage scheduler: degrade → re-arm → healthy cycles under live load.
	var chaosWG sync.WaitGroup
	var outages int
	if o.chaosOutage > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			outages = runChaos(client, base, o.chaosOutage, o.chaosInterval, stop)
		}()
	}

	// Producers: sustained ingest until the clock runs out.
	var prodWG, readWG sync.WaitGroup
	start := time.Now()
	for p := 0; p < o.producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			r := rand.New(rand.NewSource(o.seed + int64(p)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				edges := make([]wireEdge, o.chunk)
				for i := range edges {
					u := int32(r.Intn(o.n))
					v := int32(r.Intn(o.n))
					for v == u {
						v = int32(r.Intn(o.n))
					}
					edges[i] = wireEdge{U: u, V: v, W: 1 + r.Int63n(1<<10)}
				}
				if !po.post("", edges, &postRec, stop) {
					return
				}
				posted.Add(int64(len(edges)))
				posts.Add(1)
			}
		}(p)
	}

	// Queriers: each draws endpoints from the weighted mix.
	for q := 0; q < o.readers; q++ {
		readWG.Add(1)
		go func(q int) {
			defer readWG.Done()
			r := rand.New(rand.NewSource(o.seed + 1000 + int64(q)))
			badLogged := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				pick := r.Intn(totalWeight)
				var ep mixEntry
				for _, m := range mix {
					if pick -= m.weight; pick < 0 {
						ep = m
						break
					}
				}
				t0 := time.Now()
				resp, err := client.Get(base + ep.path(r))
				if err != nil {
					select {
					case <-stop:
						return
					default:
					}
					fmt.Fprintf(os.Stderr, "GET %s: %v\n", ep.name, err)
					return
				}
				drainBody(resp)
				if resp.StatusCode != http.StatusOK {
					if !badLogged {
						fmt.Fprintf(os.Stderr, "GET %s: status %d (not counted)\n", ep.name, resp.StatusCode)
						badLogged = true
					}
					continue
				}
				queryRecs.Recorder(ep.name).Observe(time.Since(t0))
			}
		}(q)
	}

	time.Sleep(o.duration)
	close(stop)
	prodWG.Wait()
	readWG.Wait()
	chaosWG.Wait()
	elapsed := time.Since(start)

	if o.chaosOutage > 0 {
		// The last outage may still be healing: wait for /readyz to report
		// ready again, then surface the degrade/heal ledger.
		healed := false
		for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); time.Sleep(100 * time.Millisecond) {
			resp, err := client.Get(base + "/readyz")
			if err != nil {
				break
			}
			drainBody(resp)
			if resp.StatusCode == http.StatusOK {
				healed = true
				break
			}
		}
		var after struct {
			Persistence struct {
				WALHeals     int64 `json:"wal_heals"`
				GapEdges     int64 `json:"gap_edges"`
				AppendErrors int64 `json:"append_errors"`
			} `json:"persistence"`
		}
		if resp, err := client.Get(base + "/stats"); err == nil {
			_ = json.NewDecoder(resp.Body).Decode(&after)
			drainBody(resp)
		}
		fmt.Fprintf(os.Stderr,
			"swload -mixed chaos: %d outage(s) of %v injected, %d WAL append/fsync failures, %d heals, ready_again=%v\n",
			outages, o.chaosOutage, after.Persistence.AppendErrors, after.Persistence.WALHeals, healed)
		if !healed {
			fmt.Fprintln(os.Stderr, "swload -mixed chaos: server did not return to ready within 15s — degraded state is stuck")
			os.Exit(1)
		}
	}

	// Queue backlog before the drain: what the window still owed when the
	// clock ran out, in both units (the /stats read the gauges mirror).
	var backlog struct {
		Ingest struct {
			QueueBatches int64 `json:"queue_batches"`
			QueueEdges   int64 `json:"queue_edges"`
			QueueCap     int   `json:"queue_cap"`
		} `json:"ingest"`
	}
	if resp, err := client.Get(base + "/stats"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&backlog)
		drainBody(resp)
	}
	svc.Flush()

	// Server-side per-monitor apply percentiles, scraped from /metrics
	// after the drain so the histograms hold every applied batch.
	monitors := make(map[string]MonitorLatency)
	if exp, err := scrapeMetrics(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "swload -mixed: /metrics scrape failed: %v\n", err)
	} else {
		for _, name := range stream.AllMonitors() {
			lbl := map[string]string{"monitor": name}
			cnt, ok := exp.Value("sw_monitor_apply_seconds_count", lbl)
			if !ok || cnt == 0 {
				continue
			}
			monitors[name] = MonitorLatency{
				Applies:    int64(cnt),
				ApplyP50Ms: histQuantileMs(exp, "sw_monitor_apply_seconds", lbl, 0.50),
				ApplyP99Ms: histQuantileMs(exp, "sw_monitor_apply_seconds", lbl, 0.99),
				WaitP99Ms:  histQuantileMs(exp, "sw_monitor_wait_seconds", lbl, 0.99),
			}
		}
	}

	// Batch flight traces, scraped after the drain so every batch the run
	// produced is in the ring (up to ring capacity). Each trace's Dominant()
	// stage attributes where that batch spent its wall time: fsync-bound,
	// apply-bound, or queue-bound runs look completely different here even
	// when their throughput numbers agree.
	var flight *FlightSummary
	if fr, err := scrapeFlight(client, base, "?kind=batch&limit=1024"); err != nil {
		fmt.Fprintf(os.Stderr, "swload -mixed: /debug/flight scrape failed: %v\n", err)
	} else if len(fr.Traces) > 0 {
		flight = summarizeFlight(fr)
	}

	// Merge the per-endpoint histograms into the overall query summary and
	// the per-endpoint report.
	endpoints := make(map[string]EndpointLatency)
	var totalQueries int64
	var worstP50, worstP99, worstMax float64
	for name, snap := range queryRecs.Snapshot() {
		endpoints[name] = EndpointLatency{
			Count:  snap.Count,
			MeanMs: float64(snap.Mean) / 1e6,
			P50Ms:  float64(snap.P50) / 1e6,
			P99Ms:  float64(snap.P99) / 1e6,
			MaxMs:  float64(snap.Max) / 1e6,
		}
		totalQueries += snap.Count
		worstP50 = max(worstP50, float64(snap.P50)/1e6)
		worstP99 = max(worstP99, float64(snap.P99)/1e6)
		worstMax = max(worstMax, float64(snap.Max)/1e6)
	}

	st := svc.Window().Stats()
	ps := postRec.Snapshot()
	res := LoadResult{
		Mode:        "mixed",
		N:           o.n,
		Windows:     1,
		Edges:       posted.Load(),
		Producers:   o.producers,
		Chunk:       o.chunk,
		MaxBatch:    o.batch,
		ElapsedSec:  elapsed.Seconds(),
		EdgesPerSec: float64(posted.Load()) / elapsed.Seconds(),
		Posts:       ps.Count,
		PostP50Ms:   float64(ps.P50) / 1e6,
		PostP99Ms:   float64(ps.P99) / 1e6,
		Queries:     totalQueries,
		// The headline query percentiles are the WORST endpoint's, not the
		// merged histogram's: the merged view would let a flood of cheap
		// conn probes mask a stalled endpoint, which is exactly the failure
		// mode the mixed harness exists to expose.
		QueryP50Ms:    worstP50,
		QueryP99Ms:    worstP99,
		QueryMaxMs:    worstMax,
		Gomaxprocs:    maxprocs(),
		Readers:       o.readers,
		Endpoints:     endpoints,
		QueueBatches:  backlog.Ingest.QueueBatches,
		QueueEdges:    backlog.Ingest.QueueEdges,
		QueueCap:      backlog.Ingest.QueueCap,
		Monitors:      monitors,
		Flight:        flight,
		ServerBatches: st.Batches,
	}
	if st.Batches > 0 {
		res.MeanBatchSize = float64(st.Arrivals) / float64(st.Batches)
		res.MeanApplyMs = float64(st.ApplyNS) / float64(st.Batches) / 1e6
	}
	res.ApplyParallelism = svc.Window().ApplyParallelism()
	for _, ms := range svc.Window().MonitorStats() {
		if ms.Name == stream.MonitorMSFWeight && ms.Ops > 0 {
			res.MSFWeightApplyMs = float64(ms.ApplyNS) / float64(ms.Ops) / 1e6
		}
	}
	po.fill(&res)
	return res
}

func printMixed(r LoadResult) {
	fmt.Printf("== mixed workload (GOMAXPROCS=%d, producers=%d, readers=%d, apply-parallelism=%d) ==\n",
		r.Gomaxprocs, r.Producers, r.Readers, r.ApplyParallelism)
	fmt.Printf("  ingest: %d edges in %.2fs  →  %.0f edges/sec (batches %d, mean size %.1f, mean apply %.3fms)\n",
		r.Edges, r.ElapsedSec, r.EdgesPerSec, r.ServerBatches, r.MeanBatchSize, r.MeanApplyMs)
	fmt.Printf("  POST   p50 %.3fms  p99 %.3fms  (%d requests)\n", r.PostP50Ms, r.PostP99Ms, r.Posts)
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := r.Endpoints[name]
		fmt.Printf("  %-10s p50 %7.3fms  p99 %7.3fms  max %8.3fms  (%d requests)\n",
			name, ep.P50Ms, ep.P99Ms, ep.MaxMs, ep.Count)
	}
	fmt.Printf("  worst endpoint: p50 %.3fms  p99 %.3fms  max %.3fms  (%d queries total)\n",
		r.QueryP50Ms, r.QueryP99Ms, r.QueryMaxMs, r.Queries)
	fmt.Printf("  queue backlog at cutoff: %d batches / %d edges (cap %d submissions)\n",
		r.QueueBatches, r.QueueEdges, r.QueueCap)
	printAdmission(r)
	if len(r.Monitors) > 0 {
		fmt.Printf("  server-side monitor applies (from /metrics):\n")
		mons := make([]string, 0, len(r.Monitors))
		for name := range r.Monitors {
			mons = append(mons, name)
		}
		sort.Strings(mons)
		for _, name := range mons {
			m := r.Monitors[name]
			fmt.Printf("    %-10s apply p50 %7.3fms  p99 %7.3fms  wait p99 %7.3fms  (%d applies)\n",
				name, m.ApplyP50Ms, m.ApplyP99Ms, m.WaitP99Ms, m.Applies)
		}
	}
	if f := r.Flight; f != nil && f.Traces > 0 {
		fmt.Printf("  slowest-stage attribution (from /debug/flight, %d batch traces, %d slow, %.1f spans/trace):\n",
			f.Traces, f.Slow, f.MeanSpans)
		stages := make([]string, 0, len(f.Dominant))
		for s := range f.Dominant {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			n := f.Dominant[s]
			fmt.Printf("    %-6s bound: %4d batches (%.0f%%)\n", s, n, 100*float64(n)/float64(f.Traces))
		}
		fmt.Printf("    worst batch: %.3fms, %s-bound, trace %s  →  curl /debug/flight?min_ms=%.0f\n",
			f.WorstMs, f.WorstStage, f.WorstTraceID, f.WorstMs)
	}
}

// scrapeFlight GETs base+"/debug/flight"+query and decodes the recorder's
// JSON response.
func scrapeFlight(client *http.Client, base, query string) (*trace.Response, error) {
	resp, err := client.Get(base + "/debug/flight" + query)
	if err != nil {
		return nil, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/flight: status %d", resp.StatusCode)
	}
	var fr trace.Response
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return nil, fmt.Errorf("GET /debug/flight: %w", err)
	}
	return &fr, nil
}

// summarizeFlight reduces a scraped batch-trace set to the attribution
// summary: per-stage dominant counts plus the single worst batch.
func summarizeFlight(fr *trace.Response) *FlightSummary {
	fs := &FlightSummary{
		Traces:   len(fr.Traces),
		Dominant: make(map[string]int),
	}
	spans := 0
	for i := range fr.Traces {
		v := &fr.Traces[i]
		spans += len(v.Spans)
		if v.Slow {
			fs.Slow++
		}
		fs.Dominant[v.Dominant()]++
		if v.TotalMS > fs.WorstMs {
			fs.WorstMs = v.TotalMS
			fs.WorstTraceID = v.TraceID
			fs.WorstStage = v.Dominant()
		}
	}
	fs.MeanSpans = float64(spans) / float64(len(fr.Traces))
	return fs
}

// scrapeMetrics GETs base+"/metrics" and returns the strictly parsed and
// validated exposition.
func scrapeMetrics(client *http.Client, base string) (*telemetry.Exposition, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	return exp, nil
}

// histQuantileMs reads the q-quantile of one histogram child out of a
// scraped exposition, in milliseconds. The answer carries the bucket
// upper-bound semantics of the server's histograms: a conservative upper
// bound on the true quantile.
func histQuantileMs(exp *telemetry.Exposition, family string, match map[string]string, q float64) float64 {
	type bkt struct{ le, cum float64 }
	var bs []bkt
	for _, s := range exp.Samples {
		if s.Name != family+"_bucket" {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil {
			continue
		}
		bs = append(bs, bkt{le: le, cum: s.Value})
	}
	if len(bs) < 2 {
		return 0
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	total := bs[len(bs)-1].cum // the +Inf bucket
	if total == 0 {
		return 0
	}
	target := q * total
	for _, b := range bs {
		if b.cum >= target && !math.IsInf(b.le, +1) {
			return b.le * 1e3
		}
	}
	// Only +Inf reaches the target: report the largest finite bound.
	return bs[len(bs)-2].le * 1e3
}

// runCheckMetrics is the exposition gate: scrape /metrics and fail loudly
// on anything malformed. Against -url it validates a live server (the CI
// smoke step); in-process it first pushes a short stream through the full
// pipeline so every sw_ family has samples to check.
func runCheckMetrics(o options) {
	client := &http.Client{Timeout: 30 * time.Second}
	base := o.url
	if base == "" {
		reg, _, err := stream.OpenRegistry(stream.RegistryConfig{
			Shards:    o.shards,
			Telemetry: telemetry.NewRegistry(),
			Template: stream.ServiceConfig{
				Window: stream.WindowConfig{
					N:           o.n,
					Seed:        uint64(o.seed),
					MaxArrivals: o.window,
					// All monitors, so every per-monitor family appears.
				},
				Ingest: stream.IngesterConfig{MaxBatch: o.batch, MaxDelay: o.delay},
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer reg.Close()
		svc, err := reg.Create(stream.DefaultWindow, reg.Template())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: stream.NewRegistryServer(reg, stream.ServerConfig{}).Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()

		// One POST, one query, one flush: ingest, HTTP, and lifecycle
		// families all gain mass through the real handlers.
		r := rand.New(rand.NewSource(o.seed))
		edges := make([]wireEdge, 256)
		for i := range edges {
			u := int32(r.Intn(o.n))
			v := int32(r.Intn(o.n))
			for v == u {
				v = int32(r.Intn(o.n))
			}
			edges[i] = wireEdge{U: u, V: v}
		}
		body, _ := json.Marshal(map[string]any{"edges": edges})
		resp, err := client.Post(base+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		drainBody(resp)
		if resp, err := client.Get(base + "/query/connected?u=0&v=1"); err == nil {
			drainBody(resp)
		}
		svc.Flush()
	}

	exp, err := scrapeMetrics(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swload -check-metrics: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	for name, typ := range exp.Types {
		if err := telemetry.CheckMetricName(name, typ); err != nil {
			fmt.Fprintf(os.Stderr, "swload -check-metrics: %v\n", err)
			bad++
		}
		if !strings.HasPrefix(name, "sw_") {
			fmt.Fprintf(os.Stderr, "swload -check-metrics: family %q missing the sw_ prefix\n", name)
			bad++
		}
		if exp.Help[name] == "" {
			fmt.Fprintf(os.Stderr, "swload -check-metrics: family %q has no HELP text\n", name)
			bad++
		}
	}
	// Families the admission layer must always export, budgets configured
	// or not — CI's smoke step asserts rejections out of these, so their
	// absence has to fail here, not silently scrape as zero.
	for _, fam := range []string{"sw_ingest_rejected_total", "sw_ingest_rejected_edges_total", "sw_ingest_queue_bytes"} {
		if _, ok := exp.Types[fam]; !ok {
			fmt.Fprintf(os.Stderr, "swload -check-metrics: family %q missing from the exposition\n", fam)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}

	// The flight recorder rides along on the same gate: /debug/flight must
	// serve valid JSON whose batch traces carry non-empty span trees, and
	// any exemplar the exposition advertises must name a trace the recorder
	// can actually produce — the whole point of exemplars is that the ID on
	// the histogram resolves to a span tree.
	fr, err := scrapeFlight(client, base, "?kind=batch&limit=1024")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swload -check-metrics: %v\n", err)
		os.Exit(1)
	}
	traceIDs := make(map[string]bool, len(fr.Traces))
	for i := range fr.Traces {
		v := &fr.Traces[i]
		if len(v.Spans) == 0 {
			fmt.Fprintf(os.Stderr, "swload -check-metrics: flight trace %s has an empty span tree\n", v.TraceID)
			bad++
		}
		traceIDs[v.TraceID] = true
	}
	if o.url == "" && len(fr.Traces) == 0 {
		// In-process we just pushed a batch through; an empty ring means the
		// recorder never saw it.
		fmt.Fprintln(os.Stderr, "swload -check-metrics: /debug/flight returned no batch traces after ingest")
		bad++
	}
	resolved := 0
	for _, ex := range exp.Exemplars {
		if ex.Kind != "max" {
			continue
		}
		if traceIDs[ex.TraceID] {
			resolved++
		}
	}
	if len(fr.Traces) > 0 && countMaxExemplars(exp) > 0 && resolved == 0 {
		// Exemplars point at the all-time max observation, which can have
		// aged out of a small ring on a long-lived server; in-process the
		// max IS the batch we just applied, so it must resolve.
		if o.url == "" {
			fmt.Fprintln(os.Stderr, "swload -check-metrics: no histogram exemplar trace ID resolves in /debug/flight")
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("metrics OK: %d families, %d samples, exposition valid\n", len(exp.Types), len(exp.Samples))
	fmt.Printf("flight OK: %d batch traces with span trees, %d/%d max exemplars resolve\n",
		len(fr.Traces), resolved, countMaxExemplars(exp))
}

// countMaxExemplars counts the max-kind exemplar lines in a scraped
// exposition.
func countMaxExemplars(exp *telemetry.Exposition) int {
	n := 0
	for _, ex := range exp.Exemplars {
		if ex.Kind == "max" {
			n++
		}
	}
	return n
}

// runTelemetryCompare runs the same stream twice — telemetry registry
// wired vs no-op recorders — and reports what the instrumentation costs.
// Client-side throughput is noisy, so the verdict here is advisory; the
// controlled guard is the fixed-iteration Go benchmark (see BENCH.md).
func runTelemetryCompare(o options, rep *Report) {
	o.telemetry = true
	on := runInProc(o, "telemetry-on", o.batch, false, false, nil)
	o.telemetry = false
	off := runInProc(o, "telemetry-off", o.batch, false, false, nil)
	rep.Results = []LoadResult{on, off}
	if on.EdgesPerSec > 0 {
		rep.TelemetryOverhead = off.EdgesPerSec / on.EdgesPerSec
	}
	printResult(on)
	printResult(off)
	pct := (rep.TelemetryOverhead - 1) * 100
	fmt.Printf("\ntelemetry on/off ingest overhead: %+.1f%% (budget <3%%; client-side numbers are noisy — "+
		"the authoritative guard is go test ./internal/stream -bench IngestTelemetry -benchtime 20000x)\n", pct)
	if pct > 3 {
		fmt.Fprintln(os.Stderr, "swload -telemetry-compare: overhead above the 3% budget on this run; re-check with the fixed-iteration benchmark")
	}
}

// runWALCompare measures what durability costs and what recovery buys:
// the same stream in-memory vs write-ahead logged, then a crash-recovery
// replay of the durable run's data directory into fresh monitors.
func runWALCompare(o options, rep *Report) {
	pol, err := stream.ParseFsyncPolicy(o.fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dir := o.dataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "swload-wal-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	} else if _, err := os.Stat(filepath.Join(dir, wal.ManifestName)); err == nil {
		// A leftover manifest would make the durable run recover (and
		// re-measure) the previous run's windows — and its Create of the
		// same names would fail. Never delete user data; just refuse.
		fmt.Fprintf(os.Stderr, "swload -wal: %s already holds a WAL manifest; point -data-dir at a fresh directory\n", dir)
		os.Exit(2)
	}
	persist := &stream.PersistenceConfig{Dir: dir, Fsync: pol, SnapshotThreshold: o.snapThreshold}

	mem := runInProc(o, "memory", o.batch, false, false, nil)
	dur := runInProc(o, "wal", o.batch, false, false, persist)
	dur.Fsync = string(pol)
	rep.Results = []LoadResult{mem, dur}
	if dur.EdgesPerSec > 0 {
		rep.WALOverhead = mem.EdgesPerSec / dur.EdgesPerSec
	}

	// Crash recovery, full-suffix replay: re-open the data directory —
	// no snapshot exists yet, so every unexpired logged batch replays into
	// fresh monitors: the pre-snapshot recovery path and the baseline the
	// snapshot attacks (with an unbounded window the whole log replays —
	// the worst case). Then, on the recovered registry, run the checkpoint
	// a production ticker would have run: with the replayable suffix past
	// -snapshot-threshold it writes the live-edge snapshot (and GC
	// reclaims the log segments the snapshot covers).
	regFull, recFull, err := stream.OpenRegistry(stream.RegistryConfig{Shards: o.shards, Persistence: persist})
	if err != nil {
		fmt.Fprintf(os.Stderr, "recovery (full replay): %v\n", err)
		os.Exit(1)
	}
	if o.snapThreshold >= 0 {
		ck, err := regFull.Checkpoint()
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			os.Exit(1)
		}
		if ck.Snapshots == 0 {
			fmt.Fprintf(os.Stderr, "swload -wal: no snapshot written (replayable suffix <= -snapshot-threshold %d); raise -edges or lower the threshold\n", o.snapThreshold)
		}
	}
	regFull.Close()

	printResult(mem)
	printResult(dur)
	fmt.Printf("\ndurable/in-memory: ingest overhead x%.2f (fsync=%s)\n", rep.WALOverhead, pol)

	if o.snapThreshold < 0 {
		// Snapshots disabled: the full replay is the only recovery path.
		rep.RecoverySec = recFull.Elapsed.Seconds()
		rep.RecoveredWindows = recFull.Windows
		rep.RecoveredBatches = recFull.Batches
		rep.RecoveredEdges = recFull.Edges
		if recFull.Elapsed > 0 {
			rep.ReplayEdgesPerSec = float64(recFull.Edges) / recFull.Elapsed.Seconds()
		}
		fmt.Printf("recovery: %d windows, %d batches / %d edges replayed in %.0fms (%.0f edges/sec)\n",
			recFull.Windows, recFull.Batches, recFull.Edges, rep.RecoverySec*1e3, rep.ReplayEdgesPerSec)
		return
	}

	// Crash recovery, snapshot-seeded: this recovery finds the snapshot,
	// seeds each window with one mega-batch apply, and replays only the
	// post-snapshot records.
	regSnap, recSnap, err := stream.OpenRegistry(stream.RegistryConfig{Shards: o.shards, Persistence: persist})
	if err != nil {
		fmt.Fprintf(os.Stderr, "recovery (snapshot): %v\n", err)
		os.Exit(1)
	}
	regSnap.Close()
	rep.RecoverySec = recSnap.Elapsed.Seconds()
	rep.RecoveredWindows = recSnap.Windows
	rep.RecoveredBatches = recSnap.Batches
	rep.RecoveredEdges = recSnap.Edges
	rep.RecoveredSnapshots = recSnap.Snapshots
	rep.RecoveredSnapshotEdges = recSnap.SnapshotEdges
	rep.RecoveryFullSec = recFull.Elapsed.Seconds()
	if total := recSnap.Edges + recSnap.SnapshotEdges; recSnap.Elapsed > 0 && total > 0 {
		rep.ReplayEdgesPerSec = float64(total) / recSnap.Elapsed.Seconds()
	}
	if rep.RecoverySec > 0 {
		rep.RecoverySpeedup = rep.RecoveryFullSec / rep.RecoverySec
	}
	fmt.Printf("recovery (full replay):  %d windows, %d batches / %d edges replayed in %.0fms\n",
		recFull.Windows, recFull.Batches, recFull.Edges, rep.RecoveryFullSec*1e3)
	fmt.Printf("recovery (snapshot):     %d windows, %d snapshots / %d edges seeded + %d batches / %d edges replayed in %.0fms\n",
		recSnap.Windows, recSnap.Snapshots, recSnap.SnapshotEdges, recSnap.Batches, recSnap.Edges, rep.RecoverySec*1e3)
	fmt.Printf("snapshot recovery speedup: x%.2f\n", rep.RecoverySpeedup)
}

// windowNames returns the load-target window names: the legacy default
// window when one window is asked for, w0..w{M-1} otherwise.
func windowNames(m int) []string {
	if m == 1 {
		return []string{stream.DefaultWindow}
	}
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	return names
}

// runInProc starts a loopback swserver whose registry holds o.windows
// windows built with the given ingester threshold and fan-out mode, and
// drives them — concurrently, or one window at a time (oneAtATime). A
// non-nil persist makes the registry durable (the -wal mode).
func runInProc(o options, mode string, maxBatch int, seqFanout, oneAtATime bool, persist *stream.PersistenceConfig) LoadResult {
	var treg *telemetry.Registry
	if o.telemetry {
		treg = telemetry.NewRegistry()
	}
	reg, _, err := stream.OpenRegistry(stream.RegistryConfig{
		Shards:    o.shards,
		Telemetry: treg,
		Template: stream.ServiceConfig{
			Window: stream.WindowConfig{
				N:                o.n,
				Seed:             uint64(o.seed),
				Monitors:         stream.SplitMonitors(o.monitors),
				MaxArrivals:      o.window,
				SequentialFanout: seqFanout,
				ApplyParallelism: applyParallelism(o),
			},
			Ingest: stream.IngesterConfig{MaxBatch: maxBatch, MaxDelay: o.delay},
		},
		Persistence: persist,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer reg.Close()
	names := windowNames(o.windows)
	svcs := make([]*stream.Service, len(names))
	for i, name := range names {
		// Pass the template itself so non-inherited fields (the fan-out
		// mode) carry to the created windows.
		svc, err := reg.Create(name, reg.Template())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		svcs[i] = svc
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: stream.NewRegistryServer(reg, stream.ServerConfig{}).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Path prefixes the producers/readers target: "" = legacy routes.
	prefixes := make([]string, len(names))
	if o.windows > 1 {
		for i, name := range names {
			prefixes[i] = "/windows/" + name
		}
	}

	var res LoadResult
	if oneAtATime {
		// M sequential single-window runs over the same per-window shares.
		// The aggregate divides total edges by the sum of the runs' ingest
		// elapsed times — the same clock the concurrent mode uses, so the
		// comparison excludes per-run client setup/teardown on both sides.
		// Latency percentiles are the max across runs (a conservative
		// upper bound, matching the histogram's upper-bound semantics).
		var agg LoadResult
		sub := o
		sub.windows = 1
		for i, prefix := range prefixes {
			sub.edges = o.edges / o.windows
			if i == 0 { // first window absorbs the division remainder
				sub.edges += o.edges % o.windows
			}
			r := runLoad(sub, mode, base, []string{prefix}, nil)
			agg.Edges += r.Edges
			agg.Posts += r.Posts
			agg.Queries += r.Queries
			agg.ElapsedSec += r.ElapsedSec
			agg.PostP50Ms = max(agg.PostP50Ms, r.PostP50Ms)
			agg.PostP99Ms = max(agg.PostP99Ms, r.PostP99Ms)
			agg.QueryP50Ms = max(agg.QueryP50Ms, r.QueryP50Ms)
			agg.QueryP99Ms = max(agg.QueryP99Ms, r.QueryP99Ms)
		}
		res = agg
		res.Mode, res.N, res.Producers, res.Chunk = mode, o.n, o.producers, o.chunk
		res.EdgesPerSec = float64(res.Edges) / res.ElapsedSec
	} else {
		res = runLoad(o, mode, base, prefixes, svcs)
	}
	res.MaxBatch = maxBatch
	res.Windows = o.windows

	// Server-side batch shape and apply time, aggregated over the windows.
	var batches, applyNS, arrivals int64
	for _, svc := range svcs {
		svc.Flush()
		st := svc.Window().Stats()
		batches += st.Batches
		applyNS += st.ApplyNS
		arrivals += st.Arrivals
	}
	res.ServerBatches = batches
	if batches > 0 {
		res.MeanBatchSize = float64(arrivals) / float64(batches)
		res.MeanApplyMs = float64(applyNS) / float64(batches) / 1e6
	}

	// Per-monitor view of the same window set: the msfweight mean apply is
	// the intra-monitor fork-join's headline number.
	var msfOps, msfNS int64
	for _, svc := range svcs {
		for _, ms := range svc.Window().MonitorStats() {
			if ms.Name == stream.MonitorMSFWeight {
				msfOps += ms.Ops
				msfNS += ms.ApplyNS
			}
		}
	}
	if msfOps > 0 {
		res.MSFWeightApplyMs = float64(msfNS) / float64(msfOps) / 1e6
	}
	if len(svcs) > 0 {
		res.ApplyParallelism = svcs[0].Window().ApplyParallelism()
	}

	return res
}

// applyParallelism maps the CLI toggle onto WindowConfig.ApplyParallelism:
// -seq-levels pins sequential level application, otherwise the registry
// default (GOMAXPROCS-wide shared budget) stands.
func applyParallelism(o options) int {
	if o.seqLevels {
		return 1
	}
	return 0
}

// wireEdge is the JSON-envelope edge shape the producers POST.
type wireEdge struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
	W int64 `json:"w,omitempty"`
}

// edgesPath renders the ingest path for one window prefix with the wire
// format and ack mode baked into the query string.
func edgesPath(prefix string, ndjson, syncAck bool) string {
	p := prefix + "/edges"
	var q []string
	if ndjson {
		q = append(q, "format=ndjson")
	}
	if syncAck {
		q = append(q, "sync=1")
	}
	if len(q) > 0 {
		p += "?" + strings.Join(q, "&")
	}
	return p
}

// encodeEdges renders one chunk in the selected wire format and returns
// the body plus its content type.
func encodeEdges(edges []wireEdge, ndjson bool) ([]byte, string) {
	if !ndjson {
		body, _ := json.Marshal(map[string]any{"edges": edges})
		return body, "application/json"
	}
	var buf []byte
	for _, e := range edges {
		buf = append(buf, '[')
		buf = strconv.AppendInt(buf, int64(e.U), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.W, 10)
		buf = append(buf, ']', '\n')
	}
	return buf, "application/x-ndjson"
}

// poster is the producers' shared POST /edges client: it speaks both wire
// formats, and it understands the admission-control contract — a 429 is
// not an error but backpressure, counted and retried (after the server's
// Retry-After hint, or immediately under -burst).
type poster struct {
	client  *http.Client
	base    string
	ndjson  bool
	syncAck bool
	burst   bool

	rejected  atomic.Int64 // POSTs answered 429
	rejEdges  atomic.Int64 // edges those POSTs carried
	retryWait atomic.Int64 // ns slept honoring Retry-After

	noRetryAfter atomic.Bool // a 429 arrived without a Retry-After header
	badLogged    atomic.Bool
}

// post delivers one chunk, retrying through 429s until it is accepted,
// the stop channel closes, or a hard error lands. Only the accepted
// attempt's latency is observed. Returns false when the producer loop
// should give up.
func (p *poster) post(prefix string, edges []wireEdge, rec *stream.LatencyRecorder, stop <-chan struct{}) bool {
	body, ctype := encodeEdges(edges, p.ndjson)
	path := p.base + edgesPath(prefix, p.ndjson, p.syncAck)
	for {
		t0 := time.Now()
		resp, err := p.client.Post(path, ctype, bytes.NewReader(body))
		if err != nil {
			if stop != nil {
				select {
				case <-stop: // shutdown race: the server is going away
					return false
				default:
				}
			}
			fmt.Fprintf(os.Stderr, "POST %s: %v\n", path, err)
			return false
		}
		retryAfter := resp.Header.Get("Retry-After")
		drainBody(resp)
		switch resp.StatusCode {
		case http.StatusAccepted:
			if rec != nil {
				rec.Observe(time.Since(t0))
			}
			return true
		case http.StatusTooManyRequests:
			p.rejected.Add(1)
			p.rejEdges.Add(int64(len(edges)))
			if retryAfter == "" {
				p.noRetryAfter.Store(true)
			}
			if !p.burst {
				wait := time.Second
				if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
				p.retryWait.Add(int64(wait))
				select {
				case <-time.After(wait):
				case <-stopOrNever(stop):
					return false
				}
			}
			if stop != nil {
				select {
				case <-stop:
					return false
				default:
				}
			}
		default:
			if !p.badLogged.Swap(true) {
				fmt.Fprintf(os.Stderr, "POST %s: status %d\n", path, resp.StatusCode)
			}
			return false
		}
	}
}

// fill copies the poster's admission outcome into a result and complains
// once if the server broke the 429 contract.
func (p *poster) fill(res *LoadResult) {
	res.Format = "json"
	if p.ndjson {
		res.Format = "ndjson"
	}
	res.SyncAck = p.syncAck
	res.RejectedPosts = p.rejected.Load()
	res.RejectedEdges = p.rejEdges.Load()
	res.RetryWaitSec = time.Duration(p.retryWait.Load()).Seconds()
	if p.noRetryAfter.Load() {
		fmt.Fprintln(os.Stderr, "swload: a 429 response was missing its Retry-After header — the admission contract promises one")
	}
}

// stopOrNever adapts an optional stop channel for select: a nil stop
// never fires.
func stopOrNever(stop <-chan struct{}) <-chan struct{} {
	if stop == nil {
		return make(chan struct{})
	}
	return stop
}

// runLoad fires o.producers concurrent POST loops plus o.readers query
// loops at base, spreading them across the given window path prefixes, and
// collects the measurements.
func runLoad(o options, mode, base string, prefixes []string, svcs []*stream.Service) LoadResult {
	// The default transport keeps only 2 idle conns per host, which makes
	// every concurrent loop beyond that pay a fresh TCP handshake per
	// request; raise it so the pipeline, not the client, is measured.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 4 * (o.producers + o.readers)
	transport.MaxIdleConnsPerHost = 4 * (o.producers + o.readers)
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	var postRec, queryRec stream.LatencyRecorder
	var posted atomic.Int64
	stop := make(chan struct{})
	po := &poster{client: client, base: base, ndjson: o.ndjson, syncAck: o.syncAck, burst: o.burst}

	var prodWG, readWG sync.WaitGroup
	perProducer := o.edges / o.producers
	start := time.Now()
	for p := 0; p < o.producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			r := rand.New(rand.NewSource(o.seed + int64(p)))
			prefix := prefixes[p%len(prefixes)]
			perProducer := perProducer
			if p == 0 { // first producer absorbs the division remainder
				perProducer += o.edges % o.producers
			}
			for sent := 0; sent < perProducer; sent += o.chunk {
				k := o.chunk
				if k > perProducer-sent {
					k = perProducer - sent
				}
				edges := make([]wireEdge, k)
				for i := range edges {
					u := int32(r.Intn(o.n))
					v := int32(r.Intn(o.n))
					for v == u {
						v = int32(r.Intn(o.n))
					}
					edges[i] = wireEdge{U: u, V: v, W: 1 + r.Int63n(1<<10)}
				}
				// Only accepted posts count toward the latency stats.
				if !po.post(prefix, edges, &postRec, nil) {
					return
				}
				posted.Add(int64(k))
			}
		}(p)
	}

	// Query only the endpoints the configured monitors can answer.
	var queryPaths []string
	hasConn := false
	names := stream.SplitMonitors(o.monitors)
	if len(names) == 0 {
		names = stream.AllMonitors()
	}
	for _, m := range names {
		switch m {
		case stream.MonitorConn:
			hasConn = true
			queryPaths = append(queryPaths, "/query/components")
		case stream.MonitorBipartite:
			queryPaths = append(queryPaths, "/query/bipartite")
		case stream.MonitorMSFWeight:
			queryPaths = append(queryPaths, "/query/msfweight")
		case stream.MonitorCycleFree:
			queryPaths = append(queryPaths, "/query/cycle")
		case stream.MonitorKCert:
			// Note: /query/kcert runs a min-cut over the certificate, so
			// including it makes the query mix much heavier.
			queryPaths = append(queryPaths, "/query/kcert")
		}
	}
	if len(queryPaths) == 0 {
		queryPaths = []string{"/healthz"}
	}
	for q := 0; q < o.readers; q++ {
		readWG.Add(1)
		go func(q int) {
			defer readWG.Done()
			r := rand.New(rand.NewSource(o.seed + 1000 + int64(q)))
			prefix := prefixes[q%len(prefixes)]
			badLogged := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := prefix + queryPaths[i%len(queryPaths)]
				if hasConn && i%2 == 0 {
					path = fmt.Sprintf("%s/query/connected?u=%d&v=%d", prefix, r.Intn(o.n), r.Intn(o.n))
				}
				t0 := time.Now()
				resp, err := client.Get(base + path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "GET %s: %v\n", path, err)
					return
				}
				drainBody(resp)
				if resp.StatusCode != http.StatusOK {
					// Don't let error responses pollute the latency stats.
					if !badLogged {
						fmt.Fprintf(os.Stderr, "GET %s: status %d (not counted)\n", path, resp.StatusCode)
						badLogged = true
					}
					continue
				}
				queryRec.Observe(time.Since(t0))
			}
		}(q)
	}

	prodWG.Wait()
	ingestElapsed := time.Since(start)
	close(stop)
	readWG.Wait()
	for _, svc := range svcs {
		svc.Flush()
	}

	ps := postRec.Snapshot()
	qs := queryRec.Snapshot()
	res := LoadResult{
		Mode:      mode,
		N:         o.n,
		Windows:   len(prefixes),
		Edges:     posted.Load(),
		Producers: o.producers,
		Chunk:     o.chunk,
		// MaxBatch stays 0 here: only runInProc knows the server's real
		// threshold; a remote server's -batch flag is not observable.
		ElapsedSec:  ingestElapsed.Seconds(),
		EdgesPerSec: float64(posted.Load()) / ingestElapsed.Seconds(),
		Posts:       ps.Count,
		PostP50Ms:   float64(ps.P50) / 1e6,
		PostP99Ms:   float64(ps.P99) / 1e6,
		Queries:     qs.Count,
		QueryP50Ms:  float64(qs.P50) / 1e6,
		QueryP99Ms:  float64(qs.P99) / 1e6,
	}

	// Without in-process service handles (remote -url runs), scrape the
	// server-side batch shape from the target window's /stats; runInProc
	// overwrites these with exact aggregates when it has the handles.
	if svcs == nil {
		var stats struct {
			Ingest struct {
				Batches       int64   `json:"batches"`
				MeanBatchSize float64 `json:"mean_batch_size"`
			} `json:"ingest"`
		}
		if resp, err := client.Get(base + prefixes[0] + "/stats"); err == nil {
			_ = json.NewDecoder(resp.Body).Decode(&stats)
			drainBody(resp)
			res.ServerBatches = stats.Ingest.Batches
			res.MeanBatchSize = stats.Ingest.MeanBatchSize
		}
	}
	po.fill(&res)
	return res
}

// drainBody reads the response to EOF before closing so the transport can
// return the connection to the keep-alive pool; without this every request
// pays a fresh TCP handshake and the tool measures connection setup
// instead of the pipeline.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func printResult(r LoadResult) {
	switch {
	case r.MaxBatch > 0 && r.Windows > 1:
		fmt.Printf("== %s (windows=%d, maxBatch=%d) ==\n", r.Mode, r.Windows, r.MaxBatch)
	case r.MaxBatch > 0 && r.Fsync != "":
		fmt.Printf("== %s (maxBatch=%d, fsync=%s) ==\n", r.Mode, r.MaxBatch, r.Fsync)
	case r.MaxBatch > 0:
		fmt.Printf("== %s (maxBatch=%d) ==\n", r.Mode, r.MaxBatch)
	default:
		fmt.Printf("== %s (remote server; batch threshold unknown) ==\n", r.Mode)
	}
	fmt.Printf("  ingested %d edges in %.2fs  →  %.0f edges/sec\n", r.Edges, r.ElapsedSec, r.EdgesPerSec)
	fmt.Printf("  server batches: %d (mean size %.1f)\n", r.ServerBatches, r.MeanBatchSize)
	if r.MeanApplyMs > 0 {
		fmt.Printf("  mean apply (write-lock hold): %.3fms/batch\n", r.MeanApplyMs)
	}
	if r.MSFWeightApplyMs > 0 {
		fmt.Printf("  msfweight mean apply: %.3fms/op (apply-parallelism=%d)\n",
			r.MSFWeightApplyMs, r.ApplyParallelism)
	}
	fmt.Printf("  POST  p50 %.3fms  p99 %.3fms  (%d requests)\n", r.PostP50Ms, r.PostP99Ms, r.Posts)
	fmt.Printf("  query p50 %.3fms  p99 %.3fms  (%d requests)\n", r.QueryP50Ms, r.QueryP99Ms, r.Queries)
	printAdmission(r)
}

// printAdmission prints the wire/ack mode and 429 outcome lines shared by
// the plain and -mixed reports.
func printAdmission(r LoadResult) {
	if r.Format == "ndjson" || r.SyncAck {
		fmt.Printf("  wire: format=%s sync_ack=%v\n", r.Format, r.SyncAck)
	}
	if r.RejectedPosts > 0 {
		fmt.Printf("  admission: %d POSTs rejected with 429 (%d edges), %.2fs spent honoring Retry-After\n",
			r.RejectedPosts, r.RejectedEdges, r.RetryWaitSec)
	}
}
