// Command swload drives an swserver end-to-end and reports sustained
// ingest throughput (edges/sec) and client-observed query latency (p50 and
// p99). By default it spins up an in-process server on a loopback port, so
// the whole HTTP → ingester → window pipeline is exercised; point -url at a
// running swserver to load-test remotely.
//
// The -compare mode runs the same stream twice against a fresh in-process
// server — once with the configured ingester batch threshold and once with
// MaxBatch=1 (one edge per BatchInsert) — demonstrating the batch economics
// of Theorem 1.1: the batched pipeline amortizes O(ℓ·lg(1+n/ℓ)) work over ℓ
// edges where the unbatched one pays the full lg factor per edge.
//
//	swload -n 50000 -edges 200000 -producers 8 -chunk 256
//	swload -compare -json results.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/stream"
)

type options struct {
	url       string
	n         int
	edges     int
	producers int
	chunk     int
	readers   int
	window    int
	batch     int
	delay     time.Duration
	monitors  string
	seed      int64
	compare   bool
	jsonPath  string
}

// LoadResult is the machine-readable outcome of one load run.
type LoadResult struct {
	Mode          string  `json:"mode"` // "batched" or "unbatched"
	N             int     `json:"n"`
	Edges         int64   `json:"edges"`
	Producers     int     `json:"producers"`
	Chunk         int     `json:"chunk"`
	MaxBatch      int     `json:"max_batch"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	ServerBatches int64   `json:"server_batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	Posts         int64   `json:"posts"`
	PostP50Ms     float64 `json:"post_p50_ms"`
	PostP99Ms     float64 `json:"post_p99_ms"`
	Queries       int64   `json:"queries"`
	QueryP50Ms    float64 `json:"query_p50_ms"`
	QueryP99Ms    float64 `json:"query_p99_ms"`
}

// Report is the full swload output, one entry per mode.
type Report struct {
	Results []LoadResult `json:"results"`
	// Speedup is edges_per_sec(batched) / edges_per_sec(unbatched); only
	// set in -compare mode.
	Speedup float64 `json:"speedup,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "target swserver base URL (empty = start one in-process)")
	flag.IntVar(&o.n, "n", 50_000, "vertices (in-process server)")
	flag.IntVar(&o.edges, "edges", 200_000, "total edges to ingest")
	flag.IntVar(&o.producers, "producers", 8, "concurrent producer goroutines")
	flag.IntVar(&o.chunk, "chunk", 256, "edges per POST /edges request")
	flag.IntVar(&o.readers, "readers", 2, "concurrent query goroutines")
	flag.IntVar(&o.window, "window", 0, "count-based window for the in-process server (0 = unbounded)")
	flag.IntVar(&o.batch, "batch", 512, "ingester batch threshold (in-process server)")
	flag.DurationVar(&o.delay, "delay", 5*time.Millisecond, "ingester flush deadline (in-process server)")
	flag.StringVar(&o.monitors, "monitors", "conn", "monitors for the in-process server")
	flag.Int64Var(&o.seed, "seed", 0xC0FFEE, "workload seed")
	flag.BoolVar(&o.compare, "compare", false, "run batched vs one-edge-per-batch on the same stream (in-process only)")
	flag.StringVar(&o.jsonPath, "json", "", "write the report as JSON to this path (\"-\" = stdout)")
	flag.Parse()

	if o.producers < 1 || o.chunk < 1 || o.readers < 0 || o.n < 2 || o.edges < 0 || o.batch < 1 {
		fmt.Fprintln(os.Stderr, "swload: need -producers >= 1, -chunk >= 1, -readers >= 0, -n >= 2, -edges >= 0, -batch >= 1")
		os.Exit(2)
	}

	// With -json - the report owns stdout; the human-readable result
	// blocks move to stderr so the JSON stays machine-parseable.
	jsonStdout := os.Stdout
	if o.jsonPath == "-" {
		os.Stdout = os.Stderr
	}

	var rep Report
	if o.compare {
		if o.url != "" {
			fmt.Fprintln(os.Stderr, "-compare needs the in-process server; drop -url")
			os.Exit(2)
		}
		batched := runInProc(o, "batched", o.batch)
		unbatched := runInProc(o, "unbatched", 1)
		rep.Results = []LoadResult{batched, unbatched}
		if unbatched.EdgesPerSec > 0 {
			rep.Speedup = batched.EdgesPerSec / unbatched.EdgesPerSec
		}
		printResult(batched)
		printResult(unbatched)
		fmt.Printf("\nbatched/unbatched ingest speedup: x%.2f\n", rep.Speedup)
	} else if o.url != "" {
		res := runLoad(o, "batched", o.url, nil)
		rep.Results = []LoadResult{res}
		printResult(res)
	} else {
		res := runInProc(o, "batched", o.batch)
		rep.Results = []LoadResult{res}
		printResult(res)
	}

	if o.jsonPath != "" {
		os.Stdout = jsonStdout // restore: "-" writes the report to real stdout
		if err := cli.WriteJSONReport(o.jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runInProc starts a loopback swserver with the given ingester threshold
// and drives it.
func runInProc(o options, mode string, maxBatch int) LoadResult {
	names := stream.SplitMonitors(o.monitors)
	svc, err := stream.NewService(stream.ServiceConfig{
		Window: stream.WindowConfig{
			N:           o.n,
			Seed:        uint64(o.seed),
			Monitors:    names,
			MaxArrivals: o.window,
		},
		Ingest: stream.IngesterConfig{MaxBatch: maxBatch, MaxDelay: o.delay},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: stream.NewServer(svc).Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	res := runLoad(o, mode, "http://"+ln.Addr().String(), svc)
	res.MaxBatch = maxBatch
	return res
}

// runLoad fires o.producers concurrent POST loops plus o.readers query
// loops at base and collects the measurements.
func runLoad(o options, mode, base string, svc *stream.Service) LoadResult {
	// The default transport keeps only 2 idle conns per host, which makes
	// every concurrent loop beyond that pay a fresh TCP handshake per
	// request; raise it so the pipeline, not the client, is measured.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 4 * (o.producers + o.readers)
	transport.MaxIdleConnsPerHost = 4 * (o.producers + o.readers)
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	var postRec, queryRec stream.LatencyRecorder
	var posted atomic.Int64
	stop := make(chan struct{})

	var prodWG, readWG sync.WaitGroup
	perProducer := o.edges / o.producers
	start := time.Now()
	for p := 0; p < o.producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			r := rand.New(rand.NewSource(o.seed + int64(p)))
			perProducer := perProducer
			if p == 0 { // first producer absorbs the division remainder
				perProducer += o.edges % o.producers
			}
			type wireEdge struct {
				U int32 `json:"u"`
				V int32 `json:"v"`
				W int64 `json:"w,omitempty"`
			}
			for sent := 0; sent < perProducer; sent += o.chunk {
				k := o.chunk
				if k > perProducer-sent {
					k = perProducer - sent
				}
				edges := make([]wireEdge, k)
				for i := range edges {
					u := int32(r.Intn(o.n))
					v := int32(r.Intn(o.n))
					for v == u {
						v = int32(r.Intn(o.n))
					}
					edges[i] = wireEdge{U: u, V: v, W: 1 + r.Int63n(1<<10)}
				}
				body, _ := json.Marshal(map[string]any{"edges": edges})
				t0 := time.Now()
				resp, err := client.Post(base+"/edges", "application/json", bytes.NewReader(body))
				if err != nil {
					fmt.Fprintf(os.Stderr, "POST /edges: %v\n", err)
					return
				}
				drainBody(resp)
				if resp.StatusCode != http.StatusAccepted {
					fmt.Fprintf(os.Stderr, "POST /edges: status %d\n", resp.StatusCode)
					return
				}
				// Only successful posts count toward the latency stats.
				postRec.Observe(time.Since(t0))
				posted.Add(int64(k))
			}
		}(p)
	}

	// Query only the endpoints the configured monitors can answer.
	var queryPaths []string
	hasConn := false
	for _, m := range stream.SplitMonitors(o.monitors) {
		switch m {
		case stream.MonitorConn:
			hasConn = true
			queryPaths = append(queryPaths, "/query/components")
		case stream.MonitorBipartite:
			queryPaths = append(queryPaths, "/query/bipartite")
		case stream.MonitorMSFWeight:
			queryPaths = append(queryPaths, "/query/msfweight")
		case stream.MonitorCycleFree:
			queryPaths = append(queryPaths, "/query/cycle")
		case stream.MonitorKCert:
			// Note: /query/kcert runs a min-cut over the certificate, so
			// including it makes the query mix much heavier.
			queryPaths = append(queryPaths, "/query/kcert")
		}
	}
	if len(queryPaths) == 0 {
		queryPaths = []string{"/healthz"}
	}
	for q := 0; q < o.readers; q++ {
		readWG.Add(1)
		go func(q int) {
			defer readWG.Done()
			r := rand.New(rand.NewSource(o.seed + 1000 + int64(q)))
			badLogged := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := queryPaths[i%len(queryPaths)]
				if hasConn && i%2 == 0 {
					path = fmt.Sprintf("/query/connected?u=%d&v=%d", r.Intn(o.n), r.Intn(o.n))
				}
				t0 := time.Now()
				resp, err := client.Get(base + path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "GET %s: %v\n", path, err)
					return
				}
				drainBody(resp)
				if resp.StatusCode != http.StatusOK {
					// Don't let error responses pollute the latency stats.
					if !badLogged {
						fmt.Fprintf(os.Stderr, "GET %s: status %d (not counted)\n", path, resp.StatusCode)
						badLogged = true
					}
					continue
				}
				queryRec.Observe(time.Since(t0))
			}
		}(q)
	}

	prodWG.Wait()
	ingestElapsed := time.Since(start)
	close(stop)
	readWG.Wait()
	if svc != nil {
		svc.Flush()
	}

	ps := postRec.Snapshot()
	qs := queryRec.Snapshot()
	res := LoadResult{
		Mode:      mode,
		N:         o.n,
		Edges:     posted.Load(),
		Producers: o.producers,
		Chunk:     o.chunk,
		// MaxBatch stays 0 here: only runInProc knows the server's real
		// threshold; a remote server's -batch flag is not observable.
		ElapsedSec:  ingestElapsed.Seconds(),
		EdgesPerSec: float64(posted.Load()) / ingestElapsed.Seconds(),
		Posts:       ps.Count,
		PostP50Ms:   float64(ps.P50) / 1e6,
		PostP99Ms:   float64(ps.P99) / 1e6,
		Queries:     qs.Count,
		QueryP50Ms:  float64(qs.P50) / 1e6,
		QueryP99Ms:  float64(qs.P99) / 1e6,
	}

	// Server-side batch shape from /stats.
	var stats struct {
		Ingest struct {
			Batches       int64   `json:"batches"`
			MeanBatchSize float64 `json:"mean_batch_size"`
		} `json:"ingest"`
	}
	if resp, err := client.Get(base + "/stats"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&stats)
		drainBody(resp)
		res.ServerBatches = stats.Ingest.Batches
		res.MeanBatchSize = stats.Ingest.MeanBatchSize
	}
	return res
}

// drainBody reads the response to EOF before closing so the transport can
// return the connection to the keep-alive pool; without this every request
// pays a fresh TCP handshake and the tool measures connection setup
// instead of the pipeline.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func printResult(r LoadResult) {
	if r.MaxBatch > 0 {
		fmt.Printf("== %s (maxBatch=%d) ==\n", r.Mode, r.MaxBatch)
	} else {
		fmt.Printf("== %s (remote server; batch threshold unknown) ==\n", r.Mode)
	}
	fmt.Printf("  ingested %d edges in %.2fs  →  %.0f edges/sec\n", r.Edges, r.ElapsedSec, r.EdgesPerSec)
	fmt.Printf("  server batches: %d (mean size %.1f)\n", r.ServerBatches, r.MeanBatchSize)
	fmt.Printf("  POST  p50 %.3fms  p99 %.3fms  (%d requests)\n", r.PostP50Ms, r.PostP99Ms, r.Posts)
	fmt.Printf("  query p50 %.3fms  p99 %.3fms  (%d requests)\n", r.QueryP50Ms, r.QueryP99Ms, r.Queries)
}
