// Command figures regenerates the paper's two figures from the library:
//
//	figures -fig 1   the weighted tree and its compressed path tree (Fig. 1)
//	figures -fig 2   the example tree's rake-compress clustering (Fig. 2)
//	figures          both
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1 or 2; 0 = both)")
	seed := flag.Uint64("seed", 42, "contraction seed")
	flag.Parse()

	if *fig == 0 || *fig == 1 {
		figure1(*seed)
	}
	if *fig == 0 || *fig == 2 {
		figure2(*seed)
	}
}

func figure1(seed uint64) {
	fig := repro.NewFigure1Example()
	fmt.Println("=== Figure 1: compressed path tree ===")
	fmt.Println("input tree (marked vertices A-E; a1, b1, c1 will be spliced out):")
	for _, e := range fig.Edges {
		fmt.Printf("  %s --%d-- %s\n", fig.Names[e.U], e.W, fig.Names[e.V])
	}
	cptEdges := fig.Compute(seed)
	fmt.Println()
	fmt.Print(fig.Render(cptEdges))
	fmt.Println("(paper Figure 1b: edges A-X:6, B-X:10, X-Y:9, C-Y:7, D-Y:12, E-Y:3)")
	fmt.Println()
}

func figure2(seed uint64) {
	fig := repro.NewFigure2Example()
	fmt.Println("=== Figure 2: rake-compress tree of the example tree ===")
	fmt.Println("input tree:")
	for _, e := range fig.Edges {
		fmt.Printf("  %s -- %s\n", fig.Names[e.U], fig.Names[e.V])
	}
	fmt.Println()
	fmt.Print(fig.RCTreeDump(seed))
	fmt.Println("(cluster letters correspond to the representative vertices of Figure 2c;")
	fmt.Println(" the exact rounds depend on the contraction coins, Figure 2 shows one valid run)")
}
