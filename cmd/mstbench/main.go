// Command mstbench runs the experiment sweeps behind EXPERIMENTS.md and
// prints the Table-1-style series as aligned text tables. With -json the
// same results are also emitted as a machine-readable report, so perf
// trajectories can be recorded across revisions (BENCH_*.json files).
//
//	mstbench -exp shape      work/edge vs batch size (the l·lg(1+n/l) law)
//	mstbench -exp t1         every Table 1 row, incremental + sliding window
//	mstbench -exp crossover  batch MSF vs sequential link-cut baseline
//	mstbench -exp speedup    GOMAXPROCS self-speedup for one batch insert
//	mstbench -exp all        everything
//	mstbench -exp shape -json -          write the report to stdout
//	mstbench -exp all -json bench.json   write the report to a file
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/graphgen"
	"repro/internal/linkcut"
	"repro/internal/wgraph"
)

var (
	nFlag    = flag.Int("n", 50_000, "number of vertices")
	mFlag    = flag.Int("m", 400_000, "stream length (edges)")
	seedFlag = flag.Uint64("seed", 0xC0FFEE, "workload seed")
)

// ShapeRow is one batch-size point of the S1 sweep.
type ShapeRow struct {
	L          int     `json:"l"`
	NSPerEdge  float64 `json:"ns_per_edge"`
	Lg         float64 `json:"lg_1_plus_n_over_l"`
	Normalized float64 `json:"ns_per_edge_per_lg"`
}

// CrossoverRow is one batch-size point of the S2 comparison.
type CrossoverRow struct {
	L            int     `json:"l"`
	NSPerEdge    float64 `json:"ns_per_edge"`
	VsLinkCut    float64 `json:"speedup_vs_linkcut"`
	LinkCutNSRef float64 `json:"linkcut_ns_per_edge"`
}

// Table1Row is one problem row of the Table 1 reproduction. IncrementalNS
// is null where no incremental counterpart exists (the sparsifier row).
type Table1Row struct {
	Problem       string   `json:"problem"`
	IncrementalNS *float64 `json:"incremental_ns_per_edge"`
	SlidingNS     float64  `json:"sliding_window_ns_per_edge"`
}

// SpeedupRow is one GOMAXPROCS point of the S3 sweep.
type SpeedupRow struct {
	Procs     int     `json:"gomaxprocs"`
	NSPerEdge float64 `json:"ns_per_edge"`
	Speedup   float64 `json:"speedup"`
}

// Report is the machine-readable mstbench output.
type Report struct {
	N          int            `json:"n"`
	M          int            `json:"m"`
	Seed       uint64         `json:"seed"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Shape      []ShapeRow     `json:"shape,omitempty"`
	Crossover  []CrossoverRow `json:"crossover,omitempty"`
	Table1     []Table1Row    `json:"table1,omitempty"`
	Speedup    []SpeedupRow   `json:"speedup,omitempty"`
}

func main() {
	exp := flag.String("exp", "shape", "experiment: shape | t1 | crossover | speedup | all")
	jsonPath := flag.String("json", "", "also write a JSON report to this path (\"-\" = stdout)")
	flag.Parse()

	// With -json - the report owns stdout; the human-readable tables move
	// to stderr so the JSON stays machine-parseable.
	jsonStdout := os.Stdout
	if *jsonPath == "-" {
		os.Stdout = os.Stderr
	}

	rep := &Report{N: *nFlag, M: *mFlag, Seed: *seedFlag, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	switch *exp {
	case "shape":
		rep.Shape = shape()
	case "t1":
		rep.Table1 = table1()
	case "crossover":
		rep.Crossover = crossover()
	case "speedup":
		rep.Speedup = speedup()
	case "all":
		rep.Shape = shape()
		rep.Crossover = crossover()
		rep.Table1 = table1()
		rep.Speedup = speedup()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonPath != "" {
		os.Stdout = jsonStdout // restore: "-" writes the report to real stdout
		if err := cli.WriteJSONReport(*jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// timeBatches feeds the stream in batches of ell and returns ns/edge.
func timeBatches(ell int, sink func([]wgraph.Edge)) float64 {
	stream := graphgen.ErdosRenyi(*nFlag, *mFlag, 1<<40, *seedFlag)
	start := time.Now()
	for _, b := range graphgen.Batches(stream, ell) {
		sink(b)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(stream))
}

func shape() []ShapeRow {
	n := *nFlag
	fmt.Printf("== S1: batch-incremental MSF work per edge vs batch size (n=%d, m=%d) ==\n", n, *mFlag)
	fmt.Printf("%10s %12s %14s %18s\n", "l", "ns/edge", "lg(1+n/l)", "ns/edge/lg(1+n/l)")
	var rows []ShapeRow
	for _, ell := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536} {
		m := repro.NewBatchMSF(n, *seedFlag)
		ns := timeBatches(ell, func(b []wgraph.Edge) { m.BatchInsert(b) })
		lg := math.Log2(1 + float64(n)/float64(ell))
		rows = append(rows, ShapeRow{L: ell, NSPerEdge: ns, Lg: lg, Normalized: ns / lg})
		fmt.Printf("%10d %12.0f %14.2f %18.0f\n", ell, ns, lg, ns/lg)
	}
	fmt.Println()
	return rows
}

func crossover() []CrossoverRow {
	n := *nFlag
	fmt.Printf("== S2: batch MSF vs sequential link-cut incremental MSF (n=%d, m=%d) ==\n", n, *mFlag)
	lc := linkcut.NewIncrementalMSF(n)
	lcNS := timeBatches(1, func(b []wgraph.Edge) {
		for _, e := range b {
			lc.Insert(e)
		}
	})
	fmt.Printf("%24s %12.0f ns/edge\n", "link-cut (l=1)", lcNS)
	var rows []CrossoverRow
	for _, ell := range []int{1, 16, 256, 4096, 65536} {
		m := repro.NewBatchMSF(n, *seedFlag)
		ns := timeBatches(ell, func(b []wgraph.Edge) { m.BatchInsert(b) })
		rows = append(rows, CrossoverRow{L: ell, NSPerEdge: ns, VsLinkCut: lcNS / ns, LinkCutNSRef: lcNS})
		fmt.Printf("%17s l=%-6d %12.0f ns/edge   (x%.2f vs link-cut)\n", "batch MSF", ell, ns, lcNS/ns)
	}
	fmt.Println()
	return rows
}

func table1() []Table1Row {
	n := *nFlag
	const ell = 1024
	fmt.Printf("== Table 1: measured ns/edge at l=%d (n=%d, m=%d) ==\n", ell, n, *mFlag)
	fmt.Printf("%-18s %14s %16s\n", "problem", "incremental", "sliding window")

	var rows []Table1Row
	row := func(name string, incNS, swNS float64) {
		r := Table1Row{Problem: name, SlidingNS: swNS}
		if !math.IsNaN(incNS) {
			r.IncrementalNS = &incNS
		}
		rows = append(rows, r)
		fmt.Printf("%-18s %14.0f %16.0f\n", name, incNS, swNS)
	}

	// Connectivity.
	ic := repro.NewIncConn(n)
	incNS := timeBatches(ell, func(b []wgraph.Edge) { ic.BatchInsert(b) })
	row("connectivity", incNS, timeSliding(ell, func() (func([]repro.StreamEdge), func(int)) {
		c := repro.NewSWConnEager(n, *seedFlag)
		return c.BatchInsert, c.BatchExpire
	}))

	// k-certificate (k=4).
	ik := repro.NewIncKCert(n, 4)
	incNS = timeBatches(ell, func(b []wgraph.Edge) { ik.BatchInsert(b) })
	row("k-certificate(4)", incNS, timeSliding(ell, func() (func([]repro.StreamEdge), func(int)) {
		c := repro.NewSWKCert(n, 4, *seedFlag)
		return c.BatchInsert, c.BatchExpire
	}))

	// Bipartiteness.
	ib := repro.NewIncBipartite(n)
	incNS = timeBatches(ell, func(b []wgraph.Edge) { ib.BatchInsert(b) })
	row("bipartiteness", incNS, timeSliding(ell, func() (func([]repro.StreamEdge), func(int)) {
		c := repro.NewSWBipartite(n, *seedFlag)
		return c.BatchInsert, c.BatchExpire
	}))

	// Cycle-freeness.
	icf := repro.NewIncCycleFree(n)
	incNS = timeBatches(ell, func(b []wgraph.Edge) { icf.BatchInsert(b) })
	row("cycle-freeness", incNS, timeSliding(ell, func() (func([]repro.StreamEdge), func(int)) {
		c := repro.NewSWCycleFree(n, *seedFlag)
		return c.BatchInsert, c.BatchExpire
	}))

	// MSF: incremental exact (Theorem 1.1) vs sliding-window (1+eps).
	bm := repro.NewBatchMSF(n, *seedFlag)
	incNS = timeBatches(ell, func(b []wgraph.Edge) { bm.BatchInsert(b) })
	swNS := timeApproxMSF(n, ell, 0.5)
	row("MSF / (1+0.5)-MSF", incNS, swNS)

	// Sparsifier (scaled constants; smaller n).
	spN := 2000
	cfg := repro.SparsifierConfig{Eps: 0.5, Levels: 8, Trials: 2, CertOrder: 8, SampleConst: 8}
	sp := repro.NewSWSparsifier(spN, cfg, *seedFlag)
	s := graphgen.SlidingStream(spN, 128, 256, 4000, *seedFlag)
	start := time.Now()
	total := 0
	for _, r := range s.Rounds {
		batch := make([]repro.StreamEdge, len(r.Insert))
		for i, p := range r.Insert {
			batch[i] = repro.StreamEdge{U: p[0], V: p[1]}
		}
		sp.BatchInsert(batch)
		sp.BatchExpire(r.Expire)
		total += len(batch)
	}
	row("eps-sparsifier*", math.NaN(), float64(time.Since(start).Nanoseconds())/float64(total))
	fmt.Println("(*sparsifier at n=2000 with scaled constants; NaN = not applicable)")
	fmt.Println()
	return rows
}

func timeSliding(ell int, mk func() (func([]repro.StreamEdge), func(int))) float64 {
	n := *nFlag
	rounds := *mFlag / ell
	if rounds > 256 {
		rounds = 256
	}
	s := graphgen.SlidingStream(n, rounds, ell, 2*n, *seedFlag)
	insert, expire := mk()
	start := time.Now()
	total := 0
	for _, r := range s.Rounds {
		batch := make([]repro.StreamEdge, len(r.Insert))
		for i, p := range r.Insert {
			batch[i] = repro.StreamEdge{U: p[0], V: p[1]}
		}
		insert(batch)
		expire(r.Expire)
		total += len(batch)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

func timeApproxMSF(n, ell int, eps float64) float64 {
	const maxW = 1 << 20
	a := repro.NewSWApproxMSF(n, eps, maxW, *seedFlag)
	rounds := 64
	s := graphgen.SlidingStream(n, rounds, ell, 2*n, *seedFlag)
	wsrc := graphgen.ErdosRenyi(n, rounds*ell, maxW, *seedFlag+1)
	wi := 0
	start := time.Now()
	total := 0
	for _, r := range s.Rounds {
		batch := make([]repro.WeightedStreamEdge, len(r.Insert))
		for i, p := range r.Insert {
			batch[i] = repro.WeightedStreamEdge{U: p[0], V: p[1], W: wsrc[wi].W}
			wi++
		}
		a.BatchInsert(batch)
		a.BatchExpire(r.Expire)
		_ = a.Weight()
		total += len(batch)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

func speedup() []SpeedupRow {
	n := *nFlag
	fmt.Printf("== S3: self-relative speedup of one big batch insert (n=%d) ==\n", n)
	edges := graphgen.ErdosRenyi(n, *mFlag, 1<<40, *seedFlag)
	var base float64
	var rows []SpeedupRow
	for _, p := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		m := repro.NewBatchMSF(n, *seedFlag)
		start := time.Now()
		for _, b := range graphgen.Batches(edges, 65536) {
			m.BatchInsert(b)
		}
		el := float64(time.Since(start).Nanoseconds())
		if p == 1 {
			base = el
		}
		rows = append(rows, SpeedupRow{Procs: p, NSPerEdge: el / float64(len(edges)), Speedup: base / el})
		fmt.Printf("  GOMAXPROCS=%d: %8.0f ns/edge  speedup x%.2f\n", p, el/float64(len(edges)), base/el)
	}
	runtime.GOMAXPROCS(runtime.NumCPU())
	fmt.Println()
	return rows
}
