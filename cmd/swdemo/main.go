// Command swdemo drives every sliding-window structure over one synthetic
// stream and prints a periodic status line — a smoke-testable end-to-end
// demo of Theorem 1.2's toolbox.
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/graphgen"
)

func main() {
	n := flag.Int("n", 1000, "vertices")
	rounds := flag.Int("rounds", 50, "stream rounds")
	batch := flag.Int("batch", 200, "arrivals per round")
	window := flag.Int("window", 4000, "window length")
	seed := flag.Uint64("seed", 7, "stream seed")
	flag.Parse()

	conn := repro.NewSWConnEager(*n, *seed)
	bip := repro.NewSWBipartite(*n, *seed+1)
	cyc := repro.NewSWCycleFree(*n, *seed+2)
	kc := repro.NewSWKCert(*n, 3, *seed+3)
	amsf := repro.NewSWApproxMSF(*n, 0.25, 1<<16, *seed+4)

	stream := graphgen.SlidingStream(*n, *rounds, *batch, *window, *seed)
	weights := graphgen.ErdosRenyi(*n, *rounds**batch, 1<<16, *seed+5)
	wi := 0

	fmt.Printf("sliding-window demo: n=%d, %d rounds x %d arrivals, window %d\n",
		*n, *rounds, *batch, *window)
	fmt.Printf("%6s %6s %10s %10s %8s %9s %12s\n",
		"round", "live", "components", "bipartite", "cycle", "certEdges", "~MSF weight")
	live := 0
	for i, r := range stream.Rounds {
		plain := make([]repro.StreamEdge, len(r.Insert))
		weighted := make([]repro.WeightedStreamEdge, len(r.Insert))
		for j, p := range r.Insert {
			plain[j] = repro.StreamEdge{U: p[0], V: p[1]}
			weighted[j] = repro.WeightedStreamEdge{U: p[0], V: p[1], W: weights[wi].W}
			wi++
		}
		conn.BatchInsert(plain)
		bip.BatchInsert(plain)
		cyc.BatchInsert(plain)
		kc.BatchInsert(plain)
		amsf.BatchInsert(weighted)

		conn.BatchExpire(r.Expire)
		bip.BatchExpire(r.Expire)
		cyc.BatchExpire(r.Expire)
		kc.BatchExpire(r.Expire)
		amsf.BatchExpire(r.Expire)
		live += len(r.Insert) - r.Expire

		if (i+1)%5 == 0 || i == len(stream.Rounds)-1 {
			fmt.Printf("%6d %6d %10d %10v %8v %9d %12.0f\n",
				i+1, live, conn.NumComponents(), bip.IsBipartite(),
				cyc.HasCycle(), kc.Size(), amsf.Weight())
		}
	}
}
