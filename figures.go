package repro

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpt"
	"repro/internal/rctree"
	"repro/internal/wgraph"
)

// CPTEdge is a compressed-path-tree edge (Section 3): the forest path
// between U and V has heaviest edge Key.
type CPTEdge = cpt.Edge

// Figure1Example reconstructs the running example of Figure 1: a weighted
// tree with five marked vertices whose compressed path tree has two Steiner
// vertices and edge weights {6, 10, 9, 7, 12, 3}.
//
// Layout (marked vertices A, B, C, D, E; Steiner X, Y; lower-case vertices
// are spliced out by the construction):
//
//	A --2-- a1 --6-- X          C --1-- c1 --7-- Y
//	B --------10---- X          D -------12----- Y
//	X --9-- b1 --4-- Y          E --------3----- Y
type Figure1Example struct {
	N      int
	Edges  []Edge
	Marked []int32
	Names  map[int32]string
	// WantWeights is the multiset of CPT edge weights from Figure 1b.
	WantWeights []int64
}

// NewFigure1Example builds the example instance.
func NewFigure1Example() Figure1Example {
	// Vertex ids: A=0 B=1 C=2 D=3 E=4 X=5 Y=6 a1=7 b1=8 c1=9.
	names := map[int32]string{0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "X", 6: "Y", 7: "a1", 8: "b1", 9: "c1"}
	edges := []Edge{
		{ID: 1, U: 0, V: 7, W: 2},  // A-a1
		{ID: 2, U: 7, V: 5, W: 6},  // a1-X
		{ID: 3, U: 1, V: 5, W: 10}, // B-X
		{ID: 4, U: 5, V: 8, W: 9},  // X-b1
		{ID: 5, U: 8, V: 6, W: 4},  // b1-Y
		{ID: 6, U: 2, V: 9, W: 1},  // C-c1
		{ID: 7, U: 9, V: 6, W: 7},  // c1-Y
		{ID: 8, U: 3, V: 6, W: 12}, // D-Y
		{ID: 9, U: 4, V: 6, W: 3},  // E-Y
	}
	return Figure1Example{
		N:           10,
		Edges:       edges,
		Marked:      []int32{0, 1, 2, 3, 4},
		Names:       names,
		WantWeights: []int64{3, 6, 7, 9, 10, 12},
	}
}

// Compute builds the tree in a BatchMSF and extracts the compressed path
// tree with respect to the marked vertices.
func (f Figure1Example) Compute(seed uint64) []CPTEdge {
	m := NewBatchMSF(f.N, seed)
	m.BatchInsert(f.Edges)
	return m.CompressedPaths(f.Marked)
}

// Render formats the CPT for display, naming vertices per the figure.
func (f Figure1Example) Render(edges []CPTEdge) string {
	var b strings.Builder
	rows := make([]string, 0, len(edges))
	for _, e := range edges {
		nu, nv := f.name(e.U), f.name(e.V)
		if nu > nv {
			nu, nv = nv, nu
		}
		rows = append(rows, fmt.Sprintf("  %s --%d-- %s", nu, e.Key.W, nv))
	}
	sort.Strings(rows)
	b.WriteString("compressed path tree:\n")
	for _, r := range rows {
		b.WriteString(r)
		b.WriteString("\n")
	}
	return b.String()
}

func (f Figure1Example) name(v int32) string {
	if n, ok := f.Names[v]; ok {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

// Figure2Example is the 12-vertex tree a–l of Figure 2, whose RC tree the
// paper illustrates.
type Figure2Example struct {
	N     int
	Edges []Edge
	Names []string
}

// NewFigure2Example builds the Figure 2 tree.
func NewFigure2Example() Figure2Example {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	pairs := [][2]int32{
		{0, 1},   // a-b
		{1, 2},   // b-c
		{1, 3},   // b-d
		{3, 4},   // d-e
		{4, 5},   // e-f
		{4, 7},   // e-h
		{6, 7},   // g-h
		{7, 8},   // h-i
		{8, 9},   // i-j
		{8, 10},  // i-k
		{10, 11}, // k-l
	}
	edges := make([]Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = Edge{ID: EdgeID(i + 1), U: p[0], V: p[1], W: int64(i + 1)}
	}
	return Figure2Example{N: 12, Edges: edges, Names: names}
}

// RCTreeDump builds the rake-compress tree of the Figure 2 example and
// returns a per-vertex description of the contraction (death round,
// decision, cluster relationships), which is the information Figure 2c
// depicts. The exact clustering depends on the contraction coins; any seed
// yields a valid RC tree of the same tree.
func (f Figure2Example) RCTreeDump(seed uint64) string {
	t := rctree.New(f.N, seed)
	var ins []rctree.Edge
	for _, e := range f.Edges {
		ins = append(ins, rctree.Edge{U: e.U, V: e.V, Key: wgraph.KeyOf(e)})
	}
	t.BatchUpdate(ins, nil)
	var b strings.Builder
	fmt.Fprintf(&b, "RC tree of the Figure 2 tree (seed %d):\n", seed)
	maxRound := int32(0)
	for v := int32(0); v < int32(f.N); v++ {
		if t.DeathRound(v) > maxRound {
			maxRound = t.DeathRound(v)
		}
	}
	for r := int32(0); r <= maxRound; r++ {
		fmt.Fprintf(&b, "round %d:\n", r)
		for v := int32(0); v < int32(f.N); v++ {
			if t.DeathRound(v) != r {
				continue
			}
			switch t.DecisionOf(v) {
			case rctree.Rake:
				fmt.Fprintf(&b, "  %s rakes into %s (unary cluster %s)\n",
					f.Names[v], f.Names[t.TargetOf(v)], strings.ToUpper(f.Names[v]))
			case rctree.Compress:
				bd := t.Boundary(v)
				fmt.Fprintf(&b, "  %s compresses between %s and %s (binary cluster %s)\n",
					f.Names[v], f.Names[bd[0]], f.Names[bd[1]], strings.ToUpper(f.Names[v]))
			case rctree.Finalize:
				fmt.Fprintf(&b, "  %s finalizes (root cluster %s)\n",
					f.Names[v], strings.ToUpper(f.Names[v]))
			}
		}
	}
	return b.String()
}
