// Package mincut implements the Stoer–Wagner global minimum cut algorithm.
// The paper tests k-connectivity by running a global min-cut over the
// k-certificate (Section 5.4, using [27, 28]); Stoer–Wagner is our
// deterministic stand-in at certificate scale (O(kn) edges), see
// DESIGN.md §2.
package mincut

import "repro/internal/wgraph"

// Global returns the weight of a global minimum cut of the multigraph on n
// vertices (edge weights count as capacities; parallel edges accumulate).
// Returns 0 when the graph is disconnected or has fewer than 2 vertices.
func Global(n int, edges []wgraph.Edge) int64 {
	if n < 2 {
		return 0
	}
	// Dense capacity matrix; certificates have O(kn) edges so n is small.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := int64(1) << 62
	// n-1 minimum-cut phases; each merges the last two vertices of a
	// maximum-adjacency ordering.
	for len(active) > 1 {
		// Maximum adjacency search over the active vertices.
		m := len(active)
		inA := make([]bool, m)
		conn := make([]int64, m)
		order := make([]int, 0, m)
		for it := 0; it < m; it++ {
			sel := -1
			for i := 0; i < m; i++ {
				if !inA[i] && (sel == -1 || conn[i] > conn[sel]) {
					sel = i
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for i := 0; i < m; i++ {
				if !inA[i] {
					conn[i] += w[active[sel]][active[i]]
				}
			}
		}
		t := order[m-1]
		s := order[m-2]
		cutOfPhase := int64(0)
		for i := 0; i < m; i++ {
			if i != t {
				cutOfPhase += w[active[t]][active[i]]
			}
		}
		if cutOfPhase < best {
			best = cutOfPhase
		}
		// Merge t into s.
		vt, vs := active[t], active[s]
		for i := 0; i < m; i++ {
			if i == t || i == s {
				continue
			}
			w[vs][active[i]] += w[vt][active[i]]
			w[active[i]][vs] = w[vs][active[i]]
		}
		active = append(active[:t], active[t+1:]...)
	}
	if best >= int64(1)<<62 {
		return 0
	}
	return best
}

// EdgeConnectivity returns the unweighted global edge connectivity (every
// edge treated as capacity 1).
func EdgeConnectivity(n int, edges []wgraph.Edge) int64 {
	unit := make([]wgraph.Edge, len(edges))
	for i, e := range edges {
		e.W = 1
		unit[i] = e
	}
	return Global(n, unit)
}
