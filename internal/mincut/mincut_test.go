package mincut

import (
	"testing"

	"repro/internal/graphgen"
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

func TestTrivial(t *testing.T) {
	if Global(0, nil) != 0 || Global(1, nil) != 0 {
		t.Fatal("tiny graphs should have cut 0")
	}
	if Global(2, nil) != 0 {
		t.Fatal("disconnected graph should have cut 0")
	}
}

func TestSingleEdge(t *testing.T) {
	if got := Global(2, []wgraph.Edge{{U: 0, V: 1, W: 7}}); got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestTriangle(t *testing.T) {
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
	}
	if got := EdgeConnectivity(3, edges); got != 2 {
		t.Fatalf("triangle connectivity %d want 2", got)
	}
}

func TestBridge(t *testing.T) {
	// Two triangles joined by one bridge: min cut 1.
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 5, V: 3, W: 1},
		{U: 2, V: 3, W: 1},
	}
	if got := EdgeConnectivity(6, edges); got != 1 {
		t.Fatalf("bridge cut %d want 1", got)
	}
}

func TestCompleteGraph(t *testing.T) {
	// K5 has edge connectivity 4.
	var edges []wgraph.Edge
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, wgraph.Edge{U: i, V: j, W: 1})
		}
	}
	if got := EdgeConnectivity(5, edges); got != 4 {
		t.Fatalf("K5 connectivity %d want 4", got)
	}
}

func TestWeightedKnownCut(t *testing.T) {
	// The classic Stoer-Wagner paper example graph has min cut 4.
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 2}, {U: 0, V: 4, W: 3},
		{U: 1, V: 2, W: 3}, {U: 1, V: 4, W: 2}, {U: 1, V: 5, W: 2},
		{U: 2, V: 3, W: 4}, {U: 2, V: 6, W: 2},
		{U: 3, V: 6, W: 2}, {U: 3, V: 7, W: 2},
		{U: 4, V: 5, W: 3},
		{U: 5, V: 6, W: 1},
		{U: 6, V: 7, W: 3},
	}
	if got := Global(8, edges); got != 4 {
		t.Fatalf("got %d want 4", got)
	}
}

func TestParallelEdgesAccumulate(t *testing.T) {
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1},
	}
	if got := EdgeConnectivity(2, edges); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
}

// bruteForceCut enumerates all bipartitions (n <= 16).
func bruteForceCut(n int, edges []wgraph.Edge) int64 {
	best := int64(1) << 62
	for mask := 1; mask < (1<<n)-1; mask++ {
		var c int64
		for _, e := range edges {
			if (mask>>e.U)&1 != (mask>>e.V)&1 {
				c += e.W
			}
		}
		if c < best {
			best = c
		}
	}
	if best >= int64(1)<<62 {
		return 0
	}
	return best
}

func TestVsBruteForceRandom(t *testing.T) {
	r := parallel.NewRNG(3)
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(8)
		m := n + r.Intn(2*n)
		edges := graphgen.ErdosRenyi(n, m, 5, uint64(trial)+11)
		got := Global(n, edges)
		want := bruteForceCut(n, edges)
		if got != want {
			t.Fatalf("trial %d (n=%d m=%d): got %d want %d", trial, n, m, got, want)
		}
	}
}
