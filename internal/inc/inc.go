// Package inc implements the incremental-model (insert-only) structures of
// Table 1's first column, following Section 5.7 of the paper: batch
// union-find (Simsiri et al. [46]) replaces the recency-weighted MSF, which
// turns the lg(1+n/l) work factor into α(n).
//
// Structures: connectivity with component counting, bipartiteness,
// cycle-freeness, and k-certificates. The incremental MSF itself is package
// core (Theorem 1.1), which Table 1 lists in the same column.
package inc

import (
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// Conn is incremental connectivity with component counting: batch inserts
// in O(l·α(n)) expected work via batch union-find, with the spanning-forest
// edge list maintained as described in Section 5.7.
type Conn struct {
	uf     *unionfind.Batch
	forest []wgraph.Edge
}

// NewConn returns an incremental connectivity structure over n vertices.
func NewConn(n int) *Conn { return &Conn{uf: unionfind.NewBatch(n)} }

// BatchInsert inserts edges and returns the ones that joined two components
// (the new spanning-forest edges).
func (c *Conn) BatchInsert(edges []wgraph.Edge) []wgraph.Edge {
	added := c.uf.BatchInsert(edges)
	c.forest = append(c.forest, added...)
	return added
}

// IsConnected reports connectivity in O(α(n)).
func (c *Conn) IsConnected(u, v int32) bool { return c.uf.Connected(u, v) }

// NumComponents returns the component count in O(1).
func (c *Conn) NumComponents() int { return c.uf.NumComponents() }

// ForestEdges returns the maintained spanning forest.
func (c *Conn) ForestEdges() []wgraph.Edge { return c.forest }

// Bipartite is incremental bipartiteness via the cycle double cover: once
// an odd cycle appears it never disappears (no deletions), so the answer is
// monotone.
type Bipartite struct {
	n int
	g *Conn
	d *Conn
}

// NewBipartite returns an incremental bipartiteness monitor.
func NewBipartite(n int) *Bipartite {
	return &Bipartite{n: n, g: NewConn(n), d: NewConn(2 * n)}
}

// BatchInsert inserts edges.
func (b *Bipartite) BatchInsert(edges []wgraph.Edge) {
	b.g.BatchInsert(edges)
	dcc := make([]wgraph.Edge, 0, 2*len(edges))
	n32 := int32(b.n)
	for _, e := range edges {
		dcc = append(dcc,
			wgraph.Edge{ID: 2 * e.ID, U: e.U, V: e.V + n32},
			wgraph.Edge{ID: 2*e.ID + 1, U: e.U + n32, V: e.V},
		)
	}
	b.d.BatchInsert(dcc)
}

// IsBipartite reports whether the inserted graph is bipartite, in O(1).
func (b *Bipartite) IsBipartite() bool {
	return b.d.NumComponents() == 2*b.g.NumComponents()
}

// CycleFree is incremental cycle detection: a cycle appears exactly when an
// inserted edge fails to join two components.
type CycleFree struct {
	uf    *unionfind.Batch
	found bool
}

// NewCycleFree returns an incremental cycle monitor over n vertices.
func NewCycleFree(n int) *CycleFree { return &CycleFree{uf: unionfind.NewBatch(n)} }

// BatchInsert inserts edges.
func (c *CycleFree) BatchInsert(edges []wgraph.Edge) {
	kept := c.uf.BatchInsert(edges)
	loops := 0
	for _, e := range edges {
		if e.IsLoop() {
			loops++
		}
	}
	if len(kept) < len(edges)-loops || loops > 0 {
		c.found = true
	}
}

// HasCycle reports whether any cycle has appeared, in O(1).
func (c *CycleFree) HasCycle() bool { return c.found }

// KCert maintains an incremental k-certificate: a maximal spanning forest
// decomposition built by cascading rejected edges down k batch union-find
// forests (the insert-only specialization of Theorem 5.5).
type KCert struct {
	k      int
	n      int
	uf     []*unionfind.Batch
	forest [][]wgraph.Edge
}

// NewKCert returns an incremental k-certificate over n vertices.
func NewKCert(n, k int) *KCert {
	if k < 1 {
		panic("inc: k must be at least 1")
	}
	c := &KCert{k: k, n: n}
	for i := 0; i < k; i++ {
		c.uf = append(c.uf, unionfind.NewBatch(n))
		c.forest = append(c.forest, nil)
	}
	return c
}

// BatchInsert inserts edges, cascading rejects down the forests.
func (c *KCert) BatchInsert(edges []wgraph.Edge) {
	o := make([]wgraph.Edge, 0, len(edges))
	for _, e := range edges {
		if !e.IsLoop() {
			o = append(o, e)
		}
	}
	for i := 0; i < c.k && len(o) > 0; i++ {
		kept := c.uf[i].BatchInsert(o)
		c.forest[i] = append(c.forest[i], kept...)
		inKept := make(map[wgraph.EdgeID]bool, len(kept))
		for _, e := range kept {
			inKept[e.ID] = true
		}
		next := o[:0]
		for _, e := range o {
			if !inKept[e.ID] {
				next = append(next, e)
			}
		}
		o = next
	}
}

// Certificate returns the union of the k forests: at most k(n-1) edges
// preserving all cuts of size <= k.
func (c *KCert) Certificate() []wgraph.Edge {
	var out []wgraph.Edge
	for i := 0; i < c.k; i++ {
		out = append(out, c.forest[i]...)
	}
	return out
}

// IsConnected reports connectivity (forest 1 spans the graph).
func (c *KCert) IsConnected(u, v int32) bool { return c.uf[0].Connected(u, v) }

// Size returns the number of certificate edges.
func (c *KCert) Size() int {
	s := 0
	for i := 0; i < c.k; i++ {
		s += len(c.forest[i])
	}
	return s
}
