package inc

import (
	"testing"

	"repro/internal/graphgen"
	"repro/internal/mincut"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

func TestConnBasics(t *testing.T) {
	c := NewConn(5)
	added := c.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1}, {ID: 2, U: 1, V: 2}, {ID: 3, U: 0, V: 2},
	})
	if len(added) != 2 {
		t.Fatalf("added=%v", added)
	}
	if !c.IsConnected(0, 2) || c.IsConnected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if c.NumComponents() != 3 {
		t.Fatalf("components=%d", c.NumComponents())
	}
	if len(c.ForestEdges()) != 2 {
		t.Fatalf("forest=%v", c.ForestEdges())
	}
}

func TestConnForestSpans(t *testing.T) {
	const n = 200
	edges := graphgen.ErdosRenyi(n, 600, 100, 3)
	c := NewConn(n)
	for _, b := range graphgen.Batches(edges, 50) {
		c.BatchInsert(b)
	}
	// The forest must reproduce exactly the same connectivity.
	uf := unionfind.New(n)
	for _, e := range c.ForestEdges() {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("forest has a cycle at %v", e)
		}
	}
	for _, e := range edges {
		if !uf.Connected(e.U, e.V) {
			t.Fatalf("forest misses edge %v", e)
		}
	}
	if uf.NumComponents() != c.NumComponents() {
		t.Fatalf("components %d vs %d", uf.NumComponents(), c.NumComponents())
	}
}

func TestBipartiteIncremental(t *testing.T) {
	b := NewBipartite(5)
	b.BatchInsert([]wgraph.Edge{{ID: 1, U: 0, V: 1}, {ID: 2, U: 1, V: 2}, {ID: 3, U: 2, V: 3}, {ID: 4, U: 3, V: 0}})
	if !b.IsBipartite() {
		t.Fatal("even cycle misreported")
	}
	b.BatchInsert([]wgraph.Edge{{ID: 5, U: 0, V: 2}})
	if b.IsBipartite() {
		t.Fatal("odd cycle missed")
	}
	// Monotone: more edges never restore bipartiteness.
	b.BatchInsert([]wgraph.Edge{{ID: 6, U: 3, V: 4}})
	if b.IsBipartite() {
		t.Fatal("bipartiteness resurrected")
	}
}

func TestCycleFreeIncremental(t *testing.T) {
	c := NewCycleFree(4)
	c.BatchInsert([]wgraph.Edge{{ID: 1, U: 0, V: 1}, {ID: 2, U: 1, V: 2}})
	if c.HasCycle() {
		t.Fatal("path misreported")
	}
	c.BatchInsert([]wgraph.Edge{{ID: 3, U: 2, V: 0}})
	if !c.HasCycle() {
		t.Fatal("triangle missed")
	}
}

func TestCycleFreeSelfLoop(t *testing.T) {
	c := NewCycleFree(2)
	c.BatchInsert([]wgraph.Edge{{ID: 1, U: 1, V: 1}})
	if !c.HasCycle() {
		t.Fatal("self-loop is a cycle")
	}
}

func TestCycleFreeWholeBatchCycle(t *testing.T) {
	c := NewCycleFree(3)
	c.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1}, {ID: 2, U: 1, V: 2}, {ID: 3, U: 2, V: 0},
	})
	if !c.HasCycle() {
		t.Fatal("cycle within one batch missed")
	}
}

func TestKCertPreservesSmallCuts(t *testing.T) {
	// Property P3: the certificate's global min cut equals
	// min(k, mincut(G)).
	const n = 12
	const k = 3
	r := parallel.NewRNG(9)
	for trial := 0; trial < 10; trial++ {
		m := 2*n + r.Intn(3*n)
		edges := graphgen.ErdosRenyi(n, m, 1, uint64(trial)+100)
		c := NewKCert(n, k)
		for _, b := range graphgen.Batches(edges, 7) {
			c.BatchInsert(b)
		}
		cert := c.Certificate()
		if len(cert) > k*(n-1) {
			t.Fatalf("trial %d: cert too big: %d", trial, len(cert))
		}
		wantCut := mincut.EdgeConnectivity(n, edges)
		if wantCut > int64(k) {
			wantCut = int64(k)
		}
		gotCut := mincut.EdgeConnectivity(n, cert)
		if gotCut > int64(k) {
			gotCut = int64(k)
		}
		if gotCut != wantCut {
			t.Fatalf("trial %d: cert min(k,cut)=%d graph=%d", trial, gotCut, wantCut)
		}
	}
}

func TestKCertConnectivity(t *testing.T) {
	const n = 50
	edges := graphgen.ErdosRenyi(n, 120, 1, 77)
	c := NewKCert(n, 2)
	uf := unionfind.New(n)
	for _, b := range graphgen.Batches(edges, 13) {
		c.BatchInsert(b)
		for _, e := range b {
			uf.Union(e.U, e.V)
		}
	}
	r := parallel.NewRNG(5)
	for q := 0; q < 200; q++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if c.IsConnected(u, v) != uf.Connected(u, v) {
			t.Fatalf("IsConnected(%d,%d) mismatch", u, v)
		}
	}
}
