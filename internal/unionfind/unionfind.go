// Package unionfind implements disjoint-set structures: a classic sequential
// union-find with path halving and union by rank, and the work-efficient
// parallel batch-incremental variant of Simsiri, Tangwongsan, Tirthapura and
// Wu (Euro-Par 2016, reference [46] of the paper). The batch variant backs
// the "Incremental" column of Table 1: a batch of ℓ edge insertions costs
// O(ℓ α(n)) expected work.
package unionfind

import (
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// UF is a sequential union-find over n elements with union by rank and path
// halving: Find costs amortized O(α(n)).
type UF struct {
	parent []int32
	rank   []uint8
	comps  int
}

// New returns a union-find with n singleton components.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), rank: make([]uint8, n), comps: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// N returns the number of elements.
func (u *UF) N() int { return len(u.parent) }

// Find returns the representative of x's component.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the components of a and b, returning true if they were
// previously distinct.
func (u *UF) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.comps--
	return true
}

// Connected reports whether a and b share a component.
func (u *UF) Connected(a, b int32) bool { return u.Find(a) == u.Find(b) }

// NumComponents returns the current number of components.
func (u *UF) NumComponents() int { return u.comps }

// Batch is the parallel batch-incremental connectivity structure of Simsiri
// et al. [46]. BatchInsert contracts the endpoints of the inserted edges with
// parallel Finds, computes a spanning forest of the contracted multigraph
// with parallel hooking (our stand-in for Gazit's algorithm [26] — see
// DESIGN.md §2), and applies the resulting unions. The spanning-forest edges
// are returned: as observed in Section 5.7 of the paper, they are exactly the
// new edges of an incrementally maintained spanning forest.
type Batch struct {
	uf *UF
}

// NewBatch returns a batch union-find over n elements.
func NewBatch(n int) *Batch { return &Batch{uf: New(n)} }

// N returns the number of elements.
func (b *Batch) N() int { return b.uf.N() }

// Find exposes the underlying representative lookup.
func (b *Batch) Find(x int32) int32 { return b.uf.Find(x) }

// Connected reports whether a and b share a component.
func (b *Batch) Connected(x, y int32) bool { return b.uf.Connected(x, y) }

// NumComponents returns the number of components.
func (b *Batch) NumComponents() int { return b.uf.NumComponents() }

// BatchInsert inserts the given edges and returns the subset that joined two
// previously-disconnected components (a spanning forest of the new
// connectivity, in input order of discovery).
func (b *Batch) BatchInsert(edges []wgraph.Edge) []wgraph.Edge {
	if len(edges) == 0 {
		return nil
	}
	// Parallel find of all endpoints. Concurrent Finds race benignly on path
	// halving only when run truly concurrently; to stay strictly
	// race-detector clean we compute roots without compressing in parallel,
	// then compress sequentially via the survivors.
	roots := make([][2]int32, len(edges))
	parallel.ForGrained(len(edges), 512, func(i int) {
		roots[i] = [2]int32{b.findNoCompress(edges[i].U), b.findNoCompress(edges[i].V)}
	})
	// Contracted multigraph: vertices are roots; run spanning forest via
	// repeated hooking on the (root,root) edge list.
	live := make([]int, 0, len(edges))
	for i := range edges {
		if roots[i][0] != roots[i][1] {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return nil
	}
	forest := spanningForestHooking(b.uf, edges, roots, live)
	return forest
}

// findNoCompress walks to the root without mutating parent pointers, so it is
// safe to call concurrently with other reads.
func (b *Batch) findNoCompress(x int32) int32 {
	p := b.uf.parent
	for p[x] != x {
		x = p[x]
	}
	return x
}

// spanningForestHooking computes a spanning forest of the contracted
// multigraph and applies its unions. It runs rounds of deterministic hooking:
// each live component root picks the first incident live edge, hooks along
// it, and contracted edges are filtered; O(lg n) rounds in the worst case.
func spanningForestHooking(u *UF, edges []wgraph.Edge, roots [][2]int32, live []int) []wgraph.Edge {
	var forest []wgraph.Edge
	for len(live) > 0 {
		// choice[r] = index of an arbitrary live edge incident to root r.
		choice := make(map[int32]int, len(live))
		for _, i := range live {
			a, b := u.Find(roots[i][0]), u.Find(roots[i][1])
			roots[i] = [2]int32{a, b}
			if a == b {
				continue
			}
			if _, ok := choice[a]; !ok {
				choice[a] = i
			}
			if _, ok := choice[b]; !ok {
				choice[b] = i
			}
		}
		progressed := false
		for _, i := range choice {
			a, b := u.Find(roots[i][0]), u.Find(roots[i][1])
			if a == b {
				continue
			}
			u.Union(a, b)
			forest = append(forest, edges[i])
			progressed = true
		}
		if !progressed {
			break
		}
		next := live[:0]
		for _, i := range live {
			if u.Find(roots[i][0]) != u.Find(roots[i][1]) {
				next = append(next, i)
			}
		}
		live = next
	}
	return forest
}
