package unionfind

import (
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

func TestSequentialBasic(t *testing.T) {
	u := New(5)
	if u.NumComponents() != 5 {
		t.Fatalf("components=%d", u.NumComponents())
	}
	if !u.Union(0, 1) {
		t.Fatal("union 0-1 should merge")
	}
	if u.Union(1, 0) {
		t.Fatal("union 1-0 should be no-op")
	}
	if !u.Connected(0, 1) || u.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.NumComponents() != 2 {
		t.Fatalf("components=%d want 2", u.NumComponents())
	}
	if !u.Connected(1, 2) {
		t.Fatal("1 and 2 should be connected")
	}
}

func TestSequentialSingleton(t *testing.T) {
	u := New(1)
	if !u.Connected(0, 0) {
		t.Fatal("self connectivity")
	}
	if u.Union(0, 0) {
		t.Fatal("self union should be no-op")
	}
}

// reference connectivity via BFS over an adjacency list.
type refConn struct {
	n   int
	adj [][]int32
}

func newRefConn(n int) *refConn { return &refConn{n: n, adj: make([][]int32, n)} }

func (r *refConn) add(u, v int32) {
	r.adj[u] = append(r.adj[u], v)
	r.adj[v] = append(r.adj[v], u)
}

func (r *refConn) connected(u, v int32) bool {
	if u == v {
		return true
	}
	seen := make([]bool, r.n)
	stack := []int32{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range r.adj[x] {
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

func (r *refConn) numComponents() int {
	seen := make([]bool, r.n)
	comps := 0
	for s := 0; s < r.n; s++ {
		if seen[s] {
			continue
		}
		comps++
		stack := []int32{int32(s)}
		seen[s] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range r.adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
	}
	return comps
}

func TestSequentialVsReferenceRandom(t *testing.T) {
	const n = 60
	r := parallel.NewRNG(11)
	u := New(n)
	ref := newRefConn(n)
	for i := 0; i < 300; i++ {
		a, b := int32(r.Intn(n)), int32(r.Intn(n))
		u.Union(a, b)
		ref.add(a, b)
		x, y := int32(r.Intn(n)), int32(r.Intn(n))
		if u.Connected(x, y) != ref.connected(x, y) {
			t.Fatalf("step %d: Connected(%d,%d) mismatch", i, x, y)
		}
	}
	if u.NumComponents() != ref.numComponents() {
		t.Fatalf("components %d vs %d", u.NumComponents(), ref.numComponents())
	}
}

func TestBatchEmptyInsert(t *testing.T) {
	b := NewBatch(4)
	if got := b.BatchInsert(nil); got != nil {
		t.Fatalf("got %v", got)
	}
	if b.NumComponents() != 4 {
		t.Fatal("components changed")
	}
}

func TestBatchSelfLoopsAndDuplicates(t *testing.T) {
	b := NewBatch(4)
	edges := []wgraph.Edge{
		{ID: 0, U: 1, V: 1},
		{ID: 1, U: 0, V: 2},
		{ID: 2, U: 0, V: 2},
		{ID: 3, U: 2, V: 0},
	}
	forest := b.BatchInsert(edges)
	if len(forest) != 1 {
		t.Fatalf("forest=%v want exactly 1 edge", forest)
	}
	if !b.Connected(0, 2) || b.Connected(0, 1) {
		t.Fatal("connectivity wrong")
	}
	if b.NumComponents() != 3 {
		t.Fatalf("components=%d", b.NumComponents())
	}
}

func TestBatchForestSizeEqualsComponentDrop(t *testing.T) {
	const n = 500
	r := parallel.NewRNG(5)
	b := NewBatch(n)
	for round := 0; round < 20; round++ {
		ell := 1 + r.Intn(200)
		batch := make([]wgraph.Edge, ell)
		for i := range batch {
			batch[i] = wgraph.Edge{ID: wgraph.EdgeID(round*1000 + i), U: int32(r.Intn(n)), V: int32(r.Intn(n))}
		}
		before := b.NumComponents()
		forest := b.BatchInsert(batch)
		after := b.NumComponents()
		if before-after != len(forest) {
			t.Fatalf("round %d: component drop %d != forest size %d", round, before-after, len(forest))
		}
		// forest edges must each have joined distinct components: check
		// acyclicity by re-running them through a fresh UF seeded with the
		// pre-round structure is overkill; instead check no duplicates among
		// forest endpoints pairs post-hoc via a fresh UF on just the forest.
		f := New(n)
		for _, e := range forest {
			if !f.Union(e.U, e.V) {
				t.Fatalf("round %d: forest has a cycle at %v", round, e)
			}
		}
	}
}

func TestBatchMatchesSequentialConnectivity(t *testing.T) {
	const n = 300
	r := parallel.NewRNG(77)
	b := NewBatch(n)
	s := New(n)
	id := wgraph.EdgeID(0)
	for round := 0; round < 30; round++ {
		ell := 1 + r.Intn(64)
		batch := make([]wgraph.Edge, ell)
		for i := range batch {
			batch[i] = wgraph.Edge{ID: id, U: int32(r.Intn(n)), V: int32(r.Intn(n))}
			id++
		}
		b.BatchInsert(batch)
		for _, e := range batch {
			s.Union(e.U, e.V)
		}
		for q := 0; q < 50; q++ {
			x, y := int32(r.Intn(n)), int32(r.Intn(n))
			if b.Connected(x, y) != s.Connected(x, y) {
				t.Fatalf("round %d: mismatch at (%d,%d)", round, x, y)
			}
		}
		if b.NumComponents() != s.NumComponents() {
			t.Fatalf("round %d: components %d vs %d", round, b.NumComponents(), s.NumComponents())
		}
	}
}

func TestBatchSingleBigBatchConnectsPath(t *testing.T) {
	const n = 10_000
	b := NewBatch(n)
	edges := make([]wgraph.Edge, n-1)
	for i := range edges {
		edges[i] = wgraph.Edge{ID: wgraph.EdgeID(i), U: int32(i), V: int32(i + 1)}
	}
	forest := b.BatchInsert(edges)
	if len(forest) != n-1 {
		t.Fatalf("forest size %d want %d", len(forest), n-1)
	}
	if !b.Connected(0, n-1) {
		t.Fatal("path endpoints not connected")
	}
	if b.NumComponents() != 1 {
		t.Fatalf("components=%d", b.NumComponents())
	}
}

func TestBatchStarBatch(t *testing.T) {
	const n = 5000
	b := NewBatch(n)
	edges := make([]wgraph.Edge, n-1)
	for i := range edges {
		edges[i] = wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i + 1)}
	}
	forest := b.BatchInsert(edges)
	if len(forest) != n-1 {
		t.Fatalf("forest size %d", len(forest))
	}
	if b.NumComponents() != 1 {
		t.Fatalf("components=%d", b.NumComponents())
	}
}

func TestBatchQuickProperty(t *testing.T) {
	f := func(pairs [][2]uint8, queries [][2]uint8) bool {
		const n = 256
		b := NewBatch(n)
		s := New(n)
		batch := make([]wgraph.Edge, len(pairs))
		for i, p := range pairs {
			batch[i] = wgraph.Edge{ID: wgraph.EdgeID(i), U: int32(p[0]), V: int32(p[1])}
			s.Union(int32(p[0]), int32(p[1]))
		}
		b.BatchInsert(batch)
		for _, q := range queries {
			if b.Connected(int32(q[0]), int32(q[1])) != s.Connected(int32(q[0]), int32(q[1])) {
				return false
			}
		}
		return b.NumComponents() == s.NumComponents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
