package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small Prometheus text-exposition parser and validator.
// It exists so the things that consume our own /metrics output — the
// golden test, the CI smoke step, and swload's scraper — share one strict
// reader instead of three ad-hoc regexes. It parses the subset this
// package emits (HELP, TYPE, samples with optional labels, and the
// flight-recorder `# EXEMPLAR` comment lines; no timestamps) and rejects
// anything malformed.

// Sample is one exposition sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ExemplarSample is one parsed `# EXEMPLAR name{labels} kind value
// trace_id` comment line. Kind is "max" (the family's largest traced
// observation) or "recent" (a recent-ring sample); Value is in exposed
// units; TraceID is 16 lowercase hex digits resolvable at /debug/flight.
type ExemplarSample struct {
	Name    string
	Labels  map[string]string
	Kind    string
	Value   float64
	TraceID string
}

// Exposition is a parsed scrape.
type Exposition struct {
	Types     map[string]MetricType
	Help      map[string]string
	Samples   []Sample
	Exemplars []ExemplarSample
}

// ParseExposition reads Prometheus text format. It returns an error on any
// line it cannot parse — a scrape this package emitted must round-trip.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{
		Types: make(map[string]MetricType),
		Help:  make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid HELP metric name %q", lineNo, name)
			}
			e.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch MetricType(typ) {
			case TypeCounter, TypeGauge, TypeHistogram:
				e.Types[name] = MetricType(typ)
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			continue
		}
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			ex, err := parseExemplar(strings.TrimPrefix(line, "# EXEMPLAR "))
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			e.Exemplars = append(e.Exemplars, ex)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal exposition
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:nameEnd]
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end, labels, err := parseLabelSet(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	val, _, _ := strings.Cut(rest, " ") // ignore optional timestamp
	f, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", val, line)
	}
	s.Value = f
	return s, nil
}

// parseExemplar reads the tail of an `# EXEMPLAR ` line:
// name{labels} kind value trace_id.
func parseExemplar(rest string) (ExemplarSample, error) {
	ex := ExemplarSample{}
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	nameEnd := sp
	if brace >= 0 && (sp < 0 || brace < sp) {
		nameEnd = brace
	}
	if nameEnd <= 0 {
		return ex, fmt.Errorf("malformed EXEMPLAR %q", rest)
	}
	ex.Name = rest[:nameEnd]
	if !validName(ex.Name) {
		return ex, fmt.Errorf("invalid EXEMPLAR metric name %q", ex.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabelSet(rest)
		if err != nil {
			return ex, err
		}
		ex.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return ex, fmt.Errorf("EXEMPLAR wants `kind value trace_id`, got %q", rest)
	}
	ex.Kind = fields[0]
	if ex.Kind != "max" && ex.Kind != "recent" {
		return ex, fmt.Errorf("unknown EXEMPLAR kind %q", ex.Kind)
	}
	v, err := parseValue(fields[1])
	if err != nil {
		return ex, fmt.Errorf("bad EXEMPLAR value %q", fields[1])
	}
	ex.Value = v
	id := fields[2]
	if len(id) != 16 {
		return ex, fmt.Errorf("EXEMPLAR trace ID %q is not 16 hex digits", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return ex, fmt.Errorf("EXEMPLAR trace ID %q is not 16 hex digits", id)
		}
	}
	ex.TraceID = id
	return ex, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabelSet parses a {a="x",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabelSet(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("malformed label set %q", s)
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape in label value in %q", s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// Value looks up a sample by exact name and label match (nil/empty labels
// match an unlabeled sample).
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// familyOf maps a sample name to its family name: histogram series carry
// _bucket/_sum/_count suffixes.
func (e *Exposition) familyOf(sample string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample {
			if e.Types[base] == TypeHistogram {
				return base
			}
		}
	}
	return sample
}

// Validate checks structural invariants of the scrape:
//   - every sample belongs to a family with a TYPE line;
//   - counter samples are non-negative and finite;
//   - every histogram has a +Inf bucket per child, bucket counts are
//     cumulative (non-decreasing in le order), and +Inf equals _count;
//   - every exemplar names a registered histogram family and carries a
//     finite non-negative value.
func (e *Exposition) Validate() error {
	type histChild struct {
		buckets map[float64]float64 // le → cumulative count
		count   float64
		hasCnt  bool
	}
	hists := make(map[string]*histChild)

	childKey := func(family string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(family)
		for _, k := range keys {
			b.WriteByte(1)
			b.WriteString(k)
			b.WriteByte(2)
			b.WriteString(labels[k])
		}
		return b.String()
	}

	for _, s := range e.Samples {
		fam := e.familyOf(s.Name)
		typ, ok := e.Types[fam]
		if !ok {
			return fmt.Errorf("sample %q has no TYPE line", s.Name)
		}
		switch typ {
		case TypeCounter:
			if s.Value < 0 {
				return fmt.Errorf("counter %q has negative value %v", s.Name, s.Value)
			}
		case TypeHistogram:
			key := childKey(fam, s.Labels)
			hc := hists[key]
			if hc == nil {
				hc = &histChild{buckets: make(map[float64]float64)}
				hists[key] = hc
			}
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le, leOK := s.Labels["le"]
				if !leOK {
					return fmt.Errorf("histogram bucket %q missing le label", s.Name)
				}
				f, err := parseValue(le)
				if err != nil {
					return fmt.Errorf("histogram %q has bad le %q", fam, le)
				}
				hc.buckets[f] = s.Value
			case strings.HasSuffix(s.Name, "_count"):
				hc.count = s.Value
				hc.hasCnt = true
			}
		}
	}

	for key, hc := range hists {
		fam, _, _ := strings.Cut(key, "\x01")
		les := make([]float64, 0, len(hc.buckets))
		hasInf := false
		for le := range hc.buckets {
			les = append(les, le)
			if math.IsInf(le, +1) {
				hasInf = true
			}
		}
		if !hasInf {
			return fmt.Errorf("histogram %q missing +Inf bucket", fam)
		}
		sort.Float64s(les)
		prev := -1.0
		first := true
		for _, le := range les {
			v := hc.buckets[le]
			if !first && v < prev {
				return fmt.Errorf("histogram %q buckets not cumulative at le=%v", fam, le)
			}
			prev = v
			first = false
		}
		if hc.hasCnt && hc.buckets[les[len(les)-1]] != hc.count {
			return fmt.Errorf("histogram %q +Inf bucket %v != count %v",
				fam, hc.buckets[les[len(les)-1]], hc.count)
		}
	}

	for _, ex := range e.Exemplars {
		typ, ok := e.Types[ex.Name]
		if !ok {
			return fmt.Errorf("exemplar for %q has no TYPE line", ex.Name)
		}
		if typ != TypeHistogram {
			return fmt.Errorf("exemplar for %q, a %s (exemplars attach to histograms)", ex.Name, typ)
		}
		if ex.Value < 0 || math.IsNaN(ex.Value) || math.IsInf(ex.Value, 0) {
			return fmt.Errorf("exemplar for %q has bad value %v", ex.Name, ex.Value)
		}
	}
	return nil
}

// ExemplarFor returns the first exemplar of the given kind for a family
// (nil labels match any child).
func (e *Exposition) ExemplarFor(family, kind string) (ExemplarSample, bool) {
	for _, ex := range e.Exemplars {
		if ex.Name == family && ex.Kind == kind {
			return ex, true
		}
	}
	return ExemplarSample{}, false
}
