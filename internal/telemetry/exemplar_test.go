package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestExemplarCaptureAndRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sw_test_batch_seconds", "test", L("monitor", "conn"))
	h.ObserveTraced(2*time.Millisecond, 0xdead)
	h.ObserveTraced(9*time.Millisecond, 0xbeef) // new max
	h.ObserveTraced(1*time.Millisecond, 0xf00d)
	h.Observe(50 * time.Millisecond) // untraced: buckets move, exemplar must not

	if ex := h.MaxExemplar(); ex.TraceID != 0xbeef || ex.Value != int64(9*time.Millisecond) {
		t.Fatalf("max exemplar: %+v", ex)
	}
	recent := h.RecentExemplars(nil)
	if len(recent) != 3 {
		t.Fatalf("recent exemplars: %+v", recent)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "# EXEMPLAR sw_test_batch_seconds{monitor=\"conn\"} max 0.009 000000000000beef") {
		t.Fatalf("missing max exemplar line in:\n%s", text)
	}
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("round-trip validate: %v", err)
	}
	ex, ok := e.ExemplarFor("sw_test_batch_seconds", "max")
	if !ok || ex.TraceID != "000000000000beef" || ex.Value != 0.009 || ex.Labels["monitor"] != "conn" {
		t.Fatalf("parsed max exemplar: %+v ok=%v", ex, ok)
	}
	if _, ok := e.ExemplarFor("sw_test_batch_seconds", "recent"); !ok {
		t.Fatal("no recent exemplar parsed")
	}
}

func TestExemplarZeroTraceIDIsUntraced(t *testing.T) {
	var h Histogram
	h.ObserveValTraced(100, 0)
	if h.Snapshot().Count != 1 {
		t.Fatal("observation lost")
	}
	if ex := h.MaxExemplar(); ex.TraceID != 0 {
		t.Fatalf("exemplar captured for trace ID 0: %+v", ex)
	}
	if got := h.RecentExemplars(nil); len(got) != 0 {
		t.Fatalf("recent ring captured trace ID 0: %+v", got)
	}
	var nilH *Histogram
	nilH.ObserveValTraced(1, 2) // must not panic
	if ex := nilH.MaxExemplar(); ex.TraceID != 0 {
		t.Fatal("nil histogram exemplar")
	}
}

func TestExemplarRecentRingWraps(t *testing.T) {
	var h Histogram
	for i := 1; i <= exRecentSlots+3; i++ {
		h.ObserveValTraced(int64(i), uint64(i))
	}
	recent := h.RecentExemplars(nil)
	if len(recent) != exRecentSlots {
		t.Fatalf("recent ring size: %d", len(recent))
	}
	for _, ex := range recent {
		if ex.TraceID <= 3 {
			t.Fatalf("stale slot survived the wrap: %+v", recent)
		}
	}
}

func TestParseExemplarRejectsMalformed(t *testing.T) {
	base := "# HELP sw_x_seconds h\n# TYPE sw_x_seconds histogram\n"
	for _, line := range []string{
		"# EXEMPLAR sw_x_seconds max 0.1",                    // missing trace id
		"# EXEMPLAR sw_x_seconds huh 0.1 0000000000000001",   // unknown kind
		"# EXEMPLAR sw_x_seconds max nope 0000000000000001",  // bad value
		"# EXEMPLAR sw_x_seconds max 0.1 xyz",                // bad trace id
		"# EXEMPLAR sw_x_seconds max 0.1 000000000000000G",   // non-hex
		"# EXEMPLAR Bad-Name max 0.1 0000000000000001",       // bad name
		"# EXEMPLAR sw_x_seconds{le=\"oops max 0.1 00000000", // unterminated labels
	} {
		if _, err := ParseExposition(strings.NewReader(base + line + "\n")); err == nil {
			t.Errorf("accepted malformed exemplar line %q", line)
		}
	}
	// An exemplar naming an unregistered family parses but fails Validate.
	e, err := ParseExposition(strings.NewReader(base + "# EXEMPLAR sw_other_seconds max 0.1 0000000000000001\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err == nil {
		t.Fatal("validated exemplar for unregistered family")
	}
	// Non-EXEMPLAR comments stay legal.
	if _, err := ParseExposition(strings.NewReader(base + "# just a comment\n")); err != nil {
		t.Fatalf("plain comment rejected: %v", err)
	}
}

func TestExemplarObserveTracedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race")
	}
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveValTraced(12345, 0xabc)
	})
	if allocs != 0 {
		t.Fatalf("ObserveValTraced allocates %.1f/op, want 0", allocs)
	}
}
