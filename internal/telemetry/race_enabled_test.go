//go:build race

package telemetry

// raceEnabled mirrors the build-tag pattern used by internal/stream:
// alloc-count assertions are skipped under -race because the race runtime
// allocates on atomic instrumentation paths.
const raceEnabled = true
