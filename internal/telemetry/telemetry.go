// Package telemetry is a zero-dependency metrics and health-probe toolkit
// for the streaming service: counters, gauges and log₂-bucketed histograms
// with lock-free atomic hot paths (0 allocs per observation), exported in
// Prometheus text exposition format, plus liveness/readiness probes.
//
// Design constraints, in order:
//
//  1. The hot path is the ingest/apply pipeline: an observation is a
//     handful of uncontended atomic adds, never a lock, never an
//     allocation, never a map lookup. All instruments are resolved once at
//     wiring time and held as struct fields by the instrumented code.
//  2. Instruments are nil-safe: observing on a nil *Counter, *Gauge or
//     *Histogram is a no-op, so a pipeline built without a telemetry
//     registry pays one predictable branch per observation and nothing
//     else (the "compiled-out" recorder swload's -telemetry-compare
//     benchmarks against).
//  3. Exposition is boring, valid Prometheus text format — HELP/TYPE per
//     family, cumulative le buckets, _sum/_count — parseable by the real
//     Prometheus and by this package's own ParseExposition (which the CI
//     smoke test and swload's scraper use).
//
// Metric names are validated at registration: snake_case, counters end in
// _total, histograms carry a unit suffix. A name that breaks the
// convention panics at wiring time — misnamed metrics are bugs, and wiring
// runs at boot, not on the hot path.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric label pair. Labels are fixed at registration — there
// is deliberately no dynamic WithLabelValues on the hot path.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// MetricType enumerates the exposition TYPE of a family.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// FamilyInfo describes one registered metric family; the metric-name lint
// test iterates these.
type FamilyInfo struct {
	Name string
	Help string
	Type MetricType
}

// child is one label-distinct member of a family.
type child struct {
	labels []Label
	ctr    *Counter       // TypeCounter
	gauge  *Gauge         // TypeGauge
	fn     func() float64 // TypeCounter/TypeGauge polled at scrape
	hist   *Histogram     // TypeHistogram
}

type family struct {
	name     string
	help     string
	typ      MetricType
	children []*child
	byKey    map[string]*child
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration (Counter, Gauge, Histogram, ...) is get-or-create:
// the same name and label set returns the same instrument, so independent
// components can share an instrument without coordinating. Registration
// panics on a name that breaks Prometheus conventions or conflicts with an
// existing family's type — both are wiring bugs, caught at boot.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName enforces snake_case: ^[a-z][a-z0-9_]*$ with no double or
// trailing underscores.
func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	prevUnderscore := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			prevUnderscore = false
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		default:
			return false
		}
	}
	return !prevUnderscore
}

// histogramUnits are the unit suffixes a histogram name must carry — the
// quantity being distributed must be readable off the name.
var histogramUnits = []string{"_seconds", "_bytes", "_edges", "_records"}

// checkName validates naming conventions for a family. Exported logic is
// shared with the lint test via CheckMetricName.
func checkName(name string, typ MetricType) error {
	if !validName(name) {
		return fmt.Errorf("telemetry: metric name %q is not snake_case", name)
	}
	switch typ {
	case TypeCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("telemetry: counter %q must end in _total", name)
		}
	case TypeGauge:
		if strings.HasSuffix(name, "_total") {
			return fmt.Errorf("telemetry: gauge %q must not end in _total", name)
		}
	case TypeHistogram:
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("telemetry: histogram %q must end in a unit suffix (%s)",
				name, strings.Join(histogramUnits, ", "))
		}
	}
	return nil
}

// CheckMetricName reports whether a (name, type) pair satisfies the
// registry's naming conventions; the lint test runs it over every family
// of a fully-wired registry.
func CheckMetricName(name string, typ MetricType) error { return checkName(name, typ) }

// labelKey serializes a label set into a map key. Labels are sorted so the
// same set in any order resolves to the same child.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// register resolves (or creates) the family and child for a registration.
func (r *Registry) register(name, help string, typ MetricType, labels []Label) *child {
	if err := checkName(name, typ); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Errorf("telemetry: label name %q is not snake_case", l.Name))
		}
	}
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*child)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Errorf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	key := labelKey(labels)
	c, ok := f.byKey[key]
	if !ok {
		c = &child{labels: labels}
		f.byKey[key] = c
		f.children = append(f.children, c)
	}
	return c
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.register(name, help, TypeCounter, labels)
	if c.ctr == nil && c.fn == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// CounterFunc registers a counter whose value is polled at scrape time —
// for monotone quantities another subsystem already tracks (WAL bytes,
// checkpoint passes).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.register(name, help, TypeCounter, labels)
	c.fn = fn
	c.ctr = nil
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.register(name, help, TypeGauge, labels)
	if c.gauge == nil && c.fn == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a gauge polled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.register(name, help, TypeGauge, labels)
	c.fn = fn
	c.gauge = nil
}

// Histogram registers (or fetches) a duration histogram: observations are
// recorded in nanoseconds and exposed in seconds. The name must end in
// _seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if !strings.HasSuffix(name, "_seconds") {
		panic(fmt.Errorf("telemetry: duration histogram %q must end in _seconds (use ValueHistogram for other units)", name))
	}
	c := r.register(name, help, TypeHistogram, labels)
	if c.hist == nil {
		c.hist = &Histogram{seconds: true}
	}
	return c.hist
}

// ValueHistogram registers (or fetches) a histogram over raw int64 values
// (batch sizes, byte counts); the name must carry the unit suffix.
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *Histogram {
	if strings.HasSuffix(name, "_seconds") {
		panic(fmt.Errorf("telemetry: %q is a duration histogram; use Histogram", name))
	}
	c := r.register(name, help, TypeHistogram, labels)
	if c.hist == nil {
		c.hist = &Histogram{}
	}
	return c.hist
}

// Families lists the registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{Name: f.name, Help: f.help, Type: f.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// writeLabels renders {a="x",b="y"} (empty string for no labels); extra is
// an optional extra pair appended last (the histogram le label).
func writeLabels(b *strings.Builder, labels []Label, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.typ))
		b.WriteByte('\n')
		for _, c := range f.children {
			switch {
			case f.typ == TypeHistogram:
				c.hist.write(&b, f.name, c.labels)
			case c.fn != nil:
				b.WriteString(f.name)
				writeLabels(&b, c.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(c.fn()))
				b.WriteByte('\n')
			case f.typ == TypeCounter:
				b.WriteString(f.name)
				writeLabels(&b, c.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(c.ctr.Value(), 10))
				b.WriteByte('\n')
			default:
				b.WriteString(f.name)
				writeLabels(&b, c.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(c.gauge.Value(), 10))
				b.WriteByte('\n')
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
