package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health tracks liveness and readiness for the HTTP probes.
//
// Liveness is unconditional: if the process can serve /healthz, it is
// alive. Readiness is the conjunction of two kinds of condition:
//
//   - gates: boolean latches flipped by the owning subsystem (e.g.
//     "recovery complete"). A gate set false makes the process not-ready
//     until its owner sets it true again.
//   - checks: callbacks evaluated per probe (e.g. "WAL writable",
//     "checkpoint age under bound", "queue under budget"). A check returns
//     a non-empty string describing why the process is not ready, or ""
//     when healthy.
//
// The split matters operationally: gates express lifecycle state the
// subsystem knows synchronously; checks express conditions that can only
// be judged by looking (a sticky WAL error, a stale checkpoint timestamp).
type Health struct {
	mu     sync.Mutex
	gates  map[string]bool
	checks map[string]func() string
}

// NewHealth returns a Health with no gates and no checks — ready by
// default.
func NewHealth() *Health {
	return &Health{
		gates:  make(map[string]bool),
		checks: make(map[string]func() string),
	}
}

// SetGate sets a named boolean gate. Nil-safe.
func (h *Health) SetGate(name string, ready bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.gates[name] = ready
	h.mu.Unlock()
}

// AddCheck registers a named readiness check. The callback must be safe
// for concurrent use and should be cheap — it runs on every /readyz probe.
// Nil-safe.
func (h *Health) AddCheck(name string, fn func() string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.checks[name] = fn
	h.mu.Unlock()
}

// probeResult is one line of the readiness report.
type probeResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Ready evaluates all gates and checks. It returns overall readiness and
// the per-condition breakdown, sorted by name for stable output.
func (h *Health) Ready() (bool, []probeResult) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	gates := make(map[string]bool, len(h.gates))
	for k, v := range h.gates {
		gates[k] = v
	}
	checks := make(map[string]func() string, len(h.checks))
	for k, v := range h.checks {
		checks[k] = v
	}
	h.mu.Unlock()

	results := make([]probeResult, 0, len(gates)+len(checks))
	ok := true
	for name, ready := range gates {
		r := probeResult{Name: name, OK: ready}
		if !ready {
			r.Detail = "gate closed"
			ok = false
		}
		results = append(results, r)
	}
	for name, fn := range checks {
		detail := fn()
		r := probeResult{Name: name, OK: detail == "", Detail: detail}
		if detail != "" {
			ok = false
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return ok, results
}

// LiveHandler serves GET /healthz: 200 "ok" whenever the process can
// answer at all.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyHandler serves GET /readyz: 200 with a JSON breakdown when every
// gate and check passes, 503 with the same breakdown otherwise.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ok, results := h.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			Ready  bool          `json:"ready"`
			Checks []probeResult `json:"checks"`
		}{Ready: ok, Checks: results})
	})
}
