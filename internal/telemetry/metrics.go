package telemetry

import (
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is usable;
// a nil *Counter is a no-op, so unwired instrumentation costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0; negative deltas are a bug and are dropped).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a log₂-bucketed histogram over non-negative int64 values.
// Bucket i holds values v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). An observation is three uncontended atomic adds and at
// most one CAS (new max) — no locks, no allocations. The zero value is a
// usable raw-unit histogram; registry-created duration histograms store
// nanoseconds and expose seconds.
//
// Quantiles are bucket-upper-bound estimates (same semantics as the
// pre-telemetry LatencyRecorder): p99 answers "99% of observations were at
// most this", rounded up to a power of two and clamped to the true max.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
	seconds bool // exposition divides by 1e9 (set by Registry.Histogram)
}

const histBuckets = 64

// Observe records a duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveVal(int64(d))
}

// ObserveVal records a raw value. Negative values clamp to zero.
func (h *Histogram) ObserveVal(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time read of a histogram, in the
// histogram's stored units (nanoseconds for duration histograms).
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Mean  int64
	P50   int64
	P99   int64
	Max   int64
}

// Snapshot computes count/mean/quantiles/max. Buckets are read without a
// global lock, so a snapshot taken during concurrent observation is
// approximate — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Mean = s.Sum / s.Count
	s.P50 = quantile(&counts, s.Count, s.Max, 0.50)
	s.P99 = quantile(&counts, s.Count, s.Max, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// ranked observation, clamped to the observed max.
func quantile(counts *[histBuckets]int64, total, max int64, q float64) int64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > max {
				upper = max
			}
			return upper
		}
	}
	return max
}

// bucketUpper is the largest value bucket i can hold: 2^i − 1 (bucket 0
// holds only zero).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<uint(i) - 1
}

// Exposition bucket schedule: emitting all 64 internal buckets per family
// would bloat the scrape, so cumulative counts are aggregated onto every
// second power of two. Duration histograms cover ~1µs..~69s (internal
// buckets 10..36), raw-unit histograms cover 3..~4.3e9 (buckets 2..32);
// everything above the last bound lands in +Inf. Bounds are exact bucket
// upper bounds (2^i − 1), so cumulative counts are exact, not interpolated.
const (
	expoStride = 2
	expoSecLo  = 10
	expoSecHi  = 36
	expoRawLo  = 2
	expoRawHi  = 32
)

// write renders the _bucket/_sum/_count exposition lines for one child.
func (h *Histogram) write(b *strings.Builder, name string, labels []Label) {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	sum := h.sum.Load()

	lo, hi := expoRawLo, expoRawHi
	if h.seconds {
		lo, hi = expoSecLo, expoSecHi
	}
	var cum int64
	next := 0
	for i := lo; i <= hi; i += expoStride {
		for ; next <= i; next++ {
			cum += counts[next]
		}
		upper := float64(bucketUpper(i))
		if h.seconds {
			upper /= 1e9
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, labels, "le", formatFloat(upper))
		b.WriteByte(' ')
		b.WriteString(formatFloat(float64(cum)))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, labels, "le", "+Inf")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(total)))
	b.WriteByte('\n')

	fsum := float64(sum)
	if h.seconds {
		fsum /= 1e9
	}
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(fsum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(total)))
	b.WriteByte('\n')
}
