package telemetry

import (
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is usable;
// a nil *Counter is a no-op, so unwired instrumentation costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0; negative deltas are a bug and are dropped).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a log₂-bucketed histogram over non-negative int64 values.
// Bucket i holds values v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). An observation is three uncontended atomic adds and at
// most one CAS (new max) — no locks, no allocations. The zero value is a
// usable raw-unit histogram; registry-created duration histograms store
// nanoseconds and expose seconds.
//
// Quantiles are bucket-upper-bound estimates (same semantics as the
// pre-telemetry LatencyRecorder): p99 answers "99% of observations were at
// most this", rounded up to a power of two and clamped to the true max.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
	seconds bool // exposition divides by 1e9 (set by Registry.Histogram)

	// Exemplar state, fed by ObserveTraced: the trace ID of the largest
	// traced observation plus a small ring of recent traced samples, so a
	// p99 regression on the scrape links to a concrete flight-recorder
	// trace. Value and ID are separate atomics — a CAS win on the value
	// followed by the ID store can interleave with a concurrent winner, so
	// pairing is best-effort by design (documented in DESIGN §7); the
	// alternative is a lock on the observe path.
	exMax    exPair
	exRecent [exRecentSlots]exPair
	exIdx    atomic.Uint64
}

const histBuckets = 64

// exRecentSlots sizes the recent-exemplar ring.
const exRecentSlots = 4

type exPair struct {
	v  atomic.Int64
	id atomic.Uint64
}

// Exemplar pairs an observed value (in the histogram's stored units) with
// the flight-recorder trace ID that produced it.
type Exemplar struct {
	Value   int64
	TraceID uint64
}

// Observe records a duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveVal(int64(d))
}

// ObserveVal records a raw value. Negative values clamp to zero.
func (h *Histogram) ObserveVal(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveTraced records a duration and tags it with a flight-recorder
// trace ID (0 = untraced, equivalent to Observe).
func (h *Histogram) ObserveTraced(d time.Duration, traceID uint64) {
	h.ObserveValTraced(int64(d), traceID)
}

// ObserveValTraced records a raw value and tags it with a trace ID. The
// tagged observation lands in the buckets like any other; additionally
// the trace ID is CAS-captured when the value is a new traced max, and
// always sampled into the recent-exemplar ring. Lock-free, 0 allocs.
func (h *Histogram) ObserveValTraced(v int64, traceID uint64) {
	if h == nil {
		return
	}
	h.ObserveVal(v)
	if traceID == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	for {
		cur := h.exMax.v.Load()
		if v < cur {
			break
		}
		if h.exMax.v.CompareAndSwap(cur, v) {
			h.exMax.id.Store(traceID)
			break
		}
	}
	i := h.exIdx.Add(1) % exRecentSlots
	h.exRecent[i].v.Store(v)
	h.exRecent[i].id.Store(traceID)
}

// MaxExemplar returns the largest traced observation and its trace ID
// (zero Exemplar when nothing traced has been observed).
func (h *Histogram) MaxExemplar() Exemplar {
	if h == nil {
		return Exemplar{}
	}
	return Exemplar{Value: h.exMax.v.Load(), TraceID: h.exMax.id.Load()}
}

// RecentExemplars appends the non-empty recent traced samples to dst,
// newest slot order unspecified.
func (h *Histogram) RecentExemplars(dst []Exemplar) []Exemplar {
	if h == nil {
		return dst
	}
	for i := range h.exRecent {
		id := h.exRecent[i].id.Load()
		if id == 0 {
			continue
		}
		dst = append(dst, Exemplar{Value: h.exRecent[i].v.Load(), TraceID: id})
	}
	return dst
}

// HistogramSnapshot is a point-in-time read of a histogram, in the
// histogram's stored units (nanoseconds for duration histograms).
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Mean  int64
	P50   int64
	P99   int64
	Max   int64
}

// Snapshot computes count/mean/quantiles/max. Buckets are read without a
// global lock, so a snapshot taken during concurrent observation is
// approximate — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Mean = s.Sum / s.Count
	s.P50 = quantile(&counts, s.Count, s.Max, 0.50)
	s.P99 = quantile(&counts, s.Count, s.Max, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// ranked observation, clamped to the observed max.
func quantile(counts *[histBuckets]int64, total, max int64, q float64) int64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > max {
				upper = max
			}
			return upper
		}
	}
	return max
}

// bucketUpper is the largest value bucket i can hold: 2^i − 1 (bucket 0
// holds only zero).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<uint(i) - 1
}

// Exposition bucket schedule: emitting all 64 internal buckets per family
// would bloat the scrape, so cumulative counts are aggregated onto every
// second power of two. Duration histograms cover ~1µs..~69s (internal
// buckets 10..36), raw-unit histograms cover 3..~4.3e9 (buckets 2..32);
// everything above the last bound lands in +Inf. Bounds are exact bucket
// upper bounds (2^i − 1), so cumulative counts are exact, not interpolated.
const (
	expoStride = 2
	expoSecLo  = 10
	expoSecHi  = 36
	expoRawLo  = 2
	expoRawHi  = 32
)

// write renders the _bucket/_sum/_count exposition lines for one child.
func (h *Histogram) write(b *strings.Builder, name string, labels []Label) {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	sum := h.sum.Load()

	lo, hi := expoRawLo, expoRawHi
	if h.seconds {
		lo, hi = expoSecLo, expoSecHi
	}
	var cum int64
	next := 0
	for i := lo; i <= hi; i += expoStride {
		for ; next <= i; next++ {
			cum += counts[next]
		}
		upper := float64(bucketUpper(i))
		if h.seconds {
			upper /= 1e9
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, labels, "le", formatFloat(upper))
		b.WriteByte(' ')
		b.WriteString(formatFloat(float64(cum)))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, labels, "le", "+Inf")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(total)))
	b.WriteByte('\n')

	fsum := float64(sum)
	if h.seconds {
		fsum /= 1e9
	}
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(fsum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(total)))
	b.WriteByte('\n')

	// Exemplar comment lines. `#` lines that are not HELP/TYPE are legal
	// 0.0.4 exposition (real Prometheus and older ParseExposition builds
	// skip them); the current parser reads them strictly.
	h.writeExemplar(b, name, labels, "max", h.MaxExemplar())
	for i := range h.exRecent {
		h.writeExemplar(b, name, labels, "recent",
			Exemplar{Value: h.exRecent[i].v.Load(), TraceID: h.exRecent[i].id.Load()})
	}
}

// writeExemplar renders `# EXEMPLAR name{labels} kind value trace_id`,
// with the value converted to exposed units. Empty exemplars are elided.
func (h *Histogram) writeExemplar(b *strings.Builder, name string, labels []Label, kind string, ex Exemplar) {
	if ex.TraceID == 0 {
		return
	}
	v := float64(ex.Value)
	if h.seconds {
		v /= 1e9
	}
	b.WriteString("# EXEMPLAR ")
	b.WriteString(name)
	writeLabels(b, labels, "", "")
	b.WriteByte(' ')
	b.WriteString(kind)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte(' ')
	b.WriteString(formatTraceID(ex.TraceID))
	b.WriteByte('\n')
}

// formatTraceID renders a trace ID the way the flight recorder does:
// 16 lowercase hex digits, zero-padded.
func formatTraceID(id uint64) string {
	s := strconv.FormatUint(id, 16)
	if len(s) < 16 {
		s = strings.Repeat("0", 16-len(s)) + s
	}
	return s
}
