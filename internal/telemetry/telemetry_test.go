package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sw_test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-1) // dropped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("sw_test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Get-or-create: same name returns the same instrument.
	if c2 := r.Counter("sw_test_events_total", "events"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	h.ObserveVal(5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations at 1ms, 10 at 100ms: p50 should land near 1ms
	// (within the 2x bucket rounding), p99 likewise, max exact.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d, want 1010", s.Count)
	}
	if s.Max != int64(100*time.Millisecond) {
		t.Fatalf("max = %d, want 100ms", s.Max)
	}
	if s.P50 < int64(time.Millisecond) || s.P50 > int64(2*time.Millisecond) {
		t.Fatalf("p50 = %v, want within [1ms, 2ms]", time.Duration(s.P50))
	}
	if s.P99 < int64(time.Millisecond) || s.P99 > int64(2*time.Millisecond) {
		t.Fatalf("p99 = %v, want within [1ms, 2ms]", time.Duration(s.P99))
	}
	// p99 rank 1000.9→ceil 1000 falls in the 1ms bucket; the tail is the
	// last 10. A p(99.5%) would cross into the 100ms bucket:
	if s.Mean <= int64(time.Millisecond) {
		t.Fatalf("mean = %v, want > 1ms", time.Duration(s.Mean))
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.ObserveVal(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestNameValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		typ  MetricType
	}{
		{"BadCase_total", TypeCounter},
		{"sw_events", TypeCounter},          // counter missing _total
		{"sw_depth_total", TypeGauge},       // gauge with _total
		{"sw_latency", TypeHistogram},       // histogram missing unit
		{"sw__double_total", TypeCounter},   // double underscore
		{"sw_trailing__total", TypeCounter}, // double underscore mid-name
	}
	for _, c := range cases {
		if err := CheckMetricName(c.name, c.typ); err == nil {
			t.Errorf("CheckMetricName(%q, %s) = nil, want error", c.name, c.typ)
		}
	}
	if err := CheckMetricName("sw_wal_appends_total", TypeCounter); err != nil {
		t.Errorf("valid counter name rejected: %v", err)
	}
	if err := CheckMetricName("sw_apply_seconds", TypeHistogram); err != nil {
		t.Errorf("valid histogram name rejected: %v", err)
	}

	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad counter name", func() { r.Counter("sw_events", "x") })
	r.Gauge("sw_test_depth", "x")
	mustPanic("type conflict", func() { r.Counter("sw_test_depth_total", "x"); r.Gauge("sw_test_depth_total", "x") })
	mustPanic("duration histogram wrong suffix", func() { r.Histogram("sw_batch_edges", "x") })
	mustPanic("bad label name", func() { r.Counter("sw_ok_total", "x", L("Bad-Label", "v")) })
}

// TestExpositionGolden locks the exact text format for one of each
// instrument kind, including histogram bucket/sum/count structure.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sw_golden_events_total", "Total golden events.", L("kind", "a"))
	c.Add(42)
	g := r.Gauge("sw_golden_depth", "Current golden depth.")
	g.Set(-3)
	r.GaugeFunc("sw_golden_age_seconds_gauge", "Polled gauge.", func() float64 { return 1.5 })
	h := r.ValueHistogram("sw_golden_batch_edges", "Batch sizes.")
	h.ObserveVal(0)
	h.ObserveVal(3)   // bucket le=3
	h.ObserveVal(4)   // bucket le=15
	h.ObserveVal(100) // bucket le=127 → exposition le=255

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP sw_golden_age_seconds_gauge Polled gauge.
# TYPE sw_golden_age_seconds_gauge gauge
sw_golden_age_seconds_gauge 1.5
# HELP sw_golden_batch_edges Batch sizes.
# TYPE sw_golden_batch_edges histogram
sw_golden_batch_edges_bucket{le="3"} 2
sw_golden_batch_edges_bucket{le="15"} 3
sw_golden_batch_edges_bucket{le="63"} 3
sw_golden_batch_edges_bucket{le="255"} 4
sw_golden_batch_edges_bucket{le="1023"} 4
sw_golden_batch_edges_bucket{le="4095"} 4
sw_golden_batch_edges_bucket{le="16383"} 4
sw_golden_batch_edges_bucket{le="65535"} 4
sw_golden_batch_edges_bucket{le="262143"} 4
sw_golden_batch_edges_bucket{le="1.048575e+06"} 4
sw_golden_batch_edges_bucket{le="4.194303e+06"} 4
sw_golden_batch_edges_bucket{le="1.6777215e+07"} 4
sw_golden_batch_edges_bucket{le="6.7108863e+07"} 4
sw_golden_batch_edges_bucket{le="2.68435455e+08"} 4
sw_golden_batch_edges_bucket{le="1.073741823e+09"} 4
sw_golden_batch_edges_bucket{le="4.294967295e+09"} 4
sw_golden_batch_edges_bucket{le="+Inf"} 4
sw_golden_batch_edges_sum 107
sw_golden_batch_edges_count 4
# HELP sw_golden_depth Current golden depth.
# TYPE sw_golden_depth gauge
sw_golden_depth -3
# HELP sw_golden_events_total Total golden events.
# TYPE sw_golden_events_total counter
sw_golden_events_total{kind="a"} 42
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden scrape must round-trip through our own parser+validator.
	e, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if v, ok := e.Value("sw_golden_events_total", map[string]string{"kind": "a"}); !ok || v != 42 {
		t.Fatalf("Value lookup = %v,%v want 42,true", v, ok)
	}
}

func TestDurationHistogramExposesSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sw_test_apply_seconds", "apply latency")
	h.Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	e, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, out)
	}
	sum, ok := e.Value("sw_test_apply_seconds_sum", nil)
	if !ok || sum < 0.0019 || sum > 0.0021 {
		t.Fatalf("sum = %v, want ~0.002 s", sum)
	}
	// 2ms = 2e6 ns → bits.Len 21 → cumulative from le bucket 22
	// ((2^22-1)/1e9 ≈ 0.0042) upward must be 1; le≈0.001 must be 0.
	low, ok := e.Value("sw_test_apply_seconds_bucket", map[string]string{"le": "0.001048575"})
	if !ok || low != 0 {
		t.Fatalf("low bucket = %v,%v want 0,true", low, ok)
	}
	hi, ok := e.Value("sw_test_apply_seconds_bucket", map[string]string{"le": "0.004194303"})
	if !ok || hi != 1 {
		t.Fatalf("covering bucket = %v,%v want 1,true", hi, ok)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"sw_x{le=\"1\" 3\n",     // unterminated label set
		"sw_x 1e\n",             // bad value
		"# TYPE sw_x summary\n", // unsupported type
		"# TYPE Bad name\n",     // malformed TYPE
		"sw_x{l=\"a\\q\"} 1\n",  // bad escape
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ParseExposition(%q) = nil error, want failure", in)
		}
	}
}

func TestValidateCatchesBrokenHistogram(t *testing.T) {
	in := `# TYPE sw_x_seconds histogram
sw_x_seconds_bucket{le="1"} 5
sw_x_seconds_bucket{le="2"} 3
sw_x_seconds_bucket{le="+Inf"} 5
sw_x_seconds_count 5
`
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err == nil {
		t.Fatal("Validate accepted non-cumulative buckets")
	}
	in2 := `# TYPE sw_y_seconds histogram
sw_y_seconds_bucket{le="1"} 5
sw_y_seconds_count 5
`
	e2, err := ParseExposition(strings.NewReader(in2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Validate(); err == nil {
		t.Fatal("Validate accepted histogram without +Inf bucket")
	}
	in3 := "sw_orphan_total 3\n"
	e3, err := ParseExposition(strings.NewReader(in3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Validate(); err == nil {
		t.Fatal("Validate accepted sample without TYPE")
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sw_test_hits_total", "hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	e, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("sw_test_hits_total", nil); !ok || v != 1 {
		t.Fatalf("hits = %v,%v", v, ok)
	}
}

func TestHealthGatesAndChecks(t *testing.T) {
	h := NewHealth()
	ok, _ := h.Ready()
	if !ok {
		t.Fatal("empty health must be ready")
	}
	h.SetGate("recovery", false)
	if ok, _ := h.Ready(); ok {
		t.Fatal("closed gate must make not-ready")
	}
	h.SetGate("recovery", true)
	detail := ""
	h.AddCheck("wal_writable", func() string { return detail })
	if ok, _ := h.Ready(); !ok {
		t.Fatal("passing check must be ready")
	}
	detail = "append error: disk gone"
	ok, results := h.Ready()
	if ok {
		t.Fatal("failing check must make not-ready")
	}
	found := false
	for _, r := range results {
		if r.Name == "wal_writable" && !r.OK && r.Detail == detail {
			found = true
		}
	}
	if !found {
		t.Fatalf("breakdown missing failing check: %+v", results)
	}

	// Handlers: /healthz always 200; /readyz tracks readiness.
	live := httptest.NewRecorder()
	h.LiveHandler().ServeHTTP(live, httptest.NewRequest("GET", "/healthz", nil))
	if live.Code != 200 {
		t.Fatalf("healthz = %d", live.Code)
	}
	ready := httptest.NewRecorder()
	h.ReadyHandler().ServeHTTP(ready, httptest.NewRequest("GET", "/readyz", nil))
	if ready.Code != 503 {
		t.Fatalf("readyz = %d, want 503", ready.Code)
	}
	detail = ""
	ready2 := httptest.NewRecorder()
	h.ReadyHandler().ServeHTTP(ready2, httptest.NewRequest("GET", "/readyz", nil))
	if ready2.Code != 200 {
		t.Fatalf("readyz = %d, want 200", ready2.Code)
	}
	// Nil Health is ready and inert.
	var nh *Health
	nh.SetGate("x", false)
	nh.AddCheck("y", func() string { return "boom" })
	if ok, _ := nh.Ready(); !ok {
		t.Fatal("nil Health must be ready")
	}
}

// TestHotPathAllocs is the 0-allocs acceptance gate for the instrument
// hot paths. Skipped under -race (the race runtime allocates).
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts unreliable under -race")
	}
	r := NewRegistry()
	c := r.Counter("sw_alloc_events_total", "x")
	g := r.Gauge("sw_alloc_depth", "x")
	h := r.Histogram("sw_alloc_apply_seconds", "x")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9) }); n != 0 {
		t.Errorf("Gauge.Set allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Errorf("Histogram.Observe allocs = %v, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(1) }); n != 0 {
		t.Errorf("nil Histogram.Observe allocs = %v, want 0", n)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 10000; j++ {
				h.ObserveVal(int64(j))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	s := h.Snapshot()
	if s.Count != 40000 {
		t.Fatalf("count = %d, want 40000", s.Count)
	}
	if s.Max != 9999 {
		t.Fatalf("max = %d, want 9999", s.Max)
	}
}
