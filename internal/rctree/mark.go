package rctree

// Marking is the result of the bottom-up marking phase of the compressed
// path tree algorithm (Section 3): every RC-tree cluster containing a marked
// vertex is stamped, and the root clusters of marked components are
// collected. A Marking is valid until the next NewMarking or BatchUpdate on
// the same tree.
type Marking struct {
	t     *Tree
	epoch uint64
	roots []int32
}

// NewMarking marks the given vertices and propagates the marks up the RC
// tree. Cost O(l·lg(1+n/l)) expected for l marked vertices (Lemma 3.3).
func (t *Tree) NewMarking(marked []int32) *Marking {
	t.markEpoch++
	m := &Marking{t: t, epoch: t.markEpoch}
	for _, u := range marked {
		if t.vertMark[u] == m.epoch {
			continue
		}
		t.vertMark[u] = m.epoch
		x := u
		for {
			if t.clustMark[x] == m.epoch {
				break
			}
			t.clustMark[x] = m.epoch
			p := t.verts[x].parentC
			if p == nilVert {
				m.roots = append(m.roots, x)
				break
			}
			x = p
		}
	}
	return m
}

// VertexMarked reports whether vertex u was in the marked set.
func (m *Marking) VertexMarked(u int32) bool {
	return m.t.vertMark[u] == m.epoch
}

// ClusterMarked reports whether the composite cluster C(x) contains a marked
// vertex.
func (m *Marking) ClusterMarked(x int32) bool {
	return m.t.clustMark[x] == m.epoch
}

// Roots returns the representatives of the root clusters of every component
// containing at least one marked vertex.
func (m *Marking) Roots() []int32 { return m.roots }
