package rctree

import (
	"fmt"
	"testing"

	"repro/internal/linkcut"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// --- Naive reference contraction -------------------------------------------
//
// An independently-coded round-by-round simulation of the contraction rules,
// using the same coin function. Used to cross-check the change-propagation
// engine's final records.

type naiveEdge struct {
	u, v int32
}

type naiveOut struct {
	death  []int32
	dec    []Decision
	target []int32
}

func naiveContract(t *Tree, n int, edges []naiveEdge) naiveOut {
	adj := make([]map[int]bool, n) // vertex -> set of edge indices
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	es := append([]naiveEdge(nil), edges...)
	for i, e := range es {
		adj[e.u][i] = true
		adj[e.v][i] = true
	}
	out := naiveOut{death: make([]int32, n), dec: make([]Decision, n), target: make([]int32, n)}
	for i := range out.target {
		out.target[i] = -1
	}
	alive := make([]bool, n)
	remaining := n
	for i := range alive {
		alive[i] = true
	}
	other := func(ei int, x int32) int32 {
		if es[ei].u == x {
			return es[ei].v
		}
		return es[ei].u
	}
	for r := int32(0); remaining > 0; r++ {
		if r > 10_000 {
			panic("naive contraction did not converge")
		}
		type act struct {
			dec    Decision
			target int32
			eids   []int
		}
		acts := map[int32]act{}
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				continue
			}
			switch len(adj[v]) {
			case 0:
				acts[v] = act{dec: Finalize, target: -1}
			case 1:
				var ei int
				for k := range adj[v] {
					ei = k
				}
				u := other(ei, v)
				if len(adj[u]) == 1 && v > u {
					continue // u rakes into v
				}
				acts[v] = act{dec: Rake, target: u, eids: []int{ei}}
			case 2:
				var eids []int
				for k := range adj[v] {
					eids = append(eids, k)
				}
				a, b := other(eids[0], v), other(eids[1], v)
				if len(adj[a]) >= 2 && len(adj[b]) >= 2 &&
					t.coin(v, r) && !t.coin(a, r) && !t.coin(b, r) {
					acts[v] = act{dec: Compress, target: -1, eids: eids}
				}
			}
		}
		for v, a := range acts {
			out.death[v] = r
			out.dec[v] = a.dec
			out.target[v] = a.target
			alive[v] = false
			remaining--
			switch a.dec {
			case Rake:
				ei := a.eids[0]
				delete(adj[other(ei, v)], ei)
				delete(adj[v], ei)
			case Compress:
				e0, e1 := a.eids[0], a.eids[1]
				x, y := other(e0, v), other(e1, v)
				delete(adj[x], e0)
				delete(adj[y], e1)
				delete(adj[v], e0)
				delete(adj[v], e1)
				ni := len(es)
				es = append(es, naiveEdge{u: x, v: y})
				adj[x][ni] = true
				adj[y][ni] = true
			}
		}
	}
	return out
}

// --- Structural equality between two trees ---------------------------------

func keySetOf(t *Tree, h vround) map[wgraph.Key]bool {
	m := map[wgraph.Key]bool{}
	for i := int8(0); i < h.deg; i++ {
		m[t.edges[h.e[i]].key] = true
	}
	return m
}

func sameTrees(t1, t2 *Tree) error {
	if len(t1.verts) != len(t2.verts) {
		return fmt.Errorf("vertex counts differ: %d vs %d", len(t1.verts), len(t2.verts))
	}
	if t1.roots != t2.roots {
		return fmt.Errorf("root counts differ: %d vs %d", t1.roots, t2.roots)
	}
	for v := range t1.verts {
		a, b := &t1.verts[v], &t2.verts[v]
		if a.death != b.death || a.decision != b.decision || a.target != b.target || a.parentC != b.parentC {
			return fmt.Errorf("vertex %d record: (%d,%v,%d,%d) vs (%d,%v,%d,%d)",
				v, a.death, a.decision, a.target, a.parentC, b.death, b.decision, b.target, b.parentC)
		}
		ba := map[int32]bool{a.boundary[0]: true, a.boundary[1]: true}
		bb := map[int32]bool{b.boundary[0]: true, b.boundary[1]: true}
		if len(ba) != len(bb) {
			return fmt.Errorf("vertex %d boundary: %v vs %v", v, a.boundary, b.boundary)
		}
		for k := range ba {
			if !bb[k] {
				return fmt.Errorf("vertex %d boundary: %v vs %v", v, a.boundary, b.boundary)
			}
		}
		if len(a.rakedIn) != len(b.rakedIn) {
			return fmt.Errorf("vertex %d rakedIn: %v vs %v", v, a.rakedIn, b.rakedIn)
		}
		for i := range a.rakedIn {
			if a.rakedIn[i] != b.rakedIn[i] {
				return fmt.Errorf("vertex %d rakedIn: %v vs %v", v, a.rakedIn, b.rakedIn)
			}
		}
		if len(a.hist) != len(b.hist) {
			return fmt.Errorf("vertex %d hist len: %d vs %d", v, len(a.hist), len(b.hist))
		}
		for r := range a.hist {
			ka, kb := keySetOf(t1, a.hist[r]), keySetOf(t2, b.hist[r])
			if len(ka) != len(kb) {
				return fmt.Errorf("vertex %d round %d adjacency differs", v, r)
			}
			for k := range ka {
				if !kb[k] {
					return fmt.Errorf("vertex %d round %d adjacency key %v missing", v, r, k)
				}
			}
		}
		if a.decision == Compress {
			if t1.edges[a.compEdge].key != t2.edges[b.compEdge].key {
				return fmt.Errorf("vertex %d compress key %v vs %v", v, t1.edges[a.compEdge].key, t2.edges[b.compEdge].key)
			}
		}
	}
	return nil
}

// --- Helpers ----------------------------------------------------------------

func mustValidate(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func key(id int) wgraph.Key { return wgraph.Key{W: int64(id * 10), ID: wgraph.EdgeID(id)} }

// --- Tests -------------------------------------------------------------------

func TestEmptyTree(t *testing.T) {
	tr := New(5, 1)
	mustValidate(t, tr)
	if tr.NumComponents() != 5 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
	if tr.Connected(0, 1) {
		t.Fatal("isolated vertices connected")
	}
	if !tr.Connected(2, 2) {
		t.Fatal("self connectivity")
	}
	if _, ok := tr.PathMax(0, 1); ok {
		t.Fatal("pathmax on disconnected")
	}
}

func TestSingleEdge(t *testing.T) {
	tr := New(2, 1)
	hs := tr.BatchUpdate([]Edge{{U: 0, V: 1, Key: key(1)}}, nil)
	mustValidate(t, tr)
	if !tr.Connected(0, 1) {
		t.Fatal("not connected")
	}
	if tr.NumComponents() != 1 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
	k, ok := tr.PathMax(0, 1)
	if !ok || k != key(1) {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
	tr.BatchUpdate(nil, hs)
	mustValidate(t, tr)
	if tr.Connected(0, 1) {
		t.Fatal("still connected after cut")
	}
	if tr.NumComponents() != 2 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
}

func TestPathIncrementalBuild(t *testing.T) {
	const n = 64
	tr := New(n, 7)
	for i := 0; i < n-1; i++ {
		tr.BatchUpdate([]Edge{{U: int32(i), V: int32(i + 1), Key: key(i + 1)}}, nil)
		mustValidate(t, tr)
	}
	if !tr.Connected(0, n-1) {
		t.Fatal("path not connected")
	}
	k, ok := tr.PathMax(0, n-1)
	if !ok || k != key(n-1) {
		t.Fatalf("pathmax=%v", k)
	}
	k, ok = tr.PathMax(3, 10)
	if !ok || k != key(10) {
		t.Fatalf("pathmax(3,10)=%v", k)
	}
}

func TestPathOneBatchMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 64, 257} {
		tr := New(n, 3)
		var ins []Edge
		var nes []naiveEdge
		for i := 0; i < n-1; i++ {
			ins = append(ins, Edge{U: int32(i), V: int32(i + 1), Key: key(i + 1)})
			nes = append(nes, naiveEdge{u: int32(i), v: int32(i + 1)})
		}
		tr.BatchUpdate(ins, nil)
		mustValidate(t, tr)
		want := naiveContract(tr, n, nes)
		for v := 0; v < n; v++ {
			if tr.verts[v].death != want.death[v] || tr.verts[v].decision != want.dec[v] || tr.verts[v].target != want.target[v] {
				t.Fatalf("n=%d vertex %d: (%d,%v,%d) want (%d,%v,%d)", n, v,
					tr.verts[v].death, tr.verts[v].decision, tr.verts[v].target,
					want.death[v], want.dec[v], want.target[v])
			}
		}
	}
}

// buildRandomForest returns edges of a random degree-<=3 forest over n
// vertices with m edges (as far as possible).
func buildRandomForest(r *parallel.RNG, n, m int, firstID int) []Edge {
	uf := unionfind.New(n)
	deg := make([]int, n)
	var out []Edge
	id := firstID
	for attempts := 0; len(out) < m && attempts < 50*m+100; attempts++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
			continue
		}
		deg[u]++
		deg[v]++
		out = append(out, Edge{U: u, V: v, Key: key(id)})
		id++
	}
	return out
}

func TestRandomForestsMatchNaive(t *testing.T) {
	r := parallel.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(120)
		m := r.Intn(n)
		tr := New(n, uint64(trial)+1)
		edges := buildRandomForest(r, n, m, 1)
		tr.BatchUpdate(edges, nil)
		mustValidate(t, tr)
		nes := make([]naiveEdge, len(edges))
		for i, e := range edges {
			nes[i] = naiveEdge{u: e.U, v: e.V}
		}
		want := naiveContract(tr, n, nes)
		for v := 0; v < n; v++ {
			if tr.verts[v].death != want.death[v] || tr.verts[v].decision != want.dec[v] || tr.verts[v].target != want.target[v] {
				t.Fatalf("trial %d vertex %d: (%d,%v,%d) want (%d,%v,%d)", trial, v,
					tr.verts[v].death, tr.verts[v].decision, tr.verts[v].target,
					want.death[v], want.dec[v], want.target[v])
			}
		}
	}
}

// TestIncrementalEqualsFresh is the central differential test: applying
// random batches of links and cuts must leave the tree in exactly the state
// a from-scratch contraction of the final forest would produce (coins are
// deterministic, so the contraction is a pure function of the round-0
// forest).
func TestIncrementalEqualsFresh(t *testing.T) {
	const n = 150
	const seed = 42
	r := parallel.NewRNG(5)
	tr := New(n, seed)
	type liveEdge struct {
		h Handle
		e Edge
	}
	var live []liveEdge
	deg := make([]int, n)
	nextID := 1
	for batch := 0; batch < 40; batch++ {
		// Random cuts.
		var cuts []Handle
		ncut := 0
		if len(live) > 0 {
			ncut = r.Intn(min(len(live), 8) + 1)
		}
		for c := 0; c < ncut; c++ {
			i := r.Intn(len(live))
			le := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			cuts = append(cuts, le.h)
			deg[le.e.U]--
			deg[le.e.V]--
		}
		// Random inserts (valid in the post-cut forest).
		uf := unionfind.New(n)
		for _, le := range live {
			uf.Union(le.e.U, le.e.V)
		}
		var ins []Edge
		nins := r.Intn(10)
		for c := 0; c < nins; c++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
				continue
			}
			deg[u]++
			deg[v]++
			ins = append(ins, Edge{U: u, V: v, Key: key(nextID)})
			nextID++
		}
		hs := tr.BatchUpdate(ins, cuts)
		for i, h := range hs {
			live = append(live, liveEdge{h: h, e: ins[i]})
		}
		mustValidate(t, tr)
		// Fresh tree over the same forest.
		fresh := New(n, seed)
		all := make([]Edge, len(live))
		for i, le := range live {
			all[i] = le.e
		}
		fresh.BatchUpdate(all, nil)
		if err := sameTrees(tr, fresh); err != nil {
			t.Fatalf("batch %d: incremental != fresh: %v", batch, err)
		}
	}
}

// TestQueriesVsLinkCut drives random batched updates and cross-checks
// Connected and PathMax against the splay-based link-cut forest.
func TestQueriesVsLinkCut(t *testing.T) {
	const n = 120
	r := parallel.NewRNG(1234)
	tr := New(n, 77)
	lc := linkcut.New(n)
	type liveEdge struct {
		h Handle
		e Edge
	}
	var live []liveEdge
	deg := make([]int, n)
	nextID := 1
	for batch := 0; batch < 60; batch++ {
		var cuts []Handle
		ncut := 0
		if len(live) > 0 {
			ncut = r.Intn(min(len(live), 6) + 1)
		}
		for c := 0; c < ncut; c++ {
			i := r.Intn(len(live))
			le := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			cuts = append(cuts, le.h)
			deg[le.e.U]--
			deg[le.e.V]--
			lc.Cut(wgraph.EdgeID(le.e.Key.ID))
		}
		uf := unionfind.New(n)
		for _, le := range live {
			uf.Union(le.e.U, le.e.V)
		}
		var ins []Edge
		for c := 0; c < r.Intn(12); c++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
				continue
			}
			deg[u]++
			deg[v]++
			k := key(nextID)
			nextID++
			ins = append(ins, Edge{U: u, V: v, Key: k})
			lc.Link(wgraph.Edge{ID: k.ID, U: u, V: v, W: k.W})
		}
		hs := tr.BatchUpdate(ins, cuts)
		for i, h := range hs {
			live = append(live, liveEdge{h: h, e: ins[i]})
		}
		for q := 0; q < 60; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := tr.Connected(u, v), lc.Connected(u, v); got != want {
				t.Fatalf("batch %d: Connected(%d,%d)=%v want %v", batch, u, v, got, want)
			}
			gk, gok := tr.PathMax(u, v)
			we, wok := lc.PathMax(u, v)
			if gok != wok {
				t.Fatalf("batch %d: PathMax(%d,%d) ok=%v want %v", batch, u, v, gok, wok)
			}
			if gok && gk != wgraph.KeyOf(we) {
				t.Fatalf("batch %d: PathMax(%d,%d)=%v want %v", batch, u, v, gk, wgraph.KeyOf(we))
			}
		}
		ufc := unionfind.New(n)
		for _, le := range live {
			ufc.Union(le.e.U, le.e.V)
		}
		if want := ufc.NumComponents(); tr.NumComponents() != want {
			t.Fatalf("batch %d: components=%d want %d", batch, tr.NumComponents(), want)
		}
	}
}

func TestCutAndRelinkSameBatch(t *testing.T) {
	tr := New(4, 9)
	hs := tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 1, V: 2, Key: key(2)},
		{U: 2, V: 3, Key: key(3)},
	}, nil)
	// Replace the middle edge with a different one in a single batch.
	tr.BatchUpdate([]Edge{{U: 1, V: 2, Key: key(9)}}, []Handle{hs[1]})
	mustValidate(t, tr)
	k, ok := tr.PathMax(0, 3)
	if !ok || k != key(9) {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
}

func TestStarDegreeThree(t *testing.T) {
	// A perfect ternary star: center 0 with three leaves.
	tr := New(4, 11)
	tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 0, V: 2, Key: key(2)},
		{U: 0, V: 3, Key: key(3)},
	}, nil)
	mustValidate(t, tr)
	for _, q := range [][3]int32{{1, 2, 2}, {1, 3, 3}, {2, 3, 3}, {0, 1, 1}} {
		k, ok := tr.PathMax(q[0], q[1])
		if !ok || k != key(int(q[2])) {
			t.Fatalf("PathMax(%d,%d)=%v,%v want key(%d)", q[0], q[1], k, ok, q[2])
		}
	}
}

func TestDegreeOverflowPanics(t *testing.T) {
	tr := New(5, 1)
	tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 0, V: 2, Key: key(2)},
		{U: 0, V: 3, Key: key(3)},
	}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected degree panic")
		}
	}()
	tr.BatchUpdate([]Edge{{U: 0, V: 4, Key: key(4)}}, nil)
}

func TestSelfLoopPanics(t *testing.T) {
	tr := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected self-loop panic")
		}
	}()
	tr.BatchUpdate([]Edge{{U: 1, V: 1, Key: key(1)}}, nil)
}

func TestCutDeadEdgePanics(t *testing.T) {
	tr := New(2, 1)
	hs := tr.BatchUpdate([]Edge{{U: 0, V: 1, Key: key(1)}}, nil)
	tr.BatchUpdate(nil, hs)
	defer func() {
		if recover() == nil {
			t.Fatal("expected dead-edge panic")
		}
	}()
	tr.BatchUpdate(nil, hs)
}

func TestAddVertices(t *testing.T) {
	tr := New(2, 1)
	tr.BatchUpdate([]Edge{{U: 0, V: 1, Key: key(1)}}, nil)
	first := tr.AddVertices(3)
	if first != 2 {
		t.Fatalf("first=%d", first)
	}
	if tr.NumComponents() != 4 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
	mustValidate(t, tr)
	tr.BatchUpdate([]Edge{{U: 1, V: first, Key: key(2)}}, nil)
	mustValidate(t, tr)
	if !tr.Connected(0, first) {
		t.Fatal("new vertex not linked")
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	tr := New(3, 1)
	tr.BatchUpdate([]Edge{{U: 0, V: 1, Key: key(1)}}, nil)
	before := tr.NumComponents()
	tr.BatchUpdate(nil, nil)
	if tr.NumComponents() != before {
		t.Fatal("empty batch changed state")
	}
	mustValidate(t, tr)
}

func TestMarkingRootsAndClusters(t *testing.T) {
	tr := New(6, 5)
	tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 1, V: 2, Key: key(2)},
		{U: 3, V: 4, Key: key(3)},
	}, nil)
	m := tr.NewMarking([]int32{0, 2, 3})
	if !m.VertexMarked(0) || !m.VertexMarked(2) || m.VertexMarked(1) || m.VertexMarked(5) {
		t.Fatal("vertex marks wrong")
	}
	roots := m.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots=%v", roots)
	}
	rootSet := map[int32]bool{}
	for _, x := range roots {
		rootSet[tr.ComponentRoot(x)] = true
	}
	if !rootSet[tr.ComponentRoot(0)] || !rootSet[tr.ComponentRoot(3)] {
		t.Fatal("marked roots do not cover marked components")
	}
	// The chain from a marked vertex to its root must be fully marked.
	x := int32(0)
	for {
		if !m.ClusterMarked(x) {
			t.Fatalf("cluster %d on chain unmarked", x)
		}
		p := tr.ParentCluster(x)
		if p == -1 {
			break
		}
		x = p
	}
	// The singleton component 5 must be unmarked.
	if m.ClusterMarked(5) {
		t.Fatal("unmarked component's cluster marked")
	}
}

func TestPathMaxAdjacentVertices(t *testing.T) {
	tr := New(3, 1)
	tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(5)},
		{U: 1, V: 2, Key: key(3)},
	}, nil)
	k, ok := tr.PathMax(0, 1)
	if !ok || k != key(5) {
		t.Fatalf("got %v", k)
	}
	k, ok = tr.PathMax(1, 2)
	if !ok || k != key(3) {
		t.Fatalf("got %v", k)
	}
}

func TestLargePathSingleBatch(t *testing.T) {
	const n = 20_000
	tr := New(n, 13)
	ins := make([]Edge, n-1)
	for i := range ins {
		ins[i] = Edge{U: int32(i), V: int32(i + 1), Key: key(i + 1)}
	}
	tr.BatchUpdate(ins, nil)
	mustValidate(t, tr)
	if tr.NumComponents() != 1 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
	k, ok := tr.PathMax(0, n-1)
	if !ok || k != key(n-1) {
		t.Fatalf("pathmax=%v", k)
	}
	// Contraction height should be logarithmic-ish: check the longest hist.
	maxHist := 0
	for v := range tr.verts {
		if len(tr.verts[v].hist) > maxHist {
			maxHist = len(tr.verts[v].hist)
		}
	}
	if maxHist > 200 {
		t.Fatalf("contraction used %d rounds for n=%d", maxHist, n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
