package rctree

import (
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// TestCaterpillarContraction stresses the mixed rake/compress regime: a
// long spine where every spine vertex carries one leg (all degree <= 3).
func TestCaterpillarContraction(t *testing.T) {
	const spine = 500
	tr := New(2*spine, 31)
	var ins []Edge
	id := 1
	for i := 0; i < spine-1; i++ {
		ins = append(ins, Edge{U: int32(i), V: int32(i + 1), Key: key(id)})
		id++
	}
	for i := 0; i < spine; i++ {
		ins = append(ins, Edge{U: int32(i), V: int32(spine + i), Key: key(id)})
		id++
	}
	tr.BatchUpdate(ins, nil)
	mustValidate(t, tr)
	if tr.NumComponents() != 1 {
		t.Fatalf("components=%d", tr.NumComponents())
	}
	// Leg-to-leg queries cross the spine; the heaviest edge is one of the
	// two leg edges (they carry the largest ids hence largest keys).
	k, ok := tr.PathMax(spine, 2*spine-1)
	if !ok || k != key(id-1) {
		t.Fatalf("pathmax=%v want %v", k, key(id-1))
	}
}

// TestRepeatedMiddleCut repeatedly cuts and relinks the middle edge of a
// path — the worst case for "scar" growth in change propagation — and
// verifies the structure never drifts from a fresh build.
func TestRepeatedMiddleCut(t *testing.T) {
	const n = 256
	const seed = 77
	tr := New(n, seed)
	var ins []Edge
	for i := 0; i < n-1; i++ {
		ins = append(ins, Edge{U: int32(i), V: int32(i + 1), Key: key(i + 1)})
	}
	hs := tr.BatchUpdate(ins, nil)
	mid := n / 2
	handle := hs[mid]
	nextKey := n + 1
	for round := 0; round < 30; round++ {
		tr.BatchUpdate(nil, []Handle{handle})
		if tr.Connected(0, int32(n-1)) {
			t.Fatalf("round %d: still connected after middle cut", round)
		}
		nh := tr.BatchUpdate([]Edge{{U: int32(mid), V: int32(mid + 1), Key: key(nextKey)}}, nil)
		nextKey++
		handle = nh[0]
		if !tr.Connected(0, int32(n-1)) {
			t.Fatalf("round %d: not reconnected", round)
		}
		mustValidate(t, tr)
	}
	// Final differential check against a fresh contraction.
	fresh := New(n, seed)
	var all []Edge
	for i := 0; i < n-1; i++ {
		k := key(i + 1)
		if i == mid {
			k = key(nextKey - 1)
		}
		all = append(all, Edge{U: int32(i), V: int32(i + 1), Key: k})
	}
	fresh.BatchUpdate(all, nil)
	if err := sameTrees(tr, fresh); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomForestOps is a quick-check harness over random operation
// scripts: each script is decoded into valid links/cuts and the tree is
// validated after every batch.
func TestQuickRandomForestOps(t *testing.T) {
	f := func(script []uint16, seedLow uint8) bool {
		const n = 48
		tr := New(n, uint64(seedLow)+1)
		type liveEdge struct {
			h Handle
			e Edge
		}
		var live []liveEdge
		deg := make([]int, n)
		nextID := 1
		step := 0
		for step+1 < len(script) {
			op := script[step] % 3
			arg := script[step+1]
			step += 2
			switch op {
			case 0, 1: // link
				u := int32(arg) % n
				v := int32(script[step%len(script)]) % n
				uf := unionfind.New(n)
				for _, le := range live {
					uf.Union(le.e.U, le.e.V)
				}
				if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
					continue
				}
				e := Edge{U: u, V: v, Key: key(nextID)}
				nextID++
				hs := tr.BatchUpdate([]Edge{e}, nil)
				live = append(live, liveEdge{h: hs[0], e: e})
				deg[u]++
				deg[v]++
			case 2: // cut
				if len(live) == 0 {
					continue
				}
				i := int(arg) % len(live)
				le := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				deg[le.e.U]--
				deg[le.e.V]--
				tr.BatchUpdate(nil, []Handle{le.h})
			}
			if tr.Validate() != nil {
				return false
			}
		}
		// Cross-check final connectivity against union-find.
		uf := unionfind.New(n)
		for _, le := range live {
			uf.Union(le.e.U, le.e.V)
		}
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v += 7 {
				if tr.Connected(u, v) != uf.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeAccessors(t *testing.T) {
	tr := New(3, 1)
	hs := tr.BatchUpdate([]Edge{{U: 0, V: 2, Key: key(5)}}, nil)
	if got := tr.EdgeKey(hs[0]); got != key(5) {
		t.Fatalf("EdgeKey=%v", got)
	}
	u, v := tr.EdgeEndpoints(hs[0])
	if !(u == 0 && v == 2 || u == 2 && v == 0) {
		t.Fatalf("endpoints %d,%d", u, v)
	}
	if tr.NumBaseEdges() != 1 {
		t.Fatalf("base edges=%d", tr.NumBaseEdges())
	}
	tr.BatchUpdate(nil, hs)
	if tr.NumBaseEdges() != 0 {
		t.Fatalf("base edges=%d after cut", tr.NumBaseEdges())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EdgeKey on dead edge must panic")
		}
	}()
	tr.EdgeKey(hs[0])
}

func TestMarkingSuccessiveEpochs(t *testing.T) {
	tr := New(6, 3)
	tr.BatchUpdate([]Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 1, V: 2, Key: key(2)},
		{U: 3, V: 4, Key: key(3)},
	}, nil)
	m1 := tr.NewMarking([]int32{0})
	if !m1.VertexMarked(0) || m1.VertexMarked(3) {
		t.Fatal("epoch 1 marks wrong")
	}
	m2 := tr.NewMarking([]int32{3})
	if m2.VertexMarked(0) || !m2.VertexMarked(3) {
		t.Fatal("epoch 2 must invalidate epoch 1 marks")
	}
	if len(m2.Roots()) != 1 {
		t.Fatalf("roots=%v", m2.Roots())
	}
}

func TestPathMaxAllPairsSmall(t *testing.T) {
	// Exhaustive all-pairs check on a fixed 10-vertex tree against naive
	// DFS, across several seeds (different contractions, same answers).
	edges := []Edge{
		{U: 0, V: 1, Key: key(4)},
		{U: 1, V: 2, Key: key(9)},
		{U: 1, V: 3, Key: key(2)},
		{U: 3, V: 4, Key: key(7)},
		{U: 4, V: 5, Key: key(1)},
		{U: 4, V: 6, Key: key(8)},
		{U: 6, V: 7, Key: key(3)},
		{U: 0, V: 8, Key: key(6)},
		// vertex 9 isolated
	}
	adj := map[int32][]Edge{}
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, Key: e.Key})
	}
	var naive func(at, target int32, best wgraph.Key, seen map[int32]bool) (wgraph.Key, bool)
	naive = func(at, target int32, best wgraph.Key, seen map[int32]bool) (wgraph.Key, bool) {
		if at == target {
			return best, true
		}
		seen[at] = true
		for _, e := range adj[at] {
			if seen[e.V] {
				continue
			}
			b := best
			if b.Less(e.Key) {
				b = e.Key
			}
			if r, ok := naive(e.V, target, b, seen); ok {
				return r, true
			}
		}
		return wgraph.Key{}, false
	}
	for _, seed := range []uint64{1, 2, 3, 5, 8, 13} {
		tr := New(10, seed)
		tr.BatchUpdate(edges, nil)
		for u := int32(0); u < 10; u++ {
			for v := int32(0); v < 10; v++ {
				if u == v {
					continue
				}
				want, wantOK := naive(u, v, wgraph.MinKey, map[int32]bool{})
				got, gotOK := tr.PathMax(u, v)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("seed %d: PathMax(%d,%d)=(%v,%v) want (%v,%v)", seed, u, v, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

func TestGrowAfterHeavyChurn(t *testing.T) {
	tr := New(4, 9)
	r := parallel.NewRNG(4)
	var hs []Handle
	id := 1
	for round := 0; round < 20; round++ {
		// Random churn on a tiny vertex set.
		if len(hs) > 0 && r.Intn(2) == 0 {
			i := r.Intn(len(hs))
			tr.BatchUpdate(nil, []Handle{hs[i]})
			hs = append(hs[:i], hs[i+1:]...)
		}
		if tr.NumComponents() > 1 {
			// Find two components to join using roots.
			var a, b int32 = -1, -1
			for v := int32(0); v < int32(tr.NumVertices()); v++ {
				if a == -1 {
					a = v
				} else if tr.ComponentRoot(v) != tr.ComponentRoot(a) {
					b = v
					break
				}
			}
			if b != -1 && tr.Degree(a) < 3 && tr.Degree(b) < 3 {
				nh := tr.BatchUpdate([]Edge{{U: a, V: b, Key: key(1000 + id)}}, nil)
				id++
				hs = append(hs, nh...)
			}
		}
		if round == 10 {
			tr.AddVertices(3)
		}
		mustValidate(t, tr)
	}
}
