package rctree

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// BatchUpdate deletes the base edges named by cuts, inserts ins, and
// re-contracts the affected region by change propagation. It returns the
// handles of the inserted edges, in order.
//
// Preconditions (panic on violation): the resulting edge set must remain a
// forest of maximum degree 3, cut handles must be live base edges, and
// inserted edges must not be self-loops. Package ternary discharges the
// degree obligation for arbitrary forests; package core discharges
// acyclicity (a minimum spanning forest is a forest).
func (t *Tree) BatchUpdate(ins []Edge, cuts []Handle) []Handle {
	t.epoch++
	if len(t.waveA) > 0 {
		t.waveA = t.waveA[:0]
	}

	// Round-0 surgery: cuts first, then inserts (keeps transient degree low
	// for the common replace pattern).
	for _, h := range cuts {
		er := &t.edges[h]
		if !er.live || er.kind != kindBase {
			panic(fmt.Sprintf("rctree: cut of dead or non-base edge %d", h))
		}
		if !t.verts[er.u].hist[0].remove(int32(h)) || !t.verts[er.v].hist[0].remove(int32(h)) {
			panic(fmt.Sprintf("rctree: edge %d missing from round-0 adjacency", h))
		}
		er.live = false
		t.pendingFree = append(t.pendingFree, int32(h))
		t.numBase--
		t.queueA(0, er.u)
		t.queueA(0, er.v)
		t.markHistChanged(er.u, 0)
		t.markHistChanged(er.v, 0)
	}
	handles := make([]Handle, len(ins))
	for i, e := range ins {
		if e.U == e.V {
			panic(fmt.Sprintf("rctree: self-loop insert (%d,%d)", e.U, e.V))
		}
		s := t.allocEdge()
		t.edges[s] = edgeRec{u: e.U, v: e.V, key: e.Key, birth: 0, kind: kindBase, owner: nilVert, parent: nilVert, live: true}
		t.verts[e.U].hist[0].add(s, e.V)
		t.verts[e.V].hist[0].add(s, e.U)
		t.numBase++
		handles[i] = Handle(s)
		t.queueA(0, e.U)
		t.queueA(0, e.V)
		t.markHistChanged(e.U, 0)
		t.markHistChanged(e.V, 0)
	}
	if len(cuts)+len(ins) == 0 {
		return handles
	}
	// The decision of a vertex depends on its neighbours' degrees, so the
	// round-0 affected set must include one adjacency layer around the
	// modified endpoints. (Former neighbours across cut edges are the cut
	// edges' other endpoints, which are queued already.) The bound must be
	// snapshotted: iterating the growing queue would flood the entire
	// component with a transitive closure.
	if len(t.waveA) > 0 {
		seeds := len(t.waveA[0])
		for i := 0; i < seeds; i++ {
			v := t.waveA[0][i]
			h := &t.verts[v].hist[0]
			for j := int8(0); j < h.deg; j++ {
				t.queueA(0, h.nb[j])
			}
		}
	}
	t.propagate()
	t.freeE = append(t.freeE, t.pendingFree...)
	t.pendingFree = t.pendingFree[:0]
	return handles
}

// queueA adds v to the pending affected set for round r (deduplicated).
func (t *Tree) queueA(r int32, v int32) {
	if t.inA[v] == t.epoch && t.inARound[v] == r {
		return
	}
	t.inA[v] = t.epoch
	t.inARound[v] = r
	for int32(len(t.waveA)) <= r {
		t.waveA = append(t.waveA, nil)
	}
	t.waveA[r] = append(t.waveA[r], v)
}

func (t *Tree) markHistChanged(v int32, r int32) {
	t.histCh[v] = t.epoch
	t.histChRnd[v] = r
}

func (t *Tree) histChangedAt(v int32, r int32) bool {
	return t.histCh[v] == t.epoch && t.histChRnd[v] == r
}

func (t *Tree) aliveAt(v, r int32) bool {
	return int32(len(t.verts[v].hist)) > r
}

// oldDecisionAt reports what v did at round r according to its (not yet
// rewritten) record: its stored decision if it died at r, otherwise Live.
// Records already invalidated this wave (death == -1) read as Live.
func (t *Tree) oldDecisionAt(v, r int32) Decision {
	vr := &t.verts[v]
	if vr.death == r {
		return vr.decision
	}
	return Live
}

// decide computes v's contraction decision at round r from the current
// state. v must be alive at r.
func (t *Tree) decide(v, r int32) (Decision, int32) {
	h := &t.verts[v].hist[r]
	switch h.deg {
	case 0:
		return Finalize, nilVert
	case 1:
		u := h.nb[0]
		if t.verts[u].hist[r].deg == 1 && v > u {
			return Live, nilVert // the lower id rakes; we receive
		}
		return Rake, u
	case 2:
		u, w := h.nb[0], h.nb[1]
		if t.verts[u].hist[r].deg >= 2 && t.verts[w].hist[r].deg >= 2 &&
			t.coin(v, r) && !t.coin(u, r) && !t.coin(w, r) {
			return Compress, nilVert
		}
		return Live, nilVert
	default:
		return Live, nilVert
	}
}

// decisionAt returns the (possibly recomputed) decision of u at round r:
// the staged decision when u was processed this round, otherwise the stored
// record's verdict.
func (t *Tree) decisionAt(u, r int32) (Decision, int32) {
	if t.decSt[u] == t.epoch && t.decRnd[u] == r {
		return t.decVal[u], t.decTgt[u]
	}
	return t.oldDecisionAt(u, r), t.verts[u].target
}

// propagate runs the change-propagation wave from the queued round-0
// affected set until the contraction stabilizes.
func (t *Tree) propagate() {
	maxRounds := int32(t.maxRoundsC * (bits.Len(uint(len(t.verts))) + 2))
	var (
		procBuf []int32 // B set of the current round
		dirtyK  []int32 // compress edges whose key changed in place
		dSet    []int32 // vertices with effect changes this round
	)
	for r := int32(0); r < int32(len(t.waveA)); r++ {
		if r > maxRounds {
			panic("rctree: contraction did not converge (cycle inserted or degree invariant broken)")
		}
		A := t.waveA[r]
		if len(A) == 0 {
			continue
		}
		// Phase 1: stage decisions for affected alive vertices.
		DebugWaveWork.Add(int64(len(A)))
		if DebugRounds != nil {
			for int32(len(DebugRounds)) <= r {
				DebugRounds = append(DebugRounds, 0)
			}
			DebugRounds[r] += len(A)
		}
		bumpMaxRound(r)
		dSet = dSet[:0]
		for _, v := range A {
			if !t.aliveAt(v, r) {
				continue
			}
			dec, tgt := t.decide(v, r)
			t.decSt[v] = t.epoch
			t.decRnd[v] = r
			t.decVal[v] = dec
			t.decTgt[v] = tgt
			if dec != t.oldDecisionAt(v, r) || tgt != t.targetIfRake(v, r) ||
				(dec != Live && t.histChangedAt(v, r)) {
				dSet = append(dSet, v)
			}
		}
		// Phase 1c: materialize compress edges for changed compress
		// decisions before neighbours compute their next adjacency.
		for _, v := range dSet {
			if t.decVal[v] == Compress {
				t.refreshCompressEdge(v, r, &dirtyK)
			}
		}
		// Phase 2+3: B = A ∪ N(dSet); diff and commit hist[v][r+1].
		procBuf = procBuf[:0]
		procBuf = append(procBuf, A...)
		for _, v := range dSet {
			h := &t.verts[v].hist[r]
			for i := int8(0); i < h.deg; i++ {
				u := h.nb[i]
				if t.inA[u] == t.epoch && t.inARound[u] == r {
					continue
				}
				t.inA[u] = t.epoch
				t.inARound[u] = r
				procBuf = append(procBuf, u)
			}
		}
		for _, v := range procBuf {
			t.commitNext(v, r)
		}
		// Phase 4: apply record/effect changes for dSet.
		for _, v := range dSet {
			t.applyEffects(v, r)
		}
	}
	// Key-fix pass: recompute aggregated keys up the consumer chain for
	// compress edges whose key changed without structural change upstream.
	for _, s := range dirtyK {
		t.fixKeysUpward(s)
	}
}

// targetIfRake returns the stored rake target when the old record says v
// raked at round r, else nilVert — used to detect retarget-only changes.
func (t *Tree) targetIfRake(v, r int32) int32 {
	vr := &t.verts[v]
	if vr.death == r && vr.decision == Rake {
		return vr.target
	}
	return nilVert
}

// refreshCompressEdge (re)creates v's compress edge from its round-r
// adjacency. If the key changed while the edge stayed structurally in
// place, the slot is recorded for the post-wave key-fix pass.
func (t *Tree) refreshCompressEdge(v, r int32, dirtyK *[]int32) {
	vr := &t.verts[v]
	h := &vr.hist[r]
	e0, e1 := &t.edges[h.e[0]], &t.edges[h.e[1]]
	u, w := h.nb[0], h.nb[1]
	key := e0.key
	if key.Less(e1.key) {
		key = e1.key
	}
	if vr.compEdge == nilEdge {
		vr.compEdge = t.allocEdge()
		t.edges[vr.compEdge] = edgeRec{parent: nilVert}
	}
	s := vr.compEdge
	er := &t.edges[s]
	prevLive := er.live
	prevKey := er.key
	// The previous parent is preserved even across a kill/revive: when the
	// consumer is semantically unchanged (same slot, same far endpoint in
	// its death-round adjacency) it is not reprocessed and the old pointer
	// is exactly right; when the consumer changes, the wave necessarily
	// reprocesses the new consumer, which overwrites the pointer.
	*er = edgeRec{u: u, v: w, key: key, birth: r + 1, kind: kindCompress, owner: v, parent: er.parent, live: true}
	// Conservatively flag any key that differs from the slot's previous
	// value — including kill/revive cycles where the consumer may not be
	// reprocessed. fixKeysUpward is idempotent, so over-flagging is safe.
	if !prevLive || prevKey != key {
		*dirtyK = append(*dirtyK, s)
	}
}

// commitNext computes v's new round-(r+1) adjacency, diffs it against the
// stored one, and on change commits it and queues the affected vertices for
// the next round.
func (t *Tree) commitNext(v, r int32) {
	vr := &t.verts[v]
	aliveNow := t.aliveAt(v, r)
	var aliveNext bool
	var next vround
	next.e = [3]int32{nilEdge, nilEdge, nilEdge}
	next.nb = [3]int32{nilVert, nilVert, nilVert}
	if aliveNow {
		dec, _ := t.decisionAt(v, r)
		if dec == Live {
			aliveNext = true
			h := &vr.hist[r]
			for i := int8(0); i < h.deg; i++ {
				s := h.e[i]
				u := h.nb[i]
				ud, _ := t.decisionAt(u, r)
				switch ud {
				case Rake:
					// u raked into v; the edge is consumed.
				case Compress:
					ce := t.verts[u].compEdge
					next.add(ce, t.edges[ce].other(v))
				default:
					next.add(s, u)
				}
			}
		}
	}
	hadNext := int32(len(vr.hist)) > r+1
	if !hadNext && !aliveNext {
		return
	}
	if hadNext && aliveNext && vr.hist[r+1].equalSet(next) {
		return
	}
	// Queue v and the union of old and new neighbours at r+1.
	t.queueA(r+1, v)
	t.markHistChanged(v, r+1)
	if hadNext {
		old := vr.hist[r+1]
		for i := int8(0); i < old.deg; i++ {
			t.queueA(r+1, old.nb[i])
		}
	}
	if aliveNext {
		for i := int8(0); i < next.deg; i++ {
			t.queueA(r+1, next.nb[i])
		}
	}
	switch {
	case aliveNext && hadNext:
		vr.hist[r+1] = next
	case aliveNext:
		if int32(len(vr.hist)) != r+1 {
			panic("rctree: non-contiguous hist extension")
		}
		vr.hist = append(vr.hist, next)
	default:
		// Newly dead at r+1: queue the stale rounds' neighbours so they
		// observe the disappearance, then truncate.
		for rr := r + 2; rr < int32(len(vr.hist)); rr++ {
			old := vr.hist[rr]
			for i := int8(0); i < old.deg; i++ {
				t.queueA(rr, old.nb[i])
			}
			t.queueA(rr, v)
		}
		vr.hist = vr.hist[:r+1]
	}
}

// applyEffects rewrites v's death record for its (possibly changed) round-r
// decision: undoing the old record's side effects and applying the new ones.
func (t *Tree) applyEffects(v, r int32) {
	vr := &t.verts[v]
	dec := t.decVal[v]
	// Undo the old record.
	if vr.death != -1 {
		switch vr.decision {
		case Rake:
			t.removeRakedIn(vr.target, v)
		case Compress:
			if vr.compEdge != nilEdge && dec != Compress {
				t.edges[vr.compEdge].live = false
			}
		case Finalize:
			t.roots--
		}
	}
	switch dec {
	case Live:
		vr.death = -1
		vr.decision = Live
		vr.target = nilVert
		vr.boundary = [2]int32{nilVert, nilVert}
	case Rake:
		tgt := t.decTgt[v]
		h := &vr.hist[r]
		vr.death = r
		vr.decision = Rake
		vr.target = tgt
		vr.parentC = tgt
		vr.boundary = [2]int32{tgt, nilVert}
		t.insertRakedIn(tgt, v)
		t.consume(h.e[0], v)
	case Compress:
		h := &vr.hist[r]
		vr.death = r
		vr.decision = Compress
		vr.target = nilVert
		vr.boundary = [2]int32{h.nb[0], h.nb[1]}
		// parentC is assigned when the compress edge is consumed.
		t.consume(h.e[0], v)
		t.consume(h.e[1], v)
	case Finalize:
		vr.death = r
		vr.decision = Finalize
		vr.target = nilVert
		vr.parentC = nilVert
		vr.boundary = [2]int32{nilVert, nilVert}
		t.roots++
	}
}

// consume records that vertex v's death absorbed edge slot s: the edge
// cluster's parent becomes C(v), and for compress edges the owning vertex's
// cluster parent is C(v) as well.
func (t *Tree) consume(s, v int32) {
	er := &t.edges[s]
	er.parent = v
	if er.kind == kindCompress {
		t.verts[er.owner].parentC = v
	}
}

func (t *Tree) insertRakedIn(target, v int32) {
	rs := t.verts[target].rakedIn
	lo := 0
	for lo < len(rs) && rs[lo] < v {
		lo++
	}
	if lo < len(rs) && rs[lo] == v {
		return
	}
	rs = append(rs, 0)
	copy(rs[lo+1:], rs[lo:])
	rs[lo] = v
	t.verts[target].rakedIn = rs
}

func (t *Tree) removeRakedIn(target, v int32) {
	if target == nilVert {
		return
	}
	rs := t.verts[target].rakedIn
	for i, x := range rs {
		if x == v {
			t.verts[target].rakedIn = append(rs[:i], rs[i+1:]...)
			return
		}
	}
}

// fixKeysUpward recomputes aggregated path keys along the consumer chain of
// edge slot s. It terminates when a recomputed key is unchanged or the chain
// leaves compress clusters (rakes and finalizes do not aggregate path keys).
func (t *Tree) fixKeysUpward(s int32) {
	for {
		er := &t.edges[s]
		if !er.live {
			return
		}
		x := er.parent
		if x == nilVert {
			return
		}
		xr := &t.verts[x]
		if xr.decision != Compress || xr.compEdge == nilEdge {
			return
		}
		h := &xr.hist[xr.death]
		if h.deg != 2 {
			return
		}
		k := t.edges[h.e[0]].key
		if k.Less(t.edges[h.e[1]].key) {
			k = t.edges[h.e[1]].key
		}
		ce := &t.edges[xr.compEdge]
		if ce.key == k {
			return
		}
		ce.key = k
		s = xr.compEdge
	}
}

// DebugWaveWork accumulates the number of Phase-1 decision recomputations
// across all waves. Temporary instrumentation for performance debugging.
// Atomic: independent trees may run BatchUpdate concurrently (the stream
// layer fans batches out across monitors and windows in parallel).
var DebugWaveWork atomic.Int64

// DebugMaxRound tracks the deepest round processed by any wave (atomic
// running max, same concurrency caveat as DebugWaveWork).
var DebugMaxRound atomic.Int32

func bumpMaxRound(r int32) {
	for {
		cur := DebugMaxRound.Load()
		if r <= cur || DebugMaxRound.CompareAndSwap(cur, r) {
			return
		}
	}
}

// DebugRounds, when non-nil, accumulates per-round affected-set sizes.
// Unlike DebugWaveWork/DebugMaxRound it is NOT safe to enable while trees
// run BatchUpdate concurrently (the stream layer's parallel fan-out and
// multi-window pipelines do): only set it in single-threaded debugging.
var DebugRounds []int
