package rctree

import "repro/internal/wgraph"

// ComponentRoot returns the vertex whose nullary cluster is the root of v's
// component in the RC tree. Two vertices are connected iff their roots are
// equal. O(lg n) expected.
func (t *Tree) ComponentRoot(v int32) int32 {
	for {
		p := t.verts[v].parentC
		if p == nilVert {
			return v
		}
		v = p
	}
}

// Connected reports whether u and v lie in the same tree of the forest.
func (t *Tree) Connected(u, v int32) bool {
	if u == v {
		return true
	}
	return t.ComponentRoot(u) == t.ComponentRoot(v)
}

// walkState carries, for one cluster on a leaf-to-root walk, the maximum key
// on the path from the query vertex to each boundary vertex of the cluster.
type walkState struct {
	b [2]int32
	k [2]wgraph.Key
	n int
}

func (s *walkState) set(b int32, k wgraph.Key) {
	s.b[s.n] = b
	s.k[s.n] = k
	s.n++
}

func (s *walkState) at(b int32) wgraph.Key {
	for i := 0; i < s.n; i++ {
		if s.b[i] == b {
			return s.k[i]
		}
	}
	panic("rctree: walk state missing boundary vertex")
}

// initState builds the walk state for the first cluster C(u) of u's chain:
// the max key from u to each boundary is the key of the corresponding
// consumed edge cluster.
func (t *Tree) initState(u int32) walkState {
	vr := &t.verts[u]
	var s walkState
	h := vr.hist[vr.death]
	for i := int8(0); i < h.deg; i++ {
		er := &t.edges[h.e[i]]
		s.set(er.other(u), er.key)
	}
	return s
}

// stepState transitions the walk state from child cluster C(x) to its parent
// C(y). For each boundary c of C(y) — the far endpoints of y's death edges —
// the best path from the query vertex either stays inside C(x) (when that
// death edge is x's own compress cluster, whose boundary value we already
// hold) or routes through the shared representative y and across the death
// edge.
func (t *Tree) stepState(st walkState, x, y int32) walkState {
	toRep := st.at(y) // every child cluster's boundary contains the parent rep
	xComp := int32(nilEdge)
	if t.verts[x].decision == Compress {
		xComp = t.verts[x].compEdge
	}
	yr := &t.verts[y]
	var ns walkState
	h := yr.hist[yr.death]
	for i := int8(0); i < h.deg; i++ {
		s := h.e[i]
		er := &t.edges[s]
		c := er.other(y)
		if s == xComp {
			ns.set(c, st.at(c))
		} else {
			ns.set(c, wgraph.MaxKeyOf(toRep, er.key))
		}
	}
	return ns
}

// PathMax returns the maximum (W, ID) key over the edges of the tree path
// between u and v, and true; or false when u == v or they are disconnected.
// O(lg n) expected: the two leaf-to-root cluster walks meet at their lowest
// common cluster, whose representative lies on the u-v path, and the answer
// combines the two sides' maxima at that representative.
func (t *Tree) PathMax(u, v int32) (wgraph.Key, bool) {
	if u == v {
		return wgraph.Key{}, false
	}
	// Walk u's chain to the root, recording the state at every cluster.
	type link struct {
		vert  int32
		state walkState
	}
	chain := make([]link, 0, 32)
	idx := make(map[int32]int, 32)
	x := u
	st := t.initState(u)
	chain = append(chain, link{vert: x, state: st})
	idx[x] = 0
	for {
		y := t.verts[x].parentC
		if y == nilVert {
			break
		}
		st = t.stepState(st, x, y)
		x = y
		idx[x] = len(chain)
		chain = append(chain, link{vert: x, state: st})
	}
	// Walk v's chain until it reaches a cluster on u's chain (the meet).
	// Invariant: y is not on u's chain at the top of the loop.
	if k, hit := idx[v]; hit {
		// C(v) is on u's chain: v is the meet representative, so the whole
		// path max is u's side value at boundary v of the child below C(v).
		return chain[k-1].state.at(v), true
	}
	y := v
	vst := t.initState(v)
	for {
		py := t.verts[y].parentC
		if py == nilVert {
			return wgraph.Key{}, false // different roots: disconnected
		}
		if k, hit := idx[py]; hit {
			m := py
			pathV := vst.at(m)
			if k == 0 {
				// The meet representative is u itself.
				return pathV, true
			}
			pathU := chain[k-1].state.at(m)
			return wgraph.MaxKeyOf(pathU, pathV), true
		}
		vst = t.stepState(vst, y, py)
		y = py
	}
}
