package rctree

import (
	"fmt"

	"repro/internal/wgraph"
)

// Validate exhaustively checks the structural invariants of the contraction
// and the derived RC tree. It is O(n·lg n) and intended for tests and debug
// assertions, not production paths. It returns the first violation found.
func (t *Tree) Validate() error {
	n := int32(len(t.verts))
	liveEdges := map[int32]bool{}
	for s := range t.edges {
		if t.edges[s].live {
			liveEdges[int32(s)] = true
		}
	}
	consumed := map[int32]int32{} // edge slot -> consuming vertex
	rakedRef := map[int32][]int32{}
	roots := 0
	baseCount := 0
	for s, er := range t.edges {
		if er.live && er.kind == kindBase {
			baseCount++
			if !t.verts[er.u].hist[0].has(int32(s)) || !t.verts[er.v].hist[0].has(int32(s)) {
				return fmt.Errorf("base edge %d not in round-0 adjacency of both endpoints", s)
			}
		}
	}
	if baseCount != t.numBase {
		return fmt.Errorf("numBase=%d but %d live base edges", t.numBase, baseCount)
	}
	for v := int32(0); v < n; v++ {
		vr := &t.verts[v]
		if vr.death < 0 {
			return fmt.Errorf("vertex %d has pending death (wave did not converge)", v)
		}
		if int32(len(vr.hist)) != vr.death+1 {
			return fmt.Errorf("vertex %d: hist len %d != death %d + 1", v, len(vr.hist), vr.death)
		}
		// Each round: edges alive, symmetric, v an endpoint, decision Live
		// before death and the stored decision at death.
		for r := int32(0); r <= vr.death; r++ {
			h := vr.hist[r]
			if h.deg < 0 || h.deg > 3 {
				return fmt.Errorf("vertex %d round %d: degree %d", v, r, h.deg)
			}
			seen := map[int32]bool{}
			for i := int8(0); i < h.deg; i++ {
				s := h.e[i]
				if seen[s] {
					return fmt.Errorf("vertex %d round %d: duplicate edge slot %d", v, r, s)
				}
				seen[s] = true
				er := &t.edges[s]
				if !er.live {
					return fmt.Errorf("vertex %d round %d: dead edge slot %d", v, r, s)
				}
				if er.u != v && er.v != v {
					return fmt.Errorf("vertex %d round %d: edge %d does not touch it", v, r, s)
				}
				u := er.other(v)
				if h.nb[i] != u {
					return fmt.Errorf("vertex %d round %d: cached neighbour %d != endpoint %d of edge %d", v, r, h.nb[i], u, s)
				}
				if !t.aliveAt(u, r) {
					return fmt.Errorf("vertex %d round %d: neighbour %d not alive", v, r, u)
				}
				if !t.verts[u].hist[r].has(s) {
					return fmt.Errorf("vertex %d round %d: edge %d not symmetric at %d", v, r, s, u)
				}
				if er.birth > r {
					return fmt.Errorf("vertex %d round %d: edge %d born later (%d)", v, r, s, er.birth)
				}
			}
			dec, tgt := t.decide(v, r)
			if r < vr.death {
				if dec != Live {
					return fmt.Errorf("vertex %d round %d: decide says %v before death round %d", v, r, dec, vr.death)
				}
			} else {
				if dec == Live {
					return fmt.Errorf("vertex %d death round %d: decide says live", v, r)
				}
				if dec != vr.decision {
					return fmt.Errorf("vertex %d: stored decision %v != recomputed %v", v, vr.decision, dec)
				}
				if dec == Rake && tgt != vr.target {
					return fmt.Errorf("vertex %d: stored target %d != recomputed %d", v, vr.target, tgt)
				}
			}
		}
		// Death-record side effects.
		h := vr.hist[vr.death]
		switch vr.decision {
		case Rake:
			if h.deg != 1 {
				return fmt.Errorf("vertex %d: rake with degree %d", v, h.deg)
			}
			if vr.parentC != vr.target {
				return fmt.Errorf("vertex %d: rake parentC %d != target %d", v, vr.parentC, vr.target)
			}
			if vr.boundary != [2]int32{vr.target, nilVert} {
				return fmt.Errorf("vertex %d: rake boundary %v", v, vr.boundary)
			}
			consumedBy(consumed, h.e[0], v)
			rakedRef[vr.target] = append(rakedRef[vr.target], v)
		case Compress:
			if h.deg != 2 {
				return fmt.Errorf("vertex %d: compress with degree %d", v, h.deg)
			}
			ce := vr.compEdge
			if ce == nilEdge || !t.edges[ce].live || t.edges[ce].owner != v {
				return fmt.Errorf("vertex %d: compress edge %d invalid", v, ce)
			}
			a, b := t.edges[h.e[0]].other(v), t.edges[h.e[1]].other(v)
			if vr.boundary != [2]int32{a, b} && vr.boundary != [2]int32{b, a} {
				return fmt.Errorf("vertex %d: compress boundary %v vs (%d,%d)", v, vr.boundary, a, b)
			}
			er := &t.edges[ce]
			if !(er.u == a && er.v == b) && !(er.u == b && er.v == a) {
				return fmt.Errorf("vertex %d: compress edge endpoints (%d,%d) vs (%d,%d)", v, er.u, er.v, a, b)
			}
			wantKey := wgraph.MaxKeyOf(t.edges[h.e[0]].key, t.edges[h.e[1]].key)
			if er.key != wantKey {
				return fmt.Errorf("vertex %d: compress key %v want %v", v, er.key, wantKey)
			}
			if er.birth != vr.death+1 {
				return fmt.Errorf("vertex %d: compress edge birth %d want %d", v, er.birth, vr.death+1)
			}
			consumedBy(consumed, h.e[0], v)
			consumedBy(consumed, h.e[1], v)
		case Finalize:
			if h.deg != 0 {
				return fmt.Errorf("vertex %d: finalize with degree %d", v, h.deg)
			}
			if vr.parentC != nilVert {
				return fmt.Errorf("vertex %d: finalize with parentC %d", v, vr.parentC)
			}
			roots++
		default:
			return fmt.Errorf("vertex %d: decision %v", v, vr.decision)
		}
	}
	if roots != t.roots {
		return fmt.Errorf("root count %d != stored %d", roots, t.roots)
	}
	// Consumption: every live edge is consumed exactly once, with matching
	// parent pointers; compress owners' parentC is the consumer.
	for s := range liveEdges {
		er := &t.edges[s]
		c, ok := consumed[s]
		if !ok {
			return fmt.Errorf("edge %d never consumed", s)
		}
		if er.parent != c {
			return fmt.Errorf("edge %d: parent %d != consumer %d", s, er.parent, c)
		}
		if er.kind == kindCompress {
			if t.verts[er.owner].parentC != c {
				return fmt.Errorf("compress owner %d: parentC %d != consumer %d", er.owner, t.verts[er.owner].parentC, c)
			}
			if t.verts[er.owner].compEdge != int32(s) {
				return fmt.Errorf("compress edge %d not registered at owner %d", s, er.owner)
			}
		}
	}
	// rakedIn lists match the rake records and stay sorted.
	for v := int32(0); v < n; v++ {
		want := rakedRef[v]
		got := t.verts[v].rakedIn
		if len(want) != len(got) {
			return fmt.Errorf("vertex %d: rakedIn %v want %v", v, got, want)
		}
		for i := range got {
			if i > 0 && got[i-1] >= got[i] {
				return fmt.Errorf("vertex %d: rakedIn not sorted: %v", v, got)
			}
		}
		wm := map[int32]bool{}
		for _, x := range want {
			wm[x] = true
		}
		for _, x := range got {
			if !wm[x] {
				return fmt.Errorf("vertex %d: rakedIn has stray %d", v, x)
			}
		}
	}
	// Compress edges must be consumed strictly after birth; dead edges must
	// not appear in any hist (checked above via live flags).
	for s := range liveEdges {
		er := &t.edges[s]
		if er.kind != kindCompress {
			continue
		}
		cons := er.parent
		if t.verts[cons].death < er.birth {
			return fmt.Errorf("compress edge %d consumed at round %d before birth %d", s, t.verts[cons].death, er.birth)
		}
	}
	return nil
}

func consumedBy(consumed map[int32]int32, s, v int32) {
	consumed[s] = v
}
