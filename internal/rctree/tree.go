// Package rctree implements parallel batch-dynamic rake-compress trees — the
// dynamic tree-contraction data structure of Acar, Anderson, Blelloch,
// Dhulipala and Westrick (reference [2] of the paper) that underpins both the
// compressed path tree (Section 3) and the batch-incremental MSF
// (Section 4).
//
// # Contraction model
//
// The structure maintains a Miller–Reif tree contraction of a forest with
// maximum degree 3 (package ternary adapts arbitrary-degree forests). The
// contraction proceeds in rounds; in round r every live vertex decides:
//
//   - degree 0: finalize — the vertex becomes the root (nullary) cluster of
//     its component;
//   - degree 1: rake into its neighbour, consuming the connecting edge
//     (when both endpoints of an edge are leaves, the lower id rakes);
//   - degree 2 with both neighbours of degree >= 2: compress when the vertex
//     flips heads and both neighbours flip tails, consuming its two edges
//     and creating a replacement edge between the neighbours;
//   - otherwise: stay live.
//
// Coins are the deterministic hash coin(v, r) = Hash3(seed, v, r), so the
// whole contraction is a pure function of the round-0 forest. Batch updates
// are implemented by change propagation: only vertices whose local
// neighbourhood differs from the previous contraction are re-executed, which
// costs O(l·lg(1+n/l)) expected work for a batch of l edge changes
// (Lemma 3.3). Determinism gives the key testing property: an incrementally
// updated tree is bit-for-bit (up to edge-slot renaming) the contraction a
// fresh build would produce.
//
// # RC-tree identification
//
// Every vertex dies exactly once per contraction, so clusters are identified
// with vertices: C(v) is the cluster created by v's death (unary for rake,
// binary for compress, nullary for finalize). Compress replacement edges are
// likewise identified with their owner vertex. Children of C(v) are
// derivable: the vertex leaf of v, the clusters of the vertices that raked
// into v, and the clusters of the edges v consumed. Binary clusters carry
// the maximum (W, ID) key on their boundary path, which is what the
// compressed path tree and PathMax queries consume.
package rctree

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// Decision encodes what a vertex did in the round it died.
type Decision uint8

// Decision values. Live is used transiently for vertices that survive a
// round; a completed contraction stores only Rake, Compress or Finalize.
const (
	Live Decision = iota
	Rake
	Compress
	Finalize
)

func (d Decision) String() string {
	switch d {
	case Live:
		return "live"
	case Rake:
		return "rake"
	case Compress:
		return "compress"
	case Finalize:
		return "finalize"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Handle identifies a live base edge for later deletion.
type Handle int32

// Edge is a base edge presented to BatchUpdate. Key must be unique across
// all edges ever inserted (package wgraph's (W, ID) order guarantees this
// when IDs are unique).
type Edge struct {
	U, V int32
	Key  wgraph.Key
}

const (
	nilVert = int32(-1)
	nilEdge = int32(-1)
)

type edgeKind uint8

const (
	kindBase edgeKind = iota
	kindCompress
)

// vround is the adjacency of a vertex at one contraction round. Each
// incident edge stores both its slot and the far endpoint (nb): neighbour
// identity must never be recovered by dereferencing a slot, because slots
// belonging to superseded parts of the contraction may be rewritten while a
// change-propagation wave still consults old history entries.
type vround struct {
	deg int8
	e   [3]int32
	nb  [3]int32
}

func (h *vround) add(s, nbv int32) {
	if h.deg >= 3 {
		panic("rctree: vertex degree exceeds 3 (ternarize the input forest)")
	}
	h.e[h.deg] = s
	h.nb[h.deg] = nbv
	h.deg++
}

func (h *vround) remove(s int32) bool {
	for i := int8(0); i < h.deg; i++ {
		if h.e[i] == s {
			h.deg--
			h.e[i] = h.e[h.deg]
			h.nb[i] = h.nb[h.deg]
			h.e[h.deg] = nilEdge
			h.nb[h.deg] = nilVert
			return true
		}
	}
	return false
}

func (h *vround) has(s int32) bool {
	for i := int8(0); i < h.deg; i++ {
		if h.e[i] == s {
			return true
		}
	}
	return false
}

func (h *vround) hasPair(s, nbv int32) bool {
	for i := int8(0); i < h.deg; i++ {
		if h.e[i] == s && h.nb[i] == nbv {
			return true
		}
	}
	return false
}

// equalSet reports whether two rounds hold the same (slot, neighbour) pairs.
func (h vround) equalSet(o vround) bool {
	if h.deg != o.deg {
		return false
	}
	for i := int8(0); i < h.deg; i++ {
		if !o.hasPair(h.e[i], h.nb[i]) {
			return false
		}
	}
	return true
}

type vertexRec struct {
	hist     []vround // hist[r] = adjacency at round r; len = death+1
	death    int32    // round the vertex died; -1 transiently during a wave
	decision Decision
	target   int32    // rake target (nilVert otherwise)
	parentC  int32    // vertex owning the parent cluster; nilVert for roots
	boundary [2]int32 // cluster boundary vertices (nilVert padding)
	rakedIn  []int32  // vertices that raked into this one, sorted by id
	compEdge int32    // this vertex's compress-edge slot (nilEdge if none yet)
}

type edgeRec struct {
	u, v   int32
	key    wgraph.Key
	birth  int32
	kind   edgeKind
	owner  int32 // compress: owning vertex; base: nilVert
	parent int32 // vertex whose death consumed this edge
	live   bool
}

func (e *edgeRec) other(x int32) int32 {
	if e.u == x {
		return e.v
	}
	if e.v == x {
		return e.u
	}
	panic("rctree: vertex is not an endpoint of edge")
}

// Tree is a batch-dynamic rake-compress tree over a bounded-degree forest.
type Tree struct {
	seed  uint64
	verts []vertexRec
	edges []edgeRec
	freeE []int32
	// Slots cut in the current batch: recyclable only after the wave, so a
	// freed slot can never be reincarnated while old history entries that
	// the wave still diffs against mention it.
	pendingFree []int32
	roots       int // number of finalize vertices = number of components

	// Wave scratch (see update.go). Epoch-stamped to avoid clearing.
	epoch     uint64
	waveA     [][]int32 // per-round pending affected vertices
	inA       []uint64  // stamp: vertex queued in waveA for (epoch, round)
	inARound  []int32
	histCh    []uint64 // stamp: hist[v][round] committed as changed
	histChRnd []int32
	decSt     []uint64 // stamp: decision computed this (epoch, round)
	decRnd    []int32
	decVal    []Decision
	decTgt    []int32

	// Marking scratch (see cpt marking in mark.go).
	markEpoch  uint64
	clustMark  []uint64
	vertMark   []uint64
	numBase    int
	maxRoundsC int // safety cap multiplier
}

// New returns a rake-compress tree over n isolated vertices.
func New(n int, seed uint64) *Tree {
	t := &Tree{seed: seed, maxRoundsC: 64}
	t.grow(n)
	return t
}

func (t *Tree) grow(k int) int32 {
	first := int32(len(t.verts))
	for i := 0; i < k; i++ {
		t.verts = append(t.verts, vertexRec{
			hist:     []vround{{deg: 0, e: [3]int32{nilEdge, nilEdge, nilEdge}, nb: [3]int32{nilVert, nilVert, nilVert}}},
			death:    0,
			decision: Finalize,
			target:   nilVert,
			parentC:  nilVert,
			boundary: [2]int32{nilVert, nilVert},
			compEdge: nilEdge,
		})
	}
	t.roots += k
	t.inA = append(t.inA, make([]uint64, k)...)
	t.inARound = append(t.inARound, make([]int32, k)...)
	t.histCh = append(t.histCh, make([]uint64, k)...)
	t.histChRnd = append(t.histChRnd, make([]int32, k)...)
	t.decSt = append(t.decSt, make([]uint64, k)...)
	t.decRnd = append(t.decRnd, make([]int32, k)...)
	t.decVal = append(t.decVal, make([]Decision, k)...)
	t.decTgt = append(t.decTgt, make([]int32, k)...)
	t.clustMark = append(t.clustMark, make([]uint64, k)...)
	t.vertMark = append(t.vertMark, make([]uint64, k)...)
	return first
}

// AddVertices appends k isolated vertices and returns the id of the first.
func (t *Tree) AddVertices(k int) int32 { return t.grow(k) }

// NumVertices returns the number of vertices.
func (t *Tree) NumVertices() int { return len(t.verts) }

// NumComponents returns the number of trees in the forest (isolated vertices
// count as singleton components).
func (t *Tree) NumComponents() int { return t.roots }

// NumBaseEdges returns the number of live base edges.
func (t *Tree) NumBaseEdges() int { return t.numBase }

// coin returns the contraction coin for (v, round).
func (t *Tree) coin(v, round int32) bool {
	return parallel.Hash3(t.seed, uint64(v), uint64(round))&1 == 1
}

func (t *Tree) allocEdge() int32 {
	if n := len(t.freeE); n > 0 {
		s := t.freeE[n-1]
		t.freeE = t.freeE[:n-1]
		return s
	}
	t.edges = append(t.edges, edgeRec{})
	return int32(len(t.edges) - 1)
}

// EdgeKey returns the key of a live base edge.
func (t *Tree) EdgeKey(h Handle) wgraph.Key {
	e := &t.edges[h]
	if !e.live || e.kind != kindBase {
		panic("rctree: EdgeKey on dead or non-base edge")
	}
	return e.key
}

// EdgeEndpoints returns the endpoints of a live base edge.
func (t *Tree) EdgeEndpoints(h Handle) (int32, int32) {
	e := &t.edges[h]
	if !e.live || e.kind != kindBase {
		panic("rctree: EdgeEndpoints on dead or non-base edge")
	}
	return e.u, e.v
}

// Degree returns the round-0 degree of v.
func (t *Tree) Degree(v int32) int { return int(t.verts[v].hist[0].deg) }

// --- Cluster introspection (used by the compressed path tree and queries) ---

// DeathRound returns the round at which v died.
func (t *Tree) DeathRound(v int32) int32 { return t.verts[v].death }

// DecisionOf returns how v died.
func (t *Tree) DecisionOf(v int32) Decision { return t.verts[v].decision }

// TargetOf returns the rake target of v (nilVert = -1 if v did not rake).
func (t *Tree) TargetOf(v int32) int32 { return t.verts[v].target }

// ParentCluster returns the vertex whose cluster is the parent of C(v), or
// -1 when C(v) is a root cluster.
func (t *Tree) ParentCluster(v int32) int32 { return t.verts[v].parentC }

// RakedIn returns the vertices that raked into v, sorted by id. The returned
// slice must not be modified.
func (t *Tree) RakedIn(v int32) []int32 { return t.verts[v].rakedIn }

// Boundary returns the boundary vertices of C(v); unused positions are -1.
func (t *Tree) Boundary(v int32) [2]int32 { return t.verts[v].boundary }

// EdgeChild describes an edge cluster consumed by a vertex's death: either a
// base-edge leaf cluster or the binary cluster of a compressed vertex.
type EdgeChild struct {
	Slot       int32
	U, V       int32 // endpoints at consumption time
	Key        wgraph.Key
	IsCompress bool
	Owner      int32 // compressing vertex when IsCompress
}

// DeathEdges appends the edge clusters consumed by v's death to buf and
// returns it (0, 1 or 2 entries).
func (t *Tree) DeathEdges(v int32, buf []EdgeChild) []EdgeChild {
	vr := &t.verts[v]
	h := vr.hist[vr.death]
	for i := int8(0); i < h.deg; i++ {
		s := h.e[i]
		er := &t.edges[s]
		buf = append(buf, EdgeChild{
			Slot: s, U: er.u, V: er.v, Key: er.key,
			IsCompress: er.kind == kindCompress, Owner: er.owner,
		})
	}
	return buf
}

// CompressKey returns the boundary-path key of the binary cluster C(v).
// v must have died by compressing.
func (t *Tree) CompressKey(v int32) wgraph.Key {
	vr := &t.verts[v]
	if vr.decision != Compress {
		panic("rctree: CompressKey on non-compress cluster")
	}
	return t.edges[vr.compEdge].key
}
