//go:build race

package trace

// raceEnabled lets allocation-count tests skip under -race, where the
// instrumentation itself allocates.
const raceEnabled = true
