package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Response is the /debug/flight JSON envelope.
type Response struct {
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
	Count           int     `json:"count"`
	Traces          []View  `json:"traces"`
}

// maxLimit caps limit= so a request cannot ask for unbounded work.
const maxLimit = 1024

// Handler serves the flight recorder as JSON.
//
//	GET /debug/flight?window=default&min_ms=5&slow=1&kind=batch&limit=32
//
// window= restricts to one window, min_ms= drops faster traces, slow=1
// reads the slow-retention ring, kind= picks batch or query traces, and
// limit= bounds the response (newest first, default 64, max 1024).
func (rec *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		f := Filter{
			Window: q.Get("window"),
			Kind:   q.Get("kind"),
			Slow:   q.Get("slow") == "1" || q.Get("slow") == "true",
		}
		if s := q.Get("min_ms"); s != "" {
			ms, err := strconv.ParseFloat(s, 64)
			if err != nil || ms < 0 {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			f.MinNS = int64(ms * 1e6)
		}
		if s := q.Get("kind"); s != "" && s != "batch" && s != "query" {
			http.Error(w, "bad kind (want batch or query)", http.StatusBadRequest)
			return
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		if f.Limit > maxLimit {
			f.Limit = maxLimit
		}
		views := rec.Traces(f)
		resp := Response{
			SlowThresholdMS: msf(int64(rec.SlowThreshold())),
			Count:           len(views),
			Traces:          views,
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
