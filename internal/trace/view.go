package trace

import (
	"encoding/json"
	"sort"
	"time"
)

// View is the rendered, JSON-facing form of a trace. swload decodes the
// /debug/flight response into this same type.
type View struct {
	TraceID string     `json:"trace_id"`
	Window  string     `json:"window"`
	Kind    string     `json:"kind"`
	Seq     uint64     `json:"seq"`
	WALSeq  *uint64    `json:"wal_seq,omitempty"` // set iff the window is durable
	Start   time.Time  `json:"start"`
	TotalMS float64    `json:"total_ms"`
	Edges   int32      `json:"edges,omitempty"`
	Expired int32      `json:"expired,omitempty"`
	Slow    bool       `json:"slow,omitempty"`
	Dropped int32      `json:"spans_dropped,omitempty"`
	Spans   []SpanView `json:"spans"`
}

// SpanView is one rendered span. StartMS is the offset from the trace
// start. Monitor is set for monitor-scoped spans, Level for msfweight
// level spans.
type SpanView struct {
	Name    string  `json:"name"`
	Monitor string  `json:"monitor,omitempty"`
	Level   *int32  `json:"level,omitempty"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
}

func msf(ns int64) float64 { return float64(ns) / 1e6 }

func kindName(k uint8) string {
	if k == KindQuery {
		return "query"
	}
	return "batch"
}

func buildView(src *Ring, t *Trace) View {
	v := View{
		TraceID: FormatID(t.ID),
		Kind:    kindName(t.Kind),
		Seq:     t.Seq,
		Start:   time.Unix(0, t.StartNS).UTC(),
		TotalMS: msf(t.TotalNS),
		Edges:   t.Edges,
		Expired: t.Expired,
		Slow:    t.Slow,
		Dropped: t.Dropped,
		Spans:   make([]SpanView, 0, t.N),
	}
	var monitors []string
	if src != nil {
		v.Window = src.name
		monitors = src.monitors
	}
	if t.Durable {
		seq := t.Seq
		v.WALSeq = &seq
	}
	for i := int32(0); i < t.N; i++ {
		s := &t.Spans[i]
		sv := SpanView{Name: SpanName(s.Kind), StartMS: msf(s.StartNS), MS: msf(s.DurNS)}
		switch s.Kind {
		case SpanMonitorWait, SpanMonitorApply, SpanLockWait, SpanExec:
			if int(s.Arg) >= 0 && int(s.Arg) < len(monitors) {
				sv.Monitor = monitors[s.Arg]
			}
		case SpanLevel:
			lvl := s.Arg
			sv.Level = &lvl
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}

func (v View) appendJSON(dst []byte) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

func sortViews(views []View) {
	sort.Slice(views, func(i, j int) bool {
		if !views[i].Start.Equal(views[j].Start) {
			return views[i].Start.After(views[j].Start)
		}
		return views[i].Seq > views[j].Seq
	})
}

// Dominant names the span that explains most of a batch view's time,
// bucketed for attribution: "queue", "wal" (append+fsync), "apply"
// (slowest monitor, including its lock wait), or "stage" (staging net of
// the WAL append). swload's -mixed report aggregates these over the slow
// ring to answer "what are slow batches bound on".
func (v View) Dominant() string {
	var queue, wal, apply, stage, fsync, admit float64
	for _, s := range v.Spans {
		switch s.Name {
		case "admit":
			admit = s.MS
		case "queue":
			queue = s.MS
		case "wal_append":
			wal = s.MS
		case "wal_fsync":
			fsync = s.MS
		case "stage":
			stage = s.MS
		case "apply":
			if s.MS > apply {
				apply = s.MS
			}
		}
	}
	if fsync > wal {
		wal = fsync
	}
	stage -= wal
	if stage < 0 {
		stage = 0
	}
	best, bestMS := "stage", stage
	for _, c := range []struct {
		name string
		ms   float64
	}{{"queue", queue}, {"wal", wal}, {"apply", apply}, {"admit", admit}} {
		if c.ms > bestMS {
			best, bestMS = c.name, c.ms
		}
	}
	return best
}
