package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkTrace(seq uint64, totalNS int64, durable bool) *Trace {
	t := &Trace{Kind: KindBatch, Seq: seq, Durable: durable, StartNS: int64(seq) * 1e6, TotalNS: totalNS, Edges: 8}
	t.Add(SpanQueue, 0, 0, totalNS/10)
	t.Add(SpanStage, 0, totalNS/10, totalNS/5)
	t.Add(SpanMonitorApply, 1, totalNS/2, totalNS/2)
	return t
}

func TestRingCommitAndTraces(t *testing.T) {
	rec := New(Options{RingSlots: 4, SlowThreshold: -1})
	r := rec.Ring("w1", KindBatch, []string{"conn", "msfweight"})
	for seq := uint64(1); seq <= 6; seq++ {
		r.Commit(mkTrace(seq, int64(seq)*1e6, true))
	}
	views := rec.Traces(Filter{})
	if len(views) != 4 {
		t.Fatalf("ring of 4 after 6 commits: got %d traces", len(views))
	}
	// Newest first; the ring kept seqs 3..6.
	if views[0].Seq != 6 || views[3].Seq != 3 {
		t.Fatalf("want seqs 6..3 newest-first, got %d..%d", views[0].Seq, views[3].Seq)
	}
	v := views[0]
	if v.Window != "w1" || v.Kind != "batch" || v.WALSeq == nil || *v.WALSeq != 6 {
		t.Fatalf("bad view: %+v", v)
	}
	if len(v.Spans) != 3 || v.Spans[2].Name != "apply" || v.Spans[2].Monitor != "msfweight" {
		t.Fatalf("bad spans: %+v", v.Spans)
	}
	if got := rec.Traces(Filter{MinNS: int64(5.5e6)}); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("min_ns filter: got %+v", got)
	}
	if got := rec.Traces(Filter{Window: "nope"}); len(got) != 0 {
		t.Fatalf("window filter: got %d", len(got))
	}
	if got := rec.Traces(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: got %d", len(got))
	}
}

func TestTraceSpanOverflowCountsDropped(t *testing.T) {
	var tr Trace
	for i := 0; i < MaxSpans+5; i++ {
		tr.Add(SpanLevel, int32(i), 0, 1)
	}
	if tr.N != MaxSpans || tr.Dropped != 5 {
		t.Fatalf("N=%d dropped=%d", tr.N, tr.Dropped)
	}
}

func TestSlowRingAndJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	rec := New(Options{RingSlots: 4, SlowSlots: 8, SlowThreshold: 10 * time.Millisecond})
	rec.SetSlowSink(&buf)
	r := rec.Ring("w1", KindBatch, []string{"conn"})
	r.Commit(mkTrace(1, int64(time.Millisecond), true)) // fast
	r.Commit(mkTrace(2, int64(50*time.Millisecond), true))
	r.Commit(mkTrace(3, int64(20*time.Millisecond), true))

	slow := rec.Traces(Filter{Slow: true})
	if len(slow) != 2 {
		t.Fatalf("slow ring: got %d traces", len(slow))
	}
	for _, v := range slow {
		if !v.Slow || v.Window != "w1" {
			t.Fatalf("bad slow view: %+v", v)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL sink: got %d lines: %q", len(lines), buf.String())
	}
	var v View
	if err := json.Unmarshal([]byte(lines[0]), &v); err != nil {
		t.Fatalf("JSONL line does not parse: %v", err)
	}
	if v.Seq != 2 || v.Window != "w1" || len(v.Spans) == 0 {
		t.Fatalf("bad JSONL view: %+v", v)
	}
	// The live ring keeps the slow flag too.
	live := rec.Traces(Filter{MinNS: int64(15 * time.Millisecond)})
	for _, v := range live {
		if !v.Slow {
			t.Fatalf("live copy lost slow flag: %+v", v)
		}
	}
}

func TestLookupResolvesExemplarID(t *testing.T) {
	rec := New(Options{RingSlots: 4})
	r := rec.Ring("w1", KindBatch, nil)
	tr := mkTrace(42, int64(time.Millisecond), true)
	r.Commit(tr)
	if tr.ID == 0 {
		t.Fatal("commit did not stamp an ID")
	}
	v, ok := rec.Lookup(tr.ID)
	if !ok || v.Seq != 42 {
		t.Fatalf("lookup: ok=%v v=%+v", ok, v)
	}
	id, ok := ParseID(v.TraceID)
	if !ok || id != tr.ID {
		t.Fatalf("ParseID(%q) = %d, %v; want %d", v.TraceID, id, ok, tr.ID)
	}
	if _, ok := rec.Lookup(tr.ID + 999); ok {
		t.Fatal("lookup of unknown ID succeeded")
	}
}

func TestQueryRingSeqAndKindFilter(t *testing.T) {
	rec := New(Options{})
	qr := rec.Ring("w1", KindQuery, []string{"conn"})
	for i := 0; i < 3; i++ {
		tr := &Trace{Kind: KindQuery, Seq: qr.SeqNext(), StartNS: int64(i+1) * 1e9, TotalNS: 1e6}
		tr.Add(SpanLockWait, 0, 0, 1e5)
		tr.Add(SpanExec, 0, 1e5, 9e5)
		qr.Commit(tr)
	}
	if got := rec.Traces(Filter{Kind: "query"}); len(got) != 3 {
		t.Fatalf("query traces: got %d", len(got))
	}
	if got := rec.Traces(Filter{Kind: "batch"}); len(got) != 0 {
		t.Fatalf("batch traces: got %d", len(got))
	}
	v := rec.Traces(Filter{Kind: "query"})[0]
	if v.Spans[0].Name != "lock_wait" || v.Spans[0].Monitor != "conn" {
		t.Fatalf("bad query spans: %+v", v.Spans)
	}
}

func TestCommitIsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race")
	}
	rec := New(Options{RingSlots: 64, SlowThreshold: time.Hour})
	r := rec.Ring("w1", KindBatch, []string{"conn"})
	var scratch Trace
	seq := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		scratch.Reset(KindBatch)
		scratch.Seq, scratch.Durable = seq, true
		scratch.StartNS, scratch.TotalNS = int64(seq), 1000
		scratch.Add(SpanQueue, 0, 0, 10)
		scratch.Add(SpanStage, 0, 10, 100)
		scratch.Add(SpanMonitorWait, 0, 110, 5)
		scratch.Add(SpanMonitorApply, 0, 115, 800)
		scratch.Add(SpanPublish, 0, 915, 85)
		r.Commit(&scratch)
	})
	if allocs != 0 {
		t.Fatalf("Commit allocates %.1f/op, want 0", allocs)
	}
}

func TestConcurrentCommitAndRead(t *testing.T) {
	rec := New(Options{RingSlots: 8, SlowThreshold: time.Nanosecond})
	var sink bytes.Buffer
	rec.SetSlowSink(&sink)
	r := rec.Ring("w1", KindBatch, []string{"conn"})
	qr := rec.Ring("w1", KindQuery, []string{"conn"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // batch writer
		defer wg.Done()
		var tr Trace
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Reset(KindBatch)
			tr.Seq, tr.TotalNS, tr.StartNS = seq, 1e6, int64(seq)
			tr.Add(SpanStage, 0, 0, 1e6)
			r.Commit(&tr)
		}
	}()
	go func() { // concurrent query writers share the query ring
		defer wg.Done()
		var inner sync.WaitGroup
		for i := 0; i < 4; i++ {
			inner.Add(1)
			go func() {
				defer inner.Done()
				var tr Trace
				for {
					select {
					case <-stop:
						return
					default:
					}
					tr.Reset(KindQuery)
					tr.Seq = qr.SeqNext()
					tr.Add(SpanExec, 0, 0, 1e3)
					qr.Commit(&tr)
				}
			}()
		}
		inner.Wait()
	}()
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range rec.Traces(Filter{Limit: 16}) {
				if v.Window != "w1" {
					panic("trace from unknown window")
				}
			}
			rec.Traces(Filter{Slow: true})
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHandler(t *testing.T) {
	rec := New(Options{RingSlots: 8, SlowThreshold: 10 * time.Millisecond})
	r := rec.Ring("w1", KindBatch, []string{"conn"})
	r.Commit(mkTrace(1, int64(time.Millisecond), true))
	r.Commit(mkTrace(2, int64(time.Second), true))

	get := func(url string) (*httptest.ResponseRecorder, Response) {
		t.Helper()
		w := httptest.NewRecorder()
		rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		var resp Response
		if w.Code == 200 {
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return w, resp
	}
	if w, resp := get("/debug/flight"); w.Code != 200 || resp.Count != 2 || resp.SlowThresholdMS != 10 {
		t.Fatalf("base: code=%d resp=%+v", w.Code, resp)
	}
	if _, resp := get("/debug/flight?min_ms=500"); resp.Count != 1 || resp.Traces[0].Seq != 2 {
		t.Fatalf("min_ms: %+v", resp)
	}
	if _, resp := get("/debug/flight?slow=1"); resp.Count != 1 || !resp.Traces[0].Slow {
		t.Fatalf("slow: %+v", resp)
	}
	if _, resp := get("/debug/flight?window=w1&kind=batch&limit=1"); resp.Count != 1 {
		t.Fatalf("combined: %+v", resp)
	}
	if w, _ := get("/debug/flight?min_ms=nope"); w.Code != 400 {
		t.Fatalf("bad min_ms: code=%d", w.Code)
	}
	if w, _ := get("/debug/flight?kind=weird"); w.Code != 400 {
		t.Fatalf("bad kind: code=%d", w.Code)
	}
	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/debug/flight", nil))
	if w.Code != 405 {
		t.Fatalf("POST: code=%d", w.Code)
	}
}
