// Package trace is a zero-dependency batch flight recorder for the
// ingest→WAL→apply pipeline. Every applied batch (and every monitor
// query) records a span tree into a preallocated per-window ring of
// fixed-size slots; recording is 0 allocs/op so the recorder can stay
// on in production. Traces whose total time crosses a threshold are
// additionally copied into a global slow-retention ring (and optionally
// appended as JSONL to a persistent sink) so a stall remains inspectable
// after the main ring has wrapped — or after the process has crashed.
//
// A trace ID packs the ring's identity into the high bits and the
// batch's WAL sequence (its first arrival index) into the low bits, so
// the same batch carries the same low bits across restarts and an
// exemplar captured by a telemetry histogram resolves back to a concrete
// trace in the recorder.
//
// Concurrency model: each ring slot is guarded by its own mutex and
// writers claim slots with an atomic counter, so slots are effectively
// single-writer and the lock is only ever contended by readers copying
// a slot out. A batch trace is assembled in caller-owned scratch and
// committed with one locked copy, so in-flight batches never publish
// torn data.
package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace kinds.
const (
	// KindBatch traces one applied batch through the pipeline.
	KindBatch uint8 = iota
	// KindQuery traces one monitor query (lock wait + execution).
	KindQuery
)

// Span kinds. Arg carries the monitor index for wait/apply/lock_wait/exec
// spans and the msfweight level for level spans; it is unused otherwise.
const (
	// SpanQueue is the time the batch's oldest submission waited in the
	// ingester queue before its flush.
	SpanQueue uint8 = iota
	// SpanStage is staging under the window's coordination lock
	// (validation, live-buffer append, expiry staging; includes the WAL
	// append for durable windows).
	SpanStage
	// SpanWALAppend is the write-ahead log append (encode + write +
	// policy fsync), nested inside the stage span.
	SpanWALAppend
	// SpanWALFsync is the fsync observed during the WAL append, nested
	// inside the wal_append span.
	SpanWALFsync
	// SpanMonitorWait is the time one monitor's apply waited for that
	// monitor's write lock.
	SpanMonitorWait
	// SpanMonitorApply is one monitor's batch apply under its lock.
	SpanMonitorApply
	// SpanLevel is one msfweight level's fork-joined sub-apply.
	SpanLevel
	// SpanPublish is the epoch publish and telemetry observation tail.
	SpanPublish
	// SpanLockWait is a query's wait for the monitor read lock.
	SpanLockWait
	// SpanExec is a query's execution under the monitor read lock.
	SpanExec
	// SpanAdmit is the admission work the batch's oldest submission paid
	// in Submit before its enqueue: budget and rate-limit checks. Queue
	// backpressure (a blocked channel send) stays in the queue span.
	SpanAdmit
)

var spanNames = [...]string{
	SpanQueue:        "queue",
	SpanStage:        "stage",
	SpanWALAppend:    "wal_append",
	SpanWALFsync:     "wal_fsync",
	SpanMonitorWait:  "wait",
	SpanMonitorApply: "apply",
	SpanLevel:        "level",
	SpanPublish:      "publish",
	SpanLockWait:     "lock_wait",
	SpanExec:         "exec",
	SpanAdmit:        "admit",
}

// SpanName returns the wire name of a span kind ("queue", "apply", ...).
func SpanName(kind uint8) string {
	if int(kind) < len(spanNames) {
		return spanNames[kind]
	}
	return fmt.Sprintf("span%d", kind)
}

// MaxSpans is the per-trace span capacity. Five pipeline stages plus
// wait+apply for each of the five monitors fit with room for ~17
// msfweight level spans; overflow increments Trace.Dropped instead of
// allocating.
const MaxSpans = 32

const (
	idShift = 48
	seqMask = 1<<idShift - 1
)

// Span is one timed region of a trace. StartNS is the offset from the
// trace's start, not a wall-clock time.
type Span struct {
	Kind    uint8
	Arg     int32
	StartNS int64
	DurNS   int64
}

// Trace is the recording scratch for one batch or query. The pipeline
// owns a Trace value while recording (no lock needed: single goroutine),
// then commits it to a Ring with one locked copy.
type Trace struct {
	ID      uint64 // ringID<<48 | Seq&mask; stamped by Commit
	Kind    uint8
	Slow    bool // total time crossed the recorder's slow threshold
	Durable bool // Seq is a WAL sequence (first arrival index of the batch)
	Seq     uint64
	StartNS int64 // wall clock, unix nanoseconds
	TotalNS int64
	Edges   int32
	Expired int32
	Dropped int32 // spans that did not fit in Spans
	N       int32
	Spans   [MaxSpans]Span
}

// Reset clears the trace for reuse without touching the spans array
// beyond what N covered.
func (t *Trace) Reset(kind uint8) {
	*t = Trace{Kind: kind}
}

// Add appends a span; past MaxSpans it only counts the drop.
func (t *Trace) Add(kind uint8, arg int32, startNS, durNS int64) {
	if t.N >= MaxSpans {
		t.Dropped++
		return
	}
	t.Spans[t.N] = Span{Kind: kind, Arg: arg, StartNS: startNS, DurNS: durNS}
	t.N++
}

// slot is one ring entry. src names the ring the trace came from (for
// the slow ring this is the originating window's ring, which carries the
// window name and monitor-name table).
type slot struct {
	mu  sync.Mutex
	ok  bool
	src *Ring
	t   Trace
}

// Ring is a fixed-capacity trace buffer for one window (or the global
// slow ring). Writers claim slots round-robin with an atomic counter.
type Ring struct {
	name     string
	kind     uint8
	id       uint64
	monitors []string
	rec      *Recorder
	seq      atomic.Uint64
	next     atomic.Uint64
	slots    []slot
}

// Name returns the window name the ring records for ("" for the slow ring).
func (r *Ring) Name() string { return r.name }

// SeqNext allocates the next ring-local trace sequence (used by query
// traces and by batch traces on non-durable windows, which have no WAL
// sequence to borrow).
func (r *Ring) SeqNext() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Add(1)
}

// ID packs the ring identity and a trace sequence into the trace ID a
// Commit of that sequence will stamp — callers that tag histogram
// exemplars mid-pipeline use it to know the ID before the trace is done.
func (r *Ring) ID(seq uint64) uint64 {
	if r == nil {
		return 0
	}
	return r.id<<idShift | seq&seqMask
}

// Commit stamps the trace ID and publishes a copy of t into the ring;
// 0 allocs. Batch traces at or past the recorder's slow threshold are
// additionally retained in the slow ring and, when a sink is configured,
// appended to it as one JSONL line (the slow path may allocate).
func (r *Ring) Commit(t *Trace) {
	if r == nil {
		return
	}
	t.ID = r.ID(t.Seq)
	slow := r.kind == KindBatch && r.rec != nil &&
		r.rec.opt.SlowThreshold > 0 && t.TotalNS >= int64(r.rec.opt.SlowThreshold)
	t.Slow = slow
	r.publish(r, t)
	if slow {
		r.rec.commitSlow(r, t)
	}
}

// publish copies t into the next slot, crediting src as the origin ring.
func (r *Ring) publish(src *Ring, t *Trace) {
	idx := r.next.Add(1) - 1
	s := &r.slots[idx%uint64(len(r.slots))]
	s.mu.Lock()
	s.ok = true
	s.src = src
	s.t = *t
	s.mu.Unlock()
}

// snapshot appends a copy of every committed trace (with its origin
// ring) to dst and returns it.
func (r *Ring) snapshot(dst []viewRef) []viewRef {
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.ok {
			dst = append(dst, viewRef{src: s.src, t: s.t})
		}
		s.mu.Unlock()
	}
	return dst
}

type viewRef struct {
	src *Ring
	t   Trace
}

// Options configures a Recorder. Zero values pick the documented defaults.
type Options struct {
	// RingSlots is each window ring's capacity (default 128).
	RingSlots int
	// QuerySlots is each window's query-ring capacity (default 64).
	QuerySlots int
	// SlowSlots is the global slow-retention ring's capacity (default 64).
	SlowSlots int
	// SlowThreshold routes batch traces whose total time is at or past
	// this bound into the slow ring (default 100ms; negative disables).
	SlowThreshold time.Duration
}

// DefaultSlowThreshold is the slow-ring admission bound when Options
// leaves SlowThreshold zero.
const DefaultSlowThreshold = 100 * time.Millisecond

func (o Options) withDefaults() Options {
	if o.RingSlots <= 0 {
		o.RingSlots = 128
	}
	if o.QuerySlots <= 0 {
		o.QuerySlots = 64
	}
	if o.SlowSlots <= 0 {
		o.SlowSlots = 64
	}
	switch {
	case o.SlowThreshold < 0:
		o.SlowThreshold = 0
	case o.SlowThreshold == 0:
		o.SlowThreshold = DefaultSlowThreshold
	}
	return o
}

// Recorder owns the per-window rings, the slow ring, and the optional
// JSONL sink for slow traces.
type Recorder struct {
	opt       Options
	mu        sync.RWMutex
	rings     []*Ring
	slow      *Ring
	sinkMu    sync.Mutex
	sink      io.Writer
	onSinkErr func(error)
	sinkErrs  atomic.Int64
}

// New builds a Recorder.
func New(opt Options) *Recorder {
	rec := &Recorder{opt: opt.withDefaults()}
	rec.slow = &Ring{kind: KindBatch, rec: rec, slots: make([]slot, rec.opt.SlowSlots)}
	return rec
}

// SlowThreshold reports the slow-ring admission bound (0 = disabled).
func (rec *Recorder) SlowThreshold() time.Duration {
	if rec == nil {
		return 0
	}
	return rec.opt.SlowThreshold
}

// SetSlowSink directs one JSONL line per slow trace at w (nil detaches).
// The recorder serializes writes but does not close w.
func (rec *Recorder) SetSlowSink(w io.Writer) {
	if rec == nil {
		return
	}
	rec.sinkMu.Lock()
	rec.sink = w
	rec.sinkMu.Unlock()
}

// SinkErrors reports how many slow-trace sink appends failed (marshal
// or write). Failed lines are dropped — this count is the only evidence
// a sink is sick, so servers export it as a metric.
func (rec *Recorder) SinkErrors() int64 {
	if rec == nil {
		return 0
	}
	return rec.sinkErrs.Load()
}

// SetSinkErrorHook installs fn to be invoked once, with the first sink
// append failure. Subsequent failures only bump the SinkErrors counter,
// keeping a persistently sick sink from flooding logs.
func (rec *Recorder) SetSinkErrorHook(fn func(error)) {
	if rec == nil {
		return
	}
	rec.sinkMu.Lock()
	rec.onSinkErr = fn
	rec.sinkMu.Unlock()
}

func (rec *Recorder) noteSinkErr(err error) {
	if rec.sinkErrs.Add(1) != 1 {
		return
	}
	rec.sinkMu.Lock()
	fn := rec.onSinkErr
	rec.sinkMu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// Ring allocates a new ring for window name. monitors maps the Arg of
// monitor-scoped spans to a monitor name at render time; it is retained,
// not copied. kind selects the batch or query span vocabulary.
func (rec *Recorder) Ring(name string, kind uint8, monitors []string) *Ring {
	if rec == nil {
		return nil
	}
	n := rec.opt.RingSlots
	if kind == KindQuery {
		n = rec.opt.QuerySlots
	}
	r := &Ring{name: name, kind: kind, monitors: monitors, rec: rec, slots: make([]slot, n)}
	rec.mu.Lock()
	rec.rings = append(rec.rings, r)
	r.id = uint64(len(rec.rings)) // 1-based; ID 0 means "never committed"
	rec.mu.Unlock()
	return r
}

// commitSlow retains a copy of t in the slow ring and appends it to the
// JSONL sink when one is attached. Runs on the batch writer goroutine,
// but only for slow batches — allocations here are off the hot path.
func (rec *Recorder) commitSlow(src *Ring, t *Trace) {
	rec.slow.publish(src, t)
	rec.sinkMu.Lock()
	w := rec.sink
	rec.sinkMu.Unlock()
	if w == nil {
		return
	}
	line, err := buildView(src, t).appendJSON(nil)
	if err != nil {
		rec.noteSinkErr(err)
		return
	}
	line = append(line, '\n')
	rec.sinkMu.Lock()
	var werr error
	if rec.sink != nil {
		_, werr = rec.sink.Write(line)
	}
	rec.sinkMu.Unlock()
	if werr != nil {
		rec.noteSinkErr(werr)
	}
}

// Filter selects traces for Traces and the HTTP handler.
type Filter struct {
	Window string // "" = all windows
	Kind   string // "", "batch", or "query"
	MinNS  int64  // keep traces with TotalNS >= MinNS
	Slow   bool   // read the slow-retention ring instead of the live rings
	Limit  int    // max traces returned, newest first (0 = DefaultLimit)
}

// DefaultLimit bounds a Traces call that does not set Filter.Limit.
const DefaultLimit = 64

// Traces returns matching traces, newest first.
func (rec *Recorder) Traces(f Filter) []View {
	if rec == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = DefaultLimit
	}
	var refs []viewRef
	if f.Slow {
		refs = rec.slow.snapshot(refs)
	} else {
		rec.mu.RLock()
		rings := rec.rings
		rec.mu.RUnlock()
		for _, r := range rings {
			if f.Window != "" && r.name != f.Window {
				continue
			}
			if f.Kind == "batch" && r.kind != KindBatch {
				continue
			}
			if f.Kind == "query" && r.kind != KindQuery {
				continue
			}
			refs = r.snapshot(refs)
		}
	}
	views := make([]View, 0, len(refs))
	for i := range refs {
		t := &refs[i].t
		if t.TotalNS < f.MinNS {
			continue
		}
		if f.Slow { // slow ring mixes windows; filters still apply
			if f.Window != "" && refs[i].src != nil && refs[i].src.name != f.Window {
				continue
			}
			if f.Kind == "query" {
				continue
			}
		}
		views = append(views, buildView(refs[i].src, t))
	}
	sortViews(views)
	if len(views) > f.Limit {
		views = views[:f.Limit]
	}
	return views
}

// Lookup resolves a packed trace ID (as carried by histogram exemplars)
// to its trace, searching the owning ring first and the slow ring as a
// fallback for traces the live ring has already overwritten.
func (rec *Recorder) Lookup(id uint64) (View, bool) {
	if rec == nil || id == 0 {
		return View{}, false
	}
	rid := id >> idShift
	rec.mu.RLock()
	var r *Ring
	if rid >= 1 && int(rid) <= len(rec.rings) {
		r = rec.rings[rid-1]
	}
	rec.mu.RUnlock()
	for _, ring := range []*Ring{r, rec.slow} {
		if ring == nil {
			continue
		}
		for i := range ring.slots {
			s := &ring.slots[i]
			s.mu.Lock()
			if s.ok && s.t.ID == id {
				v := buildView(s.src, &s.t)
				s.mu.Unlock()
				return v, true
			}
			s.mu.Unlock()
		}
	}
	return View{}, false
}

// FormatID renders a packed trace ID the way views and exemplars do.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID inverts FormatID.
func ParseID(s string) (uint64, bool) {
	var id uint64
	if _, err := fmt.Sscanf(s, "%016x", &id); err != nil || len(s) != 16 {
		return 0, false
	}
	return id, true
}
