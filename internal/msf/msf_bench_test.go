package msf

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// Benchmarks for the static MSF algorithms: Algorithm 2 runs them on
// O(l)-size compressed graphs, so small-m performance is what matters.
func BenchmarkStaticMSF(b *testing.B) {
	for _, m := range []int{64, 1024, 16384} {
		n := m / 2
		r := parallel.NewRNG(uint64(m))
		edges := make([]wgraph.Edge, m)
		for i := range edges {
			edges[i] = wgraph.Edge{
				ID: wgraph.EdgeID(i), U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Int63() % 1000,
			}
		}
		b.Run(fmt.Sprintf("kruskal/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Kruskal(n, edges)
			}
		})
		b.Run(fmt.Sprintf("boruvka/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Boruvka(n, edges)
			}
		})
	}
}

func TestBoruvkaSingleVertex(t *testing.T) {
	if got := Boruvka(1, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestKruskalStopsAtSpanningTree(t *testing.T) {
	// A complete-ish graph: Kruskal must return exactly n-1 edges and the
	// early-exit path must not truncate a legitimate forest.
	const n = 50
	r := parallel.NewRNG(9)
	var edges []wgraph.Edge
	id := wgraph.EdgeID(0)
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j += 3 {
			edges = append(edges, wgraph.Edge{ID: id, U: i, V: j, W: r.Int63() % 100})
			id++
		}
	}
	got := Kruskal(n, edges)
	if len(got) != n-1 {
		t.Fatalf("forest size %d want %d", len(got), n-1)
	}
}
