// Package msf implements static minimum-spanning-forest algorithms: Kruskal
// (the workhorse for the O(ℓ)-size graphs arising in Algorithm 2), Prim (a
// reference oracle for tests), and a parallel filter-Borůvka used as the
// stand-in for the Cole–Klein–Tarjan linear-work parallel MSF [12] — see
// DESIGN.md §2 for the substitution argument.
//
// All algorithms break ties with the (W, ID) total order of package wgraph,
// so on any input they return the same, unique, minimum spanning forest.
package msf

import (
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// Kruskal returns the MSF of the given edges over vertices [0, n).
// Self-loops are ignored. Output is in increasing (W, ID) order.
func Kruskal(n int, edges []wgraph.Edge) []wgraph.Edge {
	sorted := make([]wgraph.Edge, 0, len(edges))
	for _, e := range edges {
		if !e.IsLoop() {
			sorted = append(sorted, e)
		}
	}
	parallel.Sort(sorted, func(a, b wgraph.Edge) bool {
		return wgraph.KeyOf(a).Less(wgraph.KeyOf(b))
	})
	uf := unionfind.New(n)
	out := make([]wgraph.Edge, 0, min(len(sorted), n-zeroIfNeg(n-1)))
	for _, e := range sorted {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			if len(out) == n-1 {
				break
			}
		}
	}
	return out
}

func zeroIfNeg(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

// Prim computes the MSF with a binary-heap Prim from every unvisited vertex.
// It exists as an independently-coded oracle for differential tests.
func Prim(n int, edges []wgraph.Edge) []wgraph.Edge {
	adj := wgraph.NewAdjacency(n, edges)
	inTree := make([]bool, n)
	var out []wgraph.Edge
	h := &edgeHeap{}
	for s := 0; s < n; s++ {
		if inTree[s] {
			continue
		}
		inTree[s] = true
		h.reset()
		for _, half := range adj.Nbr[int32(s)] {
			e := adj.Edge[half.Idx]
			if !e.IsLoop() {
				h.push(e)
			}
		}
		for h.len() > 0 {
			e := h.pop()
			var next int32
			switch {
			case inTree[e.U] && inTree[e.V]:
				continue
			case inTree[e.U]:
				next = e.V
			default:
				next = e.U
			}
			inTree[next] = true
			out = append(out, e)
			for _, half := range adj.Nbr[next] {
				ne := adj.Edge[half.Idx]
				if !ne.IsLoop() && (!inTree[ne.U] || !inTree[ne.V]) {
					h.push(ne)
				}
			}
		}
	}
	return out
}

// edgeHeap is a minimal binary min-heap on (W, ID).
type edgeHeap struct{ xs []wgraph.Edge }

func (h *edgeHeap) reset()   { h.xs = h.xs[:0] }
func (h *edgeHeap) len() int { return len(h.xs) }

func (h *edgeHeap) push(e wgraph.Edge) {
	h.xs = append(h.xs, e)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wgraph.KeyOf(h.xs[i]).Less(wgraph.KeyOf(h.xs[p])) {
			break
		}
		h.xs[i], h.xs[p] = h.xs[p], h.xs[i]
		i = p
	}
}

func (h *edgeHeap) pop() wgraph.Edge {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && wgraph.KeyOf(h.xs[l]).Less(wgraph.KeyOf(h.xs[m])) {
			m = l
		}
		if r < last && wgraph.KeyOf(h.xs[r]).Less(wgraph.KeyOf(h.xs[m])) {
			m = r
		}
		if m == i {
			break
		}
		h.xs[i], h.xs[m] = h.xs[m], h.xs[i]
		i = m
	}
	return top
}

// Boruvka computes the MSF with parallel Borůvka rounds: each component
// selects its minimum incident edge in parallel, the selected edges are
// committed through a union-find, and fully-contracted edges are filtered
// before the next round. Expected O(lg n) rounds; each round's work is linear
// in the surviving edges, which at least halve per round after filtering.
func Boruvka(n int, edges []wgraph.Edge) []wgraph.Edge {
	live := make([]wgraph.Edge, 0, len(edges))
	for _, e := range edges {
		if !e.IsLoop() {
			live = append(live, e)
		}
	}
	uf := unionfind.New(n)
	var out []wgraph.Edge
	// best[r] holds the index+1 of the current minimum edge for root r; 0
	// means none. Rebuilt per round (allocated once).
	best := make([]int32, n)
	for len(live) > 0 {
		for i := range best {
			best[i] = 0
		}
		// Relabel endpoints to roots; drop contracted edges.
		next := live[:0]
		for _, e := range live {
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			e.U, e.V = ru, rv
			next = append(next, e)
		}
		live = next
		if len(live) == 0 {
			break
		}
		// Minimum incident edge per root. Sequential scan (deterministic);
		// the parallel version would use priority CRCW writes.
		for i, e := range live {
			for _, r := range [2]int32{e.U, e.V} {
				if best[r] == 0 || wgraph.KeyOf(e).Less(wgraph.KeyOf(live[best[r]-1])) {
					best[r] = int32(i + 1)
				}
			}
		}
		// Commit selected edges. Each selected edge appears for one or two
		// roots; union-find dedupes.
		committed := 0
		for r := 0; r < n; r++ {
			if best[r] == 0 {
				continue
			}
			e := live[best[r]-1]
			if uf.Union(e.U, e.V) {
				out = append(out, e)
				committed++
			}
		}
		if committed == 0 {
			break
		}
	}
	// Restore original endpoints: out currently holds root-relabelled copies;
	// recover the true endpoints from the IDs by indexing the input. Build a
	// lookup on demand.
	if len(out) > 0 {
		byID := make(map[wgraph.EdgeID]wgraph.Edge, len(edges))
		for _, e := range edges {
			byID[e.ID] = e
		}
		for i := range out {
			out[i] = byID[out[i].ID]
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
