package msf

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

func randomGraph(r *parallel.RNG, n, m int, wrange int64) []wgraph.Edge {
	edges := make([]wgraph.Edge, m)
	for i := range edges {
		edges[i] = wgraph.Edge{
			ID: wgraph.EdgeID(i),
			U:  int32(r.Intn(n)),
			V:  int32(r.Intn(n)),
			W:  r.Int63() % wrange,
		}
	}
	return edges
}

func sortByID(es []wgraph.Edge) []wgraph.Edge {
	cp := append([]wgraph.Edge(nil), es...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].ID < cp[j].ID })
	return cp
}

func sameEdgeSet(t *testing.T, name string, a, b []wgraph.Edge) {
	t.Helper()
	as, bs := sortByID(a), sortByID(b)
	if len(as) != len(bs) {
		t.Fatalf("%s: sizes differ %d vs %d", name, len(as), len(bs))
	}
	for i := range as {
		if as[i].ID != bs[i].ID {
			t.Fatalf("%s: edge sets differ at %d: %v vs %v", name, i, as[i], bs[i])
		}
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	if got := Kruskal(0, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Kruskal(3, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Boruvka(3, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Prim(3, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	edges := []wgraph.Edge{
		{ID: 0, U: 0, V: 0, W: -100},
		{ID: 1, U: 0, V: 1, W: 5},
	}
	for name, f := range map[string]func(int, []wgraph.Edge) []wgraph.Edge{
		"kruskal": Kruskal, "boruvka": Boruvka, "prim": Prim,
	} {
		got := f(2, edges)
		if len(got) != 1 || got[0].ID != 1 {
			t.Fatalf("%s: got %v", name, got)
		}
	}
}

func TestParallelEdgesPickCheapest(t *testing.T) {
	edges := []wgraph.Edge{
		{ID: 0, U: 0, V: 1, W: 9},
		{ID: 1, U: 0, V: 1, W: 2},
		{ID: 2, U: 1, V: 0, W: 2}, // tie on W: ID 1 wins
	}
	for name, f := range map[string]func(int, []wgraph.Edge) []wgraph.Edge{
		"kruskal": Kruskal, "boruvka": Boruvka, "prim": Prim,
	} {
		got := f(2, edges)
		if len(got) != 1 || got[0].ID != 1 {
			t.Fatalf("%s: got %v", name, got)
		}
	}
}

func TestKnownMST(t *testing.T) {
	// Classic 4-cycle with a chord.
	edges := []wgraph.Edge{
		{ID: 0, U: 0, V: 1, W: 1},
		{ID: 1, U: 1, V: 2, W: 2},
		{ID: 2, U: 2, V: 3, W: 3},
		{ID: 3, U: 3, V: 0, W: 4},
		{ID: 4, U: 0, V: 2, W: 5},
	}
	want := []wgraph.EdgeID{0, 1, 2}
	got := Kruskal(4, edges)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestAllThreeAgreeOnRandomGraphs(t *testing.T) {
	r := parallel.NewRNG(3)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(60)
		m := r.Intn(4 * n)
		edges := randomGraph(r, n, m, 1_000_000)
		k := Kruskal(n, edges)
		b := Boruvka(n, edges)
		p := Prim(n, edges)
		sameEdgeSet(t, "kruskal-vs-boruvka", k, b)
		sameEdgeSet(t, "kruskal-vs-prim", k, p)
	}
}

func TestAgreeWithHeavyTies(t *testing.T) {
	// Tiny weight range forces many ties: the (W, ID) order must keep all
	// three algorithms in exact agreement.
	r := parallel.NewRNG(9)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(40)
		m := r.Intn(5 * n)
		edges := randomGraph(r, n, m, 3)
		sameEdgeSet(t, "ties", Kruskal(n, edges), Boruvka(n, edges))
		sameEdgeSet(t, "ties-prim", Kruskal(n, edges), Prim(n, edges))
	}
}

func TestForestOutputIsSpanningForest(t *testing.T) {
	r := parallel.NewRNG(17)
	n := 200
	edges := randomGraph(r, n, 500, 1000)
	out := Kruskal(n, edges)
	// Acyclic.
	uf := unionfind.New(n)
	for _, e := range out {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("cycle at %v", e)
		}
	}
	// Spanning: every input edge's endpoints are connected in the forest.
	for _, e := range edges {
		if e.IsLoop() {
			continue
		}
		if !uf.Connected(e.U, e.V) {
			t.Fatalf("forest does not span edge %v", e)
		}
	}
}

func TestCutPropertyOnSmallGraphs(t *testing.T) {
	// For every forest edge e, e must be the minimum edge crossing the cut
	// defined by removing it — verified exhaustively on small random graphs.
	r := parallel.NewRNG(23)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(12)
		edges := randomGraph(r, n, 2*n, 50)
		forest := Kruskal(n, edges)
		for fi, fe := range forest {
			// Split components with forest minus fe.
			uf := unionfind.New(n)
			for j, other := range forest {
				if j != fi {
					uf.Union(other.U, other.V)
				}
			}
			// fe must be minimal among edges crossing the cut.
			for _, e := range edges {
				if e.IsLoop() || uf.Connected(e.U, e.V) {
					continue
				}
				// e crosses the same cut as fe only if it reconnects fe's sides.
				if uf.Find(e.U) != uf.Find(fe.U) && uf.Find(e.U) != uf.Find(fe.V) {
					continue
				}
				if uf.Find(e.V) != uf.Find(fe.U) && uf.Find(e.V) != uf.Find(fe.V) {
					continue
				}
				if wgraph.KeyOf(e).Less(wgraph.KeyOf(fe)) {
					t.Fatalf("cut property violated: %v beats forest edge %v", e, fe)
				}
			}
		}
	}
}

func TestWeightEqualityQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		n := 30
		edges := make([]wgraph.Edge, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, wgraph.Edge{
				ID: wgraph.EdgeID(i),
				U:  int32(raw[i] % uint32(n)),
				V:  int32(raw[i+1] % uint32(n)),
				W:  int64(raw[i+2] % 100),
			})
		}
		k := Kruskal(n, edges)
		b := Boruvka(n, edges)
		return wgraph.TotalWeight(k) == wgraph.TotalWeight(b) && len(k) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two separate triangles.
	edges := []wgraph.Edge{
		{ID: 0, U: 0, V: 1, W: 1}, {ID: 1, U: 1, V: 2, W: 2}, {ID: 2, U: 2, V: 0, W: 3},
		{ID: 3, U: 3, V: 4, W: 1}, {ID: 4, U: 4, V: 5, W: 2}, {ID: 5, U: 5, V: 3, W: 3},
	}
	got := Kruskal(6, edges)
	if len(got) != 4 {
		t.Fatalf("got %d edges, want 4 (two trees of 2 edges)", len(got))
	}
	sameEdgeSet(t, "disconnected", got, Boruvka(6, edges))
}

func TestLargeSparseAgreement(t *testing.T) {
	r := parallel.NewRNG(99)
	n := 20_000
	edges := randomGraph(r, n, 60_000, 1<<40)
	k := Kruskal(n, edges)
	b := Boruvka(n, edges)
	sameEdgeSet(t, "large", k, b)
}

func TestNegativeWeights(t *testing.T) {
	edges := []wgraph.Edge{
		{ID: 0, U: 0, V: 1, W: -10},
		{ID: 1, U: 1, V: 2, W: -20},
		{ID: 2, U: 0, V: 2, W: -5},
	}
	got := Kruskal(3, edges)
	ids := map[wgraph.EdgeID]bool{}
	for _, e := range got {
		ids[e.ID] = true
	}
	if !ids[0] || !ids[1] || ids[2] {
		t.Fatalf("got %v", got)
	}
	sameEdgeSet(t, "negative", got, Boruvka(3, edges))
	sameEdgeSet(t, "negative-prim", got, Prim(3, edges))
}
