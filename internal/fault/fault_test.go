package fault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(filepath.Join(dir, "a/b/x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(filepath.Join(dir, "a/b/x"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fs.SyncDir(filepath.Join(dir, "a/b")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Rename(filepath.Join(dir, "a/b/x"), filepath.Join(dir, "a/b/y")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(filepath.Join(dir, "a/b/y")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectEIOOnWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	if _, err := in.Set(Rule{Op: OpWrite, Kind: KindEIO, Path: "wal"}); err != nil {
		t.Fatal(err)
	}
	f, err := in.OpenFile(filepath.Join(dir, "wal.seg"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Write([]byte("data"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if !IsInjected(err) {
		t.Fatalf("IsInjected(%v) = false", err)
	}
	// Non-matching path is untouched.
	g, err := in.OpenFile(filepath.Join(dir, "other"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	_ = g.Close()
}

func TestAfterAndCount(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	// Skip first 2 writes, then fail exactly 1.
	if _, err := in.Set(Rule{Op: OpWrite, Kind: KindENOSPC, After: 2, Count: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var errs []error
	for i := 0; i < 5; i++ {
		_, werr := f.Write([]byte("x"))
		errs = append(errs, werr)
	}
	for i, werr := range errs {
		wantErr := i == 2
		if (werr != nil) != wantErr {
			t.Fatalf("write %d: err=%v, want fail=%v", i, werr, wantErr)
		}
	}
	if !errors.Is(errs[2], syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", errs[2])
	}
	st := in.Rules()
	if len(st) != 1 || st[0].Fired != 1 || st[0].Matched != 5 {
		t.Fatalf("rule status = %+v", st)
	}
	if in.Trips() != 1 {
		t.Fatalf("trips = %d", in.Trips())
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	if _, err := in.Set(Rule{Op: OpWrite, Kind: KindShort, Count: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	if werr == nil || n != 5 {
		t.Fatalf("short write: n=%d err=%v", n, werr)
	}
	_ = f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "01234" {
		t.Fatalf("on disk: %q", b)
	}
}

func TestClearAndReset(t *testing.T) {
	in := NewInjector(nil, 1)
	id, err := in.Set(Rule{Op: OpSync, Kind: KindEIO})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Clear(id) {
		t.Fatal("Clear returned false")
	}
	if in.Clear(id) {
		t.Fatal("double Clear returned true")
	}
	if _, err := in.Set(Rule{Kind: KindEIO}); err != nil {
		t.Fatal(err)
	}
	in.Reset()
	if len(in.Rules()) != 0 {
		t.Fatal("Reset left rules behind")
	}
}

func TestValidation(t *testing.T) {
	in := NewInjector(nil, 1)
	if _, err := in.Set(Rule{Kind: "bogus"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if _, err := in.Set(Rule{Kind: KindEIO, Prob: 1.5}); err == nil {
		t.Fatal("prob > 1 accepted")
	}
	if _, err := in.Set(Rule{Kind: KindLatency}); err == nil {
		t.Fatal("latency without latency_ms accepted")
	}
}

func TestCheckApplyPanic(t *testing.T) {
	in := NewInjector(nil, 1)
	if _, err := in.Set(Rule{Op: OpApply, Path: "w1/conn", Kind: KindPanic}); err != nil {
		t.Fatal(err)
	}
	in.CheckApply("w1/bipartite") // no match: must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("CheckApply did not panic")
		}
	}()
	in.CheckApply("w1/conn")
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() int64 {
		in := NewInjector(nil, 42)
		if _, err := in.Set(Rule{Op: OpApply, Kind: KindLatency, LatencyMS: 1, Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			in.CheckApply("w")
		}
		return in.Trips()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 64 {
		t.Fatalf("prob 0.5 fired %d/64 times", a)
	}
}

func TestRulesJSONRoundTrip(t *testing.T) {
	in := NewInjector(nil, 1)
	if err := in.SetRulesJSON([]byte(`[{"op":"write","kind":"eio","path":"w1"},{"kind":"latency","latency_ms":5}]`)); err != nil {
		t.Fatal(err)
	}
	st := in.Rules()
	if len(st) != 2 {
		t.Fatalf("rules = %+v", st)
	}
	if st[0].ID == "" || st[1].ID == "" {
		t.Fatal("generated IDs missing")
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
	if err := in.SetRulesJSON([]byte(`[{"kind":"bogus"}]`)); err == nil {
		t.Fatal("invalid rules accepted")
	}
}
