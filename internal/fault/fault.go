// Package fault is a small injectable fault plane for the durability layer.
//
// It defines an os-shaped filesystem interface (FS / File) that internal/wal
// threads through every disk operation, plus an Injector that wraps a real FS
// and injects deterministic or probabilistic failures — EIO, ENOSPC, short
// writes, fsync errors, latency — per operation class and path. Rules are
// runtime-mutable and JSON-serializable so chaos tests and a live server
// (POST /admin/fault) can drive real outage schedules without restarting.
//
// The package is a std-only leaf: wal imports fault, stream imports both.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the WAL and snapshot writers need.
type File interface {
	io.Writer
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the subset of package os the durability layer needs. All paths are
// passed through verbatim; implementations must behave like the os functions
// of the same name. SyncDir opens the directory and fsyncs it (best-effort
// durability for renames and creates).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	SyncDir(dir string) error
}

// osFS is the passthrough FS backed by package os.
type osFS struct{}

var osSingleton FS = osFS{}

// OS returns the passthrough FS backed by the real filesystem.
func OS() FS { return osSingleton }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)    { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Fault kinds. "panic" is intended for the op "apply" (the monitor fan-out
// boundary); injecting it into file ops is allowed but will crash callers
// that do not recover.
const (
	KindEIO     = "eio"     // return EIO
	KindENOSPC  = "enospc"  // return ENOSPC
	KindShort   = "short"   // write half the bytes, then fail (torn write)
	KindLatency = "latency" // sleep LatencyMS, then succeed
	KindPanic   = "panic"   // panic (monitor apply boundary)
)

// Operation classes a rule can match. Empty Op matches all of them.
const (
	OpWrite    = "write"
	OpSync     = "sync"
	OpTruncate = "truncate"
	OpSeek     = "seek"
	OpClose    = "close"
	OpOpen     = "open"
	OpCreate   = "create"
	OpRead     = "read"
	OpReadDir  = "readdir"
	OpMkdir    = "mkdir"
	OpRemove   = "remove"
	OpRename   = "rename"
	OpSyncDir  = "syncdir"
	OpApply    = "apply" // monitor fan-out boundary (window/monitor path)
)

// Rule describes one fault to inject. Zero Prob means "always fire when
// matched" (deterministic); otherwise each match fires with probability Prob
// using the injector's seeded generator. After skips the first After matches;
// Count caps total firings (0 = unlimited). The zero ID is replaced with a
// generated one on Set.
type Rule struct {
	ID        string  `json:"id"`
	Op        string  `json:"op,omitempty"`   // operation class, "" = any
	Path      string  `json:"path,omitempty"` // substring match on path, "" = any
	Kind      string  `json:"kind"`           // eio | enospc | short | latency | panic
	After     int64   `json:"after,omitempty"`
	Count     int64   `json:"count,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
	LatencyMS int64   `json:"latency_ms,omitempty"`
}

func (r Rule) validate() error {
	switch r.Kind {
	case KindEIO, KindENOSPC, KindShort, KindLatency, KindPanic:
	default:
		return fmt.Errorf("fault: unknown kind %q", r.Kind)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: prob %v out of [0,1]", r.Prob)
	}
	if r.Kind == KindLatency && r.LatencyMS <= 0 {
		return errors.New("fault: latency rule needs latency_ms > 0")
	}
	return nil
}

// RuleStatus is a Rule plus its runtime counters, for GET /admin/fault.
type RuleStatus struct {
	Rule
	Matched int64 `json:"matched"`
	Fired   int64 `json:"fired"`
}

type liveRule struct {
	Rule
	matched int64
	fired   int64
}

// Injector wraps a base FS and injects faults according to its rule set.
// It implements FS itself, so it can be handed to wal.Options.FS directly.
// All methods are safe for concurrent use; rules may be added, cleared, and
// listed while the wrapped filesystem is in active use.
type Injector struct {
	base FS

	mu    sync.Mutex
	rules []*liveRule
	rng   *rand.Rand
	next  int64 // generated rule IDs
	trips int64 // total faults fired
}

// NewInjector wraps base (nil = the real filesystem) with an empty rule set.
// seed drives probabilistic rules; deterministic rules ignore it.
func NewInjector(base FS, seed int64) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Set installs a rule (validated), replacing any rule with the same ID.
// An empty ID gets a generated one. Returns the installed ID.
func (in *Injector) Set(r Rule) (string, error) {
	if err := r.validate(); err != nil {
		return "", err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.ID == "" {
		in.next++
		r.ID = fmt.Sprintf("rule-%d", in.next)
	}
	for i, lr := range in.rules {
		if lr.ID == r.ID {
			in.rules[i] = &liveRule{Rule: r}
			return r.ID, nil
		}
	}
	in.rules = append(in.rules, &liveRule{Rule: r})
	return r.ID, nil
}

// Clear removes the rule with the given ID; reports whether it existed.
func (in *Injector) Clear(id string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, lr := range in.rules {
		if lr.ID == id {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Reset removes every rule.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Rules returns a snapshot of the rule set with runtime counters.
func (in *Injector) Rules() []RuleStatus {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]RuleStatus, 0, len(in.rules))
	for _, lr := range in.rules {
		out = append(out, RuleStatus{Rule: lr.Rule, Matched: lr.matched, Fired: lr.fired})
	}
	return out
}

// Trips returns the total number of faults fired since construction.
func (in *Injector) Trips() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.trips
}

// SetRulesJSON replaces the rule set from a JSON array of rules.
func (in *Injector) SetRulesJSON(data []byte) error {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return err
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return err
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	for _, r := range rules {
		if r.ID == "" {
			in.next++
			r.ID = fmt.Sprintf("rule-%d", in.next)
		}
		in.rules = append(in.rules, &liveRule{Rule: r})
	}
	return nil
}

// injected is the error wrapper for injected faults; errors.Is sees through
// to the underlying syscall errno (EIO / ENOSPC).
type injected struct {
	op, path, kind string
	errno          error
}

func (e *injected) Error() string {
	return fmt.Sprintf("fault: injected %s on %s %q: %v", e.kind, e.op, e.path, e.errno)
}

func (e *injected) Unwrap() error { return e.errno }

// IsInjected reports whether err originated from a fault injector.
func IsInjected(err error) bool {
	var inj *injected
	return errors.As(err, &inj)
}

type verdict struct {
	kind  string
	sleep time.Duration
	err   error
}

// eval matches (op, path) against the rule set and returns the fault to
// apply, if any. Counters update under the injector lock; the sleep (for
// latency rules) is returned to the caller so it happens outside the lock.
func (in *Injector) eval(op, path string) *verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, lr := range in.rules {
		if lr.Op != "" && lr.Op != op {
			continue
		}
		if lr.Path != "" && !contains(path, lr.Path) {
			continue
		}
		lr.matched++
		if lr.matched <= lr.After {
			continue
		}
		if lr.Count > 0 && lr.fired >= lr.Count {
			continue
		}
		if lr.Prob > 0 && in.rng.Float64() >= lr.Prob {
			continue
		}
		lr.fired++
		in.trips++
		v := &verdict{kind: lr.Kind, sleep: time.Duration(lr.LatencyMS) * time.Millisecond}
		switch lr.Kind {
		case KindEIO, KindShort:
			v.err = &injected{op: op, path: path, kind: lr.Kind, errno: syscall.EIO}
		case KindENOSPC:
			v.err = &injected{op: op, path: path, kind: lr.Kind, errno: syscall.ENOSPC}
		}
		return v
	}
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// check evaluates (op, path) and returns the error to inject, sleeping for
// latency rules and panicking for panic rules.
func (in *Injector) check(op, path string) error {
	v := in.eval(op, path)
	if v == nil {
		return nil
	}
	if v.sleep > 0 {
		time.Sleep(v.sleep)
	}
	if v.kind == KindPanic {
		panic(fmt.Sprintf("fault: injected panic on %s %q", op, path))
	}
	return v.err
}

// CheckApply evaluates the "apply" operation for the given path (typically
// "window/monitor"). Panic rules panic; latency rules sleep; error kinds are
// ignored at this boundary (the apply path has no error channel).
func (in *Injector) CheckApply(path string) {
	v := in.eval(OpApply, path)
	if v == nil {
		return
	}
	if v.sleep > 0 {
		time.Sleep(v.sleep)
	}
	if v.kind == KindPanic {
		panic(fmt.Sprintf("fault: injected panic on apply %q", path))
	}
}

// FS implementation — every call consults the rule set first.

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.check(OpMkdir, path); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(dir string) ([]os.DirEntry, error) {
	if err := in.check(OpReadDir, dir); err != nil {
		return nil, err
	}
	return in.base.ReadDir(dir)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if err := in.check(OpRead, path); err != nil {
		return nil, err
	}
	return in.base.ReadFile(path)
}

func (in *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if err := in.check(OpOpen, path); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{in: in, f: f, path: path}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.check(OpCreate, dir); err != nil {
		return nil, err
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{in: in, f: f, path: f.Name()}, nil
}

func (in *Injector) Remove(name string) error {
	if err := in.check(OpRemove, name); err != nil {
		return err
	}
	return in.base.Remove(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.check(OpRename, newpath); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.check(OpSyncDir, dir); err != nil {
		return err
	}
	return in.base.SyncDir(dir)
}

// file wraps a File so per-operation faults apply to the open handle too.
type file struct {
	in   *Injector
	f    File
	path string
}

func (w *file) Name() string { return w.f.Name() }

func (w *file) Write(p []byte) (int, error) {
	v := w.in.eval(OpWrite, w.path)
	if v != nil {
		if v.sleep > 0 {
			time.Sleep(v.sleep)
		}
		switch v.kind {
		case KindPanic:
			panic(fmt.Sprintf("fault: injected panic on write %q", w.path))
		case KindShort:
			// Torn write: half the payload lands, then the device errors.
			// Exercises the caller's rollback/truncate path.
			n, werr := w.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, v.err
		case KindLatency:
			// sleep already applied; fall through to the real write
		default:
			return 0, v.err
		}
	}
	return w.f.Write(p)
}

func (w *file) Truncate(size int64) error {
	if err := w.in.check(OpTruncate, w.path); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *file) Seek(offset int64, whence int) (int64, error) {
	if err := w.in.check(OpSeek, w.path); err != nil {
		return 0, err
	}
	return w.f.Seek(offset, whence)
}

func (w *file) Sync() error {
	if err := w.in.check(OpSync, w.path); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *file) Close() error {
	if err := w.in.check(OpClose, w.path); err != nil {
		_ = w.f.Close() // release the real fd regardless
		return err
	}
	return w.f.Close()
}
