package stream

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the ingestion pipeline so deadline behaviour is
// testable deterministically. RealClock is used in production; FakeClock in
// tests.
type Clock interface {
	Now() time.Time
	// After returns a channel that receives the fire time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually-advanced Clock for deterministic tests. Timers
// created with After fire when Advance moves the clock past their deadline.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the fake clock advances past
// now+d. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- at
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline
// has been reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []fakeWaiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- w.at
	}
}

// Waiters returns the number of pending timers.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntilWaiters blocks until at least n timers are pending. Tests use it
// to synchronize with a goroutine that is about to sleep on After before
// calling Advance.
func (c *FakeClock) BlockUntilWaiters(n int) {
	for {
		if c.Waiters() >= n {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}
