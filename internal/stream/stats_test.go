package stream

import (
	"testing"
	"time"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	var r LatencyRecorder
	if s := r.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 99 fast observations and 1 slow one: p50 must stay near the fast
	// cluster, p99 may reach the slow one, and all quantiles are bounded
	// by Max.
	for i := 0; i < 99; i++ {
		r.Observe(100 * time.Microsecond)
	}
	r.Observe(80 * time.Millisecond)
	s := r.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 80*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P50 < 100*time.Microsecond || s.P50 >= time.Millisecond {
		t.Fatalf("p50 = %v, want within 2x of 100µs", s.P50)
	}
	if s.P99 > s.Max || s.P99 < s.P50 {
		t.Fatalf("p99 = %v outside [p50=%v, max=%v]", s.P99, s.P50, s.Max)
	}
	if s.Mean <= 0 || s.Mean > s.Max {
		t.Fatalf("mean = %v out of range", s.Mean)
	}
}

func TestEndpointStats(t *testing.T) {
	es := NewEndpointStats()
	es.Recorder("a").Observe(time.Millisecond)
	es.Recorder("a").Observe(2 * time.Millisecond)
	es.Recorder("b").Observe(time.Second)
	snap := es.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(snap))
	}
	if snap["a"].Count != 2 || snap["b"].Count != 1 {
		t.Fatalf("counts wrong: %+v", snap)
	}
}
