package stream

import (
	"context"
	"sync"
	"time"

	"repro/internal/trace"
)

// ServiceConfig assembles a full pipeline.
type ServiceConfig struct {
	Window WindowConfig
	Ingest IngesterConfig
	// Telemetry, when set, instruments the whole pipeline (ingester,
	// apply path, fan-out). nil runs the zero-overhead no-op bundle.
	Telemetry *Metrics

	// flight, when set, records every batch and query of this pipeline
	// into the recorder's per-window rings. Injected by the registry
	// (always on there); standalone services run unrecorded.
	flight *trace.Recorder
}

// Service wires producers → Ingester → WindowManager: the ingester's flush
// goroutine is the window's single writer, and when time-based expiry is
// configured a background ticker ages the window out even while the stream
// is idle.
type Service struct {
	wm    *WindowManager
	ing   *Ingester
	clock Clock

	stopTicker chan struct{}
	tickerWG   sync.WaitGroup
	closeOnce  sync.Once
}

// withClockDefaults cross-defaults the two clocks so a single injected
// clock drives both the ingester and the window.
func (cfg ServiceConfig) withClockDefaults() ServiceConfig {
	if cfg.Ingest.Clock == nil {
		cfg.Ingest.Clock = cfg.Window.Clock
	}
	if cfg.Window.Clock == nil {
		cfg.Window.Clock = cfg.Ingest.Clock
	}
	return cfg
}

// NewService builds and starts a streaming service.
func NewService(cfg ServiceConfig) (*Service, error) {
	cfg = cfg.withClockDefaults()
	wm, err := NewWindowManager(cfg.Window)
	if err != nil {
		return nil, err
	}
	return newServiceWith(wm, cfg), nil
}

// newServiceWith starts the pipeline over an existing window manager; the
// recovery path uses it after replaying the WAL into a fresh manager
// (replay must not flow through an ingester that is already accepting new
// edges). cfg must already have its clock defaults applied and must be the
// config wm was built from.
func newServiceWith(wm *WindowManager, cfg ServiceConfig) *Service {
	s := &Service{
		wm:         wm,
		clock:      wm.cfg.Clock,
		stopTicker: make(chan struct{}),
	}
	// Telemetry attaches before the ingester starts (so no live batch can
	// race the bundle swap) and — on the recovery path — after replay, so
	// replay mega-batches don't pollute the live-traffic histograms. The
	// flight rings attach at the same point (and for the same reason:
	// recovery replay is not live traffic and records no traces).
	wm.setTelemetry(cfg.Telemetry)
	var onFlush func(enqNS, admitNS int64)
	if cfg.flight != nil {
		names := wm.Monitors()
		wm.setFlight(
			cfg.flight.Ring(wm.cfg.Name, trace.KindBatch, names),
			cfg.flight.Ring(wm.cfg.Name, trace.KindQuery, names),
		)
		onFlush = wm.noteEnqueueTime
	}
	s.ing = newIngesterWith(cfg.Ingest, wm.Apply, cfg.Telemetry, onFlush)
	if cfg.Window.MaxAge > 0 {
		period := cfg.Window.MaxAge / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		s.tickerWG.Add(1)
		go s.expireLoop(period)
	}
	return s
}

func (s *Service) expireLoop(period time.Duration) {
	defer s.tickerWG.Done()
	for {
		select {
		case <-s.clock.After(period):
			s.wm.ExpireByAge(s.clock.Now())
		case <-s.stopTicker:
			return
		}
	}
}

// Submit enqueues edges for ingestion (callable from many goroutines). The
// slice is copied; the caller keeps ownership.
func (s *Service) Submit(edges []Edge) error { return s.ing.SubmitBatch(edges) }

// submitOwned enqueues a slice whose ownership transfers to the pipeline,
// skipping the defensive copy; for callers that build a fresh batch per
// call (the HTTP handler).
func (s *Service) submitOwned(edges []Edge) error { return s.ing.submitOwned(edges) }

// submitOwnedDurable enqueues an owned slice and blocks until the batch
// holding it is durably applied (WAL append + fsync) — the sync-ack
// ingest path. See Ingester.submitOwnedDurable for the ctx semantics.
func (s *Service) submitOwnedDurable(ctx context.Context, edges []Edge) error {
	return s.ing.submitOwnedDurable(ctx, edges)
}

// setDurableSync attaches the durability escalator durable acks wait on;
// the persistence layer wires the window's wal.Log.Sync through it.
func (s *Service) setDurableSync(fn func() error) { s.ing.setDurableSync(fn) }

// Durable reports whether the pipeline has a durability layer — whether a
// sync ack can actually mean "fsynced".
func (s *Service) Durable() bool { return s.ing.durable() }

// SyncAckDefault reports whether this window acknowledges durably by
// default (WindowConfig.SyncAck); requests override per-call.
func (s *Service) SyncAckDefault() bool { return s.wm.cfg.SyncAck }

// Flush synchronously pushes everything submitted so far into the window.
func (s *Service) Flush() { s.ing.Flush() }

// Window exposes the query surface.
func (s *Service) Window() *WindowManager { return s.wm }

// IngestStats returns edges accepted and batches flushed by the ingester.
func (s *Service) IngestStats() (edges, batches int64) { return s.ing.Stats() }

// QueueDepth returns the ingest queue depth in submissions and edges.
func (s *Service) QueueDepth() (batches, edges int64) { return s.ing.QueueDepth() }

// QueueCap returns the ingest submission-queue capacity.
func (s *Service) QueueCap() int { return s.ing.QueueCap() }

// QueueBytes returns the in-memory bytes of queued edges.
func (s *Service) QueueBytes() int64 { return s.ing.QueueBytes() }

// QueueBudget returns the configured edge/byte admission budgets
// (0 = unlimited).
func (s *Service) QueueBudget() (maxEdges, maxBytes int64) { return s.ing.QueueBudget() }

// RejectStats returns submissions and edges turned away by admission
// control.
func (s *Service) RejectStats() (subs, edges int64) { return s.ing.RejectStats() }

// Close drains the ingester and stops the pipeline.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.ing.Close()
		close(s.stopTicker)
		s.tickerWG.Wait()
	})
}
