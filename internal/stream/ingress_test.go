package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// postRaw POSTs a body to path and returns the response with its decoded
// JSON (nil when the body is not an object).
func postRaw(t *testing.T, ts *httptest.Server, path, ctype, body string) (*http.Response, map[string]any) {
	t.Helper()
	res, err := ts.Client().Post(ts.URL+path, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer res.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(res.Body).Decode(&m)
	return res, m
}

// TestServerAdmissionReject429 drives a POST past the edge budget and
// checks the whole 429 contract: status, Retry-After header, machine-
// readable body, reject counters on /metrics and /stats — and that the
// rejected edges never reached the WAL (a recovered registry holds only
// the accepted ones).
func TestServerAdmissionReject429(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Telemetry: telemetry.NewRegistry(),
		Template: ServiceConfig{
			Window: WindowConfig{N: 64},
			// Budget of 4: the 8-edge POST below could never fit and is
			// rejected deterministically even on an idle queue.
			Ingest: IngesterConfig{MaxBatch: 4, MaxDelay: time.Millisecond, MaxQueueEdges: 4},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create(DefaultWindow, reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, ServerConfig{}).Handler())
	defer ts.Close()

	over := `{"edges":[{"u":0,"v":1},{"u":1,"v":2},{"u":2,"v":3},{"u":3,"v":4},{"u":4,"v":5},{"u":5,"v":6},{"u":6,"v":7},{"u":7,"v":8}]}`
	res, body := postRaw(t, ts, "/edges", "application/json", over)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget POST: status %d, want 429", res.StatusCode)
	}
	if ra := res.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	} else if ra != "1" {
		t.Fatalf("Retry-After = %q, want %q (the default budget backoff)", ra, "1")
	}
	if body["reason"] != "edges" {
		t.Fatalf("429 body reason = %v, want edges", body["reason"])
	}
	if ms, ok := body["retry_after_ms"].(float64); !ok || ms <= 0 {
		t.Fatalf("429 body retry_after_ms = %v, want > 0", body["retry_after_ms"])
	}

	// An in-budget POST still lands.
	res, body = postRaw(t, ts, "/edges", "application/json", `{"edges":[{"u":0,"v":1},{"u":1,"v":2},{"u":2,"v":3}]}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("in-budget POST: status %d, want 202", res.StatusCode)
	}
	if body["accepted"] != float64(3) {
		t.Fatalf("accepted = %v, want 3", body["accepted"])
	}
	svc.Flush()

	// The reject counters: exposition and /stats agree.
	mres, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ParseExposition(mres.Body)
	mres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("sw_ingest_rejected_total", map[string]string{"reason": "edges"}); !ok || v != 1 {
		t.Fatalf("sw_ingest_rejected_total{reason=edges} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := exp.Value("sw_ingest_rejected_edges_total", map[string]string{"reason": "edges"}); !ok || v != 8 {
		t.Fatalf("sw_ingest_rejected_edges_total{reason=edges} = %v (ok=%v), want 8", v, ok)
	}
	var stats struct {
		Ingest struct {
			RejectedBatches  int64 `json:"rejected_batches"`
			RejectedEdges    int64 `json:"rejected_edges"`
			QueueBudgetEdges int64 `json:"queue_budget_edges"`
		} `json:"ingest"`
	}
	sres, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sres.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sres.Body.Close()
	if stats.Ingest.RejectedBatches != 1 || stats.Ingest.RejectedEdges != 8 {
		t.Fatalf("stats rejected = (%d, %d), want (1, 8)", stats.Ingest.RejectedBatches, stats.Ingest.RejectedEdges)
	}
	if stats.Ingest.QueueBudgetEdges != 4 {
		t.Fatalf("stats queue_budget_edges = %d, want 4", stats.Ingest.QueueBudgetEdges)
	}
	reg.Close()

	// Nothing rejected may have touched the WAL: recovery sees exactly the
	// accepted edges.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Edges != 3 {
		t.Fatalf("recovered %d edges, want 3 (the accepted POST only)", rep.Edges)
	}
}

// TestServerNDJSONIngest: the compact format round-trips through the real
// handler — query-param and content-type routing, weights, explicit event
// times — and malformed lines map to 400 with the offending line number.
func TestServerNDJSONIngest(t *testing.T) {
	srv, reg := newTelemetryServer(t, RegistryConfig{}, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	svc, _ := reg.Get(DefaultWindow)

	body := "[1,2]\n[2,3,5]\n\n  [3,4,7,123456789]  \n"
	res, m := postRaw(t, ts, "/edges?format=ndjson", "application/x-ndjson", body)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("ndjson POST: status %d (%v), want 202", res.StatusCode, m)
	}
	if m["accepted"] != float64(3) {
		t.Fatalf("accepted = %v, want 3", m["accepted"])
	}
	// Content-type routing alone must select the fast path too.
	res, m = postRaw(t, ts, "/edges", "application/x-ndjson", "[4,5]\n")
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("content-type routed ndjson POST: status %d (%v), want 202", res.StatusCode, m)
	}
	svc.Flush()
	if got := svc.Window().WindowLen(); got != 4 {
		t.Fatalf("window holds %d edges after ndjson ingest, want 4", got)
	}
	if w, err := svc.Window().MSFWeight(); err != nil || w == 0 {
		t.Fatalf("MSFWeight after weighted ndjson ingest = %v (%v), want > 0", w, err)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"too few fields", "[1]\n"},
		{"too many fields", "[1,2,3,4,5]\n"},
		{"unterminated", "[1,2\n"},
		{"trailing garbage", "[1,2]x\n"},
		{"not an array", "{\"u\":1}\n"},
		{"bad digit", "[1,a]\n"},
		{"vertex out of int32", fmt.Sprintf("[%d,1]\n", int64(1)<<40)},
		{"self-loop", "[5,5]\n"},
		{"vertex out of window range", "[63,64]\n"}, // N=64: valid ids are 0..63
		{"empty body", "\n\n"},
	} {
		res, m := postRaw(t, ts, "/edges?format=ndjson", "application/x-ndjson", tc.body)
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", tc.name, res.StatusCode, m)
		}
	}
	// Line numbers in parse errors point at the bad line, not the batch.
	res, m = postRaw(t, ts, "/edges?format=ndjson", "application/x-ndjson", "[1,2]\n[bad\n")
	if res.StatusCode != http.StatusBadRequest || !strings.Contains(fmt.Sprint(m["error"]), "line 2") {
		t.Errorf("bad line 2: status %d, error %v — want 400 naming line 2", res.StatusCode, m["error"])
	}
}

// TestServerSyncAck: ?sync=1 blocks the 202 until the batch is durable,
// the response says whether durability is real (WAL attached) or not, and
// an abandoned-without-Close registry recovers every acknowledged edge —
// the kill-after-ack contract at the HTTP level.
func TestServerSyncAck(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 64},
			// MaxBatch 1: every edge flushes (and under fsync=batch, syncs)
			// immediately, so the sync'd POST never waits on a deadline.
			Ingest: IngesterConfig{MaxBatch: 1, MaxDelay: time.Millisecond},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncBatch},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultWindow, reg.Template()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, ServerConfig{}).Handler())

	res, m := postRaw(t, ts, "/edges?sync=1", "application/json",
		`{"edges":[{"u":1,"v":2},{"u":2,"v":3},{"u":3,"v":4}]}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("sync POST: status %d (%v), want 202", res.StatusCode, m)
	}
	if m["durable"] != true {
		t.Fatalf("sync POST on a durable registry: durable = %v, want true", m["durable"])
	}
	// Async POSTs must not carry the durable field — 202 means queued there.
	res, m = postRaw(t, ts, "/edges", "application/json", `{"edges":[{"u":4,"v":5}]}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: status %d, want 202", res.StatusCode)
	}
	if _, ok := m["durable"]; ok {
		t.Fatalf("async POST carries durable = %v; the field is sync-only", m["durable"])
	}
	ts.Close()

	// KILL: no Close, no flush — exactly the state after a SIGKILL on the
	// heels of the sync'd 202. The three acknowledged edges must recover.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Edges < 3 {
		t.Fatalf("recovered %d edges, want at least the 3 sync-acknowledged ones", rep.Edges)
	}

	// In-memory: sync still acks after apply, but must admit durability is
	// not real.
	srv, _ := newTelemetryServer(t, RegistryConfig{
		Template: ServiceConfig{Ingest: IngesterConfig{MaxBatch: 1, MaxDelay: time.Millisecond}},
	}, ServerConfig{})
	tsm := httptest.NewServer(srv.Handler())
	defer tsm.Close()
	res, m = postRaw(t, tsm, "/edges?sync=1", "application/json", `{"edges":[{"u":1,"v":2}]}`)
	if res.StatusCode != http.StatusAccepted || m["durable"] != false {
		t.Fatalf("in-memory sync POST: status %d durable %v, want 202/false", res.StatusCode, m["durable"])
	}
}

// TestServerSyncAckDefault: WindowConfig.SyncAck flips the per-window
// default, and ?sync=0 opts a request back out.
func TestServerSyncAckDefault(t *testing.T) {
	// SyncAck is deliberately not template-inherited (a bool can't signal
	// "unset"), so pass the template itself as the creation config — the
	// same dance cmd/swserver does.
	reg := NewRegistry(RegistryConfig{
		Telemetry: telemetry.NewRegistry(),
		Template: ServiceConfig{
			Window: WindowConfig{N: 64, SyncAck: true},
			Ingest: IngesterConfig{MaxBatch: 1, MaxDelay: time.Millisecond},
		},
	})
	t.Cleanup(reg.Close)
	svc, err := reg.Create(DefaultWindow, reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, ServerConfig{}).Handler())
	defer ts.Close()
	if !svc.SyncAckDefault() {
		t.Fatal("SyncAck template default did not reach the window")
	}
	res, m := postRaw(t, ts, "/edges", "application/json", `{"edges":[{"u":1,"v":2}]}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("default-sync POST: status %d, want 202", res.StatusCode)
	}
	if _, ok := m["durable"]; !ok {
		t.Fatal("default-sync POST missing the durable field: the SyncAck default was not applied")
	}
	res, m = postRaw(t, ts, "/edges?sync=0", "application/json", `{"edges":[{"u":2,"v":3}]}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("opt-out POST: status %d, want 202", res.StatusCode)
	}
	if _, ok := m["durable"]; ok {
		t.Fatal("?sync=0 did not override the window's SyncAck default")
	}
}

// TestReadyzEdgeBudget: a budgeted window flips /readyz on queued EDGES
// against the admission budget — not on queued submissions against the
// channel capacity — once utilization crosses ServerConfig.QueueBudget.
func TestReadyzEdgeBudget(t *testing.T) {
	srv, reg := newTelemetryServer(t, RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 64},
			Ingest: IngesterConfig{MaxBatch: 1, MaxDelay: time.Hour, QueueLen: 16, MaxQueueEdges: 8},
		},
	}, ServerConfig{QueueBudget: 0.5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	svc, _ := reg.Get(DefaultWindow)

	status := func() int {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if got := status(); got != 200 {
		t.Fatalf("/readyz idle = %d, want 200", got)
	}

	// Wedge the window's writer lock so the flush goroutine blocks inside
	// its first apply; everything submitted after that stays queued.
	w := svc.Window()
	w.writerMu.Lock()
	if err := svc.Submit([]Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	// Wait for the flush goroutine to absorb the wedge edge, then queue 7
	// more: 7 of the 8-edge budget is over the 50% readiness budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, qEdges := svc.QueueDepth(); qEdges == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flush goroutine never absorbed the wedge submission")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 7; i++ {
		if err := svc.Submit([]Edge{{U: int32(i), V: int32(i + 8)}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	_ = json.NewDecoder(res.Body).Decode(&health)
	res.Body.Close()
	if res.StatusCode != 503 {
		t.Fatalf("/readyz with 7/8 edges queued = %d (%v), want 503", res.StatusCode, health)
	}
	if !strings.Contains(fmt.Sprint(health), "edges") {
		t.Fatalf("queue_budget failure does not name edge units: %v", health)
	}

	w.writerMu.Unlock()
	svc.Flush()
	if got := status(); got != 200 {
		t.Fatalf("/readyz after drain = %d, want 200", got)
	}
}
