package stream

import (
	"math/rand"
	"testing"
	"time"
)

// TestLevelsParallelMatchesSequential is the intra-monitor differential:
// two identically-seeded windows — one fork-joining the msfweight
// connectivity levels with a real worker budget, one forced to sequential
// level application (ApplyParallelism: 1) — must answer every query
// identically at every point of a randomized weighted insert/expire
// schedule. Recency weights make each level's forest canonical in the
// arrival sequence, so any divergence means the level fan-out leaked state
// (prefix routing wrong, shared scratch raced, τ assignment reordered).
// CI runs this under -race, which additionally checks the level fork-join
// region for data races between levels.
func TestLevelsParallelMatchesSequential(t *testing.T) {
	const (
		n      = 120
		window = 400
		rounds = 60
	)
	base := WindowConfig{
		N:           n,
		Seed:        177,
		MaxArrivals: window,
		MaxAge:      time.Minute,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
	}
	fc := NewFakeClock(time.Unix(0, 0))
	parCfg, seqCfg := base, base
	parCfg.Clock, seqCfg.Clock = fc, fc
	parCfg.ApplyParallelism = 4 // caller + 3 aux: real cross-goroutine level application
	seqCfg.ApplyParallelism = 1
	par, err := NewWindowManager(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewWindowManager(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.ApplyParallelism() != 4 || seq.ApplyParallelism() != 1 {
		t.Fatalf("parallelism not wired through: %d / %d",
			par.ApplyParallelism(), seq.ApplyParallelism())
	}

	r := rand.New(rand.NewSource(31))
	for round := 0; round < rounds; round++ {
		batch := randomEdges(r, n, 1+r.Intn(80))
		now := fc.Now()
		for i := range batch {
			batch[i].T = now
			batch[i].W = 1 + r.Int63n(1<<10)
		}
		batchCopy := make([]Edge, len(batch))
		copy(batchCopy, batch)
		par.Apply(batch)
		seq.Apply(batchCopy)

		fc.Advance(time.Duration(r.Intn(20)) * time.Second)
		if r.Intn(3) == 0 {
			nExp := par.ExpireByAge(fc.Now())
			if got := seq.ExpireByAge(fc.Now()); got != nExp {
				t.Fatalf("round %d: expiry diverged: parallel %d, sequential %d", round, nExp, got)
			}
		}

		a, e1 := par.MSFWeight()
		b, e2 := seq.MSFWeight()
		if e1 != nil || e2 != nil {
			t.Fatalf("round %d: msfweight errored: %v / %v", round, e1, e2)
		}
		if a != b {
			t.Fatalf("round %d: msfweight = %v (parallel levels) vs %v (sequential levels)", round, a, b)
		}
		ca, e1 := par.NumComponents()
		cb, e2 := seq.NumComponents()
		if e1 != nil || e2 != nil {
			t.Fatalf("round %d: components errored: %v / %v", round, e1, e2)
		}
		if ca != cb {
			t.Fatalf("round %d: components = %d vs %d", round, ca, cb)
		}
	}
}
