package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// blockingSink returns a sink that parks on release after signalling
// entered (buffered, so only the first call signals without blocking).
func blockingSink(entered chan<- struct{}, release <-chan struct{}) func([]Edge) error {
	return func([]Edge) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
}

func wantAdmission(t *testing.T, err error, reason string) *AdmissionError {
	t.Helper()
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("err = %v, want AdmissionError", err)
	}
	if adm.Reason != reason {
		t.Fatalf("reject reason = %q, want %q", adm.Reason, reason)
	}
	if adm.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", adm.RetryAfter)
	}
	return adm
}

// TestIngesterEdgeBudgetReject fills the queue behind a wedged sink and
// checks the edge budget rejects instead of parking, without disturbing
// what is already queued.
func TestIngesterEdgeBudgetReject(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	g := NewIngester(IngesterConfig{MaxBatch: 1, MaxDelay: time.Hour, QueueLen: 64, MaxQueueEdges: 8},
		blockingSink(entered, release))
	defer func() { close(release); g.Close() }()

	// First submission is absorbed and wedges the sink; its edge no longer
	// counts against the queue budget (it is being applied, not queued).
	if err := g.Submit(Edge{U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Two four-edge submissions fill the budget exactly.
	for i := 0; i < 2; i++ {
		if err := g.SubmitBatch(make([]Edge, 4)); err != nil {
			t.Fatalf("submission %d within budget rejected: %v", i, err)
		}
	}
	err := g.SubmitBatch(make([]Edge, 4))
	wantAdmission(t, err, "edges")
	if subs, edges := g.RejectStats(); subs != 1 || edges != 4 {
		t.Fatalf("RejectStats = (%d, %d), want (1, 4)", subs, edges)
	}
	// The rejected submission must not have perturbed the queue gauges.
	if _, qEdges := g.QueueDepth(); qEdges != 8 {
		t.Fatalf("queued edges after reject = %d, want 8", qEdges)
	}
	if got, want := g.QueueBytes(), 8*edgeMemBytes; got != want {
		t.Fatalf("QueueBytes after reject = %d, want %d", got, want)
	}
}

// TestIngesterOversizedSubmissionRejects: a single submission larger than
// the edge budget is rejected deterministically, even on an idle queue —
// it could never be admitted, so failing fast beats parking forever.
func TestIngesterOversizedSubmissionRejects(t *testing.T) {
	g := NewIngester(IngesterConfig{MaxBatch: 4, MaxQueueEdges: 8}, func([]Edge) error { return nil })
	defer g.Close()
	wantAdmission(t, g.SubmitBatch(make([]Edge, 9)), "edges")
	if _, qEdges := g.QueueDepth(); qEdges != 0 {
		t.Fatalf("queued edges after reject = %d, want 0", qEdges)
	}
}

// TestIngesterByteBudgetReject checks the byte budget and that a byte
// rejection rolls the already-charged edge gauge back.
func TestIngesterByteBudgetReject(t *testing.T) {
	g := NewIngester(IngesterConfig{MaxBatch: 16, MaxQueueBytes: 4 * edgeMemBytes},
		func([]Edge) error { return nil })
	defer g.Close()
	wantAdmission(t, g.SubmitBatch(make([]Edge, 5)), "bytes")
	if _, qEdges := g.QueueDepth(); qEdges != 0 {
		t.Fatalf("edge gauge not rolled back after byte reject: %d", qEdges)
	}
	if g.QueueBytes() != 0 {
		t.Fatalf("byte gauge not rolled back after byte reject: %d", g.QueueBytes())
	}
	if subs, edges := g.RejectStats(); subs != 1 || edges != 5 {
		t.Fatalf("RejectStats = (%d, %d), want (1, 5)", subs, edges)
	}
}

// TestIngesterRateLimit drives the token bucket with a FakeClock: a burst
// up to BurstEdges is admitted, the next edge is rejected with a computed
// Retry-After, and a second's refill admits again.
func TestIngesterRateLimit(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	g := NewIngester(IngesterConfig{MaxBatch: 64, MaxDelay: time.Hour, Clock: fc, MaxEdgesPerSec: 10},
		func([]Edge) error { return nil })
	defer g.Close()

	if err := g.SubmitBatch(make([]Edge, 10)); err != nil {
		t.Fatalf("burst within bucket rejected: %v", err)
	}
	adm := wantAdmission(t, g.Submit(Edge{U: 1, V: 2}), "rate")
	// One token refills in 100ms; the hint must say so, not the fixed
	// budget backoff.
	if adm.RetryAfter > 150*time.Millisecond {
		t.Fatalf("rate RetryAfter = %v, want ~100ms", adm.RetryAfter)
	}
	fc.Advance(time.Second)
	if err := g.SubmitBatch(make([]Edge, 10)); err != nil {
		t.Fatalf("refilled bucket rejected: %v", err)
	}
}

// TestIngesterBudgetRejectRefundsRate: a budget rejection must refund the
// rate tokens its submission took, so being over the queue budget does not
// also burn rate capacity.
func TestIngesterBudgetRejectRefundsRate(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	g := NewIngester(IngesterConfig{
		MaxBatch: 1, MaxDelay: time.Hour, Clock: fc, QueueLen: 64,
		MaxEdgesPerSec: 10, MaxQueueEdges: 4,
	}, blockingSink(entered, release))
	defer func() { close(release); g.Close() }()

	if err := g.Submit(Edge{U: 1, V: 2}); err != nil { // wedge the sink
		t.Fatal(err)
	}
	<-entered
	if err := g.SubmitBatch(make([]Edge, 4)); err != nil { // budget now full
		t.Fatal(err)
	}
	// 5 tokens remain. This submission passes the rate check, then the
	// edge budget rejects it — and refunds the 5 tokens.
	wantAdmission(t, g.SubmitBatch(make([]Edge, 5)), "edges")
	// Without the refund only 5 tokens would remain and this would be
	// rejected by rate; with it, 10 are available and the edge budget
	// (4 queued of 4) rejects again — proving the refund happened.
	wantAdmission(t, g.SubmitBatch(make([]Edge, 4)), "edges")
}

// TestIngesterDurableAck: submitOwnedDurable returns only after the flush
// and the durability escalator ran, and propagates both sink and syncer
// failures.
func TestIngesterDurableAck(t *testing.T) {
	t.Run("success", func(t *testing.T) {
		var mu sync.Mutex
		var sunk, synced int
		g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour}, func(b []Edge) error {
			mu.Lock()
			sunk += len(b)
			mu.Unlock()
			return nil
		})
		defer g.Close()
		g.setDurableSync(func() error {
			mu.Lock()
			synced++
			mu.Unlock()
			return nil
		})
		if !g.durable() {
			t.Fatal("durable() = false with a syncer attached")
		}
		// Exactly MaxBatch edges: the threshold flush fires immediately, so
		// the ack cannot be waiting on a deadline.
		if err := g.submitOwnedDurable(context.Background(), make([]Edge, 4)); err != nil {
			t.Fatalf("durable submit: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		if sunk != 4 {
			t.Fatalf("ack delivered before the sink ran: sunk = %d", sunk)
		}
		if synced == 0 {
			t.Fatal("ack delivered without the durability escalator running")
		}
	})
	t.Run("sink error", func(t *testing.T) {
		sinkErr := errors.New("append failed")
		g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour},
			func([]Edge) error { return sinkErr })
		defer g.Close()
		if err := g.submitOwnedDurable(context.Background(), make([]Edge, 4)); !errors.Is(err, sinkErr) {
			t.Fatalf("durable submit = %v, want %v", err, sinkErr)
		}
	})
	t.Run("syncer error", func(t *testing.T) {
		syncErr := errors.New("fsync failed")
		g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour},
			func([]Edge) error { return nil })
		defer g.Close()
		g.setDurableSync(func() error { return syncErr })
		if err := g.submitOwnedDurable(context.Background(), make([]Edge, 4)); !errors.Is(err, syncErr) {
			t.Fatalf("durable submit = %v, want %v", err, syncErr)
		}
	})
	t.Run("split submission acks on last edge", func(t *testing.T) {
		// 10 edges over MaxBatch 4 flush as 4+4+2; the ack must arrive only
		// once the final remainder is applied (the manual Flush pushes it).
		var mu sync.Mutex
		var sunk int
		g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour}, func(b []Edge) error {
			mu.Lock()
			sunk += len(b)
			mu.Unlock()
			return nil
		})
		defer g.Close()
		done := make(chan error, 1)
		go func() { done <- g.submitOwnedDurable(context.Background(), make([]Edge, 10)) }()
		// The two threshold flushes cover 8 edges; the ack waits on the
		// remainder.
		select {
		case err := <-done:
			t.Fatalf("ack before the remainder flushed: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		g.Flush()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("durable submit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ack never delivered after the final flush")
		}
		mu.Lock()
		defer mu.Unlock()
		if sunk != 10 {
			t.Fatalf("sunk %d edges, want 10", sunk)
		}
	})
}

// TestIngesterCloseUnparksSubmitters is the shutdown-latency regression
// test: producers parked on a full queue must unpark with ErrClosed as
// soon as Close begins — even while the sink is still wedged mid-flush —
// instead of holding Close hostage to the backlog drain.
func TestIngesterCloseUnparksSubmitters(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	g := NewIngester(IngesterConfig{MaxBatch: 1, MaxDelay: time.Hour, QueueLen: 1},
		blockingSink(entered, release))

	if err := g.Submit(Edge{U: 1, V: 2}); err != nil { // absorbed; wedges the sink
		t.Fatal(err)
	}
	<-entered
	if err := g.Submit(Edge{U: 2, V: 3}); err != nil { // fills the 1-slot queue
		t.Fatal(err)
	}
	const parked = 4
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func() { errs <- g.Submit(Edge{U: 3, V: 4}) }()
	}
	// Let the submitters reach the channel send and park.
	time.Sleep(50 * time.Millisecond)

	closed := make(chan struct{})
	go func() { g.Close(); close(closed) }()
	// The parked submitters must resolve promptly — before the sink is
	// released, so the only thing that can have unparked them is abort.
	for i := 0; i < parked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked submit = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("submitter still parked after Close began")
		}
	}
	select {
	case <-closed:
		t.Fatal("Close returned with the sink still wedged mid-flush")
	default:
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not complete after the sink was released")
	}
	// The abandoned sends rolled their gauges back; only the absorbed and
	// drained submissions were real.
	if qBatches, qEdges := g.QueueDepth(); qBatches != 0 || qEdges != 0 {
		t.Fatalf("queue gauges after Close = (%d, %d), want (0, 0)", qBatches, qEdges)
	}
	if edges, _ := g.Stats(); edges != 2 {
		t.Fatalf("accepted edges = %d, want 2 (the parked submissions were rejected)", edges)
	}
}

// TestRegistryClosePromptWithParkedSubmitters: the same property one layer
// up — Registry.Close with producers parked on a full ingest queue
// completes promptly (the real sink applies and finishes, so this bounds
// end-to-end shutdown, not just the ingester's part).
func TestRegistryClosePromptWithParkedSubmitters(t *testing.T) {
	reg := NewRegistry(RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 64},
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour, QueueLen: 1},
		},
	})
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	// With MaxDelay an hour and the threshold unreachable, nothing flushes:
	// submissions pile into the 1-slot queue and the rest park.
	const parked = 8
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := svc.Submit([]Edge{{U: int32(i), V: int32(i + 1)}})
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("parked submit = %v, want nil or ErrClosed", err)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() { reg.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Registry.Close blocked behind parked submitters")
	}
	wg.Wait()
}

// TestIngesterSubmitContextCancel: a submission parked on a full queue
// unparks with the context's error and rolls its admission charges back.
func TestIngesterSubmitContextCancel(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	g := NewIngester(IngesterConfig{MaxBatch: 1, MaxDelay: time.Hour, QueueLen: 1},
		blockingSink(entered, release))
	defer func() { close(release); g.Close() }()

	if err := g.Submit(Edge{U: 1, V: 2}); err != nil { // wedge the sink
		t.Fatal(err)
	}
	<-entered
	if err := g.Submit(Edge{U: 2, V: 3}); err != nil { // fill the queue
		t.Fatal(err)
	}
	qBatches, qEdges := g.QueueDepth()
	bytes := g.QueueBytes()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := g.SubmitBatchContext(ctx, make([]Edge, 3)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parked submit = %v, want DeadlineExceeded", err)
	}
	if b, e := g.QueueDepth(); b != qBatches || e != qEdges {
		t.Fatalf("queue gauges after cancel = (%d, %d), want (%d, %d)", b, e, qBatches, qEdges)
	}
	if got := g.QueueBytes(); got != bytes {
		t.Fatalf("QueueBytes after cancel = %d, want %d", got, bytes)
	}
}
