package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNoMonitor is wrapped by query methods whose monitor is not configured.
var ErrNoMonitor = errors.New("stream: monitor not configured")

// WindowConfig describes one managed window.
type WindowConfig struct {
	// N is the number of vertices (vertex ids are [0, N)).
	N int
	// Seed drives every randomized structure in the window.
	Seed uint64
	// Monitors names the monitors to maintain; empty means all of them.
	Monitors []string
	// Monitor carries per-monitor tuning (eps, max weight, k).
	Monitor MonitorConfig
	// MaxArrivals caps the window at the most recent MaxArrivals edges
	// (count-based expiry). 0 disables the cap.
	MaxArrivals int
	// MaxAge expires arrivals whose event time is older than MaxAge
	// (time-based expiry). 0 disables it. The window structures can only
	// expire arrival-order prefixes, so recorded event times are clamped
	// monotone non-decreasing and never in the future — an edge carrying
	// an out-of-order or future timestamp ages out as if it had arrived
	// in order, rather than stalling expiry for everything after it.
	MaxAge time.Duration
	// Clock defaults to RealClock; tests inject FakeClock.
	Clock Clock
	// SequentialFanout forces one-monitor-at-a-time batch application
	// instead of the default parallel fork-join across monitors. The
	// answers are identical either way (monitors are independent); the
	// switch exists for measurement (swload -fanout-compare) and for
	// pinning down fan-out bugs.
	SequentialFanout bool
}

// WindowStats is a point-in-time snapshot of a window's counters.
type WindowStats struct {
	Arrivals  int64 `json:"arrivals"`   // edges ever inserted
	Expired   int64 `json:"expired"`    // edges ever expired
	WindowLen int64 `json:"window_len"` // unexpired arrivals
	Batches   int64 `json:"batches"`    // Apply calls with ≥1 valid edge
	Dropped   int64 `json:"dropped"`    // out-of-range or self-loop edges
	// ApplyNS is the cumulative wall time (nanoseconds) Apply calls
	// carrying ≥1 valid edge spent mutating the monitors under the write
	// lock — insert fan-out plus the inline expiry. Counted exactly when
	// Batches is, so ApplyNS/Batches is the mean write-lock hold per
	// batch — the number the parallel fan-out attacks and swload
	// -fanout-compare reports. Ticker-driven ExpireByAge holds are not
	// included (they would skew the per-batch mean on idle streams).
	ApplyNS int64 `json:"apply_ns"`
}

// WindowManager owns one window's monitors behind a single-writer /
// many-reader discipline: Apply and ExpireByAge serialize all mutation
// under the write lock (in the service pipeline they are only ever called
// from the ingester's flush goroutine and the expiry ticker), while query
// methods take the read lock and so run concurrently with each other.
// Because the Multiplexer feeds every monitor every batch, one (tau, tw)
// pair describes the window of all monitors — uniform timestamp
// advancement.
type WindowManager struct {
	mu  sync.RWMutex
	cfg WindowConfig
	mux *Multiplexer

	// rec, when set, is handed every valid batch (event times already
	// clamped) before the monitors see it — the write-ahead hook the
	// durability layer logs through. Called under the write lock, so
	// record order is exactly apply order and the logged arrival indices
	// line up with the stats counters.
	rec func([]Edge)

	// live holds the unexpired arrivals in arrival order, oldest at
	// live[head] — the canonical window content LiveEdges serves to the
	// snapshot layer. Event times are the post-clamp values (when MaxAge >
	// 0 they are clamped into [lastT, now] on insert so the sequence is
	// monotone and prefix-expiry is sound against out-of-order or future
	// timestamps); time-based expiry reads them back from here. The ring
	// is a constant-factor memory overhead next to the monitors (which
	// retain the whole window anyway), but it is still only maintained
	// when something reads it: time-based expiry (MaxAge > 0) or the
	// durability layer (retain, below) — a plain in-memory count-only
	// window keeps no ring at all.
	live  []Edge
	head  int
	lastT int64
	// retain marks the ring as maintained. Set at construction for
	// MaxAge > 0, by enableLiveRetention (recovery, before replay applies
	// anything), and by setRecorder (window creation, before the window is
	// published) — always before the first arrival, so the ring is never
	// missing a prefix.
	retain bool

	stats WindowStats
}

// NewWindowManager builds a window and its monitors.
func NewWindowManager(cfg WindowConfig) (*WindowManager, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("stream: window needs N > 0, got %d", cfg.N)
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	mux, err := NewMultiplexer(cfg.Monitors, cfg.N, cfg.Monitor, cfg.Seed, cfg.SequentialFanout)
	if err != nil {
		return nil, err
	}
	return &WindowManager{cfg: cfg, mux: mux, retain: cfg.MaxAge > 0}, nil
}

// N returns the vertex-set size.
func (w *WindowManager) N() int { return w.cfg.N }

// Monitors lists the configured monitor names.
func (w *WindowManager) Monitors() []string { return w.mux.Names() }

// Apply inserts a batch and runs the expiry policy — the single-writer
// entry point, called by the ingester's flush goroutine. Invalid edges
// (endpoints outside [0, N), self-loops) are dropped and counted; the batch
// slice may be compacted in place, so the caller yields ownership.
func (w *WindowManager) Apply(batch []Edge) {
	w.mu.Lock()
	defer w.mu.Unlock()

	valid := batch[:0]
	n32 := int32(w.cfg.N)
	for _, e := range batch {
		if e.U < 0 || e.U >= n32 || e.V < 0 || e.V >= n32 || e.U == e.V {
			w.stats.Dropped++
			continue
		}
		valid = append(valid, e)
	}
	now := w.cfg.Clock.Now()
	if len(valid) > 0 {
		// Clamp event times before recording so the durability log
		// carries exactly the times expiry will see again on replay (the
		// clamp is monotone, so re-clamping logged times is a no-op).
		if w.cfg.MaxAge > 0 {
			nowNS := now.UnixNano()
			for i := range valid {
				t := valid[i].T.UnixNano()
				if t > nowNS {
					t = nowNS
				}
				if t < w.lastT {
					t = w.lastT
				}
				w.lastT = t
				valid[i].T = time.Unix(0, t)
			}
		}
		// Retain the arrivals (append copies the edge values; the batch
		// slice goes back to the caller) so LiveEdges can serve the window
		// content in arrival order under any expiry mode.
		if w.retain {
			w.live = append(w.live, valid...)
		}
		if w.rec != nil {
			w.rec(valid)
		}
		// ApplyNS times the monitor mutation with the monotonic wall
		// clock, deliberately not the injected Clock: FakeClock time does
		// not advance during a call, and the stat must reflect real lock
		// hold time.
		applyStart := time.Now()
		defer func() { w.stats.ApplyNS += time.Since(applyStart).Nanoseconds() }()
		w.mux.BatchInsert(valid)
		w.stats.Arrivals += int64(len(valid))
		w.stats.Batches++
	}
	w.expireLocked(now)
}

// setRecorder installs the write-ahead hook batches are logged through.
// Must be installed before any producer can reach Apply (the registry
// attaches it while the window is still unpublished). A recorded window
// is a durable one, so retention turns on: checkpoint snapshots will
// read LiveEdges.
func (w *WindowManager) setRecorder(rec func([]Edge)) {
	w.mu.Lock()
	w.rec = rec
	w.retain = true
	w.mu.Unlock()
}

// enableLiveRetention turns on live-edge retention ahead of the first
// Apply. The recovery path calls it before replaying (the recorder —
// which also enables retention — attaches only after replay, so it must
// not be the thing that turns the ring on).
func (w *WindowManager) enableLiveRetention() {
	w.mu.Lock()
	w.retain = true
	w.mu.Unlock()
}

// Watermark returns the expiry low-watermark: the number of arrivals this
// manager has expired. The durability layer persists it (offset by the
// recovery base) so restarts replay only the unexpired suffix.
func (w *WindowManager) Watermark() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stats.Expired
}

// LiveEdges calls fn exactly once with the expiry watermark (arrivals
// expired so far) and the unexpired arrivals in arrival order — the
// canonical window content: count/time/both expiry have already trimmed
// the prefix, and event times are the post-clamp values the WAL logged,
// so re-applying the slice as one batch reproduces the window state
// exactly (recency weights make the forests canonical in the arrival
// sequence). fn runs under the read lock: queries proceed concurrently,
// mutation waits, and the (watermark, edges) pair is atomic — no arrival
// can land or expire between the two. fn must not retain the slice.
//
// Fails on a window that never enabled retention (in-memory, count-only
// expiry): serving a partial ring as "the window" would be silent data
// loss.
func (w *WindowManager) LiveEdges(fn func(expired int64, live []Edge) error) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if !w.retain {
		return errors.New("stream: window does not retain live edges (no durability layer and no time-based expiry)")
	}
	return fn(w.stats.Expired, w.live[w.head:])
}

// ExpireByAge runs the time-based expiry policy without inserting anything;
// the service's expiry ticker calls it so idle streams still age out.
func (w *WindowManager) ExpireByAge(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	before := w.stats.Expired
	w.expireLocked(now)
	return int(w.stats.Expired - before)
}

func (w *WindowManager) expireLocked(now time.Time) {
	delta := 0
	if w.cfg.MaxAge > 0 {
		cutoff := now.Add(-w.cfg.MaxAge).UnixNano()
		for w.head+delta < len(w.live) && w.live[w.head+delta].T.UnixNano() <= cutoff {
			delta++
		}
	}
	if w.cfg.MaxArrivals > 0 {
		if excess := int(w.windowLenLocked()) - delta - w.cfg.MaxArrivals; excess > 0 {
			delta += excess
		}
	}
	if delta == 0 {
		return
	}
	if w.retain {
		w.head += delta
		// Compact the ring once the dead prefix dominates.
		if w.head > len(w.live)/2 && w.head > 1024 {
			w.live = append(w.live[:0], w.live[w.head:]...)
			w.head = 0
		}
	}
	w.mux.BatchExpire(delta)
	w.stats.Expired += int64(delta)
}

func (w *WindowManager) windowLenLocked() int64 {
	return w.stats.Arrivals - w.stats.Expired
}

// WindowLen returns the number of unexpired arrivals.
func (w *WindowManager) WindowLen() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.windowLenLocked()
}

// Stats snapshots the window counters.
func (w *WindowManager) Stats() WindowStats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := w.stats
	s.WindowLen = w.windowLenLocked()
	return s
}

// IsConnected reports window connectivity of u and v (conn monitor).
func (w *WindowManager) IsConnected(u, v int32) (bool, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if u < 0 || int(u) >= w.cfg.N || v < 0 || int(v) >= w.cfg.N {
		return false, fmt.Errorf("stream: vertex out of range [0, %d)", w.cfg.N)
	}
	m, ok := w.mux.Monitor(MonitorConn).(*connMonitor)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorConn)
	}
	return m.c.IsConnected(u, v), nil
}

// NumComponents returns the number of connected components of the window
// graph (conn monitor).
func (w *WindowManager) NumComponents() (int, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorConn).(*connMonitor)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorConn)
	}
	return m.c.NumComponents(), nil
}

// IsBipartite reports whether the window graph is bipartite.
func (w *WindowManager) IsBipartite() (bool, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorBipartite).(*bipartiteMonitor)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorBipartite)
	}
	return m.b.IsBipartite(), nil
}

// MSFWeight returns the (1+ε)-approximate MSF weight of the window graph.
func (w *WindowManager) MSFWeight() (float64, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorMSFWeight).(*msfWeightMonitor)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorMSFWeight)
	}
	return m.a.Weight(), nil
}

// CertificateSize returns the number of k-certificate edges.
func (w *WindowManager) CertificateSize() (int, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorKCert).(*kcertMonitor)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorKCert)
	}
	return m.k.Size(), nil
}

// EdgeConnectivityUpToK returns min(k, edge connectivity) of the window
// graph (kcert monitor).
func (w *WindowManager) EdgeConnectivityUpToK() (int, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorKCert).(*kcertMonitor)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorKCert)
	}
	return m.k.EdgeConnectivityUpToK(), nil
}

// HasCycle reports whether the window graph contains a cycle.
func (w *WindowManager) HasCycle() (bool, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.mux.Monitor(MonitorCycleFree).(*cycleFreeMonitor)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoMonitor, MonitorCycleFree)
	}
	return m.c.HasCycle(), nil
}
