package stream

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/trace"
)

// ErrNoMonitor is wrapped by query methods whose monitor is not configured.
var ErrNoMonitor = errors.New("stream: monitor not configured")

// ErrMonitorQuarantined is wrapped by query methods whose monitor is
// quarantined after an apply panic: the structure may be corrupt, so it is
// isolated (503, machine-readable reason) while a background rebuild
// replaces it. Every other monitor and window keeps serving.
var ErrMonitorQuarantined = errors.New("stream: monitor quarantined after apply panic")

// WindowConfig describes one managed window.
type WindowConfig struct {
	// Name identifies the window in trace/log output (slow-batch records,
	// recovery lines). Purely informational; "" is fine for tests.
	Name string
	// N is the number of vertices (vertex ids are [0, N)).
	N int
	// Seed drives every randomized structure in the window.
	Seed uint64
	// Monitors names the monitors to maintain; empty means all of them.
	Monitors []string
	// Monitor carries per-monitor tuning (eps, max weight, k).
	Monitor MonitorConfig
	// MaxArrivals caps the window at the most recent MaxArrivals edges
	// (count-based expiry). 0 disables the cap.
	MaxArrivals int
	// MaxAge expires arrivals whose event time is older than MaxAge
	// (time-based expiry). 0 disables it. The window structures can only
	// expire arrival-order prefixes, so recorded event times are clamped
	// monotone non-decreasing and never in the future — an edge carrying
	// an out-of-order or future timestamp ages out as if it had arrived
	// in order, rather than stalling expiry for everything after it.
	MaxAge time.Duration
	// Clock defaults to RealClock; tests inject FakeClock.
	Clock Clock
	// SyncAck makes durable acknowledgment the window's default ingest
	// mode: POST /edges blocks until the batch's WAL append (and fsync,
	// under fsync=batch) completes, so a 202 means durable, not queued.
	// Requests can override per-call with ?sync=0/1. Meaningless without
	// a durability layer.
	SyncAck bool
	// SequentialFanout forces one-monitor-at-a-time batch application
	// instead of the default parallel fork-join across monitors. The
	// answers are identical either way (monitors are independent); the
	// switch exists for measurement (swload -fanout-compare) and for
	// pinning down fan-out bugs.
	SequentialFanout bool
	// ApplyParallelism budgets the intra-monitor fork-join of the batch
	// apply — today the msfweight monitor's per-level fan-out, which also
	// covers expiry and recovery replay since they run through the same
	// entry points. 0 inherits: the registry's shared budget when the
	// window belongs to one, the process-wide GOMAXPROCS-sized budget
	// otherwise. 1 forces sequential level application (the measurement /
	// differential-debug mode behind swload -seq-levels). p > 1 sizes a
	// private budget of the caller plus p-1 auxiliary workers — honoured
	// on standalone windows; inside a registry the budget is shared and
	// sized from the registry template, so N windows × R levels cannot
	// stampede goroutines multiplicatively.
	ApplyParallelism int

	// workers is the resolved shared worker budget a registry injects into
	// the windows it creates; nil on standalone windows. A per-window
	// ApplyParallelism of 1 still overrides it with an empty budget.
	workers *parallel.Limiter
}

// WindowStats is a point-in-time snapshot of a window's counters.
type WindowStats struct {
	Arrivals  int64 `json:"arrivals"`   // edges ever inserted
	Expired   int64 `json:"expired"`    // edges ever expired
	WindowLen int64 `json:"window_len"` // unexpired arrivals
	Batches   int64 `json:"batches"`    // Apply calls with ≥1 valid edge
	Dropped   int64 `json:"dropped"`    // out-of-range or self-loop edges
	// ApplyNS is the cumulative wall time (nanoseconds) the writer spent
	// in the monitor fan-out for Apply calls carrying ≥1 valid edge —
	// lock acquisition plus insert plus inline expiry, wall clock across
	// the whole fan-out (so under parallel fan-out it tracks the max
	// monitor cost, not the sum). Counted exactly when Batches is, so
	// ApplyNS/Batches is the mean apply latency per batch — the number
	// swload -fanout-compare reports. Ticker-driven ExpireByAge is not
	// included (it would skew the per-batch mean on idle streams). The
	// per-monitor breakdown — which monitor's apply is the one a query
	// would wait out — is MonitorStats.
	ApplyNS int64 `json:"apply_ns"`
	// Epoch is the apply epoch at snapshot time: even = all staged ops
	// fully applied to every monitor, odd = a fan-out is in flight. It
	// advances twice per applied op, so Epoch/2 counts completed ops.
	Epoch uint64 `json:"epoch"`
}

// QuerySummary is one consistent multi-monitor read: every field reflects
// the same apply epoch, i.e. the same prefix of staged ops (see
// WindowManager.QuerySummary). Fields for monitors the window does not
// maintain are nil.
type QuerySummary struct {
	Epoch           uint64   `json:"epoch"`
	Components      *int     `json:"components,omitempty"`
	Bipartite       *bool    `json:"bipartite,omitempty"`
	MSFWeight       *float64 `json:"msfweight,omitempty"`
	HasCycle        *bool    `json:"cycle,omitempty"`
	CertificateSize *int     `json:"kcert_size,omitempty"`
	// Quarantined lists monitors whose answers are missing above because
	// they are isolated after an apply panic (their fields stay nil).
	Quarantined []string `json:"quarantined,omitempty"`
}

// WindowManager owns one window's monitors behind a staged-apply,
// per-monitor-locking discipline:
//
//   - writerMu serializes the window's writers end to end — the ingester's
//     flush goroutine (Apply) and the expiry ticker (ExpireByAge). Queries
//     never touch it, so a writer convoy cannot form behind readers.
//   - coord is the narrow coordinator lock. The writer holds it only to
//     STAGE an op: validate and clamp the batch, append the live-edge
//     ring, hand the batch to the write-ahead recorder, and compute the
//     expiry delta — bookkeeping, no monitor work. Metadata readers
//     (Stats, Watermark, WindowLen, LiveEdges — including the checkpoint
//     snapshot capture) take coord and therefore wait out at most a
//     staging, never a monitor apply.
//   - each monitor has its own RWMutex inside the Multiplexer. The staged
//     op is applied to every monitor under that monitor's lock (parallel
//     fork-join by default), so a query — which takes only its target
//     monitor's read lock — blocks for at most that monitor's own apply,
//     not the slowest monitor's.
//   - epoch is a seqlock word published around the fan-out: odd while an
//     op is being applied, even when every monitor reflects every staged
//     op. Multi-monitor readers (QuerySummary) retry on it to get answers
//     that all correspond to one op prefix.
//
// Because the Multiplexer feeds every monitor every staged op, one
// (tau, tw) pair describes the window of all monitors — uniform timestamp
// advancement; per-monitor answers always correspond to a whole number of
// staged ops (insert and expiry land under one lock hold).
type WindowManager struct {
	cfg WindowConfig
	mux *Multiplexer

	// workers is the resolved intra-monitor fork-join budget the monitors
	// were built with (never nil; see resolveApplyWorkers).
	workers *parallel.Limiter

	// writerMu serializes Apply and ExpireByAge (see above).
	writerMu sync.Mutex

	// coord guards everything below it: the staging state and counters.
	coord sync.Mutex

	// rec, when set, is handed every valid batch (event times already
	// clamped) before the monitors see it — the write-ahead hook the
	// durability layer logs through. It returns the WAL sequence (arrival
	// index) of the batch's first edge, which becomes the batch's flight
	// trace ID so traces correlate across restarts, plus the append error
	// (Apply propagates it to the ingester so durable acks report append
	// failures). Called under coord, so record order is exactly staging
	// order and the logged arrival indices line up with the stats
	// counters.
	rec func([]Edge) (uint64, error)

	// live holds the unexpired arrivals in arrival order, oldest at
	// live[head] — the canonical window content LiveEdges serves to the
	// snapshot layer. Event times are the post-clamp values (when MaxAge >
	// 0 they are clamped into [lastT, now] on insert so the sequence is
	// monotone and prefix-expiry is sound against out-of-order or future
	// timestamps); time-based expiry reads them back from here. The ring
	// is a constant-factor memory overhead next to the monitors (which
	// retain the whole window anyway), but it is still only maintained
	// when something reads it: time-based expiry (MaxAge > 0) or the
	// durability layer (retain, below) — a plain in-memory count-only
	// window keeps no ring at all.
	live  []Edge
	head  int
	lastT int64
	// retain marks the ring as maintained. Set at construction for
	// MaxAge > 0, by enableLiveRetention (recovery, before replay applies
	// anything), and by setRecorder (window creation, before the window is
	// published) — always before the first arrival, so the ring is never
	// missing a prefix.
	retain bool

	stats WindowStats

	// epoch is the seqlock word (see the type comment). Only the writer
	// (under writerMu) advances it.
	epoch atomic.Uint64

	// metrics is the telemetry bundle (noMetrics when disabled — never
	// nil, so observation sites are branch-only when off). Installed by
	// setTelemetry during wiring, before the window is published.
	metrics *Metrics

	// Flight recorder wiring (setFlight; nil = recording off, e.g.
	// standalone windows built outside a registry).
	//
	// flight receives one batch trace per applied op; qflight receives
	// query traces. ftrace is the reusable batch-trace scratch — only the
	// writer (under writerMu) touches it, so recording is lock-free and
	// 0 allocs. levelMon caches the msfweight monitor when per-level span
	// timing is enabled (flight on and ApplyParallelism > 1).
	flight      *trace.Ring
	qflight     *trace.Ring
	ftrace      trace.Trace
	levelMon    *msfWeightMonitor
	levelMonIdx int // msfweight's fan-out slot index (valid iff levelMon != nil)

	// pendingEnqNS is the enqueue wall time (unix ns) of the oldest
	// submission in the batch the ingester is about to Apply — the queue
	// span's start. The flush goroutine writes it immediately before
	// calling Apply on the same goroutine, so a plain field suffices; 0
	// means unknown (direct Apply callers, tests). pendingAdmitNS is the
	// admission-check time that submission paid before its enqueue — the
	// trace's admit span.
	pendingEnqNS   int64
	pendingAdmitNS int64

	// walFsyncNS accumulates fsync time observed during the current WAL
	// append (the durability layer's per-window ObserveFsync wrapper adds
	// to it; Apply swaps it out around the rec call). Atomic because
	// close-time and checkpoint-path syncs may fire off the writer
	// goroutine; those land outside an append window and are discarded by
	// the pre-append reset.
	walFsyncNS atomic.Int64

	// logger, when set (setLogger, wiring time), receives quarantine and
	// rebuild events. Nil on standalone windows.
	logger *slog.Logger
}

// NewWindowManager builds a window and its monitors.
func NewWindowManager(cfg WindowConfig) (*WindowManager, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("stream: window needs N > 0, got %d", cfg.N)
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	workers := resolveApplyWorkers(cfg)
	mux, err := NewMultiplexer(cfg.Monitors, cfg.N, cfg.Monitor, cfg.Seed, cfg.SequentialFanout, workers)
	if err != nil {
		return nil, err
	}
	w := &WindowManager{cfg: cfg, mux: mux, workers: workers, retain: cfg.MaxAge > 0, metrics: noMetrics}
	mux.setOnQuarantine(func(q *QuarantineInfo) {
		w.metrics.monQuarantines.Inc()
		if w.logger != nil {
			w.logger.Error("monitor quarantined after apply panic",
				"window", cfg.Name, "monitor", q.Monitor, "reason", q.Reason)
		}
	})
	return w, nil
}

// setLogger installs the structured logger quarantine and rebuild events go
// to. Wiring time only, before the window is published.
func (w *WindowManager) setLogger(l *slog.Logger) { w.logger = l }

// setApplyCheck installs the fault-injection hook on the fan-out boundary.
// Wiring time only.
func (w *WindowManager) setApplyCheck(fn func(monitor string)) { w.mux.setApplyCheck(fn) }

// resolveApplyWorkers picks the intra-monitor fork-join budget the window's
// monitors apply batches with (see WindowConfig.ApplyParallelism).
func resolveApplyWorkers(cfg WindowConfig) *parallel.Limiter {
	switch {
	case cfg.ApplyParallelism == 1:
		return parallel.NewLimiter(0) // sequential: a budget that never grants
	case cfg.workers != nil:
		return cfg.workers
	case cfg.ApplyParallelism > 1:
		return parallel.NewLimiter(cfg.ApplyParallelism - 1)
	default:
		return parallel.Default()
	}
}

// setTelemetry installs the telemetry bundle on the window and its fan-out
// slots. Called during wiring, after recovery replay (so replay
// mega-batches don't pollute the live histograms) and before the window is
// published to producers.
func (w *WindowManager) setTelemetry(m *Metrics) {
	w.metrics = m.orNoop()
	w.mux.setTelemetry(w.metrics)
}

// setFlight installs the flight-recorder rings (batch and query). Wiring
// time only, before the window is published. When the window's effective
// apply parallelism exceeds 1, the msfweight monitor's per-level timing
// turns on so batch traces carry the fork-join detail.
func (w *WindowManager) setFlight(batch, query *trace.Ring) {
	w.flight = batch
	w.qflight = query
	if batch != nil && w.ApplyParallelism() > 1 {
		if s := w.mux.byName[MonitorMSFWeight]; s != nil {
			if mon, ok := s.mon.(*msfWeightMonitor); ok {
				mon.a.SetLevelTiming(true)
				w.levelMon = mon
				w.levelMonIdx = s.idx
			}
		}
	}
}

// noteEnqueueTime hands Apply the enqueue wall time of the oldest
// submission in the batch about to be flushed, plus the admission time
// that submission paid. The ingester's flush goroutine calls it right
// before the sink call — same goroutine as Apply, so no synchronization.
func (w *WindowManager) noteEnqueueTime(enqNS, admitNS int64) {
	w.pendingEnqNS = enqNS
	w.pendingAdmitNS = admitNS
}

// noteWALFsync records fsync time the WAL observed for this window; the
// durability layer's per-window ObserveFsync wrapper feeds it.
func (w *WindowManager) noteWALFsync(d time.Duration) { w.walFsyncNS.Add(d.Nanoseconds()) }

// N returns the vertex-set size.
func (w *WindowManager) N() int { return w.cfg.N }

// Monitors lists the configured monitor names.
func (w *WindowManager) Monitors() []string { return w.mux.Names() }

// Apply inserts a batch and runs the expiry policy — the writer entry
// point, called by the ingester's flush goroutine (the expiry ticker is
// the only other writer; writerMu serializes them). Invalid edges
// (endpoints outside [0, N), self-loops) are dropped and counted; the
// batch slice may be compacted in place and is read by the monitor
// fan-out until Apply returns, so the caller yields ownership for the
// duration of the call (and may recycle the slice afterwards — nothing
// retains it). The return is the write-ahead recorder's append error
// (nil on undurable windows): the batch is still applied in-memory
// either way, but a durable ack must report that the WAL did not keep
// it.
func (w *WindowManager) Apply(batch []Edge) error {
	w.writerMu.Lock()
	defer w.writerMu.Unlock()
	enqNS, admitNS := w.pendingEnqNS, w.pendingAdmitNS
	w.pendingEnqNS, w.pendingAdmitNS = 0, 0
	now := w.cfg.Clock.Now()
	m := w.metrics
	ft := w.flight
	// Lifecycle timing costs extra monotonic clock reads, so it only runs
	// for the telemetry registry or the flight recorder. Always the real
	// clock, never the injected Clock — FakeClock does not advance during
	// a call.
	timed := m.on() || ft != nil
	var stageStart time.Time
	if timed {
		stageStart = time.Now()
	}
	var queueNS int64
	if ft != nil && enqNS > 0 {
		if queueNS = stageStart.UnixNano() - enqNS; queueNS < 0 {
			queueNS = 0
		}
	}

	// Stage: everything under the narrow coordinator lock, no monitor
	// work. After this block the op is durable (recorder) and counted;
	// the monitors just haven't seen it yet — the epoch stays odd until
	// they all have.
	dropped := 0
	var walSeq uint64
	var recErr error
	durable := false
	var walOffNS, walNS, fsyncNS int64
	w.coord.Lock()
	valid := batch[:0]
	n32 := int32(w.cfg.N)
	for _, e := range batch {
		if e.U < 0 || e.U >= n32 || e.V < 0 || e.V >= n32 || e.U == e.V {
			w.stats.Dropped++
			dropped++
			continue
		}
		valid = append(valid, e)
	}
	if len(valid) > 0 {
		// Clamp event times before recording so the durability log
		// carries exactly the times expiry will see again on replay (the
		// clamp is monotone, so re-clamping logged times is a no-op).
		if w.cfg.MaxAge > 0 {
			nowNS := now.UnixNano()
			for i := range valid {
				t := valid[i].T.UnixNano()
				if t > nowNS {
					t = nowNS
				}
				if t < w.lastT {
					t = w.lastT
				}
				w.lastT = t
				valid[i].T = time.Unix(0, t)
			}
		}
		// Retain the arrivals (append copies the edge values; the batch
		// slice goes back to the caller) so LiveEdges can serve the window
		// content in arrival order under any expiry mode.
		if w.retain {
			w.live = append(w.live, valid...)
		}
		if w.rec != nil {
			durable = true
			if ft != nil {
				// Bracket the append so the trace carries wal_append and
				// (via the durability layer's per-window fsync note) the
				// wal_fsync sub-span. The WAL fsyncs on the append path
				// for both the batch and interval policies, so the swap
				// after the call captures exactly this append's fsync.
				w.walFsyncNS.Store(0)
				walT0 := time.Now()
				walSeq, recErr = w.rec(valid)
				walNS = time.Since(walT0).Nanoseconds()
				walOffNS = walT0.Sub(stageStart).Nanoseconds()
				fsyncNS = w.walFsyncNS.Swap(0)
			} else {
				walSeq, recErr = w.rec(valid)
			}
		} else {
			// No WAL: the batch's first arrival index plays the sequence
			// role so trace IDs stay monotone and unique per window.
			walSeq = uint64(w.stats.Arrivals)
		}
		w.stats.Arrivals += int64(len(valid))
		w.stats.Batches++
	}
	delta := w.stageExpiryLocked(now)
	w.coord.Unlock()
	if dropped > 0 {
		m.edgesDropped.Add(int64(dropped))
	}
	if delta > 0 {
		m.edgesExpired.Add(int64(delta))
	}
	var stageNS int64
	if timed {
		stageNS = time.Since(stageStart).Nanoseconds()
	}

	if len(valid) == 0 && delta == 0 {
		return recErr
	}
	// The trace ID is known before the fan-out so per-monitor histogram
	// exemplars can be tagged with it as they observe.
	var traceID uint64
	if ft != nil {
		traceID = ft.ID(walSeq)
	}
	// Fan out under the per-monitor locks, bracketed by the epoch.
	// ApplyNS times the fan-out with the monotonic wall clock,
	// deliberately not the injected Clock: FakeClock time does not
	// advance during a call, and the stat must reflect real apply time.
	w.epoch.Add(1)
	m.applyInflight.Add(1)
	applyStart := time.Now()
	w.mux.Apply(valid, delta, traceID)
	applyNS := time.Since(applyStart).Nanoseconds()
	m.applyInflight.Add(-1)
	w.epoch.Add(1)
	if len(valid) > 0 {
		w.coord.Lock()
		w.stats.ApplyNS += applyNS
		w.coord.Unlock()
		m.batchesApplied.Inc()
		m.edgesApplied.Add(int64(len(valid)))
	}
	if m.on() {
		m.stageSeconds.ObserveValTraced(stageNS, traceID)
		m.fanoutSeconds.ObserveValTraced(applyNS, traceID)
		m.batchSeconds.ObserveValTraced(stageNS+applyNS, traceID)
	}
	if ft != nil {
		w.commitBatchTrace(ft, admitNS, queueNS, stageNS, applyNS,
			walSeq, durable, walOffNS, walNS, fsyncNS,
			applyStart, stageStart, len(valid), delta)
	}
	w.kickRebuilds()
	return recErr
}

// commitBatchTrace assembles the batch's span tree in the reusable
// scratch and commits it to the flight ring — 0 allocs: the scratch, the
// span array, and the ring slots are all preallocated. Runs under
// writerMu on the flush goroutine, after the fan-out barrier (so the
// per-monitor and per-level timings are settled plain reads).
func (w *WindowManager) commitBatchTrace(ft *trace.Ring,
	admitNS, queueNS, stageNS, applyNS int64,
	walSeq uint64, durable bool, walOffNS, walNS, fsyncNS int64,
	applyStart, stageStart time.Time, edges, expired int,
) {
	t := &w.ftrace
	t.Reset(trace.KindBatch)
	t.Seq = walSeq
	t.Durable = durable
	t.Edges = int32(edges)
	t.Expired = int32(expired)
	// The trace starts when its oldest submission entered admission, so
	// the admit and queue spans are part of the tree (and of total_ms —
	// the latency a producer actually experienced).
	t.StartNS = stageStart.UnixNano() - queueNS - admitNS
	if admitNS > 0 {
		t.Add(trace.SpanAdmit, 0, 0, admitNS)
	}
	if queueNS > 0 {
		t.Add(trace.SpanQueue, 0, admitNS, queueNS)
	}
	pre := admitNS + queueNS
	t.Add(trace.SpanStage, 0, pre, stageNS)
	if walNS > 0 {
		t.Add(trace.SpanWALAppend, 0, pre+walOffNS, walNS)
		if fsyncNS > 0 {
			t.Add(trace.SpanWALFsync, 0, pre+walOffNS, fsyncNS)
		}
	}
	applyOff := pre + applyStart.Sub(stageStart).Nanoseconds()
	w.mux.forEachLastTiming(func(idx int, waitNS, monApplyNS int64) {
		t.Add(trace.SpanMonitorWait, int32(idx), applyOff, waitNS)
		t.Add(trace.SpanMonitorApply, int32(idx), applyOff+waitNS, monApplyNS)
		if w.levelMon != nil && idx == w.levelMonIdx && edges > 0 {
			base := applyOff + waitNS
			w.levelMon.a.LevelSpans(func(level int, startNS, durNS int64) {
				t.Add(trace.SpanLevel, int32(level), base+startNS, durNS)
			})
		}
	})
	pubOff := applyOff + applyNS
	pubNS := time.Since(stageStart).Nanoseconds() + pre - pubOff
	if pubNS < 0 {
		pubNS = 0
	}
	t.Add(trace.SpanPublish, 0, pubOff, pubNS)
	t.TotalNS = pubOff + pubNS
	ft.Commit(t)
}

// setRecorder installs the write-ahead hook batches are logged through;
// the hook returns the WAL sequence assigned to the batch's first edge,
// which becomes the batch's flight-recorder trace ID (stable across
// restarts — replaying the log reproduces the same sequences).
// Must be installed before any producer can reach Apply (the registry
// attaches it while the window is still unpublished). A recorded window
// is a durable one, so retention turns on: checkpoint snapshots will
// read LiveEdges.
func (w *WindowManager) setRecorder(rec func([]Edge) (uint64, error)) {
	w.coord.Lock()
	w.rec = rec
	w.retain = true
	w.coord.Unlock()
}

// enableLiveRetention turns on live-edge retention ahead of the first
// Apply. The recovery path calls it before replaying (the recorder —
// which also enables retention — attaches only after replay, so it must
// not be the thing that turns the ring on).
func (w *WindowManager) enableLiveRetention() {
	w.coord.Lock()
	w.retain = true
	w.coord.Unlock()
}

// Watermark returns the expiry low-watermark: the number of arrivals this
// manager has expired (staged — the durable truth; the monitors may be
// mid-apply). The durability layer persists it (offset by the recovery
// base) so restarts replay only the unexpired suffix.
func (w *WindowManager) Watermark() int64 {
	w.coord.Lock()
	defer w.coord.Unlock()
	return w.stats.Expired
}

// LiveEdges calls fn exactly once with the expiry watermark (arrivals
// expired so far) and the unexpired arrivals in arrival order — the
// canonical window content: count/time/both expiry have already trimmed
// the prefix, and event times are the post-clamp values the WAL logged,
// so re-applying the slice as one batch reproduces the window state
// exactly (recency weights make the forests canonical in the arrival
// sequence). fn runs under the coordinator lock — NOT the monitor locks:
// queries proceed untouched, staging waits, and the (watermark, edges)
// pair is atomic because both are staging state — no arrival can land or
// expire between the two. The pair is consistent with the write-ahead log
// for the same reason: the recorder appends under the same coord hold
// that updates both. fn must not retain the slice.
//
// Fails on a window that never enabled retention (in-memory, count-only
// expiry): serving a partial ring as "the window" would be silent data
// loss.
func (w *WindowManager) LiveEdges(fn func(expired int64, live []Edge) error) error {
	w.coord.Lock()
	defer w.coord.Unlock()
	if !w.retain {
		return errors.New("stream: window does not retain live edges (no durability layer and no time-based expiry)")
	}
	return fn(w.stats.Expired, w.live[w.head:])
}

// ExpireByAge runs the time-based expiry policy without inserting anything;
// the service's expiry ticker calls it so idle streams still age out.
func (w *WindowManager) ExpireByAge(now time.Time) int {
	w.writerMu.Lock()
	defer w.writerMu.Unlock()
	w.coord.Lock()
	delta := w.stageExpiryLocked(now)
	w.coord.Unlock()
	if delta == 0 {
		return 0
	}
	m := w.metrics
	m.edgesExpired.Add(int64(delta))
	w.epoch.Add(1)
	m.applyInflight.Add(1)
	w.mux.Apply(nil, delta, 0)
	m.applyInflight.Add(-1)
	w.epoch.Add(1)
	w.kickRebuilds()
	return delta
}

// stageExpiryLocked computes and stages the expiry delta under coord:
// ring prefix by age, then the count cap, then the ring head and the
// Expired counter advance. The monitors have NOT seen the delta yet —
// the caller applies it through the fan-out.
func (w *WindowManager) stageExpiryLocked(now time.Time) int {
	delta := 0
	if w.cfg.MaxAge > 0 {
		cutoff := now.Add(-w.cfg.MaxAge).UnixNano()
		for w.head+delta < len(w.live) && w.live[w.head+delta].T.UnixNano() <= cutoff {
			delta++
		}
	}
	if w.cfg.MaxArrivals > 0 {
		if excess := int(w.windowLenLocked()) - delta - w.cfg.MaxArrivals; excess > 0 {
			delta += excess
		}
	}
	if delta == 0 {
		return 0
	}
	if w.retain {
		w.head += delta
		// Compact the ring once the dead prefix dominates.
		if w.head > len(w.live)/2 && w.head > 1024 {
			w.live = append(w.live[:0], w.live[w.head:]...)
			w.head = 0
		}
	}
	w.stats.Expired += int64(delta)
	return delta
}

func (w *WindowManager) windowLenLocked() int64 {
	return w.stats.Arrivals - w.stats.Expired
}

// WindowLen returns the number of unexpired arrivals (staged).
func (w *WindowManager) WindowLen() int64 {
	w.coord.Lock()
	defer w.coord.Unlock()
	return w.windowLenLocked()
}

// Epoch returns the current apply epoch: even = every staged op is fully
// applied to every monitor, odd = a fan-out is in flight. Epoch/2 counts
// completed ops.
func (w *WindowManager) Epoch() uint64 { return w.epoch.Load() }

// Stats snapshots the window counters. The counters are staging state
// (mutually consistent under coord — they always describe a whole number
// of staged ops); Epoch records whether the monitors had fully caught up
// (even) or an apply was in flight (odd) at snapshot time.
func (w *WindowManager) Stats() WindowStats {
	e := w.epoch.Load()
	w.coord.Lock()
	s := w.stats
	w.coord.Unlock()
	s.WindowLen = s.Arrivals - s.Expired
	s.Epoch = e
	return s
}

// ApplyParallelism reports the effective intra-monitor fork-join width of
// this window's batch applies: the calling goroutine plus the auxiliary
// budget it borrows from (1 = sequential levels). For a registry window
// the budget — and hence the number — is shared across windows.
func (w *WindowManager) ApplyParallelism() int { return w.workers.Aux() + 1 }

// MonitorStats snapshots each monitor's apply accounting: how long the
// writer held (ApplyNS) and waited for (WaitNS) that monitor's lock —
// i.e. which monitor's apply a query on it can block behind, and how much
// readers pushed back on the writer.
func (w *WindowManager) MonitorStats() []MonitorApplyStats { return w.mux.Stats() }

// readMonitor runs fn on the named monitor under that monitor's read
// lock, translating "not configured" into ErrNoMonitor and "quarantined
// after an apply panic" into ErrMonitorQuarantined (and nudging the
// background rebuild, in case no apply has run since the panic). When the
// flight recorder is wired, each query commits a two-span trace (lock wait
// + execute) to the window's query ring — the trace lives on the stack, so
// concurrent queries never contend on anything but the ring slot.
func (w *WindowManager) readMonitor(name string, fn func(Monitor)) error {
	qf := w.qflight
	if qf == nil {
		q, ok := w.mux.withRead(name, fn)
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoMonitor, name)
		}
		if q != nil {
			w.kickRebuilds()
			return fmt.Errorf("%w: %s: %s", ErrMonitorQuarantined, name, q.Reason)
		}
		return nil
	}
	start := time.Now()
	idx, waitNS, execNS, q, ok := w.mux.withReadTimed(name, fn)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoMonitor, name)
	}
	if q != nil {
		w.kickRebuilds()
		return fmt.Errorf("%w: %s: %s", ErrMonitorQuarantined, name, q.Reason)
	}
	var t trace.Trace
	t.Reset(trace.KindQuery)
	t.Seq = qf.SeqNext()
	t.StartNS = start.UnixNano()
	if waitNS > 0 {
		t.Add(trace.SpanLockWait, int32(idx), 0, waitNS)
	}
	t.Add(trace.SpanExec, int32(idx), waitNS, execNS)
	t.TotalNS = waitNS + execNS
	qf.Commit(&t)
	return nil
}

// IsConnected reports window connectivity of u and v (conn monitor).
func (w *WindowManager) IsConnected(u, v int32) (bool, error) {
	if u < 0 || int(u) >= w.cfg.N || v < 0 || int(v) >= w.cfg.N {
		return false, fmt.Errorf("stream: vertex out of range [0, %d)", w.cfg.N)
	}
	var ans bool
	err := w.readMonitor(MonitorConn, func(m Monitor) {
		ans = m.(*connMonitor).c.IsConnected(u, v)
	})
	return ans, err
}

// NumComponents returns the number of connected components of the window
// graph (conn monitor).
func (w *WindowManager) NumComponents() (int, error) {
	var ans int
	err := w.readMonitor(MonitorConn, func(m Monitor) {
		ans = m.(*connMonitor).c.NumComponents()
	})
	return ans, err
}

// IsBipartite reports whether the window graph is bipartite.
func (w *WindowManager) IsBipartite() (bool, error) {
	var ans bool
	err := w.readMonitor(MonitorBipartite, func(m Monitor) {
		ans = m.(*bipartiteMonitor).b.IsBipartite()
	})
	return ans, err
}

// MSFWeight returns the (1+ε)-approximate MSF weight of the window graph.
func (w *WindowManager) MSFWeight() (float64, error) {
	var ans float64
	err := w.readMonitor(MonitorMSFWeight, func(m Monitor) {
		ans = m.(*msfWeightMonitor).a.Weight()
	})
	return ans, err
}

// CertificateSize returns the number of k-certificate edges.
func (w *WindowManager) CertificateSize() (int, error) {
	var ans int
	err := w.readMonitor(MonitorKCert, func(m Monitor) {
		ans = m.(*kcertMonitor).k.Size()
	})
	return ans, err
}

// EdgeConnectivityUpToK returns min(k, edge connectivity) of the window
// graph (kcert monitor).
func (w *WindowManager) EdgeConnectivityUpToK() (int, error) {
	var ans int
	err := w.readMonitor(MonitorKCert, func(m Monitor) {
		ans = m.(*kcertMonitor).k.EdgeConnectivityUpToK()
	})
	return ans, err
}

// KCertInfo returns the certificate size and min(k, edge connectivity)
// under ONE read-lock hold, so the pair describes a single window state —
// two separate calls could straddle an apply.
func (w *WindowManager) KCertInfo() (size, conn int, err error) {
	err = w.readMonitor(MonitorKCert, func(m Monitor) {
		k := m.(*kcertMonitor).k
		size = k.Size()
		conn = k.EdgeConnectivityUpToK()
	})
	return size, conn, err
}

// HasCycle reports whether the window graph contains a cycle.
func (w *WindowManager) HasCycle() (bool, error) {
	var ans bool
	err := w.readMonitor(MonitorCycleFree, func(m Monitor) {
		ans = m.(*cycleFreeMonitor).c.HasCycle()
	})
	return ans, err
}

// QuerySummary reads every configured monitor's O(1)-ish answers so that
// they ALL correspond to one apply epoch — one prefix of staged ops.
// Per-monitor locking makes independent queries fast but lets two reads
// straddle an apply; this is the seqlock read for callers that need the
// cross-monitor invariants to hold (e.g. cycle => components < n).
//
// The retry loop is bounded: if the window between fan-outs is too narrow
// to read through (a saturated writer), it takes writerMu — excluding
// writers entirely — and reads at a guaranteed-even epoch.
func (w *WindowManager) QuerySummary() QuerySummary {
	const spinAttempts = 64
	for attempt := 0; ; attempt++ {
		if attempt >= spinAttempts {
			w.writerMu.Lock()
			// No writer can be mid-fan-out: writerMu holders publish an
			// even epoch before releasing.
			res := w.querySummaryLocked()
			w.writerMu.Unlock()
			return res
		}
		e1 := w.epoch.Load()
		if e1&1 == 1 {
			runtime.Gosched() // fan-out in flight: let it finish
			continue
		}
		res := w.querySummaryLocked()
		if w.epoch.Load() == e1 {
			res.Epoch = e1
			return res
		}
	}
}

// querySummaryLocked reads every configured monitor under its read lock.
// Consistency across monitors is the caller's job (epoch check or
// writerMu); the per-monitor read locks only keep each individual answer
// atomic against an in-flight apply.
func (w *WindowManager) querySummaryLocked() QuerySummary {
	var res QuerySummary
	res.Epoch = w.epoch.Load()
	// A quarantined monitor's field stays nil and its name lands in
	// Quarantined — a partial summary with an explicit reason beats
	// failing the four healthy answers.
	read := func(name string, fn func(Monitor)) {
		if q, ok := w.mux.withRead(name, fn); ok && q != nil {
			res.Quarantined = append(res.Quarantined, name)
		}
	}
	read(MonitorConn, func(m Monitor) {
		cc := m.(*connMonitor).c.NumComponents()
		res.Components = &cc
	})
	read(MonitorBipartite, func(m Monitor) {
		b := m.(*bipartiteMonitor).b.IsBipartite()
		res.Bipartite = &b
	})
	read(MonitorMSFWeight, func(m Monitor) {
		wt := m.(*msfWeightMonitor).a.Weight()
		res.MSFWeight = &wt
	})
	read(MonitorCycleFree, func(m Monitor) {
		hc := m.(*cycleFreeMonitor).c.HasCycle()
		res.HasCycle = &hc
	})
	read(MonitorKCert, func(m Monitor) {
		sz := m.(*kcertMonitor).k.Size()
		res.CertificateSize = &sz
	})
	return res
}

// Quarantined snapshots the quarantined monitors' records (nil when
// healthy). /stats serves it so operators see the reason and stack without
// grepping logs.
func (w *WindowManager) Quarantined() []QuarantineInfo { return w.mux.Quarantined() }

// hasQuarantine reports whether any monitor is quarantined (one atomic
// load — the health gauges poll it per scrape).
func (w *WindowManager) hasQuarantine() bool { return w.mux.anyQuarantined() }

// kickRebuilds claims every quarantined monitor nobody is rebuilding yet
// and starts a background rebuild for each. Gated on a single atomic load,
// so calling it after every apply — and on every query that hits a
// quarantined monitor — is free in the healthy steady state.
func (w *WindowManager) kickRebuilds() {
	if !w.mux.anyQuarantined() {
		return
	}
	for _, s := range w.mux.claimRebuilds() {
		go w.rebuildSlot(s)
	}
}

// rebuildSlot replaces a quarantined monitor with a freshly built one fed
// the window's canonical content, without ever stopping the writer:
// catch-up rounds copy the missing arrival suffix under coord and apply it
// to the private replacement outside all locks while the stream keeps
// flowing; only the final (small) delta is applied with the writer held
// out, then the swap lifts the quarantine. Sound because every monitor's
// state is a function of the unexpired arrival suffix applied as in-order
// inserts plus a prefix expiry — exactly what LiveEdges serves — and
// because insert-then-expire batching is equivalent to the interleaved
// history (recency weights make the forests canonical in the arrival
// sequence).
func (w *WindowManager) rebuildSlot(s *monitorSlot) {
	defer func() {
		if r := recover(); r != nil {
			reason, _ := describePanic(r)
			w.mux.failRebuild(s, "rebuild panicked: "+reason)
			if w.logger != nil {
				w.logger.Error("monitor rebuild failed permanently",
					"window", w.cfg.Name, "monitor", s.name, "reason", reason)
			}
		}
	}()
	start := time.Now()
	fresh, err := w.mux.rebuildMonitor(s)
	if err != nil {
		w.mux.failRebuild(s, err.Error())
		return
	}
	// fresh holds arrivals [fExp, fEnd) in absolute arrival indices; both
	// are 0 until the first round seeds it.
	var fExp, fEnd int64
	seeded := false
	// expireCount is how many of fresh's entries fall below the new expiry
	// watermark exp2: its entries are [fExp, fEnd) plus a suffix starting
	// at max(fEnd, exp2), so min(fEnd, exp2) − fExp of them expire. The
	// same formula covers the lapped case (exp2 > fEnd: everything old
	// expires, the middle arrivals were never inserted).
	expireCount := func(exp2 int64) int64 {
		cut := fEnd
		if exp2 < cut {
			cut = exp2
		}
		return cut - fExp
	}
	const (
		maxRounds   = 8    // offline rounds before forcing the locked finish
		finalMaxLag = 4096 // captured-suffix size small enough to finish locked
	)
	var scratch []Edge
	for r := 0; r < maxRounds; r++ {
		var exp2, end2 int64
		err := w.LiveEdges(func(expired int64, live []Edge) error {
			exp2 = expired
			end2 = expired + int64(len(live))
			from := fEnd
			if exp2 > from {
				from = exp2
			}
			// Copy: the batch is applied after coord is released.
			scratch = append(scratch[:0], live[from-exp2:]...)
			return nil
		})
		if err != nil {
			// No retention (standalone in-memory window without time expiry):
			// there is no canonical content to rebuild from.
			w.mux.failRebuild(s, err.Error())
			return
		}
		expire := int64(0)
		if seeded {
			expire = expireCount(exp2)
		}
		if len(scratch) > 0 {
			fresh.BatchInsert(scratch)
		}
		if expire > 0 {
			fresh.BatchExpire(int(expire))
		}
		seeded = true
		fExp, fEnd = exp2, end2
		if int64(len(scratch)) <= finalMaxLag {
			break // close enough: the locked delta will be tiny
		}
	}
	// Final round: with the writer held out the content is frozen, so the
	// remaining delta is applied inside the coord hold (no copy) and the
	// swap publishes a replacement that exactly matches its siblings.
	w.writerMu.Lock()
	err = w.LiveEdges(func(expired int64, live []Edge) error {
		exp2 := expired
		from := fEnd
		if exp2 > from {
			from = exp2
		}
		if batch := live[from-exp2:]; len(batch) > 0 {
			fresh.BatchInsert(batch)
		}
		if expire := expireCount(exp2); expire > 0 {
			fresh.BatchExpire(int(expire))
		}
		return nil
	})
	if err != nil {
		w.writerMu.Unlock()
		w.mux.failRebuild(s, err.Error())
		return
	}
	w.mux.swapMonitor(s, fresh)
	w.writerMu.Unlock()
	w.metrics.monRebuilds.Inc()
	if w.logger != nil {
		w.logger.Info("quarantined monitor rebuilt",
			"window", w.cfg.Name, "monitor", s.name,
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
}
