package stream

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// epochRefState is the full answer surface of the window after a prefix of
// staged ops — what any query is allowed to observe.
type epochRefState struct {
	connPairs  []bool
	components int
	bipartite  bool
	msfweight  float64
	cycle      bool
	kcertSize  int
	kcertConn  int
	stats      WindowStats // timing and epoch zeroed
}

func captureRefState(t *testing.T, wm *WindowManager, pairs [][2]int32) epochRefState {
	t.Helper()
	var st epochRefState
	var err error
	st.connPairs = make([]bool, len(pairs))
	for i, p := range pairs {
		if st.connPairs[i], err = wm.IsConnected(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if st.components, err = wm.NumComponents(); err != nil {
		t.Fatal(err)
	}
	if st.bipartite, err = wm.IsBipartite(); err != nil {
		t.Fatal(err)
	}
	if st.msfweight, err = wm.MSFWeight(); err != nil {
		t.Fatal(err)
	}
	if st.cycle, err = wm.HasCycle(); err != nil {
		t.Fatal(err)
	}
	if st.kcertSize, st.kcertConn, err = wm.KCertInfo(); err != nil {
		t.Fatal(err)
	}
	st.stats = wm.Stats()
	st.stats.ApplyNS = 0
	st.stats.Epoch = 0
	return st
}

// TestEpochConsistencyDifferential is the staged-apply consistency
// differential: a writer drives a deterministic schedule of batch applies
// and timed expiries through a parallel-fanout window while reader
// goroutines hammer per-monitor queries, Stats, KCertInfo and
// QuerySummary — and EVERY answer must equal the answer of a sequentially
// applied reference window after some whole number of ops within the
// reader's observation bounds. With per-monitor locking an individual
// query may observe a different prefix than a concurrent query on another
// monitor, but no query may ever observe a half-applied batch (an op's
// insert without its expiry, or a partial batch), and the multi-read
// surfaces (KCertInfo, QuerySummary) must be internally consistent — all
// their fields from ONE prefix. CI runs this under -race, which
// additionally checks the fan-out region and the sw writer guards.
func TestEpochConsistencyDifferential(t *testing.T) {
	const (
		n        = 100
		window   = 400
		numOps   = 70
		numPairs = 8
	)
	base := WindowConfig{
		N:           n,
		Seed:        21,
		MaxArrivals: window,
		MaxAge:      time.Minute,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 2},
	}

	// Deterministic op schedule: most ops carry a batch (Apply also runs
	// expiry inline), some are pure ticker-style ExpireByAge calls.
	type op struct {
		batch   []Edge // nil = ExpireByAge only
		advance time.Duration
	}
	r := rand.New(rand.NewSource(5))
	opsList := make([]op, numOps)
	for i := range opsList {
		o := op{advance: time.Duration(r.Intn(8)) * time.Second}
		if r.Intn(5) != 0 {
			o.batch = randomEdges(r, n, 1+r.Intn(60))
		}
		opsList[i] = o
	}
	pairs := make([][2]int32, numPairs)
	for i := range pairs {
		pairs[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
	}

	// runOp executes op k of the schedule against a window and its clock:
	// advance, stamp, apply (or expire). Identical for reference and live.
	runOp := func(wm *WindowManager, fc *FakeClock, o op) {
		fc.Advance(o.advance)
		now := fc.Now()
		if o.batch == nil {
			wm.ExpireByAge(now)
			return
		}
		batch := make([]Edge, len(o.batch))
		copy(batch, o.batch)
		for i := range batch {
			batch[i].T = now
		}
		wm.Apply(batch)
	}

	// Reference pass: sequential fan-out, same seed, answers recorded
	// after every op prefix (ref[k] = state after k ops).
	refCfg := base
	refCfg.SequentialFanout = true
	refClock := NewFakeClock(time.Unix(0, 0))
	refCfg.Clock = refClock
	refWM, err := NewWindowManager(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]epochRefState, numOps+1)
	ref[0] = captureRefState(t, refWM, pairs)
	for k, o := range opsList {
		runOp(refWM, refClock, o)
		ref[k+1] = captureRefState(t, refWM, pairs)
	}

	// Live pass: parallel fan-out, one writer goroutine, many readers.
	liveCfg := base
	liveClock := NewFakeClock(time.Unix(0, 0))
	liveCfg.Clock = liveClock
	live, err := NewWindowManager(liveCfg)
	if err != nil {
		t.Fatal(err)
	}

	var started, done atomic.Int64 // ops begun / fully applied
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for k, o := range opsList {
			started.Store(int64(k + 1))
			runOp(live, liveClock, o)
			done.Store(int64(k + 1))
		}
	}()

	var readWG sync.WaitGroup
	matchRange := func(k1, k2 int64, match func(st *epochRefState) bool) bool {
		for k := k1; k <= k2 && k <= int64(numOps); k++ {
			if match(&ref[k]) {
				return true
			}
		}
		return false
	}

	// spawn starts one reader hammering a query in a loop. The bracket is
	// the correctness core: k1 (ops fully applied, read BEFORE the query)
	// and k2 (ops begun, read AFTER it) bound the prefixes any monitor
	// could have reflected while the query ran, so the answer must match
	// ref[k] for some k in [k1, k2].
	spawn := func(what string, query func() func(st *epochRefState) bool) {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				k1 := done.Load()
				match := query()
				k2 := started.Load()
				if !matchRange(k1, k2, match) {
					t.Errorf("%s: answer matches no op prefix in [%d, %d]", what, k1, k2)
					return
				}
			}
		}()
	}

	for j := 0; j < numPairs; j += 2 {
		j := j
		spawn("connected", func() func(*epochRefState) bool {
			ans, err := live.IsConnected(pairs[j][0], pairs[j][1])
			if err != nil {
				t.Error(err)
			}
			return func(st *epochRefState) bool { return st.connPairs[j] == ans }
		})
	}
	spawn("components", func() func(*epochRefState) bool {
		ans, err := live.NumComponents()
		if err != nil {
			t.Error(err)
		}
		return func(st *epochRefState) bool { return st.components == ans }
	})
	spawn("bipartite", func() func(*epochRefState) bool {
		ans, err := live.IsBipartite()
		if err != nil {
			t.Error(err)
		}
		return func(st *epochRefState) bool { return st.bipartite == ans }
	})
	spawn("msfweight", func() func(*epochRefState) bool {
		ans, err := live.MSFWeight()
		if err != nil {
			t.Error(err)
		}
		return func(st *epochRefState) bool { return st.msfweight == ans }
	})
	spawn("cycle", func() func(*epochRefState) bool {
		ans, err := live.HasCycle()
		if err != nil {
			t.Error(err)
		}
		return func(st *epochRefState) bool { return st.cycle == ans }
	})
	// KCertInfo: both values from ONE lock hold — they must match a single
	// prefix JOINTLY, which two separate queries could not guarantee.
	spawn("kcert-info", func() func(*epochRefState) bool {
		size, conn, err := live.KCertInfo()
		if err != nil {
			t.Error(err)
		}
		return func(st *epochRefState) bool { return st.kcertSize == size && st.kcertConn == conn }
	})
	// Stats: the counters are staged state and mutually consistent — they
	// must jointly describe one prefix (never, say, Arrivals from op k+1
	// with Expired from op k).
	spawn("stats", func() func(*epochRefState) bool {
		got := live.Stats()
		got.ApplyNS = 0
		got.Epoch = 0
		return func(st *epochRefState) bool { return st.stats == got }
	})
	// QuerySummary: EVERY monitor's answer from one epoch — the whole
	// point of the seqlock read. All fields must match a single prefix
	// jointly.
	spawn("summary", func() func(*epochRefState) bool {
		qs := live.QuerySummary()
		if qs.Epoch&1 == 1 {
			t.Error("QuerySummary returned an odd epoch")
		}
		return func(st *epochRefState) bool {
			return st.components == *qs.Components &&
				st.bipartite == *qs.Bipartite &&
				st.msfweight == *qs.MSFWeight &&
				st.cycle == *qs.HasCycle &&
				st.kcertSize == *qs.CertificateSize
		}
	})

	<-writerDone
	readWG.Wait()

	// The fully-applied live window must equal the reference end state.
	final := captureRefState(t, live, pairs)
	finalRef := ref[numOps]
	if final.components != finalRef.components || final.bipartite != finalRef.bipartite ||
		final.msfweight != finalRef.msfweight || final.cycle != finalRef.cycle ||
		final.kcertSize != finalRef.kcertSize || final.kcertConn != finalRef.kcertConn ||
		final.stats != finalRef.stats {
		t.Fatalf("final state diverged from sequential reference:\n got %+v\nwant %+v", final, finalRef)
	}
}

// TestQuerySummaryConsistentUnderWriter pins the seqlock fallback: with a
// writer saturating the window (back-to-back applies), QuerySummary must
// still return (via the writerMu fallback if needed) and must never
// return an odd epoch.
func TestQuerySummaryConsistentUnderWriter(t *testing.T) {
	wm, err := NewWindowManager(WindowConfig{N: 60, Seed: 3, MaxArrivals: 200})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			wm.Apply(randomEdges(r, 60, 40))
		}
	}()
	for i := 0; i < 200; i++ {
		qs := wm.QuerySummary()
		if qs.Epoch&1 == 1 {
			t.Fatalf("odd epoch %d from QuerySummary", qs.Epoch)
		}
		if qs.Components == nil || qs.CertificateSize == nil {
			t.Fatal("summary missing configured monitors")
		}
	}
	close(stop)
	wg.Wait()
}
