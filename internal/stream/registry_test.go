package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, cfg RegistryConfig) *WindowRegistry {
	t.Helper()
	if cfg.Template.Window.N == 0 {
		cfg.Template = ServiceConfig{
			Window: WindowConfig{N: 50, Seed: 9, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		}
	}
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	return reg
}

func TestRegistryLifecycle(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{Shards: 4})

	svc, err := reg.Create("tenant-a", ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Window().N(); got != 50 {
		t.Fatalf("template N not inherited: %d", got)
	}
	if _, err := reg.Create("tenant-a", ServiceConfig{}); !errors.Is(err, ErrWindowExists) {
		t.Fatalf("duplicate create: %v, want ErrWindowExists", err)
	}
	got, ok := reg.Get("tenant-a")
	if !ok || got != svc {
		t.Fatal("Get did not return the created service")
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("Get of unknown name succeeded")
	}

	// The window is a live pipeline.
	if err := svc.Submit([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	if conn, err := svc.Window().IsConnected(0, 2); err != nil || !conn {
		t.Fatalf("query through registry window: %v %v", conn, err)
	}

	if _, err := reg.Create("tenant-b", ServiceConfig{Window: WindowConfig{N: 7}}); err != nil {
		t.Fatal(err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "tenant-a" || names[1] != "tenant-b" {
		t.Fatalf("Names = %v", names)
	}
	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "tenant-a" || infos[1].Name != "tenant-b" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Window.Arrivals != 2 || infos[1].N != 7 {
		t.Fatalf("List stats wrong: %+v", infos)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}

	// Drop closes the pipeline but a previously-fetched handle still
	// answers queries (ingest is rejected).
	if err := reg.Drop("tenant-a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("tenant-a"); ok {
		t.Fatal("dropped window still resolvable")
	}
	if err := reg.Drop("tenant-a"); !errors.Is(err, ErrWindowNotFound) {
		t.Fatalf("double drop: %v, want ErrWindowNotFound", err)
	}
	if conn, err := svc.Window().IsConnected(0, 2); err != nil || !conn {
		t.Fatalf("query after drop: %v %v", conn, err)
	}
	if err := svc.Submit([]Edge{{U: 3, V: 4}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drop: %v, want ErrClosed", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("Len after drop = %d", reg.Len())
	}
}

func TestRegistryNameValidation(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{})
	for _, name := range []string{"", ".", "..", "a/b", "a b", "é", string(make([]byte, 129))} {
		if _, err := reg.Create(name, ServiceConfig{}); !errors.Is(err, ErrBadWindowName) {
			t.Errorf("Create(%q): %v, want ErrBadWindowName", name, err)
		}
	}
	for _, name := range []string{"a", "A-1", "x_y.z", "tenant-42"} {
		if _, err := reg.Create(name, ServiceConfig{}); err != nil {
			t.Errorf("Create(%q): %v", name, err)
		}
	}
}

func TestRegistryMaxWindowsAndClose(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{MaxWindows: 2})
	for _, name := range []string{"w0", "w1"} {
		if _, err := reg.Create(name, ServiceConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Create("w2", ServiceConfig{}); !errors.Is(err, ErrTooManyWindows) {
		t.Fatalf("over-cap create: %v, want ErrTooManyWindows", err)
	}
	if err := reg.Drop("w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("w2", ServiceConfig{}); err != nil {
		t.Fatalf("create after drop under cap: %v", err)
	}

	reg.Close()
	if reg.Len() != 0 {
		t.Fatalf("Len after Close = %d", reg.Len())
	}
	if _, err := reg.Create("w3", ServiceConfig{}); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("create after close: %v, want ErrRegistryClosed", err)
	}
	reg.Close() // idempotent
}

func TestRegistryTemplateOverrides(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{})
	svc, err := reg.Create("big", ServiceConfig{
		Window: WindowConfig{N: 300, Monitors: []string{MonitorConn, MonitorBipartite}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Window().N() != 300 {
		t.Fatalf("override N = %d", svc.Window().N())
	}
	if mons := svc.Window().Monitors(); len(mons) != 2 {
		t.Fatalf("override monitors = %v", mons)
	}
	if _, err := reg.Create("bad", ServiceConfig{Window: WindowConfig{Monitors: []string{"nope"}}}); err == nil {
		t.Fatal("unknown monitor accepted")
	}
	if reg.Len() != 1 {
		t.Fatalf("failed create leaked a slot: Len = %d", reg.Len())
	}
}

func TestMergeTemplatePerField(t *testing.T) {
	tpl := ServiceConfig{
		Window: WindowConfig{N: 10, Monitor: MonitorConfig{Eps: 0.5, MaxWeight: 1 << 10, K: 3}},
		Ingest: IngesterConfig{MaxBatch: 32},
	}
	// Overriding one monitor field must not discard the template's others.
	got := mergeTemplate(ServiceConfig{Window: WindowConfig{Monitor: MonitorConfig{K: 5}}}, tpl)
	if want := (MonitorConfig{Eps: 0.5, MaxWeight: 1 << 10, K: 5}); got.Window.Monitor != want {
		t.Fatalf("monitor merge = %+v, want %+v", got.Window.Monitor, want)
	}
	if got.Window.N != 10 || got.Ingest.MaxBatch != 32 {
		t.Fatalf("merge lost fields: %+v", got)
	}
}

// TestRegistryConcurrent hammers create/get/drop across shards from many
// goroutines; run under -race this checks the shard discipline.
func TestRegistryConcurrent(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{Shards: 8})
	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				svc, err := reg.Create(name, ServiceConfig{})
				if err != nil {
					t.Error(err)
					return
				}
				if err := svc.Submit([]Edge{{U: 0, V: 1}}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := reg.Get(name); !ok {
					t.Errorf("Get(%q) lost the window", name)
					return
				}
				_ = reg.Names()
				if i%2 == 0 {
					if err := reg.Drop(name); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := reg.Len(), workers*perWorker/2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := len(reg.List()); got != reg.Len() {
		t.Fatalf("List length %d != Len %d", got, reg.Len())
	}
	// Racing creates of one name: exactly one winner.
	var created, dup int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := reg.Create("contended", ServiceConfig{})
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				created++
			} else if errors.Is(err, ErrWindowExists) {
				dup++
			}
		}()
	}
	wg.Wait()
	if created != 1 || dup != workers-1 {
		t.Fatalf("contended create: %d winners, %d dups", created, dup)
	}
}
