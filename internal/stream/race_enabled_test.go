//go:build race

package stream

// raceEnabled flags the race detector: its instrumentation allocates, so
// the steady-state allocs/op assertions skip themselves under -race (the
// race build checks synchronization, the plain build checks allocations).
const raceEnabled = true
