package stream

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/sw"
)

func randomEdges(r *rand.Rand, n, count int) []Edge {
	out := make([]Edge, count)
	for i := range out {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		for v == u {
			v = int32(r.Intn(n))
		}
		out[i] = Edge{U: u, V: v, W: 1 + r.Int63n(1<<10)}
	}
	return out
}

// TestWindowManagerMatchesOracle drives a count-based window through the
// WindowManager and checks every query against direct internal/sw
// structures fed the identical batch/expiry schedule. The compared answers
// (connectivity, components, bipartiteness, approximate weight, edge
// connectivity) are exact properties of the window graph plus deterministic
// approximation parameters, so they must agree regardless of internal
// seeds.
func TestWindowManagerMatchesOracle(t *testing.T) {
	const (
		n      = 200
		window = 600
		rounds = 40
		batch  = 100
		eps    = 0.25
		maxW   = 1 << 10
		k      = 3
	)
	wm, err := NewWindowManager(WindowConfig{
		N:           n,
		Seed:        42,
		MaxArrivals: window,
		Monitor:     MonitorConfig{Eps: eps, MaxWeight: maxW, K: k},
	})
	if err != nil {
		t.Fatal(err)
	}

	conn := sw.NewConnEager(n, 999)
	bip := sw.NewBipartite(n, 998)
	amsf := sw.NewApproxMSF(n, eps, maxW, 997)
	kc := sw.NewKCert(n, k, 996)
	cyc := sw.NewCycleFree(n, 995)

	r := rand.New(rand.NewSource(7))
	live := 0
	for round := 0; round < rounds; round++ {
		edges := randomEdges(r, n, batch)
		wm.Apply(edges)

		plain := make([]sw.StreamEdge, len(edges))
		weighted := make([]sw.WeightedStreamEdge, len(edges))
		for i, e := range edges {
			plain[i] = sw.StreamEdge{U: e.U, V: e.V}
			weighted[i] = sw.WeightedStreamEdge{U: e.U, V: e.V, W: e.W}
		}
		conn.BatchInsert(plain)
		bip.BatchInsert(plain)
		amsf.BatchInsert(weighted)
		kc.BatchInsert(plain)
		cyc.BatchInsert(plain)
		live += batch
		if live > window {
			delta := live - window
			conn.BatchExpire(delta)
			bip.BatchExpire(delta)
			amsf.BatchExpire(delta)
			kc.BatchExpire(delta)
			cyc.BatchExpire(delta)
			live = window
		}

		if got := wm.WindowLen(); got != int64(live) {
			t.Fatalf("round %d: WindowLen = %d, want %d", round, got, live)
		}
		gotCC, err := wm.NumComponents()
		if err != nil {
			t.Fatal(err)
		}
		if want := conn.NumComponents(); gotCC != want {
			t.Fatalf("round %d: components = %d, want %d", round, gotCC, want)
		}
		gotBip, err := wm.IsBipartite()
		if err != nil {
			t.Fatal(err)
		}
		if want := bip.IsBipartite(); gotBip != want {
			t.Fatalf("round %d: bipartite = %v, want %v", round, gotBip, want)
		}
		gotW, err := wm.MSFWeight()
		if err != nil {
			t.Fatal(err)
		}
		if want := amsf.Weight(); gotW != want {
			t.Fatalf("round %d: msf weight = %v, want %v", round, gotW, want)
		}
		if round%8 == 7 { // the min-cut oracle is the expensive check
			gotEC, err := wm.EdgeConnectivityUpToK()
			if err != nil {
				t.Fatal(err)
			}
			if want := kc.EdgeConnectivityUpToK(); gotEC != want {
				t.Fatalf("round %d: edge connectivity = %d, want %d", round, gotEC, want)
			}
		}
		gotCycle, err := wm.HasCycle()
		if err != nil {
			t.Fatal(err)
		}
		if want := cyc.HasCycle(); gotCycle != want {
			t.Fatalf("round %d: cycle = %v, want %v", round, gotCycle, want)
		}
		for trial := 0; trial < 20; trial++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			got, err := wm.IsConnected(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if want := conn.IsConnected(u, v); got != want {
				t.Fatalf("round %d: connected(%d,%d) = %v, want %v", round, u, v, got, want)
			}
		}
	}
}

func TestWindowManagerDropsInvalidEdges(t *testing.T) {
	wm, err := NewWindowManager(WindowConfig{N: 10, Monitors: []string{MonitorConn}})
	if err != nil {
		t.Fatal(err)
	}
	wm.Apply([]Edge{
		{U: 0, V: 1},   // valid
		{U: 3, V: 3},   // self-loop
		{U: -1, V: 2},  // negative
		{U: 2, V: 100}, // out of range
	})
	st := wm.Stats()
	if st.Arrivals != 1 || st.Dropped != 3 {
		t.Fatalf("stats = %+v, want 1 arrival and 3 dropped", st)
	}
	conn, err := wm.IsConnected(0, 1)
	if err != nil || !conn {
		t.Fatalf("valid edge not applied: %v %v", conn, err)
	}
}

func TestWindowManagerTimeExpiry(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	wm, err := NewWindowManager(WindowConfig{
		N:        10,
		Monitors: []string{MonitorConn},
		MaxAge:   time.Minute,
		Clock:    fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := fc.Now()
	wm.Apply([]Edge{{U: 0, V: 1, T: t0}, {U: 1, V: 2, T: t0}})
	fc.Advance(30 * time.Second)
	wm.Apply([]Edge{{U: 2, V: 3, T: fc.Now()}})
	if got := wm.WindowLen(); got != 3 {
		t.Fatalf("window len = %d, want 3", got)
	}

	// 61s after t0: the first two arrivals age out, the third survives.
	fc.Advance(31 * time.Second)
	if expired := wm.ExpireByAge(fc.Now()); expired != 2 {
		t.Fatalf("expired %d arrivals, want 2", expired)
	}
	if got := wm.WindowLen(); got != 1 {
		t.Fatalf("window len after expiry = %d, want 1", got)
	}
	if conn, _ := wm.IsConnected(0, 1); conn {
		t.Fatal("expired edge still connects 0-1")
	}
	if conn, _ := wm.IsConnected(2, 3); !conn {
		t.Fatal("live edge lost: 2-3 disconnected")
	}
}

func TestWindowManagerClampsRogueEventTimes(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	wm, err := NewWindowManager(WindowConfig{
		N:        10,
		Monitors: []string{MonitorConn},
		MaxAge:   time.Minute,
		Clock:    fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A far-future event time must not stall expiry of later arrivals:
	// it is clamped to ingestion time (t=0) and ages out like everything
	// else.
	wm.Apply([]Edge{{U: 0, V: 1, T: fc.Now().Add(1000 * time.Hour)}})
	fc.Advance(30 * time.Second)
	// An out-of-order old timestamp is clamped up to the previous
	// recorded time (t=0, keeping the sequence monotone), so it expires
	// together with the first edge.
	wm.Apply([]Edge{{U: 1, V: 2, T: fc.Now().Add(-time.Hour)}})
	fc.Advance(45 * time.Second)
	// Both recorded times are 0; at now=75s the 60s cutoff passes them.
	if expired := wm.ExpireByAge(fc.Now()); expired != 2 {
		t.Fatalf("expired %d, want 2 (both clamped to t=0)", expired)
	}
	if got := wm.WindowLen(); got != 0 {
		t.Fatalf("window len = %d, want 0", got)
	}
	// A fresh edge stamped now survives: the clamp never pushes times
	// forward past the ingestion clock.
	wm.Apply([]Edge{{U: 2, V: 3, T: fc.Now()}})
	if expired := wm.ExpireByAge(fc.Now()); expired != 0 {
		t.Fatalf("expired %d fresh arrivals, want 0", expired)
	}
	if conn, _ := wm.IsConnected(2, 3); !conn {
		t.Fatal("fresh edge lost")
	}
}

func TestWindowManagerQueryErrors(t *testing.T) {
	wm, err := NewWindowManager(WindowConfig{N: 10, Monitors: []string{MonitorConn}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wm.IsBipartite(); err == nil {
		t.Fatal("IsBipartite without bipartite monitor should error")
	}
	if _, err := wm.IsConnected(-1, 3); err == nil {
		t.Fatal("IsConnected(-1, 3) should error")
	}
	if _, err := NewWindowManager(WindowConfig{N: 10, Monitors: []string{"nope"}}); err == nil {
		t.Fatal("unknown monitor name should error")
	}
}

// TestServiceConcurrentIngestAndQuery exercises the single-writer /
// many-reader discipline under the race detector: several producers submit
// while several readers hammer every query path.
func TestServiceConcurrentIngestAndQuery(t *testing.T) {
	const n = 300
	svc, err := NewService(ServiceConfig{
		Window: WindowConfig{N: n, Seed: 11, MaxArrivals: 2000},
		Ingest: IngesterConfig{MaxBatch: 128, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const producers, perProducer, readers = 4, 2000, 4
	var prodWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			r := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProducer; i++ {
				if err := svc.Submit(randomEdges(r, n, 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for q := 0; q < readers; q++ {
		readWG.Add(1)
		go func(q int) {
			defer readWG.Done()
			r := rand.New(rand.NewSource(int64(100 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := svc.Window()
				if _, err := w.IsConnected(int32(r.Intn(n)), int32(r.Intn(n))); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.NumComponents(); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.IsBipartite(); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.MSFWeight(); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.HasCycle(); err != nil {
					t.Error(err)
					return
				}
				_ = w.Stats()
			}
		}(q)
	}

	prodWG.Wait()
	close(stop)
	readWG.Wait()

	svc.Flush()
	edges, _ := svc.IngestStats()
	if edges != producers*perProducer {
		t.Fatalf("accepted %d edges, want %d", edges, producers*perProducer)
	}
	st := svc.Window().Stats()
	if st.Arrivals != producers*perProducer {
		t.Fatalf("applied %d edges, want %d", st.Arrivals, producers*perProducer)
	}
	if st.WindowLen > 2000 {
		t.Fatalf("window len %d exceeds cap 2000", st.WindowLen)
	}
}
