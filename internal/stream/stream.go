// Package stream turns the offline batch sliding-window structures of
// internal/sw into a concurrent multi-window streaming-graph service layer.
//
// Each window is one pipeline
//
//	producers → Ingester → Multiplexer ═╦═ monitors (internal/sw)
//	                ↑             ↑     ╚═ (parallel fork-join fan-out)
//	          re-batching   uniform timestamps
//
// and a WindowRegistry owns many named windows at once, hash-sharded across
// independent locks. The moving parts:
//
//   - Ingester: accepts individual timestamped edges from many concurrent
//     producers and coalesces them into batches by count threshold and time
//     deadline. This re-batching is what makes the paper's batch bound pay
//     off: one BatchInsert of ℓ edges costs O(ℓ·lg(1+n/ℓ)) work, so feeding
//     single edges (ℓ=1) forfeits the entire lg-factor saving.
//   - WindowManager: owns a Multiplexer of monitors behind a single-writer /
//     many-reader discipline. Batch inserts and expirations are serialized
//     through one writer (Apply); queries are served concurrently under an
//     RWMutex read lock. Timestamps advance uniformly: every monitor sees
//     every arrival, so one expiry count applies to all of them.
//   - Multiplexer: fans one ingested batch out to the monitors chosen by
//     config (connectivity, bipartiteness, approximate MSF weight,
//     k-certificate, cycle-freeness). The monitors are independent, so the
//     fan-out is a parallel region (internal/parallel fork-join): the write
//     lock is held for the max of the monitor apply costs, not the sum.
//   - WindowRegistry: creates, lists and drops named windows at runtime.
//     The name → window table is partitioned over independent lock shards,
//     so tenants addressing different windows never contend on registry
//     state, and each window keeps its own ingester, expiry ticker and
//     RWMutex.
//   - Persistence (OpenRegistry + internal/wal): optionally, every applied
//     batch is write-ahead logged and window configs + expiry watermarks
//     live in an atomic manifest, so a crashed or restarted registry
//     rebuilds every window by replaying its unexpired arrival suffix —
//     the recent-edge property makes the suffix a complete description of
//     the window state, so no structure serialization is ever needed.
//     Checkpoints bound restart time by compacting long suffixes into
//     live-edge snapshots: recovery seeds the window from the newest valid
//     snapshot with one mega-batch apply, replays only the records after
//     it, and segment GC reclaims everything the snapshot covers.
//
// cmd/swserver wraps a registry in an HTTP JSON front-end (windows
// addressed under /windows/{name}/..., legacy single-window routes served
// by a default window); cmd/swload drives it end-to-end, measures sustained
// throughput and query latency, and isolates the fan-out win
// (-fanout-compare) and multi-window scaling (-windows).
package stream

import (
	"strings"
	"time"
)

// Edge is one timestamped streaming edge arrival.
type Edge struct {
	// U, V are the endpoints; both must lie in [0, n) for the window the
	// edge is submitted to. Self-loops (U == V) are dropped by the
	// WindowManager (the underlying forests reject them anyway) and
	// counted in the window stats.
	U, V int32
	// W is the edge weight, used only by the msfweight monitor. Zero or
	// negative weights are treated as 1; weights above the monitor's
	// configured maximum are clamped to it.
	W int64
	// T is the event time, used by time-based window expiry. The zero
	// value means "stamp with the ingestion clock at submit time".
	T time.Time
}

// Monitor is one sliding-window structure fed by the Multiplexer. All
// monitors of a window share global timestamps: each sees every arrival of
// the shared stream (BatchInsert) and the same expiry counts (BatchExpire),
// mirroring the uniform windowing discipline of internal/sw.
type Monitor interface {
	// Name returns the config name of the monitor ("conn", "bipartite",
	// "msfweight", "kcert", "cyclefree").
	Name() string
	// BatchInsert appends a batch of arrivals to the monitor's window.
	BatchInsert(edges []Edge)
	// BatchExpire expires the oldest delta arrivals.
	BatchExpire(delta int)
}

// Monitor names accepted in Config.Monitors.
const (
	MonitorConn      = "conn"
	MonitorBipartite = "bipartite"
	MonitorMSFWeight = "msfweight"
	MonitorKCert     = "kcert"
	MonitorCycleFree = "cyclefree"
)

// AllMonitors lists every monitor name, in canonical order.
func AllMonitors() []string {
	return []string{MonitorConn, MonitorBipartite, MonitorMSFWeight, MonitorKCert, MonitorCycleFree}
}

// SplitMonitors parses a comma-separated monitor list ("conn, kcert") into
// names, trimming whitespace and dropping empty entries. Validation of the
// names themselves happens in NewMultiplexer.
func SplitMonitors(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}
