package stream

import "repro/internal/parallel"

// Multiplexer fans one ingested stream out to several monitors that share
// the batching pipeline: every monitor receives every batch and every
// expiry count, so all monitors observe the same window at all times.
//
// The monitors are mutually independent structures, so the fan-out is a
// fork-join parallel region by default (parallel.Do): all monitors apply
// the same batch concurrently and the apply cost under the window's write
// lock drops from the sum of the monitor costs to the max. Sequential
// fan-out remains available (for measurement, and as the degenerate form on
// GOMAXPROCS=1). Either way the Multiplexer itself is not safe for
// concurrent use — the WindowManager serializes access around it.
type Multiplexer struct {
	mons       []Monitor
	byName     map[string]Monitor
	sequential bool
}

// NewMultiplexer builds a multiplexer over the named monitors. sequential
// forces one-monitor-at-a-time fan-out; the default is parallel fork-join.
func NewMultiplexer(names []string, n int, cfg MonitorConfig, seed uint64, sequential bool) (*Multiplexer, error) {
	if len(names) == 0 {
		names = AllMonitors()
	}
	cfg = cfg.withDefaults()
	m := &Multiplexer{byName: make(map[string]Monitor, len(names)), sequential: sequential}
	for i, name := range names {
		if _, dup := m.byName[name]; dup {
			continue
		}
		mon, err := newMonitor(name, n, cfg, seed+uint64(i)*0x9e3779b97f4a7c15+1)
		if err != nil {
			return nil, err
		}
		m.mons = append(m.mons, mon)
		m.byName[name] = mon
	}
	return m, nil
}

// fanout applies one operation to every monitor, in parallel unless the
// multiplexer is sequential or trivially small.
func (m *Multiplexer) fanout(apply func(Monitor)) {
	if m.sequential || len(m.mons) <= 1 {
		for _, mon := range m.mons {
			apply(mon)
		}
		return
	}
	fns := make([]func(), len(m.mons))
	for i, mon := range m.mons {
		fns[i] = func() { apply(mon) }
	}
	parallel.Do(fns...)
}

// BatchInsert fans a batch out to every monitor. The batch slice is only
// read by the monitors (each converts it into its own representation), so
// sharing it across the parallel region is safe.
func (m *Multiplexer) BatchInsert(edges []Edge) {
	m.fanout(func(mon Monitor) { mon.BatchInsert(edges) })
}

// BatchExpire expires the oldest delta arrivals in every monitor.
func (m *Multiplexer) BatchExpire(delta int) {
	if delta <= 0 {
		return
	}
	m.fanout(func(mon Monitor) { mon.BatchExpire(delta) })
}

// Monitor returns the named monitor, or nil if it was not configured.
func (m *Multiplexer) Monitor(name string) Monitor { return m.byName[name] }

// Sequential reports whether fan-out is forced sequential.
func (m *Multiplexer) Sequential() bool { return m.sequential }

// Names lists the configured monitors in fan-out order.
func (m *Multiplexer) Names() []string {
	out := make([]string, len(m.mons))
	for i, mon := range m.mons {
		out[i] = mon.Name()
	}
	return out
}
