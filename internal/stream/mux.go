package stream

// Multiplexer fans one ingested stream out to several monitors that share
// the batching pipeline: every monitor receives every batch and every
// expiry count, so all monitors observe the same window at all times. The
// Multiplexer itself is not safe for concurrent use — the WindowManager
// serializes access around it.
type Multiplexer struct {
	mons   []Monitor
	byName map[string]Monitor
}

// NewMultiplexer builds a multiplexer over the named monitors.
func NewMultiplexer(names []string, n int, cfg MonitorConfig, seed uint64) (*Multiplexer, error) {
	if len(names) == 0 {
		names = AllMonitors()
	}
	cfg = cfg.withDefaults()
	m := &Multiplexer{byName: make(map[string]Monitor, len(names))}
	for i, name := range names {
		if _, dup := m.byName[name]; dup {
			continue
		}
		mon, err := newMonitor(name, n, cfg, seed+uint64(i)*0x9e3779b97f4a7c15+1)
		if err != nil {
			return nil, err
		}
		m.mons = append(m.mons, mon)
		m.byName[name] = mon
	}
	return m, nil
}

// BatchInsert fans a batch out to every monitor.
func (m *Multiplexer) BatchInsert(edges []Edge) {
	for _, mon := range m.mons {
		mon.BatchInsert(edges)
	}
}

// BatchExpire expires the oldest delta arrivals in every monitor.
func (m *Multiplexer) BatchExpire(delta int) {
	if delta <= 0 {
		return
	}
	for _, mon := range m.mons {
		mon.BatchExpire(delta)
	}
}

// Monitor returns the named monitor, or nil if it was not configured.
func (m *Multiplexer) Monitor(name string) Monitor { return m.byName[name] }

// Names lists the configured monitors in fan-out order.
func (m *Multiplexer) Names() []string {
	out := make([]string, len(m.mons))
	for i, mon := range m.mons {
		out[i] = mon.Name()
	}
	return out
}
