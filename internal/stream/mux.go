package stream

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Multiplexer fans one ingested stream out to several monitors that share
// the batching pipeline: every monitor receives every batch and every
// expiry count, so all monitors observe the same window at all times.
//
// Each monitor sits behind its own RWMutex. The window's single writer
// (see WindowManager) applies a staged op — batch insert plus expiry —
// to every monitor under that monitor's write lock, in parallel across
// monitors by default (parallel.Do); queries take only their target
// monitor's read lock, so a connectivity probe blocks for at most the
// conn monitor's own apply, never the slowest monitor's. Insert and
// expiry land under one lock hold, so a reader always observes a whole
// number of staged ops on its monitor — never half a batch.
//
// The fan-out is also where apply time becomes observable: each slot
// keeps a log₂ histogram of the time the writer spent holding (apply) and
// waiting for (wait) its lock — not just cumulative sums, so /stats and
// /metrics can answer "what does the p99 lock hold on the conn monitor
// look like", which is exactly the window a query can block for. The
// apply runs under a pprof label ("monitor" = name) so CPU profiles
// attribute fan-out time per monitor.
//
// Writer-side methods (Apply) must only be called by the window's writer
// goroutine, one op at a time; the WindowManager's writer lock enforces
// that. Read-side methods are safe for any number of goroutines.
type Multiplexer struct {
	slots      []*monitorSlot
	byName     map[string]*monitorSlot
	sequential bool

	// Construction parameters, retained so a quarantined monitor can be
	// rebuilt bit-identically (same defaulted config, same per-slot seed).
	n       int
	cfg     MonitorConfig
	workers *parallel.Limiter

	// applyCheck, when set, runs at the top of every per-monitor apply —
	// the fault injector's hook for inducing panics and latency at the
	// fan-out boundary ("op":"apply", path "window/monitor").
	applyCheck func(monitor string)

	// onQuarantine, when set, fires once per new quarantine (metrics +
	// structured log wiring; runs on the panicking fan-out goroutine).
	onQuarantine func(q *QuarantineInfo)

	// quarTotal counts slots currently quarantined; the post-apply rebuild
	// scan is gated on it so the healthy hot path pays one atomic load.
	quarTotal atomic.Int32
}

// QuarantineInfo describes one quarantined monitor: why it was isolated and
// whether a rebuild can bring it back. Served machine-readably on 503s and
// in /stats.
type QuarantineInfo struct {
	Monitor string    `json:"monitor"`
	Reason  string    `json:"reason"`
	Stack   string    `json:"stack,omitempty"`
	At      time.Time `json:"at"`
	// Permanent means no rebuild is possible (the window retains no live
	// edges to rebuild from, or the rebuild itself failed); only a process
	// restart recovers the monitor.
	Permanent  bool   `json:"permanent,omitempty"`
	RebuildErr string `json:"rebuild_error,omitempty"`
}

// monitorSlot is one monitor plus its lock and apply accounting.
type monitorSlot struct {
	mon    Monitor
	name   string
	idx    int // fan-out position; the span Arg monitor-scoped spans carry
	seed   uint64
	mu     sync.RWMutex
	labels pprof.LabelSet

	// quar is non-nil while the monitor is quarantined: an apply panicked
	// mid-mutation, so the structure may be arbitrarily corrupt. Applies
	// skip the slot, queries 503, and a background rebuild replaces the
	// monitor wholesale. Written under s.mu (write lock); a reader that
	// observes quar == nil under its read lock is therefore guaranteed a
	// monitor no panic has touched.
	quar atomic.Pointer[QuarantineInfo]

	// rebuilding guards the one-rebuild-at-a-time CAS for this slot.
	rebuilding atomic.Bool

	// Per-slot apply/wait histograms (nanoseconds). Written only by the
	// single writer's fan-out (one Apply at a time), read by Stats
	// snapshots at any time — Observe and Snapshot are both lock-free, so
	// stats readers never queue behind a slow apply. These always record:
	// they back the /stats JSON, which predates the telemetry subsystem.
	applyH telemetry.Histogram
	waitH  telemetry.Histogram

	// Shared process-wide per-monitor-name histograms from the telemetry
	// bundle (nil when telemetry is off) — the /metrics view, aggregated
	// across windows.
	applyShared *telemetry.Histogram
	waitShared  *telemetry.Histogram

	// Last op's timings, written by this slot's fan-out goroutine and read
	// by Apply after the fork-join barrier — ordinary fields, no atomics
	// needed. They feed the fanoutReport that the slow-batch trace logs.
	lastApplyNS int64
	lastWaitNS  int64
}

// MonitorApplyStats is one monitor's cumulative apply accounting.
type MonitorApplyStats struct {
	Name string `json:"name"`
	// Ops counts applied staged ops (batch inserts and/or expiries).
	Ops int64 `json:"ops"`
	// ApplyNS is the cumulative time the writer held this monitor's write
	// lock — the window a query on this monitor can block for.
	ApplyNS int64 `json:"apply_ns"`
	// WaitNS is the cumulative time the writer waited to acquire the
	// write lock (in-flight readers of this monitor hold it out).
	WaitNS int64 `json:"wait_ns"`
	// Per-op lock-hold distribution (log₂ buckets, upper-bound quantiles
	// clamped to max — overestimates by at most 2×).
	ApplyP50NS int64 `json:"apply_p50_ns"`
	ApplyP99NS int64 `json:"apply_p99_ns"`
	ApplyMaxNS int64 `json:"apply_max_ns"`
	WaitP99NS  int64 `json:"wait_p99_ns"`
}

// fanoutReport summarizes one fan-out for the slow-batch trace: the
// monitor with the longest lock hold and the max hold/wait across slots
// (== the fan-out critical path under parallel apply).
type fanoutReport struct {
	slowest string
	applyNS int64
	waitNS  int64
}

// NewMultiplexer builds a multiplexer over the named monitors. sequential
// forces one-monitor-at-a-time fan-out; the default is parallel fork-join.
// workers is the budget monitors with internal fork-joins (msfweight's
// per-level apply) borrow auxiliary goroutines from; nil uses the
// process-wide default budget.
func NewMultiplexer(names []string, n int, cfg MonitorConfig, seed uint64, sequential bool, workers *parallel.Limiter) (*Multiplexer, error) {
	if len(names) == 0 {
		names = AllMonitors()
	}
	cfg = cfg.withDefaults()
	m := &Multiplexer{
		byName:     make(map[string]*monitorSlot, len(names)),
		sequential: sequential,
		n:          n,
		cfg:        cfg,
		workers:    workers,
	}
	for i, name := range names {
		if _, dup := m.byName[name]; dup {
			continue
		}
		monSeed := seed + uint64(i)*0x9e3779b97f4a7c15 + 1
		mon, err := newMonitor(name, n, cfg, monSeed, workers)
		if err != nil {
			return nil, err
		}
		s := &monitorSlot{mon: mon, name: name, idx: len(m.slots), seed: monSeed, labels: pprof.Labels("monitor", name)}
		m.slots = append(m.slots, s)
		m.byName[name] = s
	}
	return m, nil
}

// setApplyCheck installs the fault-injection hook run at the top of every
// per-monitor apply. Called during wiring, before the window is published.
func (m *Multiplexer) setApplyCheck(fn func(monitor string)) { m.applyCheck = fn }

// setOnQuarantine installs the new-quarantine callback. Called during
// wiring, before the window is published.
func (m *Multiplexer) setOnQuarantine(fn func(q *QuarantineInfo)) { m.onQuarantine = fn }

// describePanic extracts a reason and stack from a recovered panic value,
// unwrapping the fork-join capture wrapper when the panic crossed a
// parallel boundary (msfweight's per-level workers).
func describePanic(r any) (reason, stack string) {
	if p, ok := r.(*parallel.Panic); ok {
		return fmt.Sprint(p.Unwrap()), string(p.Stack)
	}
	return fmt.Sprint(r), string(debug.Stack())
}

// setTelemetry points each slot at the process-wide per-monitor histograms
// so fan-out timings land in /metrics as well as /stats. Called during
// wiring, before the window is published to writers.
func (m *Multiplexer) setTelemetry(tm *Metrics) {
	for _, s := range m.slots {
		s.applyShared = tm.monitorApplyHist(s.mon.Name())
		s.waitShared = tm.monitorWaitHist(s.mon.Name())
	}
}

// Apply applies one staged op — a batch insert (possibly empty) followed
// by an expiry of delta arrivals — to every monitor, each under its own
// write lock, in parallel unless the multiplexer is sequential or
// trivially small. The batch slice is only read by the monitors (each
// converts it into its own representation) and is not retained past the
// call, so sharing it across the parallel region — and recycling it after
// Apply returns — is safe. Single-writer: never call concurrently.
//
// The returned report carries the slowest monitor's name and the max
// hold/wait across slots for this op — the fan-out critical path, which
// the slow-batch trace attributes blame with.
//
// traceID tags the shared per-monitor histograms' observations with the
// flight-recorder trace of this op (0 = untraced), so a per-monitor p99
// exemplar links back to the batch that set it.
func (m *Multiplexer) Apply(edges []Edge, delta int, traceID uint64) fanoutReport {
	if len(edges) == 0 && delta <= 0 {
		return fanoutReport{}
	}
	one := func(s *monitorSlot) {
		if s.quar.Load() != nil {
			// Quarantined: the structure is corrupt; feeding it more ops
			// would only deepen the damage. The rebuild catches this slot
			// up from the live ring afterwards.
			s.lastWaitNS, s.lastApplyNS = 0, 0
			return
		}
		pprof.Do(context.Background(), s.labels, func(context.Context) {
			t0 := time.Now()
			s.mu.Lock()
			t1 := time.Now()
			// The mutation runs inside its own frame so a panic anywhere in
			// the monitor (internal/sw and internal/rctree panic liberally
			// on invariant violations) is converted into a quarantine while
			// the write lock is STILL HELD — the quarantine marker is
			// published before any reader can acquire the lock and observe
			// the half-mutated structure.
			func() {
				defer func() {
					if r := recover(); r != nil {
						reason, stack := describePanic(r)
						q := &QuarantineInfo{Monitor: s.name, Reason: reason, Stack: stack, At: time.Now()}
						s.quar.Store(q)
						m.quarTotal.Add(1)
						if m.onQuarantine != nil {
							m.onQuarantine(q)
						}
					}
				}()
				if m.applyCheck != nil {
					m.applyCheck(s.name)
				}
				if len(edges) > 0 {
					s.mon.BatchInsert(edges)
				}
				if delta > 0 {
					s.mon.BatchExpire(delta)
				}
			}()
			t2 := time.Now()
			s.mu.Unlock()
			s.lastWaitNS = t1.Sub(t0).Nanoseconds()
			s.lastApplyNS = t2.Sub(t1).Nanoseconds()
			s.waitH.ObserveVal(s.lastWaitNS)
			s.applyH.ObserveVal(s.lastApplyNS)
			s.waitShared.ObserveValTraced(s.lastWaitNS, traceID)
			s.applyShared.ObserveValTraced(s.lastApplyNS, traceID)
		})
	}
	if m.sequential || len(m.slots) <= 1 {
		for _, s := range m.slots {
			one(s)
		}
	} else {
		fns := make([]func(), len(m.slots))
		for i, s := range m.slots {
			fns[i] = func() { one(s) }
		}
		parallel.Do(fns...)
	}
	// All slot goroutines joined; lastApplyNS/lastWaitNS are settled.
	var rep fanoutReport
	for _, s := range m.slots {
		if s.lastApplyNS >= rep.applyNS {
			rep.applyNS = s.lastApplyNS
			rep.slowest = s.mon.Name()
		}
		if s.lastWaitNS > rep.waitNS {
			rep.waitNS = s.lastWaitNS
		}
	}
	return rep
}

// withRead runs fn on the named monitor under that monitor's read lock,
// reporting whether the monitor is configured (ok) and, when it is, whether
// it is currently quarantined (q != nil — fn did NOT run). The quarantine
// check happens under the read lock: a quarantine is published while the
// apply still holds the write lock, so a reader that sees q == nil holds a
// monitor no panic has touched. fn runs concurrently with other readers and
// with applies to OTHER monitors; it waits out only an in-flight apply to
// this one.
func (m *Multiplexer) withRead(name string, fn func(Monitor)) (q *QuarantineInfo, ok bool) {
	s := m.byName[name]
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if q := s.quar.Load(); q != nil {
		return q, true
	}
	fn(s.mon)
	return nil, true
}

// withReadTimed is withRead plus query-span timing: it reports the
// monitor's fan-out index, how long fn waited for the read lock (the
// time an in-flight apply held it out) and how long fn ran. Three extra
// clock reads; the untraced query path keeps using withRead.
func (m *Multiplexer) withReadTimed(name string, fn func(Monitor)) (idx int, waitNS, execNS int64, q *QuarantineInfo, ok bool) {
	s := m.byName[name]
	if s == nil {
		return 0, 0, 0, nil, false
	}
	t0 := time.Now()
	s.mu.RLock()
	t1 := time.Now()
	if q := s.quar.Load(); q != nil {
		s.mu.RUnlock()
		return s.idx, t1.Sub(t0).Nanoseconds(), 0, q, true
	}
	fn(s.mon)
	execNS = time.Since(t1).Nanoseconds()
	s.mu.RUnlock()
	return s.idx, t1.Sub(t0).Nanoseconds(), execNS, nil, true
}

// quarantined returns the named monitor's quarantine record, or nil.
func (m *Multiplexer) quarantined(name string) *QuarantineInfo {
	if s := m.byName[name]; s != nil {
		return s.quar.Load()
	}
	return nil
}

// anyQuarantined reports whether any slot is quarantined — one atomic load,
// cheap enough for the post-apply hot path.
func (m *Multiplexer) anyQuarantined() bool { return m.quarTotal.Load() > 0 }

// Quarantined snapshots every quarantined monitor's record, in fan-out
// order. Empty on a healthy multiplexer.
func (m *Multiplexer) Quarantined() []QuarantineInfo {
	if m.quarTotal.Load() == 0 {
		return nil
	}
	var out []QuarantineInfo
	for _, s := range m.slots {
		if q := s.quar.Load(); q != nil {
			out = append(out, *q)
		}
	}
	return out
}

// claimRebuilds returns the quarantined, non-permanent slots this caller
// just won the right to rebuild (rebuilding CAS false→true). The caller
// must finish each claim with swapMonitor or failRebuild.
func (m *Multiplexer) claimRebuilds() []*monitorSlot {
	if m.quarTotal.Load() == 0 {
		return nil
	}
	var out []*monitorSlot
	for _, s := range m.slots {
		q := s.quar.Load()
		if q == nil || q.Permanent {
			continue
		}
		if s.rebuilding.CompareAndSwap(false, true) {
			out = append(out, s)
		}
	}
	return out
}

// rebuildMonitor constructs a replacement monitor for the slot with the
// slot's original seed and the multiplexer's retained (defaulted) config —
// the replacement is distribution-identical to the original at birth.
func (m *Multiplexer) rebuildMonitor(s *monitorSlot) (Monitor, error) {
	return newMonitor(s.name, m.n, m.cfg, s.seed, m.workers)
}

// swapMonitor installs the rebuilt monitor and lifts the quarantine. The
// swap happens under the slot's write lock, so readers move atomically from
// "503 quarantined" to the healthy replacement.
func (m *Multiplexer) swapMonitor(s *monitorSlot, mon Monitor) {
	s.mu.Lock()
	s.mon = mon
	s.quar.Store(nil)
	s.mu.Unlock()
	m.quarTotal.Add(-1)
	s.rebuilding.Store(false)
}

// failRebuild marks a claimed rebuild as permanently failed; the quarantine
// stays, annotated with why no further rebuilds will be attempted.
func (m *Multiplexer) failRebuild(s *monitorSlot, reason string) {
	if q := s.quar.Load(); q != nil {
		qq := *q
		qq.Permanent = true
		qq.RebuildErr = reason
		s.quar.Store(&qq)
	}
	s.rebuilding.Store(false)
}

// forEachLastTiming reads every slot's last-op lock wait and hold. Only
// valid on the writer goroutine after an Apply's fork-join barrier —
// exactly where the flight recorder stamps per-monitor spans.
func (m *Multiplexer) forEachLastTiming(fn func(idx int, waitNS, applyNS int64)) {
	for _, s := range m.slots {
		fn(s.idx, s.lastWaitNS, s.lastApplyNS)
	}
}

// Monitor returns the named monitor, or nil if it was not configured.
// The caller is responsible for locking (tests and the WindowManager's
// internal helpers); external readers go through withRead.
func (m *Multiplexer) Monitor(name string) Monitor {
	if s := m.byName[name]; s != nil {
		return s.mon
	}
	return nil
}

// Sequential reports whether fan-out is forced sequential.
func (m *Multiplexer) Sequential() bool { return m.sequential }

// Names lists the configured monitors in fan-out order.
func (m *Multiplexer) Names() []string {
	out := make([]string, len(m.slots))
	for i, s := range m.slots {
		out[i] = s.mon.Name()
	}
	return out
}

// Stats snapshots every monitor's apply accounting, in fan-out order.
func (m *Multiplexer) Stats() []MonitorApplyStats {
	out := make([]MonitorApplyStats, len(m.slots))
	for i, s := range m.slots {
		a := s.applyH.Snapshot()
		w := s.waitH.Snapshot()
		out[i] = MonitorApplyStats{
			Name:       s.mon.Name(),
			Ops:        a.Count,
			ApplyNS:    a.Sum,
			WaitNS:     w.Sum,
			ApplyP50NS: a.P50,
			ApplyP99NS: a.P99,
			ApplyMaxNS: a.Max,
			WaitP99NS:  w.P99,
		}
	}
	return out
}
