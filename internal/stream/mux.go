package stream

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Multiplexer fans one ingested stream out to several monitors that share
// the batching pipeline: every monitor receives every batch and every
// expiry count, so all monitors observe the same window at all times.
//
// Each monitor sits behind its own RWMutex. The window's single writer
// (see WindowManager) applies a staged op — batch insert plus expiry —
// to every monitor under that monitor's write lock, in parallel across
// monitors by default (parallel.Do); queries take only their target
// monitor's read lock, so a connectivity probe blocks for at most the
// conn monitor's own apply, never the slowest monitor's. Insert and
// expiry land under one lock hold, so a reader always observes a whole
// number of staged ops on its monitor — never half a batch.
//
// The fan-out is also where apply time becomes observable: each slot
// keeps a log₂ histogram of the time the writer spent holding (apply) and
// waiting for (wait) its lock — not just cumulative sums, so /stats and
// /metrics can answer "what does the p99 lock hold on the conn monitor
// look like", which is exactly the window a query can block for. The
// apply runs under a pprof label ("monitor" = name) so CPU profiles
// attribute fan-out time per monitor.
//
// Writer-side methods (Apply) must only be called by the window's writer
// goroutine, one op at a time; the WindowManager's writer lock enforces
// that. Read-side methods are safe for any number of goroutines.
type Multiplexer struct {
	slots      []*monitorSlot
	byName     map[string]*monitorSlot
	sequential bool
}

// monitorSlot is one monitor plus its lock and apply accounting.
type monitorSlot struct {
	mon    Monitor
	idx    int // fan-out position; the span Arg monitor-scoped spans carry
	mu     sync.RWMutex
	labels pprof.LabelSet

	// Per-slot apply/wait histograms (nanoseconds). Written only by the
	// single writer's fan-out (one Apply at a time), read by Stats
	// snapshots at any time — Observe and Snapshot are both lock-free, so
	// stats readers never queue behind a slow apply. These always record:
	// they back the /stats JSON, which predates the telemetry subsystem.
	applyH telemetry.Histogram
	waitH  telemetry.Histogram

	// Shared process-wide per-monitor-name histograms from the telemetry
	// bundle (nil when telemetry is off) — the /metrics view, aggregated
	// across windows.
	applyShared *telemetry.Histogram
	waitShared  *telemetry.Histogram

	// Last op's timings, written by this slot's fan-out goroutine and read
	// by Apply after the fork-join barrier — ordinary fields, no atomics
	// needed. They feed the fanoutReport that the slow-batch trace logs.
	lastApplyNS int64
	lastWaitNS  int64
}

// MonitorApplyStats is one monitor's cumulative apply accounting.
type MonitorApplyStats struct {
	Name string `json:"name"`
	// Ops counts applied staged ops (batch inserts and/or expiries).
	Ops int64 `json:"ops"`
	// ApplyNS is the cumulative time the writer held this monitor's write
	// lock — the window a query on this monitor can block for.
	ApplyNS int64 `json:"apply_ns"`
	// WaitNS is the cumulative time the writer waited to acquire the
	// write lock (in-flight readers of this monitor hold it out).
	WaitNS int64 `json:"wait_ns"`
	// Per-op lock-hold distribution (log₂ buckets, upper-bound quantiles
	// clamped to max — overestimates by at most 2×).
	ApplyP50NS int64 `json:"apply_p50_ns"`
	ApplyP99NS int64 `json:"apply_p99_ns"`
	ApplyMaxNS int64 `json:"apply_max_ns"`
	WaitP99NS  int64 `json:"wait_p99_ns"`
}

// fanoutReport summarizes one fan-out for the slow-batch trace: the
// monitor with the longest lock hold and the max hold/wait across slots
// (== the fan-out critical path under parallel apply).
type fanoutReport struct {
	slowest string
	applyNS int64
	waitNS  int64
}

// NewMultiplexer builds a multiplexer over the named monitors. sequential
// forces one-monitor-at-a-time fan-out; the default is parallel fork-join.
// workers is the budget monitors with internal fork-joins (msfweight's
// per-level apply) borrow auxiliary goroutines from; nil uses the
// process-wide default budget.
func NewMultiplexer(names []string, n int, cfg MonitorConfig, seed uint64, sequential bool, workers *parallel.Limiter) (*Multiplexer, error) {
	if len(names) == 0 {
		names = AllMonitors()
	}
	cfg = cfg.withDefaults()
	m := &Multiplexer{byName: make(map[string]*monitorSlot, len(names)), sequential: sequential}
	for i, name := range names {
		if _, dup := m.byName[name]; dup {
			continue
		}
		mon, err := newMonitor(name, n, cfg, seed+uint64(i)*0x9e3779b97f4a7c15+1, workers)
		if err != nil {
			return nil, err
		}
		s := &monitorSlot{mon: mon, idx: len(m.slots), labels: pprof.Labels("monitor", name)}
		m.slots = append(m.slots, s)
		m.byName[name] = s
	}
	return m, nil
}

// setTelemetry points each slot at the process-wide per-monitor histograms
// so fan-out timings land in /metrics as well as /stats. Called during
// wiring, before the window is published to writers.
func (m *Multiplexer) setTelemetry(tm *Metrics) {
	for _, s := range m.slots {
		s.applyShared = tm.monitorApplyHist(s.mon.Name())
		s.waitShared = tm.monitorWaitHist(s.mon.Name())
	}
}

// Apply applies one staged op — a batch insert (possibly empty) followed
// by an expiry of delta arrivals — to every monitor, each under its own
// write lock, in parallel unless the multiplexer is sequential or
// trivially small. The batch slice is only read by the monitors (each
// converts it into its own representation) and is not retained past the
// call, so sharing it across the parallel region — and recycling it after
// Apply returns — is safe. Single-writer: never call concurrently.
//
// The returned report carries the slowest monitor's name and the max
// hold/wait across slots for this op — the fan-out critical path, which
// the slow-batch trace attributes blame with.
//
// traceID tags the shared per-monitor histograms' observations with the
// flight-recorder trace of this op (0 = untraced), so a per-monitor p99
// exemplar links back to the batch that set it.
func (m *Multiplexer) Apply(edges []Edge, delta int, traceID uint64) fanoutReport {
	if len(edges) == 0 && delta <= 0 {
		return fanoutReport{}
	}
	one := func(s *monitorSlot) {
		pprof.Do(context.Background(), s.labels, func(context.Context) {
			t0 := time.Now()
			s.mu.Lock()
			t1 := time.Now()
			if len(edges) > 0 {
				s.mon.BatchInsert(edges)
			}
			if delta > 0 {
				s.mon.BatchExpire(delta)
			}
			t2 := time.Now()
			s.mu.Unlock()
			s.lastWaitNS = t1.Sub(t0).Nanoseconds()
			s.lastApplyNS = t2.Sub(t1).Nanoseconds()
			s.waitH.ObserveVal(s.lastWaitNS)
			s.applyH.ObserveVal(s.lastApplyNS)
			s.waitShared.ObserveValTraced(s.lastWaitNS, traceID)
			s.applyShared.ObserveValTraced(s.lastApplyNS, traceID)
		})
	}
	if m.sequential || len(m.slots) <= 1 {
		for _, s := range m.slots {
			one(s)
		}
	} else {
		fns := make([]func(), len(m.slots))
		for i, s := range m.slots {
			fns[i] = func() { one(s) }
		}
		parallel.Do(fns...)
	}
	// All slot goroutines joined; lastApplyNS/lastWaitNS are settled.
	var rep fanoutReport
	for _, s := range m.slots {
		if s.lastApplyNS >= rep.applyNS {
			rep.applyNS = s.lastApplyNS
			rep.slowest = s.mon.Name()
		}
		if s.lastWaitNS > rep.waitNS {
			rep.waitNS = s.lastWaitNS
		}
	}
	return rep
}

// withRead runs fn on the named monitor under that monitor's read lock,
// reporting whether the monitor is configured. fn runs concurrently with
// other readers and with applies to OTHER monitors; it waits out only an
// in-flight apply to this one.
func (m *Multiplexer) withRead(name string, fn func(Monitor)) bool {
	s := m.byName[name]
	if s == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.mon)
	return true
}

// withReadTimed is withRead plus query-span timing: it reports the
// monitor's fan-out index, how long fn waited for the read lock (the
// time an in-flight apply held it out) and how long fn ran. Three extra
// clock reads; the untraced query path keeps using withRead.
func (m *Multiplexer) withReadTimed(name string, fn func(Monitor)) (idx int, waitNS, execNS int64, ok bool) {
	s := m.byName[name]
	if s == nil {
		return 0, 0, 0, false
	}
	t0 := time.Now()
	s.mu.RLock()
	t1 := time.Now()
	fn(s.mon)
	execNS = time.Since(t1).Nanoseconds()
	s.mu.RUnlock()
	return s.idx, t1.Sub(t0).Nanoseconds(), execNS, true
}

// forEachLastTiming reads every slot's last-op lock wait and hold. Only
// valid on the writer goroutine after an Apply's fork-join barrier —
// exactly where the flight recorder stamps per-monitor spans.
func (m *Multiplexer) forEachLastTiming(fn func(idx int, waitNS, applyNS int64)) {
	for _, s := range m.slots {
		fn(s.idx, s.lastWaitNS, s.lastApplyNS)
	}
}

// Monitor returns the named monitor, or nil if it was not configured.
// The caller is responsible for locking (tests and the WindowManager's
// internal helpers); external readers go through withRead.
func (m *Multiplexer) Monitor(name string) Monitor {
	if s := m.byName[name]; s != nil {
		return s.mon
	}
	return nil
}

// Sequential reports whether fan-out is forced sequential.
func (m *Multiplexer) Sequential() bool { return m.sequential }

// Names lists the configured monitors in fan-out order.
func (m *Multiplexer) Names() []string {
	out := make([]string, len(m.slots))
	for i, s := range m.slots {
		out[i] = s.mon.Name()
	}
	return out
}

// Stats snapshots every monitor's apply accounting, in fan-out order.
func (m *Multiplexer) Stats() []MonitorApplyStats {
	out := make([]MonitorApplyStats, len(m.slots))
	for i, s := range m.slots {
		a := s.applyH.Snapshot()
		w := s.waitH.Snapshot()
		out[i] = MonitorApplyStats{
			Name:       s.mon.Name(),
			Ops:        a.Count,
			ApplyNS:    a.Sum,
			WaitNS:     w.Sum,
			ApplyP50NS: a.P50,
			ApplyP99NS: a.P99,
			ApplyMaxNS: a.Max,
			WaitP99NS:  w.P99,
		}
	}
	return out
}
