package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/wal"
)

// ErrNotPersistent is returned by Checkpoint on a registry without a
// durability layer.
var ErrNotPersistent = errors.New("stream: registry has no persistence")

// FsyncPolicy names a WAL fsync policy on the wire and the command line.
type FsyncPolicy string

const (
	// FsyncInterval fsyncs at most once per SyncEvery (default); a power
	// loss risks one interval of acknowledged edges, a process crash none.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncBatch fsyncs every flushed batch; nothing acknowledged is lost.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncOff never fsyncs from the hot path.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a policy name ("" selects the default).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncInterval, nil
	case FsyncInterval, FsyncBatch, FsyncOff:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("stream: unknown fsync policy %q (want batch, interval or off)", s)
}

func (p FsyncPolicy) walPolicy() wal.SyncPolicy {
	switch p {
	case FsyncBatch:
		return wal.SyncBatch
	case FsyncOff:
		return wal.SyncNone
	default:
		return wal.SyncInterval
	}
}

// PersistenceConfig enables the durability layer of a WindowRegistry: a
// per-window write-ahead batch log plus an atomically-updated manifest,
// giving crash recovery by suffix replay. Zero values select defaults.
type PersistenceConfig struct {
	// Dir is the data directory (required): MANIFEST.json plus one
	// windows/<name>/ log directory per window.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes is the log segment rotation threshold (default 4 MiB).
	SegmentBytes int64
	// CheckpointInterval runs Checkpoint on a background ticker
	// (persisting expiry watermarks and pruning fully-expired segments).
	// 0 disables the ticker; Checkpoint can still be called manually or
	// via POST /admin/checkpoint.
	CheckpointInterval time.Duration
	// ReplayBatch is the recovery coalescing target in edges (default
	// 128k): replayed records are merged into batches of at least this
	// many edges before being applied, exploiting the paper's batch bound
	// — one BatchInsert of ℓ edges costs O(ℓ·lg(1+n/ℓ)), so rebuilding
	// from a handful of huge batches is far cheaper than re-paying the
	// live stream's per-batch costs. Merging is sound because each
	// monitor's forests are canonical in the arrival sequence (recency
	// weights are distinct), so batch boundaries never change answers.
	ReplayBatch int
}

// CheckpointStats summarizes one Checkpoint pass.
type CheckpointStats struct {
	Windows        int           `json:"windows"`
	PrunedSegments int           `json:"pruned_segments"`
	Elapsed        time.Duration `json:"elapsed_ns"`
}

// PersistenceStats is the /stats snapshot of the durability layer.
type PersistenceStats struct {
	Dir              string `json:"dir"`
	Fsync            string `json:"fsync"`
	Checkpoints      int64  `json:"checkpoints"`
	CheckpointErrors int64  `json:"checkpoint_errors"`
	AppendErrors     int64  `json:"append_errors"`
	LastError        string `json:"last_error,omitempty"`
}

// RecoveryReport summarizes a boot-time recovery pass.
type RecoveryReport struct {
	Windows        int           // windows re-created from the manifest
	Batches        int64         // log records replayed
	Edges          int64         // edges replayed
	SkippedRecords int64         // records skipped as fully expired
	Elapsed        time.Duration // wall time of the whole recovery
}

// windowMeta is the JSON image of a window's configuration stored in the
// manifest — everything needed to rebuild the ServiceConfig except the
// clocks, which recovery takes from the registry template.
type windowMeta struct {
	N                int      `json:"n"`
	Seed             uint64   `json:"seed"`
	Monitors         []string `json:"monitors,omitempty"`
	Eps              float64  `json:"eps,omitempty"`
	MaxWeight        int64    `json:"max_weight,omitempty"`
	K                int      `json:"k,omitempty"`
	MaxArrivals      int      `json:"max_arrivals,omitempty"`
	MaxAgeNS         int64    `json:"max_age_ns,omitempty"`
	SequentialFanout bool     `json:"sequential_fanout,omitempty"`
	MaxBatch         int      `json:"max_batch,omitempty"`
	MaxDelayNS       int64    `json:"max_delay_ns,omitempty"`
	QueueLen         int      `json:"queue_len,omitempty"`
}

func metaFromConfig(cfg ServiceConfig) windowMeta {
	return windowMeta{
		N:                cfg.Window.N,
		Seed:             cfg.Window.Seed,
		Monitors:         cfg.Window.Monitors,
		Eps:              cfg.Window.Monitor.Eps,
		MaxWeight:        cfg.Window.Monitor.MaxWeight,
		K:                cfg.Window.Monitor.K,
		MaxArrivals:      cfg.Window.MaxArrivals,
		MaxAgeNS:         int64(cfg.Window.MaxAge),
		SequentialFanout: cfg.Window.SequentialFanout,
		MaxBatch:         cfg.Ingest.MaxBatch,
		MaxDelayNS:       int64(cfg.Ingest.MaxDelay),
		QueueLen:         cfg.Ingest.QueueLen,
	}
}

// configFromMeta rebuilds a ServiceConfig, borrowing clocks from the
// template (tests inject FakeClock through it; production leaves it nil
// and gets the real clock).
func configFromMeta(m windowMeta, tpl ServiceConfig) ServiceConfig {
	return ServiceConfig{
		Window: WindowConfig{
			N:                m.N,
			Seed:             m.Seed,
			Monitors:         m.Monitors,
			Monitor:          MonitorConfig{Eps: m.Eps, MaxWeight: m.MaxWeight, K: m.K},
			MaxArrivals:      m.MaxArrivals,
			MaxAge:           time.Duration(m.MaxAgeNS),
			Clock:            tpl.Window.Clock,
			SequentialFanout: m.SequentialFanout,
		},
		Ingest: IngesterConfig{
			MaxBatch: m.MaxBatch,
			MaxDelay: time.Duration(m.MaxDelayNS),
			QueueLen: m.QueueLen,
			Clock:    tpl.Ingest.Clock,
		},
	}.withClockDefaults()
}

// persistedWindow is the durability state of one live window.
type persistedWindow struct {
	svc  *Service
	log  *wal.Log
	meta json.RawMessage
	// base is the absolute arrival index of the window manager's arrival
	// 0: zero for windows created this process lifetime, the first
	// replayed record's seq after a recovery. The manifest watermark is
	// base + WindowManager.Watermark().
	base uint64
	// committed marks the window as published: manifest saves skip
	// uncommitted entries, so a Create that loses its race against Close
	// (and reports ErrRegistryClosed) can never leak a ghost manifest
	// entry that a later restart would resurrect.
	committed bool
	// scratch is the wal.Edge conversion buffer; only the single flush
	// goroutine touches it (the recorder runs under the window write
	// lock).
	scratch []wal.Edge
}

func (pw *persistedWindow) watermark() uint64 {
	return pw.base + uint64(pw.svc.Window().Watermark())
}

// persister owns a registry's durability state: the per-window logs and
// the manifest image. Its mutex guards the window table and manifest
// writes; it is never taken from the recorder hot path (which holds the
// window write lock), so {window lock → log} and {persister → window
// read lock, persister → log} never form a cycle.
type persister struct {
	cfg    PersistenceConfig
	walOpt wal.Options

	mu     sync.Mutex
	wins   map[string]*persistedWindow
	closed bool // set by closeAll: no further manifest writes

	checkpoints int64

	// errMu guards the error tallies; the append side is written from the
	// recorder (which holds the window write lock — see the ordering note
	// above), so it must never nest inside p.mu acquisition from there.
	errMu       sync.Mutex
	appendErrs  int64
	lastErr     error // sticky: an append error means acknowledged data is missing from the log
	ckptErrs    int64
	lastCkptErr error // transient: cleared by the next successful checkpoint
}

func newPersister(cfg PersistenceConfig) (*persister, error) {
	if cfg.Dir == "" {
		return nil, errors.New("stream: persistence needs a data directory")
	}
	pol, err := ParseFsyncPolicy(string(cfg.Fsync))
	if err != nil {
		return nil, err
	}
	cfg.Fsync = pol
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &persister{
		cfg: cfg,
		walOpt: wal.Options{
			SegmentBytes: cfg.SegmentBytes,
			Sync:         pol.walPolicy(),
			SyncEvery:    cfg.SyncEvery,
		},
		wins: make(map[string]*persistedWindow),
	}, nil
}

func (p *persister) windowDir(name string) string {
	return filepath.Join(p.cfg.Dir, "windows", name)
}

func (p *persister) noteErr(err error) {
	p.errMu.Lock()
	p.appendErrs++
	p.lastErr = err
	p.errMu.Unlock()
}

func (p *persister) noteCkptErr(err error) {
	p.errMu.Lock()
	p.ckptErrs++
	p.lastCkptErr = err
	p.errMu.Unlock()
}

// attachRecorder wires the window's write-ahead hook to the log. On an
// append failure the window keeps serving (availability over durability)
// and the error is tallied for /stats and the next Checkpoint to surface.
func (p *persister) attachRecorder(pw *persistedWindow) {
	pw.svc.Window().setRecorder(func(edges []Edge) {
		pw.scratch = pw.scratch[:0]
		for _, e := range edges {
			pw.scratch = append(pw.scratch, wal.Edge{U: e.U, V: e.V, W: e.W, T: e.T.UnixNano()})
		}
		if _, err := pw.log.Append(pw.scratch); err != nil {
			p.noteErr(err)
		}
	})
}

// addWindow opens a fresh log for a window being created and attaches the
// recorder. Called by Create after the service is built but before the
// window is published, so no edge can be accepted un-logged. The manifest
// is NOT written here — commitWindow does that at publish time, so a
// Create that loses its race against Close leaves no durable trace.
func (p *persister) addWindow(name string, cfg ServiceConfig, svc *Service) error {
	meta, err := json.Marshal(metaFromConfig(cfg))
	if err != nil {
		return err
	}
	dir := p.windowDir(name)
	// A crashed Drop can leave an orphan log dir with no manifest entry;
	// reusing the name must not resurrect its records.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	log, err := wal.Open(dir, p.walOpt)
	if err != nil {
		return err
	}
	pw := &persistedWindow{svc: svc, log: log, meta: meta}
	p.attachRecorder(pw)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		log.Close()
		return ErrRegistryClosed
	}
	p.wins[name] = pw
	return nil
}

// commitWindow registers a created window in the manifest. Create calls
// it while holding the shard lock, after its closed re-check and before
// publishing the handle, so the manifest gains the window exactly when
// the registry does. The fsync+rename under the shard lock only stalls
// same-shard control-plane operations — data-plane lookups on other
// windows in the shard read-lock and creates are rare.
func (p *persister) commitWindow(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pw, ok := p.wins[name]
	if !ok || p.closed {
		return ErrRegistryClosed
	}
	pw.committed = true
	if _, err := p.saveManifestLocked(); err != nil {
		pw.committed = false
		return err
	}
	return nil
}

// removeWindow forgets a dropped window: manifest entry first (so a crash
// mid-removal leaves an ignorable orphan dir, not a manifest entry with no
// log), then the log itself. svc pins the identity: a Drop that already
// freed the name must not tear down a newer window that won the name in
// the meantime. Unknown names no-op (attached, non-persisted windows drop
// through here too), as does a persister already finalized by Close — in
// the narrow Drop-races-Close window the final manifest may keep the
// dropped window, which a restart resurrects empty-handed but consistent.
func (p *persister) removeWindow(name string, svc *Service) error {
	p.mu.Lock()
	pw, ok := p.wins[name]
	if !ok || p.closed || (svc != nil && pw.svc != svc) {
		p.mu.Unlock()
		return nil
	}
	delete(p.wins, name)
	var err error
	if pw.committed {
		_, err = p.saveManifestLocked()
	}
	p.mu.Unlock()
	pw.log.Close()
	if rmErr := os.RemoveAll(p.windowDir(name)); err == nil {
		err = rmErr
	}
	return err
}

// saveManifestLocked rewrites the manifest from the live window table.
// Callers hold p.mu. The ordering is load-bearing: watermarks are captured
// FIRST, then every log is fsynced, then the manifest is written. A
// watermark counts only arrivals already applied (and therefore already
// appended) when it was read, so the sync that follows makes the log
// durable past everything the persisted watermark invalidates — the
// manifest can never claim an expiry horizon beyond the durable log end,
// which would let a post-crash restart renumber new appends below the
// watermark and silently skip them on the crash after that.
func (p *persister) saveManifestLocked() (map[string]uint64, error) {
	watermarks := make(map[string]uint64, len(p.wins))
	for name, pw := range p.wins {
		if !pw.committed {
			continue // an unpublished Create must leave no durable trace
		}
		watermarks[name] = pw.watermark()
	}
	for _, pw := range p.wins {
		if err := pw.log.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return nil, err
		}
	}
	m := &wal.Manifest{Version: wal.ManifestVersion, Windows: make(map[string]wal.WindowState, len(watermarks))}
	for name, pw := range p.wins {
		if w, ok := watermarks[name]; ok {
			m.Windows[name] = wal.WindowState{Config: pw.meta, Watermark: w}
		}
	}
	if err := wal.SaveManifest(p.cfg.Dir, m); err != nil {
		return nil, err
	}
	return watermarks, nil
}

// checkpoint makes the current expiry progress durable and reclaims
// fully-expired log segments: write the manifest (capture watermarks →
// sync logs → atomic rename, see saveManifestLocked), then prune with
// exactly the watermarks the durable manifest records — pruning with
// fresher ones could delete segments a crash would still replay. Any
// append error tallied since the last checkpoint is surfaced here.
func (p *persister) checkpoint() (CheckpointStats, error) {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var st CheckpointStats
	if p.closed {
		// A checkpoint racing (or following) Close must not rewrite the
		// manifest from the emptied window table — that would erase every
		// durable registration the final checkpoint just wrote.
		return st, ErrRegistryClosed
	}
	watermarks, err := p.saveManifestLocked()
	if err != nil {
		p.noteCkptErr(err)
		return st, err
	}
	for name, pw := range p.wins {
		pruned, err := pw.log.Prune(watermarks[name])
		if err != nil {
			p.noteCkptErr(err)
			return st, err
		}
		st.PrunedSegments += pruned
	}
	st.Windows = len(watermarks)
	st.Elapsed = time.Since(start)
	p.checkpoints++
	p.errMu.Lock()
	p.lastCkptErr = nil // durability restored: the manifest write succeeded
	p.errMu.Unlock()
	// A recorded append error means some acknowledged batch never reached
	// the log: the checkpoint "succeeded" mechanically but durability is
	// compromised until restart, so keep surfacing it (sticky; also
	// visible in PersistenceStats).
	p.errMu.Lock()
	aerr := p.lastErr
	p.errMu.Unlock()
	if aerr != nil {
		return st, fmt.Errorf("stream: WAL append failed: %w", aerr)
	}
	return st, nil
}

// closeAll runs after every service has been closed (so the shutdown
// drain's final appends are in the logs): persist final watermarks, then
// close the logs.
func (p *persister) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true               // later checkpoints/creates/drops must not touch the manifest
	_, _ = p.saveManifestLocked() // captures watermarks, syncs, renames
	for _, pw := range p.wins {
		_ = pw.log.Close()
	}
	p.wins = make(map[string]*persistedWindow)
}

func (p *persister) stats() PersistenceStats {
	p.mu.Lock()
	ckpts := p.checkpoints
	p.mu.Unlock()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	st := PersistenceStats{
		Dir:              p.cfg.Dir,
		Fsync:            string(p.cfg.Fsync),
		Checkpoints:      ckpts,
		CheckpointErrors: p.ckptErrs,
		AppendErrors:     p.appendErrs,
	}
	switch { // a lost append outranks a failed checkpoint
	case p.lastErr != nil:
		st.LastError = p.lastErr.Error()
	case p.lastCkptErr != nil:
		st.LastError = p.lastCkptErr.Error()
	}
	return st
}

// recoverWindow rebuilds one manifest window: fresh monitors, then a
// replay of every log record past the expiry watermark. Records are
// delivered whole and in order but coalesced into ReplayBatch-sized
// mega-batches before being applied: the arrival sequence and the clamped
// event times are exactly the live run's, and each monitor's forests are
// a canonical function of that sequence (distinct recency weights), so
// answers match an uninterrupted run while the rebuild pays the paper's
// large-ℓ batch cost instead of the live stream's small-batch cost. The
// window's own expiry policy deterministically re-trims any
// already-expired prefix the first replayed record carries.
func (p *persister) recoverWindow(name string, ws wal.WindowState, tpl ServiceConfig) (*Service, wal.ReplayStats, error) {
	var meta windowMeta
	if err := json.Unmarshal(ws.Config, &meta); err != nil {
		return nil, wal.ReplayStats{}, fmt.Errorf("stream: window %q manifest config: %w", name, err)
	}
	cfg := configFromMeta(meta, tpl)
	wm, err := NewWindowManager(cfg.Window)
	if err != nil {
		return nil, wal.ReplayStats{}, fmt.Errorf("stream: window %q: %w", name, err)
	}
	log, err := wal.Open(p.windowDir(name), p.walOpt)
	if err != nil {
		return nil, wal.ReplayStats{}, fmt.Errorf("stream: window %q log: %w", name, err)
	}
	chunk := p.cfg.ReplayBatch
	if chunk <= 0 {
		chunk = 128 << 10
	}
	base := ws.Watermark
	first := true
	var batch []Edge
	flush := func() {
		if len(batch) > 0 {
			wm.Apply(batch)
			batch = batch[:0] // Apply's monitors copy what they keep
		}
	}
	st, err := log.Replay(ws.Watermark, func(rec wal.Record) error {
		if first {
			base = rec.Seq
			first = false
		}
		for _, e := range rec.Edges {
			batch = append(batch, Edge{U: e.U, V: e.V, W: e.W, T: time.Unix(0, e.T)})
		}
		if len(batch) >= chunk {
			flush()
		}
		return nil
	})
	flush()
	if err != nil {
		log.Close()
		return nil, st, fmt.Errorf("stream: window %q replay: %w", name, err)
	}
	if first {
		// Nothing to replay: the next append continues the log's own
		// numbering, and everything before it counts as expired.
		base = log.NextSeq()
	}
	svc := newServiceWith(wm, cfg)
	pw := &persistedWindow{svc: svc, log: log, meta: ws.Config, base: base, committed: true}
	p.attachRecorder(pw)
	p.mu.Lock()
	p.wins[name] = pw
	p.mu.Unlock()
	return svc, st, nil
}

// OpenRegistry builds a registry from its durable state: every window in
// the manifest is re-created and its unexpired log suffix replayed, after
// which the background checkpoint ticker (if configured) starts. With a
// nil Persistence config it degenerates to NewRegistry. Windows created
// through Create on the returned registry are durable; windows Attach-ed
// are not (the registry cannot serialize an externally-built pipeline's
// config).
func OpenRegistry(cfg RegistryConfig) (*WindowRegistry, *RecoveryReport, error) {
	r := NewRegistry(cfg)
	rep := &RecoveryReport{}
	if cfg.Persistence == nil {
		return r, rep, nil
	}
	p, err := newPersister(*cfg.Persistence)
	if err != nil {
		return nil, nil, err
	}
	r.persist = p
	man, err := wal.LoadManifest(p.cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	names := make([]string, 0, len(man.Windows))
	for name := range man.Windows {
		names = append(names, name)
	}
	sort.Strings(names)
	tpl := r.cfg.Template.withClockDefaults()
	// abort unwinds a partial recovery WITHOUT touching the on-disk
	// manifest: one window's corruption must not erase the durable
	// registration of windows not yet (or already) recovered. The logs
	// are closed here and the persister detached before Close, so Close's
	// final-checkpoint path cannot rewrite the manifest from the partial
	// window table.
	abort := func() {
		p.mu.Lock()
		for _, pw := range p.wins {
			_ = pw.log.Close()
		}
		p.wins = make(map[string]*persistedWindow)
		p.mu.Unlock()
		r.persist = nil
		r.Close()
	}
	for _, name := range names {
		svc, st, err := p.recoverWindow(name, man.Windows[name], tpl)
		if err != nil {
			abort()
			return nil, nil, err
		}
		if err := r.attachService(name, svc); err != nil {
			svc.Close()
			abort()
			return nil, nil, fmt.Errorf("stream: recovered window %q: %w", name, err)
		}
		rep.Windows++
		rep.Batches += st.Records
		rep.Edges += st.Edges
		rep.SkippedRecords += st.SkippedRecords
	}
	rep.Elapsed = time.Since(start)
	if p.cfg.CheckpointInterval > 0 {
		r.startCheckpointLoop(p.cfg.CheckpointInterval)
	}
	return r, rep, nil
}
