package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

// ErrNotPersistent is returned by Checkpoint on a registry without a
// durability layer.
var ErrNotPersistent = errors.New("stream: registry has no persistence")

// ErrWindowDegraded marks a window whose WAL lost its append path: edges
// are still accepted and applied (availability over durability) but are NOT
// reaching the log. Sync-ack submissions fail with it (503 upstream)
// instead of lying about durability; async ingest keeps flowing. The
// self-heal loop clears it only after the log is writable again AND a
// forced live-edge snapshot has closed the un-logged gap — recovery
// correctness restored, not just append success.
var ErrWindowDegraded = errors.New("stream: window WAL degraded (appends not durable)")

// FsyncPolicy names a WAL fsync policy on the wire and the command line.
type FsyncPolicy string

const (
	// FsyncInterval fsyncs at most once per SyncEvery (default); a power
	// loss risks one interval of acknowledged edges, a process crash none.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncBatch fsyncs every flushed batch; nothing acknowledged is lost.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncOff never fsyncs from the hot path.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a policy name ("" selects the default).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncInterval, nil
	case FsyncInterval, FsyncBatch, FsyncOff:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("stream: unknown fsync policy %q (want batch, interval or off)", s)
}

func (p FsyncPolicy) walPolicy() wal.SyncPolicy {
	switch p {
	case FsyncBatch:
		return wal.SyncBatch
	case FsyncOff:
		return wal.SyncNone
	default:
		return wal.SyncInterval
	}
}

// PersistenceConfig enables the durability layer of a WindowRegistry: a
// per-window write-ahead batch log plus an atomically-updated manifest,
// giving crash recovery by suffix replay. Zero values select defaults.
type PersistenceConfig struct {
	// Dir is the data directory (required): MANIFEST.json plus one
	// windows/<name>/ log directory per window.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes is the log segment rotation threshold (default 4 MiB).
	SegmentBytes int64
	// CheckpointInterval runs Checkpoint on a background ticker
	// (persisting expiry watermarks and pruning fully-expired segments).
	// 0 disables the ticker; Checkpoint can still be called manually or
	// via POST /admin/checkpoint.
	CheckpointInterval time.Duration
	// ReplayBatch is the recovery coalescing target in edges (default
	// 128k): replayed records are merged into batches of at least this
	// many edges before being applied, exploiting the paper's batch bound
	// — one BatchInsert of ℓ edges costs O(ℓ·lg(1+n/ℓ)), so rebuilding
	// from a handful of huge batches is far cheaper than re-paying the
	// live stream's per-batch costs. Merging is sound because each
	// monitor's forests are canonical in the arrival sequence (recency
	// weights are distinct), so batch boundaries never change answers.
	ReplayBatch int
	// SnapshotThreshold bounds recovery time: at checkpoint time, a window
	// whose replayable suffix (arrivals past max(expiry watermark, last
	// committed snapshot end)) exceeds this many arrivals gets a fresh
	// live-edge snapshot, and log segments the snapshot covers become
	// GC-eligible. Recovery then seeds the window from the snapshot with
	// one mega-batch apply and replays only the records after it. Default
	// 1M arrivals (0 selects it); negative disables snapshot writing.
	SnapshotThreshold int
	// HealRetry is the initial delay between self-heal attempts on a
	// degraded window's WAL (default 250ms); the delay doubles per failed
	// attempt, capped at 32× the initial value. Tests shrink it.
	HealRetry time.Duration

	// fs routes every durability-layer disk operation (WAL segments,
	// snapshots, manifest, heal probes); nil selects the real filesystem.
	// The registry injects its fault.Injector here so chaos tests and
	// swload outage schedules exercise the degrade→heal machinery.
	fs fault.FS
}

func (c PersistenceConfig) healRetry() time.Duration {
	if c.HealRetry > 0 {
		return c.HealRetry
	}
	return 250 * time.Millisecond
}

// snapshotThreshold resolves the configured threshold: -1 disabled,
// otherwise the arrival count that triggers a checkpoint snapshot.
func (c PersistenceConfig) snapshotThreshold() int {
	switch {
	case c.SnapshotThreshold < 0:
		return -1
	case c.SnapshotThreshold == 0:
		return 1 << 20
	default:
		return c.SnapshotThreshold
	}
}

// CheckpointStats summarizes one Checkpoint pass.
type CheckpointStats struct {
	Windows        int           `json:"windows"`
	PrunedSegments int           `json:"pruned_segments"`
	Snapshots      int           `json:"snapshots"`        // snapshot files written this pass
	SnapshotEdges  int64         `json:"snapshot_edges"`   // live edges they captured
	PrunedSnaps    int           `json:"pruned_snapshots"` // superseded snapshot files deleted
	Elapsed        time.Duration `json:"elapsed_ns"`
}

// PersistenceStats is the /stats snapshot of the durability layer.
type PersistenceStats struct {
	Dir              string `json:"dir"`
	Fsync            string `json:"fsync"`
	Checkpoints      int64  `json:"checkpoints"`
	Snapshots        int64  `json:"snapshots"` // snapshot files written since boot
	CheckpointErrors int64  `json:"checkpoint_errors"`
	AppendErrors     int64  `json:"append_errors"`
	LastError        string `json:"last_error,omitempty"`
	// DegradedWindows counts windows currently serving without a working
	// WAL; GapEdges is the total arrivals they accepted un-logged so far.
	DegradedWindows int      `json:"degraded_windows"`
	Degraded        []string `json:"degraded,omitempty"` // their names
	GapEdges        int64    `json:"gap_edges,omitempty"`
	// WALHeals counts degraded→healthy transitions since boot.
	WALHeals int64 `json:"wal_heals"`
	// CheckpointFailStreak is the consecutive-failure count of the
	// checkpoint pass (0 after any success) — the number the checkpoint
	// loop's backoff keys off.
	CheckpointFailStreak int64 `json:"checkpoint_fail_streak"`
}

// RecoveryReport summarizes a boot-time recovery pass.
type RecoveryReport struct {
	Windows         int           // windows re-created from the manifest
	Batches         int64         // log records replayed
	Edges           int64         // edges replayed from the log
	SkippedRecords  int64         // records skipped as fully expired
	Snapshots       int           // windows seeded from a snapshot
	SnapshotEdges   int64         // edges loaded from snapshots
	DegradedAtCrash int           // windows the manifest marked WAL-degraded
	LostEdges       int64         // arrivals those windows accepted un-logged (gone)
	Elapsed         time.Duration // wall time of the whole recovery
}

// windowMeta is the JSON image of a window's configuration stored in the
// manifest — everything needed to rebuild the ServiceConfig except the
// clocks, which recovery takes from the registry template.
type windowMeta struct {
	N                int      `json:"n"`
	Seed             uint64   `json:"seed"`
	Monitors         []string `json:"monitors,omitempty"`
	Eps              float64  `json:"eps,omitempty"`
	MaxWeight        int64    `json:"max_weight,omitempty"`
	K                int      `json:"k,omitempty"`
	MaxArrivals      int      `json:"max_arrivals,omitempty"`
	MaxAgeNS         int64    `json:"max_age_ns,omitempty"`
	SequentialFanout bool     `json:"sequential_fanout,omitempty"`
	SyncAck          bool     `json:"sync_ack,omitempty"`
	MaxBatch         int      `json:"max_batch,omitempty"`
	MaxDelayNS       int64    `json:"max_delay_ns,omitempty"`
	QueueLen         int      `json:"queue_len,omitempty"`
	MaxQueueEdges    int64    `json:"max_queue_edges,omitempty"`
	MaxQueueBytes    int64    `json:"max_queue_bytes,omitempty"`
	MaxEdgesPerSec   int      `json:"max_edges_per_sec,omitempty"`
	BurstEdges       int      `json:"burst_edges,omitempty"`
}

func metaFromConfig(cfg ServiceConfig) windowMeta {
	return windowMeta{
		N:                cfg.Window.N,
		Seed:             cfg.Window.Seed,
		Monitors:         cfg.Window.Monitors,
		Eps:              cfg.Window.Monitor.Eps,
		MaxWeight:        cfg.Window.Monitor.MaxWeight,
		K:                cfg.Window.Monitor.K,
		MaxArrivals:      cfg.Window.MaxArrivals,
		MaxAgeNS:         int64(cfg.Window.MaxAge),
		SequentialFanout: cfg.Window.SequentialFanout,
		SyncAck:          cfg.Window.SyncAck,
		MaxBatch:         cfg.Ingest.MaxBatch,
		MaxDelayNS:       int64(cfg.Ingest.MaxDelay),
		QueueLen:         cfg.Ingest.QueueLen,
		MaxQueueEdges:    cfg.Ingest.MaxQueueEdges,
		MaxQueueBytes:    cfg.Ingest.MaxQueueBytes,
		MaxEdgesPerSec:   cfg.Ingest.MaxEdgesPerSec,
		BurstEdges:       cfg.Ingest.BurstEdges,
	}
}

// configFromMeta rebuilds a ServiceConfig, borrowing clocks from the
// template (tests inject FakeClock through it; production leaves it nil
// and gets the real clock). ApplyParallelism is a deployment knob like the
// clocks, not window identity, so it too comes from the template rather
// than the manifest — recovery replay mega-batches fork-join levels under
// whatever budget THIS boot configured.
func configFromMeta(m windowMeta, tpl ServiceConfig) ServiceConfig {
	return ServiceConfig{
		Window: WindowConfig{
			N:                m.N,
			Seed:             m.Seed,
			Monitors:         m.Monitors,
			Monitor:          MonitorConfig{Eps: m.Eps, MaxWeight: m.MaxWeight, K: m.K},
			MaxArrivals:      m.MaxArrivals,
			MaxAge:           time.Duration(m.MaxAgeNS),
			Clock:            tpl.Window.Clock,
			SequentialFanout: m.SequentialFanout,
			SyncAck:          m.SyncAck,
			ApplyParallelism: tpl.Window.ApplyParallelism,
			workers:          tpl.Window.workers,
		},
		Ingest: IngesterConfig{
			MaxBatch:       m.MaxBatch,
			MaxDelay:       time.Duration(m.MaxDelayNS),
			QueueLen:       m.QueueLen,
			MaxQueueEdges:  m.MaxQueueEdges,
			MaxQueueBytes:  m.MaxQueueBytes,
			MaxEdgesPerSec: m.MaxEdgesPerSec,
			BurstEdges:     m.BurstEdges,
			Clock:          tpl.Ingest.Clock,
		},
	}.withClockDefaults()
}

// persistedWindow is the durability state of one live window.
type persistedWindow struct {
	name string
	svc  *Service
	log  *wal.Log
	meta json.RawMessage
	// base is the absolute arrival index of the window manager's arrival
	// 0: zero for windows created this process lifetime, the first
	// replayed record's seq after a recovery. The manifest watermark is
	// base + WindowManager.Watermark().
	base uint64
	// committed marks the window as published: manifest saves skip
	// uncommitted entries, so a Create that loses its race against Close
	// (and reports ErrRegistryClosed) can never leak a ghost manifest
	// entry that a later restart would resurrect.
	committed bool
	// snapName/snapEnd describe the newest snapshot that reached disk
	// durably (Commit's fsync+rename succeeded): the file name and the
	// arrival index one past its last edge. They feed the manifest and —
	// critically — the GC horizon: a snapshot attempt that failed must
	// leave them untouched, or pruning would eat the log suffix the next
	// recovery still needs.
	snapName string
	snapEnd  uint64
	// scratch is the wal.Edge conversion buffer; only the single flush
	// goroutine touches it (the recorder runs under the window coordinator
	// lock, from the one staging writer — the heal loop's catch-up append
	// also runs under that lock, so it may share the buffer).
	scratch []wal.Edge

	// degraded marks the WAL append path broken: the recorder stops
	// touching the log, tallies the un-logged arrivals in gap, and returns
	// ErrWindowDegraded so sync acks fail honestly. Set by the recorder on
	// append failure, cleared only by a completed heal (log writable again
	// AND a forced snapshot covering every un-logged arrival committed).
	degraded atomic.Bool
	gap      atomic.Int64
	// healing guards the per-window heal loop: one goroutine at a time.
	healing atomic.Bool
}

func (pw *persistedWindow) watermark() uint64 {
	return pw.base + uint64(pw.svc.Window().Watermark())
}

// persister owns a registry's durability state: the per-window logs and
// the manifest image. Its mutex guards the window table and manifest
// writes; it is never taken from the recorder hot path (which holds the
// window coordinator lock), so {coord → log} and {persister → coord,
// persister → log} never form a cycle.
type persister struct {
	cfg    PersistenceConfig
	fs     fault.FS // every disk op routes through it (never nil)
	walOpt wal.Options
	m      *Metrics        // telemetry bundle (never nil; noMetrics when off)
	flight *trace.Recorder // registry's flight recorder (recovery wiring)
	logger *slog.Logger    // structured log sink (never nil)

	// Heal-loop lifecycle: loops register on healWG and exit on stopHeal
	// (or when their window is gone). closeAll stops and joins them OUTSIDE
	// p.mu — a heal's publish step takes p.mu, so joining under it would
	// deadlock.
	stopHeal chan struct{}
	stopOnce sync.Once
	healWG   sync.WaitGroup

	healsTotal      atomic.Int64 // completed degraded→healthy transitions
	healedGapEdges  atomic.Int64 // un-logged arrivals those heals covered
	ckptConsecFails atomic.Int64 // consecutive checkpoint failures (0 after success)

	// Health/age tracking for the readiness probes and age gauges, all
	// UnixNano (0 = never). lastCheckpointAt starts at open so
	// checkpoint-age alerts measure from boot, not from 1970.
	lastCheckpointAt  atomic.Int64
	lastSnapshotAt    atomic.Int64
	lastSnapshotEdges atomic.Int64

	mu     sync.Mutex
	wins   map[string]*persistedWindow
	closed bool // set by closeAll: no further manifest writes

	// ckptMu serializes whole checkpoint passes (ticker, manual trigger,
	// tests) so p.mu can be released during the multi-megabyte snapshot
	// file writes without two passes interleaving. Ordering: ckptMu may
	// take p.mu, never the reverse.
	ckptMu sync.Mutex

	checkpoints int64
	snapshots   int64

	// testSnapshotFail, when set (tests only), is invoked before a
	// snapshot's Commit and can force the write to fail — the regression
	// hook for "a failed snapshot must never move the GC horizon".
	testSnapshotFail func(window string) error

	// errMu guards the error tallies; the append side is written from the
	// recorder (which holds the window coordinator lock — see the ordering
	// note above), so it must never nest inside p.mu acquisition from
	// there.
	errMu       sync.Mutex
	appendErrs  int64
	lastErr     error // sticky: an append error means acknowledged data is missing from the log
	ckptErrs    int64
	lastCkptErr error // transient: cleared by the next successful checkpoint
}

func newPersister(cfg PersistenceConfig, m *Metrics, logger *slog.Logger) (*persister, error) {
	if cfg.Dir == "" {
		return nil, errors.New("stream: persistence needs a data directory")
	}
	pol, err := ParseFsyncPolicy(string(cfg.Fsync))
	if err != nil {
		return nil, err
	}
	cfg.Fsync = pol
	if cfg.fs == nil {
		cfg.fs = fault.OS()
	}
	if err := cfg.fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	p := &persister{
		cfg:    cfg,
		fs:     cfg.fs,
		m:      m.orNoop(),
		logger: logger,
		walOpt: wal.Options{
			SegmentBytes: cfg.SegmentBytes,
			Sync:         pol.walPolicy(),
			SyncEvery:    cfg.SyncEvery,
			FS:           cfg.fs,
		},
		wins:     make(map[string]*persistedWindow),
		stopHeal: make(chan struct{}),
	}
	p.lastCheckpointAt.Store(time.Now().UnixNano())
	if p.m.on() {
		// The wal package stays metrics-free: the persister injects these
		// closures into every log it opens.
		p.walOpt.ObserveAppend = func(d time.Duration, edges, bytes int) {
			p.m.walAppendSeconds.Observe(d)
			p.m.walAppends.Inc()
			p.m.walBytes.Add(int64(bytes))
		}
		p.walOpt.ObserveFsync = func(d time.Duration) {
			p.m.walFsyncSeconds.Observe(d)
			p.m.walFsyncs.Inc()
		}
		p.walOpt.ObserveRepair = func(bytes int64) {
			p.m.walRepairs.Inc()
			p.m.walRepairedBytes.Add(bytes)
		}
		p.registerDurabilityGauges(p.m.Registry())
	}
	return p, nil
}

// registerDurabilityGauges publishes the durability state that is read, not
// accumulated: segment counts, checkpoint/snapshot ages, error tallies.
func (p *persister) registerDurabilityGauges(reg *telemetry.Registry) {
	reg.GaugeFunc("sw_wal_segments",
		"WAL segment files across all windows.", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			total := 0
			for _, pw := range p.wins {
				total += pw.log.Segments()
			}
			return float64(total)
		})
	reg.GaugeFunc("sw_checkpoint_age_seconds",
		"Seconds since the last completed checkpoint (since boot if none yet).", func() float64 {
			return time.Since(time.Unix(0, p.lastCheckpointAt.Load())).Seconds()
		})
	reg.GaugeFunc("sw_snapshot_age_seconds",
		"Seconds since the last committed snapshot (0 until one commits).", func() float64 {
			at := p.lastSnapshotAt.Load()
			if at == 0 {
				return 0
			}
			return time.Since(time.Unix(0, at)).Seconds()
		})
	reg.GaugeFunc("sw_snapshot_last_edges",
		"Live edges captured by the most recent committed snapshot.", func() float64 {
			return float64(p.lastSnapshotEdges.Load())
		})
	reg.CounterFunc("sw_wal_append_errors_total",
		"WAL append failures (acknowledged batches missing from the log — sticky until restart).", func() float64 {
			p.errMu.Lock()
			defer p.errMu.Unlock()
			return float64(p.appendErrs)
		})
	reg.CounterFunc("sw_checkpoint_errors_total",
		"Checkpoint passes that failed.", func() float64 {
			p.errMu.Lock()
			defer p.errMu.Unlock()
			return float64(p.ckptErrs)
		})
	reg.CounterFunc("sw_wal_heals_total",
		"Degraded windows restored to full durability by the self-heal loop.", func() float64 {
			return float64(p.healsTotal.Load())
		})
	reg.CounterFunc("sw_wal_heal_gap_edges_total",
		"Arrivals accepted while degraded and later covered by a heal's forced snapshot.", func() float64 {
			return float64(p.healedGapEdges.Load())
		})
	reg.GaugeFunc("sw_checkpoint_fail_streak",
		"Consecutive checkpoint-pass failures (0 after any success).", func() float64 {
			return float64(p.ckptConsecFails.Load())
		})
}

func (p *persister) windowDir(name string) string {
	return filepath.Join(p.cfg.Dir, "windows", name)
}

// windowGone reports whether pw no longer backs name — dropped, replaced
// by a newer window that re-won the name, or the persister closed.
func (p *persister) windowGone(name string, pw *persistedWindow) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed || p.wins[name] != pw
}

func (p *persister) noteErr(err error) {
	p.errMu.Lock()
	p.appendErrs++
	p.lastErr = err
	p.errMu.Unlock()
}

func (p *persister) noteCkptErr(err error) {
	p.errMu.Lock()
	p.ckptErrs++
	p.lastCkptErr = err
	p.errMu.Unlock()
}

// attachRecorder wires the window's write-ahead hook to the log. On an
// append failure the window keeps serving (availability over durability)
// but transitions to the explicit DEGRADED state: the error is tallied,
// subsequent batches skip the dead log entirely (their count accumulates in
// pw.gap), every recorder return carries ErrWindowDegraded so durable acks
// report 503 instead of claiming durability, and the self-heal loop starts
// probing. The hook returns the WAL sequence of the batch's first edge —
// the window's flight-recorder trace ID source, stable across restarts;
// while degraded the sequence is extrapolated (NextSeq + gap) so trace IDs
// stay monotone. The sync escalator attaches alongside it and fails fast
// while degraded: fsyncing a poisoned fd cannot restore the pages the
// kernel already dropped.
func (p *persister) attachRecorder(pw *persistedWindow) {
	pw.svc.Window().setRecorder(func(edges []Edge) (uint64, error) {
		if pw.degraded.Load() {
			gapEnd := pw.gap.Add(int64(len(edges)))
			return pw.log.NextSeq() + uint64(gapEnd) - uint64(len(edges)), ErrWindowDegraded
		}
		pw.scratch = pw.scratch[:0]
		for _, e := range edges {
			pw.scratch = append(pw.scratch, wal.Edge{U: e.U, V: e.V, W: e.W, T: e.T.UnixNano()})
		}
		seq, err := pw.log.Append(pw.scratch)
		if err != nil {
			p.noteErr(err)
			// The batch was accepted and applied but never reached the log:
			// it IS the first gap entry. Mark degraded before kicking the
			// heal so the loop can only observe a consistent state.
			pw.gap.Add(int64(len(edges)))
			pw.degraded.Store(true)
			p.logger.Error("WAL append failed: window degraded (serving without durability)",
				slog.String("window", pw.name),
				slog.String("error", err.Error()))
			p.kickHeal(pw)
			return seq, fmt.Errorf("%w: %w", ErrWindowDegraded, err)
		}
		return seq, err
	})
	pw.svc.setDurableSync(func() error {
		if pw.degraded.Load() {
			return ErrWindowDegraded
		}
		return pw.log.Sync()
	})
}

// kickHeal starts the window's self-heal loop unless one is already
// running. Called from the recorder (under the window coordinator lock) and
// from recovery for windows that boot degraded-marked.
func (p *persister) kickHeal(pw *persistedWindow) {
	if !pw.healing.CompareAndSwap(false, true) {
		return
	}
	p.healWG.Add(1)
	go p.healLoop(pw)
}

// healLoop drives heal attempts with capped exponential backoff until one
// succeeds, the window is gone, or the persister shuts down.
func (p *persister) healLoop(pw *persistedWindow) {
	defer p.healWG.Done()
	defer pw.healing.Store(false)
	delay := p.cfg.healRetry()
	maxDelay := delay * 32
	for attempt := 1; ; attempt++ {
		if p.windowGone(pw.name, pw) {
			return
		}
		err := p.healWindow(pw)
		if err == nil {
			return
		}
		if errors.Is(err, wal.ErrClosed) {
			return // shutdown closed the log under us
		}
		p.logger.Warn("WAL heal attempt failed",
			slog.String("window", pw.name),
			slog.Int("attempt", attempt),
			slog.Duration("retry_in", delay),
			slog.String("error", err.Error()))
		select {
		case <-p.stopHeal:
			return
		case <-time.After(delay):
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// healWindow performs one heal attempt. Recovery correctness — not mere
// append success — is the bar for leaving DEGRADED: after the log is
// writable again, the un-logged gap is closed by a forced live-edge
// snapshot covering everything below `end` plus a catch-up append of the
// arrivals that landed after the capture, so a crash at any later point
// recovers the exact window. The steps, each failable and retried whole:
//
//  1. probe: prove the directory takes a write+fsync with a scratch file —
//     never by re-fsyncing the failed fd (the kernel dropped those pages).
//  2. wal.Log.Heal: abandon the poisoned fd, truncate-or-create a tail
//     segment, resume numbering at NextSeq. Committed records survive.
//  3. capture the canonical window content (watermark + live edges) under
//     the coordinator lock.
//  4. commit a snapshot of it — the artifact that makes the gap durable.
//  5. back under the coordinator lock: advance the log past everything the
//     snapshot covers, append the arrivals that raced in since the capture
//     (the recorder was still gap-counting them), and flip degraded off —
//     from this instant the recorder logs normally and no arrival is in
//     neither snapshot nor log.
//  6. publish the snapshot and rewrite the manifest so recovery (and GC)
//     see it.
//
// A failure after 4 leaves an unpublished snapshot on disk: harmless —
// it is valid and newer than the published one, and recovery's directory
// scan may legitimately use it. maybeSnapshot skips degraded windows, so
// no checkpoint can prune it out from under the retry.
func (p *persister) healWindow(pw *persistedWindow) error {
	dir := p.windowDir(pw.name)
	if err := p.probeDir(dir); err != nil {
		return fmt.Errorf("probe: %w", err)
	}
	if err := pw.log.Heal(); err != nil {
		return fmt.Errorf("heal log: %w", err)
	}
	var edges []wal.Edge
	var absW, end uint64
	if err := pw.svc.Window().LiveEdges(func(expired int64, live []Edge) error {
		absW = pw.base + uint64(expired)
		end = absW + uint64(len(live))
		edges = make([]wal.Edge, len(live))
		for i, e := range live {
			edges[i] = wal.Edge{U: e.U, V: e.V, W: e.W, T: e.T.UnixNano()}
		}
		return nil
	}); err != nil {
		return err
	}
	w, err := wal.CreateSnapshotFS(p.fs, dir, absW, uint64(len(edges)))
	if err != nil {
		return err
	}
	if err := w.Append(edges); err != nil {
		return err // Append aborts the writer on failure
	}
	snapName, err := w.Commit()
	if err != nil {
		return err
	}
	var closedGap int64
	if err := pw.svc.Window().LiveEdges(func(expired int64, live []Edge) error {
		// The snapshot covers [absW, end); the log must cover [end, …).
		// Arrivals in [end, base+expired) — if expiry lapped the capture —
		// are expired, and the manifest watermark covers them; the live
		// suffix from max(end, base+expired) is appended explicitly.
		absW2 := pw.base + uint64(expired)
		from := end
		if absW2 > from {
			from = absW2
		}
		pw.log.AdvanceTo(from)
		if tail := live[from-absW2:]; len(tail) > 0 {
			pw.scratch = pw.scratch[:0]
			for _, e := range tail {
				pw.scratch = append(pw.scratch, wal.Edge{U: e.U, V: e.V, W: e.W, T: e.T.UnixNano()})
			}
			if _, err := pw.log.Append(pw.scratch); err != nil {
				return err
			}
		}
		// Atomic resume: degraded flips off under the same coordinator hold
		// the catch-up append ran in, so the next recorder call appends to
		// a log that is exactly contiguous with the snapshot.
		closedGap = pw.gap.Swap(0)
		pw.degraded.Store(false)
		return nil
	}); err != nil {
		return err
	}
	p.healsTotal.Add(1)
	p.healedGapEdges.Add(closedGap)
	p.errMu.Lock()
	p.lastErr = nil // durability restored (appendErrs stays as history)
	p.errMu.Unlock()
	p.logger.Info("WAL healed: degraded window restored to full durability",
		slog.String("window", pw.name),
		slog.String("snapshot", snapName),
		slog.Int64("gap_edges_covered", closedGap),
		slog.Int("snapshot_edges", len(edges)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.wins[pw.name] != pw {
		return nil
	}
	pw.snapName = snapName
	pw.snapEnd = end
	p.snapshots++
	p.m.snapshots.Inc()
	p.m.snapshotEdges.Add(int64(len(edges)))
	p.lastSnapshotAt.Store(time.Now().UnixNano())
	p.lastSnapshotEdges.Store(int64(len(edges)))
	if _, err := p.saveManifestLocked(); err != nil {
		// The snapshot and log are already consistent; only the manifest
		// pointer is stale. The next checkpoint rewrites it — do not
		// re-degrade a healthy window over it.
		p.logger.Warn("heal: manifest rewrite failed (next checkpoint retries)",
			slog.String("window", pw.name), slog.String("error", err.Error()))
	}
	return nil
}

// probeDir proves the directory accepts a durable write by round-tripping a
// scratch file through write+fsync. The heal sequence runs only after it
// passes, so a still-broken disk costs a retry, not a half-healed log.
func (p *persister) probeDir(dir string) error {
	f, err := p.fs.CreateTemp(dir, "heal-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	defer func() { _ = p.fs.Remove(name) }()
	if _, err := f.Write([]byte("heal probe\n")); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// walOptFor copies the persister's WAL options with the fsync hook
// additionally feeding the window's flight recorder, so batch traces can
// carry a wal_fsync sub-span attributed to exactly their own append.
func (p *persister) walOptFor(wm *WindowManager) wal.Options {
	opt := p.walOpt
	prev := opt.ObserveFsync
	opt.ObserveFsync = func(d time.Duration) {
		wm.noteWALFsync(d)
		if prev != nil {
			prev(d)
		}
	}
	return opt
}

// addWindow opens a fresh log for a window being created and attaches the
// recorder. Called by Create after the service is built but before the
// window is published, so no edge can be accepted un-logged. The manifest
// is NOT written here — commitWindow does that at publish time, so a
// Create that loses its race against Close leaves no durable trace.
func (p *persister) addWindow(name string, cfg ServiceConfig, svc *Service) error {
	meta, err := json.Marshal(metaFromConfig(cfg))
	if err != nil {
		return err
	}
	dir := p.windowDir(name)
	// A crashed Drop can leave an orphan log dir with no manifest entry;
	// reusing the name must not resurrect its records.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	log, err := wal.Open(dir, p.walOptFor(svc.Window()))
	if err != nil {
		return err
	}
	pw := &persistedWindow{name: name, svc: svc, log: log, meta: meta}
	p.attachRecorder(pw)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		log.Close()
		return ErrRegistryClosed
	}
	p.wins[name] = pw
	return nil
}

// commitWindow registers a created window in the manifest. Create calls
// it while holding the shard lock, after its closed re-check and before
// publishing the handle, so the manifest gains the window exactly when
// the registry does. The fsync+rename under the shard lock only stalls
// same-shard control-plane operations — data-plane lookups on other
// windows in the shard read-lock and creates are rare.
func (p *persister) commitWindow(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pw, ok := p.wins[name]
	if !ok || p.closed {
		return ErrRegistryClosed
	}
	pw.committed = true
	if _, err := p.saveManifestLocked(); err != nil {
		pw.committed = false
		return err
	}
	return nil
}

// removeWindow forgets a dropped window: manifest entry first (so a crash
// mid-removal leaves an ignorable orphan dir, not a manifest entry with no
// log), then the log itself. svc pins the identity: a Drop that already
// freed the name must not tear down a newer window that won the name in
// the meantime. Unknown names no-op (attached, non-persisted windows drop
// through here too), as does a persister already finalized by Close — in
// the narrow Drop-races-Close window the final manifest may keep the
// dropped window, which a restart resurrects empty-handed but consistent.
func (p *persister) removeWindow(name string, svc *Service) error {
	p.mu.Lock()
	pw, ok := p.wins[name]
	if !ok || p.closed || (svc != nil && pw.svc != svc) {
		p.mu.Unlock()
		return nil
	}
	delete(p.wins, name)
	var err error
	if pw.committed {
		_, err = p.saveManifestLocked()
	}
	p.mu.Unlock()
	pw.log.Close()
	if rmErr := os.RemoveAll(p.windowDir(name)); err == nil {
		err = rmErr
	}
	return err
}

// saveManifestLocked rewrites the manifest from the live window table.
// Callers hold p.mu. The ordering is load-bearing: watermarks are captured
// FIRST, then every log is fsynced, then the manifest is written. A
// watermark counts only arrivals already staged (and therefore already
// appended — the recorder runs in the same coordinator-lock hold that
// advances the counters) when it was read, so the sync that follows makes
// the log durable past everything the persisted watermark invalidates —
// the manifest can never claim an expiry horizon beyond the durable log
// end, which would let a post-crash restart renumber new appends below
// the watermark and silently skip them on the crash after that.
// The returned map carries each window's GC horizon — max(watermark,
// committed snapshot end) exactly as the durable manifest now records it.
// Prune decisions must use these, never fresher in-memory values: a
// snapshot (or watermark) the manifest does not yet know about cannot
// justify deleting log records a crash would still replay.
func (p *persister) saveManifestLocked() (map[string]uint64, error) {
	watermarks := make(map[string]uint64, len(p.wins))
	horizons := make(map[string]uint64, len(p.wins))
	for name, pw := range p.wins {
		if !pw.committed {
			continue // an unpublished Create must leave no durable trace
		}
		wm := pw.watermark()
		watermarks[name] = wm
		if pw.snapEnd > wm {
			wm = pw.snapEnd
		}
		horizons[name] = wm
	}
	for _, pw := range p.wins {
		if pw.degraded.Load() {
			// A degraded log is broken by definition (it may still hold
			// the failed append's buffered bytes, so syncing it would
			// fail and veto the whole manifest save — keeping the
			// Degraded marker OFF disk exactly when a crash most needs
			// it). The heal loop owns this log; the marker below makes
			// the gap loud on recovery.
			continue
		}
		if err := pw.log.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return nil, err
		}
	}
	m := &wal.Manifest{Version: wal.ManifestVersion, Windows: make(map[string]wal.WindowState, len(watermarks))}
	for name, pw := range p.wins {
		if w, ok := watermarks[name]; ok {
			m.Windows[name] = wal.WindowState{
				Config:      pw.meta,
				Watermark:   w,
				Snapshot:    pw.snapName,
				SnapshotEnd: pw.snapEnd,
				// Correct-or-loud: a crash while degraded must not recover
				// silently — the marker makes the next boot warn that the
				// gap arrivals are unrecoverable.
				Degraded: pw.degraded.Load(),
				GapEdges: uint64(pw.gap.Load()),
			}
		}
	}
	if err := wal.SaveManifestFS(p.fs, p.cfg.Dir, m); err != nil {
		return nil, err
	}
	return horizons, nil
}

// maybeSnapshot writes a live-edge snapshot of one window if its
// replayable suffix (arrivals a recovery would have to replay, i.e.
// everything past max(expiry watermark, last committed snapshot end))
// exceeds threshold. Runs under ckptMu but NOT p.mu. The commit ordering
// is load-bearing:
//
//	capture (watermark, live edges) under the window coordinator lock →
//	write temp file → fsync the log → rename the snapshot into place →
//	publish pw.snapName/snapEnd under p.mu →
//	[caller: manifest → segment GC]
//
// Only the capture holds the coordinator lock — a wal.Edge conversion
// copy, memcpy-speed — so staging (and therefore ingest) stalls for the
// copy, not for the file write; queries never touch the coordinator lock
// and are never blocked at all; and registry control-plane operations
// (which contend on p.mu) proceed throughout. The log fsync before the
// rename guarantees a committed snapshot never describes arrivals the
// log hasn't durably recorded — otherwise a power loss could leave a
// snapshot whose edges re-enter the log under reused sequence numbers
// (the capture is consistent with the log because the recorder appends
// under the same coordinator hold the capture excludes). Only a fully
// committed snapshot updates pw.snapName/snapEnd; any failure leaves the
// previous snapshot (and therefore the GC horizon) in place, so a failed
// write can never strand recovery without its suffix.
func (p *persister) maybeSnapshot(name string, pw *persistedWindow, threshold int) (int64, error) {
	if pw.degraded.Load() {
		// The heal loop owns snapshotting while degraded: its forced
		// snapshot is the gap-closing artifact, and skipping here keeps a
		// concurrent checkpoint's PruneSnapshots from eating the heal's
		// not-yet-published file.
		return -1, nil
	}
	var edges []wal.Edge
	var absW uint64
	skipped := true
	// pw.base is immutable after construction, and pw.snapEnd is written
	// only by this function (all callers hold ckptMu), so both reads are
	// ordered without p.mu.
	if err := pw.svc.Window().LiveEdges(func(expired int64, live []Edge) error {
		absW = pw.base + uint64(expired)
		start := absW
		if pw.snapEnd > start {
			start = pw.snapEnd
		}
		if absW+uint64(len(live)) <= start+uint64(threshold) {
			return nil // suffix still cheap to replay: skip
		}
		skipped = false
		edges = make([]wal.Edge, len(live))
		for i, e := range live {
			edges[i] = wal.Edge{U: e.U, V: e.V, W: e.W, T: e.T.UnixNano()}
		}
		return nil
	}); err != nil {
		return -1, err
	}
	if skipped {
		return -1, nil
	}
	w, err := wal.CreateSnapshotFS(p.fs, p.windowDir(name), absW, uint64(len(edges)))
	if err != nil {
		return -1, err
	}
	if err := w.Append(edges); err != nil {
		return -1, err // Append aborts the writer on failure
	}
	if err := pw.log.Sync(); err != nil {
		w.Abort()
		return -1, err
	}
	if p.testSnapshotFail != nil {
		if err := p.testSnapshotFail(name); err != nil {
			w.Abort()
			return -1, err
		}
	}
	snapName, err := w.Commit()
	if err != nil {
		return -1, err
	}
	// Publish. A window dropped (or a persister closed) while the file
	// was being written must not resurrect through the stale pw: the
	// committed file either vanished with the removed directory or sits
	// as a harmless orphan a future recovery may still validly use.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.wins[name] != pw {
		return -1, nil
	}
	pw.snapName = snapName
	pw.snapEnd = absW + uint64(len(edges))
	p.snapshots++
	p.m.snapshots.Inc()
	p.m.snapshotEdges.Add(int64(len(edges)))
	p.lastSnapshotAt.Store(time.Now().UnixNano())
	p.lastSnapshotEdges.Store(int64(len(edges)))
	p.logger.Debug("snapshot committed",
		slog.String("window", name),
		slog.String("file", snapName),
		slog.Int("edges", len(edges)))
	return int64(len(edges)), nil
}

// checkpoint makes the current expiry progress durable and reclaims
// fully-expired log segments: first write any snapshots the threshold
// calls for, then the manifest (capture watermarks → sync logs → atomic
// rename, see saveManifestLocked), then prune with exactly the GC
// horizons the durable manifest records — pruning with fresher ones could
// delete segments a crash would still replay. Any append error tallied
// since the last checkpoint is surfaced here. A snapshot failure does not
// abort the pass (snapshots are an accelerator; watermark persistence and
// watermark-based GC still proceed safely) but is surfaced in the error.
func (p *persister) checkpoint() (CheckpointStats, error) {
	st, err := p.checkpointPass()
	switch {
	case err == nil:
		p.ckptConsecFails.Store(0)
	case !errors.Is(err, ErrRegistryClosed):
		// The streak feeds the ticker's backoff and /stats; a pass refused
		// because the registry is closing is shutdown, not failure.
		p.ckptConsecFails.Add(1)
	}
	return st, err
}

func (p *persister) checkpointPass() (CheckpointStats, error) {
	start := time.Now()
	// Serialize whole passes; keep p.mu free during the file writes so
	// Create/Drop/stats never stall behind a multi-megabyte snapshot.
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	var st CheckpointStats

	// Phase 1: snapshot writes. p.mu is held only to pick the candidates
	// (and read the threshold, which tests mutate under p.mu); the temp
	// writes, fsyncs and renames run outside it.
	type candidate struct {
		name string
		pw   *persistedWindow
	}
	var cands []candidate
	threshold := -1
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// A checkpoint racing (or following) Close must not rewrite the
		// manifest from the emptied window table — that would erase every
		// durable registration the final checkpoint just wrote.
		return st, ErrRegistryClosed
	}
	if threshold = p.cfg.snapshotThreshold(); threshold >= 0 {
		for name, pw := range p.wins {
			if pw.committed {
				cands = append(cands, candidate{name, pw})
			}
		}
	}
	p.mu.Unlock()
	var snapErr error
	snapped := make(map[string]bool)
	for _, c := range cands {
		edges, err := p.maybeSnapshot(c.name, c.pw, threshold)
		if err != nil {
			if p.windowGone(c.name, c.pw) {
				// The window was Dropped (or the registry closed) while its
				// snapshot was being written: the failure is the expected
				// debris of tearing down a healthy window, not a durability
				// problem.
				continue
			}
			p.noteCkptErr(err)
			snapErr = err
			continue
		}
		if edges >= 0 {
			st.Snapshots++
			st.SnapshotEdges += edges
			snapped[c.name] = true
		}
	}

	// Phase 2: manifest + GC, under p.mu as ever.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return st, ErrRegistryClosed
	}
	horizons, err := p.saveManifestLocked()
	if err != nil {
		p.noteCkptErr(err)
		return st, err
	}
	for name, pw := range p.wins {
		pruned, err := pw.log.Prune(horizons[name])
		if err != nil {
			p.noteCkptErr(err)
			return st, err
		}
		st.PrunedSegments += pruned
		if snapped[name] && pw.snapName != "" {
			// The manifest pointing at the newest snapshot is durable;
			// superseded snapshot files are now dead weight. Only a pass
			// that wrote a snapshot can have superseded one, so steady-state
			// checkpoints skip the per-window directory scan entirely.
			prunedSnaps, err := wal.PruneSnapshotsFS(p.fs, p.windowDir(name), pw.snapName)
			if err != nil {
				p.noteCkptErr(err)
				return st, err
			}
			st.PrunedSnaps += prunedSnaps
		}
	}
	st.Windows = len(horizons)
	st.Elapsed = time.Since(start)
	p.checkpoints++
	p.lastCheckpointAt.Store(time.Now().UnixNano())
	p.m.checkpoints.Inc()
	p.m.checkpointSeconds.Observe(st.Elapsed)
	p.logger.Debug("checkpoint complete",
		slog.Int("windows", st.Windows),
		slog.Int("pruned_segments", st.PrunedSegments),
		slog.Int("snapshots", st.Snapshots),
		slog.Int64("snapshot_edges", st.SnapshotEdges),
		slog.Duration("elapsed", st.Elapsed))
	if snapErr == nil {
		p.errMu.Lock()
		p.lastCkptErr = nil // durability restored: the manifest write succeeded
		p.errMu.Unlock()
	}
	// A recorded append error means some acknowledged batch never reached
	// the log: the checkpoint "succeeded" mechanically but durability is
	// compromised until restart, so keep surfacing it (sticky; also
	// visible in PersistenceStats).
	p.errMu.Lock()
	aerr := p.lastErr
	p.errMu.Unlock()
	if aerr != nil {
		return st, fmt.Errorf("stream: WAL append failed: %w", aerr)
	}
	if snapErr != nil {
		return st, fmt.Errorf("stream: snapshot write failed (watermarks persisted, GC horizon unchanged): %w", snapErr)
	}
	return st, nil
}

// closeAll runs after every service has been closed (so the shutdown
// drain's final appends are in the logs): persist final watermarks, then
// close the logs, then stop and join the heal loops — strictly outside
// p.mu, since a heal's publish step takes it.
func (p *persister) closeAll() {
	p.mu.Lock()
	p.closed = true               // later checkpoints/creates/drops must not touch the manifest
	_, _ = p.saveManifestLocked() // captures watermarks, syncs, renames
	for _, pw := range p.wins {
		_ = pw.log.Close()
	}
	p.wins = make(map[string]*persistedWindow)
	p.mu.Unlock()
	p.stopOnce.Do(func() { close(p.stopHeal) })
	p.healWG.Wait()
}

func (p *persister) stats() PersistenceStats {
	p.mu.Lock()
	ckpts, snaps := p.checkpoints, p.snapshots
	var degraded []string
	var gap int64
	for name, pw := range p.wins {
		if pw.degraded.Load() {
			degraded = append(degraded, name)
			gap += pw.gap.Load()
		}
	}
	p.mu.Unlock()
	sort.Strings(degraded)
	p.errMu.Lock()
	defer p.errMu.Unlock()
	st := PersistenceStats{
		Dir:                  p.cfg.Dir,
		Fsync:                string(p.cfg.Fsync),
		Checkpoints:          ckpts,
		Snapshots:            snaps,
		CheckpointErrors:     p.ckptErrs,
		AppendErrors:         p.appendErrs,
		DegradedWindows:      len(degraded),
		Degraded:             degraded,
		GapEdges:             gap,
		WALHeals:             p.healsTotal.Load(),
		CheckpointFailStreak: p.ckptConsecFails.Load(),
	}
	switch { // a lost append outranks a failed checkpoint
	case p.lastErr != nil:
		st.LastError = p.lastErr.Error()
	case p.lastCkptErr != nil:
		st.LastError = p.lastCkptErr.Error()
	}
	return st
}

// degradedWindows snapshots the names of windows currently serving without
// a working WAL (readiness and /stats feed).
func (p *persister) degradedWindows() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for name, pw := range p.wins {
		if pw.degraded.Load() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// recoverResult is one window's recovery accounting: the log replay stats
// plus the snapshot contribution.
type recoverResult struct {
	wal.ReplayStats
	SnapshotUsed  bool
	SnapshotEdges int64
	// DegradedAtCrash: the manifest recorded the window WAL-degraded, so
	// LostEdges arrivals it had accepted are durably gone.
	DegradedAtCrash bool
	LostEdges       int64
}

// recoverWindow rebuilds one manifest window: fresh monitors, then —
// when a valid snapshot exists — one mega-batch apply of the snapshot's
// live-edge list, then a replay of the log records past it. Replayed
// records are delivered whole and in order but coalesced into
// ReplayBatch-sized mega-batches before being applied: the arrival
// sequence and the clamped event times are exactly the live run's, and
// each monitor's forests are a canonical function of that sequence
// (distinct recency weights), so answers match an uninterrupted run while
// the rebuild pays the paper's large-ℓ batch cost instead of the live
// stream's small-batch cost. The window's own expiry policy
// deterministically re-trims any already-expired prefix the snapshot or
// the first replayed record carries.
//
// Snapshot selection scans the log directory for the newest snapshot that
// decodes cleanly — the manifest pointer is only a hint, since a crash
// between a snapshot's rename and the manifest rewrite leaves a newer
// (always usable) file than the pointer. A corrupt or missing snapshot
// falls back to older snapshots and finally to full suffix replay; the
// only hard failure is a provable gap — the log's oldest retained record
// starting after the replay point, meaning segments were GC'd against a
// snapshot that no longer validates.
func (p *persister) recoverWindow(name string, ws wal.WindowState, tpl ServiceConfig) (*Service, recoverResult, error) {
	var res recoverResult
	var meta windowMeta
	if err := json.Unmarshal(ws.Config, &meta); err != nil {
		return nil, res, fmt.Errorf("stream: window %q manifest config: %w", name, err)
	}
	cfg := configFromMeta(meta, tpl)
	cfg.Window.Name = name
	// The bundle attaches to the pipeline only in newServiceWith, AFTER
	// the replay below — recovery mega-batches must not pollute the
	// live-traffic histograms (the recovery counters cover them instead).
	// Same for the flight rings: replay records no traces.
	cfg.Telemetry = p.m
	cfg.flight = p.flight
	wm, err := NewWindowManager(cfg.Window)
	if err != nil {
		return nil, res, fmt.Errorf("stream: window %q: %w", name, err)
	}
	// Retention must be on before the first replayed arrival (the
	// recorder, which would also enable it, attaches only after replay):
	// the next checkpoint's snapshot reads the ring this replay fills.
	wm.enableLiveRetention()
	dir := p.windowDir(name)
	log, err := wal.Open(dir, p.walOptFor(wm))
	if err != nil {
		return nil, res, fmt.Errorf("stream: window %q log: %w", name, err)
	}

	if ws.Degraded {
		// Correct-or-loud: the process died while this window was serving
		// without a working WAL. Everything durable is recovered below;
		// the gap arrivals were acknowledged non-durably (sync acks had
		// been failing with 503) and are unrecoverable.
		res.DegradedAtCrash = true
		res.LostEdges = int64(ws.GapEdges)
		p.logger.Error("window was WAL-degraded at crash: arrivals accepted after the append failure were never logged and cannot be recovered",
			slog.String("window", name),
			slog.Uint64("lost_edges", ws.GapEdges))
	}

	var snap *wal.Snapshot
	var snapName string
	marks, err := wal.SnapshotsFS(p.fs, dir)
	if err != nil {
		log.Close()
		return nil, res, fmt.Errorf("stream: window %q snapshots: %w", name, err)
	}
	for i := len(marks) - 1; i >= 0; i-- {
		cand := wal.SnapshotName(marks[i])
		s, err := wal.ReadSnapshotFS(p.fs, filepath.Join(dir, cand))
		if err != nil {
			continue // corrupt: try an older snapshot, else full replay
		}
		if s.End() <= ws.Watermark {
			// Fully stale: every edge in it is expired, so seeding would
			// pay an O(window) apply+expire for zero live state — the
			// watermark-based replay alone is strictly cheaper and needs
			// nothing below the watermark (GC's horizon was at most
			// max(watermark, this end), so no gap opens). Older snapshots
			// are staler still: stop looking.
			break
		}
		snap, snapName = &s, cand
		break
	}
	if snapName != "" && len(marks) > 1 {
		// Sweep superseded snapshot files now: a crash between a past
		// checkpoint's manifest write and its snapshot prune would
		// otherwise leak window-sized images forever (steady-state
		// checkpoints only prune on passes that write a new snapshot).
		// Best-effort — recovery must not fail over dead weight.
		_, _ = wal.PruneSnapshotsFS(p.fs, dir, snapName)
	}
	// replayFrom is where log replay must pick up: past everything the
	// snapshot covers and everything the manifest says is expired.
	replayFrom := ws.Watermark
	if snap != nil && snap.End() > replayFrom {
		replayFrom = snap.End()
	}
	if first, ok := log.FirstSeq(); ok && first > replayFrom {
		log.Close()
		return nil, res, fmt.Errorf(
			"stream: window %q: log starts at arrival %d but replay must begin at %d — segments were GC'd against a snapshot that is now missing or corrupt",
			name, first, replayFrom)
	}

	chunk := p.cfg.ReplayBatch
	if chunk <= 0 {
		chunk = 128 << 10
	}
	if snap != nil {
		// Seed the window with ONE batch of the whole live edge list: for a
		// window of ℓ arrivals this costs O(ℓ·lg(1+n/ℓ)) — the cheapest
		// point on the paper's batch-cost curve, well under replaying the
		// same edges in ReplayBatch-sized chunks.
		seed := make([]Edge, len(snap.Edges))
		for i, e := range snap.Edges {
			seed[i] = Edge{U: e.U, V: e.V, W: e.W, T: time.Unix(0, e.T)}
		}
		wm.Apply(seed)
		res.SnapshotUsed = true
		res.SnapshotEdges = int64(len(snap.Edges))
	}
	var batch []Edge
	flush := func() {
		if len(batch) > 0 {
			wm.Apply(batch)
			batch = batch[:0] // Apply's monitors copy what they keep
		}
	}
	st, err := log.Replay(replayFrom, func(rec wal.Record) error {
		edges := rec.Edges
		if snap != nil && rec.Seq < replayFrom {
			// A record straddling the replay point duplicates arrivals the
			// snapshot already seeded; drop the covered prefix — expiry
			// re-trim cannot undo a mid-sequence duplicate the way it
			// re-trims an expired prefix.
			edges = edges[replayFrom-rec.Seq:]
		}
		for _, e := range edges {
			batch = append(batch, Edge{U: e.U, V: e.V, W: e.W, T: time.Unix(0, e.T)})
		}
		if len(batch) >= chunk {
			flush()
		}
		return nil
	})
	flush()
	res.ReplayStats = st
	if err != nil {
		log.Close()
		return nil, res, fmt.Errorf("stream: window %q replay: %w", name, err)
	}

	// Re-derive the window's arrival numbering: every applied arrival
	// (snapshot seed + replayed suffix) is contiguous up to the absolute
	// end, so base = end − arrivals makes base + Watermark() the absolute
	// expiry watermark across any number of restarts — including runs
	// where a stale snapshot left an applied gap of expired arrivals.
	// end is the largest arrival index any durable state has ever claimed:
	// a snapshot outliving the log tail, or a manifest watermark past it
	// (log bytes vanished after they were recorded), must both push the
	// numbering forward — reusing indices at or below either would make
	// the next recovery skip the reused range as already covered.
	end := log.NextSeq()
	if snap != nil && snap.End() > end {
		end = snap.End()
	}
	if ws.Watermark > end {
		end = ws.Watermark
	}
	log.AdvanceTo(end)
	base := end - uint64(wm.Stats().Arrivals)
	svc := newServiceWith(wm, cfg)
	pw := &persistedWindow{name: name, svc: svc, log: log, meta: ws.Config, base: base, committed: true}
	if snap != nil {
		pw.snapName, pw.snapEnd = snapName, snap.End()
	}
	p.attachRecorder(pw)
	p.mu.Lock()
	p.wins[name] = pw
	p.mu.Unlock()
	p.m.recoveryRecords.Add(st.Records)
	p.m.recoveryEdges.Add(st.Edges)
	p.logger.Info("window recovered",
		slog.String("window", name),
		slog.Int64("replayed_records", st.Records),
		slog.Int64("replayed_edges", st.Edges),
		slog.Int64("skipped_records", st.SkippedRecords),
		slog.Bool("snapshot_used", res.SnapshotUsed),
		slog.Int64("snapshot_edges", res.SnapshotEdges))
	return svc, res, nil
}

// OpenRegistry builds a registry from its durable state: every window in
// the manifest is re-created and its unexpired log suffix replayed, after
// which the background checkpoint ticker (if configured) starts. With a
// nil Persistence config it degenerates to NewRegistry. Windows created
// through Create on the returned registry are durable; windows Attach-ed
// are not (the registry cannot serialize an externally-built pipeline's
// config).
func OpenRegistry(cfg RegistryConfig) (*WindowRegistry, *RecoveryReport, error) {
	r := NewRegistry(cfg)
	rep := &RecoveryReport{}
	if cfg.Persistence == nil {
		return r, rep, nil
	}
	pcfg := *cfg.Persistence
	if cfg.FaultInjector != nil {
		pcfg.fs = cfg.FaultInjector
	}
	p, err := newPersister(pcfg, r.metrics, r.logger)
	if err != nil {
		return nil, nil, err
	}
	r.persist = p
	p.flight = r.flight
	// A durable registry persists its slow traces: one JSONL line per
	// slow batch, append-only, so post-mortems survive the process. Purely
	// best-effort — a sink failure must never take durability down.
	if f, err := os.OpenFile(filepath.Join(p.cfg.Dir, "flight_slow.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
		r.flight.SetSlowSink(f)
		r.flightSink = f
	} else {
		r.logger.Warn("flight: slow-trace sink unavailable", slog.String("error", err.Error()))
	}
	// Sink appends are best-effort, but silently dropping forensics is a
	// fault of its own kind: count every failed line and log the first.
	r.flight.SetSinkErrorHook(func(err error) {
		r.logger.Warn("flight: slow-trace sink append failed; further failures counted in sw_flight_sink_errors_total",
			slog.String("error", err.Error()))
	})
	if r.metrics.on() {
		r.metrics.Registry().CounterFunc("sw_flight_sink_errors_total",
			"Slow-trace JSONL sink appends that failed (lines dropped).",
			func() float64 { return float64(r.flight.SinkErrors()) })
	}
	man, err := wal.LoadManifestFS(p.fs, p.cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	names := make([]string, 0, len(man.Windows))
	for name := range man.Windows {
		names = append(names, name)
	}
	sort.Strings(names)
	tpl := r.cfg.Template.withClockDefaults()
	// Recovered windows share the registry's fork-join budget exactly like
	// created ones (configFromMeta forwards it from the template).
	tpl.Window.workers = r.workers
	// abort unwinds a partial recovery WITHOUT touching the on-disk
	// manifest: one window's corruption must not erase the durable
	// registration of windows not yet (or already) recovered. The logs
	// are closed here and the persister detached before Close, so Close's
	// final-checkpoint path cannot rewrite the manifest from the partial
	// window table.
	abort := func() {
		p.mu.Lock()
		for _, pw := range p.wins {
			_ = pw.log.Close()
		}
		p.wins = make(map[string]*persistedWindow)
		p.mu.Unlock()
		r.persist = nil
		r.Close()
	}
	for _, name := range names {
		svc, st, err := p.recoverWindow(name, man.Windows[name], tpl)
		if err != nil {
			abort()
			return nil, nil, err
		}
		r.armWindow(name, svc)
		if err := r.attachService(name, svc); err != nil {
			svc.Close()
			abort()
			return nil, nil, fmt.Errorf("stream: recovered window %q: %w", name, err)
		}
		rep.Windows++
		rep.Batches += st.Records
		rep.Edges += st.Edges
		rep.SkippedRecords += st.SkippedRecords
		if st.SnapshotUsed {
			rep.Snapshots++
			rep.SnapshotEdges += st.SnapshotEdges
		}
		if st.DegradedAtCrash {
			rep.DegradedAtCrash++
			rep.LostEdges += st.LostEdges
		}
	}
	rep.Elapsed = time.Since(start)
	if r.metrics.on() {
		elapsed := rep.Elapsed.Seconds()
		r.metrics.Registry().GaugeFunc("sw_recovery_seconds",
			"Wall time of the boot recovery pass.", func() float64 { return elapsed })
	}
	r.logger.Info("recovery complete",
		slog.Int("windows", rep.Windows),
		slog.Int64("replayed_records", rep.Batches),
		slog.Int64("replayed_edges", rep.Edges),
		slog.Int("snapshots_used", rep.Snapshots),
		slog.Duration("elapsed", rep.Elapsed))
	if p.cfg.CheckpointInterval > 0 {
		r.startCheckpointLoop(p.cfg.CheckpointInterval)
	}
	return r, rep, nil
}
