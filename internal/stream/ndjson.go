package stream

import (
	"errors"
	"fmt"
	"time"
)

// The compact NDJSON ingest format: one edge per line, each line a JSON
// array of 2–4 integers —
//
//	[u,v]         unit weight, event time stamped at submit
//	[u,v,w]       explicit weight
//	[u,v,w,t]     explicit weight and event time (unix nanoseconds; 0
//	              means "stamp at submit", like a zero Edge.T)
//
// Every line is valid JSON, but the decoder below is a hand-rolled byte
// scanner, not encoding/json: the fast ingest path exists precisely to
// keep reflection-driven decoding off the hot loop, and the grammar is
// small enough that scanning digits directly is both faster and
// allocation-free (the only allocation is the batch slice growth the
// JSON path pays too). Blank lines are allowed (trailing newline,
// keep-alive blank lines); whitespace may surround any token.

var errNDJSONTrailing = errors.New("trailing data after ']'")

// parseNDJSON appends the decoded edges to dst and returns it. Errors
// carry the 1-based line number; nothing is served from a partially
// decoded body — the caller discards dst on error.
func parseNDJSON(data []byte, dst []Edge) ([]Edge, error) {
	line := 1
	for i := 0; i < len(data); line++ {
		start := i
		for i < len(data) && data[i] != '\n' {
			i++
		}
		l := trimNDSpace(data[start:i])
		if i < len(data) {
			i++ // consume the newline
		}
		if len(l) == 0 {
			continue
		}
		e, err := parseNDJSONLine(l)
		if err != nil {
			return dst, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		dst = append(dst, e)
	}
	return dst, nil
}

func trimNDSpace(b []byte) []byte {
	for len(b) > 0 && isNDSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isNDSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isNDSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// parseNDJSONLine decodes one trimmed, non-empty line.
func parseNDJSONLine(l []byte) (Edge, error) {
	var e Edge
	if l[0] != '[' {
		return e, fmt.Errorf("expected '[', got %q", l[0])
	}
	p := 1
	var f [4]int64
	nf := 0
	for {
		v, n, err := parseNDInt(l[p:])
		if err != nil {
			return e, err
		}
		if nf == 4 {
			return e, errors.New("more than 4 fields")
		}
		f[nf] = v
		nf++
		p += n
		for p < len(l) && isNDSpace(l[p]) {
			p++
		}
		if p >= len(l) {
			return e, errors.New("unterminated array")
		}
		if l[p] == ']' {
			p++
			break
		}
		if l[p] != ',' {
			return e, fmt.Errorf("expected ',' or ']', got %q", l[p])
		}
		p++
	}
	if len(trimNDSpace(l[p:])) != 0 {
		return e, errNDJSONTrailing
	}
	if nf < 2 {
		return e, errors.New("need at least [u,v]")
	}
	if f[0] < 0 || f[0] > int64(maxInt32) || f[1] < 0 || f[1] > int64(maxInt32) {
		return e, fmt.Errorf("vertex out of int32 range: [%d,%d]", f[0], f[1])
	}
	e.U, e.V = int32(f[0]), int32(f[1])
	if nf >= 3 {
		e.W = f[2]
	}
	if nf == 4 && f[3] != 0 {
		e.T = time.Unix(0, f[3])
	}
	return e, nil
}

const maxInt32 = int64(1<<31 - 1)

// parseNDInt reads one optionally-negative decimal integer with optional
// leading whitespace, returning the value and bytes consumed.
func parseNDInt(b []byte) (int64, int, error) {
	p := 0
	for p < len(b) && isNDSpace(b[p]) {
		p++
	}
	neg := false
	if p < len(b) && b[p] == '-' {
		neg = true
		p++
	}
	start := p
	var v int64
	for p < len(b) && b[p] >= '0' && b[p] <= '9' {
		d := int64(b[p] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, 0, errors.New("integer overflow")
		}
		v = v*10 + d
		p++
	}
	if p == start {
		if p < len(b) {
			return 0, 0, fmt.Errorf("expected digit, got %q", b[p])
		}
		return 0, 0, errors.New("expected digit at end of line")
	}
	if neg {
		v = -v
	}
	return v, p, nil
}
