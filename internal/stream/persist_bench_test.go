package stream

import (
	"math/rand"
	"testing"
	"time"
)

// buildRecoveryDir streams edges into a durable single-window registry and
// leaves its data directory ready for a recovery measurement. With
// snapshot=true a final checkpoint compacts the whole suffix into a
// live-edge snapshot (and GC reclaims the covered segments); with false
// the directory holds only the WAL, so recovery is a full suffix replay.
func buildRecoveryDir(b *testing.B, edges int, snapshot bool) RegistryConfig {
	b.Helper()
	threshold := -1
	if snapshot {
		threshold = 1
	}
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 5000, Seed: 1, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour},
		},
		Persistence: &PersistenceConfig{Dir: b.TempDir(), Fsync: FsyncOff, SnapshotThreshold: threshold},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const chunk = 512
	for sent := 0; sent < edges; sent += chunk {
		k := chunk
		if k > edges-sent {
			k = edges - sent
		}
		batch := make([]Edge, k)
		for i := range batch {
			u := int32(rng.Intn(5000))
			v := (u + 1 + int32(rng.Intn(4998))) % 5000
			batch[i] = Edge{U: u, V: v, W: 1 + int64(i%512)}
		}
		if err := svc.Submit(batch); err != nil {
			b.Fatal(err)
		}
		svc.Flush()
	}
	if snapshot {
		st, err := reg.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if st.Snapshots != 1 {
			b.Fatalf("checkpoint wrote %d snapshots, want 1", st.Snapshots)
		}
	}
	reg.Close()
	return regCfg
}

// BenchmarkRecoveryFullReplay times OpenRegistry over a WAL-only data
// directory: the whole unexpired suffix decodes and replays in
// ReplayBatch-sized mega-batches — the pre-snapshot recovery path.
func BenchmarkRecoveryFullReplay(b *testing.B) {
	benchRecovery(b, false)
}

// BenchmarkRecoverySnapshot times OpenRegistry over the same stream after
// a snapshotting checkpoint: one live-edge snapshot seeds the window in a
// single mega-batch apply and only the (empty) post-snapshot suffix
// replays.
func BenchmarkRecoverySnapshot(b *testing.B) {
	benchRecovery(b, true)
}

func benchRecovery(b *testing.B, snapshot bool) {
	const edges = 40_000
	regCfg := buildRecoveryDir(b, edges, snapshot)
	b.SetBytes(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, rep, err := OpenRegistry(regCfg)
		if err != nil {
			b.Fatal(err)
		}
		if got := rep.Edges + rep.SnapshotEdges; got != edges {
			b.Fatalf("recovered %d edges, want %d", got, edges)
		}
		reg.Close()
	}
}
