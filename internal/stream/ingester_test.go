package stream

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestIngesterFlushAllocs pins the flush loop as allocation-free in
// steady state: pending and the flush batch buffer are both reused (the
// sink must not retain the slice), so the only per-submission allocation
// left is SubmitBatch's defensive copy. Measured process-wide via
// MemStats because the flush loop runs on the background goroutine,
// outside AllocsPerRun's reach.
func TestIngesterFlushAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the plain build asserts allocs")
	}
	g := NewIngester(IngesterConfig{MaxBatch: 256, MaxDelay: time.Hour}, func([]Edge) error { return nil })
	defer g.Close()
	batch := make([]Edge, 256) // exact multiples: no remainder, no deadline timer
	for i := 0; i < 8; i++ {   // warmup: grow pending and the flush buffer
		if err := g.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	g.Flush()
	runtime.GC()
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if err := g.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	g.Flush()
	runtime.ReadMemStats(&m2)
	perRound := float64(m2.Mallocs-m1.Mallocs) / rounds
	// 1 alloc/round is SubmitBatch's documented copy; allow a little
	// scheduler noise on top. Before batch recycling this path allocated
	// a fresh slice header + backing array per flushed batch and re-grew
	// pending continuously.
	if perRound > 3 {
		t.Fatalf("flush loop allocates %.2f objects per 256-edge submission, want ~1 (batch buffers not recycled?)", perRound)
	}
}

// BenchmarkIngesterFlush measures the submit→coalesce→flush pipeline with
// a no-op sink: the re-batching overhead the service adds on top of the
// monitor applies. allocs/op is the number to watch (see
// TestIngesterFlushAllocs).
func BenchmarkIngesterFlush(b *testing.B) {
	g := NewIngester(IngesterConfig{MaxBatch: 512, MaxDelay: time.Hour}, func([]Edge) error { return nil })
	defer g.Close()
	batch := make([]Edge, 512)
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.SubmitBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	g.Flush()
}

// batchSink records flushed batches thread-safely.
type batchSink struct {
	mu      sync.Mutex
	batches [][]Edge
	notify  chan int // batch sizes, for blocking waits
}

func newBatchSink() *batchSink {
	return &batchSink{notify: make(chan int, 1024)}
}

func (s *batchSink) sink(b []Edge) error {
	// The ingester recycles the batch buffer after the sink returns, so a
	// sink that wants to keep the edges must copy them — same rule the
	// real sink (WindowManager.Apply) follows.
	cp := append([]Edge(nil), b...)
	s.mu.Lock()
	s.batches = append(s.batches, cp)
	s.mu.Unlock()
	s.notify <- len(b)
	return nil
}

func (s *batchSink) sizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.batches))
	for i, b := range s.batches {
		out[i] = len(b)
	}
	return out
}

func (s *batchSink) waitBatch(t *testing.T) int {
	t.Helper()
	select {
	case n := <-s.notify:
		return n
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a flush")
		return 0
	}
}

func TestIngesterCountFlush(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour, Clock: fc}, sink.sink)
	defer g.Close()

	for i := 0; i < 10; i++ {
		if err := g.Submit(Edge{U: int32(i), V: int32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := sink.waitBatch(t); n != 4 {
		t.Fatalf("first flush size = %d, want 4", n)
	}
	if n := sink.waitBatch(t); n != 4 {
		t.Fatalf("second flush size = %d, want 4", n)
	}
	// The remaining 2 sit under the count threshold until a manual flush.
	g.Flush()
	if n := sink.waitBatch(t); n != 2 {
		t.Fatalf("flush remainder size = %d, want 2", n)
	}
}

func TestIngesterSplitsOversizedSubmissions(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Hour, Clock: fc}, sink.sink)
	defer g.Close()

	edges := make([]Edge, 10)
	for i := range edges {
		edges[i] = Edge{U: int32(i), V: int32(i + 1)}
	}
	if err := g.SubmitBatch(edges); err != nil {
		t.Fatal(err)
	}
	if n := sink.waitBatch(t); n != 4 {
		t.Fatalf("first flush size = %d, want 4", n)
	}
	if n := sink.waitBatch(t); n != 4 {
		t.Fatalf("second flush size = %d, want 4", n)
	}
	g.Flush()
	if n := sink.waitBatch(t); n != 2 {
		t.Fatalf("remainder size = %d, want 2", n)
	}
}

func TestIngesterOneEdgePerBatch(t *testing.T) {
	// MaxBatch=1 must degrade to one-edge batches even for grouped
	// submissions — the unbatched baseline of cmd/swload -compare.
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 1, MaxDelay: time.Hour}, sink.sink)
	if err := g.SubmitBatch(make([]Edge, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if n := sink.waitBatch(t); n != 1 {
			t.Fatalf("batch %d size = %d, want 1", i, n)
		}
	}
	g.Close()
}

func TestIngesterDeadlineFlush(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 100, MaxDelay: 50 * time.Millisecond, Clock: fc}, sink.sink)
	defer g.Close()

	for i := 0; i < 3; i++ {
		if err := g.Submit(Edge{U: int32(i), V: int32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the loop to arm the deadline timer, then advance past it.
	fc.BlockUntilWaiters(1)
	fc.Advance(49 * time.Millisecond)
	select {
	case n := <-sink.notify:
		t.Fatalf("flushed %d edges before the deadline", n)
	case <-time.After(20 * time.Millisecond):
	}
	fc.Advance(1 * time.Millisecond)
	if n := sink.waitBatch(t); n != 3 {
		t.Fatalf("deadline flush size = %d, want 3", n)
	}

	// A fresh batch arms a fresh deadline.
	if err := g.Submit(Edge{U: 7, V: 8}); err != nil {
		t.Fatal(err)
	}
	fc.BlockUntilWaiters(1)
	fc.Advance(50 * time.Millisecond)
	if n := sink.waitBatch(t); n != 1 {
		t.Fatalf("second deadline flush size = %d, want 1", n)
	}
}

func TestIngesterStampsEventTimes(t *testing.T) {
	start := time.Unix(5000, 0)
	fc := NewFakeClock(start)
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 2, MaxDelay: time.Hour, Clock: fc}, sink.sink)
	defer g.Close()

	explicit := start.Add(-time.Minute)
	if err := g.SubmitBatch([]Edge{{U: 0, V: 1, T: explicit}, {U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	sink.waitBatch(t)
	b := sink.batches[0]
	if !b[0].T.Equal(explicit) {
		t.Fatalf("explicit event time overwritten: %v", b[0].T)
	}
	if !b[1].T.Equal(start) {
		t.Fatalf("zero event time not stamped with clock: %v", b[1].T)
	}
}

func TestIngesterCloseFlushesAndRejects(t *testing.T) {
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 100, MaxDelay: time.Hour}, sink.sink)
	if err := g.Submit(Edge{U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if got := sink.sizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("close did not flush pending edges: %v", got)
	}
	if err := g.Submit(Edge{U: 3, V: 4}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	g.Flush() // must not hang after Close
	g.Close() // idempotent
}

func TestIngesterCallerReusesBuffer(t *testing.T) {
	// SubmitBatch copies, so a producer may reuse its buffer immediately;
	// under -race this doubles as the aliasing regression test.
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 4, MaxDelay: time.Millisecond}, sink.sink)
	buf := make([]Edge, 2)
	for i := 0; i < 100; i++ {
		buf[0] = Edge{U: int32(i), V: int32(i + 1)}
		buf[1] = Edge{U: int32(i + 1), V: int32(i + 2)}
		if err := g.SubmitBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	g.Close()
	seen := 0
	for _, b := range sink.sizes() {
		seen += b
	}
	if seen != 200 {
		t.Fatalf("flushed %d edges, want 200", seen)
	}
}

func TestIngesterConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 500
	sink := newBatchSink()
	g := NewIngester(IngesterConfig{MaxBatch: 64, MaxDelay: time.Millisecond}, sink.sink)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := g.Submit(Edge{U: int32(p), V: int32(i + producers)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	g.Close()
	total := 0
	for _, n := range sink.sizes() {
		total += n
	}
	if total != producers*perProducer {
		t.Fatalf("flushed %d edges, want %d", total, producers*perProducer)
	}
	edges, batches := g.Stats()
	if edges != producers*perProducer {
		t.Fatalf("stats edges = %d, want %d", edges, producers*perProducer)
	}
	if int(batches) != len(sink.sizes()) {
		t.Fatalf("stats batches = %d, want %d", batches, len(sink.sizes()))
	}
}
