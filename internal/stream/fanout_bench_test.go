package stream

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkFanout measures WindowManager.Apply — the write-lock hold — with
// all five monitors under parallel vs sequential fan-out. The ratio of the
// two is the lock-hold reduction the parallel region buys (≈1 at
// GOMAXPROCS=1, approaching the slowest-monitor share as cores grow).
func BenchmarkFanout(b *testing.B) {
	const (
		n      = 5_000
		window = 20_000
		batch  = 512
	)
	for _, seq := range []bool{false, true} {
		name := "parallel"
		if seq {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			wm, err := NewWindowManager(WindowConfig{
				N:                n,
				Seed:             1,
				MaxArrivals:      window,
				SequentialFanout: seq,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(2))
			batches := make([][]Edge, 64)
			for i := range batches {
				batches[i] = randomEdges(r, n, batch)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Apply compacts in place but never grows; reusing the
				// pre-generated batches keeps allocation out of the loop.
				wm.Apply(batches[i%len(batches)])
			}
			b.ReportMetric(float64(wm.Stats().ApplyNS)/float64(b.N), "apply-ns/batch")
		})
	}
}

// BenchmarkRegistryGet measures the sharded name → window lookup under
// parallel readers — the per-request overhead multi-tenancy adds to every
// HTTP call.
func BenchmarkRegistryGet(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg := NewRegistry(RegistryConfig{
				Shards:   shards,
				Template: ServiceConfig{Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}}},
			})
			defer reg.Close()
			names := make([]string, 32)
			for i := range names {
				names[i] = fmt.Sprintf("w%d", i)
				if _, err := reg.Create(names[i], ServiceConfig{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := reg.Get(names[i%len(names)]); !ok {
						b.Fail()
					}
					i++
				}
			})
		})
	}
}
