package stream

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
)

// faultRig is the shared harness of the fault-schedule differentials: a
// durable registry whose disk I/O runs through a fault.Injector, next to
// an uninterrupted in-memory reference manager fed identical batches.
type faultRig struct {
	t     *testing.T
	clock *FakeClock
	rng   *rand.Rand
	dir   string
	inj   *fault.Injector
	cfg   RegistryConfig
	ref   *WindowManager
	reg   *WindowRegistry
	svc   *Service
}

func newFaultRig(t *testing.T, mutate func(*PersistenceConfig)) *faultRig {
	t.Helper()
	const n = 48
	r := &faultRig{
		t:     t,
		clock: NewFakeClock(time.Unix(1_700_000_000, 0)),
		rng:   rand.New(rand.NewSource(42)),
		dir:   t.TempDir(),
		inj:   fault.NewInjector(nil, 1),
	}
	winCfg := WindowConfig{
		N:           n,
		Seed:        0xFEED,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxArrivals: 250,
		Clock:       r.clock,
	}
	pcfg := &PersistenceConfig{
		Dir: r.dir, Fsync: FsyncOff, SegmentBytes: 1 << 10,
		SnapshotThreshold: -1,
		// An aggressive heal cadence so the degrade→heal round trip fits a
		// unit test; production default is 250ms with backoff.
		HealRetry: time.Millisecond,
	}
	if mutate != nil {
		mutate(pcfg)
	}
	r.cfg = RegistryConfig{
		Template: ServiceConfig{
			Window: winCfg,
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour, Clock: r.clock},
		},
		Persistence:   pcfg,
		FaultInjector: r.inj,
	}
	var err error
	if r.ref, err = NewWindowManager(winCfg); err != nil {
		t.Fatal(err)
	}
	if r.reg, _, err = OpenRegistry(r.cfg); err != nil {
		t.Fatal(err)
	}
	if r.svc, err = r.reg.Create("w", r.reg.Template()); err != nil {
		t.Fatal(err)
	}
	return r
}

// step feeds one identical random batch to the reference manager and the
// durable pipeline (one Submit+Flush = one applied batch).
func (r *faultRig) step(svc *Service) {
	r.t.Helper()
	r.clock.Advance(time.Duration(r.rng.Intn(4000)) * time.Millisecond)
	n := r.cfg.Template.Window.N
	k := 1 + r.rng.Intn(24)
	batch := make([]Edge, k)
	for i := range batch {
		u := int32(r.rng.Intn(n))
		v := int32(r.rng.Intn(n))
		for v == u {
			v = int32(r.rng.Intn(n))
		}
		batch[i] = Edge{U: u, V: v, W: 1 + r.rng.Int63n(1<<10), T: r.clock.Now()}
	}
	r.ref.Apply(append([]Edge(nil), batch...))
	if err := svc.Submit(batch); err != nil {
		r.t.Fatal(err)
	}
	svc.Flush()
}

func (r *faultRig) compare(tag string, wm *WindowManager) {
	r.t.Helper()
	n := r.cfg.Template.Window.N
	pairs := make([][2]int32, 300)
	for i := range pairs {
		pairs[i] = [2]int32{int32(r.rng.Intn(n)), int32(r.rng.Intn(n))}
	}
	now := r.clock.Now()
	r.ref.ExpireByAge(now)
	wm.ExpireByAge(now)
	diffAnswers(r.t, tag, answersOf(r.t, r.ref, pairs), answersOf(r.t, wm, pairs))
}

// durableSubmit runs a sync-ack submission to completion. Durable acks are
// delivered by the flush that covers the submission, and this harness uses
// a frozen FakeClock with MaxDelay=1h — no flush ever fires on its own —
// so the waiter runs in a goroutine while we drive Flush until it acks.
func (r *faultRig) durableSubmit(edges []Edge) error {
	r.t.Helper()
	ch := make(chan error, 1)
	go func() { ch <- r.svc.submitOwnedDurable(context.Background(), edges) }()
	for deadline := time.Now().Add(10 * time.Second); ; {
		r.svc.Flush()
		select {
		case err := <-ch:
			return err
		case <-time.After(2 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			r.t.Fatal("durable submit never acked")
		}
	}
}

// waitNotDegraded polls the live degraded set until the self-heal loop
// declares the window healthy again.
func (r *faultRig) waitNotDegraded() {
	r.t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(2 * time.Millisecond) {
		if len(r.reg.DegradedWindows()) == 0 {
			return
		}
		if time.Now().After(deadline) {
			ps, _ := r.reg.PersistenceStats()
			r.t.Fatalf("window still degraded after 10s: %+v", ps)
		}
	}
}

// degradeUnderRules streams batches with the given fault rules armed until
// the window enters the degraded state (or the step budget runs out).
func (r *faultRig) degradeUnderRules(rules ...fault.Rule) {
	r.t.Helper()
	for _, rule := range rules {
		if _, err := r.inj.Set(rule); err != nil {
			r.t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		r.step(r.svc)
		if len(r.reg.DegradedWindows()) > 0 {
			return
		}
	}
	r.t.Fatalf("window never degraded under rules %+v", rules)
}

// TestWALOutageDegradeHealDifferential is the tentpole's acceptance test:
// a WAL append outage mid-stream must flip the window into the degraded
// state (sync-ack submissions fail with ErrWindowDegraded instead of lying,
// async ingest keeps flowing), the self-heal loop must re-arm the log and
// close the un-logged gap with a forced snapshot once the fault clears, and
// a subsequent kill-and-recover must answer every monitor query identically
// to the uninterrupted reference — the outage left no durability hole.
func TestWALOutageDegradeHealDifferential(t *testing.T) {
	r := newFaultRig(t, nil)
	for i := 0; i < 40; i++ {
		r.step(r.svc)
	}

	// Outage: every WAL segment write AND snapshot-temp write fails with
	// EIO. Blocking only .seg would let the heal loop close the gap
	// immediately through a forced snapshot (by design — the heal path
	// avoids the broken log); a full write outage holds the window
	// degraded until the fault actually clears.
	r.degradeUnderRules(
		fault.Rule{ID: "outage-seg", Op: fault.OpWrite, Path: ".seg", Kind: fault.KindEIO},
		fault.Rule{ID: "outage-snap", Op: fault.OpWrite, Path: ".snap-tmp-", Kind: fault.KindEIO},
	)

	// Degraded is a served state: async ingest continues...
	for i := 0; i < 20; i++ {
		r.step(r.svc)
	}
	// ...but a durable ack would be a lie, so sync submissions fail loudly.
	// (The edges are still accepted and applied — only the receipt fails.)
	if err := r.durableSubmit([]Edge{{U: 1, V: 2, W: 3, T: r.clock.Now()}}); !errors.Is(err, ErrWindowDegraded) {
		t.Fatalf("sync-ack submit while degraded: err=%v, want ErrWindowDegraded", err)
	}
	ps, _ := r.reg.PersistenceStats()
	if ps.DegradedWindows != 1 || ps.GapEdges == 0 || ps.AppendErrors == 0 {
		t.Fatalf("degraded stats: %+v", ps)
	}
	// The window itself still answers queries (availability over durability).
	if _, err := r.svc.Window().NumComponents(); err != nil {
		t.Fatalf("query while degraded: %v", err)
	}

	// Fault clears; the heal loop re-arms the log and closes the gap.
	r.inj.Reset()
	r.waitNotDegraded()
	ps, _ = r.reg.PersistenceStats()
	if ps.WALHeals == 0 || ps.GapEdges != 0 {
		t.Fatalf("healed stats: %+v", ps)
	}
	if err := r.durableSubmit([]Edge{{U: 3, V: 4, W: 5, T: r.clock.Now()}}); err != nil {
		t.Fatalf("sync-ack submit after heal: %v", err)
	}
	r.ref.Apply([]Edge{{U: 1, V: 2, W: 3, T: r.clock.Now()}, {U: 3, V: 4, W: 5, T: r.clock.Now()}})

	// Post-heal streaming appends to the healed log.
	for i := 0; i < 20; i++ {
		r.step(r.svc)
	}

	// KILL: abandon the registry and recover from disk. The degraded
	// interval's arrivals must be present (covered by the heal's forced
	// snapshot), not silently missing.
	reg2, rep, err := OpenRegistry(r.cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer reg2.Close()
	if rep.Windows != 1 || rep.DegradedAtCrash != 0 || rep.LostEdges != 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	if rep.Snapshots != 1 {
		t.Fatalf("recovery did not seed from the heal's forced snapshot: %+v", rep)
	}
	svc2, _ := reg2.Get("w")
	r.compare("post-outage recovery", svc2.Window())

	for i := 0; i < 20; i++ {
		r.step(svc2)
	}
	r.compare("post-outage recovery stream", svc2.Window())
}

// TestENOSPCDuringRotationDegradesAndHeals injects ENOSPC at segment
// rotation (opening the next *.seg file) — the disk-full shape — and pins
// the same degrade → heal → recover-clean contract.
func TestENOSPCDuringRotationDegradesAndHeals(t *testing.T) {
	r := newFaultRig(t, nil)
	for i := 0; i < 10; i++ {
		r.step(r.svc)
	}
	// The currently-open segment keeps working; the fault lands on the
	// next rotation's segment open. The degraded interval can be too
	// short to observe — the heal loop may re-arm the log without a new
	// open and flip the window back to healthy between polls — so the
	// cumulative counters are the witness that degrade→heal happened.
	if _, err := r.inj.Set(fault.Rule{ID: "full", Op: fault.OpOpen, Path: ".seg", Kind: fault.KindENOSPC}); err != nil {
		t.Fatal(err)
	}
	fired := false
	for i := 0; i < 64 && !fired; i++ {
		r.step(r.svc)
		ps, _ := r.reg.PersistenceStats()
		fired = ps.AppendErrors > 0
	}
	if !fired {
		t.Fatal("segment rotation never hit the ENOSPC rule")
	}
	r.inj.Reset()
	r.waitNotDegraded()
	if ps, _ := r.reg.PersistenceStats(); ps.WALHeals == 0 {
		t.Fatalf("rotation failure degraded the window but no heal was recorded: %+v", ps)
	}

	for i := 0; i < 10; i++ {
		r.step(r.svc)
	}
	reg2, rep, err := OpenRegistry(r.cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer reg2.Close()
	if rep.DegradedAtCrash != 0 || rep.LostEdges != 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	svc2, _ := reg2.Get("w")
	r.compare("post-enospc recovery", svc2.Window())
}

// TestSnapshotFsyncFailureFailsCheckpointLoudly injects an fsync failure
// into the snapshot commit path: the checkpoint must fail (and count a
// consecutive-failure streak for the loop's backoff), no *.snap file may
// appear, and once the fault clears a checkpoint must succeed and reset
// the streak — with recovery still answering identically.
func TestSnapshotFsyncFailureFailsCheckpointLoudly(t *testing.T) {
	r := newFaultRig(t, func(p *PersistenceConfig) {
		p.SnapshotThreshold = 1 // every checkpoint wants a snapshot
	})
	for i := 0; i < 30; i++ {
		r.step(r.svc)
	}
	if _, err := r.inj.Set(fault.Rule{
		ID: "snapsync", Op: fault.OpSync, Path: ".snap-tmp-", Kind: fault.KindEIO,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.reg.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded with snapshot fsync failing")
	}
	ps, _ := r.reg.PersistenceStats()
	if ps.CheckpointFailStreak == 0 || ps.CheckpointErrors == 0 {
		t.Fatalf("checkpoint failure not counted: %+v", ps)
	}
	if got := countSnapshots(t, r.dir+"/windows/w"); got != 0 {
		t.Fatalf("%d snapshot files committed despite fsync failure", got)
	}
	if len(r.reg.DegradedWindows()) != 0 {
		t.Fatal("snapshot failure must not degrade the window (the WAL is intact)")
	}

	r.inj.Reset()
	if _, err := r.reg.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after fault cleared: %v", err)
	}
	ps, _ = r.reg.PersistenceStats()
	if ps.CheckpointFailStreak != 0 {
		t.Fatalf("fail streak not reset: %+v", ps)
	}
	if got := countSnapshots(t, r.dir+"/windows/w"); got != 1 {
		t.Fatalf("%d snapshot files after recovered checkpoint, want 1", got)
	}

	reg2, _, err := OpenRegistry(r.cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer reg2.Close()
	svc2, _ := reg2.Get("w")
	r.compare("post-snapshot-failure recovery", svc2.Window())
}

// TestKillWhileDegradedIsLoud pins the correct-or-loud contract for the
// one unavoidable hole: a crash while still degraded loses the un-logged
// arrivals, and recovery must SAY so — DegradedAtCrash and LostEdges in
// the report — rather than silently serving a shorter window.
func TestKillWhileDegradedIsLoud(t *testing.T) {
	r := newFaultRig(t, nil)
	for i := 0; i < 20; i++ {
		r.step(r.svc)
	}
	r.degradeUnderRules(
		fault.Rule{ID: "outage-seg", Op: fault.OpWrite, Path: ".seg", Kind: fault.KindEIO},
		fault.Rule{ID: "outage-snap", Op: fault.OpWrite, Path: ".snap-tmp-", Kind: fault.KindEIO},
	)
	for i := 0; i < 10; i++ {
		r.step(r.svc)
	}
	// Persist the degraded marker the way a live server would (checkpoint
	// runs on a ticker). The checkpoint surfaces the sticky append error —
	// acknowledged data is missing from the log — but still writes the
	// manifest, Degraded marker included.
	if _, err := r.reg.Checkpoint(); err == nil {
		t.Fatal("checkpoint while degraded must surface the append failure")
	}

	// KILL while degraded: the gap is unrecoverable and must be loud.
	r.inj.Reset()
	reg2, rep, err := OpenRegistry(r.cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer reg2.Close()
	if rep.DegradedAtCrash != 1 || rep.LostEdges == 0 {
		t.Fatalf("recovery after degraded crash must be loud, got %+v", rep)
	}
	// The recovered window serves (shorter, but consistent) queries.
	svc2, _ := reg2.Get("w")
	if _, err := svc2.Window().NumComponents(); err != nil {
		t.Fatalf("query after loud recovery: %v", err)
	}
	if len(reg2.DegradedWindows()) != 0 {
		t.Fatal("recovered window must start healthy (the lost gap is already accounted)")
	}
}

// TestApplyPanicQuarantineIsolation pins the quarantine fault domain with
// no rebuild escape hatch: an unbounded window retains no live edges, so a
// panicking monitor is quarantined permanently — its queries fail with
// ErrMonitorQuarantined, every sibling monitor of the same window and every
// other window keeps answering, and the quarantine is machine-readable in
// the query summary.
func TestApplyPanicQuarantineIsolation(t *testing.T) {
	inj := fault.NewInjector(nil, 1)
	reg := NewRegistry(RegistryConfig{
		FaultInjector: inj,
		Template: ServiceConfig{
			Window: WindowConfig{N: 32, Seed: 7, Monitor: MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3}},
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour},
		},
	})
	defer reg.Close()
	w1, err := reg.Create("w1", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := reg.Create("w2", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Set(fault.Rule{
		ID: "boom", Op: fault.OpApply, Path: "w1/" + MonitorConn, Kind: fault.KindPanic, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	batch := []Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}, {U: 3, V: 4, W: 9}}
	for _, svc := range []*Service{w1, w2} {
		if err := svc.Submit(append([]Edge(nil), batch...)); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	if inj.Trips() == 0 {
		t.Fatal("apply panic rule never fired")
	}

	// The victim monitor is quarantined; with no retention the rebuild must
	// fail fast and mark it permanent rather than retry forever.
	var q []QuarantineInfo
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(2 * time.Millisecond) {
		q = w1.Window().Quarantined()
		if len(q) == 1 && q[0].Permanent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quarantine not permanent after 5s: %+v", q)
		}
	}
	if q[0].Monitor != MonitorConn || q[0].Reason == "" || q[0].RebuildErr == "" {
		t.Fatalf("quarantine record: %+v", q[0])
	}

	// Quarantined monitor: 503-shaped error, machine-readable.
	if _, err := w1.Window().IsConnected(0, 1); !errors.Is(err, ErrMonitorQuarantined) {
		t.Fatalf("IsConnected on quarantined monitor: err=%v, want ErrMonitorQuarantined", err)
	}
	// Sibling monitors of the same window keep answering.
	if b, err := w1.Window().IsBipartite(); err != nil || !b {
		t.Fatalf("bipartite on w1 = %v, %v; the batch is a forest, want true", b, err)
	}
	if _, err := w1.Window().MSFWeight(); err != nil {
		t.Fatalf("msfweight on w1: %v", err)
	}
	if _, err := w1.Window().HasCycle(); err != nil {
		t.Fatalf("cycle on w1: %v", err)
	}
	// The consistent summary serves what it can and names the hole.
	sum := w1.Window().QuerySummary()
	if len(sum.Quarantined) != 1 || sum.Quarantined[0] != MonitorConn {
		t.Fatalf("summary quarantined list: %+v", sum.Quarantined)
	}
	// The other window is a separate fault domain: fully healthy.
	if len(w2.Window().Quarantined()) != 0 {
		t.Fatal("w2 caught w1's quarantine")
	}
	if conn, err := w2.Window().IsConnected(0, 2); err != nil || !conn {
		t.Fatalf("w2 IsConnected(0,2) = %v, %v; want true", conn, err)
	}
}

// TestApplyPanicRebuildRestores pins the self-healing half of quarantine:
// with live-edge retention, the background rebuild replays the window's
// unexpired suffix into a fresh monitor and swaps it in — queries return
// and answer exactly like an uninterrupted reference, no restart needed.
func TestApplyPanicRebuildRestores(t *testing.T) {
	const n = 48
	inj := fault.NewInjector(nil, 1)
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	// Live-edge retention needs time-based expiry (or a durability layer);
	// a frozen clock with a wide MaxAge keeps every arrival rebuildable.
	winCfg := WindowConfig{
		N: n, Seed: 0xFEED,
		Monitor: MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxAge:  time.Hour,
		Clock:   clock,
	}
	reg := NewRegistry(RegistryConfig{
		FaultInjector: inj,
		Template: ServiceConfig{
			Window: winCfg,
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour, Clock: clock},
		},
	})
	defer reg.Close()
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewWindowManager(winCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	step := func() {
		k := 1 + rng.Intn(24)
		batch := make([]Edge, k)
		for i := range batch {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10), T: clock.Now()}
		}
		ref.Apply(append([]Edge(nil), batch...))
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}

	for i := 0; i < 15; i++ {
		step()
	}
	if _, err := inj.Set(fault.Rule{
		ID: "boom", Op: fault.OpApply, Path: "w/" + MonitorMSFWeight, Kind: fault.KindPanic, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// This batch panics msfweight's apply; the fan-out quarantines it and
	// keeps applying to the other four monitors.
	step()
	if inj.Trips() == 0 {
		t.Fatal("apply panic rule never fired")
	}
	// Stream on while the rebuild races the writer: the rebuild's catch-up
	// rounds must converge regardless.
	for i := 0; i < 15; i++ {
		step()
	}
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(2 * time.Millisecond) {
		if len(svc.Window().Quarantined()) == 0 {
			break
		}
		svc.Window().kickRebuilds()
		if time.Now().After(deadline) {
			t.Fatalf("monitor still quarantined after 10s: %+v", svc.Window().Quarantined())
		}
	}

	pairs := make([][2]int32, 200)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	diffAnswers(t, "post-rebuild", answersOf(t, ref, pairs), answersOf(t, svc.Window(), pairs))

	// And the window stays live: more stream, still reference-equal.
	for i := 0; i < 10; i++ {
		step()
	}
	diffAnswers(t, "post-rebuild stream", answersOf(t, ref, pairs), answersOf(t, svc.Window(), pairs))
}
