package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Server is the HTTP JSON front-end over a Service, the handler behind
// cmd/swserver. Endpoints:
//
//	POST /edges                      ingest a batch of edges
//	GET  /query/connected?u=&v=      window connectivity of u and v
//	GET  /query/components           number of connected components
//	GET  /query/bipartite            is the window graph bipartite
//	GET  /query/msfweight            (1+ε)-approximate MSF weight
//	GET  /query/cycle                does the window graph contain a cycle
//	GET  /query/kcert                certificate size and min(k, connectivity)
//	GET  /stats                      window, ingest and latency counters
//	GET  /healthz                    liveness
//
// Every endpoint records latency into an EndpointStats table surfaced by
// /stats.
type Server struct {
	svc   *Service
	stats *EndpointStats
	mux   *http.ServeMux
	start time.Time
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
	W int64 `json:"w,omitempty"`
	// T is an optional RFC 3339 event time; empty means "now".
	T string `json:"t,omitempty"`
}

type edgesRequest struct {
	Edges []edgeJSON `json:"edges"`
}

// NewServer wraps svc in the HTTP front-end.
func NewServer(svc *Service) *Server {
	s := &Server{
		svc:   svc,
		stats: NewEndpointStats(),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.handle("POST /edges", s.handleEdges)
	s.handle("GET /query/connected", s.handleConnected)
	s.handle("GET /query/components", s.handleComponents)
	s.handle("GET /query/bipartite", s.handleBipartite)
	s.handle("GET /query/msfweight", s.handleMSFWeight)
	s.handle("GET /query/cycle", s.handleCycle)
	s.handle("GET /query/kcert", s.handleKCert)
	s.handle("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers a pattern with latency recording keyed by the pattern.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	rec := s.stats.Recorder(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		rec.Observe(time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// queryErr maps query failures: missing monitor is a client configuration
// problem (404), anything else a bad request.
func queryErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNoMonitor) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var req edgesRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad edges body: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no edges in body"))
		return
	}
	n := int32(s.svc.Window().N())
	batch := make([]Edge, len(req.Edges))
	for i, e := range req.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("edge %d: vertex out of range [0, %d)", i, n))
			return
		}
		if e.U == e.V {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("edge %d: self-loop", i))
			return
		}
		var t time.Time
		if e.T != "" {
			var err error
			t, err = time.Parse(time.RFC3339Nano, e.T)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("edge %d: bad time: %w", i, err))
				return
			}
		}
		batch[i] = Edge{U: e.U, V: e.V, W: e.W, T: t}
	}
	if err := s.svc.submitOwned(batch); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(batch)})
}

func vertexParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return int32(v), nil
}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	conn, err := s.svc.Window().IsConnected(u, v)
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "connected": conn})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	cc, err := s.svc.Window().NumComponents()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"components": cc})
}

func (s *Server) handleBipartite(w http.ResponseWriter, r *http.Request) {
	b, err := s.svc.Window().IsBipartite()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"bipartite": b})
}

func (s *Server) handleMSFWeight(w http.ResponseWriter, r *http.Request) {
	wt, err := s.svc.Window().MSFWeight()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"weight": wt})
}

func (s *Server) handleCycle(w http.ResponseWriter, r *http.Request) {
	hc, err := s.svc.Window().HasCycle()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"cycle": hc})
}

func (s *Server) handleKCert(w http.ResponseWriter, r *http.Request) {
	size, err := s.svc.Window().CertificateSize()
	if err != nil {
		queryErr(w, err)
		return
	}
	conn, err := s.svc.Window().EdgeConnectivityUpToK()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"size": size, "edge_connectivity_up_to_k": conn})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	edges, batches := s.svc.IngestStats()
	win := s.svc.Window().Stats()
	resp := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"monitors":       s.svc.Window().Monitors(),
		"window":         win,
		"ingest": map[string]any{
			"edges_accepted": edges,
			"batches":        batches,
		},
		"endpoints": s.stats.Snapshot(),
	}
	if batches > 0 {
		resp["ingest"].(map[string]any)["mean_batch_size"] = float64(edges) / float64(batches)
	}
	writeJSON(w, http.StatusOK, resp)
}
