package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// DefaultMaxBodyBytes caps a POST /edges request body (8 MiB ≈ 200k edges)
// unless ServerConfig overrides it.
const DefaultMaxBodyBytes = 8 << 20

// Server is the HTTP JSON front-end over a WindowRegistry, the handler
// behind cmd/swserver. Every window registered in the registry is
// addressable under /windows/{name}/...; the legacy single-window paths
// are preserved and resolve to the configured default window.
//
//	POST   /windows                             create a window (template + overrides)
//	GET    /windows                             list windows with stats
//	GET    /windows/{name}                      one window's info
//	DELETE /windows/{name}                      drop a window (closes its pipeline)
//	POST   /windows/{name}/edges                ingest a batch of edges
//	GET    /windows/{name}/query/connected?u=&v=
//	GET    /windows/{name}/query/components
//	GET    /windows/{name}/query/bipartite
//	GET    /windows/{name}/query/msfweight
//	GET    /windows/{name}/query/cycle
//	GET    /windows/{name}/query/kcert
//	GET    /windows/{name}/query/summary     all monitors at one apply epoch
//	GET    /windows/{name}/stats                per-window counters
//	POST   /edges, GET /query/..., GET /stats   same, on the default window
//	GET    /healthz                             liveness (process up)
//	GET    /readyz                              readiness (see ServerConfig)
//	GET    /metrics                             Prometheus text exposition
//
// Every endpoint records latency into an EndpointStats table keyed by route
// pattern (shared across windows, so cardinality stays bounded), surfaced
// by /stats — and, when the registry carries a telemetry bundle, into the
// sw_http_request_seconds{route=...} histogram the /metrics endpoint
// exposes (same buckets, same observations: the two views cannot drift).
type Server struct {
	reg        *WindowRegistry
	defaultWin string
	maxBody    int64
	stats      *EndpointStats
	m          *Metrics
	health     *telemetry.Health
	mux        *http.ServeMux
	start      time.Time
}

// ServerConfig tunes the HTTP front-end; zero values select defaults.
type ServerConfig struct {
	// DefaultWindow is the window name the legacy root routes resolve to
	// (default "default").
	DefaultWindow string
	// MaxBodyBytes caps the POST /edges (and POST /windows) request body;
	// oversized bodies get 413 (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Metrics overrides the telemetry bundle (default: the registry's own
	// bundle). /metrics is mounted only when the resolved bundle carries a
	// registry.
	Metrics *Metrics
	// QueueBudget is the ingest-queue utilization (queued submissions over
	// queue capacity, per window) above which /readyz reports not-ready —
	// the load-shedding signal for balancers. Default 0.9; negative
	// disables the check.
	QueueBudget float64
	// CheckpointAgeBound fails /readyz when the durable registry has not
	// completed a checkpoint for this long — durability (expiry watermarks,
	// segment GC) has stalled. 0 disables the check.
	CheckpointAgeBound time.Duration
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
	W int64 `json:"w,omitempty"`
	// T is an optional RFC 3339 event time; empty means "now".
	T string `json:"t,omitempty"`
}

type edgesRequest struct {
	Edges []edgeJSON `json:"edges"`
}

// createWindowRequest is the wire form of POST /windows. Zero fields
// inherit from the registry template.
type createWindowRequest struct {
	Name        string   `json:"name"`
	N           int      `json:"n,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Monitors    []string `json:"monitors,omitempty"`
	MaxArrivals int      `json:"max_arrivals,omitempty"`
	MaxAgeMS    int64    `json:"max_age_ms,omitempty"`
	Eps         float64  `json:"eps,omitempty"`
	MaxWeight   int64    `json:"max_weight,omitempty"`
	K           int      `json:"k,omitempty"`
	MaxBatch    int      `json:"max_batch,omitempty"`
	MaxDelayMS  int64    `json:"max_delay_ms,omitempty"`
	// Admission budgets and rate limit (see IngesterConfig); zero inherits
	// the registry template.
	MaxQueueEdges  int64 `json:"max_queue_edges,omitempty"`
	MaxQueueBytes  int64 `json:"max_queue_bytes,omitempty"`
	MaxEdgesPerSec int   `json:"max_edges_per_sec,omitempty"`
	BurstEdges     int   `json:"burst_edges,omitempty"`
	// SequentialFanout is tri-state: absent inherits the registry
	// template's fan-out mode, an explicit true/false overrides it.
	SequentialFanout *bool `json:"sequential_fanout,omitempty"`
	// SyncAck is tri-state like SequentialFanout: absent inherits the
	// template's ack mode, explicit true/false overrides. True makes
	// POST /edges on this window block for durability by default
	// (per-request ?sync= still overrides).
	SyncAck *bool `json:"sync_ack,omitempty"`
	// ApplyParallelism tunes the intra-monitor fork-join of the batch
	// apply: 0/absent inherits the registry's shared budget, 1 forces
	// sequential level application for this window (values above 1 are
	// registry-level — the shared budget is sized from the server's
	// template, so a per-window >1 still draws from it).
	ApplyParallelism int `json:"apply_parallelism,omitempty"`
}

// NewServer wraps one Service in the HTTP front-end as the default window
// of a fresh single-window registry — the original single-tenant shape.
// The caller keeps ownership of svc (its Close is idempotent, so closing
// through both paths is harmless). The internal registry is capped at one
// window, so the /windows admin routes can list and inspect but not grow
// a server whose owner never closes the registry; multi-tenant callers
// use NewRegistryServer.
func NewServer(svc *Service) *Server {
	reg := NewRegistry(RegistryConfig{Shards: 1, MaxWindows: 1})
	if err := reg.Attach(DefaultWindow, svc); err != nil {
		panic(err) // fresh registry, valid constant name: unreachable
	}
	return NewRegistryServer(reg, ServerConfig{})
}

// NewRegistryServer wraps a registry in the HTTP front-end.
func NewRegistryServer(reg *WindowRegistry, cfg ServerConfig) *Server {
	if cfg.DefaultWindow == "" {
		cfg.DefaultWindow = DefaultWindow
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Metrics == nil {
		cfg.Metrics = reg.Metrics()
	}
	if cfg.QueueBudget == 0 {
		cfg.QueueBudget = 0.9
	}
	s := &Server{
		reg:        reg,
		defaultWin: cfg.DefaultWindow,
		maxBody:    cfg.MaxBodyBytes,
		stats:      NewEndpointStats(),
		m:          cfg.Metrics.orNoop(),
		health:     buildHealth(reg, cfg),
		mux:        http.NewServeMux(),
		start:      time.Now(),
	}
	s.handle("POST /windows", s.handleCreateWindow)
	s.handle("POST /admin/checkpoint", s.handleCheckpoint)
	// The chaos control plane exists only when the process was booted with
	// a fault injector (-fault-inject); a production server has no fault
	// surface and these routes 404.
	if reg.FaultInjector() != nil {
		s.handle("GET /admin/fault", s.handleFaultGet)
		s.handle("POST /admin/fault", s.handleFaultSet)
		s.handle("DELETE /admin/fault", s.handleFaultDelete)
	}
	s.handle("GET /windows", s.handleListWindows)
	s.handle("GET /windows/{name}", s.handleWindowInfo)
	s.handle("DELETE /windows/{name}", s.handleDropWindow)
	// Each data-plane route is registered twice — namespaced and legacy —
	// sharing one handler; the legacy form reads the default window because
	// its pattern has no {name}.
	both := func(method, suffix string, fn http.HandlerFunc) {
		s.handle(method+" /windows/{name}"+suffix, fn)
		s.handle(method+" "+suffix, fn)
	}
	both("POST", "/edges", s.handleEdges)
	both("GET", "/query/connected", s.handleConnected)
	both("GET", "/query/components", s.handleComponents)
	both("GET", "/query/bipartite", s.handleBipartite)
	both("GET", "/query/msfweight", s.handleMSFWeight)
	both("GET", "/query/cycle", s.handleCycle)
	both("GET", "/query/kcert", s.handleKCert)
	both("GET", "/query/summary", s.handleSummary)
	s.handle("GET /windows/{name}/stats", s.handleWindowStats)
	s.handle("GET /stats", s.handleStats)
	// Probes and the exposition endpoint are deliberately NOT routed
	// through handle(): a scraper hitting /metrics every few seconds must
	// not shift the request-latency histograms it is reading.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.Handle("GET /readyz", s.health.ReadyHandler())
	if treg := s.m.Registry(); treg != nil {
		s.mux.Handle("GET /metrics", treg.Handler())
	}
	// The flight recorder is read-side forensics like /metrics: raw-mounted
	// so scraping traces never shifts the request histograms.
	s.mux.Handle("GET /debug/flight", reg.Flight().Handler())
	return s
}

// buildHealth assembles the readiness probe set for /readyz:
//
//   - recovery_complete (gate): the registry finished boot recovery. True
//     from construction — OpenRegistry returns only after recovery — and
//     flippable through Health() by embedders that serve during a warm-up
//     of their own.
//   - wal_writable (check, durable registries): no WAL append has failed;
//     an append error means acknowledged edges are missing from the log,
//     which a restart-with-recovery fixes and a live process cannot.
//   - checkpoint_age (check, durable registries, opt-in): the last
//     completed checkpoint is within CheckpointAgeBound.
//   - queue_budget (check, opt-out): no window's ingest queue is above
//     QueueBudget of its capacity — past it, producers are blocking and
//     a balancer should route elsewhere.
func buildHealth(reg *WindowRegistry, cfg ServerConfig) *telemetry.Health {
	h := telemetry.NewHealth()
	h.SetGate("recovery_complete", true)
	if reg.Persistent() {
		// Live state, not a sticky tally: the check fails while any window
		// is in the degraded durability state and passes again once the
		// self-heal loop re-arms the log and closes the gap — a balancer
		// sees degrade → heal without a restart.
		h.AddCheck("wal_writable", func() string {
			if deg := reg.DegradedWindows(); len(deg) > 0 {
				ps, _ := reg.PersistenceStats()
				return fmt.Sprintf("%d degraded window(s) [%s]: WAL appends failing, self-heal pending (last: %s)",
					len(deg), strings.Join(deg, ", "), ps.LastError)
			}
			return ""
		})
		if cfg.CheckpointAgeBound > 0 {
			bound := cfg.CheckpointAgeBound
			h.AddCheck("checkpoint_age", func() string {
				last, ok := reg.LastCheckpoint()
				if !ok {
					return ""
				}
				if age := time.Since(last); age > bound {
					return fmt.Sprintf("last checkpoint %s ago (bound %s)", age.Round(time.Millisecond), bound)
				}
				return ""
			})
		}
	}
	if cfg.QueueBudget >= 0 {
		budget := cfg.QueueBudget
		h.AddCheck("queue_budget", func() string {
			for _, name := range reg.Names() {
				svc, ok := reg.Get(name)
				if !ok {
					continue
				}
				// Budgeted windows flip readiness in the units admission
				// enforces — queued edges/bytes against the configured
				// budgets — so a queue of mega-batches cannot read healthy
				// while memory grows. Submission count over QueueCap is
				// only the fallback for unbudgeted windows.
				maxEdges, maxBytes := svc.QueueBudget()
				if maxEdges > 0 || maxBytes > 0 {
					if _, qEdges := svc.QueueDepth(); maxEdges > 0 && float64(qEdges) > budget*float64(maxEdges) {
						return fmt.Sprintf("window %q ingest queue at %d/%d edges (budget %.0f%%)",
							name, qEdges, maxEdges, budget*100)
					}
					if qBytes := svc.QueueBytes(); maxBytes > 0 && float64(qBytes) > budget*float64(maxBytes) {
						return fmt.Sprintf("window %q ingest queue at %d/%d bytes (budget %.0f%%)",
							name, qBytes, maxBytes, budget*100)
					}
					continue
				}
				batches, _ := svc.QueueDepth()
				if cap := svc.QueueCap(); cap > 0 && float64(batches) > budget*float64(cap) {
					return fmt.Sprintf("window %q ingest queue at %d/%d submissions (budget %.0f%%)",
						name, batches, cap, budget*100)
				}
			}
			return ""
		})
	}
	return h
}

// Health exposes the server's readiness probe set so embedders can add
// their own checks or flip gates (e.g. during a warm-up phase).
func (s *Server) Health() *telemetry.Health { return s.health }

// windowDegraded reports whether the named window is in the degraded
// durability state (always false on in-memory registries).
func (s *Server) windowDegraded(name string) bool {
	for _, d := range s.reg.DegradedWindows() {
		if d == name {
			return true
		}
	}
	return false
}

// Registry returns the registry the server routes over.
func (s *Server) Registry() *WindowRegistry { return s.reg }

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers a pattern with latency recording keyed by the pattern:
// the /stats recorder and (when telemetry is on) the per-route /metrics
// histogram see the same observation, plus the in-flight gauge.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	rec := s.stats.Recorder(pattern)
	hist := s.m.routeHist(pattern) // nil (no-op) when telemetry is off
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.m.httpInflight.Add(1)
		start := time.Now()
		fn(w, r)
		d := time.Since(start)
		s.m.httpInflight.Add(-1)
		rec.Observe(d)
		hist.Observe(d)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// queryErr maps query failures: missing monitor is a client configuration
// problem (404); a quarantined monitor is 503 with a machine-readable
// reason — the monitor's state is being rebuilt in the background and the
// query is retryable; anything else a bad request.
func queryErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNoMonitor) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if errors.Is(err, ErrMonitorQuarantined) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  err.Error(),
			"reason": "monitor_quarantined",
		})
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

// registryErr maps registry failures onto status codes.
func registryErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrWindowNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrWindowExists):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrTooManyWindows):
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrRegistryClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// windowName resolves the window a request addresses: the {name} path
// segment, or the default window on the legacy routes.
func (s *Server) windowName(r *http.Request) string {
	if name := r.PathValue("name"); name != "" {
		return name
	}
	return s.defaultWin
}

// service resolves the addressed window's pipeline, answering 404 (and
// returning nil) when it does not exist.
func (s *Server) service(w http.ResponseWriter, r *http.Request) *Service {
	name := s.windowName(r)
	svc, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrWindowNotFound, name))
		return nil
	}
	return svc
}

// decodeBody decodes exactly one JSON document from a size-capped request
// body into v: oversized bodies yield 413, malformed JSON or trailing
// garbage after the document yield 400. Returns false after writing the
// error response.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return false
	}
	// Exactly one document: anything but EOF after it is trailing garbage
	// (another value, or bytes that are not JSON at all).
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func (s *Server) handleCreateWindow(w http.ResponseWriter, r *http.Request) {
	var req createWindowRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	seqFanout := s.reg.Template().Window.SequentialFanout
	if req.SequentialFanout != nil {
		seqFanout = *req.SequentialFanout
	}
	syncAck := s.reg.Template().Window.SyncAck
	if req.SyncAck != nil {
		syncAck = *req.SyncAck
	}
	cfg := ServiceConfig{
		Window: WindowConfig{
			N:                req.N,
			Seed:             req.Seed,
			Monitors:         req.Monitors,
			Monitor:          MonitorConfig{Eps: req.Eps, MaxWeight: req.MaxWeight, K: req.K},
			MaxArrivals:      req.MaxArrivals,
			MaxAge:           time.Duration(req.MaxAgeMS) * time.Millisecond,
			SequentialFanout: seqFanout,
			SyncAck:          syncAck,
			ApplyParallelism: req.ApplyParallelism,
		},
		Ingest: IngesterConfig{
			MaxBatch:       req.MaxBatch,
			MaxDelay:       time.Duration(req.MaxDelayMS) * time.Millisecond,
			MaxQueueEdges:  req.MaxQueueEdges,
			MaxQueueBytes:  req.MaxQueueBytes,
			MaxEdgesPerSec: req.MaxEdgesPerSec,
			BurstEdges:     req.BurstEdges,
		},
	}
	svc, err := s.reg.Create(req.Name, cfg)
	if err != nil {
		registryErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":     req.Name,
		"n":        svc.Window().N(),
		"monitors": svc.Window().Monitors(),
	})
}

// handleCheckpoint persists expiry watermarks, writes any live-edge
// snapshots the threshold calls for, and prunes fully-expired WAL
// segments (plus superseded snapshots) on demand — the durable registry's
// manual GC trigger (a background ticker usually does this on a period).
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	st, err := s.reg.Checkpoint()
	if err != nil {
		if errors.Is(err, ErrNotPersistent) {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"windows":          st.Windows,
		"pruned_segments":  st.PrunedSegments,
		"snapshots":        st.Snapshots,
		"snapshot_edges":   st.SnapshotEdges,
		"pruned_snapshots": st.PrunedSnaps,
		"elapsed_ms":       float64(st.Elapsed) / 1e6,
	})
}

// handleFaultGet lists the injector's rule set with per-rule match/fire
// counters and the total trip count.
func (s *Server) handleFaultGet(w http.ResponseWriter, _ *http.Request) {
	inj := s.reg.FaultInjector()
	writeJSON(w, http.StatusOK, map[string]any{
		"rules": inj.Rules(),
		"trips": inj.Trips(),
	})
}

// handleFaultSet installs fault rules at runtime: a JSON object installs
// (or replaces, by ID) one rule; a JSON array replaces the whole rule set
// atomically — the shape swload's outage scheduler posts.
func (s *Server) handleFaultSet(w http.ResponseWriter, r *http.Request) {
	inj := s.reg.FaultInjector()
	data := s.readBody(w, r)
	if data == nil {
		return
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := inj.SetRulesJSON(trimmed); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rules": inj.Rules()})
		return
	}
	var rule fault.Rule
	if err := json.Unmarshal(data, &rule); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad fault rule: %w", err))
		return
	}
	id, err := inj.Set(rule)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleFaultDelete clears one rule (?id=) or, with no id, the whole set —
// the "end of outage" control.
func (s *Server) handleFaultDelete(w http.ResponseWriter, r *http.Request) {
	inj := s.reg.FaultInjector()
	if id := r.URL.Query().Get("id"); id != "" {
		if !inj.Clear(id) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no fault rule %q", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"cleared": id})
		return
	}
	inj.Reset()
	writeJSON(w, http.StatusOK, map[string]string{"cleared": "all"})
}

func (s *Server) handleListWindows(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"windows": s.reg.List(),
		"count":   s.reg.Len(),
		"shards":  s.reg.Shards(),
	})
}

func (s *Server) handleWindowInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	svc, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrWindowNotFound, name))
		return
	}
	edges, batches := svc.IngestStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":           name,
		"n":              svc.Window().N(),
		"monitors":       svc.Window().Monitors(),
		"window":         svc.Window().Stats(),
		"ingest_edges":   edges,
		"ingest_batches": batches,
	})
}

func (s *Server) handleDropWindow(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Drop(name); err != nil {
		registryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

// ndjsonRequest reports whether the ingest request uses the compact
// NDJSON format: ?format=ndjson, or an application/x-ndjson content type
// when no format parameter says otherwise.
func ndjsonRequest(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return f == "ndjson"
	}
	return strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson")
}

// ingestErr maps a Submit failure onto the ingest status contract:
// admission rejections are 429 with a Retry-After hint (whole seconds,
// rounded up — the header's unit) and machine-readable reason; a closed
// pipeline or an abandoned wait is 503; anything else — a WAL append or
// fsync failure under sync-ack — is 500, because the edges were accepted
// in memory but the durability promise failed.
func ingestErr(w http.ResponseWriter, err error) {
	var adm *AdmissionError
	if errors.As(err, &adm) {
		secs := (adm.RetryAfter + time.Second - 1) / time.Second
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":          adm.Error(),
			"reason":         adm.Reason,
			"retry_after_ms": adm.RetryAfter.Milliseconds(),
		})
		return
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	// A degraded window accepted the edges in memory but cannot currently
	// make them durable — 503 (retryable once the self-heal loop re-arms
	// the log), not a false 202 and not a 500: the server is not broken,
	// the durability promise is suspended and loudly flagged.
	if errors.Is(err, ErrWindowDegraded) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  err.Error(),
			"reason": "wal_degraded",
		})
		return
	}
	writeErr(w, http.StatusInternalServerError, fmt.Errorf("durability failure: %w", err))
}

// readBody reads the size-capped raw request body (the NDJSON path);
// oversized bodies get 413. Returns nil after writing the error response.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) []byte {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit))
			return nil
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return nil
	}
	return data
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	var batch []Edge
	if ndjsonRequest(r) {
		data := s.readBody(w, r)
		if data == nil {
			return
		}
		var err error
		if batch, err = parseNDJSON(data, nil); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var req edgesRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		batch = make([]Edge, 0, len(req.Edges))
		for i, e := range req.Edges {
			var t time.Time
			if e.T != "" {
				var err error
				t, err = time.Parse(time.RFC3339Nano, e.T)
				if err != nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("edge %d: bad time: %w", i, err))
					return
				}
			}
			batch = append(batch, Edge{U: e.U, V: e.V, W: e.W, T: t})
		}
	}
	if len(batch) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no edges in body"))
		return
	}
	n := int32(svc.Window().N())
	for i := range batch {
		if e := &batch[i]; e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("edge %d: vertex out of range [0, %d)", i, n))
			return
		} else if e.U == e.V {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("edge %d: self-loop", i))
			return
		}
	}
	// Ack mode: the window's SyncAck default, overridable per request with
	// ?sync=1 / ?sync=0. Sync means the 202 is written only after the
	// batch's WAL append + fsync completed — durable, not just queued.
	sync := svc.SyncAckDefault()
	if v := r.URL.Query().Get("sync"); v != "" {
		sync = v == "1" || v == "true"
	}
	var err error
	if sync {
		err = svc.submitOwnedDurable(r.Context(), batch)
	} else {
		err = svc.submitOwned(batch)
	}
	if err != nil {
		ingestErr(w, err)
		return
	}
	resp := map[string]any{"accepted": len(batch)}
	if sync {
		resp["durable"] = svc.Durable()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func vertexParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return int32(v), nil
}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	u, err := vertexParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	conn, err := svc.Window().IsConnected(u, v)
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "connected": conn})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	cc, err := svc.Window().NumComponents()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"components": cc})
}

func (s *Server) handleBipartite(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	b, err := svc.Window().IsBipartite()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"bipartite": b})
}

func (s *Server) handleMSFWeight(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	wt, err := svc.Window().MSFWeight()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"weight": wt})
}

func (s *Server) handleCycle(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	hc, err := svc.Window().HasCycle()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"cycle": hc})
}

func (s *Server) handleKCert(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	// One lock hold for both values: two separate queries could straddle
	// an apply and report a (size, connectivity) pair from two different
	// window states.
	size, conn, err := svc.Window().KCertInfo()
	if err != nil {
		queryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"size": size, "edge_connectivity_up_to_k": conn})
}

// handleSummary is the consistent multi-monitor read: every answer in the
// response corresponds to the same apply epoch (the same prefix of
// applied batches), via the window's seqlock retry — with per-monitor
// locking, issuing the individual queries separately could interleave
// with an in-flight fan-out.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	writeJSON(w, http.StatusOK, svc.Window().QuerySummary())
}

// windowStatsBody builds the per-window stats document shared by
// /windows/{name}/stats and the default-window section of /stats.
// degraded is the window's durability state (always false for in-memory
// registries — the caller resolves it against the persister).
func windowStatsBody(svc *Service, degraded bool) map[string]any {
	edges, batches := svc.IngestStats()
	win := svc.Window().Stats()
	qBatches, qEdges := svc.QueueDepth()
	ingest := map[string]any{
		"edges_accepted": edges,
		"batches":        batches,
		// Queue depth in three units: queued submissions are the
		// backpressure signal (the channel fills in submissions), queued
		// edges and bytes the magnitude signals admission budgets bound — a
		// thousand singleton submissions and one thousand-edge submission
		// are very different queues.
		"queue_batches": qBatches,
		"queue_edges":   qEdges,
		"queue_bytes":   svc.QueueBytes(),
		"queue_cap":     svc.QueueCap(),
	}
	if maxEdges, maxBytes := svc.QueueBudget(); maxEdges > 0 || maxBytes > 0 {
		ingest["queue_budget_edges"] = maxEdges
		ingest["queue_budget_bytes"] = maxBytes
	}
	if rejSubs, rejEdges := svc.RejectStats(); rejSubs > 0 {
		ingest["rejected_batches"] = rejSubs
		ingest["rejected_edges"] = rejEdges
	}
	if svc.SyncAckDefault() {
		ingest["sync_ack"] = true
	}
	if batches > 0 {
		ingest["mean_batch_size"] = float64(edges) / float64(batches)
	}
	body := map[string]any{
		"monitors": svc.Window().Monitors(),
		"window":   win,
		"ingest":   ingest,
	}
	// Health is per-window state, not process state: quarantined (a monitor
	// panicked during apply and is being rebuilt) outranks degraded (WAL
	// appends failing, self-heal pending), which outranks healthy.
	quar := svc.Window().Quarantined()
	state := "healthy"
	if degraded {
		state = "degraded"
	}
	if len(quar) > 0 {
		state = "quarantined"
	}
	health := map[string]any{"state": state, "wal_degraded": degraded}
	if len(quar) > 0 {
		qs := make([]map[string]any, 0, len(quar))
		for _, q := range quar {
			e := map[string]any{"monitor": q.Monitor, "reason": q.Reason, "at": q.At}
			if q.Permanent {
				e["permanent"] = true
				e["rebuild_error"] = q.RebuildErr
			}
			qs = append(qs, e)
		}
		health["quarantined"] = qs
	}
	body["health"] = health
	// The apply block replaces the old single mean_apply_ms: with
	// per-monitor locking the interesting production number is per
	// monitor — whose apply a query waits behind (mean_apply_ms) and how
	// hard readers push back on the writer (mean_wait_ms).
	apply := map[string]any{
		// Effective intra-monitor fork-join width (caller + auxiliaries;
		// 1 = sequential levels) — shared across windows in a registry.
		"parallelism": svc.Window().ApplyParallelism(),
	}
	if win.Batches > 0 {
		apply["mean_batch_ms"] = float64(win.ApplyNS) / float64(win.Batches) / 1e6
	}
	perMon := map[string]any{}
	for _, ms := range svc.Window().MonitorStats() {
		if ms.Ops == 0 {
			continue
		}
		perMon[ms.Name] = map[string]any{
			"ops":           ms.Ops,
			"mean_apply_ms": float64(ms.ApplyNS) / float64(ms.Ops) / 1e6,
			"mean_wait_ms":  float64(ms.WaitNS) / float64(ms.Ops) / 1e6,
			"p50_apply_ms":  float64(ms.ApplyP50NS) / 1e6,
			"p99_apply_ms":  float64(ms.ApplyP99NS) / 1e6,
			"max_apply_ms":  float64(ms.ApplyMaxNS) / 1e6,
			"p99_wait_ms":   float64(ms.WaitP99NS) / 1e6,
		}
	}
	if len(perMon) > 0 {
		apply["per_monitor"] = perMon
	}
	if len(apply) > 0 {
		body["apply"] = apply
	}
	return body
}

func (s *Server) handleWindowStats(w http.ResponseWriter, r *http.Request) {
	svc := s.service(w, r)
	if svc == nil {
		return
	}
	body := windowStatsBody(svc, s.windowDegraded(s.windowName(r)))
	body["name"] = s.windowName(r)
	writeJSON(w, http.StatusOK, body)
}

// handleStats serves the process-wide view: registry shape, per-endpoint
// latency, and — when the default window exists — its stats inline under
// the original keys, so single-window clients keep working untouched.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"registry": map[string]any{
			"windows": s.reg.Names(),
			"count":   s.reg.Len(),
			"shards":  s.reg.Shards(),
		},
		"endpoints": s.stats.Snapshot(),
	}
	if ps, ok := s.reg.PersistenceStats(); ok {
		resp["persistence"] = ps
	}
	if ex := s.m.Exemplars(); len(ex) > 0 {
		resp["exemplars"] = ex
	}
	if svc, ok := s.reg.Get(s.defaultWin); ok {
		for k, v := range windowStatsBody(svc, s.windowDegraded(s.defaultWin)) {
			resp[k] = v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
