package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/telemetry"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("stream: ingester closed")

// admitReason indexes the fixed admission-rejection label universe.
type admitReason uint8

const (
	admitEdges admitReason = iota // edge budget exceeded
	admitBytes                    // byte budget exceeded
	admitRate                     // per-window rate limit exceeded
	admitReasons
)

var admitReasonNames = [admitReasons]string{"edges", "bytes", "rate"}

// edgeMemBytes is the in-memory cost of one queued Edge — the unit of the
// byte budget. Queue bytes are edges × this, not wire bytes: the budget
// bounds resident memory, and a decoded Edge costs the same no matter how
// it arrived.
var edgeMemBytes = int64(unsafe.Sizeof(Edge{}))

// defaultRetryAfter is the Retry-After hint for budget rejections, where
// (unlike rate rejections) there is no token-bucket arithmetic to predict
// when capacity frees: one second is long enough to shed a synchronized
// retry stampede and short enough that a drained queue is not left idle.
const defaultRetryAfter = time.Second

// AdmissionError is returned by Submit when admission control rejects the
// batch before it touches the queue: the edge budget, the byte budget, or
// the rate limit said no. The HTTP layer maps it to 429 with a Retry-After
// header; nothing about the submission was accepted or retained.
type AdmissionError struct {
	// Reason is the rejection cause: "edges", "bytes", or "rate" — the
	// same universe as the sw_ingest_rejected_total{reason=} label.
	Reason string
	// RetryAfter hints when a retry could succeed. For rate rejections it
	// is computed from the token bucket; for budget rejections it is a
	// fixed backoff.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("stream: admission rejected (%s budget), retry after %s", e.Reason, e.RetryAfter)
}

// IngesterConfig tunes the batching pipeline; zero values select defaults.
type IngesterConfig struct {
	// MaxBatch is the batch size target and upper bound (default 512):
	// the pending buffer flushes in MaxBatch-sized batches as soon as it
	// holds that many edges, regardless of how producers grouped their
	// submissions. MaxBatch=1 degenerates to one-edge-per-batch
	// ingestion — the baseline cmd/swload's -compare mode measures
	// against.
	MaxBatch int
	// MaxDelay flushes the pending buffer this long after its first edge
	// arrived (default 5ms), bounding the batching latency on sparse
	// streams.
	MaxDelay time.Duration
	// QueueLen is the capacity of the producer channel in submissions
	// (default 8×MaxBatch). Producers block when it is full — natural
	// backpressure — unless an edge/byte budget rejects first.
	QueueLen int
	// MaxQueueEdges, when > 0, bounds the edges queued across all pending
	// submissions: a Submit that would push the total past the budget is
	// rejected with an AdmissionError instead of parking. This is the
	// admission bound a deployment should set — QueueLen counts
	// submissions, which says nothing about memory when batch sizes vary.
	MaxQueueEdges int64
	// MaxQueueBytes, when > 0, bounds the in-memory bytes of queued edges
	// (edges × sizeof(Edge)); same rejection semantics as MaxQueueEdges.
	MaxQueueBytes int64
	// MaxEdgesPerSec, when > 0, rate-limits admission with a token bucket
	// refilled at this rate; a submission that outruns it is rejected
	// with an AdmissionError whose RetryAfter says when the bucket will
	// cover it.
	MaxEdgesPerSec int
	// BurstEdges is the token-bucket capacity (default MaxEdgesPerSec):
	// the largest instantaneous burst admitted at the rate limit.
	BurstEdges int
	// Clock defaults to RealClock; tests inject FakeClock.
	Clock Clock
}

func (c *IngesterConfig) withDefaults() IngesterConfig {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 512
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 5 * time.Millisecond
	}
	if out.QueueLen <= 0 {
		out.QueueLen = 8 * out.MaxBatch
	}
	if out.BurstEdges <= 0 {
		out.BurstEdges = out.MaxEdgesPerSec
	}
	if out.Clock == nil {
		out.Clock = RealClock()
	}
	return out
}

// rateLimiter is a mutex-guarded token bucket over the injected Clock
// (FakeClock drives it deterministically in tests). take admits n edges or
// reports how long until the bucket could cover them — it never partially
// consumes on rejection.
type rateLimiter struct {
	mu     sync.Mutex
	clock  Clock
	rate   float64 // tokens (edges) per second
	burst  float64
	tokens float64
	last   time.Time
}

func newRateLimiter(clock Clock, perSec, burst int) *rateLimiter {
	return &rateLimiter{
		clock:  clock,
		rate:   float64(perSec),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   clock.Now(),
	}
}

func (rl *rateLimiter) take(n int64) time.Duration {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.clock.Now()
	if d := now.Sub(rl.last); d > 0 {
		rl.tokens += d.Seconds() * rl.rate
		if rl.tokens > rl.burst {
			rl.tokens = rl.burst
		}
	}
	rl.last = now
	need := float64(n)
	if rl.tokens >= need {
		rl.tokens -= need
		return 0
	}
	wait := time.Duration((need - rl.tokens) / rl.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return wait
}

// refund returns tokens taken by an admission that a later check (edge or
// byte budget) rolled back, so a budget rejection does not also burn rate.
func (rl *rateLimiter) refund(n int64) {
	rl.mu.Lock()
	rl.tokens += float64(n)
	if rl.tokens > rl.burst {
		rl.tokens = rl.burst
	}
	rl.mu.Unlock()
}

// submission is one producer enqueue: the edges plus the submit-time
// stamp, which the flush goroutine turns into the queue-wait stage of the
// batch lifecycle trace. The stamp reuses the Clock.Now() Submit already
// pays for event-time defaulting, so carrying it costs nothing. enqNS is
// the real wall clock (never the injected Clock — FakeClock time cannot
// be subtracted from the flight recorder's monotonic stage stamps),
// captured only when a flush hook wants it. admitNS is the admission-check
// time the submission paid before its enqueue. done, when non-nil, is the
// durable-ack channel: the flush goroutine delivers exactly one error (nil
// = the submission's edges are applied AND the WAL append+fsync completed)
// after the flush covering the submission's last edge.
type submission struct {
	edges   []Edge
	enq     time.Time
	enqNS   int64
	admitNS int64
	done    chan error
}

// submark says "pending edges below index upto arrived no later than
// enqNS". The flush goroutine keeps one mark per absorbed submission in a
// ring parallel to pending, so each flush knows the enqueue time of its
// oldest edge — the start of the batch's queue-wait span — without
// per-edge stamps. The mark also carries the submission's durable-ack
// channel (delivered when the flush covering upto completes) and err, a
// sticky failure recorded when an earlier flush touching this submission's
// edges failed.
type submark struct {
	upto    int
	enqNS   int64
	admitNS int64
	done    chan error
	err     error
}

// pendingAck is a durable ack ready for delivery after the current flush:
// the channel plus any error already pinned to it by an earlier partial
// flush.
type pendingAck struct {
	ch  chan error
	err error
}

// Ingester coalesces edges submitted by many concurrent producers into
// batches, flushing to its sink when either MaxBatch edges are pending or
// MaxDelay has elapsed since the first pending edge. A single background
// goroutine performs all flushes, so the sink never runs concurrently with
// itself — this is the single-writer half of the window discipline.
type Ingester struct {
	cfg IngesterConfig
	// sink applies one batch and reports whether it was durably recorded:
	// a non-nil error means the WAL append failed (or the window rejected
	// the batch) and is what durable acks deliver.
	sink func([]Edge) error
	// onFlush, when set, is called on the flush goroutine immediately
	// before each sink call with the enqueue wall time (unix ns) of the
	// batch's oldest edge — the flight recorder's queue-wait input — and
	// the admission time that edge's submission paid. 0 means unknown.
	onFlush func(enqNS, admitNS int64)
	m       *Metrics
	limiter *rateLimiter
	in      chan submission
	flushCh chan chan struct{}
	done    chan struct{}
	// abort unparks producers blocked on a full queue when Close begins,
	// bounding shutdown latency: a send parked in submit's select returns
	// ErrClosed instead of waiting out the backlog.
	abort chan struct{}
	// inflight counts producers between their closed-check and the
	// resolution of their channel send; Close waits it out before closing
	// done, so the shutdown drain sees every Submit that returned nil.
	inflight sync.WaitGroup
	wg       sync.WaitGroup
	closing  sync.Once

	// syncer, when set, escalates a flush to durable (wal.Log.Sync) before
	// durable acks are delivered; under fsync=batch the appends already
	// synced and the call is a cheap no-op. Stored as a pointer so the
	// persistence layer can attach it after construction.
	syncer atomic.Pointer[func() error]

	// closeMu serializes submissions against Close: a submitter holding
	// the read lock either observes closed and backs out, or registers in
	// inflight before Close (write lock) can mark the ingester closed —
	// so every Submit that returned nil is visible to run()'s shutdown
	// drain and can never be lost.
	closeMu sync.RWMutex
	closed  bool

	edges    atomic.Int64 // edges accepted
	flushes  atomic.Int64 // batches flushed
	rejected atomic.Int64 // submissions rejected by admission control
	rejEdges atomic.Int64 // edges inside rejected submissions

	// Queue depth in three units: submissions (channel occupancy, the
	// backpressure signal — a submission blocked on a full channel still
	// counts), the edges inside them, and their in-memory bytes (the
	// magnitude signals the admission budgets bound; a thousand one-edge
	// submissions and one thousand-edge submission are very different
	// queues). Incremented in Submit before the channel send, decremented
	// when the flush goroutine absorbs the submission (or the send is
	// abandoned on close/context cancel).
	qBatches atomic.Int64
	qEdges   atomic.Int64
	qBytes   atomic.Int64
}

// NewIngester starts an ingester flushing batches to sink. The sink is
// called from a single goroutine; the batch slice is only valid for the
// duration of the call and is recycled for the next flush once the sink
// returns — the sink must not retain it (WindowManager.Apply doesn't:
// the ring and every monitor copy what they keep). The sink's error is
// what durable acks report; sinks with nothing to report return nil.
func NewIngester(cfg IngesterConfig, sink func([]Edge) error) *Ingester {
	return newIngesterWith(cfg, sink, noMetrics, nil)
}

// newIngesterWith is NewIngester with a telemetry bundle and an optional
// pre-flush hook; the service wiring injects the registry's bundle and
// the window's queue-wait note through it. onFlush is a constructor
// parameter — not settable later — because run() starts reading it
// immediately.
func newIngesterWith(cfg IngesterConfig, sink func([]Edge) error, m *Metrics, onFlush func(enqNS, admitNS int64)) *Ingester {
	g := &Ingester{
		cfg:     cfg.withDefaults(),
		sink:    sink,
		onFlush: onFlush,
		m:       m.orNoop(),
		flushCh: make(chan chan struct{}),
		done:    make(chan struct{}),
		abort:   make(chan struct{}),
	}
	if g.cfg.MaxEdgesPerSec > 0 {
		g.limiter = newRateLimiter(g.cfg.Clock, g.cfg.MaxEdgesPerSec, g.cfg.BurstEdges)
	}
	g.in = make(chan submission, g.cfg.QueueLen)
	g.wg.Add(1)
	go g.run()
	return g
}

// setDurableSync attaches the durability escalator called before durable
// acks are delivered (the persistence layer wires wal.Log.Sync). Attach
// before accepting durable submissions.
func (g *Ingester) setDurableSync(fn func() error) {
	if fn != nil {
		g.syncer.Store(&fn)
	}
}

// durable reports whether a durability escalator is attached — whether a
// delivered ack means "fsynced" rather than just "applied".
func (g *Ingester) durable() bool { return g.syncer.Load() != nil }

// Submit enqueues one edge. It blocks when the queue is full and returns
// ErrClosed after Close.
func (g *Ingester) Submit(e Edge) error { return g.SubmitBatch([]Edge{e}) }

// SubmitBatch enqueues a group of edges (they still count individually
// toward MaxBatch). The slice is copied before it is enqueued, so the
// caller may reuse its buffer immediately.
func (g *Ingester) SubmitBatch(edges []Edge) error {
	return g.SubmitBatchContext(context.Background(), edges)
}

// SubmitBatchContext is SubmitBatch with a deadline: a submission parked
// on a full queue unparks with ctx.Err() when the context ends (nothing
// was accepted), instead of blocking indefinitely.
func (g *Ingester) SubmitBatchContext(ctx context.Context, edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	cp := make([]Edge, len(edges))
	copy(cp, edges)
	return g.submitOwnedCtx(ctx, cp, nil)
}

// submitOwned enqueues a slice the caller hands over (no copy); used by the
// HTTP layer, which builds a fresh batch per request anyway.
func (g *Ingester) submitOwned(edges []Edge) error {
	return g.submitOwnedCtx(context.Background(), edges, nil)
}

// submitOwnedDurable enqueues an owned slice and blocks until its batch is
// durably applied: the flush goroutine delivers the sink's error (nil =
// edges applied and WAL append+fsync complete) after the flush covering
// the submission's last edge. A ctx cancellation after admission returns
// ctx.Err() but the edges stay accepted — they were admitted and will be
// applied; only the caller stopped waiting for the receipt.
func (g *Ingester) submitOwnedDurable(ctx context.Context, edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	ack := make(chan error, 1)
	if err := g.submitOwnedCtx(ctx, edges, ack); err != nil {
		return err
	}
	select {
	case err := <-ack:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit charges the submission against the rate limit and the edge/byte
// budgets, in that order, rolling back earlier charges when a later check
// rejects. On success the queue gauges are charged; absorb (or unqueue,
// if the send is abandoned) settles them.
func (g *Ingester) admit(n, bytes int64) error {
	if g.limiter != nil {
		if wait := g.limiter.take(n); wait > 0 {
			return g.reject(admitRate, n, wait)
		}
	}
	if max := g.cfg.MaxQueueEdges; max > 0 {
		if g.qEdges.Add(n) > max {
			g.qEdges.Add(-n)
			if g.limiter != nil {
				g.limiter.refund(n)
			}
			return g.reject(admitEdges, n, defaultRetryAfter)
		}
	} else {
		g.qEdges.Add(n)
	}
	if max := g.cfg.MaxQueueBytes; max > 0 {
		if g.qBytes.Add(bytes) > max {
			g.qBytes.Add(-bytes)
			g.qEdges.Add(-n)
			if g.limiter != nil {
				g.limiter.refund(n)
			}
			return g.reject(admitBytes, n, defaultRetryAfter)
		}
	} else {
		g.qBytes.Add(bytes)
	}
	g.qBatches.Add(1)
	g.m.queueBatches.Add(1)
	g.m.queueEdges.Add(n)
	g.m.queueBytes.Add(bytes)
	return nil
}

func (g *Ingester) reject(r admitReason, n int64, retry time.Duration) error {
	g.rejected.Add(1)
	g.rejEdges.Add(n)
	g.m.rejectedBatches[r].Inc()
	g.m.rejectedEdges[r].Add(n)
	return &AdmissionError{Reason: admitReasonNames[r], RetryAfter: retry}
}

// unqueue rolls back admit's queue charges for a submission whose channel
// send was abandoned (close or context cancel) — the mirror of absorb's
// settlement.
func (g *Ingester) unqueue(n, bytes int64) {
	g.qBatches.Add(-1)
	g.qEdges.Add(-n)
	g.qBytes.Add(-bytes)
	g.m.queueBatches.Add(-1)
	g.m.queueEdges.Add(-n)
	g.m.queueBytes.Add(-bytes)
}

// submitOwnedCtx is the single admission + enqueue path. Zero event times
// are stamped here, at submit time, per the Edge.T contract. The closed
// check, admission, and inflight registration happen under closeMu.RLock,
// but the channel send does NOT: it parks in a select against abort (Close
// started — return ErrClosed) and ctx (caller gave up — return ctx.Err()),
// so a full queue can no longer hold the read lock against Close and
// shutdown latency stays bounded regardless of backlog.
func (g *Ingester) submitOwnedCtx(ctx context.Context, edges []Edge, ack chan error) error {
	if len(edges) == 0 {
		return nil
	}
	n := int64(len(edges))
	bytes := n * edgeMemBytes

	g.closeMu.RLock()
	if g.closed {
		g.closeMu.RUnlock()
		return ErrClosed
	}
	var admitStart int64
	if g.onFlush != nil {
		admitStart = time.Now().UnixNano()
	}
	if err := g.admit(n, bytes); err != nil {
		g.closeMu.RUnlock()
		return err
	}
	now := g.cfg.Clock.Now()
	for i := range edges {
		if edges[i].T.IsZero() {
			edges[i].T = now
		}
	}
	var enqNS, admitNS int64
	if admitStart != 0 {
		enqNS = time.Now().UnixNano()
		admitNS = enqNS - admitStart
	}
	g.inflight.Add(1)
	g.closeMu.RUnlock()

	select {
	case g.in <- submission{edges: edges, enq: now, enqNS: enqNS, admitNS: admitNS, done: ack}:
		g.inflight.Done()
		g.edges.Add(n)
		g.m.ingestEdges.Add(n)
		return nil
	case <-g.abort:
		g.inflight.Done()
		g.unqueue(n, bytes)
		return ErrClosed
	case <-ctx.Done():
		g.inflight.Done()
		g.unqueue(n, bytes)
		return ctx.Err()
	}
}

// Flush synchronously drains the queue and flushes the pending buffer. All
// edges whose Submit returned before Flush was called are in the sink by
// the time Flush returns. No-op after Close.
func (g *Ingester) Flush() {
	ack := make(chan struct{})
	select {
	case g.flushCh <- ack:
		<-ack
	case <-g.done:
		g.wg.Wait() // Close flushes everything before run() exits
	}
}

// Close stops accepting edges, flushes what has been accepted, and stops
// the background goroutine. Safe to call more than once. The handshake:
// mark closed (new submitters back out), close abort (parked submitters
// unpark with ErrClosed), wait out inflight (every accepted send is in the
// buffer), then close done (run() drains and exits). No Submit that
// returned nil can be lost, and no parked Submit can delay Close past the
// time run() needs to absorb the buffered queue.
func (g *Ingester) Close() {
	g.closing.Do(func() {
		g.closeMu.Lock()
		g.closed = true
		g.closeMu.Unlock()
		close(g.abort)
		g.inflight.Wait()
		close(g.done)
	})
	g.wg.Wait()
}

// Stats returns edges accepted and batches flushed so far.
func (g *Ingester) Stats() (edges, batches int64) {
	return g.edges.Load(), g.flushes.Load()
}

// RejectStats returns submissions and edges turned away by admission
// control since start.
func (g *Ingester) RejectStats() (subs, edges int64) {
	return g.rejected.Load(), g.rejEdges.Load()
}

// QueueDepth returns the current ingest queue depth in submissions and in
// edges (see the qBatches/qEdges comment for the exact semantics).
func (g *Ingester) QueueDepth() (batches, edges int64) {
	return g.qBatches.Load(), g.qEdges.Load()
}

// QueueBytes returns the in-memory bytes of queued edges.
func (g *Ingester) QueueBytes() int64 { return g.qBytes.Load() }

// QueueCap returns the submission-queue capacity. Budgeted deployments
// should read QueueBudget instead — submissions say nothing about memory.
func (g *Ingester) QueueCap() int { return g.cfg.QueueLen }

// QueueBudget returns the configured admission budgets (0 = unlimited) —
// the denominators for queue-utilization readiness checks.
func (g *Ingester) QueueBudget() (maxEdges, maxBytes int64) {
	return g.cfg.MaxQueueEdges, g.cfg.MaxQueueBytes
}

func (g *Ingester) run() {
	defer g.wg.Done()
	// pending accumulates submissions; head marks the already-flushed
	// prefix. flushBuf is the single reusable batch buffer handed to the
	// sink: the sink is synchronous and must not retain the slice, so one
	// buffer serves every flush. Copying out of pending (instead of the
	// old slice-and-cap handoff) is what lets BOTH buffers recycle —
	// steady state runs with zero allocations in the flush loop
	// (TestIngesterFlushAllocs pins this).
	var pending []Edge
	var head int
	var flushBuf []Edge
	var deadline <-chan time.Time
	// marks mirrors pending with one mark per absorbed submission that
	// needs tracking (mhead mirrors head); both reset together, so at
	// steady state the marks ring reuses its backing array — the flush
	// loop stays allocation-free with the hook installed.
	var marks []submark
	var mhead int
	// acks collects durable-ack channels completed by the current flush;
	// reused across flushes.
	var acks []pendingAck

	// Event times were stamped at submit; absorb accumulates and settles
	// the queue gauges. The queue-wait observation is gated on m.on()
	// because it costs an extra clock read per submission.
	absorb := func(sub submission) {
		pending = append(pending, sub.edges...)
		if g.onFlush != nil || sub.done != nil {
			marks = append(marks, submark{upto: len(pending), enqNS: sub.enqNS, admitNS: sub.admitNS, done: sub.done})
		}
		n := int64(len(sub.edges))
		g.qBatches.Add(-1)
		g.qEdges.Add(-n)
		g.qBytes.Add(-n * edgeMemBytes)
		g.m.queueBatches.Add(-1)
		g.m.queueEdges.Add(-n)
		g.m.queueBytes.Add(-n * edgeMemBytes)
		if g.m.on() {
			g.m.queueWait.Observe(g.cfg.Clock.Now().Sub(sub.enq))
		}
	}
	// flushHead emits the oldest k pending edges as one batch via the
	// reusable buffer, then resets the accumulator once it fully drains so
	// its backing array is reused instead of re-grown. reason attributes
	// the flush trigger (threshold, deadline, manual, shutdown). Durable
	// acks whose last edge is covered by this flush are delivered after
	// the sink (and the durability escalator) return.
	flushHead := func(k int, reason *telemetry.Counter) {
		var enqNS, admitNS int64
		if mhead < len(marks) {
			// The first live mark covers pending[head] — the oldest edge
			// of this flush.
			enqNS = marks[mhead].enqNS
			admitNS = marks[mhead].admitNS
		}
		flushBuf = append(flushBuf[:0], pending[head:head+k]...)
		head += k
		for mhead < len(marks) && marks[mhead].upto <= head {
			if marks[mhead].done != nil {
				acks = append(acks, pendingAck{ch: marks[mhead].done, err: marks[mhead].err})
				marks[mhead].done = nil
			}
			mhead++
		}
		if head == len(pending) {
			pending = pending[:0]
			head = 0
			marks = marks[:0]
			mhead = 0
		}
		g.flushes.Add(1)
		reason.Inc()
		g.m.flushEdges.ObserveVal(int64(k))
		if g.onFlush != nil {
			g.onFlush(enqNS, admitNS)
		}
		flushErr := g.sink(flushBuf)
		if flushErr != nil && mhead < len(marks) {
			// The first live mark may straddle this failed flush: part of
			// its submission was in the batch that failed. Pin the error so
			// its eventual ack reports the failure — conservatively, since
			// a mark starting exactly at head had nothing in this flush,
			// but a false negative on durability is the safe direction.
			marks[mhead].err = flushErr
		}
		if len(acks) > 0 {
			if flushErr == nil {
				if fn := g.syncer.Load(); fn != nil {
					flushErr = (*fn)()
				}
			}
			for i := range acks {
				e := acks[i].err
				if e == nil {
					e = flushErr
				}
				acks[i].ch <- e // buffered(1); never blocks
				acks[i].ch = nil
			}
			acks = acks[:0]
		}
	}
	pendingLen := func() int { return len(pending) - head }
	// flushFull emits MaxBatch-sized batches while the buffer is over the
	// threshold, then re-arms (or clears) the deadline for any remainder.
	flushFull := func() {
		for pendingLen() >= g.cfg.MaxBatch {
			flushHead(g.cfg.MaxBatch, g.m.flushThreshold)
		}
		if pendingLen() == 0 {
			deadline = nil
		} else if deadline == nil {
			deadline = g.cfg.Clock.After(g.cfg.MaxDelay)
		}
	}
	// flushAll empties the buffer entirely (deadline fired, manual flush,
	// or shutdown), still respecting the MaxBatch upper bound.
	flushAll := func(reason *telemetry.Counter) {
		for pendingLen() > 0 {
			k := g.cfg.MaxBatch
			if k > pendingLen() {
				k = pendingLen()
			}
			flushHead(k, reason)
		}
		deadline = nil
	}
	// drain empties the queue without blocking, then flushes everything.
	drain := func(reason *telemetry.Counter) {
		for {
			select {
			case sub := <-g.in:
				absorb(sub)
			default:
				flushAll(reason)
				return
			}
		}
	}

	for {
		select {
		case sub := <-g.in:
			absorb(sub)
			flushFull()
		case <-deadline:
			flushAll(g.m.flushDeadline)
		case ack := <-g.flushCh:
			drain(g.m.flushManual)
			close(ack)
		case <-g.done:
			drain(g.m.flushShutdown)
			return
		}
	}
}
