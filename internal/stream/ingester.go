package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("stream: ingester closed")

// IngesterConfig tunes the batching pipeline; zero values select defaults.
type IngesterConfig struct {
	// MaxBatch is the batch size target and upper bound (default 512):
	// the pending buffer flushes in MaxBatch-sized batches as soon as it
	// holds that many edges, regardless of how producers grouped their
	// submissions. MaxBatch=1 degenerates to one-edge-per-batch
	// ingestion — the baseline cmd/swload's -compare mode measures
	// against.
	MaxBatch int
	// MaxDelay flushes the pending buffer this long after its first edge
	// arrived (default 5ms), bounding the batching latency on sparse
	// streams.
	MaxDelay time.Duration
	// QueueLen is the capacity of the producer channel (default
	// 8×MaxBatch). Producers block when it is full — natural
	// backpressure.
	QueueLen int
	// Clock defaults to RealClock; tests inject FakeClock.
	Clock Clock
}

func (c *IngesterConfig) withDefaults() IngesterConfig {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 512
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 5 * time.Millisecond
	}
	if out.QueueLen <= 0 {
		out.QueueLen = 8 * out.MaxBatch
	}
	if out.Clock == nil {
		out.Clock = RealClock()
	}
	return out
}

// Ingester coalesces edges submitted by many concurrent producers into
// batches, flushing to its sink when either MaxBatch edges are pending or
// MaxDelay has elapsed since the first pending edge. A single background
// goroutine performs all flushes, so the sink never runs concurrently with
// itself — this is the single-writer half of the window discipline.
type Ingester struct {
	cfg     IngesterConfig
	sink    func([]Edge)
	in      chan []Edge
	flushCh chan chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	// closeMu serializes submissions against Close: a submitter holding
	// the read lock either observes closed and backs out, or completes
	// its channel send before Close (write lock) can mark the ingester
	// closed — so every Submit that returned nil is visible to run()'s
	// shutdown drain and can never be lost.
	closeMu sync.RWMutex
	closed  bool

	edges   atomic.Int64 // edges accepted
	flushes atomic.Int64 // batches flushed
}

// NewIngester starts an ingester flushing batches to sink. The sink is
// called from a single goroutine; the batch slice is only valid for the
// duration of the call and is recycled for the next flush once the sink
// returns — the sink must not retain it (WindowManager.Apply doesn't:
// the ring and every monitor copy what they keep).
func NewIngester(cfg IngesterConfig, sink func([]Edge)) *Ingester {
	g := &Ingester{
		cfg:     cfg.withDefaults(),
		sink:    sink,
		flushCh: make(chan chan struct{}),
		done:    make(chan struct{}),
	}
	g.in = make(chan []Edge, g.cfg.QueueLen)
	g.wg.Add(1)
	go g.run()
	return g
}

// Submit enqueues one edge. It blocks when the queue is full and returns
// ErrClosed after Close.
func (g *Ingester) Submit(e Edge) error { return g.SubmitBatch([]Edge{e}) }

// SubmitBatch enqueues a group of edges (they still count individually
// toward MaxBatch). The slice is copied before it is enqueued, so the
// caller may reuse its buffer immediately.
func (g *Ingester) SubmitBatch(edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	cp := make([]Edge, len(edges))
	copy(cp, edges)
	return g.submitOwned(cp)
}

// submitOwned enqueues a slice the caller hands over (no copy); used by the
// HTTP layer, which builds a fresh batch per request anyway. Zero event
// times are stamped here, at submit time, per the Edge.T contract.
func (g *Ingester) submitOwned(edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	g.closeMu.RLock()
	defer g.closeMu.RUnlock()
	if g.closed {
		return ErrClosed
	}
	now := g.cfg.Clock.Now()
	for i := range edges {
		if edges[i].T.IsZero() {
			edges[i].T = now
		}
	}
	// done cannot close while we hold the read lock, and run() keeps
	// consuming until done closes, so this send always completes (it may
	// block for backpressure when the queue is full).
	g.in <- edges
	g.edges.Add(int64(len(edges)))
	return nil
}

// Flush synchronously drains the queue and flushes the pending buffer. All
// edges whose Submit returned before Flush was called are in the sink by
// the time Flush returns. No-op after Close.
func (g *Ingester) Flush() {
	ack := make(chan struct{})
	select {
	case g.flushCh <- ack:
		<-ack
	case <-g.done:
		g.wg.Wait() // Close flushes everything before run() exits
	}
}

// Close stops accepting edges, flushes what has been accepted, and stops
// the background goroutine. Safe to call more than once. The closeMu
// handshake guarantees no Submit that returned nil can still be in flight
// when done closes, so run()'s shutdown drain sees every accepted edge.
func (g *Ingester) Close() {
	g.closing.Do(func() {
		g.closeMu.Lock()
		g.closed = true
		g.closeMu.Unlock()
		close(g.done)
	})
	g.wg.Wait()
}

// Stats returns edges accepted and batches flushed so far.
func (g *Ingester) Stats() (edges, batches int64) {
	return g.edges.Load(), g.flushes.Load()
}

func (g *Ingester) run() {
	defer g.wg.Done()
	// pending accumulates submissions; head marks the already-flushed
	// prefix. flushBuf is the single reusable batch buffer handed to the
	// sink: the sink is synchronous and must not retain the slice, so one
	// buffer serves every flush. Copying out of pending (instead of the
	// old slice-and-cap handoff) is what lets BOTH buffers recycle —
	// steady state runs with zero allocations in the flush loop
	// (TestIngesterFlushAllocs pins this).
	var pending []Edge
	var head int
	var flushBuf []Edge
	var deadline <-chan time.Time

	// Event times were stamped at submit; absorb just accumulates.
	absorb := func(es []Edge) { pending = append(pending, es...) }
	// flushHead emits the oldest k pending edges as one batch via the
	// reusable buffer, then resets the accumulator once it fully drains so
	// its backing array is reused instead of re-grown.
	flushHead := func(k int) {
		flushBuf = append(flushBuf[:0], pending[head:head+k]...)
		head += k
		if head == len(pending) {
			pending = pending[:0]
			head = 0
		}
		g.flushes.Add(1)
		g.sink(flushBuf)
	}
	pendingLen := func() int { return len(pending) - head }
	// flushFull emits MaxBatch-sized batches while the buffer is over the
	// threshold, then re-arms (or clears) the deadline for any remainder.
	flushFull := func() {
		for pendingLen() >= g.cfg.MaxBatch {
			flushHead(g.cfg.MaxBatch)
		}
		if pendingLen() == 0 {
			deadline = nil
		} else if deadline == nil {
			deadline = g.cfg.Clock.After(g.cfg.MaxDelay)
		}
	}
	// flushAll empties the buffer entirely (deadline fired, manual flush,
	// or shutdown), still respecting the MaxBatch upper bound.
	flushAll := func() {
		for pendingLen() > 0 {
			k := g.cfg.MaxBatch
			if k > pendingLen() {
				k = pendingLen()
			}
			flushHead(k)
		}
		deadline = nil
	}
	// drain empties the queue without blocking, then flushes everything.
	drain := func() {
		for {
			select {
			case es := <-g.in:
				absorb(es)
			default:
				flushAll()
				return
			}
		}
	}

	for {
		select {
		case es := <-g.in:
			absorb(es)
			flushFull()
		case <-deadline:
			flushAll()
		case ack := <-g.flushCh:
			drain()
			close(ack)
		case <-g.done:
			drain()
			return
		}
	}
}
