package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("stream: ingester closed")

// IngesterConfig tunes the batching pipeline; zero values select defaults.
type IngesterConfig struct {
	// MaxBatch is the batch size target and upper bound (default 512):
	// the pending buffer flushes in MaxBatch-sized batches as soon as it
	// holds that many edges, regardless of how producers grouped their
	// submissions. MaxBatch=1 degenerates to one-edge-per-batch
	// ingestion — the baseline cmd/swload's -compare mode measures
	// against.
	MaxBatch int
	// MaxDelay flushes the pending buffer this long after its first edge
	// arrived (default 5ms), bounding the batching latency on sparse
	// streams.
	MaxDelay time.Duration
	// QueueLen is the capacity of the producer channel (default
	// 8×MaxBatch). Producers block when it is full — natural
	// backpressure.
	QueueLen int
	// Clock defaults to RealClock; tests inject FakeClock.
	Clock Clock
}

func (c *IngesterConfig) withDefaults() IngesterConfig {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 512
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 5 * time.Millisecond
	}
	if out.QueueLen <= 0 {
		out.QueueLen = 8 * out.MaxBatch
	}
	if out.Clock == nil {
		out.Clock = RealClock()
	}
	return out
}

// submission is one producer enqueue: the edges plus the submit-time
// stamp, which the flush goroutine turns into the queue-wait stage of the
// batch lifecycle trace. The stamp reuses the Clock.Now() Submit already
// pays for event-time defaulting, so carrying it costs nothing. enqNS is
// the real wall clock (never the injected Clock — FakeClock time cannot
// be subtracted from the flight recorder's monotonic stage stamps),
// captured only when a flush hook wants it.
type submission struct {
	edges []Edge
	enq   time.Time
	enqNS int64
}

// enqMark says "pending edges below index upto arrived no later than
// enqNS". The flush goroutine keeps one mark per absorbed submission in a
// ring parallel to pending, so each flush knows the enqueue time of its
// oldest edge — the start of the batch's queue-wait span — without
// per-edge stamps.
type enqMark struct {
	upto  int
	enqNS int64
}

// Ingester coalesces edges submitted by many concurrent producers into
// batches, flushing to its sink when either MaxBatch edges are pending or
// MaxDelay has elapsed since the first pending edge. A single background
// goroutine performs all flushes, so the sink never runs concurrently with
// itself — this is the single-writer half of the window discipline.
type Ingester struct {
	cfg  IngesterConfig
	sink func([]Edge)
	// onFlush, when set, is called on the flush goroutine immediately
	// before each sink call with the enqueue wall time (unix ns) of the
	// batch's oldest edge — the flight recorder's queue-wait input. 0
	// means unknown.
	onFlush func(enqNS int64)
	m       *Metrics
	in      chan submission
	flushCh chan chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	// closeMu serializes submissions against Close: a submitter holding
	// the read lock either observes closed and backs out, or completes
	// its channel send before Close (write lock) can mark the ingester
	// closed — so every Submit that returned nil is visible to run()'s
	// shutdown drain and can never be lost.
	closeMu sync.RWMutex
	closed  bool

	edges   atomic.Int64 // edges accepted
	flushes atomic.Int64 // batches flushed

	// Queue depth in both units: submissions (channel occupancy, the
	// backpressure signal — a submission blocked on a full channel still
	// counts) and the edges inside them (the magnitude signal the
	// ingress-budget work needs; a thousand one-edge submissions and one
	// thousand-edge submission are very different queues). Incremented in
	// Submit before the channel send, decremented when the flush
	// goroutine absorbs the submission.
	qBatches atomic.Int64
	qEdges   atomic.Int64
}

// NewIngester starts an ingester flushing batches to sink. The sink is
// called from a single goroutine; the batch slice is only valid for the
// duration of the call and is recycled for the next flush once the sink
// returns — the sink must not retain it (WindowManager.Apply doesn't:
// the ring and every monitor copy what they keep).
func NewIngester(cfg IngesterConfig, sink func([]Edge)) *Ingester {
	return newIngesterWith(cfg, sink, noMetrics, nil)
}

// newIngesterWith is NewIngester with a telemetry bundle and an optional
// pre-flush hook; the service wiring injects the registry's bundle and
// the window's queue-wait note through it. onFlush is a constructor
// parameter — not settable later — because run() starts reading it
// immediately.
func newIngesterWith(cfg IngesterConfig, sink func([]Edge), m *Metrics, onFlush func(enqNS int64)) *Ingester {
	g := &Ingester{
		cfg:     cfg.withDefaults(),
		sink:    sink,
		onFlush: onFlush,
		m:       m.orNoop(),
		flushCh: make(chan chan struct{}),
		done:    make(chan struct{}),
	}
	g.in = make(chan submission, g.cfg.QueueLen)
	g.wg.Add(1)
	go g.run()
	return g
}

// Submit enqueues one edge. It blocks when the queue is full and returns
// ErrClosed after Close.
func (g *Ingester) Submit(e Edge) error { return g.SubmitBatch([]Edge{e}) }

// SubmitBatch enqueues a group of edges (they still count individually
// toward MaxBatch). The slice is copied before it is enqueued, so the
// caller may reuse its buffer immediately.
func (g *Ingester) SubmitBatch(edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	cp := make([]Edge, len(edges))
	copy(cp, edges)
	return g.submitOwned(cp)
}

// submitOwned enqueues a slice the caller hands over (no copy); used by the
// HTTP layer, which builds a fresh batch per request anyway. Zero event
// times are stamped here, at submit time, per the Edge.T contract.
func (g *Ingester) submitOwned(edges []Edge) error {
	if len(edges) == 0 {
		return nil
	}
	g.closeMu.RLock()
	defer g.closeMu.RUnlock()
	if g.closed {
		return ErrClosed
	}
	now := g.cfg.Clock.Now()
	for i := range edges {
		if edges[i].T.IsZero() {
			edges[i].T = now
		}
	}
	var enqNS int64
	if g.onFlush != nil {
		enqNS = time.Now().UnixNano()
	}
	n := int64(len(edges))
	g.qBatches.Add(1)
	g.qEdges.Add(n)
	g.m.queueBatches.Add(1)
	g.m.queueEdges.Add(n)
	// done cannot close while we hold the read lock, and run() keeps
	// consuming until done closes, so this send always completes (it may
	// block for backpressure when the queue is full).
	g.in <- submission{edges: edges, enq: now, enqNS: enqNS}
	g.edges.Add(n)
	g.m.ingestEdges.Add(n)
	return nil
}

// Flush synchronously drains the queue and flushes the pending buffer. All
// edges whose Submit returned before Flush was called are in the sink by
// the time Flush returns. No-op after Close.
func (g *Ingester) Flush() {
	ack := make(chan struct{})
	select {
	case g.flushCh <- ack:
		<-ack
	case <-g.done:
		g.wg.Wait() // Close flushes everything before run() exits
	}
}

// Close stops accepting edges, flushes what has been accepted, and stops
// the background goroutine. Safe to call more than once. The closeMu
// handshake guarantees no Submit that returned nil can still be in flight
// when done closes, so run()'s shutdown drain sees every accepted edge.
func (g *Ingester) Close() {
	g.closing.Do(func() {
		g.closeMu.Lock()
		g.closed = true
		g.closeMu.Unlock()
		close(g.done)
	})
	g.wg.Wait()
}

// Stats returns edges accepted and batches flushed so far.
func (g *Ingester) Stats() (edges, batches int64) {
	return g.edges.Load(), g.flushes.Load()
}

// QueueDepth returns the current ingest queue depth in submissions and in
// edges (see the qBatches/qEdges comment for the exact semantics).
func (g *Ingester) QueueDepth() (batches, edges int64) {
	return g.qBatches.Load(), g.qEdges.Load()
}

// QueueCap returns the submission-queue capacity — the denominator for
// queue-utilization budgets (readiness checks).
func (g *Ingester) QueueCap() int { return g.cfg.QueueLen }

func (g *Ingester) run() {
	defer g.wg.Done()
	// pending accumulates submissions; head marks the already-flushed
	// prefix. flushBuf is the single reusable batch buffer handed to the
	// sink: the sink is synchronous and must not retain the slice, so one
	// buffer serves every flush. Copying out of pending (instead of the
	// old slice-and-cap handoff) is what lets BOTH buffers recycle —
	// steady state runs with zero allocations in the flush loop
	// (TestIngesterFlushAllocs pins this).
	var pending []Edge
	var head int
	var flushBuf []Edge
	var deadline <-chan time.Time
	// marks mirrors pending with one enqueue stamp per absorbed
	// submission (mhead mirrors head); both reset together, so at steady
	// state the marks ring reuses its backing array — the flush loop
	// stays allocation-free with the hook installed.
	var marks []enqMark
	var mhead int

	// Event times were stamped at submit; absorb accumulates and settles
	// the queue gauges. The queue-wait observation is gated on m.on()
	// because it costs an extra clock read per submission.
	absorb := func(sub submission) {
		pending = append(pending, sub.edges...)
		if g.onFlush != nil {
			marks = append(marks, enqMark{upto: len(pending), enqNS: sub.enqNS})
		}
		n := int64(len(sub.edges))
		g.qBatches.Add(-1)
		g.qEdges.Add(-n)
		g.m.queueBatches.Add(-1)
		g.m.queueEdges.Add(-n)
		if g.m.on() {
			g.m.queueWait.Observe(g.cfg.Clock.Now().Sub(sub.enq))
		}
	}
	// flushHead emits the oldest k pending edges as one batch via the
	// reusable buffer, then resets the accumulator once it fully drains so
	// its backing array is reused instead of re-grown. reason attributes
	// the flush trigger (threshold, deadline, manual, shutdown).
	flushHead := func(k int, reason *telemetry.Counter) {
		var enqNS int64
		if g.onFlush != nil && mhead < len(marks) {
			// The first live mark covers pending[head] — the oldest edge
			// of this flush.
			enqNS = marks[mhead].enqNS
		}
		flushBuf = append(flushBuf[:0], pending[head:head+k]...)
		head += k
		for mhead < len(marks) && marks[mhead].upto <= head {
			mhead++
		}
		if head == len(pending) {
			pending = pending[:0]
			head = 0
			marks = marks[:0]
			mhead = 0
		}
		g.flushes.Add(1)
		reason.Inc()
		g.m.flushEdges.ObserveVal(int64(k))
		if g.onFlush != nil {
			g.onFlush(enqNS)
		}
		g.sink(flushBuf)
	}
	pendingLen := func() int { return len(pending) - head }
	// flushFull emits MaxBatch-sized batches while the buffer is over the
	// threshold, then re-arms (or clears) the deadline for any remainder.
	flushFull := func() {
		for pendingLen() >= g.cfg.MaxBatch {
			flushHead(g.cfg.MaxBatch, g.m.flushThreshold)
		}
		if pendingLen() == 0 {
			deadline = nil
		} else if deadline == nil {
			deadline = g.cfg.Clock.After(g.cfg.MaxDelay)
		}
	}
	// flushAll empties the buffer entirely (deadline fired, manual flush,
	// or shutdown), still respecting the MaxBatch upper bound.
	flushAll := func(reason *telemetry.Counter) {
		for pendingLen() > 0 {
			k := g.cfg.MaxBatch
			if k > pendingLen() {
				k = pendingLen()
			}
			flushHead(k, reason)
		}
		deadline = nil
	}
	// drain empties the queue without blocking, then flushes everything.
	drain := func(reason *telemetry.Counter) {
		for {
			select {
			case sub := <-g.in:
				absorb(sub)
			default:
				flushAll(reason)
				return
			}
		}
	}

	for {
		select {
		case sub := <-g.in:
			absorb(sub)
			flushFull()
		case <-deadline:
			flushAll(g.m.flushDeadline)
		case ack := <-g.flushCh:
			drain(g.m.flushManual)
			close(ack)
		case <-g.done:
			drain(g.m.flushShutdown)
			return
		}
	}
}
