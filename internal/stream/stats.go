package stream

import (
	"math/bits"
	"sync"
	"time"
)

// LatencyRecorder is a fixed-size log₂-bucket latency histogram: cheap
// enough for per-request recording, and accurate to a factor of 2 on
// quantiles, which is plenty for p50/p99 service dashboards.
type LatencyRecorder struct {
	mu      sync.Mutex
	count   int64
	totalNS int64
	maxNS   int64
	buckets [64]int64 // bucket i holds durations with bits.Len64(ns) == i
}

// LatencySnapshot is a point-in-time summary of a LatencyRecorder.
type LatencySnapshot struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Observe records one duration.
func (r *LatencyRecorder) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	r.mu.Lock()
	r.count++
	r.totalNS += ns
	if ns > r.maxNS {
		r.maxNS = ns
	}
	r.buckets[i]++
	r.mu.Unlock()
}

// Snapshot summarizes the histogram so far.
func (r *LatencyRecorder) Snapshot() LatencySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := LatencySnapshot{Count: r.count, Max: time.Duration(r.maxNS)}
	if r.count == 0 {
		return s
	}
	s.Mean = time.Duration(r.totalNS / r.count)
	s.P50 = r.quantileLocked(0.50)
	s.P99 = r.quantileLocked(0.99)
	return s
}

// quantileLocked returns the upper bound of the bucket where the cumulative
// count crosses q (so quantiles are overestimates by at most 2x).
func (r *LatencyRecorder) quantileLocked(q float64) time.Duration {
	target := int64(q * float64(r.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range r.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<uint(i) - 1
			if upper > r.maxNS {
				upper = r.maxNS
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(r.maxNS)
}

// EndpointStats tracks per-endpoint request counts and latency.
type EndpointStats struct {
	mu   sync.Mutex
	recs map[string]*LatencyRecorder
}

// NewEndpointStats returns an empty per-endpoint stats table.
func NewEndpointStats() *EndpointStats {
	return &EndpointStats{recs: make(map[string]*LatencyRecorder)}
}

// Recorder returns (creating on first use) the recorder for an endpoint.
func (s *EndpointStats) Recorder(endpoint string) *LatencyRecorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[endpoint]
	if !ok {
		r = &LatencyRecorder{}
		s.recs[endpoint] = r
	}
	return r
}

// Snapshot summarizes every endpoint.
func (s *EndpointStats) Snapshot() map[string]LatencySnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.recs))
	recs := make([]*LatencyRecorder, 0, len(s.recs))
	for name, r := range s.recs {
		names = append(names, name)
		recs = append(recs, r)
	}
	s.mu.Unlock()
	out := make(map[string]LatencySnapshot, len(names))
	for i, name := range names {
		out[name] = recs[i].Snapshot()
	}
	return out
}
