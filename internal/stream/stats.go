package stream

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// LatencyRecorder is a fixed-size log₂-bucket latency histogram: cheap
// enough for per-request recording, and accurate to a factor of 2 on
// quantiles, which is plenty for p50/p99 service dashboards. It is a thin
// wrapper over telemetry.Histogram, so the /stats JSON quantiles and the
// /metrics exposition are computed from the same buckets — the two
// surfaces can never disagree about what was measured. The zero value is
// ready to use, and Observe is lock-free (three atomic adds).
type LatencyRecorder struct {
	h telemetry.Histogram
}

// LatencySnapshot is a point-in-time summary of a LatencyRecorder.
type LatencySnapshot struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Observe records one duration.
func (r *LatencyRecorder) Observe(d time.Duration) {
	r.h.Observe(d)
}

// Snapshot summarizes the histogram so far. Quantiles are bucket upper
// bounds clamped to the observed max (overestimates by at most 2x).
func (r *LatencyRecorder) Snapshot() LatencySnapshot {
	s := r.h.Snapshot()
	return LatencySnapshot{
		Count: s.Count,
		Mean:  time.Duration(s.Mean),
		P50:   time.Duration(s.P50),
		P99:   time.Duration(s.P99),
		Max:   time.Duration(s.Max),
	}
}

// EndpointStats tracks per-endpoint request counts and latency.
type EndpointStats struct {
	mu   sync.Mutex
	recs map[string]*LatencyRecorder
}

// NewEndpointStats returns an empty per-endpoint stats table.
func NewEndpointStats() *EndpointStats {
	return &EndpointStats{recs: make(map[string]*LatencyRecorder)}
}

// Recorder returns (creating on first use) the recorder for an endpoint.
func (s *EndpointStats) Recorder(endpoint string) *LatencyRecorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[endpoint]
	if !ok {
		r = &LatencyRecorder{}
		s.recs[endpoint] = r
	}
	return r
}

// Snapshot summarizes every endpoint.
func (s *EndpointStats) Snapshot() map[string]LatencySnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.recs))
	recs := make([]*LatencyRecorder, 0, len(s.recs))
	for name, r := range s.recs {
		names = append(names, name)
		recs = append(recs, r)
	}
	s.mu.Unlock()
	out := make(map[string]LatencySnapshot, len(names))
	for i, name := range names {
		out[name] = recs[i].Snapshot()
	}
	return out
}
