package stream

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchIngest drives the full pipeline — Submit → flush goroutine →
// staging → monitor fan-out — with telemetry either wired or no-op'd and
// the flight recorder either attached or absent. BENCH.md's overhead
// guards compare the variants: the instrumented hot path must stay within
// 3% of the no-op recorder, and the flight recorder must add nothing
// measurable on top of full telemetry.
func benchIngest(b *testing.B, m *Metrics, rec *trace.Recorder) {
	cfg := ServiceConfig{
		Window:    WindowConfig{N: 1 << 12, MaxArrivals: 1 << 15},
		Ingest:    IngesterConfig{MaxBatch: 512, QueueLen: 1 << 14},
		Telemetry: m,
	}
	cfg.flight = rec
	svc, err := NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	const batch = 64
	edges := make([]Edge, batch)
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range edges {
			rng = rng*6364136223846793005 + 1442695040888963407
			u := int32(rng>>40) & (1<<12 - 1)
			v := int32(rng>>20) & (1<<12 - 1)
			if u == v {
				v = (v + 1) & (1<<12 - 1)
			}
			edges[j] = Edge{U: u, V: v}
		}
		if err := svc.Submit(edges); err != nil {
			b.Fatal(err)
		}
	}
	svc.Flush()
	b.StopTimer()
}

func BenchmarkIngestTelemetryOff(b *testing.B) { benchIngest(b, nil, nil) }

func BenchmarkIngestTelemetryOn(b *testing.B) {
	benchIngest(b, NewMetrics(telemetry.NewRegistry()), nil)
}

// BenchmarkIngestFlightOn is S10's guard: full telemetry plus the batch
// flight recorder, the production default. Compare against
// BenchmarkIngestTelemetryOn at fixed iterations (-benchtime 20000x).
func BenchmarkIngestFlightOn(b *testing.B) {
	benchIngest(b, NewMetrics(telemetry.NewRegistry()), trace.New(trace.Options{}))
}
