package stream

import (
	"testing"

	"repro/internal/telemetry"
)

// benchIngest drives the full pipeline — Submit → flush goroutine →
// staging → monitor fan-out — with telemetry either wired or no-op'd.
// BENCH.md's telemetry-overhead guard compares the two: the instrumented
// hot path must stay within 3% of the no-op recorder.
func benchIngest(b *testing.B, m *Metrics) {
	svc, err := NewService(ServiceConfig{
		Window:    WindowConfig{N: 1 << 12, MaxArrivals: 1 << 15},
		Ingest:    IngesterConfig{MaxBatch: 512, QueueLen: 1 << 14},
		Telemetry: m,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	const batch = 64
	edges := make([]Edge, batch)
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range edges {
			rng = rng*6364136223846793005 + 1442695040888963407
			u := int32(rng>>40) & (1<<12 - 1)
			v := int32(rng>>20) & (1<<12 - 1)
			if u == v {
				v = (v + 1) & (1<<12 - 1)
			}
			edges[j] = Edge{U: u, V: v}
		}
		if err := svc.Submit(edges); err != nil {
			b.Fatal(err)
		}
	}
	svc.Flush()
	b.StopTimer()
}

func BenchmarkIngestTelemetryOff(b *testing.B) { benchIngest(b, nil) }

func BenchmarkIngestTelemetryOn(b *testing.B) {
	benchIngest(b, NewMetrics(telemetry.NewRegistry()))
}
