package stream

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newFlightService boots a registry-created service (flight recorder always
// on), pushes one batch through the real ingest path, and returns the pieces
// the flight tests poke at.
func newFlightService(t *testing.T, cfg RegistryConfig) (*WindowRegistry, *Service) {
	t.Helper()
	if cfg.Template.Window.N == 0 {
		cfg.Template.Window.N = 256
	}
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	svc, err := reg.Create("flight", ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit([]Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	return reg, svc
}

// TestFlightRecorderAllocs pins the always-on recorder's hot paths: batch
// trace assembly + ring commit must not allocate (the span tree lives in a
// writer-owned scratch and one preallocated ring slot), and a traced query
// must not allocate beyond the untraced baseline.
func TestFlightRecorderAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	_, svc := newFlightService(t, RegistryConfig{})
	w := svc.Window()
	ft := w.flight
	if ft == nil || w.qflight == nil {
		t.Fatal("flight rings not attached by the registry")
	}

	// Batch path: the exact call Apply makes after fan-out, with the
	// last-timing table populated by the warm-up batch.
	stageStart := time.Now()
	applyStart := stageStart.Add(time.Millisecond)
	allocs := testing.AllocsPerRun(500, func() {
		w.commitBatchTrace(ft, 500, 1000, 2000, 3000, 9, false, 0, 0, 0,
			applyStart, stageStart, 3, 0)
	})
	if allocs != 0 {
		t.Errorf("commitBatchTrace = %.1f allocs/op, want 0", allocs)
	}

	// Query path: the whole traced read, lock-wait measurement included.
	qallocs := testing.AllocsPerRun(500, func() {
		if _, err := w.IsConnected(1, 2); err != nil {
			t.Fatal(err)
		}
	})
	if qallocs != 0 {
		t.Errorf("traced IsConnected = %.1f allocs/op, want 0", qallocs)
	}
}

// TestFlightRecorderConcurrent hammers the recorder from every direction at
// once — producers applying batches, readers issuing traced queries, and
// scrapers snapshotting Traces and resolving Lookups — and is meaningful
// chiefly under -race: the per-slot locking must keep committed traces
// internally consistent while the ring wraps.
func TestFlightRecorderConcurrent(t *testing.T) {
	reg, svc := newFlightService(t, RegistryConfig{
		Flight: trace.Options{RingSlots: 8, QuerySlots: 8},
	})
	w := svc.Window()
	rec := reg.Flight()

	const goroutines, iters = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				base := int32((g*iters + i) % 250)
				if err := svc.Submit([]Edge{{U: base, V: base + 1}}); err != nil {
					t.Error(err)
					return
				}
				svc.Flush()
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := w.IsConnected(1, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, v := range rec.Traces(trace.Filter{}) {
					if v.TotalMS < 0 {
						t.Errorf("trace %s has negative total_ms", v.TraceID)
						return
					}
					if id, ok := trace.ParseID(v.TraceID); ok {
						rec.Lookup(id)
					}
				}
			}
		}()
	}
	wg.Wait()

	views := rec.Traces(trace.Filter{Kind: "batch"})
	if len(views) == 0 {
		t.Fatal("no batch traces survived the hammering")
	}
	for _, v := range views {
		if len(v.Spans) == 0 {
			t.Errorf("batch trace %s committed with an empty span tree", v.TraceID)
		}
	}
	if qs := rec.Traces(trace.Filter{Kind: "query"}); len(qs) == 0 {
		t.Fatal("no query traces survived the hammering")
	}
}

// TestExemplarLinksToTrace closes the exemplar loop: after a traced batch,
// the batch histogram's max exemplar must carry a trace ID the recorder can
// resolve to a full span tree — the property /metrics advertises.
func TestExemplarLinksToTrace(t *testing.T) {
	reg, _ := newFlightService(t, RegistryConfig{Telemetry: telemetry.NewRegistry()})

	ex := reg.Metrics().batchSeconds.MaxExemplar()
	if ex.TraceID == 0 {
		t.Fatal("sw_apply_batch_seconds max exemplar carries no trace ID")
	}
	v, ok := reg.Flight().Lookup(ex.TraceID)
	if !ok {
		t.Fatalf("exemplar trace %s not resolvable in the recorder", trace.FormatID(ex.TraceID))
	}
	if v.Kind != "batch" {
		t.Errorf("exemplar resolved to kind %q, want batch", v.Kind)
	}
	if len(v.Spans) == 0 {
		t.Error("exemplar's trace has an empty span tree")
	}
	if v.TraceID != trace.FormatID(ex.TraceID) {
		t.Errorf("lookup returned trace %s, want %s", v.TraceID, trace.FormatID(ex.TraceID))
	}

	// The /stats view renders the same link.
	found := false
	for _, e := range reg.Metrics().Exemplars() {
		if e.Family == "sw_apply_batch_seconds" {
			found = true
			if e.TraceID != trace.FormatID(ex.TraceID) {
				t.Errorf("Exemplars() trace = %s, want %s", e.TraceID, trace.FormatID(ex.TraceID))
			}
		}
	}
	if !found {
		t.Error("Exemplars() view missing sw_apply_batch_seconds")
	}
}
