package stream

import (
	"fmt"

	"repro/internal/sw"
)

// MonitorConfig carries the per-monitor tuning knobs.
type MonitorConfig struct {
	// Eps is the msfweight approximation parameter (default 0.25).
	Eps float64
	// MaxWeight is the msfweight weight ceiling (default 1<<20); edge
	// weights above it are clamped.
	MaxWeight int64
	// K is the kcert certificate order (default 2).
	K int
}

func (c *MonitorConfig) withDefaults() MonitorConfig {
	out := *c
	if out.Eps <= 0 {
		out.Eps = 0.25
	}
	if out.MaxWeight < 1 {
		out.MaxWeight = 1 << 20
	}
	if out.K < 1 {
		out.K = 2
	}
	return out
}

// newMonitor builds the named monitor over n vertices. Each monitor derives
// its own seed so window instances stay independent.
func newMonitor(name string, n int, cfg MonitorConfig, seed uint64) (Monitor, error) {
	switch name {
	case MonitorConn:
		return &connMonitor{c: sw.NewConnEager(n, seed)}, nil
	case MonitorBipartite:
		return &bipartiteMonitor{b: sw.NewBipartite(n, seed)}, nil
	case MonitorMSFWeight:
		return &msfWeightMonitor{
			a:    sw.NewApproxMSF(n, cfg.Eps, cfg.MaxWeight, seed),
			maxW: cfg.MaxWeight,
		}, nil
	case MonitorKCert:
		return &kcertMonitor{k: sw.NewKCert(n, cfg.K, seed)}, nil
	case MonitorCycleFree:
		return &cycleFreeMonitor{c: sw.NewCycleFree(n, seed)}, nil
	default:
		return nil, fmt.Errorf("stream: unknown monitor %q", name)
	}
}

func toStreamEdges(edges []Edge) []sw.StreamEdge {
	out := make([]sw.StreamEdge, len(edges))
	for i, e := range edges {
		out[i] = sw.StreamEdge{U: e.U, V: e.V}
	}
	return out
}

// connMonitor wraps eager sliding-window connectivity (Theorem 5.2).
type connMonitor struct{ c *sw.ConnEager }

func (m *connMonitor) Name() string             { return MonitorConn }
func (m *connMonitor) BatchInsert(edges []Edge) { m.c.BatchInsert(toStreamEdges(edges)) }
func (m *connMonitor) BatchExpire(delta int)    { m.c.BatchExpire(delta) }

// bipartiteMonitor wraps sliding-window bipartiteness (Theorem 5.3).
type bipartiteMonitor struct{ b *sw.Bipartite }

func (m *bipartiteMonitor) Name() string             { return MonitorBipartite }
func (m *bipartiteMonitor) BatchInsert(edges []Edge) { m.b.BatchInsert(toStreamEdges(edges)) }
func (m *bipartiteMonitor) BatchExpire(delta int)    { m.b.BatchExpire(delta) }

// msfWeightMonitor wraps the (1+ε)-approximate MSF weight structure
// (Theorem 5.4). Weights are clamped into [1, MaxWeight] so arbitrary
// client input cannot panic the structure.
type msfWeightMonitor struct {
	a    *sw.ApproxMSF
	maxW int64
}

func (m *msfWeightMonitor) Name() string { return MonitorMSFWeight }

func (m *msfWeightMonitor) BatchInsert(edges []Edge) {
	batch := make([]sw.WeightedStreamEdge, len(edges))
	for i, e := range edges {
		w := e.W
		if w < 1 {
			w = 1
		} else if w > m.maxW {
			w = m.maxW
		}
		batch[i] = sw.WeightedStreamEdge{U: e.U, V: e.V, W: w}
	}
	m.a.BatchInsert(batch)
}

func (m *msfWeightMonitor) BatchExpire(delta int) { m.a.BatchExpire(delta) }

// kcertMonitor wraps the sliding-window k-certificate (Theorem 5.5).
type kcertMonitor struct{ k *sw.KCert }

func (m *kcertMonitor) Name() string             { return MonitorKCert }
func (m *kcertMonitor) BatchInsert(edges []Edge) { m.k.BatchInsert(toStreamEdges(edges)) }
func (m *kcertMonitor) BatchExpire(delta int)    { m.k.BatchExpire(delta) }

// cycleFreeMonitor wraps sliding-window cycle detection (Theorem 5.6).
type cycleFreeMonitor struct{ c *sw.CycleFree }

func (m *cycleFreeMonitor) Name() string             { return MonitorCycleFree }
func (m *cycleFreeMonitor) BatchInsert(edges []Edge) { m.c.BatchInsert(toStreamEdges(edges)) }
func (m *cycleFreeMonitor) BatchExpire(delta int)    { m.c.BatchExpire(delta) }
