package stream

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/sw"
)

// MonitorConfig carries the per-monitor tuning knobs.
type MonitorConfig struct {
	// Eps is the msfweight approximation parameter (default 0.25).
	Eps float64
	// MaxWeight is the msfweight weight ceiling (default 1<<20); edge
	// weights above it are clamped.
	MaxWeight int64
	// K is the kcert certificate order (default 2).
	K int
}

func (c *MonitorConfig) withDefaults() MonitorConfig {
	out := *c
	if out.Eps <= 0 {
		out.Eps = 0.25
	}
	if out.MaxWeight < 1 {
		out.MaxWeight = 1 << 20
	}
	if out.K < 1 {
		out.K = 2
	}
	return out
}

// newMonitor builds the named monitor over n vertices. Each monitor derives
// its own seed so window instances stay independent.
//
// Every monitor adapter below carries its own conversion scratch buffer,
// reused across batches. That is sound under the same single-writer
// contract the internal/sw structures assert: BatchInsert runs under the
// monitor's write lock with exactly one writer in the pipeline, and the
// sw structures convert the slice into their own representation before
// returning, retaining nothing.
func newMonitor(name string, n int, cfg MonitorConfig, seed uint64, workers *parallel.Limiter) (Monitor, error) {
	switch name {
	case MonitorConn:
		return &connMonitor{c: sw.NewConnEager(n, seed)}, nil
	case MonitorBipartite:
		return &bipartiteMonitor{b: sw.NewBipartite(n, seed)}, nil
	case MonitorMSFWeight:
		a := sw.NewApproxMSF(n, cfg.Eps, cfg.MaxWeight, seed)
		// The level fork-join borrows from the window's (or registry's)
		// shared budget, so nested parallelism — monitor fan-out × level
		// fan-out × N windows — stays bounded by one configured number.
		a.SetWorkers(workers)
		return &msfWeightMonitor{a: a, maxW: cfg.MaxWeight}, nil
	case MonitorKCert:
		return &kcertMonitor{k: sw.NewKCert(n, cfg.K, seed)}, nil
	case MonitorCycleFree:
		return &cycleFreeMonitor{c: sw.NewCycleFree(n, seed)}, nil
	default:
		return nil, fmt.Errorf("stream: unknown monitor %q", name)
	}
}

// appendStreamEdges converts a batch into buf (reused across calls).
func appendStreamEdges(buf []sw.StreamEdge, edges []Edge) []sw.StreamEdge {
	for _, e := range edges {
		buf = append(buf, sw.StreamEdge{U: e.U, V: e.V})
	}
	return buf
}

// connMonitor wraps eager sliding-window connectivity (Theorem 5.2).
type connMonitor struct {
	c       *sw.ConnEager
	scratch []sw.StreamEdge
}

func (m *connMonitor) Name() string { return MonitorConn }
func (m *connMonitor) BatchInsert(edges []Edge) {
	m.scratch = appendStreamEdges(m.scratch[:0], edges)
	m.c.BatchInsert(m.scratch)
}
func (m *connMonitor) BatchExpire(delta int) { m.c.BatchExpire(delta) }

// bipartiteMonitor wraps sliding-window bipartiteness (Theorem 5.3).
type bipartiteMonitor struct {
	b       *sw.Bipartite
	scratch []sw.StreamEdge
}

func (m *bipartiteMonitor) Name() string { return MonitorBipartite }
func (m *bipartiteMonitor) BatchInsert(edges []Edge) {
	m.scratch = appendStreamEdges(m.scratch[:0], edges)
	m.b.BatchInsert(m.scratch)
}
func (m *bipartiteMonitor) BatchExpire(delta int) { m.b.BatchExpire(delta) }

// msfWeightMonitor wraps the (1+ε)-approximate MSF weight structure
// (Theorem 5.4). Weights are clamped into [1, MaxWeight] so arbitrary
// client input cannot panic the structure.
type msfWeightMonitor struct {
	a       *sw.ApproxMSF
	maxW    int64
	scratch []sw.WeightedStreamEdge
}

func (m *msfWeightMonitor) Name() string { return MonitorMSFWeight }

func (m *msfWeightMonitor) BatchInsert(edges []Edge) {
	batch := m.scratch[:0]
	for _, e := range edges {
		w := e.W
		if w < 1 {
			w = 1
		} else if w > m.maxW {
			w = m.maxW
		}
		batch = append(batch, sw.WeightedStreamEdge{U: e.U, V: e.V, W: w})
	}
	m.scratch = batch
	m.a.BatchInsert(batch)
}

func (m *msfWeightMonitor) BatchExpire(delta int) { m.a.BatchExpire(delta) }

// kcertMonitor wraps the sliding-window k-certificate (Theorem 5.5).
type kcertMonitor struct {
	k       *sw.KCert
	scratch []sw.StreamEdge
}

func (m *kcertMonitor) Name() string { return MonitorKCert }
func (m *kcertMonitor) BatchInsert(edges []Edge) {
	m.scratch = appendStreamEdges(m.scratch[:0], edges)
	m.k.BatchInsert(m.scratch)
}
func (m *kcertMonitor) BatchExpire(delta int) { m.k.BatchExpire(delta) }

// cycleFreeMonitor wraps sliding-window cycle detection (Theorem 5.6).
type cycleFreeMonitor struct {
	c       *sw.CycleFree
	scratch []sw.StreamEdge
}

func (m *cycleFreeMonitor) Name() string { return MonitorCycleFree }
func (m *cycleFreeMonitor) BatchInsert(edges []Edge) {
	m.scratch = appendStreamEdges(m.scratch[:0], edges)
	m.c.BatchInsert(m.scratch)
}
func (m *cycleFreeMonitor) BatchExpire(delta int) { m.c.BatchExpire(delta) }
