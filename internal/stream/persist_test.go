package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// monitorAnswers is everything the five monitors can be asked, snapshotted
// for differential comparison.
type monitorAnswers struct {
	windowLen  int64
	components int
	bipartite  bool
	weight     float64
	certSize   int
	edgeConn   int
	cycle      bool
	connected  []bool
}

func answersOf(t *testing.T, wm *WindowManager, pairs [][2]int32) monitorAnswers {
	t.Helper()
	var a monitorAnswers
	var err error
	a.windowLen = wm.WindowLen()
	if a.components, err = wm.NumComponents(); err != nil {
		t.Fatal(err)
	}
	if a.bipartite, err = wm.IsBipartite(); err != nil {
		t.Fatal(err)
	}
	if a.weight, err = wm.MSFWeight(); err != nil {
		t.Fatal(err)
	}
	if a.certSize, err = wm.CertificateSize(); err != nil {
		t.Fatal(err)
	}
	if a.edgeConn, err = wm.EdgeConnectivityUpToK(); err != nil {
		t.Fatal(err)
	}
	if a.cycle, err = wm.HasCycle(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		c, err := wm.IsConnected(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		a.connected = append(a.connected, c)
	}
	return a
}

func diffAnswers(t *testing.T, tag string, ref, got monitorAnswers) {
	t.Helper()
	if ref.windowLen != got.windowLen {
		t.Errorf("%s: window len %d, reference %d", tag, got.windowLen, ref.windowLen)
	}
	if ref.components != got.components {
		t.Errorf("%s: components %d, reference %d", tag, got.components, ref.components)
	}
	if ref.bipartite != got.bipartite {
		t.Errorf("%s: bipartite %v, reference %v", tag, got.bipartite, ref.bipartite)
	}
	if ref.weight != got.weight {
		t.Errorf("%s: msf weight %v, reference %v", tag, got.weight, ref.weight)
	}
	if ref.certSize != got.certSize {
		t.Errorf("%s: certificate size %d, reference %d", tag, got.certSize, ref.certSize)
	}
	if ref.edgeConn != got.edgeConn {
		t.Errorf("%s: edge connectivity %d, reference %d", tag, got.edgeConn, ref.edgeConn)
	}
	if ref.cycle != got.cycle {
		t.Errorf("%s: cycle %v, reference %v", tag, got.cycle, ref.cycle)
	}
	for i := range ref.connected {
		if ref.connected[i] != got.connected[i] {
			t.Errorf("%s: connected(pair %d) %v, reference %v", tag, i, got.connected[i], ref.connected[i])
		}
	}
}

// Snapshot scenarios for the kill-and-recover differential: where (if
// anywhere) a live-edge snapshot lands relative to the kill point and the
// expiry watermark.
const (
	snapNone   = "none"       // snapshots disabled: pure suffix replay (the PR3 path)
	snapFresh  = "at-kill"    // snapshot written right before the kill: no post-snapshot suffix
	snapSuffix = "mid-stream" // snapshot mid-stream: recovery seeds it, then replays the suffix
	snapStale  = "stale"      // snapshot early, later checkpoint advances the watermark past its end
)

// TestKillAndRecoverDifferential is the durability subsystem's acceptance
// test: a registry is abandoned mid-stream — never closed, files left
// open, goroutines left running, exactly a SIGKILL'd process image — and
// a recovered registry over the same data directory must answer every
// monitor query identically to an uninterrupted reference run, both right
// after recovery and after streaming the rest of the schedule into it.
// Mid-stream checkpoints exercise watermark persistence, segment GC and
// snapshot compaction on the way; the scenario axis covers recovery with
// no snapshot, a snapshot at the kill point, a snapshot followed by a
// logged suffix, and a stale snapshot the expiry watermark has overtaken.
func TestKillAndRecoverDifferential(t *testing.T) {
	// replayBatch spans the coalescing spectrum — 0 merges the whole
	// suffix into one mega-batch, 64 forces many chunk boundaries, 1
	// degenerates to one apply per logged record — because answer
	// equivalence must hold regardless of how replay re-batches.
	for _, tc := range []struct {
		name        string
		maxArrivals int
		maxAge      time.Duration
		replayBatch int
	}{
		{"count", 250, 0, 0},
		{"time", 0, 80 * time.Second, 64},
		{"count+time", 250, 80 * time.Second, 1},
	} {
		for _, scenario := range []string{snapNone, snapFresh, snapSuffix, snapStale} {
			t.Run(tc.name+"/"+scenario, func(t *testing.T) {
				runKillRecover(t, tc.maxArrivals, tc.maxAge, tc.replayBatch, scenario)
			})
		}
	}
}

// setSnapshotThreshold mutates a live registry's snapshot threshold (test
// control for the scenario axis).
func setSnapshotThreshold(reg *WindowRegistry, v int) {
	reg.persist.mu.Lock()
	reg.persist.cfg.SnapshotThreshold = v
	reg.persist.mu.Unlock()
}

func countSnapshots(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			n++
		}
	}
	return n
}

func runKillRecover(t *testing.T, maxArrivals int, maxAge time.Duration, replayBatch int, scenario string) {
	const (
		n       = 48
		batches = 120
		killAt  = 80 // abandon here
	)
	// Checkpoint schedule per scenario. With threshold 1, every checkpoint
	// whose replayable suffix is non-trivial writes a snapshot; the stale
	// scenario then raises the threshold so its second checkpoint advances
	// the watermark (and GC) WITHOUT refreshing the snapshot.
	threshold := 1
	ckptSteps := map[int]bool{40: true}
	switch scenario {
	case snapNone:
		threshold = -1
	case snapFresh:
		ckptSteps = map[int]bool{killAt - 1: true}
	case snapStale:
		ckptSteps = map[int]bool{15: true, 65: true}
	}
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()

	winCfg := WindowConfig{
		N:           n,
		Seed:        0xFEED,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxArrivals: maxArrivals,
		MaxAge:      maxAge,
		Clock:       clock,
	}
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: winCfg,
			// One Submit+Flush per schedule step = one applied batch with
			// the step's exact edges, so the logged batch boundaries match
			// the reference's Apply calls.
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour, Clock: clock},
		},
		// Tiny segments force rotation so the checkpoint actually prunes.
		Persistence: &PersistenceConfig{
			Dir: dir, Fsync: FsyncOff, SegmentBytes: 1 << 10,
			ReplayBatch: replayBatch, SnapshotThreshold: threshold,
		},
	}

	ref, err := NewWindowManager(winCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg1, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 0 {
		t.Fatalf("fresh dir recovered %d windows", rep.Windows)
	}
	svc1, err := reg1.Create("w", reg1.Template())
	if err != nil {
		t.Fatal(err)
	}

	// step advances time, builds one random batch stamped with the current
	// fake time, and feeds identical copies to the reference manager and
	// the durable pipeline.
	step := func(svc *Service) {
		clock.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
		k := 1 + rng.Intn(24)
		batch := make([]Edge, k)
		for i := range batch {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10), T: clock.Now()}
		}
		ref.Apply(append([]Edge(nil), batch...))
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}

	for i := 0; i < killAt; i++ {
		step(svc1)
		if ckptSteps[i] {
			if scenario == snapStale && i > 15 {
				setSnapshotThreshold(reg1, 1<<30) // watermark moves on; the snapshot must not
			}
			if _, err := reg1.Checkpoint(); err != nil {
				t.Fatalf("mid-stream checkpoint at %d: %v", i, err)
			}
		}
	}

	// Scenario preconditions: the snapshot landscape on disk must be what
	// the scenario claims, or the subtest is not testing its label.
	winDir := filepath.Join(dir, "windows", "w")
	wantSnaps := 1
	if scenario == snapNone {
		wantSnaps = 0
	}
	if got := countSnapshots(t, winDir); got != wantSnaps {
		t.Fatalf("scenario %s: %d snapshot files on disk, want %d", scenario, got, wantSnaps)
	}
	man, err := wal.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws := man.Windows["w"]
	if scenario == snapStale && ws.Watermark <= ws.SnapshotEnd {
		t.Fatalf("scenario %s: watermark %d has not overtaken snapshot end %d", scenario, ws.Watermark, ws.SnapshotEnd)
	}

	// KILL: reg1 is abandoned, not closed — no final flush, no final
	// checkpoint, logs still open. Everything the recovered registry
	// knows comes from the manifest, the snapshot and the log files.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.Windows != 1 {
		t.Fatalf("recovery report %+v", rep)
	}
	switch scenario {
	case snapNone:
		if rep.Snapshots != 0 || rep.Edges == 0 {
			t.Fatalf("scenario %s: recovery report %+v", scenario, rep)
		}
	case snapFresh:
		// Snapshot written after the last pre-kill batch: nothing to replay.
		if rep.Snapshots != 1 || rep.SnapshotEdges == 0 || rep.Edges != 0 {
			t.Fatalf("scenario %s: recovery report %+v", scenario, rep)
		}
	case snapSuffix:
		// Snapshot seed plus a logged suffix after it.
		if rep.Snapshots != 1 || rep.SnapshotEdges == 0 || rep.Edges == 0 {
			t.Fatalf("scenario %s: recovery report %+v", scenario, rep)
		}
	case snapStale:
		// The watermark overtook the snapshot, so every edge in it is
		// expired; recovery must SKIP it (seeding would be pure waste) and
		// fall back to watermark-based replay.
		if rep.Snapshots != 0 || rep.SnapshotEdges != 0 || rep.Edges == 0 {
			t.Fatalf("scenario %s: recovery report %+v", scenario, rep)
		}
	}
	svc2, ok := reg2.Get("w")
	if !ok {
		t.Fatal("recovered registry lost the window")
	}

	pairs := make([][2]int32, 300)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	// Expire both sides to the same "now" before comparing: the durable
	// side's ticker may have already aged it further than the reference's
	// last Apply did.
	compare := func(tag string, wm *WindowManager) {
		now := clock.Now()
		ref.ExpireByAge(now)
		wm.ExpireByAge(now)
		diffAnswers(t, tag, answersOf(t, ref, pairs), answersOf(t, wm, pairs))
	}
	compare("post-recovery", svc2.Window())

	// The recovered window must be live-equivalent, not just
	// query-equivalent: stream the rest of the schedule into it.
	for i := killAt; i < batches; i++ {
		step(svc2)
	}
	compare("post-recovery stream", svc2.Window())
	reg2.Close()

	// One more restart, this time from a clean shutdown (final checkpoint
	// written by Close): answers must still pin to the reference.
	reg3, rep3, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rep3.Windows != 1 {
		t.Fatalf("second recovery report %+v", rep3)
	}
	svc3, _ := reg3.Get("w")
	compare("clean-restart", svc3.Window())
	reg3.Close()
}

// TestShutdownFlushesBufferedEdges pins the graceful-shutdown contract:
// edges accepted but still buffered under the ingester's MaxDelay deadline
// when the registry closes must be applied AND logged, not dropped.
func TestShutdownFlushesBufferedEdges(t *testing.T) {
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}, Clock: clock},
			Ingest: IngesterConfig{MaxBatch: 512, MaxDelay: time.Hour, Clock: clock},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 5, V: 6}}
	if err := svc.Submit(edges); err != nil {
		t.Fatal(err)
	}
	// Below MaxBatch and the fake clock never fires MaxDelay: the edges
	// sit in the pipeline, unapplied, until shutdown.
	if got := svc.Window().WindowLen(); got != 0 {
		t.Fatalf("edges applied before any flush trigger: window len %d", got)
	}
	reg.Close()
	if got := svc.Window().WindowLen(); got != int64(len(edges)) {
		t.Fatalf("shutdown dropped buffered edges: window len %d, want %d", got, len(edges))
	}
	// And they were logged: a recovered registry sees all of them.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Edges != int64(len(edges)) {
		t.Fatalf("recovery replayed %d edges, want %d", rep.Edges, len(edges))
	}
	svc2, _ := reg2.Get("w")
	if got := svc2.Window().WindowLen(); got != int64(len(edges)) {
		t.Fatalf("recovered window len %d, want %d", got, len(edges))
	}
	conn, err := svc2.Window().IsConnected(0, 3)
	if err != nil || !conn {
		t.Fatalf("recovered window lost connectivity: %v %v", conn, err)
	}
}

// TestDropDeletesDurableState: a dropped window's log directory and
// manifest entry are gone, and a restart does not resurrect it.
func TestDropDeletesDurableState(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 8},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keep", "drop"} {
		svc, err := reg.Create(name, reg.Template())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Submit([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	if err := reg.Drop("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "windows", "drop")); !os.IsNotExist(err) {
		t.Fatalf("dropped window's log dir still present (err=%v)", err)
	}
	reg.Close()

	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 1 {
		t.Fatalf("recovered %d windows, want 1", rep.Windows)
	}
	if _, ok := reg2.Get("drop"); ok {
		t.Fatal("dropped window came back from the dead")
	}
	if svc, ok := reg2.Get("keep"); !ok || svc.Window().WindowLen() != 2 {
		t.Fatalf("kept window missing or empty")
	}
	// Re-creating the dropped name starts a fresh, empty log.
	svc, err := reg2.Create("drop", reg2.Template())
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Window().WindowLen(); got != 0 {
		t.Fatalf("re-created window inherited %d stale arrivals", got)
	}
}

// TestCheckpointPrunesSegments: count-based expiry advances the watermark,
// and a checkpoint garbage-collects the segments that hold only expired
// arrivals.
func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 64, Monitors: []string{MonitorConn}, MaxArrivals: 32},
			Ingest: IngesterConfig{MaxBatch: 16},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 512},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		batch := make([]Edge, 16)
		for j := range batch {
			u := int32(rng.Intn(64))
			v := (u + 1 + int32(rng.Intn(62))) % 64
			batch[j] = Edge{U: u, V: v}
		}
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	segsBefore := countSegments(t, filepath.Join(dir, "windows", "w"))
	st, err := reg.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 1 || st.PrunedSegments == 0 {
		t.Fatalf("checkpoint stats %+v (segments before: %d)", st, segsBefore)
	}
	if after := countSegments(t, filepath.Join(dir, "windows", "w")); after >= segsBefore {
		t.Fatalf("prune left %d segments (was %d)", after, segsBefore)
	}
	// Recovery from the pruned log still rebuilds the full window.
	reg.Close()
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	svc2, _ := reg2.Get("w")
	if got := svc2.Window().WindowLen(); got != 32 {
		t.Fatalf("recovered window len %d, want 32", got)
	}
	// GC worked: recovery replayed only the unexpired tail of the 640
	// appended edges (skipping happens at segment granularity, so exact
	// counts depend on record/segment alignment).
	if rep.Edges >= 640 || rep.Edges < 32 {
		t.Fatalf("recovery replayed %d edges of 640 appended, want a small tail ≥ 32", rep.Edges)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// TestCheckpointEndpoint: POST /admin/checkpoint works on a durable
// registry, 409s on an in-memory one, and /stats gains a persistence block.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Create("w", reg.Template()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewRegistryServer(reg, ServerConfig{DefaultWindow: "w"}).Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ck struct {
		Windows int `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ck.Windows != 1 {
		t.Fatalf("checkpoint: status %d, %+v", resp.StatusCode, ck)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Persistence *PersistenceStats `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Persistence == nil || stats.Persistence.Checkpoints != 1 || stats.Persistence.Fsync != "off" {
		t.Fatalf("/stats persistence block = %+v", stats.Persistence)
	}

	// In-memory registry: 409.
	mem := NewRegistry(RegistryConfig{Template: regCfg.Template})
	defer mem.Close()
	if _, err := mem.Create("w", mem.Template()); err != nil {
		t.Fatal(err)
	}
	memSrv := httptest.NewServer(NewRegistryServer(mem, ServerConfig{DefaultWindow: "w"}).Handler())
	defer memSrv.Close()
	resp, err = memSrv.Client().Post(memSrv.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("in-memory checkpoint: status %d, want 409", resp.StatusCode)
	}
}

// TestRecoveryFailureLeavesManifestIntact: if one window's log is corrupt
// mid-file (a hard replay error), OpenRegistry must fail WITHOUT
// rewriting the manifest — otherwise one bad window would erase the
// durable registration of every healthy one.
func TestRecoveryFailureLeavesManifestIntact(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 32, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 8},
		},
		// Tiny segments so window "bad" gets a non-final segment to corrupt.
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 128},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aaa", "bad", "zzz"} {
		svc, err := reg.Create(name, reg.Template())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := svc.Submit([]Edge{{U: int32(i), V: int32(i + 1)}, {U: int32(i + 2), V: int32(i + 3)}}); err != nil {
				t.Fatal(err)
			}
			svc.Flush()
		}
	}
	reg.Close()

	// Corrupt the FIRST segment of "bad" (non-final → hard replay error).
	badDir := filepath.Join(dir, "windows", "bad")
	entries, err := os.ReadDir(badDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments to corrupt a non-final one, have %d", len(segs))
	}
	seg := filepath.Join(badDir, segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := OpenRegistry(regCfg); err == nil {
		t.Fatal("recovery over a corrupt mid-log window must fail")
	}
	man, err := os.ReadFile(filepath.Join(dir, wal.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aaa", "bad", "zzz"} {
		if !strings.Contains(string(man), "\""+name+"\"") {
			t.Fatalf("failed recovery rewrote the manifest: window %q gone\n%s", name, man)
		}
	}
	// Repairing the bad window (here: deleting its log) makes the healthy
	// ones recoverable again, contents intact.
	if err := os.RemoveAll(badDir); err != nil {
		t.Fatal(err)
	}
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 3 { // "bad" recovers too — as an empty window
		t.Fatalf("recovered %d windows, want 3", rep.Windows)
	}
	for _, name := range []string{"aaa", "zzz"} {
		svc, ok := reg2.Get(name)
		if !ok || svc.Window().WindowLen() != 12 {
			t.Fatalf("window %q missing or lost arrivals after repair", name)
		}
	}
}

// TestCheckpointAfterCloseKeepsManifest: a Checkpoint that races or
// follows Close must not rewrite the manifest from the emptied window
// table — the final checkpoint's registrations have to survive.
func TestCheckpointAfterCloseKeepsManifest(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit([]Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, err := reg.Checkpoint(); !strings.Contains(err.Error(), "closed") {
		t.Fatalf("post-close Checkpoint = %v, want registry-closed", err)
	}
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 1 || rep.Edges != 1 {
		t.Fatalf("post-close checkpoint damaged the manifest: recovery %+v", rep)
	}
}

// TestSnapshotWriteFailureKeepsRecoverySuffix is the regression test for
// the GC horizon rule: segment pruning must follow the manifest-committed
// snapshot state, so a checkpoint whose snapshot WRITE fails may still
// persist watermarks and prune by them — but must never prune on the
// strength of the snapshot it failed to write. An injected commit-time
// failure therefore leaves recovery fully functional (answers pinned to
// an uninterrupted reference), and a later healthy checkpoint snapshots
// normally.
func TestSnapshotWriteFailureKeepsRecoverySuffix(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	winCfg := WindowConfig{
		N:           n,
		Seed:        0xFEED,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxArrivals: 100,
	}
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: winCfg,
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour},
		},
		// Tiny segments + threshold 1: every checkpoint wants to snapshot
		// and has prunable segments.
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 512, SnapshotThreshold: 1},
	}
	ref, err := NewWindowManager(winCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	step := func(svc *Service) {
		k := 8 + rng.Intn(16)
		batch := make([]Edge, k)
		for i := range batch {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10)}
		}
		ref.Apply(append([]Edge(nil), batch...))
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	for i := 0; i < 40; i++ {
		step(svc)
	}

	// Inject a snapshot commit failure and checkpoint: the error must
	// surface, no snapshot file may appear, and — the point of the test —
	// the GC horizon must stay at the expiry watermark, keeping every
	// segment a snapshot-less recovery needs.
	reg.persist.testSnapshotFail = func(string) error { return errors.New("injected snapshot failure") }
	st, err := reg.Checkpoint()
	if err == nil || !strings.Contains(err.Error(), "injected snapshot failure") {
		t.Fatalf("checkpoint error = %v, want the injected snapshot failure", err)
	}
	if st.Snapshots != 0 {
		t.Fatalf("failed checkpoint claims %d snapshots", st.Snapshots)
	}
	winDir := filepath.Join(dir, "windows", "w")
	if got := countSnapshots(t, winDir); got != 0 {
		t.Fatalf("%d snapshot files on disk after a failed snapshot write", got)
	}
	if st.PrunedSegments == 0 {
		t.Fatal("watermark-based pruning should still have reclaimed fully-expired segments")
	}
	man, err := wal.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ws := man.Windows["w"]; ws.Snapshot != "" || ws.SnapshotEnd != 0 {
		t.Fatalf("manifest recorded the failed snapshot: %+v", ws)
	}

	// KILL and recover: the log suffix past the watermark must be intact
	// and every monitor answer must pin to the reference.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("recovery after failed snapshot: %v", err)
	}
	if rep.Windows != 1 || rep.Snapshots != 0 || rep.Edges == 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	svc2, _ := reg2.Get("w")
	pairs := make([][2]int32, 200)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	diffAnswers(t, "post-failed-snapshot recovery", answersOf(t, ref, pairs), answersOf(t, svc2.Window(), pairs))

	// With the failure gone (the recovered persister has no hook), the
	// next checkpoint snapshots normally and records it in the manifest.
	st2, err := reg2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Snapshots != 1 || st2.SnapshotEdges == 0 {
		t.Fatalf("healthy checkpoint stats %+v, want one snapshot", st2)
	}
	if got := countSnapshots(t, winDir); got != 1 {
		t.Fatalf("%d snapshot files after healthy checkpoint, want 1", got)
	}
	man, err = wal.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ws := man.Windows["w"]; ws.Snapshot == "" || ws.SnapshotEnd <= ws.Watermark {
		t.Fatalf("manifest after healthy checkpoint: %+v", ws)
	}
	reg2.Close()
}

// TestLiveEdgesSnapshotEquivalence is the property test for the
// arrival-order live-edge iterator: for random workloads under every
// expiry mode, seeding a fresh window from LiveEdges' (watermark, edges)
// capture with one mega-batch apply and then streaming the remaining
// schedule must be answer-identical to the straight-through run — the
// exact soundness property checkpoint snapshots rely on.
func TestLiveEdgesSnapshotEquivalence(t *testing.T) {
	const n = 48
	for _, tc := range []struct {
		name        string
		maxArrivals int
		maxAge      time.Duration
	}{
		{"count", 200, 0},
		{"time", 0, 60 * time.Second},
		{"count+time", 200, 60 * time.Second},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				clock := NewFakeClock(time.Unix(1_700_000_000, 0))
				rng := rand.New(rand.NewSource(seed))
				winCfg := WindowConfig{
					N:           n,
					Seed:        0xFEED,
					Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
					MaxArrivals: tc.maxArrivals,
					MaxAge:      tc.maxAge,
					Clock:       clock,
				}
				ref, err := NewWindowManager(winCfg)
				if err != nil {
					t.Fatal(err)
				}
				// Count-only windows retain live edges only for the
				// durability layer; this test IS that consumer.
				ref.enableLiveRetention()
				mkBatch := func() []Edge {
					clock.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
					k := 1 + rng.Intn(24)
					batch := make([]Edge, k)
					for i := range batch {
						u := int32(rng.Intn(n))
						v := int32(rng.Intn(n))
						for v == u {
							v = int32(rng.Intn(n))
						}
						batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10), T: clock.Now()}
					}
					return batch
				}
				const batches = 60
				cut := 10 + rng.Intn(40)
				for i := 0; i < cut; i++ {
					ref.Apply(mkBatch())
				}
				// Capture the canonical window content and seed a fresh
				// manager with it in ONE batch — what snapshot recovery does.
				var seedEdges []Edge
				var capturedWM int64
				if err := ref.LiveEdges(func(expired int64, live []Edge) error {
					capturedWM = expired
					seedEdges = append([]Edge(nil), live...)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if want := ref.WindowLen(); int64(len(seedEdges)) != want {
					t.Fatalf("LiveEdges served %d edges, window len %d", len(seedEdges), want)
				}
				if capturedWM != ref.Watermark() {
					t.Fatalf("LiveEdges watermark %d, manager watermark %d", capturedWM, ref.Watermark())
				}
				restored, err := NewWindowManager(winCfg)
				if err != nil {
					t.Fatal(err)
				}
				restored.Apply(seedEdges)
				for i := cut; i < batches; i++ {
					batch := mkBatch()
					ref.Apply(append([]Edge(nil), batch...))
					restored.Apply(batch)
				}
				now := clock.Now()
				ref.ExpireByAge(now)
				restored.ExpireByAge(now)
				pairs := make([][2]int32, 200)
				for i := range pairs {
					pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
				}
				diffAnswers(t, "snapshot-seeded", answersOf(t, ref, pairs), answersOf(t, restored, pairs))
			})
		}
	}
}

// TestRecoveryAdvancesPastWatermarkAfterLogLoss: when the log's bytes
// vanish below the manifest watermark (disk loss, manual deletion),
// recovery must renumber future appends PAST the watermark — otherwise
// the next restart would skip the re-appended records as already expired
// and silently lose acknowledged data.
func TestRecoveryAdvancesPastWatermarkAfterLogLoss(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}, MaxArrivals: 8},
			Ingest: IngesterConfig{MaxBatch: 4},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SnapshotThreshold: -1},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := svc.Submit([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	if _, err := reg.Checkpoint(); err != nil { // manifest watermark = 24
		t.Fatal(err)
	}
	reg.Close()

	// The log loses every segment; only the manifest survives.
	winDir := filepath.Join(dir, "windows", "w")
	entries, err := os.ReadDir(winDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			if err := os.Remove(filepath.Join(winDir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}

	reg2, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("recovery over an emptied log: %v", err)
	}
	svc2, _ := reg2.Get("w")
	if got := svc2.Window().WindowLen(); got != 0 {
		t.Fatalf("window len %d after total log loss, want 0", got)
	}
	if err := svc2.Submit([]Edge{{U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}}); err != nil {
		t.Fatal(err)
	}
	svc2.Flush()
	reg2.Close()

	// The re-appended records must come back: they were numbered past the
	// old watermark, not under it.
	reg3, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg3.Close()
	if rep.Edges != 3 {
		t.Fatalf("recovery replayed %d edges, want the 3 post-loss appends", rep.Edges)
	}
	svc3, _ := reg3.Get("w")
	if conn, err := svc3.Window().IsConnected(5, 8); err != nil || !conn {
		t.Fatalf("post-loss appends lost: connected(5,8)=%v err=%v", conn, err)
	}
}

// TestOpenRegistryInMemory: a nil Persistence config is the plain
// in-memory registry.
func TestOpenRegistryInMemory(t *testing.T) {
	reg, rep, err := OpenRegistry(RegistryConfig{
		Template: ServiceConfig{Window: WindowConfig{N: 8, Monitors: []string{MonitorConn}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if rep.Windows != 0 || reg.Persistent() {
		t.Fatalf("in-memory passthrough: %+v persistent=%v", rep, reg.Persistent())
	}
	if _, err := reg.Checkpoint(); err != ErrNotPersistent {
		t.Fatalf("Checkpoint = %v, want ErrNotPersistent", err)
	}
}

// TestSyncAckKillAndRecoverDifferential extends the kill-and-recover grid
// to the durable-ack path: every batch is submitted through the blocking
// sync-ack API under fsync=batch, the registry is killed (abandoned, not
// closed) right after an ack, and the recovered window must answer
// identically to an in-memory reference fed the same edges — no
// acknowledged edge may be lost. It also pins the manifest round-trip of
// the new ingress knobs: SyncAck and the admission budgets survive
// recovery.
func TestSyncAckKillAndRecoverDifferential(t *testing.T) {
	const (
		n       = 48
		batches = 60
		killAt  = 40
	)
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()

	winCfg := WindowConfig{
		N:           n,
		Seed:        0xFEED,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxArrivals: 200,
		Clock:       clock,
		SyncAck:     true,
	}
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: winCfg,
			// MaxBatch 16 with fixed 16-edge steps: the threshold flush
			// fires inside Submit, so the durable ack never waits on the
			// hour-long delay timer.
			Ingest: IngesterConfig{
				MaxBatch: 16, MaxDelay: time.Hour, Clock: clock,
				MaxQueueEdges: 1 << 16, MaxQueueBytes: 1 << 24,
			},
		},
		Persistence: &PersistenceConfig{
			Dir: dir, Fsync: FsyncBatch, SegmentBytes: 1 << 10,
		},
	}

	ref, err := NewWindowManager(winCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg1, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := reg1.Create("w", reg1.Template())
	if err != nil {
		t.Fatal(err)
	}
	if !svc1.SyncAckDefault() || !svc1.Durable() {
		t.Fatalf("sync-ack window not durable-sync: syncAck=%v durable=%v",
			svc1.SyncAckDefault(), svc1.Durable())
	}

	// step builds one fixed-size batch and blocks until it is durable. By
	// the time step returns, losing the edges is a contract violation.
	step := func(svc *Service) {
		clock.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
		batch := make([]Edge, 16)
		for i := range batch {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10), T: clock.Now()}
		}
		ref.Apply(append([]Edge(nil), batch...))
		if err := svc.submitOwnedDurable(context.Background(), batch); err != nil {
			t.Fatalf("durable submit: %v", err)
		}
	}
	for i := 0; i < killAt; i++ {
		step(svc1)
	}

	// KILL: no Close, no checkpoint. Every step above returned only after
	// its WAL append was fsynced, so recovery owes us all of them.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.Windows != 1 || rep.Edges != killAt*16 {
		t.Fatalf("recovery report %+v, want %d acknowledged edges replayed", rep, killAt*16)
	}
	svc2, ok := reg2.Get("w")
	if !ok {
		t.Fatal("recovered registry lost the window")
	}
	// The ingress knobs must survive the manifest round-trip.
	if !svc2.SyncAckDefault() || !svc2.Durable() {
		t.Fatalf("recovered window dropped sync-ack: syncAck=%v durable=%v",
			svc2.SyncAckDefault(), svc2.Durable())
	}
	if maxE, maxB := svc2.QueueBudget(); maxE != 1<<16 || maxB != 1<<24 {
		t.Fatalf("recovered queue budget = (%d, %d), want (%d, %d)", maxE, maxB, 1<<16, 1<<24)
	}

	pairs := make([][2]int32, 300)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	compare := func(tag string, wm *WindowManager) {
		now := clock.Now()
		ref.ExpireByAge(now)
		wm.ExpireByAge(now)
		diffAnswers(t, tag, answersOf(t, ref, pairs), answersOf(t, wm, pairs))
	}
	compare("post-recovery", svc2.Window())

	// The recovered window keeps acking durably: stream the rest of the
	// schedule through the same blocking path, then pin answers again.
	for i := killAt; i < batches; i++ {
		step(svc2)
	}
	compare("post-recovery stream", svc2.Window())
	reg2.Close()
}
