package stream

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// monitorAnswers is everything the five monitors can be asked, snapshotted
// for differential comparison.
type monitorAnswers struct {
	windowLen  int64
	components int
	bipartite  bool
	weight     float64
	certSize   int
	edgeConn   int
	cycle      bool
	connected  []bool
}

func answersOf(t *testing.T, wm *WindowManager, pairs [][2]int32) monitorAnswers {
	t.Helper()
	var a monitorAnswers
	var err error
	a.windowLen = wm.WindowLen()
	if a.components, err = wm.NumComponents(); err != nil {
		t.Fatal(err)
	}
	if a.bipartite, err = wm.IsBipartite(); err != nil {
		t.Fatal(err)
	}
	if a.weight, err = wm.MSFWeight(); err != nil {
		t.Fatal(err)
	}
	if a.certSize, err = wm.CertificateSize(); err != nil {
		t.Fatal(err)
	}
	if a.edgeConn, err = wm.EdgeConnectivityUpToK(); err != nil {
		t.Fatal(err)
	}
	if a.cycle, err = wm.HasCycle(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		c, err := wm.IsConnected(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		a.connected = append(a.connected, c)
	}
	return a
}

func diffAnswers(t *testing.T, tag string, ref, got monitorAnswers) {
	t.Helper()
	if ref.windowLen != got.windowLen {
		t.Errorf("%s: window len %d, reference %d", tag, got.windowLen, ref.windowLen)
	}
	if ref.components != got.components {
		t.Errorf("%s: components %d, reference %d", tag, got.components, ref.components)
	}
	if ref.bipartite != got.bipartite {
		t.Errorf("%s: bipartite %v, reference %v", tag, got.bipartite, ref.bipartite)
	}
	if ref.weight != got.weight {
		t.Errorf("%s: msf weight %v, reference %v", tag, got.weight, ref.weight)
	}
	if ref.certSize != got.certSize {
		t.Errorf("%s: certificate size %d, reference %d", tag, got.certSize, ref.certSize)
	}
	if ref.edgeConn != got.edgeConn {
		t.Errorf("%s: edge connectivity %d, reference %d", tag, got.edgeConn, ref.edgeConn)
	}
	if ref.cycle != got.cycle {
		t.Errorf("%s: cycle %v, reference %v", tag, got.cycle, ref.cycle)
	}
	for i := range ref.connected {
		if ref.connected[i] != got.connected[i] {
			t.Errorf("%s: connected(pair %d) %v, reference %v", tag, i, got.connected[i], ref.connected[i])
		}
	}
}

// TestKillAndRecoverDifferential is the durability subsystem's acceptance
// test: a registry is abandoned mid-stream — never closed, files left
// open, goroutines left running, exactly a SIGKILL'd process image — and
// a recovered registry over the same data directory must answer every
// monitor query identically to an uninterrupted reference run, both right
// after recovery and after streaming the rest of the schedule into it.
// A mid-stream checkpoint exercises watermark persistence and segment GC
// on the way.
func TestKillAndRecoverDifferential(t *testing.T) {
	// replayBatch spans the coalescing spectrum — 0 merges the whole
	// suffix into one mega-batch, 64 forces many chunk boundaries, 1
	// degenerates to one apply per logged record — because answer
	// equivalence must hold regardless of how replay re-batches.
	for _, tc := range []struct {
		name        string
		maxArrivals int
		maxAge      time.Duration
		replayBatch int
	}{
		{"count", 250, 0, 0},
		{"time", 0, 80 * time.Second, 64},
		{"count+time", 250, 80 * time.Second, 1},
	} {
		t.Run(tc.name, func(t *testing.T) { runKillRecover(t, tc.maxArrivals, tc.maxAge, tc.replayBatch) })
	}
}

func runKillRecover(t *testing.T, maxArrivals int, maxAge time.Duration, replayBatch int) {
	const (
		n       = 48
		batches = 120
		ckptAt  = 40 // mid-stream checkpoint (watermark + prune)
		killAt  = 80 // abandon here
	)
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()

	winCfg := WindowConfig{
		N:           n,
		Seed:        0xFEED,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
		MaxArrivals: maxArrivals,
		MaxAge:      maxAge,
		Clock:       clock,
	}
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: winCfg,
			// One Submit+Flush per schedule step = one applied batch with
			// the step's exact edges, so the logged batch boundaries match
			// the reference's Apply calls.
			Ingest: IngesterConfig{MaxBatch: 1 << 16, MaxDelay: time.Hour, Clock: clock},
		},
		// Tiny segments force rotation so the checkpoint actually prunes.
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 1 << 10, ReplayBatch: replayBatch},
	}

	ref, err := NewWindowManager(winCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg1, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 0 {
		t.Fatalf("fresh dir recovered %d windows", rep.Windows)
	}
	svc1, err := reg1.Create("w", reg1.Template())
	if err != nil {
		t.Fatal(err)
	}

	// step advances time, builds one random batch stamped with the current
	// fake time, and feeds identical copies to the reference manager and
	// the durable pipeline.
	step := func(svc *Service) {
		clock.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
		k := 1 + rng.Intn(24)
		batch := make([]Edge, k)
		for i := range batch {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			batch[i] = Edge{U: u, V: v, W: 1 + rng.Int63n(1<<10), T: clock.Now()}
		}
		ref.Apply(append([]Edge(nil), batch...))
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}

	for i := 0; i < killAt; i++ {
		step(svc1)
		if i == ckptAt {
			if _, err := reg1.Checkpoint(); err != nil {
				t.Fatalf("mid-stream checkpoint: %v", err)
			}
		}
	}

	// KILL: reg1 is abandoned, not closed — no final flush, no final
	// checkpoint, logs still open. Everything the recovered registry
	// knows comes from the manifest and the log files.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.Windows != 1 || rep.Edges == 0 {
		t.Fatalf("recovery report %+v", rep)
	}
	svc2, ok := reg2.Get("w")
	if !ok {
		t.Fatal("recovered registry lost the window")
	}

	pairs := make([][2]int32, 300)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	// Expire both sides to the same "now" before comparing: the durable
	// side's ticker may have already aged it further than the reference's
	// last Apply did.
	compare := func(tag string, wm *WindowManager) {
		now := clock.Now()
		ref.ExpireByAge(now)
		wm.ExpireByAge(now)
		diffAnswers(t, tag, answersOf(t, ref, pairs), answersOf(t, wm, pairs))
	}
	compare("post-recovery", svc2.Window())

	// The recovered window must be live-equivalent, not just
	// query-equivalent: stream the rest of the schedule into it.
	for i := killAt; i < batches; i++ {
		step(svc2)
	}
	compare("post-recovery stream", svc2.Window())
	reg2.Close()

	// One more restart, this time from a clean shutdown (final checkpoint
	// written by Close): answers must still pin to the reference.
	reg3, rep3, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rep3.Windows != 1 {
		t.Fatalf("second recovery report %+v", rep3)
	}
	svc3, _ := reg3.Get("w")
	compare("clean-restart", svc3.Window())
	reg3.Close()
}

// TestShutdownFlushesBufferedEdges pins the graceful-shutdown contract:
// edges accepted but still buffered under the ingester's MaxDelay deadline
// when the registry closes must be applied AND logged, not dropped.
func TestShutdownFlushesBufferedEdges(t *testing.T) {
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}, Clock: clock},
			Ingest: IngesterConfig{MaxBatch: 512, MaxDelay: time.Hour, Clock: clock},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 5, V: 6}}
	if err := svc.Submit(edges); err != nil {
		t.Fatal(err)
	}
	// Below MaxBatch and the fake clock never fires MaxDelay: the edges
	// sit in the pipeline, unapplied, until shutdown.
	if got := svc.Window().WindowLen(); got != 0 {
		t.Fatalf("edges applied before any flush trigger: window len %d", got)
	}
	reg.Close()
	if got := svc.Window().WindowLen(); got != int64(len(edges)) {
		t.Fatalf("shutdown dropped buffered edges: window len %d, want %d", got, len(edges))
	}
	// And they were logged: a recovered registry sees all of them.
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Edges != int64(len(edges)) {
		t.Fatalf("recovery replayed %d edges, want %d", rep.Edges, len(edges))
	}
	svc2, _ := reg2.Get("w")
	if got := svc2.Window().WindowLen(); got != int64(len(edges)) {
		t.Fatalf("recovered window len %d, want %d", got, len(edges))
	}
	conn, err := svc2.Window().IsConnected(0, 3)
	if err != nil || !conn {
		t.Fatalf("recovered window lost connectivity: %v %v", conn, err)
	}
}

// TestDropDeletesDurableState: a dropped window's log directory and
// manifest entry are gone, and a restart does not resurrect it.
func TestDropDeletesDurableState(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 8},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keep", "drop"} {
		svc, err := reg.Create(name, reg.Template())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Submit([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	if err := reg.Drop("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "windows", "drop")); !os.IsNotExist(err) {
		t.Fatalf("dropped window's log dir still present (err=%v)", err)
	}
	reg.Close()

	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 1 {
		t.Fatalf("recovered %d windows, want 1", rep.Windows)
	}
	if _, ok := reg2.Get("drop"); ok {
		t.Fatal("dropped window came back from the dead")
	}
	if svc, ok := reg2.Get("keep"); !ok || svc.Window().WindowLen() != 2 {
		t.Fatalf("kept window missing or empty")
	}
	// Re-creating the dropped name starts a fresh, empty log.
	svc, err := reg2.Create("drop", reg2.Template())
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Window().WindowLen(); got != 0 {
		t.Fatalf("re-created window inherited %d stale arrivals", got)
	}
}

// TestCheckpointPrunesSegments: count-based expiry advances the watermark,
// and a checkpoint garbage-collects the segments that hold only expired
// arrivals.
func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 64, Monitors: []string{MonitorConn}, MaxArrivals: 32},
			Ingest: IngesterConfig{MaxBatch: 16},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 512},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		batch := make([]Edge, 16)
		for j := range batch {
			u := int32(rng.Intn(64))
			v := (u + 1 + int32(rng.Intn(62))) % 64
			batch[j] = Edge{U: u, V: v}
		}
		if err := svc.Submit(batch); err != nil {
			t.Fatal(err)
		}
		svc.Flush()
	}
	segsBefore := countSegments(t, filepath.Join(dir, "windows", "w"))
	st, err := reg.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 1 || st.PrunedSegments == 0 {
		t.Fatalf("checkpoint stats %+v (segments before: %d)", st, segsBefore)
	}
	if after := countSegments(t, filepath.Join(dir, "windows", "w")); after >= segsBefore {
		t.Fatalf("prune left %d segments (was %d)", after, segsBefore)
	}
	// Recovery from the pruned log still rebuilds the full window.
	reg.Close()
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	svc2, _ := reg2.Get("w")
	if got := svc2.Window().WindowLen(); got != 32 {
		t.Fatalf("recovered window len %d, want 32", got)
	}
	// GC worked: recovery replayed only the unexpired tail of the 640
	// appended edges (skipping happens at segment granularity, so exact
	// counts depend on record/segment alignment).
	if rep.Edges >= 640 || rep.Edges < 32 {
		t.Fatalf("recovery replayed %d edges of 640 appended, want a small tail ≥ 32", rep.Edges)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// TestCheckpointEndpoint: POST /admin/checkpoint works on a durable
// registry, 409s on an in-memory one, and /stats gains a persistence block.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Create("w", reg.Template()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewRegistryServer(reg, ServerConfig{DefaultWindow: "w"}).Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ck struct {
		Windows int `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ck.Windows != 1 {
		t.Fatalf("checkpoint: status %d, %+v", resp.StatusCode, ck)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Persistence *PersistenceStats `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Persistence == nil || stats.Persistence.Checkpoints != 1 || stats.Persistence.Fsync != "off" {
		t.Fatalf("/stats persistence block = %+v", stats.Persistence)
	}

	// In-memory registry: 409.
	mem := NewRegistry(RegistryConfig{Template: regCfg.Template})
	defer mem.Close()
	if _, err := mem.Create("w", mem.Template()); err != nil {
		t.Fatal(err)
	}
	memSrv := httptest.NewServer(NewRegistryServer(mem, ServerConfig{DefaultWindow: "w"}).Handler())
	defer memSrv.Close()
	resp, err = memSrv.Client().Post(memSrv.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("in-memory checkpoint: status %d, want 409", resp.StatusCode)
	}
}

// TestRecoveryFailureLeavesManifestIntact: if one window's log is corrupt
// mid-file (a hard replay error), OpenRegistry must fail WITHOUT
// rewriting the manifest — otherwise one bad window would erase the
// durable registration of every healthy one.
func TestRecoveryFailureLeavesManifestIntact(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 32, Monitors: []string{MonitorConn}},
			Ingest: IngesterConfig{MaxBatch: 8},
		},
		// Tiny segments so window "bad" gets a non-final segment to corrupt.
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 128},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aaa", "bad", "zzz"} {
		svc, err := reg.Create(name, reg.Template())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := svc.Submit([]Edge{{U: int32(i), V: int32(i + 1)}, {U: int32(i + 2), V: int32(i + 3)}}); err != nil {
				t.Fatal(err)
			}
			svc.Flush()
		}
	}
	reg.Close()

	// Corrupt the FIRST segment of "bad" (non-final → hard replay error).
	badDir := filepath.Join(dir, "windows", "bad")
	entries, err := os.ReadDir(badDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments to corrupt a non-final one, have %d", len(segs))
	}
	seg := filepath.Join(badDir, segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := OpenRegistry(regCfg); err == nil {
		t.Fatal("recovery over a corrupt mid-log window must fail")
	}
	man, err := os.ReadFile(filepath.Join(dir, wal.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aaa", "bad", "zzz"} {
		if !strings.Contains(string(man), "\""+name+"\"") {
			t.Fatalf("failed recovery rewrote the manifest: window %q gone\n%s", name, man)
		}
	}
	// Repairing the bad window (here: deleting its log) makes the healthy
	// ones recoverable again, contents intact.
	if err := os.RemoveAll(badDir); err != nil {
		t.Fatal(err)
	}
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 3 { // "bad" recovers too — as an empty window
		t.Fatalf("recovered %d windows, want 3", rep.Windows)
	}
	for _, name := range []string{"aaa", "zzz"} {
		svc, ok := reg2.Get(name)
		if !ok || svc.Window().WindowLen() != 12 {
			t.Fatalf("window %q missing or lost arrivals after repair", name)
		}
	}
}

// TestCheckpointAfterCloseKeepsManifest: a Checkpoint that races or
// follows Close must not rewrite the manifest from the emptied window
// table — the final checkpoint's registrations have to survive.
func TestCheckpointAfterCloseKeepsManifest(t *testing.T) {
	dir := t.TempDir()
	regCfg := RegistryConfig{
		Template: ServiceConfig{
			Window: WindowConfig{N: 16, Monitors: []string{MonitorConn}},
		},
		Persistence: &PersistenceConfig{Dir: dir, Fsync: FsyncOff},
	}
	reg, _, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Create("w", reg.Template())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit([]Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, err := reg.Checkpoint(); !strings.Contains(err.Error(), "closed") {
		t.Fatalf("post-close Checkpoint = %v, want registry-closed", err)
	}
	reg2, rep, err := OpenRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rep.Windows != 1 || rep.Edges != 1 {
		t.Fatalf("post-close checkpoint damaged the manifest: recovery %+v", rep)
	}
}

// TestOpenRegistryInMemory: a nil Persistence config is the plain
// in-memory registry.
func TestOpenRegistryInMemory(t *testing.T) {
	reg, rep, err := OpenRegistry(RegistryConfig{
		Template: ServiceConfig{Window: WindowConfig{N: 8, Monitors: []string{MonitorConn}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if rep.Windows != 0 || reg.Persistent() {
		t.Fatalf("in-memory passthrough: %+v persistent=%v", rep, reg.Persistent())
	}
	if _, err := reg.Checkpoint(); err != ErrNotPersistent {
		t.Fatalf("Checkpoint = %v, want ErrNotPersistent", err)
	}
}
