package stream

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultWindow is the window name the legacy single-window HTTP routes
// resolve to.
const DefaultWindow = "default"

// Registry errors, distinguished so the HTTP layer can map them to status
// codes (409 exists, 404 not found, 429 too many, 503 closed, 400 name).
var (
	ErrWindowExists   = errors.New("stream: window already exists")
	ErrWindowNotFound = errors.New("stream: window not found")
	ErrTooManyWindows = errors.New("stream: window limit reached")
	ErrRegistryClosed = errors.New("stream: registry closed")
	ErrBadWindowName  = errors.New("stream: bad window name")
)

// RegistryConfig tunes a WindowRegistry; zero values select defaults.
type RegistryConfig struct {
	// Shards is the number of independent lock shards the window table is
	// hash-partitioned over (default 16, rounded up to a power of two).
	// Operations on windows in different shards never contend.
	Shards int
	// MaxWindows caps the number of live windows (0 = unlimited). Creation
	// beyond the cap fails with ErrTooManyWindows.
	MaxWindows int
	// Template is the ServiceConfig new windows inherit when the creator
	// leaves fields zero (see mergeTemplate). Template.Window.N must be set
	// for template-based creation to work.
	Template ServiceConfig
	// Persistence enables the durability layer (write-ahead batch logs +
	// manifest + crash recovery); nil keeps the registry in-memory. Only
	// OpenRegistry honours it — NewRegistry ignores the field.
	Persistence *PersistenceConfig
	// Telemetry, when set, instruments every pipeline the registry owns
	// (ingest, apply, fan-out, WAL, checkpoints) into that registry's
	// metric families. nil disables metrics at zero hot-path cost.
	Telemetry *telemetry.Registry
	// Logger receives the registry's structured operational records
	// (recovery, checkpoints). nil discards them.
	Logger *slog.Logger
	// Flight tunes the batch flight recorder (ring sizes, slow threshold).
	// The recorder itself is always on — zero values select the trace
	// package defaults; a negative Flight.SlowThreshold disables only the
	// slow-retention ring.
	Flight trace.Options
	// FaultInjector, when set, is threaded through every durability-layer
	// disk operation (WAL, snapshots, manifest, heal probes) and through
	// the monitor apply boundary (CheckApply with "window/monitor" paths),
	// so fault schedules — set programmatically or via /admin/fault — can
	// exercise the degrade→heal and quarantine→rebuild machinery against a
	// live registry. Nil (production default) costs nothing.
	FaultInjector *fault.Injector
}

func (c *RegistryConfig) withDefaults() RegistryConfig {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	n := 1
	for n < out.Shards {
		n <<= 1
	}
	out.Shards = n
	return out
}

// WindowInfo is a point-in-time public snapshot of one registered window.
type WindowInfo struct {
	Name     string      `json:"name"`
	N        int         `json:"n"`
	Monitors []string    `json:"monitors"`
	Created  time.Time   `json:"created"`
	Window   WindowStats `json:"window"`
	Edges    int64       `json:"ingest_edges"`
	Batches  int64       `json:"ingest_batches"`
}

// windowHandle is one registry entry. svc is nil while the window is still
// being constructed (Create publishes a placeholder first so it can build
// the Service outside the shard lock); every reader treats a nil-svc
// handle as "window does not exist yet".
type windowHandle struct {
	name    string
	svc     *Service
	created time.Time
}

type registryShard struct {
	mu   sync.RWMutex
	wins map[string]*windowHandle
}

// WindowRegistry owns many named windows — each a full Service pipeline
// (Ingester + WindowManager + expiry ticker) — hash-sharded across
// independent locks so tenants operating on different windows never
// contend on registry state. The shard locks guard only the name → window
// table; each window's own single-writer/many-reader discipline is
// unchanged, so one tenant's batch application never blocks another
// tenant's queries.
type WindowRegistry struct {
	cfg    RegistryConfig
	shards []registryShard
	mask   uint64

	// countMu serializes the MaxWindows admission check across shards;
	// count is the number of live windows. closed is atomic so Create can
	// re-check it under the shard lock (see the comment there) without
	// taking countMu inside it.
	countMu sync.Mutex
	count   int
	closed  atomic.Bool

	// persist is the durability layer, set only by OpenRegistry; nil
	// means in-memory. ckptStop/ckptWG manage the background checkpoint
	// ticker.
	persist  *persister
	ckptStop chan struct{}
	ckptWG   sync.WaitGroup

	// metrics is the shared telemetry bundle every owned pipeline records
	// into (never nil — noMetrics when disabled); logger is the registry's
	// structured logger (never nil — a discard logger when unset).
	metrics *Metrics
	logger  *slog.Logger

	// workers is the intra-monitor fork-join budget shared by every window
	// the registry creates or recovers, sized once from the template's
	// ApplyParallelism (see WindowConfig). One budget across all windows
	// keeps total auxiliary parallelism at the configured number no matter
	// how many windows apply batches at once. applyParallelism is the
	// effective total (callers + auxiliaries) the gauge reports.
	workers          *parallel.Limiter
	applyParallelism int

	// flight is the batch flight recorder every owned pipeline traces
	// into — always on (recording is 0 allocs/op; cost is a handful of
	// clock reads per batch). flightSink is the slow-trace JSONL file on
	// a durable registry (nil otherwise), closed with the registry.
	flight     *trace.Recorder
	flightSink io.Closer
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *WindowRegistry {
	cfg = cfg.withDefaults()
	r := &WindowRegistry{
		cfg:    cfg,
		shards: make([]registryShard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		logger: cfg.Logger,
		flight: trace.New(cfg.Flight),
	}
	if r.logger == nil {
		r.logger = slog.New(slog.DiscardHandler)
	}
	if p := cfg.Template.Window.ApplyParallelism; p > 0 {
		r.workers = parallel.NewLimiter(p - 1)
		r.applyParallelism = p
	} else {
		r.workers = parallel.Default()
		r.applyParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Telemetry != nil {
		r.metrics = NewMetrics(cfg.Telemetry)
		cfg.Telemetry.GaugeFunc("sw_windows_live",
			"Live windows registered.", func() float64 { return float64(r.Len()) })
		cfg.Telemetry.GaugeFunc("sw_apply_parallelism",
			"Shared intra-monitor batch-apply worker budget (caller + auxiliaries).",
			func() float64 { return float64(r.applyParallelism) })
		// Window health by state — registry-level counts, not per-window
		// labels (windows are tenant-controlled; names would be unbounded
		// cardinality). Per-window detail lives in /stats.
		health := func(state string, pick func(h, d, q int) int) {
			cfg.Telemetry.GaugeFunc("sw_window_health",
				"Live windows by health state (quarantined outranks degraded).",
				func() float64 { h, d, q := r.healthCounts(); return float64(pick(h, d, q)) },
				telemetry.L("state", state))
		}
		health("healthy", func(h, _, _ int) int { return h })
		health("degraded", func(_, d, _ int) int { return d })
		health("quarantined", func(_, _, q int) int { return q })
	} else {
		r.metrics = noMetrics
	}
	for i := range r.shards {
		r.shards[i].wins = make(map[string]*windowHandle)
	}
	return r
}

// Metrics returns the registry's telemetry bundle (never nil; a no-op
// bundle when telemetry is disabled). The HTTP server records its
// request-level instruments through it.
func (r *WindowRegistry) Metrics() *Metrics { return r.metrics }

// Flight returns the registry's batch flight recorder (never nil). The
// HTTP server mounts its handler at /debug/flight.
func (r *WindowRegistry) Flight() *trace.Recorder { return r.flight }

// Logger returns the registry's structured logger (never nil).
func (r *WindowRegistry) Logger() *slog.Logger { return r.logger }

// Template returns the config new windows inherit defaults from.
func (r *WindowRegistry) Template() ServiceConfig { return r.cfg.Template }

// Shards returns the number of lock shards.
func (r *WindowRegistry) Shards() int { return len(r.shards) }

// shardFor picks the shard owning a name (FNV-1a).
func (r *WindowRegistry) shardFor(name string) *registryShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &r.shards[h&r.mask]
}

// ValidateWindowName enforces the name grammar shared by the registry and
// the HTTP routes: 1–128 chars from [A-Za-z0-9._-], not "." or "..".
func ValidateWindowName(name string) error {
	if name == "" || len(name) > 128 || name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrBadWindowName, name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-') {
			return fmt.Errorf("%w: %q", ErrBadWindowName, name)
		}
	}
	return nil
}

// mergeTemplate fills the zero fields of cfg from the template. Explicit
// zero-disables are impossible through this path for MaxArrivals/MaxAge —
// tenants that need them pass a fully-specified config to Create instead of
// relying on the template.
func mergeTemplate(cfg, tpl ServiceConfig) ServiceConfig {
	if cfg.Window.N == 0 {
		cfg.Window.N = tpl.Window.N
	}
	if cfg.Window.Seed == 0 {
		cfg.Window.Seed = tpl.Window.Seed
	}
	if cfg.Window.Monitors == nil {
		cfg.Window.Monitors = tpl.Window.Monitors
	}
	// MonitorConfig merges per field like everything else: a tenant that
	// overrides only K must still inherit the template's Eps/MaxWeight.
	if cfg.Window.Monitor.Eps == 0 {
		cfg.Window.Monitor.Eps = tpl.Window.Monitor.Eps
	}
	if cfg.Window.Monitor.MaxWeight == 0 {
		cfg.Window.Monitor.MaxWeight = tpl.Window.Monitor.MaxWeight
	}
	if cfg.Window.Monitor.K == 0 {
		cfg.Window.Monitor.K = tpl.Window.Monitor.K
	}
	if cfg.Window.MaxArrivals == 0 {
		cfg.Window.MaxArrivals = tpl.Window.MaxArrivals
	}
	if cfg.Window.MaxAge == 0 {
		cfg.Window.MaxAge = tpl.Window.MaxAge
	}
	if cfg.Window.ApplyParallelism == 0 {
		cfg.Window.ApplyParallelism = tpl.Window.ApplyParallelism
	}
	if cfg.Window.Clock == nil {
		cfg.Window.Clock = tpl.Window.Clock
	}
	// SequentialFanout and SyncAck are NOT inherited: a bool cannot
	// distinguish "unset" from an explicit false, so the merged value is
	// exactly what the caller set. Callers that want the template's mode
	// pass the template itself as the base config (cmd/swserver,
	// cmd/swload) or resolve it before calling Create (the HTTP create
	// handler's tri-state sequential_fanout / sync_ack fields).
	if cfg.Ingest.MaxBatch == 0 {
		cfg.Ingest.MaxBatch = tpl.Ingest.MaxBatch
	}
	if cfg.Ingest.MaxDelay == 0 {
		cfg.Ingest.MaxDelay = tpl.Ingest.MaxDelay
	}
	if cfg.Ingest.QueueLen == 0 {
		cfg.Ingest.QueueLen = tpl.Ingest.QueueLen
	}
	if cfg.Ingest.MaxQueueEdges == 0 {
		cfg.Ingest.MaxQueueEdges = tpl.Ingest.MaxQueueEdges
	}
	if cfg.Ingest.MaxQueueBytes == 0 {
		cfg.Ingest.MaxQueueBytes = tpl.Ingest.MaxQueueBytes
	}
	if cfg.Ingest.MaxEdgesPerSec == 0 {
		cfg.Ingest.MaxEdgesPerSec = tpl.Ingest.MaxEdgesPerSec
	}
	if cfg.Ingest.BurstEdges == 0 {
		cfg.Ingest.BurstEdges = tpl.Ingest.BurstEdges
	}
	if cfg.Ingest.Clock == nil {
		cfg.Ingest.Clock = tpl.Ingest.Clock
	}
	return cfg
}

// reserve admits one window-to-be against MaxWindows and the closed flag.
// The caller must call release on any failure after reserve succeeded.
func (r *WindowRegistry) reserve() error {
	r.countMu.Lock()
	defer r.countMu.Unlock()
	if r.closed.Load() {
		return ErrRegistryClosed
	}
	if r.cfg.MaxWindows > 0 && r.count >= r.cfg.MaxWindows {
		return fmt.Errorf("%w (max %d)", ErrTooManyWindows, r.cfg.MaxWindows)
	}
	r.count++
	return nil
}

func (r *WindowRegistry) release() {
	r.countMu.Lock()
	r.count--
	r.countMu.Unlock()
}

// Create builds and registers a new window named name. Zero fields of cfg
// inherit from the registry template. Fails with ErrWindowExists if the
// name is taken.
func (r *WindowRegistry) Create(name string, cfg ServiceConfig) (*Service, error) {
	if err := ValidateWindowName(name); err != nil {
		return nil, err
	}
	cfg = mergeTemplate(cfg, r.cfg.Template)
	cfg.Window.Name = name
	cfg.Window.workers = r.workers
	cfg.Telemetry = r.metrics
	cfg.flight = r.flight
	if err := r.reserve(); err != nil {
		return nil, err
	}
	sh := r.shardFor(name)
	sh.mu.Lock()
	// Re-check closed under the shard lock (see the matching re-check
	// below for why this pairs safely with Close).
	if r.closed.Load() {
		sh.mu.Unlock()
		r.release()
		return nil, ErrRegistryClosed
	}
	if _, dup := sh.wins[name]; dup {
		sh.mu.Unlock()
		r.release()
		return nil, fmt.Errorf("%w: %q", ErrWindowExists, name)
	}
	// Publish a placeholder and construct outside the lock: building
	// monitors is O(N) and must not stall Get for unrelated windows in
	// this shard. The placeholder reserves the name (racing creates see a
	// duplicate); Get/List/Drop all treat nil svc as "no such window".
	h := &windowHandle{name: name, created: time.Now()}
	sh.wins[name] = h
	sh.mu.Unlock()

	svc, err := NewService(cfg)
	if err == nil {
		r.armWindow(name, svc)
	}
	if err == nil && r.persist != nil {
		// Open the window's log and attach the write-ahead recorder while
		// the window is still an unpublished placeholder: no producer can
		// reach it, so no edge is ever accepted un-logged.
		if perr := r.persist.addWindow(name, cfg, svc); perr != nil {
			svc.Close()
			svc, err = nil, perr
		}
	}

	sh.mu.Lock()
	if err != nil {
		delete(sh.wins, name)
		sh.mu.Unlock()
		r.release()
		return nil, err
	}
	// Re-check closed before publishing: a Close that stored the flag
	// before this load skipped our placeholder in its sweep (nil svc) and
	// expects us to clean up; one that stores after will sweep the
	// published window once we release the lock. Either way no window
	// outlives Close.
	if r.closed.Load() {
		delete(sh.wins, name)
		sh.mu.Unlock()
		svc.Close()
		if r.persist != nil {
			_ = r.persist.removeWindow(name, svc)
		}
		r.release()
		return nil, ErrRegistryClosed
	}
	// Commit to the manifest at the same moment the registry commits to
	// the name (under the shard lock, after the closed re-check): the
	// durable registry and the in-memory one can never disagree about a
	// successfully-created window.
	if r.persist != nil {
		if perr := r.persist.commitWindow(name); perr != nil {
			delete(sh.wins, name)
			sh.mu.Unlock()
			svc.Close()
			_ = r.persist.removeWindow(name, svc)
			r.release()
			return nil, perr
		}
	}
	h.svc = svc
	sh.mu.Unlock()
	return svc, nil
}

// Attach registers an externally-built Service under name. The registry
// takes ownership: Drop and Close will Close it. Attached windows are
// never persisted — the registry cannot serialize an external pipeline's
// config into the manifest — so on a durable registry they vanish at
// restart; use Create for durable windows.
func (r *WindowRegistry) Attach(name string, svc *Service) error {
	return r.attachService(name, svc)
}

// attachService is Attach without the persistence caveat — the recovery
// path registers windows whose durability state it has already wired.
func (r *WindowRegistry) attachService(name string, svc *Service) error {
	if err := ValidateWindowName(name); err != nil {
		return err
	}
	if err := r.reserve(); err != nil {
		return err
	}
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.closed.Load() { // same Close handshake as Create
		r.release()
		return ErrRegistryClosed
	}
	if _, dup := sh.wins[name]; dup {
		r.release()
		return fmt.Errorf("%w: %q", ErrWindowExists, name)
	}
	sh.wins[name] = &windowHandle{name: name, svc: svc, created: time.Now()}
	return nil
}

// Get returns the named window's service. A window whose Create is still
// constructing does not resolve yet.
func (r *WindowRegistry) Get(name string) (*Service, bool) {
	sh := r.shardFor(name)
	sh.mu.RLock()
	h, ok := sh.wins[name]
	var svc *Service
	if ok {
		svc = h.svc
	}
	sh.mu.RUnlock()
	if svc == nil {
		return nil, false
	}
	return svc, true
}

// Drop unregisters the named window and closes its pipeline (draining the
// ingester). The close runs outside the shard lock so a slow drain never
// blocks other registry operations; readers that fetched the service before
// the drop keep a usable (query-only, once closed) handle. On a durable
// registry the window's log directory and manifest entry are deleted —
// a dropped window does not come back at restart.
func (r *WindowRegistry) Drop(name string) error {
	sh := r.shardFor(name)
	sh.mu.Lock()
	h, ok := sh.wins[name]
	ok = ok && h.svc != nil // a mid-construction placeholder is not droppable
	if ok {
		delete(sh.wins, name)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrWindowNotFound, name)
	}
	r.release()
	// Flush before Close so every edge accepted up to the drop is applied
	// (Close's shutdown drain would cover this too; the explicit flush
	// keeps the applied-before-closed guarantee independent of it), then
	// delete the log only after the drained pipeline stops appending.
	h.svc.Flush()
	h.svc.Close()
	if r.persist != nil {
		// Pass the handle's service so a concurrent Create that re-won
		// this name while we were draining keeps its fresh log.
		return r.persist.removeWindow(name, h.svc)
	}
	return nil
}

// armWindow wires the registry's operational hooks into a window before it
// is published: the structured logger for quarantine/heal/rebuild events,
// and the fault-injection apply check when an injector is configured.
func (r *WindowRegistry) armWindow(name string, svc *Service) {
	wm := svc.Window()
	wm.setLogger(r.logger)
	if inj := r.cfg.FaultInjector; inj != nil {
		wm.setApplyCheck(func(mon string) { inj.CheckApply(name + "/" + mon) })
	}
}

// healthCounts classifies every live window: quarantined (≥1 monitor
// isolated after an apply panic — outranks degraded), degraded (serving
// without a working WAL), else healthy.
func (r *WindowRegistry) healthCounts() (healthy, degraded, quarantined int) {
	degradedSet := make(map[string]bool)
	if r.persist != nil {
		for _, n := range r.persist.degradedWindows() {
			degradedSet[n] = true
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name, h := range sh.wins {
			if h.svc == nil {
				continue
			}
			switch {
			case h.svc.Window().hasQuarantine():
				quarantined++
			case degradedSet[name]:
				degraded++
			default:
				healthy++
			}
		}
		sh.mu.RUnlock()
	}
	return healthy, degraded, quarantined
}

// DegradedWindows lists windows currently serving without a working WAL,
// sorted (nil on healthy or in-memory registries). The readiness probe's
// wal_writable check keys off it — and goes green again when the self-heal
// loop empties it.
func (r *WindowRegistry) DegradedWindows() []string {
	if r.persist == nil {
		return nil
	}
	return r.persist.degradedWindows()
}

// FaultInjector returns the configured injector (nil in production). The
// HTTP server gates /admin/fault on it.
func (r *WindowRegistry) FaultInjector() *fault.Injector { return r.cfg.FaultInjector }

// Checkpoint persists every window's expiry low-watermark to the manifest
// (after fsyncing the logs, so the watermarks never outrun the data) and
// prunes log segments that hold only expired arrivals. Fails with
// ErrNotPersistent on an in-memory registry. Also surfaces any WAL append
// error recorded since the last checkpoint.
func (r *WindowRegistry) Checkpoint() (CheckpointStats, error) {
	if r.persist == nil {
		return CheckpointStats{}, ErrNotPersistent
	}
	return r.persist.checkpoint()
}

// Persistent reports whether the registry has a durability layer.
func (r *WindowRegistry) Persistent() bool { return r.persist != nil }

// PersistenceStats snapshots the durability layer's counters; ok is false
// on an in-memory registry.
func (r *WindowRegistry) PersistenceStats() (PersistenceStats, bool) {
	if r.persist == nil {
		return PersistenceStats{}, false
	}
	return r.persist.stats(), true
}

// LastCheckpoint returns when the last checkpoint pass completed (boot
// time until one runs); ok is false on an in-memory registry. The
// readiness probe's checkpoint-age bound reads it.
func (r *WindowRegistry) LastCheckpoint() (time.Time, bool) {
	if r.persist == nil {
		return time.Time{}, false
	}
	return time.Unix(0, r.persist.lastCheckpointAt.Load()), true
}

// startCheckpointLoop runs Checkpoint on a fixed period until Close. A
// failed pass is retried with bounded exponential backoff (period/8 · 2^k,
// capped at the period) instead of waiting out the whole interval with
// durability progress stale — a transient stall (disk briefly full, fsync
// hiccup) recovers in a fraction of the checkpoint interval, while a hard
// failure degenerates to the normal cadence.
func (r *WindowRegistry) startCheckpointLoop(period time.Duration) {
	r.ckptStop = make(chan struct{})
	r.ckptWG.Add(1)
	go func() {
		defer r.ckptWG.Done()
		t := time.NewTimer(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Checkpoint records its own failures (checkpoint_errors
				// + last_error in PersistenceStats), so dropping the
				// error's content here loses nothing.
				_, err := r.Checkpoint()
				next := period
				if err != nil && !errors.Is(err, ErrRegistryClosed) {
					retry := period / 8
					for i := r.persist.ckptConsecFails.Load(); i > 1 && retry < period; i-- {
						retry *= 2
					}
					if retry < 10*time.Millisecond {
						retry = 10 * time.Millisecond
					}
					if retry < next {
						next = retry
					}
				}
				t.Reset(next)
			case <-r.ckptStop:
				return
			}
		}
	}()
}

// Len returns the number of live windows.
func (r *WindowRegistry) Len() int {
	r.countMu.Lock()
	defer r.countMu.Unlock()
	return r.count
}

// Names lists the registered window names, sorted.
func (r *WindowRegistry) Names() []string {
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name, h := range sh.wins {
			if h.svc != nil {
				out = append(out, name)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// List snapshots every window's info, sorted by name. Stats are gathered
// outside the shard locks.
func (r *WindowRegistry) List() []WindowInfo {
	var handles []*windowHandle
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, h := range sh.wins {
			if h.svc != nil {
				handles = append(handles, h)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	out := make([]WindowInfo, len(handles))
	for i, h := range handles {
		edges, batches := h.svc.IngestStats()
		out[i] = WindowInfo{
			Name:     h.name,
			N:        h.svc.Window().N(),
			Monitors: h.svc.Window().Monitors(),
			Created:  h.created,
			Window:   h.svc.Window().Stats(),
			Edges:    edges,
			Batches:  batches,
		}
	}
	return out
}

// Close drops every window (flushing and closing each pipeline) and
// rejects further creates. On a durable registry it then writes a final
// checkpoint (the drained pipelines' last appends and watermarks) and
// closes the logs. Idempotent.
func (r *WindowRegistry) Close() {
	r.countMu.Lock()
	already := r.closed.Swap(true)
	r.countMu.Unlock()
	if !already && r.ckptStop != nil {
		close(r.ckptStop)
		r.ckptWG.Wait()
	}
	var handles []*windowHandle
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for name, h := range sh.wins {
			// Skip mid-construction placeholders: their Create observes
			// the closed flag when it re-locks the shard and cleans up its
			// own reservation (see Create).
			if h.svc == nil {
				continue
			}
			handles = append(handles, h)
			delete(sh.wins, name)
		}
		sh.mu.Unlock()
	}
	for _, h := range handles {
		r.release()
		// Flush, then Close: edges accepted before shutdown — including
		// ones still buffered under the ingester's MaxDelay deadline —
		// are applied (and logged) rather than dropped. Close's shutdown
		// drain gives the same guarantee on its own; the explicit flush
		// pins it against future ingester changes.
		h.svc.Flush()
		h.svc.Close()
	}
	if !already && r.persist != nil {
		r.persist.closeAll()
	}
	if !already && r.flightSink != nil {
		r.flight.SetSlowSink(nil)
		_ = r.flightSink.Close()
	}
}
