package stream

import (
	"math/rand"
	"testing"
	"time"
)

// TestFanoutParallelMatchesSequential is the fan-out equivalence
// differential: two windows with identical configuration and seed — one
// applying batches to its monitors in parallel, one sequentially — must
// give identical answers to every query at every point of a randomized
// insert/expire schedule. The monitors are independent structures seeded
// identically, so any divergence means the parallel region leaked state
// (shared batch slice mutated, fan-out reordered against expiry, ...).
// CI runs this under -race, which additionally checks the fan-out region
// for data races between monitors.
func TestFanoutParallelMatchesSequential(t *testing.T) {
	const (
		n      = 120
		window = 400
		rounds = 60
	)
	base := WindowConfig{
		N:           n,
		Seed:        77,
		MaxArrivals: window,
		MaxAge:      time.Minute,
		Monitor:     MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3},
	}
	// Both windows share one fake clock so time-based expiry sees the
	// identical schedule.
	fc := NewFakeClock(time.Unix(0, 0))
	parCfg, seqCfg := base, base
	parCfg.Clock, seqCfg.Clock = fc, fc
	seqCfg.SequentialFanout = true
	par, err := NewWindowManager(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewWindowManager(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.mux.Sequential() || !seq.mux.Sequential() {
		t.Fatal("fan-out modes not wired through")
	}

	r := rand.New(rand.NewSource(13))
	for round := 0; round < rounds; round++ {
		// Random batch, occasionally laced with invalid edges (dropped by
		// both windows identically).
		batch := randomEdges(r, n, 1+r.Intn(80))
		if r.Intn(4) == 0 {
			batch = append(batch, Edge{U: 5, V: 5}, Edge{U: -1, V: 2}, Edge{U: 0, V: int32(n) + 3})
		}
		now := fc.Now()
		for i := range batch {
			batch[i].T = now
		}
		// Apply compacts the batch in place; give each window its own copy.
		batchCopy := make([]Edge, len(batch))
		copy(batchCopy, batch)
		par.Apply(batch)
		seq.Apply(batchCopy)

		// Random time advance; sometimes far enough to trigger age expiry.
		fc.Advance(time.Duration(r.Intn(20)) * time.Second)
		if r.Intn(3) == 0 {
			nExp := par.ExpireByAge(fc.Now())
			if got := seq.ExpireByAge(fc.Now()); got != nExp {
				t.Fatalf("round %d: expiry diverged: parallel %d, sequential %d", round, nExp, got)
			}
		}

		if a, b := par.WindowLen(), seq.WindowLen(); a != b {
			t.Fatalf("round %d: window len %d vs %d", round, a, b)
		}
		sa, sb := par.Stats(), seq.Stats()
		sa.ApplyNS, sb.ApplyNS = 0, 0 // timing differs by construction
		if sa != sb {
			t.Fatalf("round %d: stats diverged: %+v vs %+v", round, sa, sb)
		}
		cmp := func(what string, a, b any, err1, err2 error) {
			if err1 != nil || err2 != nil {
				t.Fatalf("round %d: %s errored: %v / %v", round, what, err1, err2)
			}
			if a != b {
				t.Fatalf("round %d: %s = %v (parallel) vs %v (sequential)", round, what, a, b)
			}
		}
		{
			a, e1 := par.NumComponents()
			b, e2 := seq.NumComponents()
			cmp("components", a, b, e1, e2)
		}
		{
			a, e1 := par.IsBipartite()
			b, e2 := seq.IsBipartite()
			cmp("bipartite", a, b, e1, e2)
		}
		{
			a, e1 := par.MSFWeight()
			b, e2 := seq.MSFWeight()
			cmp("msfweight", a, b, e1, e2)
		}
		{
			a, e1 := par.HasCycle()
			b, e2 := seq.HasCycle()
			cmp("cycle", a, b, e1, e2)
		}
		{
			a, e1 := par.CertificateSize()
			b, e2 := seq.CertificateSize()
			cmp("certsize", a, b, e1, e2)
		}
		if round%10 == 9 { // the min-cut check is the expensive one
			a, e1 := par.EdgeConnectivityUpToK()
			b, e2 := seq.EdgeConnectivityUpToK()
			cmp("edge connectivity", a, b, e1, e2)
		}
		for trial := 0; trial < 10; trial++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			a, e1 := par.IsConnected(u, v)
			b, e2 := seq.IsConnected(u, v)
			cmp("connected", a, b, e1, e2)
		}
	}
}
