package stream

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"

	"repro/internal/telemetry"
)

// newTelemetryServer boots a registry with a telemetry bundle, one default
// window, and the HTTP front-end — the full instrumented stack.
func newTelemetryServer(t *testing.T, cfg RegistryConfig, srvCfg ServerConfig) (*Server, *WindowRegistry) {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Template.Window.N == 0 {
		cfg.Template.Window.N = 64
	}
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	if _, err := reg.Create(DefaultWindow, ServiceConfig{}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	return NewRegistryServer(reg, srvCfg), reg
}

// TestMetricsEndToEnd drives edges through the HTTP server and checks that
// /metrics serves valid exposition text whose counters reflect the traffic
// across every pipeline stage the tentpole instruments.
func TestMetricsEndToEnd(t *testing.T) {
	srv, reg := newTelemetryServer(t, RegistryConfig{}, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"edges":[{"u":1,"v":2},{"u":2,"v":3},{"u":3,"v":4}]}`
	res, err := ts.Client().Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /edges: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != 202 {
		t.Fatalf("POST /edges: status %d", res.StatusCode)
	}
	svc, _ := reg.Get(DefaultWindow)
	svc.Flush()
	if _, err := ts.Client().Get(ts.URL + "/query/components"); err != nil {
		t.Fatalf("GET components: %v", err)
	}

	res, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	exp, err := telemetry.ParseExposition(res.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatalf("validate exposition: %v", err)
	}

	wantValue := func(name string, labels map[string]string, want float64) {
		t.Helper()
		got, ok := exp.Value(name, labels)
		if !ok {
			t.Fatalf("metric %s%v missing", name, labels)
		}
		if got != want {
			t.Errorf("%s%v = %v, want %v", name, labels, got, want)
		}
	}
	wantValue("sw_ingest_edges_total", nil, 3)
	wantValue("sw_apply_edges_total", nil, 3)
	wantValue("sw_windows_live", nil, 1)
	wantValue("sw_ingest_queue_batches", nil, 0)
	wantValue("sw_ingest_queue_edges", nil, 0)

	// The batch lifecycle histograms all saw the one flushed batch.
	for _, name := range []string{
		"sw_ingest_queue_wait_seconds_count",
		"sw_apply_stage_seconds_count",
		"sw_apply_fanout_seconds_count",
		"sw_apply_batch_seconds_count",
	} {
		if got, ok := exp.Value(name, nil); !ok || got < 1 {
			t.Errorf("%s = %v (present=%v), want >= 1", name, got, ok)
		}
	}
	// Per-monitor apply histograms exist for every monitor, labeled.
	for _, mon := range AllMonitors() {
		lbl := map[string]string{"monitor": mon}
		if got, ok := exp.Value("sw_monitor_apply_seconds_count", lbl); !ok || got < 1 {
			t.Errorf("sw_monitor_apply_seconds_count{monitor=%s} = %v (present=%v), want >= 1", mon, got, ok)
		}
	}
	// HTTP route histograms carry the pattern label.
	if got, ok := exp.Value("sw_http_request_seconds_count", map[string]string{"route": "POST /edges"}); !ok || got != 1 {
		t.Errorf(`sw_http_request_seconds_count{route="POST /edges"} = %v (present=%v), want 1`, got, ok)
	}
	if _, ok := exp.Value("sw_http_request_seconds_count", map[string]string{"route": "GET /metrics"}); ok {
		t.Error("/metrics must not record itself into the request histograms")
	}
}

// TestMetricsAndStatsAgree pins the "one source of truth" property: the
// per-monitor apply p99 computed from the /metrics histogram buckets must
// equal the p99 the /stats JSON reports, because both read the same
// underlying bucket counts (shared per-name histograms aggregate across
// windows; with a single window they see identical observations).
func TestMetricsAndStatsAgree(t *testing.T) {
	srv, reg := newTelemetryServer(t, RegistryConfig{}, ServerConfig{})
	svc, _ := reg.Get(DefaultWindow)
	for i := 0; i < 50; i++ {
		if err := svc.Submit([]Edge{{U: int32(i % 60), V: int32((i + 1) % 60)}}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	exp, err := telemetry.ParseExposition(res.Body)
	if err != nil {
		t.Fatal(err)
	}

	for _, ms := range svc.Window().MonitorStats() {
		lbl := map[string]string{"monitor": ms.Name}
		count, ok := exp.Value("sw_monitor_apply_seconds_count", lbl)
		if !ok {
			t.Fatalf("no apply histogram for %s", ms.Name)
		}
		if int64(count) != ms.Ops {
			t.Errorf("%s: /metrics count %v != /stats ops %d", ms.Name, count, ms.Ops)
		}
		sum, _ := exp.Value("sw_monitor_apply_seconds_sum", lbl)
		if gotNS := int64(sum * 1e9); abs64(gotNS-ms.ApplyNS) > ms.ApplyNS/100+1000 {
			t.Errorf("%s: /metrics sum %dns != /stats apply_ns %d", ms.Name, gotNS, ms.ApplyNS)
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestMetricNameLint walks every family a fully-wired process registers and
// re-checks it against the naming rules — the registration-time panics
// enforce this too, but only on code paths a given run exercises; this test
// wires everything (durable registry, server, per-route histograms) and
// sweeps the result.
func TestMetricNameLint(t *testing.T) {
	treg := telemetry.NewRegistry()
	reg, _, err := OpenRegistry(RegistryConfig{
		Telemetry: treg,
		Template:  ServiceConfig{Window: WindowConfig{N: 32}},
		Persistence: &PersistenceConfig{
			Dir: t.TempDir(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Create("w", ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := ts.Client().Get(ts.URL + "/windows/w/query/summary"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	fams := treg.Families()
	if len(fams) < 25 {
		t.Fatalf("only %d families registered — wiring is missing whole subsystems", len(fams))
	}
	for _, f := range fams {
		if err := telemetry.CheckMetricName(f.Name, f.Type); err != nil {
			t.Errorf("family %q: %v", f.Name, err)
		}
		if !strings.HasPrefix(f.Name, "sw_") {
			t.Errorf("family %q: missing sw_ namespace prefix", f.Name)
		}
		if f.Help == "" {
			t.Errorf("family %q: no help text", f.Name)
		}
	}
}

// TestReadyzFlipsOnWALFailure pins the readiness semantics: ready on a
// healthy durable registry, 503 with a wal_writable failure while a
// window is in the degraded durability state — and back to 200 once the
// self-heal loop re-arms the log, with no restart.
func TestReadyzFlipsOnWALFailure(t *testing.T) {
	treg := telemetry.NewRegistry()
	inj := fault.NewInjector(nil, 1)
	reg, _, err := OpenRegistry(RegistryConfig{
		Telemetry:     treg,
		FaultInjector: inj,
		Template:      ServiceConfig{Window: WindowConfig{N: 32}},
		Persistence:   &PersistenceConfig{Dir: t.TempDir(), HealRetry: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Create(DefaultWindow, ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() (int, map[string]any) {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, body
	}

	if code, body := readyz(); code != 200 || body["ready"] != true {
		t.Fatalf("healthy /readyz = %d %v, want 200 ready", code, body)
	}

	// Break the WAL for real: segment and snapshot-temp writes fail, so
	// the next append degrades the window and the heal loop cannot close
	// the gap. /readyz must flip to 503 and name the failing check.
	for _, rule := range []fault.Rule{
		{ID: "seg", Op: fault.OpWrite, Path: ".seg", Kind: fault.KindEIO},
		{ID: "snap", Op: fault.OpWrite, Path: ".snap-tmp-", Kind: fault.KindEIO},
	} {
		if _, err := inj.Set(rule); err != nil {
			t.Fatal(err)
		}
	}
	svc, _ := reg.Get(DefaultWindow)
	if err := svc.Submit([]Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	code, body := readyz()
	if code != 503 || body["ready"] != false {
		t.Fatalf("post-failure /readyz = %d %v, want 503 not-ready", code, body)
	}
	found := false
	for _, c := range body["checks"].([]any) {
		m := c.(map[string]any)
		if m["name"] == "wal_writable" && m["ok"] == false {
			found = true
			if !strings.Contains(m["detail"].(string), DefaultWindow) {
				t.Errorf("wal_writable detail %q does not name the degraded window", m["detail"])
			}
		}
	}
	if !found {
		t.Fatalf("no failing wal_writable check in %v", body["checks"])
	}

	// The check is live, not sticky: clearing the fault lets the heal
	// loop re-arm the log, and /readyz returns to 200 without a restart.
	inj.Reset()
	healed := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		if code, _ := readyz(); code == 200 {
			healed = true
			break
		}
	}
	if !healed {
		t.Fatal("/readyz still 503 10s after the WAL fault cleared; heal never completed")
	}

	// /healthz (liveness) stays 200 throughout: the process is up even
	// when it should be drained of traffic.
	res, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/healthz = %d during WAL failure, want 200", res.StatusCode)
	}
}

// TestReadyzRecoveryGate simulates an embedder's warm-up: flipping the
// recovery_complete gate takes /readyz to 503 and back.
func TestReadyzRecoveryGate(t *testing.T) {
	srv, _ := newTelemetryServer(t, RegistryConfig{}, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func() int {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if got := status(); got != 200 {
		t.Fatalf("/readyz = %d, want 200", got)
	}
	srv.Health().SetGate("recovery_complete", false)
	if got := status(); got != 503 {
		t.Fatalf("/readyz with recovery gate down = %d, want 503", got)
	}
	srv.Health().SetGate("recovery_complete", true)
	if got := status(); got != 200 {
		t.Fatalf("/readyz after gate restored = %d, want 200", got)
	}
}

// TestReadyzQueueBudget drives the ingest queue over the budget with a
// blocked sink and checks the queue_budget probe trips.
func TestReadyzQueueBudget(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once bool
	ing := NewIngester(IngesterConfig{MaxBatch: 1, QueueLen: 4}, func([]Edge) error {
		if !once {
			once = true
			close(first)
		}
		<-release
		return nil
	})
	defer func() { close(release); ing.Close() }()
	for i := 0; i < 5; i++ { // 1 in the sink + 4 filling the queue
		if err := ing.Submit(Edge{U: 1, V: 2}); err != nil {
			t.Fatal(err)
		}
	}
	<-first
	batches, edges := ing.QueueDepth()
	if batches != 4 || edges != 4 {
		t.Fatalf("QueueDepth = (%d, %d), want (4, 4)", batches, edges)
	}
	if ing.QueueCap() != 4 {
		t.Fatalf("QueueCap = %d, want 4", ing.QueueCap())
	}
}

// TestIngestHotPathAllocs pins the instrumented submit path: Submit with
// telemetry ON must not allocate beyond the pre-existing batch copy.
func TestIngestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := NewMetrics(telemetry.NewRegistry())
	sunk := func([]Edge) error { return nil }
	ing := newIngesterWith(IngesterConfig{MaxBatch: 4, QueueLen: 1 << 16}, sunk, m, nil)
	defer ing.Close()
	batch := []Edge{{U: 1, V: 2}}
	allocs := testing.AllocsPerRun(200, func() {
		if err := ing.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc: the defensive copy SubmitBatch has always made. The
	// telemetry must add zero.
	if allocs > 1 {
		t.Fatalf("SubmitBatch with telemetry = %.1f allocs/op, want <= 1", allocs)
	}
}
