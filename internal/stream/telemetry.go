package stream

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// processStart anchors sw_uptime_seconds; package init is close enough to
// process start for an uptime gauge.
var processStart = time.Now()

// Metrics bundles every stream-layer instrument. The bundle is resolved
// once at wiring time (NewMetrics) and handed to each pipeline component,
// which holds the instruments it needs as direct fields — the hot path
// never touches the registry, a map, or a lock.
//
// A nil *Metrics (or the package-level noMetrics zero bundle) is the
// "compiled-out" recorder: every instrument field is nil and every
// observation is a nil-check branch and nothing else. This is what
// `swload -telemetry-compare` benchmarks the instrumented build against.
//
// Cardinality discipline: windows come and go under tenant control, so no
// metric is labeled by window name — per-window numbers live in /stats,
// and the Prometheus families aggregate across windows. The only label in
// the bundle is the monitor name, whose universe is the fixed AllMonitors
// set, and the HTTP route pattern, whose universe is the route table.
type Metrics struct {
	reg *telemetry.Registry

	// Ingester.
	ingestEdges    *telemetry.Counter
	queueBatches   *telemetry.Gauge
	queueEdges     *telemetry.Gauge
	queueBytes     *telemetry.Gauge
	queueWait      *telemetry.Histogram
	flushEdges     *telemetry.Histogram
	flushThreshold *telemetry.Counter
	flushDeadline  *telemetry.Counter
	flushManual    *telemetry.Counter
	flushShutdown  *telemetry.Counter

	// Admission control, indexed by admitReason (fixed label universe:
	// edges, bytes, rate).
	rejectedBatches [admitReasons]*telemetry.Counter
	rejectedEdges   [admitReasons]*telemetry.Counter

	// Batch lifecycle (WindowManager.Apply).
	stageSeconds   *telemetry.Histogram
	fanoutSeconds  *telemetry.Histogram
	batchSeconds   *telemetry.Histogram
	batchesApplied *telemetry.Counter
	edgesApplied   *telemetry.Counter
	edgesDropped   *telemetry.Counter
	edgesExpired   *telemetry.Counter
	applyInflight  *telemetry.Gauge

	// Per-monitor fan-out, labeled by the fixed monitor-name set.
	monApply map[string]*telemetry.Histogram
	monWait  map[string]*telemetry.Histogram

	// Fault isolation: apply-panic quarantines and completed rebuilds.
	// Counters, not per-monitor gauges — live quarantine state is served by
	// sw_window_health and /stats (cardinality discipline).
	monQuarantines *telemetry.Counter
	monRebuilds    *telemetry.Counter

	// WAL / durability.
	walAppendSeconds  *telemetry.Histogram
	walFsyncSeconds   *telemetry.Histogram
	walAppends        *telemetry.Counter
	walBytes          *telemetry.Counter
	walFsyncs         *telemetry.Counter
	walRepairs        *telemetry.Counter
	walRepairedBytes  *telemetry.Counter
	checkpointSeconds *telemetry.Histogram
	checkpoints       *telemetry.Counter
	snapshots         *telemetry.Counter
	snapshotEdges     *telemetry.Counter

	// Recovery.
	recoveryRecords *telemetry.Counter
	recoveryEdges   *telemetry.Counter

	// HTTP front-end.
	httpInflight *telemetry.Gauge
}

// noMetrics is the shared disabled bundle: every instrument nil, every
// observation a no-op. Pipeline components default to it so observation
// sites never need their own nil checks on the bundle itself.
var noMetrics = &Metrics{}

// NewMetrics registers the stream-layer metric families on reg and returns
// the wired bundle. Call once per process; re-calling with the same
// registry returns instruments backed by the same families (registration
// is get-or-create).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{reg: reg}

	m.ingestEdges = reg.Counter("sw_ingest_edges_total",
		"Edges accepted by Submit across all windows.")
	m.queueBatches = reg.Gauge("sw_ingest_queue_batches",
		"Submitted batches waiting in ingest queues (all windows).")
	m.queueEdges = reg.Gauge("sw_ingest_queue_edges",
		"Edges inside queued submissions (all windows).")
	m.queueBytes = reg.Gauge("sw_ingest_queue_bytes",
		"In-memory bytes of queued edges (edges × sizeof(Edge), all windows).")
	m.queueWait = reg.Histogram("sw_ingest_queue_wait_seconds",
		"Time a submission waited in the ingest queue before the flush goroutine absorbed it.")
	m.flushEdges = reg.ValueHistogram("sw_ingest_flush_edges",
		"Edges per flushed batch.")
	reason := func(r string) *telemetry.Counter {
		return reg.Counter("sw_ingest_flushes_total",
			"Batches flushed to the apply path, by trigger.", telemetry.L("reason", r))
	}
	m.flushThreshold = reason("threshold")
	m.flushDeadline = reason("deadline")
	m.flushManual = reason("manual")
	m.flushShutdown = reason("shutdown")
	for r := admitReason(0); r < admitReasons; r++ {
		m.rejectedBatches[r] = reg.Counter("sw_ingest_rejected_total",
			"Submissions turned away by admission control, by cause.",
			telemetry.L("reason", admitReasonNames[r]))
		m.rejectedEdges[r] = reg.Counter("sw_ingest_rejected_edges_total",
			"Edges inside submissions turned away by admission control, by cause.",
			telemetry.L("reason", admitReasonNames[r]))
	}

	m.stageSeconds = reg.Histogram("sw_apply_stage_seconds",
		"Batch staging under the coordinator lock: validate, clamp, ring append, WAL append, expiry computation.")
	m.fanoutSeconds = reg.Histogram("sw_apply_fanout_seconds",
		"Monitor fan-out wall time per staged op (max across monitors under parallel fan-out).")
	m.batchSeconds = reg.Histogram("sw_apply_batch_seconds",
		"Whole batch apply: staging plus fan-out.")
	m.batchesApplied = reg.Counter("sw_apply_batches_total",
		"Staged ops carrying at least one valid edge.")
	m.edgesApplied = reg.Counter("sw_apply_edges_total",
		"Valid edges applied to the window monitors.")
	m.edgesDropped = reg.Counter("sw_apply_edges_dropped_total",
		"Edges dropped at staging (endpoint out of range or self-loop).")
	m.edgesExpired = reg.Counter("sw_expired_edges_total",
		"Arrivals expired out of the sliding window (count cap and age policy).")
	m.applyInflight = reg.Gauge("sw_apply_inflight",
		"Monitor fan-outs currently in flight (all windows).")

	m.monApply = make(map[string]*telemetry.Histogram)
	m.monWait = make(map[string]*telemetry.Histogram)
	for _, name := range AllMonitors() {
		m.monApply[name] = reg.Histogram("sw_monitor_apply_seconds",
			"Time the writer held one monitor's write lock per staged op — the window a query on that monitor can block for.",
			telemetry.L("monitor", name))
		m.monWait[name] = reg.Histogram("sw_monitor_wait_seconds",
			"Time the writer waited to acquire one monitor's write lock (readers holding it out).",
			telemetry.L("monitor", name))
	}

	m.monQuarantines = reg.Counter("sw_monitor_quarantines_total",
		"Monitors quarantined after a panic during batch apply.")
	m.monRebuilds = reg.Counter("sw_monitor_rebuilds_total",
		"Quarantined monitors replaced by a completed background rebuild.")

	m.walAppendSeconds = reg.Histogram("sw_wal_append_seconds",
		"WAL record write latency (encode + write, excluding fsync).")
	m.walFsyncSeconds = reg.Histogram("sw_wal_fsync_seconds",
		"WAL fsync latency.")
	m.walAppends = reg.Counter("sw_wal_appends_total",
		"WAL records written.")
	m.walBytes = reg.Counter("sw_wal_appended_bytes_total",
		"Encoded bytes appended to WAL segments.")
	m.walFsyncs = reg.Counter("sw_wal_fsyncs_total",
		"WAL fsync calls.")
	m.walRepairs = reg.Counter("sw_wal_torn_tail_repairs_total",
		"Segment tails truncated at open because of a torn or corrupt record.")
	m.walRepairedBytes = reg.Counter("sw_wal_repaired_bytes_total",
		"Bytes discarded by torn-tail repairs.")
	m.checkpointSeconds = reg.Histogram("sw_checkpoint_seconds",
		"Whole checkpoint pass duration (snapshots, manifest, segment GC).")
	m.checkpoints = reg.Counter("sw_checkpoints_total",
		"Completed checkpoint passes.")
	m.snapshots = reg.Counter("sw_snapshots_total",
		"Live-edge snapshot files committed.")
	m.snapshotEdges = reg.Counter("sw_snapshot_edges_total",
		"Live edges captured into committed snapshots.")

	m.recoveryRecords = reg.Counter("sw_recovery_replayed_records_total",
		"WAL records replayed during boot recovery.")
	m.recoveryEdges = reg.Counter("sw_recovery_replayed_edges_total",
		"Edges replayed during boot recovery.")

	m.httpInflight = reg.Gauge("sw_http_inflight",
		"HTTP requests currently being served.")

	// Identification families: which build is this, and how long has it
	// been up — the first two questions of any incident. The build info is
	// the standard value-is-1 gauge whose labels carry the metadata.
	reg.Gauge("sw_build_info",
		"Build metadata; the value is always 1.",
		telemetry.L("go_version", runtime.Version()),
		telemetry.L("gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0))),
		telemetry.L("revision", buildRevision()),
	).Set(1)
	reg.GaugeFunc("sw_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return time.Since(processStart).Seconds() })
	return m
}

// buildRevision extracts the VCS revision stamped into the binary
// ("unknown" for test binaries and non-VCS builds, "-dirty" appended for
// modified trees).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// on reports whether the bundle records anything: only bundles built by
// NewMetrics do. Sites that would pay for a measurement even with nil-safe
// instruments (an extra clock read, a map lookup) gate on it.
func (m *Metrics) on() bool { return m != nil && m.reg != nil }

// orNoop normalizes a possibly-nil bundle so components can hold it
// unconditionally.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return noMetrics
	}
	return m
}

// Registry exposes the underlying telemetry registry (nil when disabled) —
// the server mounts its Handler at /metrics.
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// monitorApplyHist / monitorWaitHist resolve the per-monitor histograms;
// nil (a no-op instrument) for unknown monitors or a disabled bundle.
func (m *Metrics) monitorApplyHist(name string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.monApply[name]
}

func (m *Metrics) monitorWaitHist(name string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.monWait[name]
}

// ExemplarView is one histogram family's p-max exemplar for /stats: the
// largest observation the family has seen and the flight-recorder trace
// that produced it, resolvable at /debug/flight.
type ExemplarView struct {
	Family  string  `json:"family"`
	Monitor string  `json:"monitor,omitempty"`
	Seconds float64 `json:"seconds"`
	TraceID string  `json:"trace_id"`
}

// Exemplars snapshots the max exemplar of every trace-tagged histogram
// family (batch lifecycle and per-monitor fan-out); families that never
// saw a traced observation are omitted.
func (m *Metrics) Exemplars() []ExemplarView {
	if !m.on() {
		return nil
	}
	var out []ExemplarView
	add := func(family, monitor string, h *telemetry.Histogram) {
		ex := h.MaxExemplar()
		if ex.TraceID == 0 {
			return
		}
		out = append(out, ExemplarView{
			Family:  family,
			Monitor: monitor,
			Seconds: float64(ex.Value) / 1e9,
			TraceID: trace.FormatID(ex.TraceID),
		})
	}
	add("sw_apply_stage_seconds", "", m.stageSeconds)
	add("sw_apply_fanout_seconds", "", m.fanoutSeconds)
	add("sw_apply_batch_seconds", "", m.batchSeconds)
	for _, name := range AllMonitors() {
		add("sw_monitor_apply_seconds", name, m.monApply[name])
		add("sw_monitor_wait_seconds", name, m.monWait[name])
	}
	return out
}

// routeHist registers (or fetches) the per-route request latency histogram.
// Returns nil — a no-op instrument — when the bundle is disabled.
func (m *Metrics) routeHist(route string) *telemetry.Histogram {
	if !m.on() {
		return nil
	}
	return m.reg.Histogram("sw_http_request_seconds",
		"HTTP request latency by route pattern.", telemetry.L("route", route))
}
