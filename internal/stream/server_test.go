package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sw"
)

func newTestServer(t *testing.T, n int) (*httptest.Server, *Service) {
	t.Helper()
	svc, err := NewService(ServiceConfig{
		Window: WindowConfig{N: n, Seed: 5, Monitor: MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3}},
		Ingest: IngesterConfig{MaxBatch: 64, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postEdges(t *testing.T, url string, edges []edgeJSON) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(edgesRequest{Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestServerEndToEnd round-trips every endpoint over HTTP and cross-checks
// each answer against direct internal/sw structures fed the same edges.
// Queries here are exact window-graph properties, so they agree with the
// oracle regardless of batch partitioning inside the ingester.
func TestServerEndToEnd(t *testing.T) {
	const n = 150
	ts, svc := newTestServer(t, n)

	r := rand.New(rand.NewSource(3))
	all := randomEdges(r, n, 500)
	for i := 0; i < len(all); i += 50 {
		chunk := all[i : i+50]
		wire := make([]edgeJSON, len(chunk))
		for j, e := range chunk {
			wire[j] = edgeJSON{U: e.U, V: e.V, W: e.W}
		}
		code, resp := postEdges(t, ts.URL, wire)
		if code != http.StatusAccepted {
			t.Fatalf("POST /edges = %d (%v)", code, resp)
		}
		if got := resp["accepted"].(float64); int(got) != len(chunk) {
			t.Fatalf("accepted = %v, want %d", got, len(chunk))
		}
	}
	svc.Flush()

	// Oracle: same edges, one batch (answers don't depend on batching).
	conn := sw.NewConnEager(n, 321)
	bip := sw.NewBipartite(n, 322)
	amsf := sw.NewApproxMSF(n, 0.25, 1<<10, 323)
	kc := sw.NewKCert(n, 3, 324)
	cyc := sw.NewCycleFree(n, 325)
	plain := make([]sw.StreamEdge, len(all))
	weighted := make([]sw.WeightedStreamEdge, len(all))
	for i, e := range all {
		plain[i] = sw.StreamEdge{U: e.U, V: e.V}
		weighted[i] = sw.WeightedStreamEdge{U: e.U, V: e.V, W: e.W}
	}
	conn.BatchInsert(plain)
	bip.BatchInsert(plain)
	amsf.BatchInsert(weighted)
	kc.BatchInsert(plain)
	cyc.BatchInsert(plain)

	var comp struct {
		Components int `json:"components"`
	}
	if code := getJSON(t, ts.URL+"/query/components", &comp); code != 200 {
		t.Fatalf("components status %d", code)
	}
	if want := conn.NumComponents(); comp.Components != want {
		t.Fatalf("components = %d, want %d", comp.Components, want)
	}

	var bp struct {
		Bipartite bool `json:"bipartite"`
	}
	if code := getJSON(t, ts.URL+"/query/bipartite", &bp); code != 200 {
		t.Fatalf("bipartite status %d", code)
	}
	if want := bip.IsBipartite(); bp.Bipartite != want {
		t.Fatalf("bipartite = %v, want %v", bp.Bipartite, want)
	}

	var mw struct {
		Weight float64 `json:"weight"`
	}
	if code := getJSON(t, ts.URL+"/query/msfweight", &mw); code != 200 {
		t.Fatalf("msfweight status %d", code)
	}
	if want := amsf.Weight(); mw.Weight != want {
		t.Fatalf("msfweight = %v, want %v", mw.Weight, want)
	}

	var cy struct {
		Cycle bool `json:"cycle"`
	}
	if code := getJSON(t, ts.URL+"/query/cycle", &cy); code != 200 {
		t.Fatalf("cycle status %d", code)
	}
	if want := cyc.HasCycle(); cy.Cycle != want {
		t.Fatalf("cycle = %v, want %v", cy.Cycle, want)
	}

	var kcResp struct {
		Size int `json:"size"`
		EC   int `json:"edge_connectivity_up_to_k"`
	}
	if code := getJSON(t, ts.URL+"/query/kcert", &kcResp); code != 200 {
		t.Fatalf("kcert status %d", code)
	}
	if want := kc.EdgeConnectivityUpToK(); kcResp.EC != want {
		t.Fatalf("edge connectivity = %d, want %d", kcResp.EC, want)
	}
	if kcResp.Size <= 0 || kcResp.Size > 3*(n-1) {
		t.Fatalf("certificate size %d out of range (0, %d]", kcResp.Size, 3*(n-1))
	}

	for trial := 0; trial < 25; trial++ {
		u, v := r.Intn(n), r.Intn(n)
		var cr struct {
			Connected bool `json:"connected"`
		}
		url := fmt.Sprintf("%s/query/connected?u=%d&v=%d", ts.URL, u, v)
		if code := getJSON(t, url, &cr); code != 200 {
			t.Fatalf("connected status %d", code)
		}
		if want := conn.IsConnected(int32(u), int32(v)); cr.Connected != want {
			t.Fatalf("connected(%d,%d) = %v, want %v", u, v, cr.Connected, want)
		}
	}

	var stats struct {
		Window    WindowStats                `json:"window"`
		Endpoints map[string]LatencySnapshot `json:"endpoints"`
		Monitors  []string                   `json:"monitors"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Window.Arrivals != int64(len(all)) {
		t.Fatalf("stats arrivals = %d, want %d", stats.Window.Arrivals, len(all))
	}
	if len(stats.Monitors) != len(AllMonitors()) {
		t.Fatalf("monitors = %v", stats.Monitors)
	}
	if ep, ok := stats.Endpoints["POST /edges"]; !ok || ep.Count != 10 {
		t.Fatalf("POST /edges latency count = %+v", stats.Endpoints)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	ts, _ := newTestServer(t, 10)

	cases := []struct {
		name  string
		edges []edgeJSON
	}{
		{"out of range", []edgeJSON{{U: 0, V: 99}}},
		{"negative", []edgeJSON{{U: -2, V: 3}}},
		{"self loop", []edgeJSON{{U: 4, V: 4}}},
		{"bad time", []edgeJSON{{U: 0, V: 1, T: "yesterday"}}},
		{"empty", nil},
	}
	for _, tc := range cases {
		if code, _ := postEdges(t, ts.URL, tc.edges); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
	}

	// The legacy single-window server caps its hidden registry at one
	// window: admin creates are rejected, not leaked.
	if code, _ := doJSON(t, "POST", ts.URL+"/windows", `{"name":"x","n":10}`); code != http.StatusTooManyRequests {
		t.Errorf("create on single-window server = %d, want 429", code)
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", resp.StatusCode)
	}

	// Bad / missing query parameters.
	for _, url := range []string{
		ts.URL + "/query/connected",
		ts.URL + "/query/connected?u=1",
		ts.URL + "/query/connected?u=1&v=abc",
		ts.URL + "/query/connected?u=1&v=50",
	} {
		if code := getJSON(t, url, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, code)
		}
	}

	// Nothing accepted by any of the rejected requests.
	var stats struct {
		Window WindowStats `json:"window"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Window.Arrivals != 0 {
		t.Fatalf("arrivals = %d after rejected input", stats.Window.Arrivals)
	}
}

// newRegistryTestServer serves a registry whose template matches
// newTestServer's window, with the default window pre-created.
func newRegistryTestServer(t *testing.T, n int, cfg ServerConfig) (*httptest.Server, *WindowRegistry) {
	t.Helper()
	reg := NewRegistry(RegistryConfig{
		Shards: 4,
		Template: ServiceConfig{
			Window: WindowConfig{N: n, Seed: 5, Monitor: MonitorConfig{Eps: 0.25, MaxWeight: 1 << 10, K: 3}},
			Ingest: IngesterConfig{MaxBatch: 64, MaxDelay: time.Millisecond},
		},
	})
	if _, err := reg.Create(DefaultWindow, ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, cfg).Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, reg
}

func doJSON(t *testing.T, method, url string, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestServerWindowsCRUD drives the registry admin endpoints and the
// namespaced data plane end-to-end: create, list, ingest + query through
// /windows/{name}/..., drop, and the error statuses.
func TestServerWindowsCRUD(t *testing.T) {
	ts, reg := newRegistryTestServer(t, 50, ServerConfig{})

	code, resp := doJSON(t, "POST", ts.URL+"/windows", `{"name":"t1","n":20,"monitors":["conn","bipartite"]}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d (%v)", code, resp)
	}
	if resp["n"].(float64) != 20 {
		t.Fatalf("created n = %v", resp["n"])
	}
	// Duplicate → 409, bad name → 400, unknown monitor → 400.
	if code, _ := doJSON(t, "POST", ts.URL+"/windows", `{"name":"t1"}`); code != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/windows", `{"name":"a/b"}`); code != http.StatusBadRequest {
		t.Fatalf("bad name = %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/windows", `{"name":"t2","monitors":["nope"]}`); code != http.StatusBadRequest {
		t.Fatalf("bad monitor = %d, want 400", code)
	}

	var list struct {
		Count   int          `json:"count"`
		Windows []WindowInfo `json:"windows"`
	}
	if code := getJSON(t, ts.URL+"/windows", &list); code != 200 {
		t.Fatalf("list = %d", code)
	}
	if list.Count != 2 || len(list.Windows) != 2 || list.Windows[1].Name != "t1" {
		t.Fatalf("list = %+v", list)
	}

	// Ingest into t1 only; the default window must stay empty.
	if code, resp := doJSON(t, "POST", ts.URL+"/windows/t1/edges", `{"edges":[{"u":0,"v":1},{"u":1,"v":2}]}`); code != http.StatusAccepted {
		t.Fatalf("post to t1 = %d (%v)", code, resp)
	}
	svc, _ := reg.Get("t1")
	svc.Flush()
	var cr struct {
		Connected bool `json:"connected"`
	}
	if code := getJSON(t, ts.URL+"/windows/t1/query/connected?u=0&v=2", &cr); code != 200 || !cr.Connected {
		t.Fatalf("t1 connectivity = %d %+v", code, cr)
	}
	var st struct {
		Name   string      `json:"name"`
		Window WindowStats `json:"window"`
	}
	if code := getJSON(t, ts.URL+"/windows/t1/stats", &st); code != 200 || st.Name != "t1" || st.Window.Arrivals != 2 {
		t.Fatalf("t1 stats = %d %+v", code, st)
	}
	if code := getJSON(t, ts.URL+"/windows/default/stats", &st); code != 200 || st.Window.Arrivals != 0 {
		t.Fatalf("default stats = %d %+v (tenants leaked)", code, st)
	}
	// The t1 window rejects vertices valid only in the default window.
	if code, _ := doJSON(t, "POST", ts.URL+"/windows/t1/edges", `{"edges":[{"u":0,"v":30}]}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range for t1 = %d, want 400", code)
	}

	// Unknown window → 404 on every data-plane route.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/windows/ghost/edges"},
		{"GET", "/windows/ghost/query/components"},
		{"GET", "/windows/ghost/stats"},
		{"GET", "/windows/ghost"},
		{"DELETE", "/windows/ghost"},
	} {
		body := ""
		if probe.method == "POST" {
			body = `{"edges":[{"u":0,"v":1}]}`
		}
		if code, _ := doJSON(t, probe.method, ts.URL+probe.path, body); code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}

	// Drop t1; its routes 404, the registry shrinks, default survives.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/windows/t1", ""); code != http.StatusOK {
		t.Fatalf("drop = %d", code)
	}
	if code := getJSON(t, ts.URL+"/windows/t1/query/components", nil); code != http.StatusNotFound {
		t.Fatalf("query after drop = %d, want 404", code)
	}
	if reg.Len() != 1 {
		t.Fatalf("Len after drop = %d", reg.Len())
	}
	if code := getJSON(t, ts.URL+"/query/components", nil); code != 200 {
		t.Fatalf("default window after drop = %d", code)
	}
}

// TestServerBodyLimits covers the request-hardening paths: oversized
// bodies 413, trailing garbage 400, trailing whitespace accepted.
func TestServerBodyLimits(t *testing.T) {
	ts, _ := newRegistryTestServer(t, 50, ServerConfig{MaxBodyBytes: 200})

	big := `{"edges":[`
	for i := 0; i < 40; i++ {
		if i > 0 {
			big += ","
		}
		big += fmt.Sprintf(`{"u":%d,"v":%d}`, i%50, (i+1)%50)
	}
	big += `]}`
	if code, resp := doJSON(t, "POST", ts.URL+"/edges", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d (%v), want 413", code, resp)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/windows", `{"name":"`+strings.Repeat("a", 300)+`"}`); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create body = %d, want 413", code)
	}

	for _, body := range []string{
		`{"edges":[{"u":0,"v":1}]}{"edges":[]}`,
		`{"edges":[{"u":0,"v":1}]} trailing`,
		`{"edges":[{"u":0,"v":1}]}]`,
	} {
		if code, _ := doJSON(t, "POST", ts.URL+"/edges", body); code != http.StatusBadRequest {
			t.Errorf("trailing garbage %q = %d, want 400", body, code)
		}
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/edges", `{"edges":[{"u":0,"v":1}]}`+"\n\t "); code != http.StatusAccepted {
		t.Errorf("trailing whitespace = %d, want 202", code)
	}

	var stats struct {
		Window WindowStats `json:"window"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Window.Arrivals > 1 {
		t.Fatalf("rejected bodies leaked arrivals: %+v", stats.Window)
	}
}

func TestServerMissingMonitor(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Window: WindowConfig{N: 10, Monitors: []string{MonitorConn}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc).Handler())
	defer ts.Close()
	defer svc.Close()
	for _, path := range []string{"/query/bipartite", "/query/msfweight", "/query/cycle", "/query/kcert"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", path, code)
		}
	}
	if code := getJSON(t, ts.URL+"/query/components", nil); code != http.StatusOK {
		t.Errorf("components with conn monitor: status = %d, want 200", code)
	}
}

// TestServerQuerySummary exercises the consistent multi-monitor read over
// HTTP: all configured monitors' answers at one apply epoch, agreeing
// with the individual query endpoints on a quiescent window.
func TestServerQuerySummary(t *testing.T) {
	ts, svc := newTestServer(t, 50)
	if code, _ := postEdges(t, ts.URL, []edgeJSON{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 1, W: 9}}); code != http.StatusAccepted {
		t.Fatalf("post status %d", code)
	}
	svc.Flush()
	var sum struct {
		Epoch      uint64   `json:"epoch"`
		Components *int     `json:"components"`
		Bipartite  *bool    `json:"bipartite"`
		MSFWeight  *float64 `json:"msfweight"`
		Cycle      *bool    `json:"cycle"`
		KCertSize  *int     `json:"kcert_size"`
	}
	if code := getJSON(t, ts.URL+"/query/summary", &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if sum.Epoch%2 == 1 {
		t.Fatalf("summary epoch %d is odd", sum.Epoch)
	}
	if sum.Components == nil || sum.Bipartite == nil || sum.MSFWeight == nil || sum.Cycle == nil || sum.KCertSize == nil {
		t.Fatalf("summary missing monitors: %+v", sum)
	}
	// 1-2-3-1 triangle: one non-singleton component, odd cycle.
	if got, _ := svc.Window().NumComponents(); got != *sum.Components {
		t.Fatalf("summary components %d, query %d", *sum.Components, got)
	}
	if *sum.Bipartite {
		t.Fatal("triangle reported bipartite")
	}
	if !*sum.Cycle {
		t.Fatal("triangle reported cycle-free")
	}
	// Per-monitor apply stats surfaced in /stats.
	var stats struct {
		Apply struct {
			PerMonitor map[string]struct {
				Ops         int64   `json:"ops"`
				MeanApplyMs float64 `json:"mean_apply_ms"`
				MeanWaitMs  float64 `json:"mean_wait_ms"`
			} `json:"per_monitor"`
		} `json:"apply"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	for _, name := range AllMonitors() {
		pm, ok := stats.Apply.PerMonitor[name]
		if !ok {
			t.Fatalf("/stats apply.per_monitor missing %q: %+v", name, stats.Apply.PerMonitor)
		}
		if pm.Ops < 1 {
			t.Fatalf("monitor %q shows %d ops after a flushed batch", name, pm.Ops)
		}
	}
}
