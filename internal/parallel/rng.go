package parallel

// Splitmix64 is the 64-bit mixing function from Steele et al. (splitmix64).
// It is the deterministic hash behind every random choice in this repository:
// RC-tree contraction coins, treap priorities, workload generators. Using a
// pure mix function (rather than stateful RNG streams) makes every parallel
// algorithm's random choices independent of execution order.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two words into one, for keyed coins such as coin(vertex, round).
func Hash2(a, b uint64) uint64 {
	return Splitmix64(a ^ Splitmix64(b))
}

// Hash3 mixes three words.
func Hash3(a, b, c uint64) uint64 {
	return Splitmix64(a ^ Hash2(b, c))
}

// RNG is a tiny deterministic generator (splitmix64 stream) for sequential
// workload generation.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("parallel: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
