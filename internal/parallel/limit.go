package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limiter is a non-blocking budget of auxiliary worker goroutines shared by
// any number of concurrent fork-joins. A fork-join borrows workers with
// TryAcquire — taking however many are available right now, possibly none —
// and always keeps the calling goroutine working, so a drained budget
// degrades to the sequential loop instead of queueing or deadlocking.
//
// This is the stampede guard for nested parallelism: the monitor fan-out of
// the stream layer forks per monitor, and the msfweight monitor forks again
// per connectivity level, so without a shared budget N windows × 5 monitors
// × R levels would spawn goroutines multiplicatively. With one, the total
// auxiliary parallelism stays at the configured budget no matter how many
// fork-joins run at once.
type Limiter struct {
	avail atomic.Int64
	aux   int
}

// NewLimiter returns a budget of aux auxiliary workers. aux <= 0 yields a
// limiter that never grants a worker — every fork-join through it runs
// sequentially on its caller.
func NewLimiter(aux int) *Limiter {
	l := &Limiter{}
	if aux > 0 {
		l.aux = aux
		l.avail.Store(int64(aux))
	}
	return l
}

// Aux returns the configured auxiliary-worker budget (not the currently
// available count). A nil limiter reports 0.
func (l *Limiter) Aux() int {
	if l == nil {
		return 0
	}
	return l.aux
}

// TryAcquire borrows one worker slot; it never blocks. A nil limiter always
// refuses.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return false
	}
	for {
		cur := l.avail.Load()
		if cur <= 0 {
			return false
		}
		if l.avail.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Release returns a slot borrowed with TryAcquire.
func (l *Limiter) Release() {
	if l != nil {
		l.avail.Add(1)
	}
}

var (
	defaultLimiter     *Limiter
	defaultLimiterOnce sync.Once
)

// Default returns the process-wide worker budget: GOMAXPROCS-1 auxiliary
// workers (so caller + borrowed = GOMAXPROCS), sized once at first use.
// Structures that are not handed an explicit budget share it, which keeps
// independently-constructed parallel structures from oversubscribing the
// machine in aggregate.
func Default() *Limiter {
	defaultLimiterOnce.Do(func() {
		defaultLimiter = NewLimiter(runtime.GOMAXPROCS(0) - 1)
	})
	return defaultLimiter
}

// ForEachLimited runs body(i) for every i in [0, n), on the calling
// goroutine plus up to the limiter's currently-available workers. Indices
// are claimed dynamically (an atomic cursor), so heterogeneous iteration
// costs load-balance across however many workers were granted; schedule the
// expensive iterations at low indices so they start first. Iterations must
// be independent. The call returns only after every iteration completed and
// all borrowed workers were released.
func ForEachLimited(n int, l *Limiter, body func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		body(0)
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			body(i)
		}
	}
	var box panicBox
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1 && l.TryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer l.Release()
			box.protect(work)
		}()
	}
	// Protect the caller's share too: unwinding before the join would leave
	// borrowed workers iterating against a vanished caller frame.
	box.protect(work)
	wg.Wait()
	box.rethrow()
}
