package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 2048, 2049, 100_000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForGrainedSmallGrain(t *testing.T) {
	n := 10_000
	var sum int64
	hits := make([]int32, n)
	ForGrained(n, 1, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
		sum += int64(h)
	}
	if sum != int64(n) {
		t.Fatalf("sum=%d want %d", sum, n)
	}
}

func TestBlockedForPartition(t *testing.T) {
	n := 12_345
	var total int64
	var calls int64
	BlockedFor(n, 100, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty block [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
		atomic.AddInt64(&calls, 1)
	})
	if total != int64(n) {
		t.Fatalf("covered %d of %d", total, n)
	}
	if calls > int64(8*Procs()+1) {
		t.Fatalf("too many blocks: %d", calls)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.AddInt32(&a, 1) },
		func() { atomic.AddInt32(&b, 1) },
		func() { atomic.AddInt32(&c, 1) },
	)
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("a=%d b=%d c=%d", a, b, c)
	}
	Do() // must not hang
}

func TestReduceInt64(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 100_001} {
		got := ReduceInt64(n, 128, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 4097, 50_000} {
		xs := make([]int, n)
		ref := make([]int, n)
		r := NewRNG(uint64(n) + 1)
		for i := range xs {
			xs[i] = r.Intn(10)
			ref[i] = xs[i]
		}
		total := ExclusiveScan(xs)
		sum := 0
		for i := 0; i < n; i++ {
			if xs[i] != sum {
				t.Fatalf("n=%d: prefix[%d]=%d want %d", n, i, xs[i], sum)
			}
			sum += ref[i]
		}
		if total != sum {
			t.Fatalf("n=%d: total=%d want %d", n, total, sum)
		}
	}
}

func TestPack(t *testing.T) {
	n := 10_000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	out := Pack(xs, func(i int) bool { return xs[i]%3 == 0 })
	want := 0
	for _, v := range out {
		if v != want {
			t.Fatalf("got %d want %d", v, want)
		}
		want += 3
	}
	if len(out) != (n+2)/3 {
		t.Fatalf("len=%d", len(out))
	}
}

func TestPackEmpty(t *testing.T) {
	if got := Pack([]int{}, func(int) bool { return true }); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	xs := []int{1, 2, 3}
	if got := Pack(xs, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSortRandom(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 8192, 8193, 100_000} {
		xs := make([]int64, n)
		r := NewRNG(42 + uint64(n))
		for i := range xs {
			xs[i] = r.Int63() % 1000
		}
		Sort(xs, func(a, b int64) bool { return a < b })
		for i := 1; i < n; i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("n=%d: out of order at %d: %d > %d", n, i, xs[i-1], xs[i])
			}
		}
	}
}

func TestSortPermutationProperty(t *testing.T) {
	f := func(xs []int32) bool {
		counts := map[int32]int{}
		for _, v := range xs {
			counts[v]++
		}
		cp := append([]int32(nil), xs...)
		Sort(cp, func(a, b int32) bool { return a < b })
		for _, v := range cp {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		for i := 1; i < len(cp); i++ {
			if cp[i-1] > cp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByInt32(t *testing.T) {
	items := []int32{5, 3, 5, 1, 3, 5}
	keys, groups := GroupByInt32(items, func(x int32) int32 { return x })
	if len(keys) != 3 {
		t.Fatalf("keys=%v", keys)
	}
	total := 0
	for i, k := range keys {
		for _, v := range groups[i] {
			if v != k {
				t.Fatalf("group %d contains %d", k, v)
			}
		}
		total += len(groups[i])
	}
	if total != len(items) {
		t.Fatalf("grouped %d of %d", total, len(items))
	}
}

func TestGroupByEmpty(t *testing.T) {
	keys, groups := GroupByInt32(nil, func(x int32) int32 { return x })
	if keys != nil || groups != nil {
		t.Fatalf("got %v %v", keys, groups)
	}
}

func TestSplitmixDeterministic(t *testing.T) {
	if Splitmix64(1) != Splitmix64(1) {
		t.Fatal("not deterministic")
	}
	if Splitmix64(1) == Splitmix64(2) {
		t.Fatal("suspicious collision")
	}
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 should not be symmetric")
	}
	if Hash3(1, 2, 3) == Hash3(3, 2, 1) {
		t.Fatal("Hash3 should not be symmetric")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
}

func TestRNGCoinBalance(t *testing.T) {
	r := NewRNG(99)
	heads := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if r.Next()&1 == 1 {
			heads++
		}
	}
	if heads < n*45/100 || heads > n*55/100 {
		t.Fatalf("biased coin: %d/%d heads", heads, n)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}
