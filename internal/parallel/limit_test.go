package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLimiterBudget(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("budget of 2 should grant twice")
	}
	if l.TryAcquire() {
		t.Fatal("exhausted budget granted a worker")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	l.Release()
	l.Release()
}

func TestLimiterNilAndZero(t *testing.T) {
	var nilL *Limiter
	if nilL.TryAcquire() {
		t.Fatal("nil limiter granted a worker")
	}
	nilL.Release() // must not panic
	if NewLimiter(0).TryAcquire() || NewLimiter(-3).TryAcquire() {
		t.Fatal("empty budget granted a worker")
	}
}

func TestForEachLimitedCoversAllIndices(t *testing.T) {
	for _, aux := range []int{0, 1, 3, 64} {
		l := NewLimiter(aux)
		const n = 1000
		var hits [n]atomic.Int32
		ForEachLimited(n, l, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("aux=%d: index %d ran %d times", aux, i, got)
			}
		}
		// Every borrowed worker must have been returned.
		for k := 0; k < aux; k++ {
			if !l.TryAcquire() {
				t.Fatalf("aux=%d: slot %d not released after join", aux, k)
			}
		}
		if l.TryAcquire() {
			t.Fatalf("aux=%d: limiter grew", aux)
		}
	}
}

func TestForEachLimitedNilLimiterSequential(t *testing.T) {
	// With a nil limiter every iteration runs on the caller: no goroutines,
	// strictly in-order observation is NOT guaranteed by the contract, but
	// single-threaded execution is — detectable via an unsynchronized
	// counter that the race detector would flag otherwise.
	n := 257
	count := 0
	ForEachLimited(n, nil, func(i int) { count++ })
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestForEachLimitedSharedBudgetAcrossForkJoins(t *testing.T) {
	// Two concurrent fork-joins over one limiter: combined in-flight
	// auxiliary workers must never exceed the budget.
	const aux = 2
	l := NewLimiter(aux)
	var inflight, maxSeen atomic.Int64
	body := func(int) {
		cur := inflight.Add(1)
		for {
			m := maxSeen.Load()
			if cur <= m || maxSeen.CompareAndSwap(m, cur) {
				break
			}
		}
		for i := 0; i < 1000; i++ {
			_ = i
		}
		inflight.Add(-1)
	}
	var wg sync.WaitGroup
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForEachLimited(200, l, body)
		}()
	}
	wg.Wait()
	// 4 callers + at most aux borrowed workers.
	if got := maxSeen.Load(); got > 4+aux {
		t.Fatalf("observed %d concurrent bodies, budget allows at most %d", got, 4+aux)
	}
}
