package parallel

import "sort"

// Sort sorts xs with the given less function using a parallel merge sort with
// a sequential cutoff. Stable is not guaranteed.
func Sort[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	if n < 2 {
		return
	}
	const cutoff = 8192
	if n <= cutoff || Procs() == 1 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, n)
	mergeSort(xs, buf, less, 0)
}

// mergeSort sorts xs in place using buf as scratch. depth limits goroutine
// fan-out to roughly 2^k >= procs leaves.
func mergeSort[T any](xs, buf []T, less func(a, b T) bool, depth int) {
	n := len(xs)
	const cutoff = 8192
	if n <= cutoff || depth >= 6 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := n / 2
	Do(
		func() { mergeSort(xs[:mid], buf[:mid], less, depth+1) },
		func() { mergeSort(xs[mid:], buf[mid:], less, depth+1) },
	)
	copy(buf, xs)
	merge(buf[:mid], buf[mid:], xs, less)
}

func merge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// GroupByInt32 semisorts items by an int32 key and returns the distinct keys
// together with the grouped items (groups[i] are the items with key keys[i]).
// Order of keys and of items within a group is unspecified but deterministic
// for a given input. This is the "semisort" primitive of Algorithm 2, Line 2.
func GroupByInt32[T any](items []T, key func(T) int32) (keys []int32, groups [][]T) {
	if len(items) == 0 {
		return nil, nil
	}
	type kv struct {
		k int32
		v T
	}
	tmp := make([]kv, len(items))
	ForGrained(len(items), 8192, func(i int) { tmp[i] = kv{key(items[i]), items[i]} })
	Sort(tmp, func(a, b kv) bool { return a.k < b.k })
	for i := 0; i < len(tmp); {
		j := i
		for j < len(tmp) && tmp[j].k == tmp[i].k {
			j++
		}
		g := make([]T, 0, j-i)
		for t := i; t < j; t++ {
			g = append(g, tmp[t].v)
		}
		keys = append(keys, tmp[i].k)
		groups = append(groups, g)
		i = j
	}
	return keys, groups
}
