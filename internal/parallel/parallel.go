// Package parallel provides the fork-join primitives used throughout the
// repository: grained parallel loops, reductions, prefix sums, packing, and a
// parallel comparison sort. It stands in for the CRCW PRAM of the paper; see
// DESIGN.md §2 for the substitution argument.
//
// All primitives degrade to their sequential forms below a grain threshold so
// that asymptotic work matches the sequential algorithm (work-efficiency),
// with goroutine fan-out only at the top levels of the recursion.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default number of loop iterations executed serially per
// spawned task. Chosen large enough that goroutine overhead (~100ns) is well
// under 1% of per-task work for the loop bodies in this repository.
const DefaultGrain = 2048

// Procs returns the current parallelism level.
func Procs() int { return runtime.GOMAXPROCS(0) }

// Panic wraps a panic recovered on a fork-join worker goroutine. Without
// this, a panic on a spawned worker kills the whole process with no chance
// for the caller to contain it (the stream layer quarantines the panicking
// monitor instead). Every fork-join in this package captures the first
// worker panic, completes the join — so no goroutine is left running against
// a caller that has unwound — and then re-panics with a *Panic on the
// calling goroutine. Sequential fast paths propagate the original value
// unchanged; boundary recover()s must handle both.
type Panic struct {
	Value any    // the original panic value
	Stack []byte // the panicking goroutine's stack at recovery time
}

func (p *Panic) String() string {
	return fmt.Sprintf("panic on fork-join worker: %v\n%s", p.Value, p.Stack)
}

// Unwrap returns the original panic value, unwrapping nested *Panic layers
// (a fork-join inside a fork-join re-wraps once per boundary).
func (p *Panic) Unwrap() any {
	v := p.Value
	for {
		inner, ok := v.(*Panic)
		if !ok {
			return v
		}
		v = inner.Value
	}
}

// panicBox records the first panic of a fork-join (first-capture-wins; the
// others are necessarily concurrent and carry no extra ordering meaning).
type panicBox struct {
	p atomic.Pointer[Panic]
}

// protect runs f, capturing a panic into the box instead of unwinding the
// worker goroutine past the fork-join frame.
func (b *panicBox) protect(f func()) {
	defer func() {
		if r := recover(); r != nil {
			if pv, ok := r.(*Panic); ok {
				b.p.CompareAndSwap(nil, pv)
				return
			}
			b.p.CompareAndSwap(nil, &Panic{Value: r, Stack: debug.Stack()})
		}
	}()
	f()
}

// rethrow re-raises the captured panic, if any, after the join completed.
func (b *panicBox) rethrow() {
	if p := b.p.Load(); p != nil {
		panic(p)
	}
}

// For runs body(i) for every i in [0, n) with the default grain.
func For(n int, body func(i int)) {
	ForGrained(n, DefaultGrain, body)
}

// ForGrained runs body(i) for every i in [0, n), chunking iterations into
// blocks of at least `grain`. Iterations must be independent.
func ForGrained(n, grain int, body func(i int)) {
	BlockedFor(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// BlockedFor partitions [0, n) into contiguous blocks of size >= grain and
// runs body(lo, hi) on each block, in parallel across blocks. It never spawns
// more than a small multiple of GOMAXPROCS goroutines.
func BlockedFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if n <= grain || p == 1 {
		body(0, n)
		return
	}
	// Number of blocks: enough for load balance, bounded by work available.
	blocks := (n + grain - 1) / grain
	if max := 8 * p; blocks > max {
		blocks = max
	}
	chunk := (n + blocks - 1) / blocks
	var box panicBox
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			box.protect(func() { body(lo, hi) })
		}(lo, hi)
	}
	wg.Wait()
	box.rethrow()
}

// Do runs the given thunks in parallel (fork-join).
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || Procs() == 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, f := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			box.protect(f)
		}(f)
	}
	// The caller's own thunk is protected too: were it to unwind before
	// wg.Wait, the spawned workers would race a stack that no longer exists.
	box.protect(fns[0])
	wg.Wait()
	box.rethrow()
}

// ReduceInt64 reduces f(i) over [0, n) with +.
func ReduceInt64(n, grain int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	nb := (n + grain - 1) / grain
	if max := 8 * Procs(); nb > max {
		nb = max
	}
	partial := make([]int64, nb)
	chunk := (n + nb - 1) / nb
	var box panicBox
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		lo := b * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			box.protect(func() {
				var s int64
				for i := lo; i < hi; i++ {
					s += f(i)
				}
				partial[b] = s
			})
		}(b, lo, hi)
	}
	wg.Wait()
	box.rethrow()
	var s int64
	for _, v := range partial {
		s += v
	}
	return s
}

// ExclusiveScan replaces xs with its exclusive prefix sum and returns the
// total. Parallel two-pass (block sums, then block offsets).
func ExclusiveScan(xs []int) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	const grain = 4096
	if n <= grain || Procs() == 1 {
		sum := 0
		for i := range xs {
			v := xs[i]
			xs[i] = sum
			sum += v
		}
		return sum
	}
	nb := (n + grain - 1) / grain
	if max := 8 * Procs(); nb > max {
		nb = max
	}
	chunk := (n + nb - 1) / nb
	sums := make([]int, nb)
	BlockedFor(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			s := 0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			sums[b] = s
		}
	})
	total := 0
	for b := 0; b < nb; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	BlockedFor(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			s := sums[b]
			for i := lo; i < hi; i++ {
				v := xs[i]
				xs[i] = s
				s += v
			}
		}
	})
	return total
}

// Pack returns the elements of xs whose flag is true, preserving order.
func Pack[T any](xs []T, keep func(i int) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	flags := make([]int, n)
	ForGrained(n, 8192, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusiveScan(flags)
	out := make([]T, total)
	ForGrained(n, 8192, func(i int) {
		// flags[i] now holds the output slot iff the element is kept: the
		// element is kept when its slot differs from the next prefix value,
		// which we recover by re-evaluating keep (cheap, pure predicate).
		if keep(i) {
			out[flags[i]] = xs[i]
		}
	})
	return out
}
