package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

func recoverPanic(t *testing.T, f func()) (val any) {
	t.Helper()
	defer func() { val = recover() }()
	f()
	t.Fatal("no panic")
	return nil
}

func TestDoWorkerPanicReachesCaller(t *testing.T) {
	var ran atomic.Int32
	v := recoverPanic(t, func() {
		Do(
			func() { ran.Add(1) },
			func() { panic("boom") },
			func() { ran.Add(1) },
		)
	})
	p, ok := v.(*Panic)
	if !ok {
		// Procs()==1 runs sequentially and propagates the raw value.
		if Procs() == 1 && v == any("boom") {
			return
		}
		t.Fatalf("recovered %T %v, want *Panic", v, v)
	}
	if p.Unwrap() != any("boom") {
		t.Fatalf("Unwrap = %v", p.Unwrap())
	}
	if !strings.Contains(p.String(), "boom") || len(p.Stack) == 0 {
		t.Fatalf("Panic carries no stack: %q", p.String())
	}
	// The join completed: the surviving thunks all ran.
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran = %d, want 2", got)
	}
}

func TestDoCallerPanicJoinsFirst(t *testing.T) {
	var ran atomic.Int32
	v := recoverPanic(t, func() {
		Do(
			func() { panic("caller") }, // fns[0] runs on the calling goroutine
			func() { ran.Add(1) },
		)
	})
	if p, ok := v.(*Panic); ok {
		if p.Unwrap() != any("caller") {
			t.Fatalf("Unwrap = %v", p.Unwrap())
		}
	} else if v != any("caller") {
		t.Fatalf("recovered %v", v)
	}
	if Procs() > 1 && ran.Load() != 1 {
		t.Fatalf("spawned thunk did not finish before the re-panic")
	}
}

func TestBlockedForPanic(t *testing.T) {
	v := recoverPanic(t, func() {
		BlockedFor(1<<16, 1, func(lo, hi int) {
			if lo <= 1000 && 1000 < hi {
				panic(1000)
			}
		})
	})
	if p, ok := v.(*Panic); ok {
		if p.Unwrap() != any(1000) {
			t.Fatalf("Unwrap = %v", p.Unwrap())
		}
	} else if v != any(1000) {
		t.Fatalf("recovered %v", v)
	}
}

func TestReduceInt64Panic(t *testing.T) {
	v := recoverPanic(t, func() {
		ReduceInt64(1<<16, 1, func(i int) int64 {
			if i == 7777 {
				panic("reduce")
			}
			return 1
		})
	})
	if p, ok := v.(*Panic); ok {
		v = p.Unwrap()
	}
	if v != any("reduce") {
		t.Fatalf("recovered %v", v)
	}
}

func TestForEachLimitedPanic(t *testing.T) {
	var ran atomic.Int32
	v := recoverPanic(t, func() {
		ForEachLimited(64, NewLimiter(4), func(i int) {
			if i == 3 {
				panic("limited")
			}
			ran.Add(1)
		})
	})
	if p, ok := v.(*Panic); ok {
		v = p.Unwrap()
	}
	if v != any("limited") {
		t.Fatalf("recovered %v", v)
	}
	// The limiter budget must be whole again after the panic unwound.
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() || l.TryAcquire() {
		t.Fatal("fresh limiter budget wrong")
	}
}

func TestForEachLimitedReleasesOnPanic(t *testing.T) {
	l := NewLimiter(3)
	func() {
		defer func() { recover() }()
		ForEachLimited(32, l, func(i int) { panic("x") })
	}()
	// All borrowed slots must be back.
	got := 0
	for l.TryAcquire() {
		got++
	}
	if got != 3 {
		t.Fatalf("limiter has %d slots after panic, want 3", got)
	}
}

func TestNestedPanicUnwrap(t *testing.T) {
	v := recoverPanic(t, func() {
		Do(
			func() {},
			func() {
				BlockedFor(1<<16, 1, func(lo, hi int) {
					if lo == 0 {
						panic("inner")
					}
				})
			},
		)
	})
	if p, ok := v.(*Panic); ok {
		v = p.Unwrap()
	}
	if v != any("inner") {
		t.Fatalf("recovered %v", v)
	}
}
