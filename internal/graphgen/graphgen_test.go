package graphgen

import (
	"testing"

	"repro/internal/unionfind"
)

func TestErdosRenyiShape(t *testing.T) {
	edges := ErdosRenyi(100, 500, 50, 1)
	if len(edges) != 500 {
		t.Fatalf("m=%d", len(edges))
	}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatalf("self loop %v", e)
		}
		if e.W < 1 || e.W > 50 {
			t.Fatalf("weight %v", e)
		}
		if e.U < 0 || e.U >= 100 || e.V < 0 || e.V >= 100 {
			t.Fatalf("vertex out of range %v", e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := ErdosRenyi(50, 100, 10, 7)
	b := ErdosRenyi(50, 100, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := ErdosRenyi(50, 100, 10, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical output")
	}
}

func TestRandomTreeIsSpanningTree(t *testing.T) {
	const n = 200
	edges := RandomTree(n, 100, 3)
	if len(edges) != n-1 {
		t.Fatalf("edges=%d", len(edges))
	}
	uf := unionfind.New(n)
	for _, e := range edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("cycle at %v", e)
		}
	}
	if uf.NumComponents() != 1 {
		t.Fatalf("components=%d", uf.NumComponents())
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(5, 10, 1)
	if len(p) != 4 || p[0].U != 0 || p[3].V != 4 {
		t.Fatalf("path=%v", p)
	}
	s := Star(5, 10, 1)
	if len(s) != 4 {
		t.Fatalf("star=%v", s)
	}
	for _, e := range s {
		if e.U != 0 {
			t.Fatalf("star edge %v not centered", e)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 10, 1)
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
	if len(g) != 17 {
		t.Fatalf("grid edges=%d", len(g))
	}
	uf := unionfind.New(12)
	for _, e := range g {
		uf.Union(e.U, e.V)
	}
	if uf.NumComponents() != 1 {
		t.Fatal("grid not connected")
	}
}

func TestPreferentialAttachmentConnected(t *testing.T) {
	edges := PreferentialAttachment(100, 2, 10, 5)
	uf := unionfind.New(100)
	for _, e := range edges {
		uf.Union(e.U, e.V)
	}
	if uf.NumComponents() != 1 {
		t.Fatalf("components=%d", uf.NumComponents())
	}
	// Hubs exist: max degree should be well above the minimum.
	deg := make([]int, 100)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 6 {
		t.Fatalf("no hubs: max degree %d", max)
	}
}

func TestBatches(t *testing.T) {
	edges := Path(11, 5, 1) // 10 edges
	bs := Batches(edges, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("batches: %d groups", len(bs))
	}
	if got := Batches(edges, 0); len(got) != 10 {
		t.Fatalf("batch=0 should clamp to 1, got %d groups", len(got))
	}
}

func TestSlidingStreamWindowBound(t *testing.T) {
	s := SlidingStream(50, 20, 10, 45, 3)
	if len(s.Rounds) != 20 {
		t.Fatalf("rounds=%d", len(s.Rounds))
	}
	live := 0
	for i, r := range s.Rounds {
		if len(r.Insert) != 10 {
			t.Fatalf("round %d: insert=%d", i, len(r.Insert))
		}
		live += len(r.Insert) - r.Expire
		if live > 45 {
			t.Fatalf("round %d: live=%d exceeds window", i, live)
		}
		for _, p := range r.Insert {
			if p[0] == p[1] {
				t.Fatalf("round %d: self loop", i)
			}
		}
	}
}
