// Package graphgen provides the deterministic workload generators behind
// the benchmark harness and examples: random graphs, structured graphs
// (paths, stars, grids, preferential attachment), weight assignments, and
// sliding-window edge streams. Everything is seeded, so every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit.
package graphgen

import (
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// ErdosRenyi returns m uniformly random edges (with replacement, self-loops
// filtered by redraw) over n vertices, with weights uniform in [1, maxW].
func ErdosRenyi(n, m int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	out := make([]wgraph.Edge, m)
	for i := range out {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		for v == u {
			v = int32(r.Intn(n))
		}
		out[i] = wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: u, V: v, W: 1 + r.Int63()%maxW}
	}
	return out
}

// RandomTree returns a uniformly-ish random spanning tree over n vertices
// (random attachment), weights uniform in [1, maxW].
func RandomTree(n int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	out := make([]wgraph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := int32(r.Intn(v))
		out = append(out, wgraph.Edge{ID: wgraph.EdgeID(v), U: u, V: int32(v), W: 1 + r.Int63()%maxW})
	}
	return out
}

// BoundedDegreeTree returns a random spanning tree over n vertices in which
// every vertex has degree at most maxDeg (>= 2). Useful for driving the
// rake-compress tree directly, which requires degree <= 3.
func BoundedDegreeTree(n, maxDeg int, maxW int64, seed uint64) []wgraph.Edge {
	if maxDeg < 2 {
		panic("graphgen: maxDeg must be at least 2")
	}
	r := parallel.NewRNG(seed)
	out := make([]wgraph.Edge, 0, n-1)
	deg := make([]int, n)
	avail := make([]int32, 0, n) // vertices with spare capacity
	avail = append(avail, 0)
	for v := 1; v < n; v++ {
		i := r.Intn(len(avail))
		u := avail[i]
		out = append(out, wgraph.Edge{ID: wgraph.EdgeID(v), U: u, V: int32(v), W: 1 + r.Int63()%maxW})
		deg[u]++
		deg[v]++
		if deg[u] >= maxDeg {
			avail[i] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		if deg[v] < maxDeg {
			avail = append(avail, int32(v))
		}
	}
	return out
}

// Path returns the path 0-1-...-(n-1) with the given weights source.
func Path(n int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	out := make([]wgraph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		out = append(out, wgraph.Edge{ID: wgraph.EdgeID(v), U: int32(v - 1), V: int32(v), W: 1 + r.Int63()%maxW})
	}
	return out
}

// Star returns a star centered at 0.
func Star(n int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	out := make([]wgraph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		out = append(out, wgraph.Edge{ID: wgraph.EdgeID(v), U: 0, V: int32(v), W: 1 + r.Int63()%maxW})
	}
	return out
}

// Grid returns the rows x cols grid graph (n = rows*cols vertices).
func Grid(rows, cols int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	var out []wgraph.Edge
	id := wgraph.EdgeID(1)
	at := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				out = append(out, wgraph.Edge{ID: id, U: at(i, j), V: at(i, j+1), W: 1 + r.Int63()%maxW})
				id++
			}
			if i+1 < rows {
				out = append(out, wgraph.Edge{ID: id, U: at(i, j), V: at(i+1, j), W: 1 + r.Int63()%maxW})
				id++
			}
		}
	}
	return out
}

// PreferentialAttachment returns a Barabási–Albert-style graph: each new
// vertex attaches deg edges to endpoints sampled from the existing
// half-edge list (rich get richer). Hub degrees stress the ternary adapter.
func PreferentialAttachment(n, deg int, maxW int64, seed uint64) []wgraph.Edge {
	r := parallel.NewRNG(seed)
	var out []wgraph.Edge
	targets := []int32{0}
	id := wgraph.EdgeID(1)
	for v := 1; v < n; v++ {
		for d := 0; d < deg; d++ {
			u := targets[r.Intn(len(targets))]
			if u == int32(v) {
				continue
			}
			out = append(out, wgraph.Edge{ID: id, U: u, V: int32(v), W: 1 + r.Int63()%maxW})
			id++
			targets = append(targets, u)
		}
		targets = append(targets, int32(v))
	}
	return out
}

// Batches slices an edge list into batches of the given size (the last may
// be short).
func Batches(edges []wgraph.Edge, batch int) [][]wgraph.Edge {
	if batch < 1 {
		batch = 1
	}
	var out [][]wgraph.Edge
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		out = append(out, edges[lo:hi])
	}
	return out
}

// Stream is a sliding-window workload: a sequence of rounds, each
// inserting Insert edges and expiring Expire arrivals.
type Stream struct {
	N      int
	Rounds []StreamRound
}

// StreamRound is one round of a sliding-window workload.
type StreamRound struct {
	Insert [][2]int32
	Expire int
}

// SlidingStream generates a steady-state sliding-window workload: `rounds`
// rounds of `batch` random edge arrivals over n vertices; once `window`
// arrivals are live, each round also expires `batch` oldest arrivals.
func SlidingStream(n, rounds, batch, window int, seed uint64) Stream {
	r := parallel.NewRNG(seed)
	s := Stream{N: n}
	live := 0
	for i := 0; i < rounds; i++ {
		ins := make([][2]int32, batch)
		for j := range ins {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			for v == u {
				v = int32(r.Intn(n))
			}
			ins[j] = [2]int32{u, v}
		}
		live += batch
		exp := 0
		if live > window {
			exp = live - window
			live = window
		}
		s.Rounds = append(s.Rounds, StreamRound{Insert: ins, Expire: exp})
	}
	return s
}
