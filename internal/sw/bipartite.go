package sw

// Bipartite is the sliding-window bipartiteness monitor of Theorem 5.3,
// using the cycle-double-cover reduction [4, 13]: the window graph G is
// bipartite iff its double cover D(G) — vertex v split into v1, v2 and edge
// (u, v) doubled into (u1, v2), (u2, v1) — has exactly twice as many
// connected components as G.
type Bipartite struct {
	n       int
	g       *ConnEager // the window graph on n vertices
	d       *ConnEager // its double cover on 2n vertices
	guard   writerGuard
	scratch []StreamEdge // double-cover buffer, reused across batches
}

// NewBipartite returns a bipartiteness monitor over n vertices.
func NewBipartite(n int, seed uint64) *Bipartite {
	return &Bipartite{
		n: n,
		g: NewConnEager(n, seed),
		d: NewConnEager(2*n, seed^0x5bd1e995),
	}
}

// BatchInsert appends edge arrivals to the window.
// Single-writer: mutations must be externally serialized.
func (b *Bipartite) BatchInsert(edges []StreamEdge) {
	if len(edges) == 0 {
		return
	}
	b.guard.enter()
	defer b.guard.exit()
	b.g.BatchInsert(edges)
	dcc := b.scratch[:0]
	n32 := int32(b.n)
	for _, e := range edges {
		dcc = append(dcc,
			StreamEdge{U: e.U, V: e.V + n32},
			StreamEdge{U: e.U + n32, V: e.V},
		)
	}
	b.scratch = dcc
	b.d.BatchInsert(dcc)
}

// BatchExpire expires the oldest delta arrivals.
// Single-writer: mutations must be externally serialized.
func (b *Bipartite) BatchExpire(delta int) {
	b.guard.enter()
	defer b.guard.exit()
	b.g.BatchExpire(delta)
	b.d.BatchExpire(2 * delta) // each arrival contributed two cover edges
}

// IsBipartite reports whether the window graph is bipartite, in O(1).
func (b *Bipartite) IsBipartite() bool {
	return b.d.NumComponents() == 2*b.g.NumComponents()
}

// IsConnected exposes window connectivity on the underlying graph.
func (b *Bipartite) IsConnected(u, v int32) bool { return b.g.IsConnected(u, v) }
