package sw

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// seqBatchInsert applies a batch the way the pre-parallel implementation
// did: a fresh filtered sub-slice per level, in input order, each level
// applied on the calling goroutine. It is the sequential reference the
// fork-join + bucket-routing path is pinned against: recency weights make
// every level's MSF unique, so the two must agree bit-for-bit.
func seqBatchInsert(a *ApproxMSF, edges []WeightedStreamEdge) {
	if len(edges) == 0 {
		return
	}
	a.guard.enter()
	defer a.guard.exit()
	for _, e := range edges {
		if e.W < 1 || e.W > a.maxW {
			panic("bad weight in reference")
		}
	}
	base := a.tau
	a.tau += int64(len(edges))
	for i, inst := range a.inst {
		var sub []StreamEdge
		var subTau []int64
		for j, e := range edges {
			if e.W <= a.thresh[i] {
				sub = append(sub, StreamEdge{U: e.U, V: e.V})
				subTau = append(subTau, base+int64(j)+1)
			}
		}
		inst.guard.enter()
		inst.batchInsertAt(sub, subTau)
		inst.guard.exit()
	}
}

// seqBatchExpire is the sequential reference for BatchExpire.
func seqBatchExpire(a *ApproxMSF, delta int) {
	if delta <= 0 {
		return
	}
	a.guard.enter()
	defer a.guard.exit()
	a.tw += int64(delta)
	if a.tw > a.tau {
		a.tw = a.tau
	}
	for _, inst := range a.inst {
		inst.guard.enter()
		inst.expireTo(a.tw)
		inst.guard.exit()
	}
}

func levelForest(c *ConnEager) []wgraph.Edge {
	var out []wgraph.Edge
	c.ForestEdges(func(e wgraph.Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

func requireIdentical(t *testing.T, step int, par, ref *ApproxMSF) {
	t.Helper()
	if pw, rw := par.Weight(), ref.Weight(); pw != rw {
		t.Fatalf("step %d: Weight %v (parallel) != %v (reference)", step, pw, rw)
	}
	if pc, rc := par.NumComponents(), ref.NumComponents(); pc != rc {
		t.Fatalf("step %d: NumComponents %d (parallel) != %d (reference)", step, pc, rc)
	}
	for i := range par.inst {
		pf, rf := levelForest(par.inst[i]), levelForest(ref.inst[i])
		if len(pf) != len(rf) {
			t.Fatalf("step %d level %d: forest sizes %d != %d", step, i, len(pf), len(rf))
		}
		for j := range pf {
			if pf[j] != rf[j] {
				t.Fatalf("step %d level %d edge %d: %+v != %+v", step, i, j, pf[j], rf[j])
			}
		}
	}
}

// TestApproxMSFParallelMatchesSequential pins the fork-join, bucket-routed
// apply bit-identically to the pre-parallel sequential reference across
// randomized insert/expire schedules and seeds (run under -race in CI: the
// small worker budget forces real cross-goroutine level application).
func TestApproxMSFParallelMatchesSequential(t *testing.T) {
	const (
		n    = 48
		eps  = 0.3
		maxW = int64(1 << 10)
	)
	for _, seed := range []uint64{1, 0xC0FFEE, 0x5EED5EED} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			par := NewApproxMSF(n, eps, maxW, seed)
			par.SetWorkers(parallel.NewLimiter(3))
			ref := NewApproxMSF(n, eps, maxW, seed)
			if par.Levels() != ref.Levels() {
				t.Fatalf("level counts differ: %d != %d", par.Levels(), ref.Levels())
			}
			r := rand.New(rand.NewSource(int64(seed)))
			live := 0
			for step := 0; step < 60; step++ {
				if live > 0 && r.Intn(4) == 0 {
					delta := 1 + r.Intn(live)
					par.BatchExpire(delta)
					seqBatchExpire(ref, delta)
					live -= delta
				} else {
					b := r.Intn(40) // occasionally zero: empty batches must be no-ops
					batch := make([]WeightedStreamEdge, b)
					for j := range batch {
						batch[j] = WeightedStreamEdge{
							U: int32(r.Intn(n)),
							V: int32(r.Intn(n)),
							W: 1 + r.Int63n(maxW),
						}
					}
					par.BatchInsert(batch)
					seqBatchInsert(ref, batch)
					live += b
				}
				requireIdentical(t, step, par, ref)
			}
		})
	}
}

// TestApproxMSFValidationAtomic is the regression test for the mid-batch
// validation bug: a batch with an out-of-range weight must panic before ANY
// state moves — previously τ was advanced edge-by-edge during validation,
// leaving the clock ahead with nothing inserted.
func TestApproxMSFValidationAtomic(t *testing.T) {
	a := NewApproxMSF(16, 0.5, 100, 7)
	good := []WeightedStreamEdge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 50}}
	a.BatchInsert(good)
	tau, tw, w, cc := a.tau, a.tw, a.Weight(), a.NumComponents()

	bad := []WeightedStreamEdge{{U: 2, V: 3, W: 7}, {U: 3, V: 4, W: 101}, {U: 4, V: 5, W: 9}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range weight did not panic")
			}
		}()
		a.BatchInsert(bad)
	}()

	if a.tau != tau || a.tw != tw {
		t.Fatalf("rejected batch moved the clocks: tau %d->%d, tw %d->%d", tau, a.tau, tw, a.tw)
	}
	if a.Weight() != w || a.NumComponents() != cc {
		t.Fatalf("rejected batch changed state: weight %v->%v, components %d->%d",
			w, a.Weight(), cc, a.NumComponents())
	}

	// The structure must remain usable and track a clean twin thereafter.
	twin := NewApproxMSF(16, 0.5, 100, 7)
	twin.BatchInsert(good)
	more := []WeightedStreamEdge{{U: 2, V: 3, W: 7}, {U: 4, V: 5, W: 9}}
	a.BatchInsert(more)
	twin.BatchInsert(more)
	requireIdentical(t, 0, a, twin)
}

// TestEmptyBatchesAllocateNothing covers the empty-input early returns of
// every batch entry point in the package.
func TestEmptyBatchesAllocateNothing(t *testing.T) {
	conn := NewConn(8, 1)
	eager := NewConnEager(8, 2)
	kc := NewKCert(8, 2, 3)
	bip := NewBipartite(8, 4)
	amsf := NewApproxMSF(8, 0.5, 64, 5)
	if allocs := testing.AllocsPerRun(50, func() {
		conn.BatchInsert(nil)
		eager.BatchInsert(nil)
		kc.BatchInsert(nil)
		bip.BatchInsert(nil)
		amsf.BatchInsert(nil)
		conn.BatchInsert([]StreamEdge{})
		amsf.BatchExpire(0)
	}); allocs != 0 {
		t.Fatalf("empty batches allocated %v times per run", allocs)
	}
}

// TestApproxMSFSteadyStateRoutingReuse checks that the level-routing scratch
// is actually reused: after a warm-up batch, routing a same-sized batch must
// not grow the scratch buffers.
func TestApproxMSFSteadyStateRoutingReuse(t *testing.T) {
	a := NewApproxMSF(32, 0.5, 1<<10, 9)
	a.SetWorkers(parallel.NewLimiter(0)) // keep goroutine machinery out of the measurement
	r := rand.New(rand.NewSource(42))
	mk := func(b int) []WeightedStreamEdge {
		batch := make([]WeightedStreamEdge, b)
		for j := range batch {
			batch[j] = WeightedStreamEdge{
				U: int32(r.Intn(32)), V: int32(r.Intn(32)), W: 1 + r.Int63n(1<<10),
			}
		}
		return batch
	}
	a.BatchInsert(mk(256)) // warm up scratch
	capSorted, capTaus, capLvls := cap(a.sorted), cap(a.sortedTaus), cap(a.lvls)
	for i := 0; i < 8; i++ {
		a.BatchInsert(mk(256))
	}
	if cap(a.sorted) != capSorted || cap(a.sortedTaus) != capTaus || cap(a.lvls) != capLvls {
		t.Fatalf("routing scratch reallocated at steady state: sorted %d->%d taus %d->%d lvls %d->%d",
			capSorted, cap(a.sorted), capTaus, cap(a.sortedTaus), capLvls, cap(a.lvls))
	}
}
