package sw

import (
	"fmt"
	"math"
)

// ApproxMSF is the sliding-window (1+ε)-approximate MSF weight structure of
// Theorem 5.4, via the component-counting reduction [11, 4, 13]: with
// G_i the subgraph of window edges of weight at most (1+ε)^i,
//
//	weight ≈ (n - cc(G_0)) + Σ_{i>=1} (cc(G_{i-1}) - cc(G_i))·(1+ε)^i,
//
// which overestimates each true MSF edge weight by at most a (1+ε) factor.
// Each G_i is an eager sliding-window connectivity structure sharing global
// timestamps, so expiry is uniform across all R = O(log_{1+ε} maxW) levels.
type ApproxMSF struct {
	n      int
	eps    float64
	maxW   int64
	thresh []int64 // thresh[i] = floor((1+eps)^i), last >= maxW
	inst   []*ConnEager
	tau    int64
	tw     int64
	guard  writerGuard
}

// NewApproxMSF returns an approximate-MSF-weight structure for edge weights
// in [1, maxWeight].
func NewApproxMSF(n int, eps float64, maxWeight int64, seed uint64) *ApproxMSF {
	if eps <= 0 {
		panic("sw: eps must be positive")
	}
	if maxWeight < 1 {
		panic("sw: maxWeight must be at least 1")
	}
	a := &ApproxMSF{n: n, eps: eps, maxW: maxWeight}
	for x := 1.0; ; x *= 1 + eps {
		t := int64(math.Floor(x))
		a.thresh = append(a.thresh, t)
		a.inst = append(a.inst, NewConnEager(n, seed+uint64(len(a.inst))*0x2545F491+3))
		if t >= maxWeight {
			break
		}
	}
	return a
}

// Levels returns R, the number of maintained connectivity levels.
func (a *ApproxMSF) Levels() int { return len(a.inst) }

// BatchInsert appends weighted edge arrivals (weights in [1, maxWeight]).
// Single-writer: mutations must be externally serialized.
func (a *ApproxMSF) BatchInsert(edges []WeightedStreamEdge) {
	a.guard.enter()
	defer a.guard.exit()
	taus := make([]int64, len(edges))
	for i, e := range edges {
		if e.W < 1 || e.W > a.maxW {
			panic(fmt.Sprintf("sw: weight %d outside [1, %d]", e.W, a.maxW))
		}
		a.tau++
		taus[i] = a.tau
	}
	// Route each edge to every level whose threshold admits it. Levels are
	// nested (G_0 ⊆ G_1 ⊆ ...), so each edge goes to a suffix of levels.
	for i, inst := range a.inst {
		var sub []StreamEdge
		var subTau []int64
		for j, e := range edges {
			if e.W <= a.thresh[i] {
				sub = append(sub, StreamEdge{U: e.U, V: e.V})
				subTau = append(subTau, taus[j])
			}
		}
		if len(sub) > 0 {
			inst.batchInsertAt(sub, subTau)
		}
	}
}

// BatchExpire expires the oldest delta arrivals at every level.
// Single-writer: mutations must be externally serialized.
func (a *ApproxMSF) BatchExpire(delta int) {
	a.guard.enter()
	defer a.guard.exit()
	a.tw += int64(delta)
	if a.tw > a.tau {
		a.tw = a.tau
	}
	for _, inst := range a.inst {
		inst.expireTo(a.tw)
	}
}

// Weight returns the (1+ε)-approximate MSF weight of the window graph,
// treating each connected component separately (equation (1) of the paper).
// O(R) work.
func (a *ApproxMSF) Weight() float64 {
	w := float64(a.n - a.inst[0].NumComponents())
	scale := 1.0
	for i := 1; i < len(a.inst); i++ {
		scale *= 1 + a.eps
		w += float64(a.inst[i-1].NumComponents()-a.inst[i].NumComponents()) * scale
	}
	return w
}

// NumComponents returns the number of connected components of the window
// graph (the top level sees every edge).
func (a *ApproxMSF) NumComponents() int {
	return a.inst[len(a.inst)-1].NumComponents()
}
