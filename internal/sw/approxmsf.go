package sw

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/parallel"
)

// ApproxMSF is the sliding-window (1+ε)-approximate MSF weight structure of
// Theorem 5.4, via the component-counting reduction [11, 4, 13]: with
// G_i the subgraph of window edges of weight at most (1+ε)^i,
//
//	weight ≈ (n - cc(G_0)) + Σ_{i>=1} (cc(G_{i-1}) - cc(G_i))·(1+ε)^i,
//
// which overestimates each true MSF edge weight by at most a (1+ε) factor.
// Each G_i is an eager sliding-window connectivity structure sharing global
// timestamps, so expiry is uniform across all R = O(log_{1+ε} maxW) levels.
//
// The R levels are fully independent forests that only share the global
// (τ, TW) counters, so batch application forks-and-joins across them: each
// level's insert (and expiry) runs under that level's own writer guard, on
// the calling goroutine plus however many workers the configured budget
// grants (SetWorkers; the process-wide parallel.Default budget otherwise).
// Levels are nested (G_0 ⊆ G_1 ⊆ …), so a batch is bucketed ONCE by the
// level that first admits each edge, scattered — stably, preserving arrival
// order within a bucket — into a reusable scratch buffer in bucket order,
// and level i simply receives the prefix holding buckets 0..i plus the
// matching timestamp prefix: zero per-level routing allocations, identical
// forests either way (recency weights make every level's MSF unique
// regardless of the order edges appear in a batch).
type ApproxMSF struct {
	n      int
	eps    float64
	maxW   int64
	thresh []int64 // thresh[i] = floor((1+eps)^i), last >= maxW
	inst   []*ConnEager
	tau    int64
	tw     int64
	guard  writerGuard

	// workers is the fork-join budget for the per-level apply; nil means
	// the process-wide default (parallel.Default).
	workers *parallel.Limiter

	// Routing scratch, reused across batches (safe under the single-writer
	// contract). sorted/sortedTaus hold the batch in bucket order — level
	// i's input is the prefix sorted[:cum[i]]; lvls holds each input edge's
	// bucket; cum[i] accumulates the count of edges admitted at level <= i.
	sorted     []StreamEdge
	sortedTaus []int64
	lvls       []int32
	cum        []int

	// Level-span timing for the flight recorder, opt-in via
	// SetLevelTiming. Each level writes only its own index (disjoint
	// writes are race-free across the fork-join) and the reader drains
	// after the join, so no synchronization beyond the join barrier is
	// needed. Preallocated: timing a batch costs two clock reads per
	// non-empty level and zero allocations.
	timeLevels   bool
	levelStartNS []int64 // offset of each level's start from the fork point
	levelDurNS   []int64 // 0 = level did not run in the last timed insert
}

// NewApproxMSF returns an approximate-MSF-weight structure for edge weights
// in [1, maxWeight].
func NewApproxMSF(n int, eps float64, maxWeight int64, seed uint64) *ApproxMSF {
	if eps <= 0 {
		panic("sw: eps must be positive")
	}
	if maxWeight < 1 {
		panic("sw: maxWeight must be at least 1")
	}
	a := &ApproxMSF{n: n, eps: eps, maxW: maxWeight}
	for x := 1.0; ; x *= 1 + eps {
		t := int64(math.Floor(x))
		a.thresh = append(a.thresh, t)
		a.inst = append(a.inst, NewConnEager(n, seed+uint64(len(a.inst))*0x2545F491+3))
		if t >= maxWeight {
			break
		}
	}
	a.cum = make([]int, len(a.inst))
	return a
}

// Levels returns R, the number of maintained connectivity levels.
func (a *ApproxMSF) Levels() int { return len(a.inst) }

// SetWorkers installs the fork-join worker budget batch application borrows
// from (nil restores the process-wide parallel.Default budget; an empty
// budget — parallel.NewLimiter(0) — forces sequential level application).
// Must not be called concurrently with mutations.
func (a *ApproxMSF) SetWorkers(l *parallel.Limiter) { a.workers = l }

// SetLevelTiming turns per-level span timing of BatchInsert on or off.
// Must not be called concurrently with mutations (wiring time only).
func (a *ApproxMSF) SetLevelTiming(on bool) {
	a.timeLevels = on
	if on && a.levelDurNS == nil {
		a.levelStartNS = make([]int64, len(a.inst))
		a.levelDurNS = make([]int64, len(a.inst))
	}
}

// LevelSpans calls fn for every level the last timed BatchInsert ran
// (highest level first, matching the fork order), with the level's start
// offset from the fork point and its duration. Call after the mutation
// returns, from the same writer; the data is valid until the next insert.
func (a *ApproxMSF) LevelSpans(fn func(level int, startNS, durNS int64)) {
	if !a.timeLevels || a.levelDurNS == nil {
		return
	}
	for i := len(a.levelDurNS) - 1; i >= 0; i-- {
		if a.levelDurNS[i] > 0 {
			fn(i, a.levelStartNS[i], a.levelDurNS[i])
		}
	}
}

func (a *ApproxMSF) pool() *parallel.Limiter {
	if a.workers != nil {
		return a.workers
	}
	return parallel.Default()
}

// forEachLevel runs body over every level index, highest level first (the
// top levels see the most edges, so they must start before the cheap ones
// for the fork-join's dynamic load balance to matter).
func (a *ApproxMSF) forEachLevel(body func(level int)) {
	r := len(a.inst)
	parallel.ForEachLimited(r, a.pool(), func(i int) { body(r - 1 - i) })
}

// levelOf returns the first (smallest) level whose threshold admits w.
func (a *ApproxMSF) levelOf(w int64) int {
	return sort.Search(len(a.thresh), func(i int) bool { return a.thresh[i] >= w })
}

// BatchInsert appends weighted edge arrivals (weights in [1, maxWeight]).
// The whole batch is validated before any state moves, so a panic on a bad
// weight leaves the structure exactly as it was. Single-writer: mutations
// must be externally serialized.
func (a *ApproxMSF) BatchInsert(edges []WeightedStreamEdge) {
	if len(edges) == 0 {
		return
	}
	a.guard.enter()
	defer a.guard.exit()

	// Validate and classify up-front — no timestamp or forest mutation may
	// precede the last possible panic.
	lvls := a.lvls[:0]
	for i := range a.cum {
		a.cum[i] = 0
	}
	for _, e := range edges {
		if e.W < 1 || e.W > a.maxW {
			panic(fmt.Sprintf("sw: weight %d outside [1, %d]", e.W, a.maxW))
		}
		l := a.levelOf(e.W)
		lvls = append(lvls, int32(l))
		a.cum[l]++
	}
	a.lvls = lvls

	// Bucket offsets: after the scatter below, cum[i] = #edges with bucket
	// <= i — exactly the length of level i's prefix.
	off := 0
	for i, c := range a.cum {
		a.cum[i] = off
		off += c
	}

	// Assign arrival timestamps and scatter the batch — stably — into
	// bucket order. All scratch is reused across batches: the routing for
	// all R levels costs zero allocations at steady state.
	if cap(a.sorted) < len(edges) {
		a.sorted = make([]StreamEdge, len(edges))
		a.sortedTaus = make([]int64, len(edges))
	}
	sorted := a.sorted[:len(edges)]
	sortedTaus := a.sortedTaus[:len(edges)]
	base := a.tau
	a.tau += int64(len(edges))
	for j, e := range edges {
		l := lvls[j]
		p := a.cum[l]
		a.cum[l] = p + 1
		sorted[p] = StreamEdge{U: e.U, V: e.V}
		sortedTaus[p] = base + int64(j) + 1
	}

	// Fork-join the levels: level i inserts the prefix of buckets 0..i,
	// under its own writer guard (the levels share no state, so parallelism
	// across them is safe by construction — and asserted by the guards).
	var forkT0 time.Time
	if a.timeLevels {
		for i := range a.levelDurNS {
			a.levelDurNS[i] = 0
		}
		forkT0 = time.Now()
	}
	a.forEachLevel(func(i int) {
		cnt := a.cum[i]
		if cnt == 0 {
			return
		}
		var t0 time.Time
		if a.timeLevels {
			t0 = time.Now()
		}
		inst := a.inst[i]
		inst.guard.enter()
		inst.batchInsertAt(sorted[:cnt], sortedTaus[:cnt])
		inst.guard.exit()
		if a.timeLevels {
			a.levelStartNS[i] = t0.Sub(forkT0).Nanoseconds()
			a.levelDurNS[i] = time.Since(t0).Nanoseconds()
		}
	})
}

// BatchExpire expires the oldest delta arrivals at every level, fork-joined
// across levels like BatchInsert.
// Single-writer: mutations must be externally serialized.
func (a *ApproxMSF) BatchExpire(delta int) {
	if delta <= 0 {
		return
	}
	a.guard.enter()
	defer a.guard.exit()
	a.tw += int64(delta)
	if a.tw > a.tau {
		a.tw = a.tau
	}
	a.forEachLevel(func(i int) {
		inst := a.inst[i]
		inst.guard.enter()
		inst.expireTo(a.tw)
		inst.guard.exit()
	})
}

// Weight returns the (1+ε)-approximate MSF weight of the window graph,
// treating each connected component separately (equation (1) of the paper).
// O(R) work.
func (a *ApproxMSF) Weight() float64 {
	w := float64(a.n - a.inst[0].NumComponents())
	scale := 1.0
	for i := 1; i < len(a.inst); i++ {
		scale *= 1 + a.eps
		w += float64(a.inst[i-1].NumComponents()-a.inst[i].NumComponents()) * scale
	}
	return w
}

// NumComponents returns the number of connected components of the window
// graph (the top level sees every edge).
func (a *ApproxMSF) NumComponents() int {
	return a.inst[len(a.inst)-1].NumComponents()
}
