package sw

import (
	"repro/internal/core"
	"repro/internal/ordset"
	"repro/internal/wgraph"
)

// Conn is the lazy sliding-window connectivity structure SW-Conn of
// Theorem 5.1: expiry is O(1) (a watermark bump) and connectivity queries
// test the recent-edge condition on the heaviest (oldest) path edge.
type Conn struct {
	msf     *core.BatchMSF
	tau     int64 // arrivals so far
	tw      int64 // expired prefix; the window is (tw, tau]
	scratch []wgraph.Edge // conversion buffer, reused across batches
}

// NewConn returns a lazy sliding-window connectivity structure over n
// vertices.
func NewConn(n int, seed uint64) *Conn {
	return &Conn{msf: core.New(n, seed)}
}

// BatchInsert appends a batch of edge arrivals to the window.
func (c *Conn) BatchInsert(edges []StreamEdge) {
	if len(edges) == 0 {
		return
	}
	batch := c.scratch[:0]
	for _, e := range edges {
		c.tau++
		batch = append(batch, windowEdge(e.U, e.V, c.tau))
	}
	c.scratch = batch
	c.msf.BatchInsert(batch)
}

// batchInsertAt inserts arrivals with caller-assigned global timestamps
// (used when this instance receives a subset of a shared stream). The taus
// need not be sorted; the window advances to the largest one.
func (c *Conn) batchInsertAt(edges []StreamEdge, taus []int64) {
	if len(edges) == 0 {
		return
	}
	batch := c.scratch[:0]
	maxTau := c.tau
	for i, e := range edges {
		if taus[i] > maxTau {
			maxTau = taus[i]
		}
		batch = append(batch, windowEdge(e.U, e.V, taus[i]))
	}
	c.scratch = batch
	c.tau = maxTau
	c.msf.BatchInsert(batch)
}

// BatchExpire expires the oldest delta arrivals in O(1).
func (c *Conn) BatchExpire(delta int) { c.expireTo(c.tw + int64(delta)) }

func (c *Conn) expireTo(tw int64) {
	if tw > c.tau {
		tw = c.tau
	}
	if tw > c.tw {
		c.tw = tw
	}
}

// IsConnected reports whether u and v are connected using only unexpired
// edges (Lemma 5.1): they must be forest-connected and the oldest edge on
// their forest path must still be in the window.
func (c *Conn) IsConnected(u, v int32) bool {
	if u == v {
		return true
	}
	e, ok := c.msf.PathMaxEdge(u, v)
	return ok && int64(e.ID) > c.tw
}

// WindowLen returns the number of unexpired arrivals.
func (c *Conn) WindowLen() int64 { return c.tau - c.tw }

// ConnEager is SW-Conn-Eager of Theorem 5.2: it additionally keeps the
// forest edges in an ordered set keyed by arrival time so that expiry can
// physically delete expired tree edges, which makes the component count
// available in O(1).
type ConnEager struct {
	msf     *core.BatchMSF
	d       *ordset.Set // unexpired forest edges keyed by τ
	n       int
	tau     int64
	tw      int64
	guard   writerGuard     // single-writer assert (see package comment)
	scratch []wgraph.Edge   // conversion buffer, reused across batches
	idBuf   []wgraph.EdgeID // expiry delete buffer, reused across expiries
}

// NewConnEager returns an eager sliding-window connectivity structure.
func NewConnEager(n int, seed uint64) *ConnEager {
	return &ConnEager{msf: core.New(n, seed), d: ordset.New(seed ^ 0x9e37), n: n}
}

// BatchInsert appends a batch of edge arrivals to the window.
// Single-writer: mutations must be externally serialized.
func (c *ConnEager) BatchInsert(edges []StreamEdge) {
	if len(edges) == 0 {
		return
	}
	c.guard.enter()
	defer c.guard.exit()
	batch := c.scratch[:0]
	for _, e := range edges {
		c.tau++
		batch = append(batch, windowEdge(e.U, e.V, c.tau))
	}
	c.scratch = batch
	c.applyBatch(batch)
}

// batchInsertAt inserts arrivals with caller-assigned global timestamps
// (used when this instance receives a subset of a shared stream — the
// bipartite double cover and the msfweight level router). The taus need not
// be sorted; the window advances to the largest one.
func (c *ConnEager) batchInsertAt(edges []StreamEdge, taus []int64) {
	if len(edges) == 0 {
		return
	}
	batch := c.scratch[:0]
	maxTau := c.tau
	for i, e := range edges {
		if taus[i] > maxTau {
			maxTau = taus[i]
		}
		batch = append(batch, windowEdge(e.U, e.V, taus[i]))
	}
	c.scratch = batch
	c.tau = maxTau
	c.applyBatch(batch)
}

func (c *ConnEager) applyBatch(batch []wgraph.Edge) {
	added, removed, _ := c.msf.BatchInsert(batch)
	for _, e := range removed {
		c.d.Delete(int64(e.ID))
	}
	for _, e := range added {
		c.d.Insert(int64(e.ID), e)
	}
}

// BatchExpire expires the oldest delta arrivals, physically cutting expired
// forest edges. Safe without replacement search by the recent-edge property:
// any replacement would be older and hence also expired.
// Single-writer: mutations must be externally serialized.
func (c *ConnEager) BatchExpire(delta int) {
	c.guard.enter()
	defer c.guard.exit()
	c.expireTo(c.tw + int64(delta))
}

func (c *ConnEager) expireTo(tw int64) {
	if tw > c.tau {
		tw = c.tau
	}
	if tw <= c.tw {
		return
	}
	c.tw = tw
	evicted := c.d.SplitLeq(tw)
	if len(evicted) == 0 {
		return
	}
	ids := c.idBuf[:0]
	for _, e := range evicted {
		ids = append(ids, e.ID)
	}
	c.idBuf = ids
	c.msf.BatchDelete(ids)
}

// IsConnected reports window connectivity. After eager expiry the forest
// contains only unexpired edges, so this is a plain forest query.
func (c *ConnEager) IsConnected(u, v int32) bool { return c.msf.Connected(u, v) }

// NumComponents returns the number of connected components of the window
// graph in O(1): n minus the number of unexpired forest edges.
func (c *ConnEager) NumComponents() int { return c.n - c.d.Len() }

// ForestEdges visits the unexpired spanning-forest edges in arrival order.
func (c *ConnEager) ForestEdges(fn func(e wgraph.Edge) bool) {
	c.d.ForEach(func(_ int64, e wgraph.Edge) bool { return fn(e) })
}

// WindowLen returns the number of unexpired arrivals.
func (c *ConnEager) WindowLen() int64 { return c.tau - c.tw }
