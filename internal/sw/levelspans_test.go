package sw

import (
	"math/rand"
	"testing"
)

// TestApproxMSFLevelSpans pins the flight-recorder level timing: spans
// cover exactly the levels the insert ran, highest first, and timing a
// batch leaves the forests bit-identical to an untimed twin.
func TestApproxMSFLevelSpans(t *testing.T) {
	const n, maxW = 64, 1 << 10
	timed := NewApproxMSF(n, 0.25, maxW, 7)
	plain := NewApproxMSF(n, 0.25, maxW, 7)
	timed.SetLevelTiming(true)

	rng := rand.New(rand.NewSource(11))
	for b := 0; b < 5; b++ {
		batch := make([]WeightedStreamEdge, 32)
		for j := range batch {
			batch[j] = WeightedStreamEdge{
				U: int32(rng.Intn(n)), V: int32(rng.Intn(n)), W: 1 + rng.Int63n(maxW),
			}
		}
		timed.BatchInsert(batch)
		plain.BatchInsert(batch)

		var levels []int
		timed.LevelSpans(func(level int, startNS, durNS int64) {
			if durNS <= 0 || startNS < 0 {
				t.Fatalf("batch %d level %d: start=%d dur=%d", b, level, startNS, durNS)
			}
			levels = append(levels, level)
		})
		if len(levels) == 0 {
			t.Fatalf("batch %d: no level spans", b)
		}
		for i := 1; i < len(levels); i++ {
			if levels[i] >= levels[i-1] {
				t.Fatalf("batch %d: spans not highest-level-first: %v", b, levels)
			}
		}
		// Nested levels: the highest level sees every batch, so it must
		// always appear.
		if levels[0] != timed.Levels()-1 {
			t.Fatalf("batch %d: top level missing from spans: %v", b, levels)
		}
		if timed.Weight() != plain.Weight() || timed.NumComponents() != plain.NumComponents() {
			t.Fatalf("batch %d: timing changed results: %v vs %v", b, timed.Weight(), plain.Weight())
		}
	}

	// Expiry must not disturb the recorded insert spans.
	var before []int
	timed.LevelSpans(func(level int, _, _ int64) { before = append(before, level) })
	timed.BatchExpire(10)
	plain.BatchExpire(10)
	var after []int
	timed.LevelSpans(func(level int, _, _ int64) { after = append(after, level) })
	if len(before) != len(after) {
		t.Fatalf("expire disturbed level spans: %v vs %v", before, after)
	}
	if timed.Weight() != plain.Weight() {
		t.Fatal("timing changed expiry results")
	}

	// Untimed structures never report spans.
	plain.LevelSpans(func(int, int64, int64) { t.Fatal("untimed structure reported spans") })
}
