package sw

import (
	"repro/internal/core"
	"repro/internal/mincut"
	"repro/internal/ordset"
	"repro/internal/wgraph"
)

// KCert maintains the sliding-window k-certificate of Theorem 5.5: a
// maximal spanning forest decomposition F_1, ..., F_k of the window graph,
// where F_i is a maximal spanning forest of G minus the earlier forests.
// The union of the unexpired forest edges preserves all cuts of size at
// most k and hence witnesses pairwise and global k-connectivity
// (properties P1-P3).
//
// Insertion cascades: the batch is offered to F_1; the edges F_1 evicts or
// rejects are offered to F_2, and so on (the replacement sets O_i of the
// paper). Expiry is eager in every level.
type KCert struct {
	k       int
	n       int
	f       []*core.BatchMSF
	d       []*ordset.Set // unexpired edges of F_i keyed by τ
	tau     int64
	tw      int64
	guard   writerGuard
	tauBuf  []int64         // timestamp buffer, reused across batches
	scratch []wgraph.Edge   // cascade buffer, reused across batches
	idBuf   []wgraph.EdgeID // expiry delete buffer, reused across expiries
}

// NewKCert returns a k-certificate structure over n vertices.
func NewKCert(n, k int, seed uint64) *KCert {
	if k < 1 {
		panic("sw: k must be at least 1")
	}
	c := &KCert{k: k, n: n}
	for i := 0; i < k; i++ {
		c.f = append(c.f, core.New(n, seed+uint64(i)*0x9e3779b9+1))
		c.d = append(c.d, ordset.New(seed^uint64(i)*0x85ebca6b+7))
	}
	return c
}

// K returns the certificate order.
func (c *KCert) K() int { return c.k }

// BatchInsert appends edge arrivals to the window.
// Single-writer: mutations must be externally serialized.
func (c *KCert) BatchInsert(edges []StreamEdge) {
	if len(edges) == 0 {
		return
	}
	c.guard.enter()
	defer c.guard.exit()
	taus := c.tauBuf[:0]
	for range edges {
		c.tau++
		taus = append(taus, c.tau)
	}
	c.tauBuf = taus
	c.batchInsertAt(edges, taus)
}

func (c *KCert) batchInsertAt(edges []StreamEdge, taus []int64) {
	if len(edges) == 0 {
		return
	}
	o := c.scratch[:0]
	for i, e := range edges {
		if taus[i] > c.tau {
			c.tau = taus[i]
		}
		o = append(o, windowEdge(e.U, e.V, taus[i]))
	}
	for i := 0; i < c.k && len(o) > 0; i++ {
		added, removed, rejected := c.f[i].BatchInsert(o)
		for _, e := range removed {
			c.d[i].Delete(int64(e.ID))
		}
		for _, e := range added {
			c.d[i].Insert(int64(e.ID), e)
		}
		// O_i of the paper: evicted forest edges plus rejected arrivals
		// cascade to the next level.
		o = o[:0]
		o = append(o, removed...)
		o = append(o, rejected...)
	}
	c.scratch = o[:0]
}

// BatchExpire expires the oldest delta arrivals in every level.
// Single-writer: mutations must be externally serialized.
func (c *KCert) BatchExpire(delta int) {
	c.guard.enter()
	defer c.guard.exit()
	c.expireTo(c.tw + int64(delta))
}

func (c *KCert) expireTo(tw int64) {
	if tw > c.tau {
		tw = c.tau
	}
	if tw <= c.tw {
		return
	}
	c.tw = tw
	for i := 0; i < c.k; i++ {
		evicted := c.d[i].SplitLeq(tw)
		if len(evicted) == 0 {
			continue
		}
		ids := c.idBuf[:0]
		for _, e := range evicted {
			ids = append(ids, e.ID)
		}
		c.idBuf = ids
		c.f[i].BatchDelete(ids)
	}
}

// Certificate returns the unexpired edges of all k forests — at most
// k(n-1) edges preserving every cut of size <= k. Endpoints are original
// vertices; each edge's ID is its arrival time τ.
func (c *KCert) Certificate() []wgraph.Edge {
	var out []wgraph.Edge
	for i := 0; i < c.k; i++ {
		c.d[i].ForEach(func(_ int64, e wgraph.Edge) bool {
			out = append(out, e)
			return true
		})
	}
	return out
}

// Contains reports whether the arrival with timestamp tau is currently a
// certificate edge.
func (c *KCert) Contains(tau int64) bool {
	for i := 0; i < c.k; i++ {
		if c.d[i].Has(tau) {
			return true
		}
	}
	return false
}

// Size returns the number of certificate edges.
func (c *KCert) Size() int {
	s := 0
	for i := 0; i < c.k; i++ {
		s += c.d[i].Len()
	}
	return s
}

// LevelSize returns the number of unexpired edges in forest F_{i+1}.
func (c *KCert) LevelSize(i int) int { return c.d[i].Len() }

// IsConnected reports window connectivity (level F_1 spans the window
// graph).
func (c *KCert) IsConnected(u, v int32) bool { return c.f[0].Connected(u, v) }

// EdgeConnectivityUpToK returns min(k, edge connectivity of the window
// graph), the k-connectivity test of Section 5.4: by property P3 the
// certificate preserves all cuts of size at most k, so a global min-cut
// over its O(kn) edges (Stoer–Wagner, standing in for the parallel min-cut
// of [27, 28]) answers exactly.
func (c *KCert) EdgeConnectivityUpToK() int {
	cut := mincut.EdgeConnectivity(c.n, c.Certificate())
	if cut > int64(c.k) {
		return c.k
	}
	return int(cut)
}

// CycleFree is the cycle-freeness monitor of Theorem 5.6: the window graph
// is a forest iff F_2 of a 2-certificate holds no unexpired edge.
type CycleFree struct {
	kc *KCert
}

// NewCycleFree returns a cycle-freeness monitor over n vertices.
func NewCycleFree(n int, seed uint64) *CycleFree {
	return &CycleFree{kc: NewKCert(n, 2, seed)}
}

// BatchInsert appends edge arrivals to the window. Single-writer,
// asserted by the underlying certificate's guard.
func (c *CycleFree) BatchInsert(edges []StreamEdge) { c.kc.BatchInsert(edges) }

// BatchExpire expires the oldest delta arrivals. Single-writer, asserted
// by the underlying certificate's guard.
func (c *CycleFree) BatchExpire(delta int) { c.kc.BatchExpire(delta) }

// HasCycle reports in O(1) whether the window graph contains a cycle.
func (c *CycleFree) HasCycle() bool { return c.kc.LevelSize(1) > 0 }
