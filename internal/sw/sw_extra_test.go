package sw

import (
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// TestKCertEdgeConnectivityUpToK compares the Section 5.4 k-connectivity
// query against brute-force min-cut of the window graph.
func TestKCertEdgeConnectivityUpToK(t *testing.T) {
	const n = 10
	const k = 3
	r := parallel.NewRNG(3)
	c := NewKCert(n, k, 5)
	w := &window{n: n}
	for round := 0; round < 25; round++ {
		batch := randStream(r, n, 2+r.Intn(8))
		clean := batch[:0]
		for _, e := range batch {
			if e.U != e.V {
				clean = append(clean, e)
			}
		}
		c.BatchInsert(clean)
		w.insert(clean, nil)
		d := r.Intn(6)
		c.BatchExpire(d)
		w.expire(d)
		got := c.EdgeConnectivityUpToK()
		want := bruteMinCut(n, w.live())
		if want > k {
			want = k
		}
		if got != want {
			t.Fatalf("round %d: connectivity %d want %d", round, got, want)
		}
	}
}

// bruteMinCut enumerates bipartitions (n <= 16) counting crossing edges.
func bruteMinCut(n int, edges []StreamEdge) int {
	best := 1 << 30
	for mask := 1; mask < (1<<n)-1; mask++ {
		c := 0
		for _, e := range edges {
			if (mask>>e.U)&1 != (mask>>e.V)&1 {
				c++
			}
		}
		if c < best {
			best = c
		}
	}
	if best == 1<<30 {
		return 0
	}
	return best
}

// TestQuickWindowInterleavings drives arbitrary interleavings of inserts
// and expirations from quick-generated scripts, checking eager connectivity
// and component counts against the brute-force window at every step.
func TestQuickWindowInterleavings(t *testing.T) {
	f := func(script []uint16) bool {
		const n = 16
		c := NewConnEager(n, 9)
		w := &window{n: n}
		i := 0
		for i < len(script) {
			op := script[i] % 4
			i++
			switch op {
			case 0, 1, 2: // insert a small batch
				var batch []StreamEdge
				for j := 0; j < int(op)+1 && i+1 < len(script); j++ {
					u := int32(script[i] % n)
					v := int32(script[i+1] % n)
					i += 2
					if u != v {
						batch = append(batch, StreamEdge{U: u, V: v})
					}
				}
				c.BatchInsert(batch)
				w.insert(batch, nil)
			case 3: // expire
				if i < len(script) {
					d := int(script[i] % 8)
					i++
					c.BatchExpire(d)
					w.expire(d)
				}
			}
			uf := w.uf()
			if c.NumComponents() != uf.NumComponents() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowLenAccounting(t *testing.T) {
	c := NewConn(4, 1)
	if c.WindowLen() != 0 {
		t.Fatal("fresh window nonempty")
	}
	c.BatchInsert([]StreamEdge{{0, 1}, {1, 2}, {2, 3}})
	if c.WindowLen() != 3 {
		t.Fatalf("len=%d", c.WindowLen())
	}
	c.BatchExpire(2)
	if c.WindowLen() != 1 {
		t.Fatalf("len=%d", c.WindowLen())
	}
	c.BatchExpire(100)
	if c.WindowLen() != 0 {
		t.Fatalf("over-expire: len=%d", c.WindowLen())
	}
}

func TestConnEagerForestEdgesOrdered(t *testing.T) {
	c := NewConnEager(5, 3)
	c.BatchInsert([]StreamEdge{{0, 1}, {1, 2}, {3, 4}})
	var taus []int64
	c.ForestEdges(func(e wgraph.Edge) bool {
		taus = append(taus, int64(e.ID))
		return true
	})
	if len(taus) != 3 {
		t.Fatalf("forest=%v", taus)
	}
	for i := 1; i < len(taus); i++ {
		if taus[i-1] >= taus[i] {
			t.Fatalf("not in arrival order: %v", taus)
		}
	}
}

func TestKCertLevelSizes(t *testing.T) {
	c := NewKCert(4, 2, 7)
	// Two parallel edges: the second lands in F_2.
	c.BatchInsert([]StreamEdge{{0, 1}, {0, 1}})
	if c.LevelSize(0) != 1 || c.LevelSize(1) != 1 {
		t.Fatalf("levels: %d %d", c.LevelSize(0), c.LevelSize(1))
	}
	if !c.Contains(1) || !c.Contains(2) || c.Contains(3) {
		t.Fatal("Contains wrong")
	}
	// Expire the first arrival: F_1 loses its edge; F_2 keeps the newer one.
	c.BatchExpire(1)
	if c.Contains(1) {
		t.Fatal("expired arrival still contained")
	}
	if c.Size() != 1 {
		t.Fatalf("size=%d", c.Size())
	}
}

func TestBipartiteSelfLoopStream(t *testing.T) {
	// A self-loop is an odd cycle: the double cover maps (v,v) to two
	// (v1,v2) edges, merging the covers — non-bipartite, as it must be.
	b := NewBipartite(3, 5)
	b.BatchInsert([]StreamEdge{{1, 1}})
	if b.IsBipartite() {
		t.Fatal("self-loop window should be non-bipartite")
	}
	b.BatchExpire(1)
	if !b.IsBipartite() {
		t.Fatal("empty window should be bipartite")
	}
}

func TestApproxMSFDrainAndRefill(t *testing.T) {
	a := NewApproxMSF(6, 0.5, 100, 3)
	a.BatchInsert([]WeightedStreamEdge{{0, 1, 10}, {1, 2, 20}, {2, 3, 30}})
	if a.Weight() <= 0 {
		t.Fatal("weight should be positive")
	}
	a.BatchExpire(3)
	if a.Weight() != 0 {
		t.Fatalf("drained weight=%v", a.Weight())
	}
	a.BatchInsert([]WeightedStreamEdge{{4, 5, 7}})
	if a.Weight() < 7 || a.Weight() > 7*1.5+1e-9 {
		t.Fatalf("refilled weight=%v", a.Weight())
	}
}

// TestSlidingConnectivityLongRun is an endurance run: 500 rounds of mixed
// insert/expire with spot checks, catching slow state corruption.
func TestSlidingConnectivityLongRun(t *testing.T) {
	const n = 30
	r := parallel.NewRNG(2024)
	c := NewConnEager(n, 55)
	w := &window{n: n}
	for round := 0; round < 500; round++ {
		batch := randStream(r, n, 1+r.Intn(5))
		c.BatchInsert(batch)
		w.insert(batch, nil)
		d := r.Intn(6)
		c.BatchExpire(d)
		w.expire(d)
		if round%25 == 0 {
			uf := w.uf()
			if c.NumComponents() != uf.NumComponents() {
				t.Fatalf("round %d: components %d want %d", round, c.NumComponents(), uf.NumComponents())
			}
			for q := 0; q < 10; q++ {
				u, v := int32(r.Intn(n)), int32(r.Intn(n))
				if c.IsConnected(u, v) != uf.Connected(u, v) {
					t.Fatalf("round %d: connectivity (%d,%d)", round, u, v)
				}
			}
		}
	}
}
