package sw

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// BenchmarkApproxMSFLevels isolates the msfweight batch apply — the R
// nested connectivity levels — under sequential vs fork-joined level
// application. Unlike the swload mixed shape, nothing else competes for
// the scheduler here, so the ratio of the two is the pure intra-monitor
// speedup (≈1 at GOMAXPROCS=1, approaching min(R, P) as real cores grow;
// on an oversubscribed single core the fork-join overhead shows up as a
// few percent). Expiry rides along so the window stays at steady state
// and the routing scratch is exercised on every iteration.
func BenchmarkApproxMSFLevels(b *testing.B) {
	const (
		n      = 5_000
		maxW   = 1 << 20
		eps    = 0.25
		batch  = 512
		window = 20_000
	)
	for _, mode := range []struct {
		name    string
		workers *parallel.Limiter
	}{
		{"sequential", parallel.NewLimiter(0)},
		{"parallel", nil}, // nil → parallel.Default(): GOMAXPROCS-1 aux workers
	} {
		b.Run(mode.name, func(b *testing.B) {
			a := NewApproxMSF(n, eps, maxW, 7)
			a.SetWorkers(mode.workers)
			r := rand.New(rand.NewSource(3))
			batches := make([][]WeightedStreamEdge, 64)
			for i := range batches {
				batches[i] = make([]WeightedStreamEdge, batch)
				for j := range batches[i] {
					u := int32(r.Intn(n))
					v := int32(r.Intn(n - 1))
					if v >= u {
						v++
					}
					batches[i][j] = WeightedStreamEdge{U: u, V: v, W: 1 + r.Int63n(maxW)}
				}
			}
			// Pre-fill to the steady-state window population.
			for i := 0; i*batch < window; i++ {
				a.BatchInsert(batches[i%len(batches)])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.BatchInsert(batches[i%len(batches)])
				a.BatchExpire(batch)
			}
		})
	}
}
