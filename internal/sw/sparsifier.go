package sw

import (
	"math"
	"math/bits"

	"repro/internal/parallel"
)

// SparsifierConfig tunes the sliding-window ε-cut-sparsifier of
// Theorem 5.8. The paper's constants (p̃_e >= 253·ε⁻²·lg²n / c_e and
// certificate order k = O(ε⁻²·lg³n)) make every laptop-scale graph sample
// with probability 1, so SampleConst and CertOrder default to scaled-down
// values that preserve the structure (connectivity-estimated sampling
// rates, certificate retention) while producing non-trivial sparsifiers at
// test scale; see DESIGN.md §2 and EXPERIMENTS.md.
type SparsifierConfig struct {
	Eps         float64 // target cut error (default 0.5)
	Levels      int     // L: sampling levels (default ceil(lg n))
	Trials      int     // K: independent connectivity estimators (default 2)
	CertOrder   int     // k of each Q_i (default 2*ceil(lg n))
	SampleConst float64 // C in p̃_e = min(1, C·2^{-L(e)}) (default 4)
}

func (c *SparsifierConfig) fill(n int) {
	lg := bits.Len(uint(n)) + 1
	if c.Eps == 0 {
		c.Eps = 0.5
	}
	if c.Levels == 0 {
		c.Levels = lg
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CertOrder == 0 {
		c.CertOrder = 2 * lg
	}
	if c.SampleConst == 0 {
		c.SampleConst = 4
	}
}

// SparseEdge is one sparsifier output edge: the window arrival Tau with its
// importance weight 1/p̃.
type SparseEdge struct {
	U, V   int32
	Tau    int64
	Weight float64
}

// Sparsifier maintains a sliding-window cut sparsifier: K·(L+1) lazy
// connectivity structures over nested subsampled graphs G_i^(j) estimate
// each edge's connectivity (Lemma 5.2), and L+1 k-certificates Q_i over
// nested subsampled graphs H_i retain enough edges at every sampling rate
// (Lemma 5.3). Sparsify() replays the sampling decision of every retained
// edge with its estimated rate.
type Sparsifier struct {
	n    int
	cfg  SparsifierConfig
	conn [][]*Conn // [level][trial]
	q    []*KCert  // [level]
	seed uint64
	tau  int64
	tw   int64
}

// NewSparsifier returns a sliding-window cut sparsifier over n vertices.
func NewSparsifier(n int, cfg SparsifierConfig, seed uint64) *Sparsifier {
	cfg.fill(n)
	s := &Sparsifier{n: n, cfg: cfg, seed: seed}
	for i := 0; i <= cfg.Levels; i++ {
		var row []*Conn
		for j := 0; j < cfg.Trials; j++ {
			row = append(row, NewConn(n, seed+uint64(i*977+j*131+1)))
		}
		s.conn = append(s.conn, row)
		s.q = append(s.q, NewKCert(n, cfg.CertOrder, seed+uint64(i*7919+13)))
	}
	return s
}

// gLevel returns the highest i such that arrival tau belongs to G_i^(j)
// (nested sampling with probability 2^-i).
func (s *Sparsifier) gLevel(tau int64, j int) int {
	h := parallel.Hash3(s.seed^0xA5A5, uint64(tau), uint64(j))
	tz := bits.TrailingZeros64(h | 1<<63)
	if tz > s.cfg.Levels {
		return s.cfg.Levels
	}
	return tz
}

// hLevel returns the highest i such that arrival tau belongs to H_i.
func (s *Sparsifier) hLevel(tau int64) int {
	h := parallel.Hash2(s.seed^0xC3C3, uint64(tau))
	tz := bits.TrailingZeros64(h | 1<<63)
	if tz > s.cfg.Levels {
		return s.cfg.Levels
	}
	return tz
}

// BatchInsert appends edge arrivals to the window.
func (s *Sparsifier) BatchInsert(edges []StreamEdge) {
	taus := make([]int64, len(edges))
	for i := range edges {
		s.tau++
		taus[i] = s.tau
	}
	for i := 0; i <= s.cfg.Levels; i++ {
		for j := 0; j < s.cfg.Trials; j++ {
			var sub []StreamEdge
			var st []int64
			for x, e := range edges {
				if s.gLevel(taus[x], j) >= i {
					sub = append(sub, e)
					st = append(st, taus[x])
				}
			}
			if len(sub) > 0 {
				s.conn[i][j].batchInsertAt(sub, st)
			}
		}
		var sub []StreamEdge
		var st []int64
		for x, e := range edges {
			if s.hLevel(taus[x]) >= i {
				sub = append(sub, e)
				st = append(st, taus[x])
			}
		}
		if len(sub) > 0 {
			s.q[i].batchInsertAt(sub, st)
		}
	}
}

// BatchExpire expires the oldest delta arrivals everywhere.
func (s *Sparsifier) BatchExpire(delta int) {
	s.tw += int64(delta)
	if s.tw > s.tau {
		s.tw = s.tau
	}
	for i := 0; i <= s.cfg.Levels; i++ {
		for j := 0; j < s.cfg.Trials; j++ {
			s.conn[i][j].expireTo(s.tw)
		}
		s.q[i].expireTo(s.tw)
	}
}

// estLevel computes L(u, v): the largest i such that u and v are connected
// in G_i^(j) for every trial j (Lemma 5.2 connectivity estimation).
func (s *Sparsifier) estLevel(u, v int32) int {
	for i := s.cfg.Levels; i >= 1; i-- {
		all := true
		for j := 0; j < s.cfg.Trials; j++ {
			if !s.conn[i][j].IsConnected(u, v) {
				all = false
				break
			}
		}
		if all {
			return i
		}
	}
	return 0
}

// Sparsify returns an ε-cut-sparsifier of the window graph: every retained
// certificate edge whose replayed sampling level matches its estimated rate,
// weighted by the inverse sampling probability.
func (s *Sparsifier) Sparsify() []SparseEdge {
	var out []SparseEdge
	seen := map[int64]bool{}
	for i := 0; i <= s.cfg.Levels; i++ {
		for _, e := range s.q[i].Certificate() {
			tau := int64(e.ID)
			if seen[tau] {
				continue
			}
			seen[tau] = true
			lvl := s.estLevel(e.U, e.V)
			pt := math.Min(1, s.cfg.SampleConst*math.Pow(2, -float64(lvl)))
			beta := int(math.Floor(-math.Log2(pt))) // halvings: p rounded to 2^-beta
			if beta < 0 {
				beta = 0
			}
			if beta > s.cfg.Levels {
				beta = s.cfg.Levels
			}
			if s.hLevel(tau) >= beta && s.q[beta].Contains(tau) {
				out = append(out, SparseEdge{
					U: e.U, V: e.V, Tau: tau,
					Weight: math.Pow(2, float64(beta)),
				})
			}
		}
	}
	return out
}

// WindowLen returns the number of unexpired arrivals.
func (s *Sparsifier) WindowLen() int64 { return s.tau - s.tw }
