package sw

import (
	"testing"

	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// window is a brute-force sliding-window model: it stores every arrival and
// recomputes from scratch.
type window struct {
	n        int
	arrivals []StreamEdge
	weights  []int64
	tw       int
}

func (w *window) insert(es []StreamEdge, wts []int64) {
	w.arrivals = append(w.arrivals, es...)
	if wts == nil {
		wts = make([]int64, len(es))
	}
	w.weights = append(w.weights, wts...)
}

func (w *window) expire(d int) {
	w.tw += d
	if w.tw > len(w.arrivals) {
		w.tw = len(w.arrivals)
	}
}

func (w *window) live() []StreamEdge { return w.arrivals[w.tw:] }

func (w *window) uf() *unionfind.UF {
	u := unionfind.New(w.n)
	for _, e := range w.live() {
		u.Union(e.U, e.V)
	}
	return u
}

func (w *window) liveWeighted() []wgraph.Edge {
	var out []wgraph.Edge
	for i := w.tw; i < len(w.arrivals); i++ {
		e := w.arrivals[i]
		out = append(out, wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: e.U, V: e.V, W: w.weights[i]})
	}
	return out
}

func (w *window) hasCycle() bool {
	u := unionfind.New(w.n)
	for _, e := range w.live() {
		if e.U == e.V || !u.Union(e.U, e.V) {
			return true
		}
	}
	return false
}

func (w *window) bipartite() bool {
	color := make([]int8, w.n)
	adj := make([][]int32, w.n)
	for _, e := range w.live() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for s := 0; s < w.n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		stack := []int32{int32(s)}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if color[y] == 0 {
					color[y] = -color[x]
					stack = append(stack, y)
				} else if color[y] == color[x] {
					return false
				}
			}
		}
	}
	return true
}

func randStream(r *parallel.RNG, n, m int) []StreamEdge {
	out := make([]StreamEdge, m)
	for i := range out {
		out[i] = StreamEdge{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
	}
	return out
}

// --- Conn / ConnEager --------------------------------------------------------

func TestConnLazyVsBruteForce(t *testing.T) {
	const n = 40
	r := parallel.NewRNG(5)
	c := NewConn(n, 11)
	w := &window{n: n}
	for round := 0; round < 60; round++ {
		batch := randStream(r, n, 1+r.Intn(12))
		c.BatchInsert(batch)
		w.insert(batch, nil)
		if r.Intn(2) == 0 {
			d := r.Intn(10)
			c.BatchExpire(d)
			w.expire(d)
		}
		uf := w.uf()
		for q := 0; q < 40; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := c.IsConnected(u, v), uf.Connected(u, v); got != want {
				t.Fatalf("round %d: IsConnected(%d,%d)=%v want %v (window %d..%d)", round, u, v, got, want, w.tw, len(w.arrivals))
			}
		}
	}
}

func TestConnEagerVsBruteForce(t *testing.T) {
	const n = 35
	r := parallel.NewRNG(7)
	c := NewConnEager(n, 13)
	w := &window{n: n}
	for round := 0; round < 60; round++ {
		batch := randStream(r, n, 1+r.Intn(10))
		c.BatchInsert(batch)
		w.insert(batch, nil)
		d := r.Intn(12)
		c.BatchExpire(d)
		w.expire(d)
		uf := w.uf()
		if got, want := c.NumComponents(), uf.NumComponents(); got != want {
			t.Fatalf("round %d: components=%d want %d", round, got, want)
		}
		for q := 0; q < 30; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := c.IsConnected(u, v), uf.Connected(u, v); got != want {
				t.Fatalf("round %d: IsConnected(%d,%d)=%v want %v", round, u, v, got, want)
			}
		}
	}
}

func TestConnExpireEverything(t *testing.T) {
	c := NewConnEager(5, 3)
	c.BatchInsert([]StreamEdge{{0, 1}, {1, 2}, {3, 4}})
	if c.NumComponents() != 2 {
		t.Fatalf("components=%d", c.NumComponents())
	}
	c.BatchExpire(1000) // over-expire clamps to the window
	if c.NumComponents() != 5 {
		t.Fatalf("components=%d after drain", c.NumComponents())
	}
	if c.IsConnected(0, 1) {
		t.Fatal("connectivity survived drain")
	}
	// The window can refill after a drain.
	c.BatchInsert([]StreamEdge{{0, 4}})
	if !c.IsConnected(0, 4) || c.NumComponents() != 4 {
		t.Fatal("refill failed")
	}
}

func TestConnLazyExpireIsO1(t *testing.T) {
	c := NewConn(4, 1)
	c.BatchInsert([]StreamEdge{{0, 1}, {1, 2}})
	c.BatchExpire(1)
	if c.IsConnected(0, 1) {
		t.Fatal("edge (0,1) expired but still connected")
	}
	if !c.IsConnected(1, 2) {
		t.Fatal("edge (1,2) should survive")
	}
	if c.WindowLen() != 1 {
		t.Fatalf("window len=%d", c.WindowLen())
	}
}

func TestConnReinsertionAfterExpiry(t *testing.T) {
	// The same logical edge re-arrives after expiring: recency weights make
	// the fresh copy the forest edge.
	c := NewConnEager(3, 9)
	c.BatchInsert([]StreamEdge{{0, 1}})
	c.BatchExpire(1)
	if c.IsConnected(0, 1) {
		t.Fatal("expired")
	}
	c.BatchInsert([]StreamEdge{{0, 1}})
	if !c.IsConnected(0, 1) {
		t.Fatal("re-arrival not connected")
	}
}

// --- Bipartiteness -----------------------------------------------------------

func TestBipartiteOddEvenCycles(t *testing.T) {
	b := NewBipartite(6, 5)
	// Even cycle 0-1-2-3-0: bipartite.
	b.BatchInsert([]StreamEdge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if !b.IsBipartite() {
		t.Fatal("even cycle reported non-bipartite")
	}
	// Add a chord making a triangle: 0-2.
	b.BatchInsert([]StreamEdge{{0, 2}})
	if b.IsBipartite() {
		t.Fatal("odd cycle missed")
	}
	// Expire the whole original cycle; the chord alone is bipartite.
	b.BatchExpire(4)
	if !b.IsBipartite() {
		t.Fatal("expired odd cycle still reported")
	}
}

func TestBipartiteVsBruteForce(t *testing.T) {
	const n = 20
	r := parallel.NewRNG(17)
	b := NewBipartite(n, 23)
	w := &window{n: n}
	for round := 0; round < 80; round++ {
		batch := randStream(r, n, 1+r.Intn(6))
		// Filter self-loops for the model's 2-colouring (a self-loop makes
		// the graph non-bipartite; keep them out to keep the oracle simple).
		clean := batch[:0]
		for _, e := range batch {
			if e.U != e.V {
				clean = append(clean, e)
			}
		}
		b.BatchInsert(clean)
		w.insert(clean, nil)
		d := r.Intn(8)
		b.BatchExpire(d)
		w.expire(d)
		if got, want := b.IsBipartite(), w.bipartite(); got != want {
			t.Fatalf("round %d: IsBipartite=%v want %v", round, got, want)
		}
	}
}

// --- k-certificate -----------------------------------------------------------

// maxFlow computes undirected edge connectivity between s and t via
// Edmonds-Karp with per-direction unit capacities.
func maxFlow(n int, edges []wgraph.Edge, s, t int32, cap int) int {
	type arc struct {
		to   int32
		flow int8
		rev  int
	}
	adj := make([][]int, n)
	arcs := []arc{}
	addEdge := func(u, v int32) {
		adj[u] = append(adj[u], len(arcs))
		arcs = append(arcs, arc{to: v, rev: len(arcs) + 1})
		adj[v] = append(adj[v], len(arcs))
		arcs = append(arcs, arc{to: u, rev: len(arcs) - 1})
	}
	for _, e := range edges {
		if e.U != e.V {
			addEdge(e.U, e.V)
		}
	}
	flow := 0
	for flow < cap {
		// BFS for an augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = -2
		queue := []int32{s}
		for len(queue) > 0 && prev[t] == -1 {
			x := queue[0]
			queue = queue[1:]
			for _, ai := range adj[x] {
				a := arcs[ai]
				if a.flow < 1 && prev[a.to] == -1 {
					prev[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if prev[t] == -1 {
			break
		}
		for x := t; x != s; {
			ai := prev[x]
			arcs[ai].flow++
			arcs[arcs[ai].rev].flow--
			x = arcs[arcs[ai].rev].to
		}
		flow++
	}
	return flow
}

func TestKCertPreservesPairwiseKConnectivity(t *testing.T) {
	const n = 14
	const k = 3
	r := parallel.NewRNG(29)
	c := NewKCert(n, k, 31)
	w := &window{n: n}
	for round := 0; round < 40; round++ {
		batch := randStream(r, n, 1+r.Intn(8))
		c.BatchInsert(batch)
		w.insert(batch, nil)
		d := r.Intn(6)
		c.BatchExpire(d)
		w.expire(d)
		cert := c.Certificate()
		if len(cert) > k*(n-1) {
			t.Fatalf("round %d: cert size %d > k(n-1)", round, len(cert))
		}
		// Certificate edges are window arrivals.
		for _, e := range cert {
			if int(e.ID) <= w.tw || int(e.ID) > len(w.arrivals) {
				t.Fatalf("round %d: cert edge τ=%d outside window (%d,%d]", round, e.ID, w.tw, len(w.arrivals))
			}
			a := w.arrivals[int(e.ID)-1]
			if !(a.U == e.U && a.V == e.V || a.U == e.V && a.V == e.U) {
				t.Fatalf("round %d: cert edge %v does not match arrival %v", round, e, a)
			}
		}
		// Property P2: pairwise k-connectivity is preserved.
		full := w.liveWeighted()
		for q := 0; q < 8; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue
			}
			want := maxFlow(n, full, u, v, k)
			got := maxFlow(n, cert, u, v, k)
			if got != want {
				t.Fatalf("round %d: min(k,flow)(%d,%d) cert=%d graph=%d", round, u, v, got, want)
			}
		}
	}
}

func TestKCertForestsAreEdgeDisjointForests(t *testing.T) {
	const n = 12
	r := parallel.NewRNG(41)
	c := NewKCert(n, 4, 43)
	for round := 0; round < 20; round++ {
		c.BatchInsert(randStream(r, n, 1+r.Intn(10)))
		if r.Intn(3) == 0 {
			c.BatchExpire(r.Intn(8))
		}
		seen := map[wgraph.EdgeID]bool{}
		for i := 0; i < c.K(); i++ {
			uf := unionfind.New(n)
			c.d[i].ForEach(func(_ int64, e wgraph.Edge) bool {
				if seen[e.ID] {
					t.Fatalf("round %d: edge %d in two forests", round, e.ID)
				}
				seen[e.ID] = true
				if !uf.Union(e.U, e.V) {
					t.Fatalf("round %d: forest %d has a cycle", round, i)
				}
				return true
			})
		}
	}
}

func TestKCertConnectivityMatchesWindow(t *testing.T) {
	const n = 25
	r := parallel.NewRNG(47)
	c := NewKCert(n, 2, 53)
	w := &window{n: n}
	for round := 0; round < 40; round++ {
		batch := randStream(r, n, 1+r.Intn(8))
		c.BatchInsert(batch)
		w.insert(batch, nil)
		d := r.Intn(6)
		c.BatchExpire(d)
		w.expire(d)
		uf := w.uf()
		for q := 0; q < 20; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := c.IsConnected(u, v), uf.Connected(u, v); got != want {
				t.Fatalf("round %d: IsConnected(%d,%d)=%v want %v", round, u, v, got, want)
			}
		}
	}
}

// --- Cycle-freeness ----------------------------------------------------------

func TestCycleFreeVsBruteForce(t *testing.T) {
	const n = 15
	r := parallel.NewRNG(59)
	c := NewCycleFree(n, 61)
	w := &window{n: n}
	for round := 0; round < 80; round++ {
		batch := randStream(r, n, 1+r.Intn(4))
		clean := batch[:0]
		for _, e := range batch {
			if e.U != e.V {
				clean = append(clean, e)
			}
		}
		c.BatchInsert(clean)
		w.insert(clean, nil)
		d := r.Intn(5)
		c.BatchExpire(d)
		w.expire(d)
		if got, want := c.HasCycle(), w.hasCycle(); got != want {
			t.Fatalf("round %d: HasCycle=%v want %v (window %d..%d)", round, got, want, w.tw, len(w.arrivals))
		}
	}
}

func TestCycleFreeSimple(t *testing.T) {
	c := NewCycleFree(3, 1)
	c.BatchInsert([]StreamEdge{{0, 1}, {1, 2}})
	if c.HasCycle() {
		t.Fatal("path has no cycle")
	}
	c.BatchInsert([]StreamEdge{{2, 0}})
	if !c.HasCycle() {
		t.Fatal("triangle missed")
	}
	c.BatchExpire(1) // expire (0,1): 1-2-0 is a path again
	if c.HasCycle() {
		t.Fatal("expired cycle still reported")
	}
}

func TestCycleFreeParallelEdges(t *testing.T) {
	c := NewCycleFree(2, 3)
	c.BatchInsert([]StreamEdge{{0, 1}, {0, 1}})
	if !c.HasCycle() {
		t.Fatal("parallel edges form a cycle")
	}
	c.BatchExpire(1)
	if c.HasCycle() {
		t.Fatal("single edge is acyclic")
	}
}

// --- Approximate MSF ---------------------------------------------------------

func TestApproxMSFWithinFactor(t *testing.T) {
	const n = 30
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		r := parallel.NewRNG(67)
		const maxW = 1000
		a := NewApproxMSF(n, eps, maxW, 71)
		w := &window{n: n}
		for round := 0; round < 30; round++ {
			ell := 1 + r.Intn(10)
			batch := make([]WeightedStreamEdge, 0, ell)
			plain := make([]StreamEdge, 0, ell)
			wts := make([]int64, 0, ell)
			for i := 0; i < ell; i++ {
				e := WeightedStreamEdge{U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: 1 + r.Int63()%maxW}
				if e.U == e.V {
					continue
				}
				batch = append(batch, e)
				plain = append(plain, StreamEdge{U: e.U, V: e.V})
				wts = append(wts, e.W)
			}
			a.BatchInsert(batch)
			w.insert(plain, wts)
			d := r.Intn(8)
			a.BatchExpire(d)
			w.expire(d)
			exactEdges := msf.Kruskal(n, w.liveWeighted())
			exact := float64(wgraph.TotalWeight(exactEdges))
			got := a.Weight()
			if got < exact-1e-6 || got > (1+eps)*exact+1e-6 {
				t.Fatalf("eps=%v round %d: estimate %v outside [%v, %v]", eps, round, got, exact, (1+eps)*exact)
			}
		}
	}
}

func TestApproxMSFWeightValidation(t *testing.T) {
	a := NewApproxMSF(4, 0.5, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range weight")
		}
	}()
	a.BatchInsert([]WeightedStreamEdge{{U: 0, V: 1, W: 101}})
}

func TestApproxMSFComponents(t *testing.T) {
	a := NewApproxMSF(5, 0.3, 50, 3)
	a.BatchInsert([]WeightedStreamEdge{{0, 1, 10}, {2, 3, 50}})
	if a.NumComponents() != 3 {
		t.Fatalf("components=%d", a.NumComponents())
	}
	a.BatchExpire(1)
	if a.NumComponents() != 4 {
		t.Fatalf("components=%d", a.NumComponents())
	}
}

// --- Sparsifier --------------------------------------------------------------

// cutValue counts edges crossing a bipartition mask.
func cutValue(edges []StreamEdge, inS func(int32) bool) int {
	c := 0
	for _, e := range edges {
		if inS(e.U) != inS(e.V) {
			c++
		}
	}
	return c
}

func TestSparsifierExactWhenSamplingIsOne(t *testing.T) {
	// With a huge sampling constant every edge has p̃ = 1, and with
	// certificate order >= window size every edge is retained: the
	// sparsifier IS the window graph with unit weights.
	const n = 10
	cfg := SparsifierConfig{Eps: 0.5, Levels: 4, Trials: 2, CertOrder: 64, SampleConst: 1 << 30}
	s := NewSparsifier(n, cfg, 3)
	r := parallel.NewRNG(73)
	var win []StreamEdge
	for i := 0; i < 40; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		win = append(win, StreamEdge{U: u, V: v})
	}
	s.BatchInsert(win)
	out := s.Sparsify()
	if len(out) != len(win) {
		t.Fatalf("sparsifier has %d edges, window has %d", len(out), len(win))
	}
	for _, e := range out {
		if e.Weight != 1 {
			t.Fatalf("weight %v != 1", e.Weight)
		}
	}
	// Exact cut preservation for a few random cuts.
	for trial := 0; trial < 10; trial++ {
		mask := r.Next()
		inS := func(v int32) bool { return mask>>uint(v)&1 == 1 }
		want := cutValue(win, inS)
		got := 0.0
		for _, e := range out {
			if inS(e.U) != inS(e.V) {
				got += e.Weight
			}
		}
		if int(got) != want {
			t.Fatalf("cut mismatch: %v vs %d", got, want)
		}
	}
}

func TestSparsifierRespectsExpiry(t *testing.T) {
	const n = 8
	cfg := SparsifierConfig{Eps: 0.5, Levels: 3, Trials: 2, CertOrder: 32, SampleConst: 1 << 30}
	s := NewSparsifier(n, cfg, 5)
	s.BatchInsert([]StreamEdge{{0, 1}, {1, 2}, {2, 3}})
	s.BatchExpire(2)
	out := s.Sparsify()
	if len(out) != 1 {
		t.Fatalf("got %d edges, want 1", len(out))
	}
	if out[0].Tau != 3 {
		t.Fatalf("surviving edge τ=%d", out[0].Tau)
	}
}

func TestSparsifierCutApproximationStatistical(t *testing.T) {
	// Moderate graph, scaled constants: the output must be smaller than the
	// window on dense regions while keeping sampled cuts within a generous
	// factor. Deterministic via fixed seeds.
	const n = 24
	cfg := SparsifierConfig{Eps: 0.5, Levels: 5, Trials: 2, CertOrder: 6, SampleConst: 8}
	s := NewSparsifier(n, cfg, 7)
	r := parallel.NewRNG(79)
	var win []StreamEdge
	// A dense random graph: 6n edges.
	for len(win) < 6*n {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		win = append(win, StreamEdge{U: u, V: v})
	}
	s.BatchInsert(win)
	out := s.Sparsify()
	if len(out) == 0 {
		t.Fatal("empty sparsifier")
	}
	for trial := 0; trial < 8; trial++ {
		mask := r.Next()
		inS := func(v int32) bool { return mask>>uint(v)&1 == 1 }
		want := float64(cutValue(win, inS))
		if want < float64(n)/2 {
			continue // tiny cuts are too noisy for a smoke test
		}
		got := 0.0
		for _, e := range out {
			if inS(e.U) != inS(e.V) {
				got += e.Weight
			}
		}
		if got < want/2.5 || got > want*2.5 {
			t.Fatalf("trial %d: cut %v vs %v out of tolerance", trial, got, want)
		}
	}
}
