// Package sw implements the paper's batch sliding-window graph algorithms
// (Section 5, Theorem 1.2): connectivity (lazy SW-Conn and eager
// SW-Conn-Eager), bipartiteness, (1+ε)-approximate MSF weight,
// k-certificates, cycle-freeness, and ε-cut-sparsifiers.
//
// All structures share the same windowing discipline: edges arrive in
// batches and receive consecutive global timestamps τ = 1, 2, ...;
// BatchExpire(Δ) advances a watermark TW by Δ, expiring the oldest Δ
// arrivals. Arbitrary interleavings of batch inserts and expirations of
// arbitrary sizes are supported; pairing equal-sized inserts and
// expirations yields the classic fixed-size window.
//
// The engine underneath is the batch-incremental MSF of Theorem 1.1 with
// recency weights -τ(e) (the recent-edge property, Lemma 5.1): the MSF
// under recency weights is the "most recent spanning forest", so a pair of
// vertices is connected within the window iff the oldest edge on their
// forest path is itself within the window — and an expired forest edge can
// be discarded without replacement, because any replacement would be even
// older.
package sw

import (
	"sync/atomic"

	"repro/internal/wgraph"
)

// Single-writer contract: none of the structures in this package carry
// internal locks. Queries are safe to run concurrently with each other,
// but every mutation (BatchInsert, BatchExpire) must come from exactly
// one writer at a time, externally serialized — in the service pipeline,
// the stream.WindowManager applies staged ops under one write lock per
// monitor. Each structure asserts the contract with a writerGuard: a
// second concurrent mutator panics immediately instead of corrupting the
// forests. (The guard itself is atomic and invisible to the race
// detector; -race catches concurrent mutators through the non-atomic
// forest state they then touch.) Batch slices passed to BatchInsert are
// converted into the
// structure's own representation before it returns and are never
// retained, so callers may reuse their buffers across batches.

// writerGuard asserts the one-mutator-at-a-time contract (one CAS per
// batch — noise next to any batch's real work).
type writerGuard struct{ busy atomic.Int32 }

func (g *writerGuard) enter() {
	if !g.busy.CompareAndSwap(0, 1) {
		panic("sw: concurrent batch mutation — the sliding-window structures are single-writer (serialize BatchInsert/BatchExpire externally)")
	}
}

func (g *writerGuard) exit() { g.busy.Store(0) }

// StreamEdge is one unweighted edge arrival.
type StreamEdge struct {
	U, V int32
}

// WeightedStreamEdge is one weighted edge arrival (for approximate MSF).
type WeightedStreamEdge struct {
	U, V int32
	W    int64
}

// windowEdge converts an arrival into the recency-weighted edge fed to the
// batch-incremental MSF: id = τ, weight = -τ, so "heaviest" = "oldest".
func windowEdge(u, v int32, tau int64) wgraph.Edge {
	return wgraph.Edge{ID: wgraph.EdgeID(tau), U: u, V: v, W: -tau}
}
