package ternary

import (
	"testing"

	"repro/internal/linkcut"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

func mustValidate(t *testing.T, f *Forest) {
	t.Helper()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyForest(t *testing.T) {
	f := New(4, 1)
	mustValidate(t, f)
	if f.NumEdges() != 0 || f.Degree(0) != 0 {
		t.Fatal("fresh forest not empty")
	}
	if f.Connected(0, 1) {
		t.Fatal("spurious connectivity")
	}
	if _, ok := f.PathMax(0, 1); ok {
		t.Fatal("spurious path")
	}
}

func TestSingleEdgeLifecycle(t *testing.T) {
	f := New(3, 1)
	e := wgraph.Edge{ID: 10, U: 0, V: 1, W: 5}
	f.BatchUpdate([]wgraph.Edge{e}, nil)
	mustValidate(t, f)
	if !f.Connected(0, 1) || f.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	k, ok := f.PathMax(0, 1)
	if !ok || k != wgraph.KeyOf(e) {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
	if !f.HasEdge(10) {
		t.Fatal("edge missing")
	}
	got, ok := f.EdgeByID(10)
	if !ok || got != e {
		t.Fatalf("EdgeByID=%v", got)
	}
	f.BatchUpdate(nil, []wgraph.EdgeID{10})
	mustValidate(t, f)
	if f.Connected(0, 1) || f.HasEdge(10) {
		t.Fatal("cut failed")
	}
}

func TestHighDegreeStar(t *testing.T) {
	// The whole point of the adapter: a star of degree 50.
	const n = 51
	f := New(n, 3)
	var ins []wgraph.Edge
	for i := 1; i < n; i++ {
		ins = append(ins, wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i), W: int64(i * 7)})
	}
	f.BatchUpdate(ins, nil)
	mustValidate(t, f)
	if f.Degree(0) != n-1 {
		t.Fatalf("degree=%d", f.Degree(0))
	}
	for i := 1; i < n; i++ {
		if !f.Connected(0, int32(i)) {
			t.Fatalf("leaf %d disconnected", i)
		}
	}
	k, ok := f.PathMax(3, 50)
	if !ok || k.W != 50*7 {
		t.Fatalf("pathmax(3,50)=%v,%v", k, ok)
	}
	// Remove a middle chain entry and re-check.
	f.BatchUpdate(nil, []wgraph.EdgeID{25})
	mustValidate(t, f)
	if f.Connected(0, 25) {
		t.Fatal("cut leaf still attached")
	}
	if f.Degree(0) != n-2 {
		t.Fatalf("degree=%d", f.Degree(0))
	}
	k, ok = f.PathMax(3, 50)
	if !ok || k.W != 50*7 {
		t.Fatalf("pathmax(3,50) after cut=%v,%v", k, ok)
	}
}

func TestCutAndReinsertSameBatch(t *testing.T) {
	f := New(3, 5)
	f.BatchUpdate([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 10},
		{ID: 2, U: 1, V: 2, W: 20},
	}, nil)
	// Replace edge 1 with a heavier parallel edge in one batch.
	f.BatchUpdate([]wgraph.Edge{{ID: 3, U: 0, V: 1, W: 30}}, []wgraph.EdgeID{1})
	mustValidate(t, f)
	k, ok := f.PathMax(0, 2)
	if !ok || k.W != 30 {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
}

func TestCutTwoAdjacentEdgesOneBatch(t *testing.T) {
	// Exercises the pending-link cancellation path: removing two edges
	// anchored on neighbouring chain nodes of one gadget in a single batch.
	const n = 6
	f := New(n, 7)
	var ins []wgraph.Edge
	for i := 1; i < n; i++ {
		ins = append(ins, wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i), W: int64(i)})
	}
	f.BatchUpdate(ins, nil)
	f.BatchUpdate(nil, []wgraph.EdgeID{2, 3})
	mustValidate(t, f)
	if f.Connected(0, 2) || f.Connected(0, 3) {
		t.Fatal("cut edges still connected")
	}
	for _, i := range []int32{1, 4, 5} {
		if !f.Connected(0, i) {
			t.Fatalf("leaf %d lost", i)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	f := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.BatchUpdate([]wgraph.Edge{{ID: 1, U: 1, V: 1, W: 5}}, nil)
}

func TestDuplicateIDPanics(t *testing.T) {
	f := New(3, 1)
	f.BatchUpdate([]wgraph.Edge{{ID: 1, U: 0, V: 1, W: 5}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.BatchUpdate([]wgraph.Edge{{ID: 1, U: 1, V: 2, W: 6}}, nil)
}

func TestCutUnknownPanics(t *testing.T) {
	f := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.BatchUpdate(nil, []wgraph.EdgeID{99})
}

// TestRandomBatchesVsLinkCut runs mixed random batches over an
// arbitrary-degree forest, checking connectivity, path maxima and component
// counts against link-cut trees and union-find.
func TestRandomBatchesVsLinkCut(t *testing.T) {
	const n = 80
	r := parallel.NewRNG(11)
	f := New(n, 23)
	lc := linkcut.New(n)
	live := map[wgraph.EdgeID]wgraph.Edge{}
	nextID := wgraph.EdgeID(1)
	for batch := 0; batch < 50; batch++ {
		// Cuts.
		var cuts []wgraph.EdgeID
		ncut := r.Intn(5)
		for id, e := range live {
			if len(cuts) >= ncut {
				break
			}
			cuts = append(cuts, id)
			lc.Cut(id)
			delete(live, id)
			_ = e
		}
		// Inserts keeping a forest (any degree).
		uf := unionfind.New(n)
		for _, e := range live {
			uf.Union(e.U, e.V)
		}
		var ins []wgraph.Edge
		for c := 0; c < r.Intn(10); c++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || !uf.Union(u, v) {
				continue
			}
			e := wgraph.Edge{ID: nextID, U: u, V: v, W: r.Int63() % 1_000_000}
			nextID++
			ins = append(ins, e)
			live[e.ID] = e
			lc.Link(e)
		}
		f.BatchUpdate(ins, cuts)
		mustValidate(t, f)
		for q := 0; q < 40; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := f.Connected(u, v), lc.Connected(u, v); got != want {
				t.Fatalf("batch %d: Connected(%d,%d)=%v want %v", batch, u, v, got, want)
			}
			gk, gok := f.PathMax(u, v)
			we, wok := lc.PathMax(u, v)
			if gok != wok || (gok && gk != wgraph.KeyOf(we)) {
				t.Fatalf("batch %d: PathMax(%d,%d)=(%v,%v) want (%v,%v)", batch, u, v, gk, gok, wgraph.KeyOf(we), wok)
			}
		}
		ufc := unionfind.New(n)
		for _, e := range live {
			ufc.Union(e.U, e.V)
		}
		if got, want := f.NumComponents(), ufc.NumComponents(); got != want {
			t.Fatalf("batch %d: components=%d want %d", batch, got, want)
		}
	}
}

func TestChainNodeRecycling(t *testing.T) {
	f := New(2, 1)
	for i := 0; i < 50; i++ {
		id := wgraph.EdgeID(i)
		f.BatchUpdate([]wgraph.Edge{{ID: id, U: 0, V: 1, W: int64(i + 1)}}, nil)
		f.BatchUpdate(nil, []wgraph.EdgeID{id})
	}
	mustValidate(t, f)
	if got := f.RC().NumVertices(); got > 2+4 {
		t.Fatalf("chain nodes not recycled: %d rctree vertices", got)
	}
}

func TestWeightBelowVirtualPanics(t *testing.T) {
	f := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.BatchUpdate([]wgraph.Edge{{ID: 1, U: 0, V: 1, W: VirtualWeight}}, nil)
}
