// Package ternary adapts an arbitrary-degree forest to the degree-<=3 forest
// required by the rake-compress tree (the "bounded-degree equivalent" of
// Section 2.2 of the paper, maintained dynamically as in reference [2]).
//
// Every real vertex v owns a gadget: a chain of virtual nodes
//
//	v — c1 — c2 — ... — ck
//
// where chain node ci anchors exactly one real edge incident to v. Chain
// links are virtual edges of weight math.MinInt64+1 (strictly above the
// rctree's MinKey identity, strictly below every real edge key), so they
// never win a path-max query. The real edge (u, v) becomes an rctree edge
// between u's and v's anchoring chain nodes, carrying the real key.
//
// Degrees: a real vertex touches only its first chain link (degree <= 1); a
// chain node touches at most two chain links plus its real edge (degree
// <= 3). Inserting an edge appends a chain node (O(1) virtual links);
// deleting an edge splices its chain node out (O(1) virtual cuts/links). A
// batch of l real operations becomes O(l) rctree operations, preserving the
// paper's O(l·lg(1+n/l)) batch bound.
package ternary

import (
	"fmt"
	"math"

	"repro/internal/rctree"
	"repro/internal/wgraph"
)

// VirtualWeight is the weight of chain links. Real edge weights must be
// strictly greater than math.MinInt64+1.
const VirtualWeight = math.MinInt64 + 1

const nilNode = int32(-1)

type chainNode struct {
	prev, next int32         // chain-node slots within the gadget (nilNode ends)
	owner      int32         // real vertex owning the gadget
	edge       wgraph.EdgeID // the real edge anchored here
	prevLink   rctree.Handle // materialized link to prev side (or pending)
	pendingIdx int32         // index into the current batch's pending links, -1 if materialized
	inUse      bool
}

type gadget struct {
	head, tail int32
	deg        int
}

type edgeInfo struct {
	e      wgraph.Edge
	nodeU  int32 // chain-node slot anchoring e at e.U
	nodeV  int32
	handle rctree.Handle
}

// Forest maintains an arbitrary-degree dynamic forest on top of an rctree.
type Forest struct {
	t       *rctree.Tree
	n       int
	gadgets []gadget
	nodes   []chainNode
	nodeIDs []int32 // slot -> rctree vertex id
	free    []int32
	edges   map[wgraph.EdgeID]*edgeInfo
	nextVID int64

	// Per-batch scratch.
	pend    []pendLink
	rcCuts  []rctree.Handle
	newReal []wgraph.EdgeID // ids of edges inserted this batch, in rcIns order
}

type pendLink struct {
	a, b      int32 // rctree vertex ids
	nodeSlot  int32 // node whose prevLink this is
	cancelled bool
}

// New creates a forest over n real vertices (rctree vertices 0..n-1).
func New(n int, seed uint64) *Forest {
	f := &Forest{
		t:       rctree.New(n, seed),
		n:       n,
		gadgets: make([]gadget, n),
		edges:   make(map[wgraph.EdgeID]*edgeInfo),
		nextVID: -2,
	}
	for i := range f.gadgets {
		f.gadgets[i] = gadget{head: nilNode, tail: nilNode}
	}
	return f
}

// RC exposes the underlying rake-compress tree for compressed-path-tree
// construction and queries over the virtual topology.
func (f *Forest) RC() *rctree.Tree { return f.t }

// N returns the number of real vertices.
func (f *Forest) N() int { return f.n }

// NumEdges returns the number of live real edges.
func (f *Forest) NumEdges() int { return len(f.edges) }

// HasEdge reports whether the real edge id is present.
func (f *Forest) HasEdge(id wgraph.EdgeID) bool {
	_, ok := f.edges[id]
	return ok
}

// EdgeByID returns the stored edge for a live id.
func (f *Forest) EdgeByID(id wgraph.EdgeID) (wgraph.Edge, bool) {
	ei, ok := f.edges[id]
	if !ok {
		return wgraph.Edge{}, false
	}
	return ei.e, true
}

// RangeEdges calls fn for every live real edge until fn returns false.
// Iteration order is unspecified.
func (f *Forest) RangeEdges(fn func(wgraph.Edge) bool) {
	for _, ei := range f.edges {
		if !fn(ei.e) {
			return
		}
	}
}

// OwnerOf maps any rctree vertex back to the real vertex whose gadget it
// belongs to (real vertices map to themselves). Chain-node rctree ids are
// allocated densely after the n real vertices.
func (f *Forest) OwnerOf(rcID int32) int32 {
	if int(rcID) < f.n {
		return rcID
	}
	return f.nodes[int(rcID)-f.n].owner
}

// Degree returns the real degree of vertex v.
func (f *Forest) Degree(v int32) int { return f.gadgets[v].deg }

// Connected reports whether real vertices u and v are connected.
func (f *Forest) Connected(u, v int32) bool { return f.t.Connected(u, v) }

// NumComponents returns the number of components among the real vertices
// (virtual chain nodes never form their own components).
func (f *Forest) NumComponents() int {
	// Each real component contributes one rctree root; chain nodes are
	// always attached to their owner. Total rctree components = real
	// components + 0 spare, but freed chain nodes linger as isolated rctree
	// vertices, so subtract them.
	return f.t.NumComponents() - f.isolatedSpares()
}

func (f *Forest) isolatedSpares() int {
	return len(f.free)
}

// PathMax returns the heaviest real edge key on the real path between u and
// v, or false when disconnected or equal. Virtual links can never be the
// maximum because a nonempty real path contains at least one real edge.
func (f *Forest) PathMax(u, v int32) (wgraph.Key, bool) {
	if u == v {
		return wgraph.Key{}, false
	}
	k, ok := f.t.PathMax(u, v)
	if !ok {
		return wgraph.Key{}, false
	}
	if k.W == VirtualWeight {
		panic("ternary: path between distinct real vertices was purely virtual")
	}
	return k, true
}

func (f *Forest) virtualKey() wgraph.Key {
	k := wgraph.Key{W: VirtualWeight, ID: wgraph.EdgeID(f.nextVID)}
	f.nextVID--
	return k
}

func (f *Forest) allocNode() int32 {
	if len(f.free) > 0 {
		s := f.free[len(f.free)-1]
		f.free = f.free[:len(f.free)-1]
		return s
	}
	vid := f.t.AddVertices(1)
	f.nodes = append(f.nodes, chainNode{})
	f.nodeIDs = append(f.nodeIDs, vid)
	return int32(len(f.nodes) - 1)
}

// rcID returns the rctree vertex of a chain slot, or the real vertex when
// slot is nilNode relative to owner v.
func (f *Forest) rcID(v int32, slot int32) int32 {
	if slot == nilNode {
		return v
	}
	return f.nodeIDs[slot]
}

// killLink retires the prevLink of the given node: a pending link is
// cancelled, a materialized one is queued for cutting.
func (f *Forest) killLink(slot int32) {
	nd := &f.nodes[slot]
	if nd.pendingIdx >= 0 {
		f.pend[nd.pendingIdx].cancelled = true
		nd.pendingIdx = -1
		return
	}
	f.rcCuts = append(f.rcCuts, nd.prevLink)
}

// makeLink plans a fresh virtual link from the prev side to node slot.
func (f *Forest) makeLink(v, prevSlot, slot int32) {
	nd := &f.nodes[slot]
	nd.pendingIdx = int32(len(f.pend))
	f.pend = append(f.pend, pendLink{a: f.rcID(v, prevSlot), b: f.nodeIDs[slot], nodeSlot: slot})
}

// appendNode grows v's gadget with a chain node anchoring edge id, returning
// the new slot.
func (f *Forest) appendNode(v int32, id wgraph.EdgeID) int32 {
	slot := f.allocNode()
	g := &f.gadgets[v]
	f.nodes[slot] = chainNode{prev: g.tail, next: nilNode, owner: v, edge: id, pendingIdx: -1, inUse: true}
	f.makeLink(v, g.tail, slot)
	if g.tail != nilNode {
		f.nodes[g.tail].next = slot
	} else {
		g.head = slot
	}
	g.tail = slot
	g.deg++
	return slot
}

// detachNode splices the chain node out of v's gadget.
func (f *Forest) detachNode(v int32, slot int32) {
	nd := &f.nodes[slot]
	g := &f.gadgets[v]
	prv, nxt := nd.prev, nd.next
	f.killLink(slot)
	if nxt != nilNode {
		f.killLink(nxt)
		f.nodes[nxt].prev = prv
		f.makeLink(v, prv, nxt)
		if prv != nilNode {
			f.nodes[prv].next = nxt
		} else {
			g.head = nxt
		}
	} else {
		if prv != nilNode {
			f.nodes[prv].next = nilNode
		} else {
			g.head = nilNode
		}
		g.tail = prv
	}
	g.deg--
	*nd = chainNode{pendingIdx: -1}
	f.free = append(f.free, slot)
}

// BatchUpdate removes the edges named in cuts, then inserts ins, all in one
// rctree batch. Cuts must name live edges; the surviving edge set must
// remain a forest (no acyclicity check is performed here — the MSF layer
// guarantees it); self-loops and duplicate ids panic.
func (f *Forest) BatchUpdate(ins []wgraph.Edge, cuts []wgraph.EdgeID) {
	f.pend = f.pend[:0]
	f.rcCuts = f.rcCuts[:0]
	f.newReal = f.newReal[:0]

	for _, id := range cuts {
		ei, ok := f.edges[id]
		if !ok {
			panic(fmt.Sprintf("ternary: cutting unknown edge %d", id))
		}
		f.rcCuts = append(f.rcCuts, ei.handle)
		f.detachNode(ei.e.U, ei.nodeU)
		f.detachNode(ei.e.V, ei.nodeV)
		delete(f.edges, id)
	}
	for _, e := range ins {
		if e.IsLoop() {
			panic(fmt.Sprintf("ternary: self-loop %v", e))
		}
		if e.W <= VirtualWeight {
			panic(fmt.Sprintf("ternary: weight %d not above VirtualWeight", e.W))
		}
		if _, dup := f.edges[e.ID]; dup {
			panic(fmt.Sprintf("ternary: duplicate edge id %d", e.ID))
		}
		nu := f.appendNode(e.U, e.ID)
		nv := f.appendNode(e.V, e.ID)
		f.edges[e.ID] = &edgeInfo{e: e, nodeU: nu, nodeV: nv}
		f.newReal = append(f.newReal, e.ID)
	}

	// Emit: surviving pending links first, then real edges; map handles back
	// positionally.
	rcIns := make([]rctree.Edge, 0, len(f.pend)+len(f.newReal))
	slots := make([]int32, 0, len(f.pend))
	for _, p := range f.pend {
		if p.cancelled {
			continue
		}
		rcIns = append(rcIns, rctree.Edge{U: p.a, V: p.b, Key: f.virtualKey()})
		slots = append(slots, p.nodeSlot)
	}
	for _, id := range f.newReal {
		ei := f.edges[id]
		rcIns = append(rcIns, rctree.Edge{
			U: f.nodeIDs[ei.nodeU], V: f.nodeIDs[ei.nodeV], Key: wgraph.KeyOf(ei.e),
		})
	}
	handles := f.t.BatchUpdate(rcIns, f.rcCuts)
	for i, slot := range slots {
		f.nodes[slot].prevLink = handles[i]
		f.nodes[slot].pendingIdx = -1
	}
	for i, id := range f.newReal {
		f.edges[id].handle = handles[len(slots)+i]
	}
}

// Validate checks gadget-chain and degree invariants plus the underlying
// rctree's invariants. Test use only.
func (f *Forest) Validate() error {
	if err := f.t.Validate(); err != nil {
		return err
	}
	degSum := 0
	for v := int32(0); v < int32(f.n); v++ {
		g := &f.gadgets[v]
		count := 0
		prev := nilNode
		for s := g.head; s != nilNode; s = f.nodes[s].next {
			nd := &f.nodes[s]
			if !nd.inUse {
				return fmt.Errorf("vertex %d: chain slot %d not in use", v, s)
			}
			if nd.owner != v {
				return fmt.Errorf("vertex %d: chain slot %d owned by %d", v, s, nd.owner)
			}
			if nd.prev != prev {
				return fmt.Errorf("vertex %d: chain slot %d prev=%d want %d", v, s, nd.prev, prev)
			}
			if nd.pendingIdx != -1 {
				return fmt.Errorf("vertex %d: chain slot %d has pending link outside batch", v, s)
			}
			ei, ok := f.edges[nd.edge]
			if !ok {
				return fmt.Errorf("vertex %d: chain slot %d anchors dead edge %d", v, s, nd.edge)
			}
			if ei.nodeU != s && ei.nodeV != s {
				return fmt.Errorf("vertex %d: edge %d does not reference slot %d", v, nd.edge, s)
			}
			prev = s
			count++
			if count > f.n*4 {
				return fmt.Errorf("vertex %d: chain cycle", v)
			}
		}
		if g.tail != prev {
			return fmt.Errorf("vertex %d: tail %d want %d", v, g.tail, prev)
		}
		if count != g.deg {
			return fmt.Errorf("vertex %d: chain length %d != degree %d", v, count, g.deg)
		}
		degSum += count
		if f.t.Degree(v) > 1 {
			return fmt.Errorf("real vertex %d has rctree degree %d", v, f.t.Degree(v))
		}
	}
	if degSum != 2*len(f.edges) {
		return fmt.Errorf("degree sum %d != 2*edges %d", degSum, 2*len(f.edges))
	}
	return nil
}
