package ternary

import (
	"testing"
	"testing/quick"

	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// TestQuickForestScripts runs arbitrary scripted batches of valid inserts
// and cuts through the adapter, validating gadget and rctree invariants
// after every batch and cross-checking connectivity.
func TestQuickForestScripts(t *testing.T) {
	f := func(script []uint8) bool {
		const n = 16
		fo := New(n, 7)
		live := map[wgraph.EdgeID]wgraph.Edge{}
		nextID := wgraph.EdgeID(1)
		i := 0
		for i+2 < len(script) {
			nIns := int(script[i] % 4)
			nCut := int(script[i]/4) % 3
			i++
			var cuts []wgraph.EdgeID
			for id := range live {
				if len(cuts) >= nCut {
					break
				}
				cuts = append(cuts, id)
			}
			for _, id := range cuts {
				delete(live, id)
			}
			uf := unionfind.New(n)
			for _, e := range live {
				uf.Union(e.U, e.V)
			}
			var ins []wgraph.Edge
			for j := 0; j < nIns && i+1 < len(script); j++ {
				u := int32(script[i]) % n
				v := int32(script[i+1]) % n
				i += 2
				if u == v || !uf.Union(u, v) {
					continue
				}
				e := wgraph.Edge{ID: nextID, U: u, V: v, W: int64(nextID)}
				nextID++
				ins = append(ins, e)
				live[e.ID] = e
			}
			fo.BatchUpdate(ins, cuts)
			if fo.Validate() != nil {
				return false
			}
			if fo.NumEdges() != len(live) {
				return false
			}
		}
		ufc := unionfind.New(n)
		for _, e := range live {
			ufc.Union(e.U, e.V)
		}
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if fo.Connected(u, v) != ufc.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOfMapping(t *testing.T) {
	const n = 5
	fo := New(n, 3)
	fo.BatchUpdate([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 10},
		{ID: 2, U: 0, V: 2, W: 20},
		{ID: 3, U: 0, V: 3, W: 30},
		{ID: 4, U: 0, V: 4, W: 40},
	}, nil)
	// Real vertices map to themselves.
	for v := int32(0); v < n; v++ {
		if fo.OwnerOf(v) != v {
			t.Fatalf("OwnerOf(%d)=%d", v, fo.OwnerOf(v))
		}
	}
	// Every chain node maps to a real vertex with matching degree share.
	counts := map[int32]int{}
	for id := n; id < fo.RC().NumVertices(); id++ {
		counts[fo.OwnerOf(int32(id))]++
	}
	if counts[0] != 4 {
		t.Fatalf("hub chain nodes=%d want 4", counts[0])
	}
	for v := int32(1); v < n; v++ {
		if counts[v] != 1 {
			t.Fatalf("leaf %d chain nodes=%d want 1", v, counts[v])
		}
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	fo := New(3, 1)
	fo.BatchUpdate([]wgraph.Edge{{ID: 1, U: 0, V: 1, W: 5}}, nil)
	before := fo.NumEdges()
	fo.BatchUpdate(nil, nil)
	if fo.NumEdges() != before {
		t.Fatal("empty batch changed edge count")
	}
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathMaxTieBreakByID(t *testing.T) {
	fo := New(3, 9)
	fo.BatchUpdate([]wgraph.Edge{
		{ID: 5, U: 0, V: 1, W: 7},
		{ID: 9, U: 1, V: 2, W: 7}, // same weight, higher id wins the max
	}, nil)
	k, ok := fo.PathMax(0, 2)
	if !ok || k.ID != 9 {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
}
