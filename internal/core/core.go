// Package core implements the paper's primary contribution: the
// work-efficient parallel batch-incremental minimum spanning forest of
// Theorem 1.1 (Section 4, Algorithm 2).
//
// A batch of l edge insertions is processed by
//
//  1. collecting the endpoints K of the batch,
//  2. building the compressed path trees C of the current forest with
//     respect to K (package cpt over the rake-compress tree, through the
//     degree-3 adapter of package ternary),
//  3. computing the static MSF M of C ∪ E+ — a graph of size O(l) — with
//     Kruskal (stand-in for Cole–Klein–Tarjan, see DESIGN.md §2), and
//  4. deleting the forest edges E(C) \ E(M) (identified through the argmax
//     edge each compressed edge carries) and inserting E(M) ∩ E+.
//
// Total cost O(l·lg(1+n/l)) expected work (Theorem 4.2). Correctness is
// Theorem 4.1: every deleted edge is a heaviest edge on some cycle of
// G ∪ E+ (the red rule), and the result is acyclic.
//
// All weights are ordered by the strict total order (W, ID), so the MSF is
// unique and deletions are unambiguous. Edge IDs must be unique for the
// lifetime of the structure and weights must exceed math.MinInt64+1 (the
// ternary adapter's virtual weight).
package core

import (
	"fmt"

	"repro/internal/cpt"
	"repro/internal/msf"
	"repro/internal/ternary"
	"repro/internal/wgraph"
)

// BatchMSF maintains the minimum spanning forest of an incrementally growing
// weighted multigraph under batch edge insertions.
type BatchMSF struct {
	f      *ternary.Forest
	n      int
	weight int64
}

// New returns an empty batch-incremental MSF over n vertices. seed drives
// the randomized tree contraction.
func New(n int, seed uint64) *BatchMSF {
	return &BatchMSF{f: ternary.New(n, seed), n: n}
}

// N returns the number of vertices.
func (m *BatchMSF) N() int { return m.n }

// Size returns the number of forest edges.
func (m *BatchMSF) Size() int { return m.f.NumEdges() }

// Weight returns the total weight of the forest.
func (m *BatchMSF) Weight() int64 { return m.weight }

// NumComponents returns the number of connected components.
func (m *BatchMSF) NumComponents() int { return m.n - m.f.NumEdges() }

// Connected reports whether u and v are connected in the graph inserted so
// far (equivalently, in the forest). O(lg n) expected.
func (m *BatchMSF) Connected(u, v int32) bool { return m.f.Connected(u, v) }

// HasEdge reports whether edge id is currently a forest edge.
func (m *BatchMSF) HasEdge(id wgraph.EdgeID) bool { return m.f.HasEdge(id) }

// EdgeByID returns the forest edge with the given id.
func (m *BatchMSF) EdgeByID(id wgraph.EdgeID) (wgraph.Edge, bool) { return m.f.EdgeByID(id) }

// PathMaxEdge returns the heaviest forest edge on the path between u and v,
// or false when they are disconnected or equal. O(lg n) expected.
func (m *BatchMSF) PathMaxEdge(u, v int32) (wgraph.Edge, bool) {
	k, ok := m.f.PathMax(u, v)
	if !ok {
		return wgraph.Edge{}, false
	}
	e, ok := m.f.EdgeByID(k.ID)
	if !ok {
		panic(fmt.Sprintf("core: path max key %v names unknown edge", k))
	}
	return e, true
}

// BatchInsert inserts a batch of edges (Algorithm 2) and returns:
//
//   - added: the input edges that entered the forest,
//   - removed: former forest edges evicted by the red rule,
//   - rejected: input edges that did not enter (each is a heaviest edge on
//     a cycle of the new graph; self-loops are always rejected).
//
// removed ∪ rejected is exactly the replacement set O_i that the
// k-certificate cascade of Section 5.4 feeds to the next forest.
func (m *BatchMSF) BatchInsert(edges []wgraph.Edge) (added, removed, rejected []wgraph.Edge) {
	if len(edges) == 0 {
		return nil, nil, nil
	}
	// Line 2: K <- endpoints of the batch; loops can never enter a forest.
	work := make([]wgraph.Edge, 0, len(edges))
	var marked []int32
	seen := make(map[int32]struct{}, 2*len(edges))
	for _, e := range edges {
		if e.IsLoop() {
			rejected = append(rejected, e)
			continue
		}
		if e.W <= ternary.VirtualWeight {
			panic(fmt.Sprintf("core: weight %d out of range", e.W))
		}
		work = append(work, e)
		for _, v := range [2]int32{e.U, e.V} {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				marked = append(marked, v)
			}
		}
	}
	if len(work) == 0 {
		return nil, nil, rejected
	}
	// Line 3: compressed path trees of the touched components.
	c := cpt.Build(m.f.RC(), marked)
	// Line 4: static MSF of C ∪ E+ on densely relabelled vertices.
	relabel := make(map[int32]int32, len(c.Vertices)+len(marked))
	label := func(v int32) int32 {
		if id, ok := relabel[v]; ok {
			return id
		}
		id := int32(len(relabel))
		relabel[v] = id
		return id
	}
	small := make([]wgraph.Edge, 0, len(c.Edges)+len(work))
	for _, ce := range c.Edges {
		small = append(small, wgraph.Edge{
			ID: ce.Key.ID, U: label(ce.U), V: label(ce.V), W: ce.Key.W,
		})
	}
	numCPT := len(small)
	for _, e := range work {
		small = append(small, wgraph.Edge{ID: e.ID, U: label(e.U), V: label(e.V), W: e.W})
	}
	for _, v := range c.Vertices {
		label(v)
	}
	forest := msf.Kruskal(len(relabel), small)
	inM := make(map[wgraph.EdgeID]struct{}, len(forest))
	for _, e := range forest {
		inM[e.ID] = struct{}{}
	}
	// Lines 5-6: diff the small MSF against the forest.
	var cutIDs []wgraph.EdgeID
	for _, ce := range small[:numCPT] {
		if _, ok := inM[ce.ID]; ok {
			continue
		}
		if ce.W == ternary.VirtualWeight {
			panic("core: virtual chain edge evicted from the small MSF")
		}
		old, ok := m.f.EdgeByID(ce.ID)
		if !ok {
			panic(fmt.Sprintf("core: CPT argmax edge %d not in forest", ce.ID))
		}
		removed = append(removed, old)
		cutIDs = append(cutIDs, ce.ID)
		m.weight -= old.W
	}
	for _, e := range work {
		if _, ok := inM[e.ID]; ok {
			added = append(added, e)
			m.weight += e.W
		} else {
			rejected = append(rejected, e)
		}
	}
	m.f.BatchUpdate(added, cutIDs)
	return added, removed, rejected
}

// BatchDelete cuts the named forest edges without seeking replacements. It
// is the primitive behind eager sliding-window expiry (Theorem 5.2), where
// the recent-edge property guarantees any would-be replacement has already
// expired. Deleting a non-forest edge panics.
func (m *BatchMSF) BatchDelete(ids []wgraph.EdgeID) {
	if len(ids) == 0 {
		return
	}
	for _, id := range ids {
		e, ok := m.f.EdgeByID(id)
		if !ok {
			panic(fmt.Sprintf("core: deleting unknown edge %d", id))
		}
		m.weight -= e.W
	}
	m.f.BatchUpdate(nil, ids)
}

// ForestEdges returns a snapshot of the current forest edges (unordered).
func (m *BatchMSF) ForestEdges() []wgraph.Edge {
	out := make([]wgraph.Edge, 0, m.f.NumEdges())
	m.f.RangeEdges(func(e wgraph.Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// CompressedPaths returns the compressed path tree (Section 3, Figure 1) of
// the current forest with respect to the marked vertices, expressed over
// the original vertices: each returned edge summarizes a forest path
// segment, carrying the heaviest (W, ID) key on it. Unmarked vertices in
// the result are Steiner vertices of degree at least 3.
func (m *BatchMSF) CompressedPaths(marked []int32) []cpt.Edge {
	res := cpt.Build(m.f.RC(), marked)
	out := make([]cpt.Edge, 0, len(res.Edges))
	for _, e := range res.Edges {
		u, v := m.f.OwnerOf(e.U), m.f.OwnerOf(e.V)
		if u == v {
			continue // virtual chain link inside one vertex gadget
		}
		out = append(out, cpt.Edge{U: u, V: v, Key: e.Key})
	}
	return out
}
